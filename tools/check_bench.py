#!/usr/bin/env python3
"""CI perf gate for Google-Benchmark JSON output.

Compares a fresh benchmark run against a checked-in baseline and fails on a
>Nx throughput regression (default 2x — wide enough to absorb runner-hardware
variance, tight enough to catch a hot path falling off a cliff).  Can also
assert a minimum speedup between two benchmarks of the *current* run, which
is how the batched-vs-single-query and inplace-vs-recreate acceptance ratios
are enforced.

Benchmarks missing from the baseline (e.g. a freshly added binary whose
baseline has not been regenerated yet) are *skipped with a warning*, never
failed: a new benchmark must not brick the gate before its baseline lands.
A missing baseline file is likewise a warning, not an error.

Regenerate a baseline after an intentional perf change (from a Release
build, so numbers are comparable to CI) with:

  ./build/bench/bench_e18_query_pipeline --benchmark_min_time=0.05 \\
      --benchmark_format=json > bench/baselines/bench_e18.json
  ./build/bench/bench_e19_mutation --benchmark_min_time=0.3 \\
      --benchmark_format=json > bench/baselines/bench_e19.json
  ./build/bench/bench_e20_service --benchmark_min_time=0.05 \\
      --benchmark_format=json > bench/baselines/bench_e20.json

(Newer Google Benchmark wants a unit suffix: --benchmark_min_time=0.05s.)

Usage:
  check_bench.py --current out.json [--baseline bench/baselines/bench_e18.json]
                 [--max-regression 2.0]
                 [--min-speedup FAST_NAME SLOW_NAME RATIO]

Exit status: 0 when every gate passes, 1 otherwise.
"""

from __future__ import annotations

import argparse
import json
import os
import sys


def load_rates(path: str) -> dict[str, float]:
    """Benchmark name -> items_per_second, skipping entries without a rate.

    A run made with --benchmark_repetitions produces several iteration
    entries per name (plus aggregates, which are ignored); the *fastest*
    repetition is used.  Shared-runner noise is one-sided — interference
    only ever slows a repetition down — so the max is the cleanest sample
    of each benchmark and the stablest basis for ratio gates.  Pair it with
    --benchmark_enable_random_interleaving so no benchmark systematically
    runs during the hot/busy tail of the process.
    """
    with open(path, encoding="utf-8") as f:
        doc = json.load(f)
    rates: dict[str, float] = {}
    for bench in doc.get("benchmarks", []):
        rate = bench.get("items_per_second")
        if rate is None or bench.get("run_type", "iteration") != "iteration":
            continue
        name = bench.get("run_name", bench["name"])
        rates[name] = max(rates.get(name, 0.0), float(rate))
    return rates


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--current", required=True, help="JSON from the fresh run")
    parser.add_argument("--baseline", help="checked-in baseline JSON")
    parser.add_argument(
        "--max-regression",
        type=float,
        default=2.0,
        help="fail when baseline/current throughput exceeds this (default 2.0)",
    )
    parser.add_argument(
        "--min-speedup",
        nargs=3,
        metavar=("FAST", "SLOW", "RATIO"),
        action="append",
        default=[],
        help="fail when current[FAST]/current[SLOW] < RATIO",
    )
    args = parser.parse_args()

    current = load_rates(args.current)
    if not current:
        print(f"check_bench: no benchmarks with items_per_second in {args.current}")
        return 1

    failures = []

    if args.baseline and not os.path.exists(args.baseline):
        print(
            f"check_bench: WARNING — baseline file {args.baseline} does not exist; "
            "no baseline, skipping regression gate (regen command in the file header)"
        )
        for name in sorted(current):
            print(f"  WARNING    {name}: ungated (no baseline file)")
    elif args.baseline:
        baseline = load_rates(args.baseline)
        shared = sorted(set(current) & set(baseline))
        if not shared:
            print(
                "check_bench: WARNING — no benchmark names shared with the baseline\n"
                f"  current run has:  {sorted(current)}\n"
                f"  baseline has:     {sorted(baseline)}"
            )
        # A baseline entry the fresh run no longer produces is how a renamed
        # benchmark silently drops out of the gate — name the dropouts.
        for name in sorted(set(baseline) - set(current)):
            print(
                f"  WARNING    {name}: in baseline ({baseline[name]:.3g}/s) but "
                "missing from the current run — renamed or removed?"
            )
        for name in shared:
            ratio = baseline[name] / current[name]
            status = "OK"
            if ratio > args.max_regression:
                status = "REGRESSION"
                failures.append(
                    f"{name}: {current[name]:.3g} items/s is {ratio:.2f}x below "
                    f"baseline {baseline[name]:.3g} (limit {args.max_regression}x)"
                )
            print(
                f"  {status:<10} {name}: current {current[name]:.3g}/s, "
                f"baseline {baseline[name]:.3g}/s ({ratio:.2f}x)"
            )
        for name in sorted(set(current) - set(baseline)):
            print(
                f"  WARNING    {name}: {current[name]:.3g}/s — missing from baseline "
                f"{args.baseline}, skipping (regenerate the baseline to gate it)"
            )

    for fast, slow, ratio_text in args.min_speedup:
        want = float(ratio_text)
        missing = [n for n in (fast, slow) if n not in current]
        if missing:
            failures.append(f"speedup gate: benchmark(s) missing from current run: {missing}")
            continue
        got = current[fast] / current[slow]
        status = "OK" if got >= want else "TOO SLOW"
        print(f"  {status:<10} speedup {fast} / {slow} = {got:.2f}x (need >= {want}x)")
        if got < want:
            failures.append(f"{fast} is only {got:.2f}x of {slow}, need >= {want}x")

    if failures:
        print("\ncheck_bench: FAIL")
        for failure in failures:
            print(f"  - {failure}")
        return 1
    print("\ncheck_bench: PASS")
    return 0


if __name__ == "__main__":
    sys.exit(main())
