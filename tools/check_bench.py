#!/usr/bin/env python3
"""CI perf gate for Google-Benchmark JSON output.

Compares a fresh benchmark run against a checked-in baseline and fails on a
>Nx throughput regression (default 2x — wide enough to absorb runner-hardware
variance, tight enough to catch a hot path falling off a cliff).  Can also
assert a minimum speedup between two benchmarks of the *current* run, which
is how the batched-vs-single-query and inplace-vs-recreate acceptance ratios
are enforced.

Benchmarks missing from the baseline (e.g. a freshly added binary whose
baseline has not been regenerated yet) are *skipped with a warning*, never
failed: a new benchmark must not brick the gate before its baseline lands.
A missing baseline file is likewise a warning, not an error.

Regenerate a baseline after an intentional perf change (from a Release
build, so numbers are comparable to CI) with:

  ./build/bench/bench_e18_query_pipeline --benchmark_min_time=0.05 \\
      --benchmark_format=json > bench/baselines/bench_e18.json
  ./build/bench/bench_e19_mutation --benchmark_min_time=0.3 \\
      --benchmark_format=json > bench/baselines/bench_e19.json
  ./build/bench/bench_e20_service --benchmark_min_time=0.05 \\
      --benchmark_format=json > bench/baselines/bench_e20.json
  ./build/bench/bench_e25_cluster --benchmark_min_time=0.05 \\
      --benchmark_format=json > bench/baselines/bench_e25.json

(Newer Google Benchmark wants a unit suffix: --benchmark_min_time=0.05s.)

Latency gating: benchmarks may publish per-request latency percentiles as
user counters (bench_e21 emits `p50_us` / `p99_us`).  Passing
`--latency-counter NAME` (repeatable) gates each named counter against the
baseline with `--max-latency-regression` — latency is lower-is-better, so
the failing direction is current/baseline exceeding the limit, the inverse
of the throughput gate.  Counters missing from either side are skipped with
a warning, mirroring the throughput behavior.

Multi-process aggregates: a benchmark that drives several backend processes
can publish one user counter per backend (bench_e25 emits
`backend_qps_b0/b1/b2` on `router-3/snapshot/real_time`).  Passing
`--sum-counters BENCH PREFIX AS` sums every counter on BENCH whose name
starts with PREFIX — max over repetitions, same one-sided-noise logic as
throughput — and injects the total into the current run as a synthetic
series named AS, so the ratio gates below can reference it like any real
benchmark.  BENCH absent from the run, or no counter matching PREFIX, is a
hard failure: an aggregate gate that silently sums nothing gates nothing.

Intra-run ratio gates come in two spellings.  `--min-speedup FAST SLOW RATIO`
takes all three in one flag.  The zipped form — repeatable `--ratio-num NAME`
/ `--ratio-den NAME` / `--min-ratio R` triples, matched by position — reads
better in CI YAML when several gates stack (each leg on its own line), and is
how the parallel-vs-serial coloring speedup is enforced.  The i-th gate fails
when current[num_i]/current[den_i] < ratio_i; mismatched list lengths are a
usage error.

Usage:
  check_bench.py --current out.json [--baseline bench/baselines/bench_e18.json]
                 [--max-regression 2.0]
                 [--sum-counters BENCH PREFIX AS]...
                 [--min-speedup FAST_NAME SLOW_NAME RATIO]
                 [--ratio-num NAME --ratio-den NAME --min-ratio R]...
                 [--latency-counter p50_us] [--max-latency-regression 2.0]

Exit status: 0 when every gate passes, 1 otherwise.
"""

from __future__ import annotations

import argparse
import json
import os
import sys


def load_rates(path: str) -> dict[str, float]:
    """Benchmark name -> items_per_second, skipping entries without a rate.

    A run made with --benchmark_repetitions produces several iteration
    entries per name (plus aggregates, which are ignored); the *fastest*
    repetition is used.  Shared-runner noise is one-sided — interference
    only ever slows a repetition down — so the max is the cleanest sample
    of each benchmark and the stablest basis for ratio gates.  Pair it with
    --benchmark_enable_random_interleaving so no benchmark systematically
    runs during the hot/busy tail of the process.
    """
    with open(path, encoding="utf-8") as f:
        doc = json.load(f)
    rates: dict[str, float] = {}
    for bench in doc.get("benchmarks", []):
        rate = bench.get("items_per_second")
        if rate is None or bench.get("run_type", "iteration") != "iteration":
            continue
        name = bench.get("run_name", bench["name"])
        rates[name] = max(rates.get(name, 0.0), float(rate))
    return rates


def load_counters(path: str, counter_names: list[str]) -> dict[tuple[str, str], float]:
    """(benchmark name, counter name) -> counter value for the named counters.

    Latency counters are lower-is-better and their noise is one-sided the
    other way round from throughput — interference only ever *inflates* a
    repetition's tail — so the *minimum* over repetitions is the cleanest
    sample and the stablest basis for the regression ratio.
    """
    with open(path, encoding="utf-8") as f:
        doc = json.load(f)
    values: dict[tuple[str, str], float] = {}
    for bench in doc.get("benchmarks", []):
        if bench.get("run_type", "iteration") != "iteration":
            continue
        name = bench.get("run_name", bench["name"])
        for counter in counter_names:
            value = bench.get(counter)
            if value is None:
                continue
            key = (name, counter)
            values[key] = min(values.get(key, float("inf")), float(value))
    return values


def sum_prefixed_counters(path: str, bench: str, prefix: str) -> float | None:
    """Sum of user counters on `bench` whose names start with `prefix`.

    Per iteration entry the matching counters are summed (one counter per
    backend process → the sum is the aggregate rate); across repetitions the
    *maximum* sum is kept, for the same reason load_rates keeps the fastest
    repetition: shared-runner interference only ever pushes the aggregate
    down.  Returns None when no iteration of `bench` carries a matching
    counter — the caller treats that as a hard failure.
    """
    with open(path, encoding="utf-8") as f:
        doc = json.load(f)
    best: float | None = None
    for entry in doc.get("benchmarks", []):
        if entry.get("run_type", "iteration") != "iteration":
            continue
        name = entry.get("run_name", entry["name"])
        if name != bench:
            continue
        matched = [
            float(value)
            for key, value in entry.items()
            if key.startswith(prefix) and isinstance(value, (int, float))
        ]
        if not matched:
            continue
        total = sum(matched)
        best = total if best is None else max(best, total)
    return best


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--current", required=True, help="JSON from the fresh run")
    parser.add_argument("--baseline", help="checked-in baseline JSON")
    parser.add_argument(
        "--max-regression",
        type=float,
        default=2.0,
        help="fail when baseline/current throughput exceeds this (default 2.0)",
    )
    parser.add_argument(
        "--sum-counters",
        nargs=3,
        metavar=("BENCH", "PREFIX", "AS"),
        action="append",
        default=[],
        help="sum user counters starting with PREFIX on benchmark BENCH into a "
        "synthetic series named AS (usable in ratio gates); repeatable",
    )
    parser.add_argument(
        "--min-speedup",
        nargs=3,
        metavar=("FAST", "SLOW", "RATIO"),
        action="append",
        default=[],
        help="fail when current[FAST]/current[SLOW] < RATIO",
    )
    parser.add_argument(
        "--ratio-num",
        action="append",
        default=[],
        metavar="NAME",
        help="numerator benchmark of a zipped ratio gate; repeatable",
    )
    parser.add_argument(
        "--ratio-den",
        action="append",
        default=[],
        metavar="NAME",
        help="denominator benchmark of a zipped ratio gate; repeatable",
    )
    parser.add_argument(
        "--min-ratio",
        action="append",
        type=float,
        default=[],
        metavar="R",
        help="minimum current[num]/current[den] of a zipped ratio gate; repeatable",
    )
    parser.add_argument(
        "--latency-counter",
        action="append",
        default=[],
        metavar="NAME",
        help="user counter (e.g. p50_us) to gate against the baseline; repeatable",
    )
    parser.add_argument(
        "--max-latency-regression",
        type=float,
        default=2.0,
        help="fail when current/baseline latency exceeds this (default 2.0)",
    )
    args = parser.parse_args()

    if not len(args.ratio_num) == len(args.ratio_den) == len(args.min_ratio):
        parser.error(
            "--ratio-num/--ratio-den/--min-ratio must appear the same number of "
            f"times (got {len(args.ratio_num)}/{len(args.ratio_den)}/{len(args.min_ratio)})"
        )

    current = load_rates(args.current)
    if not current:
        print(f"check_bench: no benchmarks with items_per_second in {args.current}")
        return 1

    failures = []

    if args.baseline and not os.path.exists(args.baseline):
        print(
            f"check_bench: WARNING — baseline file {args.baseline} does not exist; "
            "no baseline, skipping regression gate (regen command in the file header)"
        )
        for name in sorted(current):
            print(f"  WARNING    {name}: ungated (no baseline file)")
    elif args.baseline:
        baseline = load_rates(args.baseline)
        shared = sorted(set(current) & set(baseline))
        if not shared:
            print(
                "check_bench: WARNING — no benchmark names shared with the baseline\n"
                f"  current run has:  {sorted(current)}\n"
                f"  baseline has:     {sorted(baseline)}"
            )
        # A baseline entry the fresh run no longer produces is how a renamed
        # benchmark silently drops out of the gate — name the dropouts.
        for name in sorted(set(baseline) - set(current)):
            print(
                f"  WARNING    {name}: in baseline ({baseline[name]:.3g}/s) but "
                "missing from the current run — renamed or removed?"
            )
        for name in shared:
            ratio = baseline[name] / current[name]
            status = "OK"
            if ratio > args.max_regression:
                status = "REGRESSION"
                failures.append(
                    f"{name}: {current[name]:.3g} items/s is {ratio:.2f}x below "
                    f"baseline {baseline[name]:.3g} (limit {args.max_regression}x)"
                )
            print(
                f"  {status:<10} {name}: current {current[name]:.3g}/s, "
                f"baseline {baseline[name]:.3g}/s ({ratio:.2f}x)"
            )
        for name in sorted(set(current) - set(baseline)):
            print(
                f"  WARNING    {name}: {current[name]:.3g}/s — missing from baseline "
                f"{args.baseline}, skipping (regenerate the baseline to gate it)"
            )

    if args.latency_counter and args.baseline and os.path.exists(args.baseline):
        current_lat = load_counters(args.current, args.latency_counter)
        baseline_lat = load_counters(args.baseline, args.latency_counter)
        for name, counter in sorted(set(current_lat) & set(baseline_lat)):
            cur = current_lat[(name, counter)]
            base = baseline_lat[(name, counter)]
            # A zero baseline (sub-microsecond percentile) makes the ratio
            # meaningless; treat it as 1us so the gate stays finite.
            ratio = cur / max(base, 1.0)
            status = "OK"
            if ratio > args.max_latency_regression:
                status = "REGRESSION"
                failures.append(
                    f"{name} {counter}: {cur:.3g}us is {ratio:.2f}x above "
                    f"baseline {base:.3g}us (limit {args.max_latency_regression}x)"
                )
            print(
                f"  {status:<10} {name} {counter}: current {cur:.3g}us, "
                f"baseline {base:.3g}us ({ratio:.2f}x)"
            )
        for name, counter in sorted(set(current_lat) ^ set(baseline_lat)):
            side = "current run" if (name, counter) in baseline_lat else "baseline"
            print(
                f"  WARNING    {name} {counter}: missing from the {side}, "
                "skipping latency gate"
            )
    elif args.latency_counter:
        print(
            "check_bench: WARNING — latency counters requested but no baseline "
            "file; skipping latency gate"
        )

    # Synthetic aggregate series must exist before the ratio gates read
    # `current`.  A gate whose benchmark or counters are absent fails hard:
    # summing nothing and then passing a >= check against it would be a
    # green light with no measurement behind it.
    for bench, prefix, alias in args.sum_counters:
        total = sum_prefixed_counters(args.current, bench, prefix)
        if total is None:
            suffix = "" if bench in current else " (benchmark missing from the run)"
            failures.append(
                f"sum-counters gate: no counter starting with {prefix!r} on "
                f"{bench!r} in {args.current}{suffix}"
            )
            continue
        current[alias] = total
        print(f"  AGGREGATE  {alias} = sum of {prefix}* on {bench} = {total:.3g}/s")

    ratio_gates = [(fast, slow, float(ratio)) for fast, slow, ratio in args.min_speedup]
    ratio_gates += list(zip(args.ratio_num, args.ratio_den, args.min_ratio))
    for fast, slow, want in ratio_gates:
        missing = [n for n in (fast, slow) if n not in current]
        if missing:
            failures.append(f"speedup gate: benchmark(s) missing from current run: {missing}")
            continue
        got = current[fast] / current[slow]
        status = "OK" if got >= want else "TOO SLOW"
        print(f"  {status:<10} speedup {fast} / {slow} = {got:.2f}x (need >= {want}x)")
        if got < want:
            failures.append(f"{fast} is only {got:.2f}x of {slow}, need >= {want}x")

    if failures:
        print("\ncheck_bench: FAIL")
        for failure in failures:
            print(f"  - {failure}")
        return 1
    print("\ncheck_bench: PASS")
    return 0


if __name__ == "__main__":
    sys.exit(main())
