#!/usr/bin/env python3
"""CI gate for a Prometheus /metrics scrape.

Validates that a scraped exposition (from fhg_serve --stats-port, or any
other fhg::obs `to_prometheus` output) is well-formed and that the metrics
the serving stack must emit are present — and, for counters that a load
burst must have moved, nonzero.  Series are summed across label variants
(`fhg_service_accepted_total{shard="0"}` and `{shard="1"}` both count
toward `fhg_service_accepted_total`), so shard layout does not matter.

Usage:
  check_metrics.py --file scrape.txt
                   [--require NAME ...]            # present (any value)
                   [--require-nonzero NAME ...]    # present and summing > 0
                   [--require-at-least NAME VALUE] # present and summing >= VALUE
                                                   # (repeatable; how the 10k-
                                                   # connection job asserts the
                                                   # connection high-water mark)

Exit status: 0 when every requirement holds, 1 otherwise (with the offending
names and a scrape summary on stdout).
"""

from __future__ import annotations

import argparse
import re
import sys

# One sample line: name, optional {labels}, numeric value (int, float, +Inf).
SAMPLE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?P<labels>\{[^}]*\})?"
    r"\s+(?P<value>[-+]?(?:[0-9]*\.?[0-9]+(?:[eE][-+]?[0-9]+)?|Inf|NaN))$"
)


def load_series(path: str) -> tuple[dict[str, float], list[str]]:
    """Base metric name -> summed value, plus any malformed lines."""
    series: dict[str, float] = {}
    malformed: list[str] = []
    with open(path, encoding="utf-8") as f:
        for raw in f:
            line = raw.rstrip("\n")
            if not line or line.startswith("#"):
                continue
            match = SAMPLE.match(line)
            if not match:
                malformed.append(line)
                continue
            value = match.group("value")
            number = float("inf") if value.endswith("Inf") else float(value)
            series[match.group("name")] = series.get(match.group("name"), 0.0) + number
    return series, malformed


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--file", required=True, help="the scraped exposition text")
    parser.add_argument(
        "--require", nargs="*", default=[], help="metric names that must be present"
    )
    parser.add_argument(
        "--require-nonzero",
        nargs="*",
        default=[],
        help="metric names that must be present and sum to a nonzero value",
    )
    parser.add_argument(
        "--require-at-least",
        nargs=2,
        metavar=("NAME", "VALUE"),
        action="append",
        default=[],
        help="metric that must be present and sum to >= VALUE; repeatable",
    )
    args = parser.parse_args()

    series, malformed = load_series(args.file)
    failures = []
    for line in malformed:
        failures.append(f"malformed exposition line: {line!r}")
    if not series:
        failures.append(f"no metric samples found in {args.file}")

    for name in args.require:
        if name not in series:
            failures.append(f"required metric missing: {name}")
        else:
            print(f"  OK         {name} present ({series[name]:g})")
    for name in args.require_nonzero:
        if name not in series:
            failures.append(f"required metric missing: {name}")
        elif series[name] == 0:
            failures.append(f"required metric is zero: {name}")
        else:
            print(f"  OK         {name} = {series[name]:g}")
    for name, floor_text in args.require_at_least:
        floor = float(floor_text)
        if name not in series:
            failures.append(f"required metric missing: {name}")
        elif series[name] < floor:
            failures.append(f"metric below floor: {name} = {series[name]:g} < {floor:g}")
        else:
            print(f"  OK         {name} = {series[name]:g} (>= {floor:g})")

    if failures:
        print(f"\ncheck_metrics: FAIL ({len(series)} series scraped)")
        for failure in failures:
            print(f"  - {failure}")
        return 1
    print(f"\ncheck_metrics: PASS ({len(series)} series scraped)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
