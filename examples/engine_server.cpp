// engine_server — drive the multi-tenant fhg::engine from the command line.
//
// Loads a scenario file (one instance per line) or generates a deterministic
// `fhg::workload` fleet, then runs a mixed step/query workload — batched
// through the lock-free query pipeline — and prints throughput plus fairness
// audits: the serving-layer view of the paper, schedules as long-lived
// tenants answering membership queries in O(1).
//
// In workload mode the server then becomes a closed-loop multi-threaded
// load generator for the unified `fhg::api` protocol: `--clients` threads
// each drive an `api::Client` over an `InProcessTransport` wrapping the
// sharded `fhg::service` front-end, so every request round-trips the full
// wire codec (encode → decode → shard FIFO → coalesced engine batch →
// encode → decode) exactly as a TCP client's would — see `fhg_serve` for
// the socket twin of this loop.  A verification pass then re-submits a
// sample through a fresh service and compares every answer against the
// direct synchronous path.
//
// Exits nonzero when any sampled fairness audit violates its gap bound, the
// snapshot restore round trip is not byte-identical, the restored engine
// answers a probe round differently from the original, or the service phase
// loses a request or answers one differently from the direct path — so CI
// smoke steps actually fail on a regression.
//
// Usage:
//   engine_server [--scenario FILE | --workload SPEC | --fleet N]
//                 [--steps N] [--queries N]
//                 [--churn-rounds N] [--mutation-rounds N]
//                 [--service-requests N] [--service-shards N] [--clients N]
//                 [--threads N] [--shards N] [--snapshot FILE] [--seed S]
//
// Workload specs are `family[:key=value,...]` with families ring, grid,
// power-law, random-geometric, gnp and keys fleet, nodes, seed, churn,
// aperiodic, dynamic, mutation, next, horizon (see
// fhg/workload/scenario.hpp).  `--mutation-rounds` drives the in-place
// topology-mutation path: each round sends every selected dynamic tenant a
// seeded marry/divorce/add-node mix through `Engine::apply_mutations`
// (`dynamic` > 0 and `mutation` > 0 required for it to do anything);
// `--churn-rounds` remains the whole-tenant-replacement fallback.
//
// Scenario file format (blank lines and '#' comments ignored):
//   <name> <kind> <graph-spec> [seed]
// with kind one of: round-robin phased-greedy prefix-code degree-bound fcfg
// and graph specs as in fhg_cli (gnp:n,p ba:n,m grid:r,c clique:n star:n
// cycle:n tree:n regular:n,d — or a file path).
//
// Examples:
//   engine_server --workload power-law:fleet=5000,churn=0.02 --steps 256
//   engine_server --fleet 5000 --steps 256 --queries 1000000
//   engine_server --scenario tenants.txt --snapshot state.fhgs

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <map>
#include <optional>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "fhg/analysis/table.hpp"
#include "fhg/api/client.hpp"
#include "fhg/api/protocol.hpp"
#include "fhg/api/transport.hpp"
#include "fhg/engine/engine.hpp"
#include "fhg/graph/generators.hpp"
#include "fhg/graph/io.hpp"
#include "fhg/obs/format.hpp"
#include "fhg/parallel/rng.hpp"
#include "fhg/service/service.hpp"
#include "fhg/workload/scenario.hpp"

namespace {

using namespace fhg;
using Clock = std::chrono::steady_clock;

[[noreturn]] void usage(const std::string& error) {
  std::cerr << "engine_server: " << error << "\n"
            << "usage: engine_server [--scenario FILE | --workload SPEC | --fleet N]\n"
            << "                     [--steps N] [--queries N]\n"
            << "                     [--churn-rounds N] [--mutation-rounds N]\n"
            << "                     [--service-requests N] [--service-shards N] [--clients N]\n"
            << "                     [--threads N] [--shards N] [--snapshot FILE] [--seed S]\n"
            << "workload specs: family[:key=value,...], families: ring grid power-law\n"
            << "                random-geometric gnp\n"
            << "                keys: fleet nodes seed churn aperiodic dynamic mutation\n"
            << "                      next horizon cmds\n"
            << "                presets (single large dynamic tenant; overrides apply):\n"
            << "                      powerlaw-1m geometric-1m\n"
            << "                      e.g. powerlaw-1m:nodes=131072,cmds=512\n"
            << "  --mutation-rounds N  apply N rounds of in-place topology mutations\n"
            << "                       (marry/divorce/add-node) to the `mutation` fraction\n"
            << "                       of the fleet; needs dynamic>0 tenants\n"
            << "  --churn-rounds N     whole-tenant replacement fallback for the `churn`\n"
            << "                       fraction of the fleet\n"
            << "  --service-requests N closed-loop requests through the fhg::service\n"
            << "                       front-end (default: --queries; 0 disables;\n"
            << "                       workload mode only)\n"
            << "  --service-shards N   service shard/worker count (default 4)\n"
            << "  --clients N          load-generator client threads (default 4)\n"
            << "scenario lines: <name> <kind> <graph-spec> [seed]\n"
            << "kinds: round-robin phased-greedy prefix-code degree-bound fcfg\n"
            << "       dynamic-prefix-code\n";
  std::exit(2);
}

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

std::vector<std::string> split(const std::string& s, char delim) {
  std::vector<std::string> parts;
  std::stringstream stream(s);
  std::string part;
  while (std::getline(stream, part, delim)) {
    parts.push_back(part);
  }
  return parts;
}

graph::Graph make_graph(const std::string& spec, std::uint64_t seed) {
  const auto colon = spec.find(':');
  if (colon == std::string::npos) {
    return graph::load_graph_file(spec);
  }
  const std::string kind = spec.substr(0, colon);
  const auto args = split(spec.substr(colon + 1), ',');
  const auto arg = [&](std::size_t i) -> std::uint64_t {
    if (i >= args.size()) {
      usage("graph spec '" + spec + "' is missing parameter " + std::to_string(i + 1));
    }
    return std::strtoull(args[i].c_str(), nullptr, 10);
  };
  const auto farg = [&](std::size_t i) -> double {
    if (i >= args.size()) {
      usage("graph spec '" + spec + "' is missing parameter " + std::to_string(i + 1));
    }
    return std::strtod(args[i].c_str(), nullptr);
  };
  if (kind == "gnp") {
    return graph::gnp(static_cast<graph::NodeId>(arg(0)), farg(1), seed);
  }
  if (kind == "ba") {
    return graph::barabasi_albert(static_cast<graph::NodeId>(arg(0)),
                                  static_cast<std::uint32_t>(arg(1)), seed);
  }
  if (kind == "grid") {
    return graph::grid2d(static_cast<graph::NodeId>(arg(0)), static_cast<graph::NodeId>(arg(1)));
  }
  if (kind == "clique") {
    return graph::clique(static_cast<graph::NodeId>(arg(0)));
  }
  if (kind == "star") {
    return graph::star(static_cast<graph::NodeId>(arg(0)));
  }
  if (kind == "cycle") {
    return graph::cycle(static_cast<graph::NodeId>(arg(0)));
  }
  if (kind == "tree") {
    return graph::random_tree(static_cast<graph::NodeId>(arg(0)), seed);
  }
  if (kind == "regular") {
    return graph::random_regular(static_cast<graph::NodeId>(arg(0)),
                                 static_cast<std::uint32_t>(arg(1)), seed);
  }
  usage("unknown graph kind '" + kind + "'");
}

void load_scenario(engine::Engine& eng, const std::string& path, std::uint64_t default_seed) {
  std::ifstream in(path);
  if (!in) {
    usage("cannot open scenario file '" + path + "'");
  }
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    std::istringstream fields(line);
    std::string name;
    if (!(fields >> name) || name.starts_with('#')) {
      continue;
    }
    std::string kind_name;
    std::string graph_spec;
    if (!(fields >> kind_name >> graph_spec)) {
      usage("scenario line " + std::to_string(line_no) + ": expected <name> <kind> <graph-spec>");
    }
    const auto kind = engine::parse_scheduler_kind(kind_name);
    if (!kind) {
      usage("scenario line " + std::to_string(line_no) + ": unknown kind '" + kind_name + "'");
    }
    std::uint64_t seed = default_seed;
    fields >> seed;
    engine::InstanceSpec spec;
    spec.kind = *kind;
    spec.seed = seed;
    try {
      (void)eng.create_instance(name, make_graph(graph_spec, seed), std::move(spec));
    } catch (const std::exception& e) {
      // e.g. duplicate names, or a weighted spec (which needs per-node
      // periods the scenario grammar cannot express).
      usage("scenario line " + std::to_string(line_no) + ": " + e.what());
    }
  }
}

/// Closed-loop multi-threaded load generation through the unified protocol:
/// each client thread submits its deterministic `api::Request` stream into
/// `Service::handle` with a bounded window of outstanding requests, so the
/// shard workers actually accumulate queues to coalesce and the typed
/// `kQueueFull` backpressure/retry path stays exercised.  After the drain a
/// verification pass re-submits a sample of pure queries through an
/// `api::Client` over `InProcessTransport` (the full wire-codec path) and
/// compares every answer against the direct synchronous path.  Returns
/// false when a request failed unexpectedly or answered differently from
/// the direct path.
bool run_service_phase(engine::Engine& eng, const workload::ScenarioGenerator& generator,
                       std::uint64_t requests, std::size_t shards, std::size_t clients) {
  constexpr std::size_t kWindow = 256;  ///< outstanding requests per client
  // Serve exactly `requests`: an even share per client, the last client
  // absorbing the remainder.
  const std::uint64_t total = std::max<std::uint64_t>(requests, clients);
  const std::uint64_t per_client = total / clients;

  std::atomic<std::uint64_t> hits{0};
  std::atomic<std::uint64_t> answered{0};
  std::atomic<std::uint64_t> mutations_applied{0};
  std::atomic<std::uint64_t> mutations_refused{0};
  std::atomic<std::uint64_t> completed{0};
  std::atomic<std::uint64_t> failed{0};

  service::Service service(eng, {.shards = shards});
  const auto start = Clock::now();
  std::vector<std::thread> threads;
  threads.reserve(clients);
  for (std::size_t c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      const std::uint64_t share =
          c + 1 == clients ? total - per_client * (clients - 1) : per_client;
      const auto stream = generator.request_stream(static_cast<std::size_t>(share), 1 + c);
      std::atomic<std::uint64_t> outstanding{0};
      for (const api::Request& request : stream) {
        while (outstanding.load(std::memory_order_acquire) >= kWindow) {
          std::this_thread::yield();
        }
        const bool is_mutation = std::holds_alternative<api::ApplyMutationsRequest>(request);
        outstanding.fetch_add(1, std::memory_order_acq_rel);
        for (;;) {
          // `kQueueFull` responses are delivered synchronously on this
          // thread before `handle` returns, so `queue_full` is safe to read
          // right after; accepted requests complete later on the shard
          // worker, whose callback path touches only the long-lived atomics
          // and the by-value `is_mutation` flag.
          bool queue_full = false;
          service.handle(request, [&hits, &answered, &mutations_applied, &mutations_refused,
                                   &completed, &failed, &outstanding, &queue_full,
                                   is_mutation](api::Response response) {
            if (response.status.code == api::StatusCode::kQueueFull) {
              queue_full = true;  // synchronous reject: retry without settling
              return;
            }
            completed.fetch_add(1, std::memory_order_relaxed);
            if (const auto* happy = std::get_if<api::IsHappyResponse>(&response.payload)) {
              hits.fetch_add(happy->happy ? 1 : 0, std::memory_order_relaxed);
            } else if (const auto* next =
                           std::get_if<api::NextGatheringResponse>(&response.payload)) {
              answered.fetch_add(next->holiday != engine::kNoGathering ? 1 : 0,
                                 std::memory_order_relaxed);
            } else if (const auto* mutated =
                           std::get_if<api::ApplyMutationsResponse>(&response.payload)) {
              mutations_applied.fetch_add(mutated->applied, std::memory_order_relaxed);
            } else if (!response.ok() && is_mutation) {
              // A refused mutation is not fatal: churn may have replaced
              // the slot with a non-dynamic recipe since the stream was
              // derived.
              mutations_refused.fetch_add(1, std::memory_order_relaxed);
            } else if (!response.ok()) {
              failed.fetch_add(1, std::memory_order_relaxed);
            }
            outstanding.fetch_sub(1, std::memory_order_acq_rel);
          });
          if (!queue_full) {
            break;
          }
          std::this_thread::yield();  // backpressure: closed loop waits and retries
        }
      }
      while (outstanding.load(std::memory_order_acquire) > 0) {
        std::this_thread::yield();
      }
    });
  }
  for (std::thread& thread : threads) {
    thread.join();
  }
  const double load_s = seconds_since(start);
  service.drain();

  std::cout << "service: " << total << " protocol requests via " << clients << " clients x "
            << shards << " shards in " << load_s << "s ("
            << static_cast<double>(total) / load_s << " requests/sec), hit rate "
            << static_cast<double>(hits.load()) / static_cast<double>(std::max<std::uint64_t>(total, 1))
            << ", next-gathering answered " << answered.load() << ", mutation commands applied "
            << mutations_applied.load() << " (" << mutations_refused.load()
            << " batches refused)\n";

  const service::ShardMetrics totals = service.metrics().totals();
  // The same per-shard counters the GetStats protocol request serves,
  // through the shared fhg::obs formatter — not a bespoke table.
  api::GetStatsRequest stats_request;
  stats_request.include_traces = false;
  analysis::print_section(std::cout, "service metrics");
  std::cout << obs::to_text(service.stats(stats_request).metrics);

  bool ok = true;
  if (completed.load() != totals.accepted) {
    std::cerr << "engine_server: FAIL — service completed " << completed.load() << " of "
              << totals.accepted << " accepted requests\n";
    ok = false;
  }
  if (failed.load() != 0) {
    std::cerr << "engine_server: FAIL — " << failed.load()
              << " service requests failed or were dropped\n";
    ok = false;
  }

  // Verification pass: a fresh sample of pure queries through a fresh
  // service, compared answer-by-answer against the direct synchronous path.
  // No mutations are in flight, so both must agree.
  const auto sample = generator.request_stream(
      static_cast<std::size_t>(std::min<std::uint64_t>(total, 5'000)), 424242);
  service::Service checker(eng, {.shards = 2});
  api::Client check_client(std::make_unique<api::InProcessTransport>(checker));
  std::size_t verified = 0;
  std::size_t mismatched = 0;
  for (const api::Request& request : sample) {
    if (const auto* happy = std::get_if<api::IsHappyRequest>(&request)) {
      const auto served = check_client.is_happy(happy->instance, happy->node, happy->holiday);
      if (!served.ok() ||
          served.value != eng.is_happy(happy->instance, happy->node, happy->holiday)) {
        ++mismatched;
      }
    } else if (const auto* next = std::get_if<api::NextGatheringRequest>(&request)) {
      const auto served = check_client.next_gathering(next->instance, next->node, next->after);
      const auto direct = eng.next_gathering(next->instance, next->node, next->after);
      if (!served.ok() || served.value != direct.value_or(engine::kNoGathering)) {
        ++mismatched;
      }
    } else {
      continue;  // mutations are not re-applied during verification
    }
    ++verified;
  }
  checker.drain();
  std::cout << "service check: " << verified << " sampled answers "
            << (mismatched == 0 ? "match" : "MISMATCH") << " the direct path\n";
  if (mismatched != 0) {
    std::cerr << "engine_server: FAIL — " << mismatched
              << " service answers diverged from the direct path\n";
    ok = false;
  }
  return ok;
}

}  // namespace

int main(int argc, char** argv) {
  std::map<std::string, std::string> options;
  for (int i = 1; i + 1 < argc; i += 2) {
    const std::string key = argv[i];
    if (key.rfind("--", 0) != 0) {
      usage("expected an option, got '" + key + "'");
    }
    options[key.substr(2)] = argv[i + 1];
  }
  const auto uint_option = [&](const std::string& key, std::uint64_t fallback) {
    return options.count(key) ? std::strtoull(options[key].c_str(), nullptr, 10) : fallback;
  };
  const std::uint64_t seed = uint_option("seed", 1);
  const std::uint64_t steps = uint_option("steps", 128);
  const std::uint64_t queries = uint_option("queries", 200'000);
  const std::uint64_t churn_rounds = uint_option("churn-rounds", 1);
  const std::uint64_t mutation_rounds = uint_option("mutation-rounds", 0);

  engine::Engine eng({.shards = static_cast<std::size_t>(uint_option("shards", 32)),
                      .threads = static_cast<std::size_t>(uint_option("threads", 0))});
  std::optional<workload::ScenarioGenerator> generator;
  const auto build_start = Clock::now();
  if (options.count("scenario")) {
    load_scenario(eng, options["scenario"], seed);
  } else {
    // Deterministic fhg::workload fleet: either an explicit scenario string
    // or the default power-law family sized by --fleet.
    auto spec = workload::parse_scenario(
        options.count("workload") ? options["workload"] : "power-law");
    if (!spec) {
      usage("bad workload spec '" + options["workload"] + "'");
    }
    if (options.count("fleet")) {
      spec->fleet = static_cast<std::size_t>(uint_option("fleet", 1000));
    }
    if (!options.count("workload") && !options.count("fleet")) {
      spec->fleet = 1000;
    }
    // CLI flags fill in only what the workload string left unspecified —
    // `seed=`/`horizon=` keys in the spec win over --seed/--steps.
    if (options["workload"].find("seed=") == std::string::npos) {
      spec->seed = seed;
    }
    if (options["workload"].find("horizon=") == std::string::npos) {
      spec->horizon = std::max<std::uint64_t>(steps, 1);
    }
    generator.emplace(*spec);
    generator->populate(eng);
    std::cout << "workload: " << workload::scenario_name(generator->spec()) << "\n";
  }
  std::cout << "engine: " << eng.num_instances() << " instances ("
            << seconds_since(build_start) << "s to build)\n";
  if (eng.num_instances() == 0) {
    usage("no instances (empty scenario?)");
  }

  // Step phase: advance every tenant in parallel.
  const auto step_start = Clock::now();
  const auto stats = eng.step_all(steps);
  const double step_s = seconds_since(step_start);
  std::cout << "step_all(" << steps << "): " << stats.holidays << " holidays, "
            << stats.total_happy << " happy visits, "
            << static_cast<double>(stats.holidays) / step_s << " holidays/sec\n";

  // Mutation phase: live topology mutations served in place — dynamic
  // tenants recolor and republish their period tables at a new epoch, no
  // tenant is destroyed, gap history survives.
  if (generator && mutation_rounds > 0) {
    std::size_t applied = 0;
    const auto mutate_start = Clock::now();
    for (std::uint64_t round = 0; round < mutation_rounds; ++round) {
      applied += generator->mutation_round(eng, round);
    }
    std::cout << "mutations: " << applied << " commands applied in place over "
              << mutation_rounds << " round(s) (" << seconds_since(mutate_start) << "s)\n";
  }

  // Churn phase (fallback mode): replace a deterministic slice of the fleet
  // wholesale, forcing the query snapshot to be republished at a new epoch.
  if (generator && generator->spec().churn > 0.0) {
    std::vector<std::uint64_t> generations(generator->spec().fleet, 0);
    std::size_t replaced = 0;
    for (std::uint64_t round = 0; round < churn_rounds; ++round) {
      replaced += generator->churn_round(eng, round, generations);
    }
    std::cout << "churn: " << replaced << " tenants replaced over " << churn_rounds
              << " round(s)\n";
  }

  // Query phase: batched membership + next-gathering probes through the
  // lock-free snapshot pipeline.
  std::uint64_t hits = 0;
  std::uint64_t answered = 0;
  std::uint64_t total = 0;
  const auto query_start = Clock::now();
  const auto snapshot = eng.query_snapshot();
  if (generator) {
    const workload::ProbeRound round = generator->probes(*snapshot, queries);
    const std::vector<std::uint8_t> members = eng.query_batch(round.membership);
    const std::vector<std::uint64_t> nexts = eng.next_gathering_batch(round.next_gathering);
    for (const std::uint8_t m : members) {
      hits += m;
    }
    for (const std::uint64_t t : nexts) {
      answered += t != engine::kNoGathering ? 1 : 0;
    }
    total = members.size() + nexts.size();
  } else {
    // Scenario files have no workload generator; probe uniformly.
    parallel::Rng rng(seed);
    std::vector<engine::Probe> probes(queries);
    for (auto& probe : probes) {
      probe.instance = static_cast<std::uint32_t>(rng.uniform_below(snapshot->size()));
      probe.node = static_cast<graph::NodeId>(
          rng.uniform_below(snapshot->instance(probe.instance)->graph().num_nodes()));
      probe.holiday = 1 + rng.uniform_below(std::max<std::uint64_t>(steps, 1));
    }
    for (const std::uint8_t m : eng.query_batch(probes)) {
      hits += m;
    }
    total = probes.size();
  }
  const double query_s = seconds_since(query_start);
  std::cout << "queries: " << total << " batched in " << query_s << "s ("
            << static_cast<double>(total) / query_s << " queries/sec), hit rate "
            << static_cast<double>(hits) / static_cast<double>(total)
            << ", next-gathering answered " << answered << "\n";

  // Service phase: the same engine behind the sharded asynchronous
  // front-end, driven closed-loop from multiple client threads.
  bool service_ok = true;
  const std::uint64_t service_requests = uint_option("service-requests", queries);
  if (generator && service_requests > 0) {
    service_ok = run_service_phase(
        eng, *generator, service_requests,
        static_cast<std::size_t>(uint_option("service-shards", 4)),
        std::max<std::size_t>(1, static_cast<std::size_t>(uint_option("clients", 4))));
  }

  // Fairness audits for a sample of tenants.  A violated gap bound is a
  // correctness failure and fails the run.
  const auto instances = eng.registry().all_sorted();
  bool audits_ok = true;
  analysis::Table audit_table(
      {"instance", "scheduler", "periodic", "horizon", "jain", "throughput", "worst gap", "ok"});
  for (std::size_t i = 0; i < instances.size(); i += std::max<std::size_t>(1, instances.size() / 8)) {
    const auto audit = instances[i]->audit();
    audits_ok = audits_ok && audit.bounds_respected;
    audit_table.row()
        .add(instances[i]->name())
        .add(instances[i]->scheduler_name())
        .add(instances[i]->periodic())
        .add(audit.horizon)
        .add(audit.jain, 3)
        .add(audit.throughput_ratio, 3)
        .add(audit.worst_gap)
        .add(audit.bounds_respected);
  }
  analysis::print_section(std::cout, "fairness audits (sampled tenants)");
  audit_table.print(std::cout);

  // Snapshot phase.
  const auto bytes = eng.snapshot();
  std::cout << "snapshot: " << bytes.size() << " bytes ("
            << static_cast<double>(bytes.size()) / static_cast<double>(eng.num_instances())
            << " bytes/instance)\n";
  if (options.count("snapshot")) {
    std::ofstream out(options["snapshot"], std::ios::binary);
    out.write(reinterpret_cast<const char*>(bytes.data()),
              static_cast<std::streamsize>(bytes.size()));
    std::cout << "snapshot written to " << options["snapshot"] << "\n";
  }
  engine::Engine restored;
  restored.load_snapshot(bytes);
  const bool identical = restored.snapshot() == bytes;
  std::cout << "restore check: " << restored.num_instances() << " instances, round trip "
            << (identical ? "byte-identical" : "MISMATCH") << "\n";

  // Re-query check: the restored engine must answer a fresh probe round
  // exactly like the original — including any schedule versions produced by
  // in-place mutations (the restore replays each tenant's mutation log).
  bool requery_ok = true;
  if (generator) {
    const std::size_t requery_count = static_cast<std::size_t>(std::min<std::uint64_t>(queries, 20'000));
    const workload::ProbeRound round = generator->probes(*eng.query_snapshot(), requery_count, 1);
    requery_ok = eng.query_batch(round.membership) == restored.query_batch(round.membership) &&
                 eng.next_gathering_batch(round.next_gathering) ==
                     restored.next_gathering_batch(round.next_gathering);
    std::cout << "re-query check: " << requery_count << " probes "
              << (requery_ok ? "match" : "MISMATCH") << " after restore\n";
  }
  if (!audits_ok) {
    std::cerr << "engine_server: FAIL — a sampled fairness audit violated its gap bound\n";
  }
  if (!identical) {
    std::cerr << "engine_server: FAIL — snapshot restore round trip not byte-identical\n";
  }
  if (!requery_ok) {
    std::cerr << "engine_server: FAIL — restored engine answers probes differently\n";
  }
  return audits_ok && identical && requery_ok && service_ok ? 0 : 1;
}
