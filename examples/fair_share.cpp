// Fair share — the Appendix A.2 coalition game on a small clan.
//
// What is a family's "fair share" of holiday hosting?  The paper shows the
// natural coalition value (maximum collective happiness = MIS of the induced
// subgraph) makes fair division as hard as approximating MIS, and falls back
// to the `1/(deg+1)` landmark of first-come-first-grab.  On a small clan we
// can afford the exact view: estimate Shapley values by sampling arrival
// orders with an exact-MIS oracle, and compare them with the `1/(d+1)`
// landmark and the frequencies the schedulers actually deliver.
//
// Run:  ./fair_share

#include <iostream>

#include "fhg/analysis/table.hpp"
#include "fhg/core/degree_bound.hpp"
#include "fhg/core/driver.hpp"
#include "fhg/core/fcfg.hpp"
#include "fhg/graph/graph.hpp"
#include "fhg/mis/exact.hpp"
#include "fhg/mis/shapley.hpp"

int main() {
  using namespace fhg;

  // A clan of ten families: a triangle of old families, two chains of
  // newer in-laws, and one family everyone married into.
  const char* names[] = {"Avraham", "Berkovich", "Chazan", "Dayan",  "Eshkol",
                         "Friedman", "Gold",      "Harel",  "Itzhaki", "Jacobi"};
  graph::GraphBuilder builder(10);
  builder.add_edge(0, 1);
  builder.add_edge(1, 2);
  builder.add_edge(0, 2);  // triangle
  builder.add_edge(2, 3);
  builder.add_edge(3, 4);
  builder.add_edge(4, 5);  // chain
  builder.add_edge(6, 7);
  builder.add_edge(7, 8);  // chain
  builder.add_edge(9, 0);
  builder.add_edge(9, 3);
  builder.add_edge(9, 6);  // the connector
  const graph::Graph g = std::move(builder).build();

  const auto mis = mis::exact_mis(g);
  std::cout << "Clan of 10 families, " << g.num_edges()
            << " marriages. Max simultaneous happy families (exact MIS): "
            << mis->independent_set.size() << "\n\n";

  const auto shapley = mis::shapley_estimate(g, /*samples=*/20'000, /*seed=*/1);

  // Long-run frequencies delivered by two schedulers.
  constexpr std::uint64_t kYears = 50'000;
  core::FirstComeFirstGrabScheduler fcfg(g, 11);
  const auto chaotic = core::run_schedule(fcfg, {.horizon = kYears});
  core::DegreeBoundScheduler periodic(g);
  const auto scheduled = core::run_schedule(periodic, {.horizon = kYears});

  analysis::Table table({"family", "children married", "Shapley share", "1/(d+1) landmark",
                         "FCFG freq", "degree-bound freq"});
  for (graph::NodeId v = 0; v < 10; ++v) {
    table.row()
        .add(names[v])
        .add(std::uint64_t{g.degree(v)})
        .add(shapley[v], 3)
        .add(1.0 / (g.degree(v) + 1.0), 3)
        .add(static_cast<double>(chaotic.appearances[v]) / kYears, 3)
        .add(static_cast<double>(scheduled.appearances[v]) / kYears, 3);
  }
  table.print(std::cout);

  std::cout << "\nReading: the Shapley share tracks the 1/(d+1) landmark loosely — structure\n"
               "matters (families inside the triangle share one hosting slot three ways).\n"
               "FCFG matches 1/(d+1) exactly in expectation; the periodic degree-bound\n"
               "scheduler guarantees at least 1/2^ceil(log(d+1)) >= 1/(2d) deterministically.\n";
  return 0;
}
