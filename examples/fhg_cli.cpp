// fhg_cli — run any scheduler on any graph from the command line.
//
// Usage:
//   fhg_cli --graph <spec> --scheduler <name> [--horizon N] [--seed S]
//           [--print-holidays K] [--code gamma|delta|omega|unary]
//
// Graph specs (generator:params) or a file path (.col = DIMACS, else edge
// list):
//   gnp:n,p            Erdős–Rényi            ba:n,m    Barabási–Albert
//   grid:r,c           2-D grid               clique:n  complete graph
//   star:n             star                   cycle:n   cycle
//   tree:n             random tree            regular:n,d  random d-regular
//   bipartite:a,b,p    random bipartite
//
// Schedulers: round-robin | trivial | phased-greedy | prefix | degree-bound
//             | fcfg
//
// Prints the paper-style per-degree table plus audits, and optionally the
// first K happy sets.
//
// Examples:
//   fhg_cli --graph ba:500,3 --scheduler degree-bound
//   fhg_cli --graph gnp:200,0.05 --scheduler prefix --code omega --horizon 4096
//   fhg_cli --graph family.col --scheduler phased-greedy --print-holidays 10

#include <cstdlib>
#include <iostream>
#include <map>
#include <memory>
#include <sstream>
#include <string>

#include "fhg/analysis/stats.hpp"
#include "fhg/analysis/table.hpp"
#include "fhg/coloring/dsatur.hpp"
#include "fhg/coloring/greedy.hpp"
#include "fhg/core/degree_bound.hpp"
#include "fhg/core/driver.hpp"
#include "fhg/core/fcfg.hpp"
#include "fhg/core/phased_greedy.hpp"
#include "fhg/core/prefix_code_scheduler.hpp"
#include "fhg/core/round_robin.hpp"
#include "fhg/graph/generators.hpp"
#include "fhg/graph/io.hpp"

namespace {

using namespace fhg;

[[noreturn]] void usage(const std::string& error) {
  std::cerr << "fhg_cli: " << error << "\n"
            << "usage: fhg_cli --graph <spec|file> --scheduler <name> [--horizon N]\n"
            << "               [--seed S] [--code omega|gamma|delta|unary] [--print-holidays K]\n"
            << "graph specs: gnp:n,p  ba:n,m  grid:r,c  clique:n  star:n  cycle:n\n"
            << "             tree:n  regular:n,d  bipartite:a,b,p  (or a file path)\n"
            << "schedulers:  round-robin trivial phased-greedy prefix degree-bound fcfg\n";
  std::exit(2);
}

std::vector<std::string> split(const std::string& s, char delim) {
  std::vector<std::string> parts;
  std::stringstream stream(s);
  std::string part;
  while (std::getline(stream, part, delim)) {
    parts.push_back(part);
  }
  return parts;
}

graph::Graph make_graph(const std::string& spec, std::uint64_t seed) {
  const auto colon = spec.find(':');
  if (colon == std::string::npos) {
    return graph::load_graph_file(spec);
  }
  const std::string kind = spec.substr(0, colon);
  const auto args = split(spec.substr(colon + 1), ',');
  const auto arg = [&](std::size_t i) -> std::uint64_t {
    if (i >= args.size()) {
      usage("graph spec '" + spec + "' is missing parameter " + std::to_string(i + 1));
    }
    return std::strtoull(args[i].c_str(), nullptr, 10);
  };
  const auto farg = [&](std::size_t i) -> double {
    if (i >= args.size()) {
      usage("graph spec '" + spec + "' is missing parameter " + std::to_string(i + 1));
    }
    return std::strtod(args[i].c_str(), nullptr);
  };
  if (kind == "gnp") {
    return graph::gnp(static_cast<graph::NodeId>(arg(0)), farg(1), seed);
  }
  if (kind == "ba") {
    return graph::barabasi_albert(static_cast<graph::NodeId>(arg(0)),
                                  static_cast<std::uint32_t>(arg(1)), seed);
  }
  if (kind == "grid") {
    return graph::grid2d(static_cast<graph::NodeId>(arg(0)),
                         static_cast<graph::NodeId>(arg(1)));
  }
  if (kind == "clique") {
    return graph::clique(static_cast<graph::NodeId>(arg(0)));
  }
  if (kind == "star") {
    return graph::star(static_cast<graph::NodeId>(arg(0)));
  }
  if (kind == "cycle") {
    return graph::cycle(static_cast<graph::NodeId>(arg(0)));
  }
  if (kind == "tree") {
    return graph::random_tree(static_cast<graph::NodeId>(arg(0)), seed);
  }
  if (kind == "regular") {
    return graph::random_regular(static_cast<graph::NodeId>(arg(0)),
                                 static_cast<std::uint32_t>(arg(1)), seed);
  }
  if (kind == "bipartite") {
    return graph::random_bipartite(static_cast<graph::NodeId>(arg(0)),
                                   static_cast<graph::NodeId>(arg(1)), farg(2), seed);
  }
  usage("unknown graph kind '" + kind + "'");
}

coding::CodeFamily parse_code(const std::string& name) {
  if (name == "omega") {
    return coding::CodeFamily::kEliasOmega;
  }
  if (name == "delta") {
    return coding::CodeFamily::kEliasDelta;
  }
  if (name == "gamma") {
    return coding::CodeFamily::kEliasGamma;
  }
  if (name == "unary") {
    return coding::CodeFamily::kUnary;
  }
  usage("unknown code family '" + name + "'");
}

std::unique_ptr<core::Scheduler> make_scheduler(const std::string& name, const graph::Graph& g,
                                                coding::CodeFamily code, std::uint64_t seed) {
  if (name == "round-robin") {
    return std::make_unique<core::RoundRobinColorScheduler>(
        g, coloring::greedy_color(g, coloring::Order::kLargestFirst));
  }
  if (name == "trivial") {
    return std::make_unique<core::RoundRobinColorScheduler>(g, coloring::sequential_color(g));
  }
  if (name == "phased-greedy") {
    return std::make_unique<core::PhasedGreedyScheduler>(
        g, coloring::greedy_color(g, coloring::Order::kLargestFirst));
  }
  if (name == "prefix") {
    return std::make_unique<core::PrefixCodeScheduler>(g, coloring::dsatur_color(g), code);
  }
  if (name == "degree-bound") {
    return std::make_unique<core::DegreeBoundScheduler>(g);
  }
  if (name == "fcfg") {
    return std::make_unique<core::FirstComeFirstGrabScheduler>(g, seed);
  }
  usage("unknown scheduler '" + name + "'");
}

std::uint64_t degree_bucket_local(std::uint32_t d) {
  if (d < 8) {
    return d;
  }
  std::uint64_t b = 8;
  while (b * 2 <= d) {
    b *= 2;
  }
  return b;
}

}  // namespace

int main(int argc, char** argv) {
  std::map<std::string, std::string> options;
  for (int i = 1; i + 1 < argc; i += 2) {
    const std::string key = argv[i];
    if (key.rfind("--", 0) != 0) {
      usage("expected an option, got '" + key + "'");
    }
    options[key.substr(2)] = argv[i + 1];
  }
  if (!options.count("graph") || !options.count("scheduler")) {
    usage("--graph and --scheduler are required");
  }
  const std::uint64_t seed =
      options.count("seed") ? std::strtoull(options["seed"].c_str(), nullptr, 10) : 1;
  const std::uint64_t horizon =
      options.count("horizon") ? std::strtoull(options["horizon"].c_str(), nullptr, 10) : 2048;
  const std::uint64_t print_holidays =
      options.count("print-holidays")
          ? std::strtoull(options["print-holidays"].c_str(), nullptr, 10)
          : 0;
  const coding::CodeFamily code =
      parse_code(options.count("code") ? options["code"] : std::string("omega"));

  const graph::Graph g = make_graph(options["graph"], seed);
  std::cout << "graph: " << options["graph"] << "  n=" << g.num_nodes()
            << " m=" << g.num_edges() << " Delta=" << g.max_degree() << "\n";

  auto scheduler = make_scheduler(options["scheduler"], g, code, seed);

  if (print_holidays > 0) {
    for (std::uint64_t t = 1; t <= print_holidays; ++t) {
      const auto happy = scheduler->next_holiday();
      std::cout << "holiday " << t << ":";
      for (const graph::NodeId v : happy) {
        std::cout << ' ' << v;
      }
      std::cout << '\n';
    }
  }

  const auto report = core::run_schedule(*scheduler, {.horizon = horizon});
  analysis::Table table({"degree", "nodes", "worst gap", "mean gap bound", "appearances (mean)"});
  std::vector<std::uint64_t> buckets;
  std::vector<double> gaps;
  std::vector<double> appearances;
  for (graph::NodeId v = 0; v < g.num_nodes(); ++v) {
    buckets.push_back(degree_bucket_local(g.degree(v)));
    gaps.push_back(static_cast<double>(report.max_gap_with_tail[v]));
    appearances.push_back(static_cast<double>(report.appearances[v]));
  }
  const auto gap_rows = analysis::group_stats(buckets, gaps);
  const auto app_rows = analysis::group_stats(buckets, appearances);
  for (std::size_t i = 0; i < gap_rows.size(); ++i) {
    std::uint64_t bound_sum = 0;
    std::uint64_t bound_count = 0;
    for (graph::NodeId v = 0; v < g.num_nodes(); ++v) {
      if (buckets[v] == gap_rows[i].key) {
        if (const auto bound = scheduler->gap_bound(v)) {
          bound_sum += *bound;
          ++bound_count;
        }
      }
    }
    table.row()
        .add(gap_rows[i].key)
        .add(static_cast<std::uint64_t>(gap_rows[i].count))
        .add(static_cast<std::uint64_t>(gap_rows[i].max))
        .add(bound_count == 0 ? std::string("-")
                              : std::to_string(bound_sum / bound_count))
        .add(app_rows[i].mean, 1);
  }
  table.print(std::cout);
  std::cout << "scheduler: " << scheduler->name() << "  horizon: " << horizon
            << "  periodic: " << (scheduler->perfectly_periodic() ? "yes" : "no")
            << "\naudit: independence " << (report.independence_ok ? "OK" : "VIOLATED")
            << ", guarantees " << (report.bounds_respected ? "OK" : "VIOLATED") << '\n';
  return report.independence_ok && report.bounds_respected ? 0 : 1;
}
