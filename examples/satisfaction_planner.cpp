// Satisfaction planner — Appendix A.3: if "all children home" is too much to
// ask, can every parent at least see *one* child?
//
// Demonstrates:
//   * maximum single-holiday satisfaction via the paper's linear-time
//     algorithm, cross-checked against Hopcroft–Karp;
//   * why the one-shot optimum is "not socially acceptable" (the same
//     parents win every year);
//   * the alternation fix: every parent with a married child is satisfied at
//     least every second holiday, perfectly periodically.
//
// Run:  ./satisfaction_planner [families] [marriage probability]

#include <cstdlib>
#include <iostream>

#include "fhg/analysis/table.hpp"
#include "fhg/graph/generators.hpp"
#include "fhg/matching/satisfaction.hpp"

int main(int argc, char** argv) {
  using namespace fhg;

  const graph::NodeId n = argc > 1 ? static_cast<graph::NodeId>(std::atoi(argv[1])) : 200;
  const double p = argc > 2 ? std::atof(argv[2]) : 0.012;
  const graph::Graph g = graph::gnp(n, p, 31415);

  const auto via_linear = matching::max_satisfaction_linear(g);
  const auto via_matching = matching::max_satisfaction_matching(g);

  std::cout << "Society: " << n << " families, " << g.num_edges() << " marriages\n";
  std::cout << "Maximum satisfiable in one holiday: " << via_linear.value
            << " (linear-time peeling) = " << via_matching.value << " (Hopcroft-Karp)\n";

  std::size_t isolated = 0;
  for (graph::NodeId v = 0; v < n; ++v) {
    isolated += g.degree(v) == 0 ? 1 : 0;
  }
  std::cout << "Families with no married children (never satisfiable): " << isolated << "\n\n";

  // The static optimum repeated yearly: who never gets a visit?
  std::size_t never = 0;
  for (graph::NodeId v = 0; v < n; ++v) {
    if (g.degree(v) > 0 && !via_linear.satisfied[v]) {
      ++never;
    }
  }

  // The alternation schedule over a horizon.
  constexpr std::uint64_t kYears = 16;
  std::vector<std::uint64_t> last(n, 0);
  std::vector<std::uint64_t> worst_gap(n, 0);
  std::uint64_t total_satisfied = 0;
  for (std::uint64_t t = 1; t <= kYears; ++t) {
    const auto sat = matching::alternation_satisfied_set(g, t);
    total_satisfied += sat.size();
    for (const graph::NodeId v : sat) {
      worst_gap[v] = std::max(worst_gap[v], t - last[v]);
      last[v] = t;
    }
  }
  std::uint64_t alternation_worst = 0;
  for (graph::NodeId v = 0; v < n; ++v) {
    if (g.degree(v) > 0) {
      alternation_worst = std::max(alternation_worst, worst_gap[v]);
    }
  }

  analysis::Table table({"policy", "satisfied/holiday", "worst wait", "left out forever"});
  table.row()
      .add("repeat one-shot optimum")
      .add(static_cast<std::uint64_t>(via_linear.value))
      .add("1 or infinity")
      .add(never);
  table.row()
      .add("alternation (period 2)")
      .add(static_cast<double>(total_satisfied) / static_cast<double>(kYears), 1)
      .add(alternation_worst)
      .add(std::uint64_t{0});
  table.print(std::cout);

  std::cout << "\nReading: the one-shot optimum satisfies the most families per holiday but\n"
               "condemns " << never << " families to never hosting anyone; alternation satisfies\n"
               "slightly fewer per holiday yet guarantees everyone a visit every 2 years.\n";
  return via_linear.value == via_matching.value ? 0 : 1;
}
