// Holiday planner — the paper's own story at a realistic scale.
//
// Generates a synthetic marriage society with heavy-tailed family sizes
// (Barabási–Albert: some families marry off many children), then compares
// all the paper's schedulers on the same society:
//
//   trivial round-robin  (§4 ex.1) — everyone waits |P| years;
//   Δ+1 round-robin      (§1)      — everyone waits Δ+1 years;
//   phased greedy        (§3)      — gap ≤ d+1 but aperiodic/chatty;
//   Elias omega          (§4.2)    — periodic, period ≈ φ(color);
//   degree-bound         (§5)      — periodic, period ≤ 2d;
//   first-come-first-grab (§1)     — fair in expectation, no guarantee.
//
// For each it prints the wait experienced by the smallest and largest
// families — the paper's core fairness question: should the parents of one
// child wait for everyone else's brood?
//
// Run:  ./holiday_planner [families]

#include <cstdlib>
#include <iostream>

#include "fhg/analysis/fairness.hpp"
#include "fhg/analysis/table.hpp"
#include "fhg/coloring/dsatur.hpp"
#include "fhg/coloring/greedy.hpp"
#include "fhg/core/degree_bound.hpp"
#include "fhg/core/driver.hpp"
#include "fhg/core/fcfg.hpp"
#include "fhg/core/phased_greedy.hpp"
#include "fhg/core/prefix_code_scheduler.hpp"
#include "fhg/core/round_robin.hpp"
#include "fhg/graph/generators.hpp"

int main(int argc, char** argv) {
  using namespace fhg;

  const graph::NodeId n = argc > 1 ? static_cast<graph::NodeId>(std::atoi(argv[1])) : 300;
  const graph::Graph g = graph::barabasi_albert(n, 2, /*seed=*/777);

  // Locate the smallest and largest families.
  graph::NodeId smallest = 0;
  graph::NodeId largest = 0;
  for (graph::NodeId v = 0; v < n; ++v) {
    if (g.degree(v) < g.degree(smallest)) {
      smallest = v;
    }
    if (g.degree(v) > g.degree(largest)) {
      largest = v;
    }
  }
  std::cout << "Society: " << n << " families, " << g.num_edges() << " marriages. Smallest family: "
            << g.degree(smallest) << " married children; largest: " << g.degree(largest) << ".\n";

  constexpr std::uint64_t kYears = 8192;
  const coloring::Coloring greedy = coloring::greedy_color(g, coloring::Order::kLargestFirst);
  const coloring::Coloring dsatur = coloring::dsatur_color(g);

  analysis::Table table({"scheduler", "periodic", "small-family wait", "large-family wait",
                         "worst wait", "fairness (Jain)", "audit"});

  const auto report_row = [&](core::Scheduler& scheduler, const std::string& label) {
    const auto report = core::run_schedule(scheduler, {.horizon = kYears});
    std::uint64_t worst = 0;
    for (graph::NodeId v = 0; v < n; ++v) {
      worst = std::max(worst, report.max_gap_with_tail[v]);
    }
    table.row()
        .add(label)
        .add(scheduler.perfectly_periodic())
        .add(report.max_gap_with_tail[smallest])
        .add(report.max_gap_with_tail[largest])
        .add(worst)
        .add(analysis::jain_fairness(g, report.appearances, kYears), 3)
        .add(report.independence_ok && report.bounds_respected);
  };

  core::RoundRobinColorScheduler trivial(g, coloring::sequential_color(g));
  report_row(trivial, "round-robin (trivial |P| colors)");
  core::RoundRobinColorScheduler round_robin(g, greedy);
  report_row(round_robin, "round-robin (greedy colors)");
  core::PhasedGreedyScheduler phased(g, greedy);
  report_row(phased, phased.name());
  core::PrefixCodeScheduler omega(g, dsatur, coding::CodeFamily::kEliasOmega);
  report_row(omega, omega.name());
  core::DegreeBoundScheduler degree_bound(g);
  report_row(degree_bound, degree_bound.name());
  core::FirstComeFirstGrabScheduler fcfg(g, /*seed=*/4);
  report_row(fcfg, fcfg.name());

  table.print(std::cout);
  std::cout << "\nReading: local-bound schedulers give the one-child family a short, "
               "guaranteed wait\nregardless of the big clans; the trivial/global ones make "
               "everyone wait alike;\nfirst-come-first-grab is fair on average but its worst "
               "wait drifts with the horizon.\n";
  return 0;
}
