// Dynamic marriages — Section 6's setting as a running simulation.
//
// A society of families evolves for a few hundred holidays: new couples
// marry (edge insertions), some relationships dissolve (deletions), new
// families join (node additions).  The dynamic prefix-code scheduler keeps
// the schedule conflict-free throughout, recoloring only the node whose
// palette legitimately changed, and every affected family re-hosts within
// one (new) period of quiescence — the paper's recovery bound.
//
// Run:  ./dynamic_marriages [holidays]

#include <cstdlib>
#include <iostream>

#include "fhg/analysis/table.hpp"
#include "fhg/dynamic/dynamic_scheduler.hpp"
#include "fhg/graph/dynamic_graph.hpp"
#include "fhg/graph/generators.hpp"
#include "fhg/graph/properties.hpp"
#include "fhg/parallel/rng.hpp"

int main(int argc, char** argv) {
  using namespace fhg;

  const std::uint64_t horizon =
      argc > 1 ? static_cast<std::uint64_t>(std::atoll(argv[1])) : 400;

  graph::DynamicGraph society(graph::gnp(80, 0.03, 99));
  dynamic::DynamicPrefixCodeScheduler scheduler(society, coding::CodeFamily::kEliasOmega,
                                                /*deletion_slack=*/1);
  parallel::Rng rng(4242);

  std::uint64_t marriages = 0;
  std::uint64_t divorces = 0;
  std::uint64_t new_families = 0;
  std::uint64_t audits_failed = 0;

  for (std::uint64_t t = 1; t <= horizon; ++t) {
    // Social life between holidays.
    const double roll = rng.uniform_real();
    if (roll < 0.30) {
      const auto u = static_cast<graph::NodeId>(rng.uniform_below(society.num_nodes()));
      const auto v = static_cast<graph::NodeId>(rng.uniform_below(society.num_nodes()));
      if (u != v && !society.has_edge(u, v)) {
        static_cast<void>(scheduler.insert_edge(u, v));
        ++marriages;
      }
    } else if (roll < 0.40 && society.num_edges() > 0) {
      const auto u = static_cast<graph::NodeId>(rng.uniform_below(society.num_nodes()));
      if (society.degree(u) > 0) {
        const auto nbrs = society.neighbors(u);
        const auto v = nbrs[rng.uniform_below(nbrs.size())];
        static_cast<void>(scheduler.erase_edge(u, v));
        ++divorces;
      }
    } else if (roll < 0.43) {
      static_cast<void>(scheduler.add_node());
      ++new_families;
    }

    const auto happy = scheduler.next_holiday();
    const graph::Graph snapshot = society.snapshot();
    if (!graph::is_independent_set(snapshot, happy)) {
      ++audits_failed;
    }
  }

  analysis::Table table({"metric", "value"});
  table.row().add("holidays simulated").add(horizon);
  table.row().add("marriages").add(marriages);
  table.row().add("divorces").add(divorces);
  table.row().add("new families").add(new_families);
  table.row().add("recolor events").add(static_cast<std::uint64_t>(scheduler.history().size()));
  table.row().add("independence violations").add(audits_failed);
  table.row().add("final families").add(static_cast<std::uint64_t>(society.num_nodes()));
  table.row().add("final marriages-in-force").add(static_cast<std::uint64_t>(society.num_edges()));
  table.row().add("coloring still proper").add(scheduler.coloring_proper());
  table.print(std::cout);

  std::size_t insert_recolors = 0;
  for (const auto& event : scheduler.history()) {
    insert_recolors += event.due_to_insertion ? 1 : 0;
  }
  std::cout << "\nRecolors: " << insert_recolors << " caused by marriages, "
            << scheduler.history().size() - insert_recolors
            << " rate repairs after divorces.\n"
            << "Every recolored family re-hosts within its new period 2^rho(color) of "
               "quiescence (§6).\n";
  return audits_failed == 0 && scheduler.coloring_proper() ? 0 : 1;
}
