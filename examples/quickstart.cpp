// Quickstart: schedule holiday gatherings for a small society.
//
// Builds a conflict graph (parents as nodes, a marriage between their
// children as an edge), colors it, and runs the paper's flagship scheduler —
// the perfectly periodic Elias-omega color-bound algorithm (§4.2) — printing
// who hosts each holiday and each family's guaranteed period.
//
// Run:  ./quickstart

#include <iostream>

#include "fhg/coloring/dsatur.hpp"
#include "fhg/core/driver.hpp"
#include "fhg/core/prefix_code_scheduler.hpp"
#include "fhg/graph/graph.hpp"

int main() {
  using namespace fhg;

  // Six families; an edge means "a child of one married a child of the other".
  //   Cohen(0) — Levi(1) — Mizrahi(2) — Cohen(0)  (a triangle of in-laws)
  //   Peretz(3) — Biton(4),  Azulay(5) married into Levi.
  const char* names[] = {"Cohen", "Levi", "Mizrahi", "Peretz", "Biton", "Azulay"};
  graph::GraphBuilder builder(6);
  builder.add_edge(0, 1);
  builder.add_edge(1, 2);
  builder.add_edge(0, 2);
  builder.add_edge(3, 4);
  builder.add_edge(1, 5);
  const graph::Graph g = std::move(builder).build();

  // Any proper coloring works; DSATUR keeps colors (and hence periods) small.
  const coloring::Coloring colors = coloring::dsatur_color(g);

  // The §4.2 scheduler: family with color c hosts exactly every 2^ρ(c)
  // holidays, where ρ is the Elias omega codeword length.
  core::PrefixCodeScheduler scheduler(g, colors, coding::CodeFamily::kEliasOmega);

  std::cout << "Family schedule guarantees (perfectly periodic):\n";
  for (graph::NodeId v = 0; v < g.num_nodes(); ++v) {
    std::cout << "  " << names[v] << ": " << g.degree(v) << " married children, color "
              << colors.color(v) << ", hosts every " << *scheduler.period_of(v)
              << " holidays\n";
  }

  std::cout << "\nFirst 16 holidays (families with ALL children home):\n";
  for (int t = 1; t <= 16; ++t) {
    std::cout << "  holiday " << t << ": ";
    const auto happy = scheduler.next_holiday();
    if (happy.empty()) {
      std::cout << "(everyone visits in-laws)";
    }
    for (const graph::NodeId v : happy) {
      std::cout << names[v] << ' ';
    }
    std::cout << '\n';
  }

  // The driver audits the two §4 invariants over a long horizon.
  const auto report = core::run_schedule(scheduler, {.horizon = 1024, .coloring = &colors});
  std::cout << "\nAudit over " << report.horizon
            << " holidays: independent sets: " << (report.independence_ok ? "OK" : "VIOLATED")
            << ", one color per holiday: " << (report.one_color_ok ? "OK" : "VIOLATED")
            << ", periods respected: " << (report.bounds_respected ? "OK" : "VIOLATED") << '\n';
  return report.independence_ok && report.one_color_ok && report.bounds_respected ? 0 : 1;
}
