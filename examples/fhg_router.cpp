// fhg_router — the cluster front door: a consistent-hash router/proxy over
// N running `fhg_serve` backends, speaking the same wire protocol as the
// backends it shields.  Modes:
//
//   route     Run the proxy: build the ring from --backends, listen on
//             --port, forward every typed request per the routing rules
//             (reads to the owner with replica failover, writes mirrored
//             primary+replica, list fan-out), probe backend health, evict /
//             re-register / migrate as the fleet changes.  --stats-port
//             serves the `fhg_cluster_*` registry as Prometheus text.
//
//   topology  Ask a running router (or compute locally from --backends)
//             where instances live: ring members, per-backend health, and
//             the (primary, replica) placement of --instance, derived from
//             the same fixed FNV-1a ring every router builds.
//
//   drain     Send `DrainBackend` to a running router: migrate every
//             instance off --backend and pin it out of the ring.
//
// Example (three backends, then kill one and watch the ring heal):
//
//   fhg_serve serve --backend-id b0 --port 7430 --workload power-law:fleet=64 &
//   fhg_serve serve --backend-id b1 --port 7431 --fleet 0 &
//   fhg_serve serve --backend-id b2 --port 7432 --fleet 0 &
//   fhg_router route --backends b0=127.0.0.1:7430,b1=127.0.0.1:7431,b2=127.0.0.1:7432
//               ... --port 7440 --stats-port 7441 &
//   fhg_serve load --connect 127.0.0.1:7440 --workload power-law:fleet=64 --retry 4
//   kill -9 %2 && sleep 1
//   fhg_router topology --connect 127.0.0.1:7440 --backends b0=...,b1=...,b2=...

#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "fhg/api/client.hpp"
#include "fhg/api/codec.hpp"
#include "fhg/api/socket.hpp"
#include "fhg/cluster/ring.hpp"
#include "fhg/cluster/router.hpp"
#include "fhg/obs/format.hpp"
#include "fhg/obs/http.hpp"
#include "fhg/obs/registry.hpp"

namespace {

using namespace fhg;

[[noreturn]] void usage(const std::string& error) {
  std::cerr
      << "fhg_router: " << error << "\n"
      << "usage: fhg_router route    --backends NAME=HOST:PORT[,...]\n"
      << "                           [--host H] [--port P] [--port-file PATH]\n"
      << "                           [--stats-port P] [--vnodes N] [--workers N]\n"
      << "                           [--probe-interval-ms N] [--probe-failures N]\n"
      << "                           [--retry N] [--replicate 0|1] [--router-id NAME]\n"
      << "       fhg_router topology [--connect HOST:PORT] --backends NAME=HOST:PORT[,...]\n"
      << "                           [--instance NAME] [--vnodes N]\n"
      << "       fhg_router drain    --connect HOST:PORT --backend NAME\n";
  std::exit(2);
}

/// `--key value` option map over `argv[first..]`.
std::map<std::string, std::string> parse_options(int argc, char** argv, int first) {
  std::map<std::string, std::string> options;
  for (int i = first; i + 1 < argc; i += 2) {
    const std::string key = argv[i];
    if (key.rfind("--", 0) != 0) {
      usage("expected an option, got '" + key + "'");
    }
    options[key.substr(2)] = argv[i + 1];
  }
  return options;
}

std::uint64_t uint_option(std::map<std::string, std::string>& options, const std::string& key,
                          std::uint64_t fallback) {
  return options.count(key) ? std::strtoull(options[key].c_str(), nullptr, 10) : fallback;
}

/// Splits `HOST:PORT`.
std::pair<std::string, std::uint16_t> parse_endpoint(const std::string& target) {
  const auto colon = target.rfind(':');
  if (colon == std::string::npos) {
    usage("endpoint wants HOST:PORT, got '" + target + "'");
  }
  return {target.substr(0, colon),
          static_cast<std::uint16_t>(
              std::strtoul(target.substr(colon + 1).c_str(), nullptr, 10))};
}

/// Parses `NAME=HOST:PORT[,NAME=HOST:PORT...]`.
std::vector<cluster::BackendConfig> parse_backends(const std::string& spec) {
  std::vector<cluster::BackendConfig> backends;
  std::size_t begin = 0;
  while (begin <= spec.size()) {
    std::size_t end = spec.find(',', begin);
    if (end == std::string::npos) {
      end = spec.size();
    }
    const std::string entry = spec.substr(begin, end - begin);
    if (!entry.empty()) {
      const auto equals = entry.find('=');
      if (equals == std::string::npos) {
        usage("backend wants NAME=HOST:PORT, got '" + entry + "'");
      }
      const auto [host, port] = parse_endpoint(entry.substr(equals + 1));
      backends.push_back(
          cluster::BackendConfig{entry.substr(0, equals), host, port});
    }
    begin = end + 1;
  }
  if (backends.empty()) {
    usage("--backends parsed to an empty list");
  }
  return backends;
}

// ------------------------------------------------------------------- route --

int run_route(std::map<std::string, std::string> options) {
  if (!options.count("backends")) {
    usage("route mode needs --backends NAME=HOST:PORT[,...]");
  }
  // Block shutdown signals before any thread exists (router workers, prober,
  // socket loops) so sigwait below is the only consumer.
  sigset_t signals;
  sigemptyset(&signals);
  sigaddset(&signals, SIGINT);
  sigaddset(&signals, SIGTERM);
  pthread_sigmask(SIG_BLOCK, &signals, nullptr);

  cluster::RouterOptions router_options;
  router_options.backends = parse_backends(options["backends"]);
  router_options.vnodes = static_cast<std::size_t>(uint_option(options, "vnodes", 64));
  router_options.workers = static_cast<std::size_t>(uint_option(options, "workers", 4));
  router_options.replicate = uint_option(options, "replicate", 1) != 0;
  router_options.retry.max_retries =
      static_cast<std::size_t>(uint_option(options, "retry", 2));
  router_options.probe_interval =
      std::chrono::milliseconds(uint_option(options, "probe-interval-ms", 200));
  router_options.probe_failures_to_evict =
      static_cast<std::size_t>(uint_option(options, "probe-failures", 2));
  if (options.count("router-id")) {
    router_options.router_id = options["router-id"];
  }

  cluster::Router router(std::move(router_options));
  api::SocketServerOptions socket_options;
  if (options.count("host")) {
    socket_options.host = options["host"];
  }
  socket_options.port = static_cast<std::uint16_t>(uint_option(options, "port", 0));
  api::SocketServer server(router, socket_options);
  std::cout << "fhg_router: ring of " << router.ring_members().size() << " backends, "
            << "listening on " << server.host() << ":" << server.port() << " (protocol v"
            << api::kProtocolVersion << ")\n"
            << std::flush;

  std::unique_ptr<obs::StatsHttpServer> stats_server;
  if (options.count("stats-port")) {
    obs::StatsHttpOptions stats_options;
    if (options.count("host")) {
      stats_options.host = options["host"];
    }
    stats_options.port = static_cast<std::uint16_t>(uint_option(options, "stats-port", 0));
    stats_server = std::make_unique<obs::StatsHttpServer>(
        [&router] {
          // The cluster registry plus the process-global transport counters
          // (the router is itself a heavy wire client).
          std::vector<obs::MetricSample> samples = router.metrics().snapshot();
          const auto transport = obs::Registry::global().snapshot();
          samples.insert(samples.end(), transport.begin(), transport.end());
          return obs::to_prometheus(samples);
        },
        stats_options);
    std::cout << "fhg_router: metrics on http://" << stats_options.host << ":"
              << stats_server->port() << "/metrics\n"
              << std::flush;
  }

  // Atomic publish, like fhg_serve: line 1 the protocol port, line 2 (when
  // --stats-port was given) the metrics port.
  if (options.count("port-file")) {
    const std::string path = options["port-file"];
    const std::string tmp = path + ".tmp";
    {
      std::ofstream out(tmp);
      out << server.port() << "\n";
      if (stats_server) {
        out << stats_server->port() << "\n";
      }
    }
    if (std::rename(tmp.c_str(), path.c_str()) != 0) {
      std::cerr << "fhg_router: cannot publish port file " << path << "\n";
    }
  }

  int caught = 0;
  sigwait(&signals, &caught);
  std::cout << "fhg_router: signal " << caught << ", shutting down\n";
  server.stop();
  if (stats_server) {
    stats_server->stop();
  }
  router.stop();
  std::cout << obs::to_text(router.metrics().snapshot());
  return 0;
}

// ---------------------------------------------------------------- topology --

int run_topology(std::map<std::string, std::string> options) {
  if (!options.count("backends")) {
    usage("topology mode needs --backends NAME=HOST:PORT[,...]");
  }
  const auto backends = parse_backends(options["backends"]);
  // The placement is a pure function of (backend names, vnodes, instance
  // name) — every router with this config computes the same ring, so the
  // CLI can answer placement questions without the router being up.
  cluster::HashRing ring(static_cast<std::size_t>(uint_option(options, "vnodes", 64)));
  for (const auto& backend : backends) {
    ring.add_node(backend.name);
  }
  std::cout << "ring (" << ring.size() << " backends):";
  for (const auto& name : ring.nodes()) {
    std::cout << " " << name;
  }
  std::cout << "\n";
  if (options.count("instance")) {
    const std::string& instance = options["instance"];
    std::cout << "instance '" << instance << "': primary " << ring.owner_of(instance)
              << ", replica " << ring.successor_of(instance) << "\n";
  }
  if (!options.count("connect")) {
    return 0;
  }
  // Live view: the running router's merged tenant list and cluster metrics.
  const auto [host, port] = parse_endpoint(options["connect"]);
  try {
    api::Client client(std::make_unique<api::SocketTransport>(host, port));
    const auto hello = client.hello();
    if (hello.ok()) {
      std::cout << "router '" << hello.value.backend << "' speaks protocol v"
                << hello.value.min_version << "-v" << hello.value.max_version << "\n";
    }
    const auto listed = client.list_instances();
    if (listed.ok()) {
      std::cout << listed.value.size() << " instances reachable through the router\n";
    }
    api::GetStatsRequest stats_request;
    stats_request.include_histograms = false;
    stats_request.include_traces = false;
    const auto stats = client.get_stats(stats_request);
    if (stats.ok()) {
      std::cout << obs::to_text(stats.value.metrics);
    }
  } catch (const std::exception& e) {
    std::cerr << "fhg_router: " << e.what() << "\n";
    return 1;
  }
  return 0;
}

// ------------------------------------------------------------------- drain --

int run_drain(std::map<std::string, std::string> options) {
  if (!options.count("connect") || !options.count("backend")) {
    usage("drain mode needs --connect HOST:PORT and --backend NAME");
  }
  const auto [host, port] = parse_endpoint(options["connect"]);
  try {
    api::Client client(std::make_unique<api::SocketTransport>(host, port));
    const auto drained = client.drain_backend(options["backend"]);
    if (!drained.ok()) {
      std::cerr << "fhg_router: drain failed: " << drained.status.name() << " ("
                << drained.status.detail << ")\n";
      return 1;
    }
    std::cout << "fhg_router: drained '" << options["backend"] << "', "
              << drained.value << " migrations\n";
  } catch (const std::exception& e) {
    std::cerr << "fhg_router: " << e.what() << "\n";
    return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    usage("missing mode (route | topology | drain)");
  }
  const std::string mode = argv[1];
  auto options = parse_options(argc, argv, 2);
  if (mode == "route") {
    return run_route(std::move(options));
  }
  if (mode == "topology") {
    return run_topology(std::move(options));
  }
  if (mode == "drain") {
    return run_drain(std::move(options));
  }
  usage("unknown mode '" + mode + "'");
}
