// fhg_serve — the fhg scheduling system as a network service, plus the
// matching load generator: the two halves engine_server's in-process service
// phase splits into once a real wire is involved.
//
// Three modes:
//
//   serve     Build a deterministic `fhg::workload` fleet, put the sharded
//             `fhg::service` pipeline in front of it, and listen for
//             `fhg::api` protocol frames on TCP.  Runs until SIGINT/SIGTERM
//             (or --duration elapses).  With --port 0 the kernel picks an
//             ephemeral port; --port-file publishes whatever was bound so
//             scripts can connect without racing the listener.
//
//   load      Drive a running server: --clients threads each open their own
//             connection (`api::SocketTransport` + `api::Client`) and submit
//             the deterministic request stream for the same workload spec —
//             queries plus, when the spec has dynamic/mutation tenants,
//             in-place topology mutations.  Exits nonzero when any request
//             fails unexpectedly (refused mutations on churned slots are
//             expected and only counted).
//
//             Connection-scaling mode: --idle-connections N additionally
//             opens N connections *before* the hot clients run, probes each
//             once (one ListInstances roundtrip), parks them — open, silent —
//             for the whole hot phase, then revalidates a sample and closes
//             them.  Thousands of mostly-idle connections plus a few hot
//             ones is exactly the shape the epoll server is built for; the
//             serve-scale CI job runs this at 10k connections and asserts
//             the server's fhg_socket_connections_peak high-water saw them.
//
//   loopback  The CI divergence gate, self-contained in one process: builds
//             two identical fleets, serves one over a real TCP loopback
//             socket and the other through the in-process transport, drives
//             both with identical request streams, and byte-compares every
//             encoded response frame — "one protocol, two transports" made
//             falsifiable.  Then hammers the socket server from --clients
//             concurrent connections for completeness.  Exits nonzero on
//             any divergence or unexpected failure.
//
//   stats     One-shot scrape of a running server over the protocol itself:
//             sends a GetStats request and prints the returned registry
//             snapshot (and slowest-trace table) with the shared fhg::obs
//             text formatter.
//
// Observability (serve mode): --stats-port starts a Prometheus text
// exposition endpoint (GET /metrics) serving the engine+service registry
// plus the process-global transport metrics; --stats-interval SECS logs the
// same snapshot to stdout periodically while serving.
//
// Usage:
//   fhg_serve serve    [--host H] [--port P] [--port-file PATH]
//                      [--workload SPEC | --fleet N] [--steps N]
//                      [--shards N] [--threads N] [--service-shards N]
//                      [--duration SECS] [--seed S]
//                      [--stats-port P] [--stats-interval SECS]
//   fhg_serve load     --connect HOST:PORT [--workload SPEC | --fleet N]
//                      [--requests N] [--clients N] [--round R] [--seed S]
//                      [--idle-connections N] [--openers N]
//   fhg_serve loopback [--workload SPEC | --fleet N] [--steps N]
//                      [--requests N] [--clients N] [--service-shards N]
//                      [--seed S]
//   fhg_serve stats    --connect HOST:PORT [--histograms 0|1] [--traces 0|1]
//
// Workload specs are `family[:key=value,...]` exactly as in engine_server;
// the load generator must be given the *same* spec the server was started
// with, or its tenant names will miss.
//
// Examples:
//   fhg_serve serve --workload power-law:fleet=1000 --port 7421 &
//   fhg_serve load --connect 127.0.0.1:7421 --workload power-law:fleet=1000
//   fhg_serve loopback --workload power-law:fleet=300,dynamic=0.3,mutation=0.1

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <ctime>
#include <fstream>
#include <iostream>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "fhg/api/client.hpp"
#include "fhg/api/codec.hpp"
#include "fhg/api/protocol.hpp"
#include "fhg/api/socket.hpp"
#include "fhg/api/transport.hpp"
#include "fhg/engine/engine.hpp"
#include "fhg/obs/format.hpp"
#include "fhg/obs/http.hpp"
#include "fhg/obs/registry.hpp"
#include "fhg/service/service.hpp"
#include "fhg/wal/wal.hpp"
#include "fhg/workload/scenario.hpp"

namespace {

using namespace fhg;
using Clock = std::chrono::steady_clock;

[[noreturn]] void usage(const std::string& error) {
  std::cerr << "fhg_serve: " << error << "\n"
            << "usage: fhg_serve serve    [--host H] [--port P] [--port-file PATH]\n"
            << "                          [--workload SPEC | --fleet N] [--steps N]\n"
            << "                          [--shards N] [--threads N] [--service-shards N]\n"
            << "                          [--duration SECS] [--seed S]\n"
            << "                          [--stats-port P] [--stats-interval SECS]\n"
            << "                          [--wal-dir PATH] [--wal-fsync N]\n"
            << "                          [--wal-compact-every N] [--backend-id NAME]\n"
            << "       fhg_serve load     --connect HOST:PORT [--workload SPEC | --fleet N]\n"
            << "                          [--requests N] [--clients N] [--round R] [--seed S]\n"
            << "                          [--idle-connections N] [--openers N] [--retry N]\n"
            << "       fhg_serve loopback [--workload SPEC | --fleet N] [--steps N]\n"
            << "                          [--requests N] [--clients N] [--service-shards N]\n"
            << "                          [--seed S]\n"
            << "       fhg_serve stats    --connect HOST:PORT [--histograms 0|1] [--traces 0|1]\n"
            << "workload specs: family[:key=value,...] as in engine_server\n";
  std::exit(2);
}

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

/// `--key value` option map over `argv[first..]`.
std::map<std::string, std::string> parse_options(int argc, char** argv, int first) {
  std::map<std::string, std::string> options;
  for (int i = first; i + 1 < argc; i += 2) {
    const std::string key = argv[i];
    if (key.rfind("--", 0) != 0) {
      usage("expected an option, got '" + key + "'");
    }
    options[key.substr(2)] = argv[i + 1];
  }
  return options;
}

std::uint64_t uint_option(std::map<std::string, std::string>& options, const std::string& key,
                          std::uint64_t fallback) {
  return options.count(key) ? std::strtoull(options[key].c_str(), nullptr, 10) : fallback;
}

/// The workload spec shared by all three modes: an explicit scenario string,
/// or the default power-law family sized by --fleet.
workload::ScenarioSpec workload_spec(std::map<std::string, std::string>& options,
                                     std::uint64_t steps) {
  auto spec =
      workload::parse_scenario(options.count("workload") ? options["workload"] : "power-law");
  if (!spec) {
    usage("bad workload spec '" + options["workload"] + "'");
  }
  if (options.count("fleet")) {
    spec->fleet = static_cast<std::size_t>(uint_option(options, "fleet", 1000));
  }
  if (options["workload"].find("seed=") == std::string::npos) {
    spec->seed = uint_option(options, "seed", 1);
  }
  if (options["workload"].find("horizon=") == std::string::npos) {
    spec->horizon = std::max<std::uint64_t>(steps, 1);
  }
  return *spec;
}

/// Builds and steps one fleet.
std::unique_ptr<engine::Engine> build_fleet(const workload::ScenarioGenerator& generator,
                                            std::size_t shards, std::size_t threads,
                                            std::uint64_t steps) {
  auto engine = std::make_unique<engine::Engine>(
      engine::EngineOptions{.shards = shards, .threads = threads});
  generator.populate(*engine);
  (void)engine->step_all(steps);
  return engine;
}

/// Per-request tallies of one client's pass over a stream.
struct LoadTally {
  std::uint64_t completed = 0;
  std::uint64_t hits = 0;                ///< membership answers that were happy
  std::uint64_t answered = 0;            ///< next-gatherings that found a holiday
  std::uint64_t mutations_applied = 0;   ///< mutation commands that changed topology
  std::uint64_t mutations_refused = 0;   ///< refused batches (churned slots: expected)
  std::uint64_t failed = 0;              ///< unexpected failures (gate to zero)
};

/// Drives one request stream through one client, tallying outcomes.
LoadTally drive(api::Client& client, const std::vector<api::Request>& stream) {
  LoadTally tally;
  for (const api::Request& request : stream) {
    const api::Response response = client.call(request);
    ++tally.completed;
    if (const auto* happy = std::get_if<api::IsHappyResponse>(&response.payload)) {
      tally.hits += happy->happy ? 1 : 0;
    } else if (const auto* next = std::get_if<api::NextGatheringResponse>(&response.payload)) {
      tally.answered += next->holiday != engine::kNoGathering ? 1 : 0;
    } else if (const auto* mutated =
                   std::get_if<api::ApplyMutationsResponse>(&response.payload)) {
      tally.mutations_applied += mutated->applied;
    } else if (!response.ok() && std::holds_alternative<api::ApplyMutationsRequest>(request)) {
      ++tally.mutations_refused;  // churned to a non-dynamic recipe: expected
    } else if (!response.ok()) {
      ++tally.failed;
    }
  }
  return tally;
}

void merge(LoadTally& into, const LoadTally& from) {
  into.completed += from.completed;
  into.hits += from.hits;
  into.answered += from.answered;
  into.mutations_applied += from.mutations_applied;
  into.mutations_refused += from.mutations_refused;
  into.failed += from.failed;
}

void print_tally(const std::string& label, const LoadTally& tally, double elapsed_s) {
  std::cout << label << ": " << tally.completed << " requests in " << elapsed_s << "s ("
            << static_cast<double>(tally.completed) / elapsed_s << " requests/sec), "
            << tally.hits << " happy, " << tally.answered << " next-gatherings answered, "
            << tally.mutations_applied << " mutation commands applied ("
            << tally.mutations_refused << " batches refused), " << tally.failed
            << " unexpected failures\n";
}

/// Multi-threaded load over a transport factory: `clients` threads, each
/// with its own client and stream round.  Returns the merged tally.
/// `retry` (default off) is handed to every client — driving a cluster
/// router during a backend kill wants the bounded reconnect-retry loop.
template <typename MakeTransport>
LoadTally fan_out(const workload::ScenarioGenerator& generator, std::uint64_t requests,
                  std::size_t clients, std::uint64_t base_round, MakeTransport make_transport,
                  api::RetryPolicy retry = {}) {
  const std::uint64_t total = std::max<std::uint64_t>(requests, clients);
  const std::uint64_t per_client = total / clients;
  std::vector<LoadTally> tallies(clients);
  std::vector<std::thread> threads;
  threads.reserve(clients);
  for (std::size_t c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      const std::uint64_t share =
          c + 1 == clients ? total - per_client * (clients - 1) : per_client;
      const auto stream =
          generator.request_stream(static_cast<std::size_t>(share), base_round + c);
      try {
        api::Client client(make_transport());
        client.set_retry_policy(retry);
        tallies[c] = drive(client, stream);
      } catch (const std::exception& e) {
        // e.g. the connection could not be established: the whole share
        // counts as failed instead of tearing the process down.
        std::cerr << "fhg_serve: client " << c << ": " << e.what() << "\n";
        tallies[c].failed += share;
      }
    });
  }
  for (std::thread& thread : threads) {
    thread.join();
  }
  LoadTally total_tally;
  for (const LoadTally& tally : tallies) {
    merge(total_tally, tally);
  }
  return total_tally;
}

/// The full serving-side picture: the engine+service registry (what GetStats
/// serves over the wire) merged with the process-global transport metrics
/// (codec and socket counters, which GetStats deliberately excludes so that
/// serving the stats cannot perturb the stats), sorted back into one list.
std::vector<obs::MetricSample> serving_samples(const service::Service& service) {
  api::GetStatsRequest everything;
  everything.include_traces = false;  // traces are printed separately
  std::vector<obs::MetricSample> samples = service.stats(everything).metrics;
  const std::vector<obs::MetricSample> transport = obs::Registry::global().snapshot();
  samples.insert(samples.end(), transport.begin(), transport.end());
  std::sort(samples.begin(), samples.end(),
            [](const obs::MetricSample& a, const obs::MetricSample& b) {
              return a.name < b.name;
            });
  return samples;
}

// ------------------------------------------------------------------- serve --

int run_serve(std::map<std::string, std::string> options) {
  // Block the shutdown signals *before* any thread exists (engine pool,
  // service shards, socket accept loop): every thread inherits the mask, so
  // SIGINT/SIGTERM can only ever be consumed by the sigwait below instead of
  // killing a worker with the default action.
  sigset_t signals;
  sigemptyset(&signals);
  sigaddset(&signals, SIGINT);
  sigaddset(&signals, SIGTERM);
  pthread_sigmask(SIG_BLOCK, &signals, nullptr);

  const std::uint64_t steps = uint_option(options, "steps", 128);
  const workload::ScenarioGenerator generator(workload_spec(options, steps));
  const auto shards = static_cast<std::size_t>(uint_option(options, "shards", 32));
  const auto threads = static_cast<std::size_t>(uint_option(options, "threads", 0));
  const auto build_start = Clock::now();

  // Durability: with --wal-dir the engine either recovers from the directory
  // (snapshot + write-ahead-log replay, skipping the fleet build entirely) or
  // builds the fleet fresh and seals it with an initial snapshot, so a later
  // crash always has a recovery point.  Declared after `engine` so the
  // manager (which holds a reference into the engine) is destroyed first.
  std::unique_ptr<engine::Engine> engine;
  std::unique_ptr<wal::Manager> wal_manager;
  if (options.count("wal-dir")) {
    wal::WalOptions wal_options;
    wal_options.dir = options["wal-dir"];
    wal_options.fsync_every = uint_option(options, "wal-fsync", 1);
    wal_options.compact_every = uint_option(options, "wal-compact-every", 0);
    const bool resume = wal::Manager::has_state(wal_options.dir);
    if (resume) {
      engine = std::make_unique<engine::Engine>(
          engine::EngineOptions{.shards = shards, .threads = threads});
    } else {
      engine = build_fleet(generator, shards, threads, steps);
    }
    wal_manager = std::make_unique<wal::Manager>(*engine, wal_options);
    const wal::RecoveryReport report = wal_manager->recover();
    if (resume) {
      std::cout << "fhg_serve: recovered " << engine->num_instances() << " instances from "
                << wal_options.dir << " (" << report.replayed_batches << " batches replayed, "
                << report.skipped_batches << " already durable, " << report.torn_bytes
                << " torn bytes truncated)\n";
    }
    // Fresh directories get their first recovery point here; recovered ones
    // fold the replayed log back into the snapshot.
    wal_manager->compact();
    engine->attach_wal(wal_manager.get());
  } else {
    engine = build_fleet(generator, shards, threads, steps);
  }
  std::cout << "fhg_serve: fleet " << workload::scenario_name(generator.spec()) << " ("
            << engine->num_instances() << " instances, " << seconds_since(build_start)
            << "s to build)\n";

  service::Service service(
      *engine,
      {.shards = static_cast<std::size_t>(uint_option(options, "service-shards", 4)),
       .backend_id = options.count("backend-id") ? options["backend-id"] : ""});
  api::SocketServerOptions socket_options;
  if (options.count("host")) {
    socket_options.host = options["host"];
  }
  socket_options.port = static_cast<std::uint16_t>(uint_option(options, "port", 0));
  api::SocketServer server(service, socket_options);
  std::cout << "fhg_serve: listening on " << server.host() << ":" << server.port()
            << " (protocol v" << api::kProtocolVersion << ", " << service.num_shards()
            << " service shards)\n"
            << std::flush;
  // Optional Prometheus exposition: GET /metrics serves the same registry
  // snapshot GetStats serves over the protocol, plus the transport metrics.
  std::unique_ptr<obs::StatsHttpServer> stats_server;
  if (options.count("stats-port")) {
    obs::StatsHttpOptions stats_options;
    if (options.count("host")) {
      stats_options.host = options["host"];
    }
    stats_options.port = static_cast<std::uint16_t>(uint_option(options, "stats-port", 0));
    stats_server = std::make_unique<obs::StatsHttpServer>(
        [&service] { return obs::to_prometheus(serving_samples(service)); }, stats_options);
    std::cout << "fhg_serve: metrics on http://" << stats_options.host << ":"
              << stats_server->port() << "/metrics\n"
              << std::flush;
  }

  // Published only once every listener is bound: line 1 is the protocol
  // port, line 2 (when --stats-port was given) the metrics port — scripts
  // read the file instead of racing the listeners or parsing stdout.
  // Written to a temp file and renamed into place: rename(2) is atomic, so
  // a polling reader sees either no file or a complete one, never a torn
  // write (a cluster harness polls one file per backend concurrently).
  if (options.count("port-file")) {
    const std::string path = options["port-file"];
    const std::string tmp = path + ".tmp";
    {
      std::ofstream out(tmp);
      out << server.port() << "\n";
      if (stats_server) {
        out << stats_server->port() << "\n";
      }
    }
    if (std::rename(tmp.c_str(), path.c_str()) != 0) {
      std::cerr << "fhg_serve: cannot publish port file " << path << "\n";
    }
  }

  const std::uint64_t stats_interval = uint_option(options, "stats-interval", 0);
  const bool timed = options.count("duration") != 0;
  if (!timed && stats_interval == 0) {
    // Foreground or backgrounded alike: park until SIGINT/SIGTERM.
    int caught = 0;
    sigwait(&signals, &caught);
    std::cout << "fhg_serve: signal " << caught << ", shutting down\n";
  } else {
    // The shutdown signals are blocked in every thread, so plain sleeping
    // would make the server uninterruptible; wait *on the signals* with a
    // deadline instead — the earlier of --duration and the next stats tick.
    const auto deadline =
        Clock::now() + std::chrono::seconds(uint_option(options, "duration", 0));
    auto next_stats = Clock::now() + std::chrono::seconds(stats_interval);
    for (;;) {
      const auto now = Clock::now();
      if (timed && now >= deadline) {
        break;
      }
      if (stats_interval != 0 && now >= next_stats) {
        std::cout << "fhg_serve: stats after " << server.connections_accepted()
                  << " connections\n"
                  << obs::to_text(serving_samples(service)) << std::flush;
        next_stats += std::chrono::seconds(stats_interval);
        continue;
      }
      auto wake = stats_interval != 0 ? next_stats : deadline;
      if (timed && deadline < wake) {
        wake = deadline;
      }
      const auto left = std::chrono::duration_cast<std::chrono::nanoseconds>(wake - now);
      timespec wait{};
      wait.tv_sec = static_cast<time_t>(left.count() / 1'000'000'000);
      wait.tv_nsec = static_cast<long>(left.count() % 1'000'000'000);
      const int caught = sigtimedwait(&signals, nullptr, &wait);
      if (caught > 0) {
        std::cout << "fhg_serve: signal " << caught << ", shutting down\n";
        break;
      }
      if (errno != EAGAIN && errno != EINTR) {
        break;
      }
    }
  }
  server.stop();
  if (stats_server) {
    stats_server->stop();
  }
  service.drain();
  std::cout << "fhg_serve: served " << server.connections_accepted() << " connections, "
            << service.metrics().totals().accepted << " accepted requests";
  if (stats_server) {
    std::cout << ", " << stats_server->scrapes() << " scrapes";
  }
  std::cout << "\n" << obs::to_text(serving_samples(service));
  const std::vector<obs::TraceSample> traces = service.traces().snapshot();
  if (!traces.empty()) {
    std::cout << "slowest traces:\n" << obs::to_text(traces);
  }
  return 0;
}

/// The connection-scaling pool: `count` open-but-idle connections held for
/// the whole hot phase.  Each is probed once on open (one ListInstances
/// roundtrip over the raw transport, so the connection is proven live before
/// it goes quiet); `revalidate` probes a 1-in-16 sample again after sitting
/// idle, proving the server kept every parked connection serviceable.
class IdlePool {
 public:
  IdlePool(std::string host, std::uint16_t port, std::size_t count, std::size_t openers)
      : host_(std::move(host)), port_(port), transports_(count) {
    if (count == 0) {
      return;
    }
    std::atomic<std::size_t> next{0};
    std::vector<std::thread> threads;
    threads.reserve(openers);
    for (std::size_t t = 0; t < std::max<std::size_t>(1, openers); ++t) {
      threads.emplace_back([&] {
        for (std::size_t i = next.fetch_add(1); i < transports_.size();
             i = next.fetch_add(1)) {
          try {
            auto transport = std::make_unique<api::SocketTransport>(host_, port_);
            if (!probe(*transport, i + 1)) {
              failed_.fetch_add(1, std::memory_order_relaxed);
              continue;
            }
            transports_[i] = std::move(transport);
          } catch (const std::exception&) {
            failed_.fetch_add(1, std::memory_order_relaxed);
          }
        }
      });
    }
    for (std::thread& thread : threads) {
      thread.join();
    }
  }

  /// Probes every 16th parked connection again; stale or dead ones count as
  /// failures.  Call after the hot phase, before the pool closes.
  void revalidate() {
    for (std::size_t i = 0; i < transports_.size(); i += 16) {
      if (!transports_[i] || !probe(*transports_[i], 1'000'000 + i)) {
        failed_.fetch_add(1, std::memory_order_relaxed);
      } else {
        revalidated_.fetch_add(1, std::memory_order_relaxed);
      }
    }
  }

  [[nodiscard]] std::size_t size() const noexcept { return transports_.size(); }
  [[nodiscard]] std::uint64_t failed() const noexcept { return failed_.load(); }
  [[nodiscard]] std::uint64_t revalidated() const noexcept { return revalidated_.load(); }

 private:
  static bool probe(api::SocketTransport& transport, std::uint64_t request_id) {
    const auto frame = api::encode_request(request_id, api::Request{api::ListInstancesRequest{}});
    std::vector<std::uint8_t> reply;
    if (!transport.roundtrip(frame, reply).ok()) {
      return false;
    }
    api::DecodedResponse decoded;
    return api::decode_response(reply, decoded).ok() && decoded.response.ok() &&
           decoded.request_id == request_id;
  }

  std::string host_;
  std::uint16_t port_;
  std::vector<std::unique_ptr<api::SocketTransport>> transports_;
  std::atomic<std::uint64_t> failed_{0};
  std::atomic<std::uint64_t> revalidated_{0};
};

// -------------------------------------------------------------------- load --

int run_load(std::map<std::string, std::string> options) {
  if (!options.count("connect")) {
    usage("load mode needs --connect HOST:PORT");
  }
  const std::string target = options["connect"];
  const auto colon = target.rfind(':');
  if (colon == std::string::npos) {
    usage("--connect wants HOST:PORT, got '" + target + "'");
  }
  const std::string host = target.substr(0, colon);
  const auto port = static_cast<std::uint16_t>(
      std::strtoul(target.substr(colon + 1).c_str(), nullptr, 10));

  // --steps mirrors the server's flag so the derived horizon (and hence the
  // request stream) matches what the server was started with.
  const workload::ScenarioGenerator generator(
      workload_spec(options, uint_option(options, "steps", 128)));
  const std::uint64_t requests = uint_option(options, "requests", 100'000);
  const auto clients =
      std::max<std::size_t>(1, static_cast<std::size_t>(uint_option(options, "clients", 4)));
  const std::uint64_t base_round = uint_option(options, "round", 1);
  const auto idle_connections =
      static_cast<std::size_t>(uint_option(options, "idle-connections", 0));
  const auto openers = static_cast<std::size_t>(uint_option(options, "openers", 16));

  // Connection-scaling phase 1: park the idle pool first, so the hot
  // clients below run against a server already holding every connection.
  const auto idle_start = Clock::now();
  IdlePool idle(host, port, idle_connections, openers);
  if (idle.size() != 0) {
    std::cout << "idle pool: " << idle.size() << " connections opened and probed in "
              << seconds_since(idle_start) << "s (" << idle.failed() << " failures)\n";
  }

  // --retry N arms each client's bounded reconnect-retry loop (idempotent
  // kinds only): the knob that lets a load run ride out a backend kill when
  // the target is a cluster router.
  api::RetryPolicy retry;
  retry.max_retries = static_cast<std::size_t>(uint_option(options, "retry", 0));
  const auto start = Clock::now();
  const LoadTally tally = fan_out(
      generator, requests, clients, base_round,
      [&] { return std::make_unique<api::SocketTransport>(host, port); }, retry);
  print_tally("load (" + std::to_string(clients) + " connections to " + target + ")", tally,
              seconds_since(start));

  // Phase 2: the parked connections sat silent through the whole hot burst;
  // a sample must still answer.
  if (idle.size() != 0) {
    idle.revalidate();
    std::cout << "idle pool: " << idle.revalidated()
              << " parked connections revalidated after the hot phase ("
              << idle.failed() << " total failures)\n";
  }
  // The client side's own wire telemetry (codec + socket counters live on
  // the process-global registry), through the same shared formatter the
  // server uses — not a second hand-rolled table.
  std::cout << "client wire metrics:\n" << obs::to_text(obs::Registry::global().snapshot());
  if (tally.failed != 0) {
    std::cerr << "fhg_serve: FAIL — " << tally.failed << " requests failed unexpectedly\n";
    return 1;
  }
  if (idle.failed() != 0) {
    std::cerr << "fhg_serve: FAIL — " << idle.failed()
              << " idle-pool connections failed to open, probe, or revalidate\n";
    return 1;
  }
  return 0;
}

// ------------------------------------------------------------------- stats --

int run_stats(std::map<std::string, std::string> options) {
  if (!options.count("connect")) {
    usage("stats mode needs --connect HOST:PORT");
  }
  const std::string target = options["connect"];
  const auto colon = target.rfind(':');
  if (colon == std::string::npos) {
    usage("--connect wants HOST:PORT, got '" + target + "'");
  }
  const std::string host = target.substr(0, colon);
  const auto port = static_cast<std::uint16_t>(
      std::strtoul(target.substr(colon + 1).c_str(), nullptr, 10));

  api::GetStatsRequest request;
  request.include_histograms = uint_option(options, "histograms", 1) != 0;
  request.include_traces = uint_option(options, "traces", 1) != 0;
  try {
    api::Client client(std::make_unique<api::SocketTransport>(host, port));
    const api::Result<api::GetStatsResponse> result = client.get_stats(request);
    if (!result.ok()) {
      std::cerr << "fhg_serve: GetStats failed: " << result.status.name() << " ("
                << result.status.detail << ")\n";
      return 1;
    }
    std::cout << obs::to_text(result.value.metrics);
    if (!result.value.traces.empty()) {
      std::cout << "slowest traces:\n" << obs::to_text(result.value.traces);
    }
  } catch (const std::exception& e) {
    std::cerr << "fhg_serve: " << e.what() << "\n";
    return 1;
  }
  return 0;
}

// ---------------------------------------------------------------- loopback --

int run_loopback(std::map<std::string, std::string> options) {
  const std::uint64_t steps = uint_option(options, "steps", 64);
  const workload::ScenarioSpec spec = workload_spec(options, steps);
  const workload::ScenarioGenerator generator(spec);
  const auto service_shards =
      static_cast<std::size_t>(uint_option(options, "service-shards", 4));
  const std::uint64_t requests = uint_option(options, "requests", 20'000);
  const auto clients =
      std::max<std::size_t>(1, static_cast<std::size_t>(uint_option(options, "clients", 4)));

  // Two identical fleets: one behind TCP loopback, one behind the
  // in-process transport.  Identical request streams must yield
  // byte-identical response frames — the "one protocol, two transports"
  // acceptance gate.
  auto socket_engine = build_fleet(generator, 32, 0, steps);
  auto inproc_engine = build_fleet(generator, 32, 0, steps);
  service::Service socket_service(*socket_engine, {.shards = service_shards});
  service::Service inproc_service(*inproc_engine, {.shards = service_shards});
  api::SocketServer server(socket_service, {});
  std::cout << "fhg_serve loopback: " << workload::scenario_name(spec) << ", socket on "
            << server.host() << ":" << server.port() << "\n";

  api::SocketTransport socket_transport(server.host(), server.port());
  api::InProcessTransport inproc_transport(inproc_service);

  // Phase 1 — single-threaded equivalence sweep over every request kind:
  // the seeded stream (queries + mutations) plus a lifecycle cycle
  // (create → query → list → snapshot → erase), frame-compared.
  auto stream = generator.request_stream(
      static_cast<std::size_t>(std::min<std::uint64_t>(requests, 20'000)), 7);
  const std::string probe = "loopback-probe";
  stream.push_back(api::CreateInstanceRequest{
      probe, 8, {{0, 1}, {1, 2}, {2, 3}}, engine::InstanceSpec{}});
  stream.push_back(api::IsHappyRequest{probe, 1, 3});
  stream.push_back(api::NextGatheringRequest{probe, 2, 0});
  stream.push_back(api::ListInstancesRequest{});
  stream.push_back(api::SnapshotRequest{});
  stream.push_back(api::EraseInstanceRequest{probe});
  stream.push_back(api::EraseInstanceRequest{probe});  // second erase: typed kNotFound
  const auto equivalence_start = Clock::now();
  std::uint64_t diverged = 0;
  for (std::size_t i = 0; i < stream.size(); ++i) {
    const auto frame = api::encode_request(i + 1, stream[i]);
    std::vector<std::uint8_t> socket_reply;
    std::vector<std::uint8_t> inproc_reply;
    const api::Status socket_status = socket_transport.roundtrip(frame, socket_reply);
    const api::Status inproc_status = inproc_transport.roundtrip(frame, inproc_reply);
    if (!socket_status.ok() || !inproc_status.ok() || socket_reply != inproc_reply) {
      ++diverged;
    }
  }
  std::cout << "equivalence: " << stream.size() << " frames in "
            << seconds_since(equivalence_start) << "s, " << diverged << " diverged\n";

  // Phase 2 — concurrent completeness: hammer the socket server from
  // `clients` connections; every request must complete without an
  // unexpected failure.
  const auto load_start = Clock::now();
  const LoadTally tally = fan_out(generator, requests, clients, 100, [&] {
    return std::make_unique<api::SocketTransport>(server.host(), server.port());
  });
  print_tally("socket load (" + std::to_string(clients) + " connections)", tally,
              seconds_since(load_start));

  server.stop();
  socket_service.drain();
  inproc_service.drain();
  if (diverged != 0) {
    std::cerr << "fhg_serve: FAIL — " << diverged
              << " response frames diverged between transports\n";
  }
  if (tally.failed != 0) {
    std::cerr << "fhg_serve: FAIL — " << tally.failed
              << " socket requests failed unexpectedly\n";
  }
  return diverged == 0 && tally.failed == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    usage("missing mode (serve | load | loopback | stats)");
  }
  const std::string mode = argv[1];
  auto options = parse_options(argc, argv, 2);
  if (mode == "serve") {
    return run_serve(std::move(options));
  }
  if (mode == "load") {
    return run_load(std::move(options));
  }
  if (mode == "loopback") {
    return run_loopback(std::move(options));
  }
  if (mode == "stats") {
    return run_stats(std::move(options));
  }
  usage("unknown mode '" + mode + "'");
}
