// Cellular-radio transmission scheduling — the paper's motivating systems
// application (§1): radios are parents, shared air is an in-law edge, and a
// radio "hosts" when it can transmit with no interference from any neighbor.
//
// A periodic schedule matters here for *energy*: a radio with period P
// sleeps (P-1)/P of the time and wakes exactly on its slot — no listening
// required between slots.  We build a grid interference topology (plus a few
// long-range links), run the §5 degree-bound scheduler, and report per-radio
// periods, duty cycles and the channel utilization against the §3
// non-periodic baseline.
//
// Run:  ./cellular_radio [rows cols]

#include <cstdlib>
#include <iostream>

#include "fhg/analysis/stats.hpp"
#include "fhg/analysis/table.hpp"
#include "fhg/coloring/greedy.hpp"
#include "fhg/core/degree_bound.hpp"
#include "fhg/core/driver.hpp"
#include "fhg/core/phased_greedy.hpp"
#include "fhg/graph/generators.hpp"
#include "fhg/graph/graph.hpp"
#include "fhg/parallel/rng.hpp"

int main(int argc, char** argv) {
  using namespace fhg;

  const graph::NodeId rows = argc > 1 ? static_cast<graph::NodeId>(std::atoi(argv[1])) : 12;
  const graph::NodeId cols = argc > 2 ? static_cast<graph::NodeId>(std::atoi(argv[2])) : 12;

  // Grid interference plus a handful of long-range links (hills, repeaters).
  const graph::Graph base = graph::grid2d(rows, cols);
  graph::GraphBuilder builder(base.num_nodes());
  for (const auto& e : base.edges()) {
    builder.add_edge(e.first, e.second);
  }
  parallel::Rng rng(2026);
  for (int extra = 0; extra < static_cast<int>(base.num_nodes() / 20); ++extra) {
    const auto u = static_cast<graph::NodeId>(rng.uniform_below(base.num_nodes()));
    const auto v = static_cast<graph::NodeId>(rng.uniform_below(base.num_nodes()));
    if (u != v) {
      builder.add_edge(u, v);
    }
  }
  const graph::Graph g = std::move(builder).build();
  std::cout << "Interference graph: " << g.num_nodes() << " radios, " << g.num_edges()
            << " interference pairs, max degree " << g.max_degree() << "\n";

  // Periodic TDMA-style schedule: radio of degree d transmits every
  // 2^ceil(log(d+1)) <= 2d slots, *known in advance* from its residue alone.
  core::DegreeBoundScheduler tdma(g);
  constexpr std::uint64_t kSlots = 4096;
  const auto periodic = core::run_schedule(tdma, {.horizon = kSlots});

  // Non-periodic §3 baseline: better worst-case gap (d+1) but requires
  // coordination every slot and gives no advance slot knowledge.
  core::PhasedGreedyScheduler phased(g, coloring::greedy_color(g, coloring::Order::kLargestFirst));
  const auto adaptive = core::run_schedule(phased, {.horizon = kSlots});

  analysis::Table table({"scheme", "audit", "mean gap bound", "worst gap seen",
                         "slots/radio (mean)", "advance knowledge"});
  std::vector<std::uint64_t> bounds_tdma;
  std::vector<std::uint64_t> bounds_phased;
  for (graph::NodeId v = 0; v < g.num_nodes(); ++v) {
    bounds_tdma.push_back(*tdma.gap_bound(v));
    bounds_phased.push_back(*phased.gap_bound(v));
  }
  const auto worst = [](const std::vector<std::uint64_t>& gaps) {
    std::uint64_t w = 0;
    for (const auto gap : gaps) {
      w = std::max(w, gap);
    }
    return w;
  };
  table.row()
      .add("degree-bound (periodic)")
      .add(periodic.independence_ok && periodic.bounds_respected)
      .add(analysis::summarize(bounds_tdma).mean, 2)
      .add(worst(periodic.max_gap_with_tail))
      .add(static_cast<double>(periodic.total_happy) / g.num_nodes(), 1)
      .add("full (residue mod 2^j)");
  table.row()
      .add("phased greedy (adaptive)")
      .add(adaptive.independence_ok && adaptive.bounds_respected)
      .add(analysis::summarize(bounds_phased).mean, 2)
      .add(worst(adaptive.max_gap_with_tail))
      .add(static_cast<double>(adaptive.total_happy) / g.num_nodes(), 1)
      .add("next slot only");
  table.print(std::cout);

  // Energy story: duty cycle = 1/period; a periodic radio powers down
  // in between, the adaptive one must listen every slot.
  std::vector<double> duty;
  for (graph::NodeId v = 0; v < g.num_nodes(); ++v) {
    duty.push_back(1.0 / static_cast<double>(*tdma.period_of(v)));
  }
  const auto s = analysis::summarize(duty);
  std::cout << "\nPeriodic duty cycle: mean " << s.mean << ", min " << s.min << ", max " << s.max
            << " (adaptive scheme: every radio awake every slot)\n";

  return periodic.independence_ok && adaptive.independence_ok ? 0 : 1;
}
