// Weighted fairness — the extension scheduler (src/core/weighted.hpp).
//
// A radio network with service classes: gold radios need a slot every ~4
// frames, silver every ~16, bronze every ~64 — regardless of their degree.
// The weighted periodic scheduler grants power-of-two periods honoring the
// demands whenever the neighborhood load permits, relaxing (doubling) the
// cheapest period otherwise, and stays perfectly periodic and conflict-free.
//
// Run:  ./weighted_fairness

#include <iostream>

#include "fhg/analysis/table.hpp"
#include "fhg/core/driver.hpp"
#include "fhg/core/weighted.hpp"
#include "fhg/graph/generators.hpp"
#include "fhg/parallel/rng.hpp"

int main() {
  using namespace fhg;

  const graph::Graph g = graph::grid2d(10, 10);
  parallel::Rng rng(7);

  // Assign service classes: 10% gold, 30% silver, 60% bronze.
  std::vector<std::uint64_t> demand(g.num_nodes());
  std::vector<const char*> klass(g.num_nodes());
  for (graph::NodeId v = 0; v < g.num_nodes(); ++v) {
    const double roll = rng.uniform_real();
    if (roll < 0.10) {
      demand[v] = 4;
      klass[v] = "gold";
    } else if (roll < 0.40) {
      demand[v] = 16;
      klass[v] = "silver";
    } else {
      demand[v] = 64;
      klass[v] = "bronze";
    }
  }

  core::WeightedPeriodicScheduler scheduler(g, demand, core::WeightedPolicy::kAutoRelax);
  const auto report = core::run_schedule(scheduler, {.horizon = 1024});

  analysis::Table table({"class", "radios", "requested period", "granted (mean)",
                         "granted (max)", "relaxed", "worst observed gap"});
  for (const auto& [name, want] :
       std::vector<std::pair<std::string, std::uint64_t>>{{"gold", 4}, {"silver", 16},
                                                          {"bronze", 64}}) {
    std::uint64_t count = 0;
    double granted_sum = 0;
    std::uint64_t granted_max = 0;
    std::uint64_t relaxed = 0;
    std::uint64_t worst_gap = 0;
    for (graph::NodeId v = 0; v < g.num_nodes(); ++v) {
      if (demand[v] != want) {
        continue;
      }
      ++count;
      const std::uint64_t period = scheduler.period_of(v).value();
      granted_sum += static_cast<double>(period);
      granted_max = std::max(granted_max, period);
      relaxed += period > want ? 1 : 0;
      worst_gap = std::max(worst_gap, report.max_gap_with_tail[v]);
    }
    table.row()
        .add(name)
        .add(count)
        .add(want)
        .add(count == 0 ? 0.0 : granted_sum / static_cast<double>(count), 1)
        .add(granted_max)
        .add(relaxed)
        .add(worst_gap);
  }
  table.print(std::cout);

  std::cout << "\nAudit: independence " << (report.independence_ok ? "OK" : "VIOLATED")
            << ", perfect periodicity " << (report.bounds_respected ? "OK" : "VIOLATED")
            << ", relaxed radios total: " << scheduler.assignment().relaxed.size() << "\n"
            << "Every radio knows its whole calendar from (residue, period) alone —\n"
            << "the §5 lightweightness carried over to demand-driven rates.\n";
  return report.independence_ok && report.bounds_respected ? 0 : 1;
}
