// Tests for fhg::coding — bit strings, Elias codes (against the paper's own
// Appendix B examples), iterated-log toolkit, prefix-freeness and slots.

#include <gtest/gtest.h>

#include <cmath>

#include "fhg/coding/bitstring.hpp"
#include "fhg/coding/elias.hpp"
#include "fhg/coding/iterated_log.hpp"
#include "fhg/coding/prefix.hpp"

namespace fc = fhg::coding;

// --------------------------------------------------------- BitString -------

TEST(BitString, ParsesLiteral) {
  const fc::BitString w("1010");
  EXPECT_EQ(w.size(), 4U);
  EXPECT_TRUE(w.bit(0));
  EXPECT_FALSE(w.bit(1));
  EXPECT_EQ(w.to_string(), "1010");
}

TEST(BitString, RejectsBadLiteral) {
  EXPECT_THROW(fc::BitString("10x"), std::invalid_argument);
}

TEST(BitString, StandardBinary) {
  EXPECT_EQ(fc::BitString::standard_binary(1).to_string(), "1");
  EXPECT_EQ(fc::BitString::standard_binary(9).to_string(), "1001");
  EXPECT_EQ(fc::BitString::standard_binary(3).to_string(), "11");
  EXPECT_THROW(fc::BitString::standard_binary(0), std::invalid_argument);
}

TEST(BitString, BinaryWithWidth) {
  EXPECT_EQ(fc::BitString::binary(9, 6).to_string(), "001001");
  EXPECT_EQ(fc::BitString::binary(0, 3).to_string(), "000");
}

TEST(BitString, Reversal) {
  EXPECT_EQ(fc::BitString("110100").reversed().to_string(), "001011");
  EXPECT_EQ(fc::BitString("").reversed().to_string(), "");
}

TEST(BitString, Concatenation) {
  const fc::BitString w = fc::BitString("11") + fc::BitString("1001");
  EXPECT_EQ(w.to_string(), "111001");
}

TEST(BitString, PrefixRelation) {
  EXPECT_TRUE(fc::BitString("10").is_prefix_of(fc::BitString("1011")));
  EXPECT_TRUE(fc::BitString("10").is_prefix_of(fc::BitString("10")));
  EXPECT_FALSE(fc::BitString("11").is_prefix_of(fc::BitString("1011")));
  EXPECT_FALSE(fc::BitString("1011").is_prefix_of(fc::BitString("10")));
}

TEST(BitString, MsbAndLsbValues) {
  const fc::BitString w("1001");
  EXPECT_EQ(w.to_uint_msb_first(), 9U);
  EXPECT_EQ(w.to_uint_lsb_first(), 9U);  // palindrome
  const fc::BitString u("110");
  EXPECT_EQ(u.to_uint_msb_first(), 6U);
  EXPECT_EQ(u.to_uint_lsb_first(), 3U);
}

// ------------------------------------------------------- Elias codes -------

TEST(EliasOmega, PaperAppendixExamples) {
  // Appendix B: ω(1) = 0; ω(9) = 11 1001 0.
  EXPECT_EQ(fc::elias_omega(1).to_string(), "0");
  EXPECT_EQ(fc::elias_omega(9).to_string(), "1110010");
}

TEST(EliasOmega, PaperTableOneToFifteen) {
  // The paper's full list for 1..15 (spaces removed).
  const char* expected[] = {"0",        "100",      "110",      "101000",   "101010",
                            "101100",   "101110",   "1110000",  "1110010",  "1110100",
                            "1110110",  "1111000",  "1111010",  "1111100",  "1111110"};
  for (std::uint64_t i = 1; i <= 15; ++i) {
    EXPECT_EQ(fc::elias_omega(i).to_string(), expected[i - 1]) << "omega(" << i << ")";
  }
}

TEST(EliasGamma, KnownCodewords) {
  EXPECT_EQ(fc::elias_gamma(1).to_string(), "1");
  EXPECT_EQ(fc::elias_gamma(2).to_string(), "010");
  EXPECT_EQ(fc::elias_gamma(5).to_string(), "00101");
  EXPECT_EQ(fc::elias_gamma(9).to_string(), "0001001");
}

TEST(EliasDelta, KnownCodewords) {
  EXPECT_EQ(fc::elias_delta(1).to_string(), "1");
  EXPECT_EQ(fc::elias_delta(2).to_string(), "0100");
  EXPECT_EQ(fc::elias_delta(9).to_string(), "00100001");
}

TEST(Unary, KnownCodewords) {
  EXPECT_EQ(fc::unary_code(1).to_string(), "0");
  EXPECT_EQ(fc::unary_code(4).to_string(), "1110");
}

TEST(Codes, RejectZero) {
  EXPECT_THROW(fc::elias_omega(0), std::invalid_argument);
  EXPECT_THROW(fc::elias_gamma(0), std::invalid_argument);
  EXPECT_THROW(fc::elias_delta(0), std::invalid_argument);
  EXPECT_THROW(fc::unary_code(0), std::invalid_argument);
}

namespace {

/// Decodes `w` (optionally with `padding` zero bits appended) via `family`.
std::uint64_t decode_string(fc::CodeFamily family, const fc::BitString& w) {
  std::size_t cursor = 0;
  return fc::decode(family, [&]() {
    const bool b = cursor < w.size() && w.bit(cursor);
    ++cursor;
    return b;
  });
}

}  // namespace

class CodeFamilyTest : public ::testing::TestWithParam<fc::CodeFamily> {};

TEST_P(CodeFamilyTest, DecodeInvertsEncodeSmall) {
  const fc::CodeFamily family = GetParam();
  const std::uint64_t limit = family == fc::CodeFamily::kUnary ? 300 : 5000;
  for (std::uint64_t i = 1; i <= limit; ++i) {
    EXPECT_EQ(decode_string(family, fc::encode(family, i)), i) << "i=" << i;
  }
}

TEST_P(CodeFamilyTest, LengthFunctionMatchesCodeword) {
  const fc::CodeFamily family = GetParam();
  const std::uint64_t limit = family == fc::CodeFamily::kUnary ? 300 : 5000;
  for (std::uint64_t i = 1; i <= limit; ++i) {
    EXPECT_EQ(fc::code_length(family, i), fc::encode(family, i).size()) << "i=" << i;
  }
}

TEST_P(CodeFamilyTest, IsPrefixFree) {
  const fc::CodeFamily family = GetParam();
  const std::uint64_t limit = family == fc::CodeFamily::kUnary ? 200 : 2000;
  std::vector<fc::BitString> book;
  book.reserve(limit);
  for (std::uint64_t i = 1; i <= limit; ++i) {
    book.push_back(fc::encode(family, i));
  }
  EXPECT_TRUE(fc::is_prefix_free(book));
  EXPECT_TRUE(fc::prefix_violations(book).empty());
}

TEST_P(CodeFamilyTest, KraftSumAtMostOne) {
  const fc::CodeFamily family = GetParam();
  std::vector<fc::BitString> book;
  for (std::uint64_t i = 1; i <= 500; ++i) {
    book.push_back(fc::encode(family, i));
  }
  EXPECT_LE(fc::kraft_sum(book), 1.0 + 1e-12);
}

TEST_P(CodeFamilyTest, DecodeHolidayIsTotalAndConsistent) {
  const fc::CodeFamily family = GetParam();
  // For every holiday t, decode_holiday gives the unique color whose slot
  // matches t (verified against slots of the first 64 colors).
  std::vector<fc::ScheduleSlot> slots;
  for (std::uint64_t c = 1; c <= 64; ++c) {
    slots.push_back(fc::slot_of(fc::encode(family, c)));
  }
  for (std::uint64_t t = 1; t <= 4096; ++t) {
    // nullopt means the holiday's unique color exceeds the 64-bit range
    // (e.g. delta at t = 2^12: the decoded length prefix is astronomical);
    // then in particular no *small* color may match.
    const auto color = fc::decode_holiday(family, t);
    for (std::uint64_t c = 1; c <= 64; ++c) {
      const bool matches = slots[c - 1].matches(t);
      EXPECT_EQ(matches, color.has_value() && *color == c) << "t=" << t << " c=" << c;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllFamilies, CodeFamilyTest,
                         ::testing::Values(fc::CodeFamily::kUnary, fc::CodeFamily::kEliasGamma,
                                           fc::CodeFamily::kEliasDelta,
                                           fc::CodeFamily::kEliasOmega),
                         [](const auto& param_info) {
                           return fc::code_family_name(param_info.param);
                         });

TEST(EliasOmega, LengthMatchesPaperRecursion) {
  // ρ(n) = 1 + rb(n), rb(1) = 0, rb(i) = |B(i)| + rb(|B(i)|-1).
  EXPECT_EQ(fc::elias_omega_length(1), 1U);
  EXPECT_EQ(fc::elias_omega_length(2), 3U);
  EXPECT_EQ(fc::elias_omega_length(3), 3U);
  EXPECT_EQ(fc::elias_omega_length(4), 6U);
  EXPECT_EQ(fc::elias_omega_length(9), 7U);
  EXPECT_EQ(fc::elias_omega_length(16), 11U);
  EXPECT_EQ(fc::elias_omega_length(100), 13U);  // 1 + |B(100)| + |B(6)| + |B(2)| = 1+7+3+2
}

TEST(EliasOmega, LengthIsWithinTheoremBound) {
  // 2^ρ(c) ≤ 2^{1+log* c} · φ(c)  (Theorem 4.2).
  for (std::uint64_t c = 1; c <= 100'000; c = c < 100 ? c + 1 : c * 3 / 2) {
    const double period = std::exp2(static_cast<double>(fc::elias_omega_length(c)));
    EXPECT_LE(period, fc::omega_period_bound(c) * (1.0 + 1e-9)) << "c=" << c;
  }
}

// ----------------------------------------------------- iterated logs -------

TEST(IteratedLog, FloorCeilLog2) {
  EXPECT_EQ(fc::floor_log2(1), 0U);
  EXPECT_EQ(fc::floor_log2(2), 1U);
  EXPECT_EQ(fc::floor_log2(3), 1U);
  EXPECT_EQ(fc::floor_log2(1024), 10U);
  EXPECT_EQ(fc::ceil_log2(1), 0U);
  EXPECT_EQ(fc::ceil_log2(2), 1U);
  EXPECT_EQ(fc::ceil_log2(3), 2U);
  EXPECT_EQ(fc::ceil_log2(1024), 10U);
  EXPECT_EQ(fc::ceil_log2(1025), 11U);
}

TEST(IteratedLog, LogStarValues) {
  EXPECT_EQ(fc::log_star(1.0), 0U);
  EXPECT_EQ(fc::log_star(2.0), 1U);
  EXPECT_EQ(fc::log_star(4.0), 2U);
  EXPECT_EQ(fc::log_star(16.0), 3U);
  EXPECT_EQ(fc::log_star(65536.0), 4U);
  EXPECT_EQ(fc::log_star(1e30), 5U);
}

TEST(IteratedLog, PhiMatchesDefinition) {
  // φ(i) = 1 for i ≤ 1; φ(i) = i · φ(log i).
  EXPECT_DOUBLE_EQ(fc::phi(1.0), 1.0);
  EXPECT_DOUBLE_EQ(fc::phi(2.0), 2.0);              // 2 · φ(1)
  EXPECT_DOUBLE_EQ(fc::phi(4.0), 4.0 * 2.0);        // 4 · φ(2)
  EXPECT_DOUBLE_EQ(fc::phi(16.0), 16.0 * fc::phi(4.0));
  EXPECT_NEAR(fc::phi(256.0), 256.0 * fc::phi(8.0), 1e-9);
}

TEST(IteratedLog, PhiIsMonotone) {
  double prev = 0.0;
  for (double x = 1.0; x < 1e6; x *= 1.7) {
    const double value = fc::phi(x);
    EXPECT_GE(value, prev);
    prev = value;
  }
}

TEST(IteratedLog, ReciprocalSumOfSquaresConverges) {
  // Σ 1/c² over [1, 10^6] ≈ π²/6.
  const double sum =
      fc::reciprocal_sum(1, 1'000'000, [](std::uint64_t c) { return static_cast<double>(c) * c; });
  EXPECT_NEAR(sum, 1.6449340668, 1e-5);
}

TEST(IteratedLog, ReciprocalSumLinearDiverges) {
  // Σ 1/c over [1, N] ≈ ln N + γ — clearly above 1 for modest N.
  const double sum =
      fc::reciprocal_sum(1, 100'000, [](std::uint64_t c) { return static_cast<double>(c); });
  EXPECT_GT(sum, 10.0);
}

// ------------------------------------------------------------ slots --------

TEST(ScheduleSlot, PeriodAndResidueFromCodeword) {
  // ω(9) = 1110010; reversed occupies the low 7 bits of t.
  const fc::ScheduleSlot slot = fc::slot_of(fc::elias_omega(9));
  EXPECT_EQ(slot.length, 7U);
  EXPECT_EQ(slot.period(), 128U);
  // residue: bits of "1110010" with leftmost = LSB: 1+2+4+32 = 39.
  EXPECT_EQ(slot.residue, 39U);
  EXPECT_TRUE(slot.matches(39));
  EXPECT_TRUE(slot.matches(39 + 128));
  EXPECT_FALSE(slot.matches(40));
}

TEST(ScheduleSlot, MatchesIsExactlyPeriodic) {
  const fc::ScheduleSlot slot = fc::slot_of(fc::elias_omega(5));
  std::uint64_t previous = 0;
  std::uint64_t count = 0;
  for (std::uint64_t t = 1; t <= 10'000; ++t) {
    if (slot.matches(t)) {
      if (previous != 0) {
        EXPECT_EQ(t - previous, slot.period());
      }
      previous = t;
      ++count;
    }
  }
  EXPECT_NEAR(static_cast<double>(count), 10'000.0 / static_cast<double>(slot.period()), 1.0);
}

TEST(ScheduleSlot, RejectsBadCodewords) {
  EXPECT_THROW(static_cast<void>(fc::slot_of(fc::BitString(""))), std::invalid_argument);
}

TEST(PrefixFree, DetectsViolations) {
  const std::vector<fc::BitString> bad{fc::BitString("10"), fc::BitString("101")};
  EXPECT_FALSE(fc::is_prefix_free(bad));
  const auto witnesses = fc::prefix_violations(bad);
  ASSERT_EQ(witnesses.size(), 1U);
  EXPECT_EQ(witnesses[0].first, 0U);
  EXPECT_EQ(witnesses[0].second, 1U);
}

TEST(PrefixFree, DetectsDuplicates) {
  const std::vector<fc::BitString> bad{fc::BitString("10"), fc::BitString("10")};
  EXPECT_FALSE(fc::is_prefix_free(bad));
}

TEST(PrefixFree, AcceptsFixedWidthCode) {
  std::vector<fc::BitString> book;
  for (std::uint64_t i = 0; i < 16; ++i) {
    book.push_back(fc::BitString::binary(i, 4));
  }
  EXPECT_TRUE(fc::is_prefix_free(book));
  EXPECT_DOUBLE_EQ(fc::kraft_sum(book), 1.0);
}
