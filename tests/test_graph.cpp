// Tests for fhg::graph — CSR construction, dynamic graph, generators, IO and
// structural properties.

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

#include "fhg/graph/dynamic_graph.hpp"
#include "fhg/graph/generators.hpp"
#include "fhg/graph/graph.hpp"
#include "fhg/graph/io.hpp"
#include "fhg/graph/properties.hpp"

namespace fg = fhg::graph;

// ------------------------------------------------------------- Graph -------

TEST(Graph, EmptyGraph) {
  const fg::Graph g(0);
  EXPECT_EQ(g.num_nodes(), 0U);
  EXPECT_EQ(g.num_edges(), 0U);
  EXPECT_TRUE(g.empty());
}

TEST(Graph, IsolatedNodes) {
  const fg::Graph g(5);
  EXPECT_EQ(g.num_nodes(), 5U);
  EXPECT_EQ(g.num_edges(), 0U);
  for (fg::NodeId v = 0; v < 5; ++v) {
    EXPECT_EQ(g.degree(v), 0U);
    EXPECT_TRUE(g.neighbors(v).empty());
  }
}

TEST(Graph, BuildsTriangle) {
  fg::GraphBuilder b(3);
  b.add_edge(0, 1);
  b.add_edge(1, 2);
  b.add_edge(2, 0);
  const fg::Graph g = std::move(b).build();
  EXPECT_EQ(g.num_edges(), 3U);
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_TRUE(g.has_edge(1, 0));
  EXPECT_TRUE(g.has_edge(1, 2));
  EXPECT_TRUE(g.has_edge(0, 2));
  EXPECT_EQ(g.max_degree(), 2U);
}

TEST(Graph, DeduplicatesParallelEdges) {
  fg::GraphBuilder b(2);
  b.add_edge(0, 1);
  b.add_edge(1, 0);
  b.add_edge(0, 1);
  const fg::Graph g = std::move(b).build();
  EXPECT_EQ(g.num_edges(), 1U);
  EXPECT_EQ(g.degree(0), 1U);
}

TEST(Graph, RejectsSelfLoop) {
  fg::GraphBuilder b(3);
  EXPECT_THROW(b.add_edge(1, 1), std::invalid_argument);
}

TEST(Graph, RejectsOutOfRange) {
  fg::GraphBuilder b(3);
  EXPECT_THROW(b.add_edge(0, 3), std::invalid_argument);
}

TEST(Graph, NeighborsAreSorted) {
  fg::GraphBuilder b(6);
  b.add_edge(3, 5);
  b.add_edge(3, 1);
  b.add_edge(3, 4);
  b.add_edge(3, 0);
  const fg::Graph g = std::move(b).build();
  const auto nbrs = g.neighbors(3);
  EXPECT_TRUE(std::is_sorted(nbrs.begin(), nbrs.end()));
  EXPECT_EQ(nbrs.size(), 4U);
}

TEST(Graph, EdgesReturnsCanonicalOrder) {
  fg::GraphBuilder b(4);
  b.add_edge(2, 3);
  b.add_edge(0, 1);
  b.add_edge(1, 3);
  const fg::Graph g = std::move(b).build();
  const auto edges = g.edges();
  ASSERT_EQ(edges.size(), 3U);
  EXPECT_TRUE(std::is_sorted(edges.begin(), edges.end()));
  for (const auto& e : edges) {
    EXPECT_LT(e.first, e.second);
  }
}

// ------------------------------------------------------ DynamicGraph -------

TEST(DynamicGraph, InsertAndErase) {
  fg::DynamicGraph g(4);
  EXPECT_TRUE(g.insert_edge(0, 1));
  EXPECT_FALSE(g.insert_edge(1, 0));  // duplicate
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_EQ(g.num_edges(), 1U);
  EXPECT_TRUE(g.erase_edge(0, 1));
  EXPECT_FALSE(g.erase_edge(0, 1));
  EXPECT_EQ(g.num_edges(), 0U);
}

TEST(DynamicGraph, SnapshotMatches) {
  fg::DynamicGraph g(5);
  g.insert_edge(0, 1);
  g.insert_edge(1, 2);
  g.insert_edge(3, 4);
  const fg::Graph s = g.snapshot();
  EXPECT_EQ(s.num_edges(), 3U);
  EXPECT_TRUE(s.has_edge(1, 2));
  EXPECT_FALSE(s.has_edge(0, 2));
}

TEST(DynamicGraph, RoundTripsThroughStaticGraph) {
  const fg::Graph original = fg::cycle(7);
  fg::DynamicGraph dyn(original);
  EXPECT_EQ(dyn.num_edges(), original.num_edges());
  const fg::Graph back = dyn.snapshot();
  EXPECT_EQ(back.edges(), original.edges());
}

TEST(DynamicGraph, AddNodeGrows) {
  fg::DynamicGraph g(2);
  const fg::NodeId v = g.add_node();
  EXPECT_EQ(v, 2U);
  EXPECT_EQ(g.num_nodes(), 3U);
  EXPECT_TRUE(g.insert_edge(0, v));
}

TEST(DynamicGraph, RejectsSelfLoop) {
  fg::DynamicGraph g(3);
  EXPECT_THROW(g.insert_edge(2, 2), std::invalid_argument);
}

// -------------------------------------------------------- generators -------

TEST(Generators, CliqueHasAllPairs) {
  const fg::Graph g = fg::clique(6);
  EXPECT_EQ(g.num_edges(), 15U);
  EXPECT_EQ(g.max_degree(), 5U);
}

TEST(Generators, CycleDegreesAreTwo) {
  const fg::Graph g = fg::cycle(10);
  EXPECT_EQ(g.num_edges(), 10U);
  for (fg::NodeId v = 0; v < 10; ++v) {
    EXPECT_EQ(g.degree(v), 2U);
  }
}

TEST(Generators, PathEndpointsHaveDegreeOne) {
  const fg::Graph g = fg::path(8);
  EXPECT_EQ(g.num_edges(), 7U);
  EXPECT_EQ(g.degree(0), 1U);
  EXPECT_EQ(g.degree(7), 1U);
  EXPECT_EQ(g.degree(3), 2U);
}

TEST(Generators, StarHubDegree) {
  const fg::Graph g = fg::star(9);
  EXPECT_EQ(g.degree(0), 8U);
  for (fg::NodeId v = 1; v < 9; ++v) {
    EXPECT_EQ(g.degree(v), 1U);
  }
}

TEST(Generators, GnpZeroAndOne) {
  EXPECT_EQ(fg::gnp(20, 0.0, 1).num_edges(), 0U);
  EXPECT_EQ(fg::gnp(20, 1.0, 1).num_edges(), 190U);
}

TEST(Generators, GnpDensityIsPlausible) {
  const fg::Graph g = fg::gnp(400, 0.05, 7);
  const double expected = 0.05 * 400 * 399 / 2;
  EXPECT_NEAR(static_cast<double>(g.num_edges()), expected, expected * 0.2);
}

TEST(Generators, GnpIsDeterministic) {
  const fg::Graph a = fg::gnp(100, 0.1, 42);
  const fg::Graph b = fg::gnp(100, 0.1, 42);
  EXPECT_EQ(a.edges(), b.edges());
  const fg::Graph c = fg::gnp(100, 0.1, 43);
  EXPECT_NE(a.edges(), c.edges());
}

TEST(Generators, GnmExactEdgeCount) {
  const fg::Graph g = fg::gnm(50, 200, 3);
  EXPECT_EQ(g.num_edges(), 200U);
  EXPECT_THROW(fg::gnm(5, 11, 1), std::invalid_argument);
}

TEST(Generators, CompleteBipartiteIsBipartite) {
  const fg::Graph g = fg::complete_bipartite(4, 6);
  EXPECT_EQ(g.num_edges(), 24U);
  EXPECT_TRUE(fg::bipartition(g).has_value());
}

TEST(Generators, RandomBipartiteIsBipartite) {
  const fg::Graph g = fg::random_bipartite(30, 40, 0.2, 11);
  EXPECT_TRUE(fg::bipartition(g).has_value());
}

TEST(Generators, CompleteKPartite) {
  const fg::Graph g = fg::complete_kpartite(3, 4);  // 12 nodes
  EXPECT_EQ(g.num_nodes(), 12U);
  // Each node connects to the 8 nodes outside its group.
  for (fg::NodeId v = 0; v < 12; ++v) {
    EXPECT_EQ(g.degree(v), 8U);
  }
}

TEST(Generators, RandomTreeIsTree) {
  for (std::uint64_t seed = 0; seed < 5; ++seed) {
    const fg::Graph g = fg::random_tree(50, seed);
    EXPECT_EQ(g.num_edges(), 49U);
    EXPECT_EQ(fg::connected_components(g).count, 1U);
  }
}

TEST(Generators, CaterpillarShape) {
  const fg::Graph g = fg::caterpillar(5, 3);
  EXPECT_EQ(g.num_nodes(), 20U);
  EXPECT_EQ(g.num_edges(), 4U + 15U);
  EXPECT_EQ(g.degree(0), 1U + 3U);  // spine end: 1 spine edge + 3 legs
  EXPECT_EQ(g.degree(2), 2U + 3U);  // interior spine
}

TEST(Generators, Grid2dDegrees) {
  const fg::Graph g = fg::grid2d(4, 5);
  EXPECT_EQ(g.num_nodes(), 20U);
  EXPECT_EQ(g.num_edges(), 4U * 4U + 3U * 5U);  // horizontal + vertical
  EXPECT_EQ(g.degree(0), 2U);                   // corner
  EXPECT_EQ(g.max_degree(), 4U);
}

TEST(Generators, RandomRegularDegrees) {
  const fg::Graph g = fg::random_regular(60, 4, 9);
  for (fg::NodeId v = 0; v < 60; ++v) {
    EXPECT_EQ(g.degree(v), 4U);
  }
  EXPECT_THROW(fg::random_regular(5, 3, 1), std::invalid_argument);  // n*d odd
}

TEST(Generators, BarabasiAlbertDegrees) {
  const fg::Graph g = fg::barabasi_albert(200, 3, 5);
  EXPECT_EQ(g.num_nodes(), 200U);
  // Every node beyond the seed clique has degree >= m.
  for (fg::NodeId v = 4; v < 200; ++v) {
    EXPECT_GE(g.degree(v), 3U);
  }
  // Preferential attachment yields a hub well above the minimum.
  EXPECT_GT(g.max_degree(), 10U);
}

TEST(Generators, DisjointUnionReplicates) {
  const fg::Graph g = fg::disjoint_union(fg::cycle(5), 3);
  EXPECT_EQ(g.num_nodes(), 15U);
  EXPECT_EQ(g.num_edges(), 15U);
  EXPECT_EQ(fg::connected_components(g).count, 3U);
}

// ------------------------------------------------------------ IO -----------

TEST(GraphIo, EdgeListRoundTrip) {
  const fg::Graph g = fg::gnp(30, 0.2, 1);
  std::stringstream buffer;
  fg::write_edge_list(buffer, g);
  const fg::Graph back = fg::read_edge_list(buffer);
  EXPECT_EQ(back.edges(), g.edges());
  EXPECT_EQ(back.num_nodes(), g.num_nodes());
}

TEST(GraphIo, DimacsRoundTrip) {
  const fg::Graph g = fg::barabasi_albert(40, 2, 3);
  std::stringstream buffer;
  fg::write_dimacs(buffer, g, "test graph");
  const fg::Graph back = fg::read_dimacs(buffer);
  EXPECT_EQ(back.edges(), g.edges());
}

TEST(GraphIo, EdgeListRejectsMalformed) {
  std::stringstream missing_header("0 1\n");
  EXPECT_THROW(fg::read_edge_list(missing_header), std::runtime_error);
  std::stringstream bad_count("3 5\n0 1\n");
  EXPECT_THROW(fg::read_edge_list(bad_count), std::runtime_error);
  std::stringstream out_of_range("2 1\n0 5\n");
  EXPECT_THROW(fg::read_edge_list(out_of_range), std::runtime_error);
}

TEST(GraphIo, DimacsRejectsMalformed) {
  std::stringstream no_problem("e 1 2\n");
  EXPECT_THROW(fg::read_dimacs(no_problem), std::runtime_error);
  std::stringstream zero_based("p edge 3 1\ne 0 1\n");
  EXPECT_THROW(fg::read_dimacs(zero_based), std::runtime_error);
}

TEST(GraphIo, CommentsAreSkipped) {
  std::stringstream in("# a comment\n3 2\n# another\n0 1\n1 2\n");
  const fg::Graph g = fg::read_edge_list(in);
  EXPECT_EQ(g.num_edges(), 2U);
}

// ------------------------------------------------------- properties --------

TEST(Properties, DegreeStats) {
  const fg::Graph g = fg::star(5);
  const auto stats = fg::degree_stats(g);
  EXPECT_EQ(stats.min, 1U);
  EXPECT_EQ(stats.max, 4U);
  EXPECT_DOUBLE_EQ(stats.mean, 8.0 / 5.0);
  ASSERT_EQ(stats.histogram.size(), 5U);
  EXPECT_EQ(stats.histogram[1], 4U);
  EXPECT_EQ(stats.histogram[4], 1U);
}

TEST(Properties, BipartitionOfEvenCycle) {
  EXPECT_TRUE(fg::bipartition(fg::cycle(8)).has_value());
  EXPECT_FALSE(fg::bipartition(fg::cycle(9)).has_value());
}

TEST(Properties, BipartitionSidesAreConsistent) {
  const fg::Graph g = fg::complete_bipartite(3, 5);
  const auto sides = fg::bipartition(g);
  ASSERT_TRUE(sides.has_value());
  for (const auto& e : g.edges()) {
    EXPECT_NE((*sides)[e.first], (*sides)[e.second]);
  }
}

TEST(Properties, ConnectedComponents) {
  const fg::Graph g = fg::disjoint_union(fg::path(4), 5);
  const auto comps = fg::connected_components(g);
  EXPECT_EQ(comps.count, 5U);
  EXPECT_EQ(comps.id[0], comps.id[3]);
  EXPECT_NE(comps.id[0], comps.id[4]);
}

TEST(Properties, DegeneracyOfTreeIsOne) {
  const auto result = fg::degeneracy_order(fg::random_tree(100, 4));
  EXPECT_EQ(result.degeneracy, 1U);
  EXPECT_EQ(result.order.size(), 100U);
}

TEST(Properties, DegeneracyOfCliqueIsNMinusOne) {
  const auto result = fg::degeneracy_order(fg::clique(7));
  EXPECT_EQ(result.degeneracy, 6U);
}

TEST(Properties, DegeneracyOfCycleIsTwo) {
  EXPECT_EQ(fg::degeneracy_order(fg::cycle(20)).degeneracy, 2U);
}

TEST(Properties, TriangleCount) {
  EXPECT_EQ(fg::triangle_count(fg::clique(5)), 10U);  // C(5,3)
  EXPECT_EQ(fg::triangle_count(fg::cycle(6)), 0U);
  EXPECT_EQ(fg::triangle_count(fg::complete_bipartite(4, 4)), 0U);
}

TEST(Properties, IsIndependentSet) {
  const fg::Graph g = fg::cycle(6);
  const std::vector<fg::NodeId> independent{0, 2, 4};
  const std::vector<fg::NodeId> dependent{0, 1};
  EXPECT_TRUE(fg::is_independent_set(g, independent));
  EXPECT_FALSE(fg::is_independent_set(g, dependent));
  EXPECT_TRUE(fg::is_independent_set(g, {}));
}

// ---------------------------------------------------------- subgraphs ------

#include "fhg/graph/subgraph.hpp"

TEST(Subgraph, InducedTriangleFromClique) {
  const fg::Graph g = fg::clique(6);
  const std::vector<fg::NodeId> pick{1, 3, 5};
  const auto sub = fg::induced_subgraph(g, pick);
  EXPECT_EQ(sub.graph.num_nodes(), 3U);
  EXPECT_EQ(sub.graph.num_edges(), 3U);  // still a clique
  EXPECT_EQ(sub.original, pick);
}

TEST(Subgraph, InducedDropsOutsideEdges) {
  const fg::Graph g = fg::path(5);  // 0-1-2-3-4
  const std::vector<fg::NodeId> pick{0, 2, 4};
  const auto sub = fg::induced_subgraph(g, pick);
  EXPECT_EQ(sub.graph.num_edges(), 0U);  // pairwise non-adjacent in the path
}

TEST(Subgraph, DeduplicatesAndValidates) {
  const fg::Graph g = fg::cycle(4);
  const std::vector<fg::NodeId> pick{2, 2, 1};
  const auto sub = fg::induced_subgraph(g, pick);
  EXPECT_EQ(sub.graph.num_nodes(), 2U);
  EXPECT_EQ(sub.graph.num_edges(), 1U);
  const std::vector<fg::NodeId> bad{9};
  EXPECT_THROW(static_cast<void>(fg::induced_subgraph(g, bad)), std::invalid_argument);
}

TEST(Subgraph, ComplementOfCliqueIsEmpty) {
  EXPECT_EQ(fg::complement(fg::clique(7)).num_edges(), 0U);
  EXPECT_EQ(fg::complement(fg::Graph(7)).num_edges(), 21U);
}

TEST(Subgraph, ComplementIsInvolutive) {
  const fg::Graph g = fg::gnp(40, 0.3, 9);
  EXPECT_EQ(fg::complement(fg::complement(g)).edges(), g.edges());
}

TEST(Subgraph, ComplementEdgeCountsSum) {
  const fg::Graph g = fg::gnp(30, 0.25, 11);
  const fg::Graph co = fg::complement(g);
  EXPECT_EQ(g.num_edges() + co.num_edges(), 30U * 29U / 2);
}

TEST(GraphIo, LoadGraphFileDispatchesOnExtension) {
  const fg::Graph g = fg::gnp(25, 0.2, 13);
  const std::string edge_path = ::testing::TempDir() + "/fhg_io_test.edges";
  const std::string dimacs_path = ::testing::TempDir() + "/fhg_io_test.col";
  {
    std::ofstream out(edge_path);
    fg::write_edge_list(out, g);
    std::ofstream dim(dimacs_path);
    fg::write_dimacs(dim, g, "round trip");
  }
  EXPECT_EQ(fg::load_graph_file(edge_path).edges(), g.edges());
  EXPECT_EQ(fg::load_graph_file(dimacs_path).edges(), g.edges());
  EXPECT_THROW(static_cast<void>(fg::load_graph_file("/nonexistent/nowhere.edges")),
               std::runtime_error);
}
