// Edge-case and boundary tests across the library: degenerate graphs
// (empty, singleton, no edges) through every scheduler, 64-bit boundaries in
// the coding layer, concatenated-stream decoding, and RNG extremes.

#include <gtest/gtest.h>

#include <limits>
#include <memory>

#include "fhg/coding/elias.hpp"
#include "fhg/coding/iterated_log.hpp"
#include "fhg/coding/prefix.hpp"
#include "fhg/coloring/dsatur.hpp"
#include "fhg/coloring/greedy.hpp"
#include "fhg/core/degree_bound.hpp"
#include "fhg/core/driver.hpp"
#include "fhg/core/fcfg.hpp"
#include "fhg/core/phased_greedy.hpp"
#include "fhg/core/prefix_code_scheduler.hpp"
#include "fhg/core/round_robin.hpp"
#include "fhg/core/weighted.hpp"
#include "fhg/distributed/degree_bound.hpp"
#include "fhg/distributed/johansson.hpp"
#include "fhg/graph/generators.hpp"
#include "fhg/matching/satisfaction.hpp"
#include "fhg/mis/exact.hpp"
#include "fhg/parallel/rng.hpp"

namespace fg = fhg::graph;
namespace fc = fhg::coloring;
namespace fco = fhg::core;
namespace fcd = fhg::coding;

// ------------------------------------------------- degenerate graphs -------

namespace {

std::vector<std::unique_ptr<fco::Scheduler>> all_schedulers(const fg::Graph& g) {
  std::vector<std::unique_ptr<fco::Scheduler>> result;
  const fc::Coloring greedy = fc::greedy_color(g, fc::Order::kLargestFirst);
  if (g.num_nodes() > 0) {
    result.push_back(std::make_unique<fco::RoundRobinColorScheduler>(g, greedy));
    result.push_back(std::make_unique<fco::PhasedGreedyScheduler>(g, greedy));
    result.push_back(std::make_unique<fco::PrefixCodeScheduler>(g, fc::dsatur_color(g)));
  }
  result.push_back(std::make_unique<fco::DegreeBoundScheduler>(g));
  result.push_back(std::make_unique<fco::FirstComeFirstGrabScheduler>(g, 3));
  result.push_back(std::make_unique<fco::WeightedPeriodicScheduler>(
      g, std::vector<std::uint64_t>(g.num_nodes(), 8)));
  return result;
}

}  // namespace

TEST(EdgeCases, EmptyGraphSchedulers) {
  const fg::Graph g(0);
  for (auto& scheduler : all_schedulers(g)) {
    for (int t = 0; t < 3; ++t) {
      EXPECT_TRUE(scheduler->next_holiday().empty()) << scheduler->name();
    }
  }
}

TEST(EdgeCases, SingletonGraphSchedulers) {
  // One parent, no in-laws: happy on a fixed cadence, never blocked.
  const fg::Graph g(1);
  for (auto& scheduler : all_schedulers(g)) {
    const auto report = fco::run_schedule(*scheduler, {.horizon = 32});
    EXPECT_TRUE(report.independence_ok) << scheduler->name();
    EXPECT_TRUE(report.bounds_respected) << scheduler->name();
    EXPECT_GT(report.appearances[0], 0U) << scheduler->name();
  }
}

TEST(EdgeCases, EdgelessGraphEveryoneIndependent) {
  const fg::Graph g(16);
  fco::DegreeBoundScheduler scheduler(g);
  // Degree 0 → period 1: all 16 parents happy every single holiday.
  for (int t = 0; t < 4; ++t) {
    EXPECT_EQ(scheduler.next_holiday().size(), 16U);
  }
}

TEST(EdgeCases, SingleEdgeAlternates) {
  const fg::Graph g = fg::path(2);
  fco::DegreeBoundScheduler scheduler(g);
  // Both parents have degree 1 → period 2, opposite residues.
  const auto h1 = scheduler.next_holiday();
  const auto h2 = scheduler.next_holiday();
  ASSERT_EQ(h1.size(), 1U);
  ASSERT_EQ(h2.size(), 1U);
  EXPECT_NE(h1[0], h2[0]);
  EXPECT_EQ(scheduler.next_holiday(), h1);
}

TEST(EdgeCases, DistributedAlgorithmsOnDegenerateGraphs) {
  EXPECT_EQ(fhg::distributed::johansson_color(fg::Graph(0), 1).coloring.num_nodes(), 0U);
  const auto single = fhg::distributed::johansson_color(fg::Graph(1), 1);
  EXPECT_EQ(single.coloring.color(0), 1U);
  const auto slots = fhg::distributed::distributed_degree_bound(fg::Graph(3), 1);
  for (const auto& slot : slots.slots) {
    EXPECT_EQ(slot.period(), 1U);
  }
}

TEST(EdgeCases, ExactMisOnDegenerateGraphs) {
  EXPECT_TRUE(fhg::mis::exact_mis(fg::Graph(0))->independent_set.empty());
  EXPECT_EQ(fhg::mis::exact_mis(fg::Graph(1))->independent_set.size(), 1U);
}

TEST(EdgeCases, SatisfactionOnSingleEdge) {
  const fg::Graph g = fg::path(2);
  EXPECT_EQ(fhg::matching::max_satisfaction_linear(g).value, 1U);
  EXPECT_EQ(fhg::matching::max_satisfaction_matching(g).value, 1U);
}

// --------------------------------------------------- coding boundaries -----

TEST(CodingBoundaries, LargeValueRoundTrips) {
  // Encode/decode large and boundary values under every family (skipping
  // unary, whose codewords would be astronomically long).
  const std::uint64_t probes[] = {
      1,       2,        3,         (1ULL << 31) - 1, 1ULL << 31,
      1ULL << 32,        (1ULL << 62) - 1,            1ULL << 62,
      std::numeric_limits<std::uint64_t>::max()};
  for (const fcd::CodeFamily family :
       {fcd::CodeFamily::kEliasGamma, fcd::CodeFamily::kEliasDelta,
        fcd::CodeFamily::kEliasOmega}) {
    for (const std::uint64_t x : probes) {
      const fcd::BitString w = fcd::encode(family, x);
      EXPECT_EQ(w.size(), fcd::code_length(family, x));
      std::size_t cursor = 0;
      const std::uint64_t decoded = fcd::decode(family, [&]() {
        const bool bit = cursor < w.size() && w.bit(cursor);
        ++cursor;
        return bit;
      });
      EXPECT_EQ(decoded, x) << fcd::code_family_name(family);
      EXPECT_EQ(cursor, w.size()) << "decoder must consume the exact codeword";
    }
  }
}

TEST(CodingBoundaries, ConcatenatedStreamDecodes) {
  // A realistic decoder use: several codewords back to back in one stream.
  const std::vector<std::uint64_t> values{9, 1, 100, 2, 65536, 7};
  for (const fcd::CodeFamily family :
       {fcd::CodeFamily::kEliasGamma, fcd::CodeFamily::kEliasDelta,
        fcd::CodeFamily::kEliasOmega}) {
    fcd::BitString stream;
    for (const std::uint64_t x : values) {
      stream.append(fcd::encode(family, x));
    }
    std::size_t cursor = 0;
    const auto source = [&]() {
      const bool bit = cursor < stream.size() && stream.bit(cursor);
      ++cursor;
      return bit;
    };
    for (const std::uint64_t x : values) {
      EXPECT_EQ(fcd::decode(family, source), x) << fcd::code_family_name(family);
    }
    EXPECT_EQ(cursor, stream.size());
  }
}

TEST(CodingBoundaries, RandomRoundTripFuzz) {
  fhg::parallel::Rng rng(2718);
  for (int i = 0; i < 2000; ++i) {
    const std::uint64_t x = rng() >> rng.uniform_below(63);  // varied magnitudes
    const std::uint64_t value = std::max<std::uint64_t>(1, x);
    for (const fcd::CodeFamily family :
         {fcd::CodeFamily::kEliasGamma, fcd::CodeFamily::kEliasDelta,
          fcd::CodeFamily::kEliasOmega}) {
      const fcd::BitString w = fcd::encode(family, value);
      std::size_t cursor = 0;
      const std::uint64_t decoded = fcd::decode(family, [&]() {
        const bool bit = cursor < w.size() && w.bit(cursor);
        ++cursor;
        return bit;
      });
      ASSERT_EQ(decoded, value) << fcd::code_family_name(family) << " value " << value;
    }
  }
}

TEST(CodingBoundaries, SixtyFourBitBitString) {
  const fcd::BitString ones(std::string(64, '1'));
  EXPECT_EQ(ones.to_uint_msb_first(), std::numeric_limits<std::uint64_t>::max());
  EXPECT_EQ(ones.to_uint_lsb_first(), std::numeric_limits<std::uint64_t>::max());
  const fcd::BitString too_long(std::string(65, '1'));
  EXPECT_THROW(static_cast<void>(too_long.to_uint_msb_first()), std::length_error);
}

TEST(CodingBoundaries, SlotAtSixtyFourBits) {
  // A 64-bit codeword still yields a working slot (mask path, no UB shift).
  fcd::BitString w(std::string(63, '0'));
  w.push_back(true);
  const fcd::ScheduleSlot slot = fcd::slot_of(w);
  EXPECT_EQ(slot.length, 64U);
  EXPECT_TRUE(slot.matches(slot.residue));
  EXPECT_FALSE(slot.matches(slot.residue + 1));
}

TEST(CodingBoundaries, LogStarAndPhiExtremes) {
  EXPECT_EQ(fcd::log_star(0.5), 0U);
  EXPECT_EQ(fcd::log_star(std::numeric_limits<double>::max()), 5U);
  EXPECT_DOUBLE_EQ(fcd::phi(0.0), 1.0);
  EXPECT_GT(fcd::phi(1e18), 1e18);  // phi(n) >= n
}

// ------------------------------------------------------- rng extremes ------

TEST(RngBoundaries, UniformBelowOneIsAlwaysZero) {
  fhg::parallel::Rng rng(1);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(rng.uniform_below(1), 0U);
  }
}

TEST(RngBoundaries, UniformBelowHugeBound) {
  fhg::parallel::Rng rng(2);
  const std::uint64_t bound = (std::uint64_t{1} << 63) + 12345;
  for (int i = 0; i < 100; ++i) {
    EXPECT_LT(rng.uniform_below(bound), bound);
  }
}

TEST(RngBoundaries, UniformIntFullRangeEndpoints) {
  fhg::parallel::Rng rng(3);
  bool saw_low = false;
  bool saw_high = false;
  for (int i = 0; i < 2000 && !(saw_low && saw_high); ++i) {
    const auto x = rng.uniform_int(-1, 1);
    saw_low = saw_low || x == -1;
    saw_high = saw_high || x == 1;
    EXPECT_GE(x, -1);
    EXPECT_LE(x, 1);
  }
  EXPECT_TRUE(saw_low);
  EXPECT_TRUE(saw_high);
}

TEST(RngBoundaries, EmptyAndSingletonShuffle) {
  fhg::parallel::Rng rng(4);
  std::vector<int> empty;
  rng.shuffle(empty);
  EXPECT_TRUE(empty.empty());
  std::vector<int> one{7};
  rng.shuffle(one);
  EXPECT_EQ(one, std::vector<int>{7});
  EXPECT_TRUE(rng.permutation(0).empty());
}

// --------------------------------------------- weighted scheduler edges ----

TEST(WeightedEdges, EmptyGraph) {
  const fg::Graph g(0);
  fco::WeightedPeriodicScheduler scheduler(g, std::vector<std::uint64_t>{});
  EXPECT_TRUE(scheduler.next_holiday().empty());
}

TEST(WeightedEdges, PeriodOneOnIsolatedNodes) {
  const fg::Graph g(4);
  fco::WeightedPeriodicScheduler scheduler(g, std::vector<std::uint64_t>(4, 1));
  for (int t = 0; t < 3; ++t) {
    EXPECT_EQ(scheduler.next_holiday().size(), 4U);
  }
}
