// Tests for fhg::analysis — statistics, fairness metrics and the table
// writer used by the bench harness.

#include <gtest/gtest.h>

#include <sstream>

#include "fhg/analysis/fairness.hpp"
#include "fhg/analysis/stats.hpp"
#include "fhg/analysis/table.hpp"
#include "fhg/graph/generators.hpp"

namespace fa = fhg::analysis;
namespace fg = fhg::graph;

// ---------------------------------------------------------------- stats ----

TEST(Stats, SummaryOfKnownSample) {
  const std::vector<double> values{1, 2, 3, 4, 5, 6, 7, 8, 9, 10};
  const fa::Summary s = fa::summarize(values);
  EXPECT_EQ(s.count, 10U);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 10.0);
  EXPECT_DOUBLE_EQ(s.mean, 5.5);
  EXPECT_DOUBLE_EQ(s.median, 5.5);
  EXPECT_NEAR(s.stddev, 2.8723, 1e-3);
}

TEST(Stats, EmptySampleIsZeros) {
  const fa::Summary s = fa::summarize(std::span<const double>{});
  EXPECT_EQ(s.count, 0U);
  EXPECT_DOUBLE_EQ(s.mean, 0.0);
}

TEST(Stats, IntegerOverload) {
  const std::vector<std::uint64_t> values{2, 4, 6};
  EXPECT_DOUBLE_EQ(fa::summarize(values).mean, 4.0);
}

TEST(Stats, QuantileInterpolates) {
  std::vector<double> values{0, 10};
  EXPECT_DOUBLE_EQ(fa::quantile(values, 0.5), 5.0);
  EXPECT_DOUBLE_EQ(fa::quantile(values, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(fa::quantile(values, 1.0), 10.0);
  EXPECT_THROW(static_cast<void>(fa::quantile({}, 0.5)), std::invalid_argument);
  EXPECT_THROW(static_cast<void>(fa::quantile({1.0}, 1.5)), std::invalid_argument);
}

TEST(Stats, GroupStatsAggregatesByKey) {
  const std::vector<std::uint64_t> keys{1, 2, 1, 2, 3};
  const std::vector<double> values{10, 20, 30, 40, 50};
  const auto rows = fa::group_stats(keys, values);
  ASSERT_EQ(rows.size(), 3U);
  EXPECT_EQ(rows[0].key, 1U);
  EXPECT_DOUBLE_EQ(rows[0].max, 30.0);
  EXPECT_DOUBLE_EQ(rows[0].mean, 20.0);
  EXPECT_EQ(rows[0].count, 2U);
  EXPECT_EQ(rows[2].key, 3U);
  EXPECT_EQ(rows[2].count, 1U);
}

// ------------------------------------------------------------- fairness ----

TEST(Fairness, PerfectProportionalityScoresOne) {
  // 4-regular graph, every node happy exactly horizon/(d+1) times.
  const fg::Graph g = fg::random_regular(20, 4, 3);
  const std::vector<std::uint64_t> appearances(20, 200);  // horizon 1000, 1/5 each
  EXPECT_NEAR(fa::jain_fairness(g, appearances, 1000), 1.0, 1e-12);
}

TEST(Fairness, LopsidedScheduleScoresLow) {
  const fg::Graph g = fg::random_regular(10, 2, 5);
  std::vector<std::uint64_t> appearances(10, 0);
  appearances[0] = 1000;  // one node hogs every holiday
  EXPECT_NEAR(fa::jain_fairness(g, appearances, 1000), 0.1, 1e-12);
}

TEST(Fairness, ThroughputRatioAgainstCaroWei) {
  // Everyone happy every holiday on an empty graph: ratio = n / n = 1.
  const fg::Graph g(8);
  const std::vector<std::uint64_t> appearances(8, 100);
  EXPECT_NEAR(fa::throughput_ratio(g, appearances, 100), 1.0, 1e-12);
}

TEST(Fairness, RejectsSizeMismatch) {
  const fg::Graph g(3);
  const std::vector<std::uint64_t> wrong(2, 1);
  EXPECT_THROW(static_cast<void>(fa::jain_fairness(g, wrong, 10)), std::invalid_argument);
  EXPECT_THROW(static_cast<void>(fa::throughput_ratio(g, wrong, 10)), std::invalid_argument);
}

// ---------------------------------------------------------------- table ----

TEST(Table, RendersAlignedMarkdown) {
  fa::Table t({"name", "value"});
  t.row().add("alpha").add(std::uint64_t{42});
  t.row().add("b").add(std::uint64_t{7});
  std::ostringstream out;
  t.print(out);
  const std::string rendered = out.str();
  EXPECT_NE(rendered.find("| name  | value |"), std::string::npos);
  EXPECT_NE(rendered.find("| alpha |    42 |"), std::string::npos);
  EXPECT_NE(rendered.find("| b     |     7 |"), std::string::npos);
}

TEST(Table, FormatsDoublesAndBools) {
  fa::Table t({"x", "ok"});
  t.row().add(3.14159, 2).add(true);
  t.row().add(2.0, 2).add(false);
  std::ostringstream out;
  t.print(out);
  EXPECT_NE(out.str().find("3.14"), std::string::npos);
  EXPECT_NE(out.str().find("Y"), std::string::npos);
  EXPECT_NE(out.str().find("N"), std::string::npos);
}

TEST(Table, RequiresRowBeforeAdd) {
  fa::Table t({"a"});
  EXPECT_THROW(t.add("x"), std::logic_error);
  EXPECT_THROW(fa::Table({}), std::invalid_argument);
}

TEST(Table, CountsRows) {
  fa::Table t({"a"});
  EXPECT_EQ(t.rows(), 0U);
  t.row().add("1");
  t.row().add("2");
  EXPECT_EQ(t.rows(), 2U);
}
