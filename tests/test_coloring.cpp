// Tests for fhg::coloring — validation, greedy orderings, DSATUR, bipartite
// and the paper-critical invariants (properness, col ≤ deg+1).

#include <gtest/gtest.h>

#include <tuple>

#include "fhg/coloring/coloring.hpp"
#include "fhg/coloring/dsatur.hpp"
#include "fhg/coloring/greedy.hpp"
#include "fhg/graph/generators.hpp"
#include "fhg/graph/properties.hpp"

namespace fg = fhg::graph;
namespace fc = fhg::coloring;

// ----------------------------------------------------------- Coloring ------

TEST(Coloring, StartsUncolored) {
  const fc::Coloring c(4);
  EXPECT_FALSE(c.complete());
  EXPECT_EQ(c.max_color(), 0U);
  EXPECT_EQ(c.distinct_colors(), 0U);
}

TEST(Coloring, ProperDetectsConflicts) {
  const fg::Graph g = fg::path(3);  // 0-1-2
  fc::Coloring ok(3);
  ok.set_color(0, 1);
  ok.set_color(1, 2);
  ok.set_color(2, 1);
  EXPECT_TRUE(ok.proper(g));
  fc::Coloring bad = ok;
  bad.set_color(2, 2);
  EXPECT_FALSE(bad.proper(g));
}

TEST(Coloring, PartialColoringCanBeProper) {
  const fg::Graph g = fg::path(3);
  fc::Coloring partial(3);
  partial.set_color(0, 1);
  EXPECT_TRUE(partial.proper(g));
  EXPECT_FALSE(partial.complete());
}

TEST(Coloring, DegreeBounded) {
  const fg::Graph g = fg::star(4);  // hub degree 3, leaves degree 1
  fc::Coloring c(4);
  c.set_color(0, 4);  // hub: deg+1 = 4, boundary ok
  c.set_color(1, 2);
  c.set_color(2, 2);
  c.set_color(3, 2);
  EXPECT_TRUE(c.degree_bounded(g));
  c.set_color(1, 3);  // leaf: deg+1 = 2 < 3
  EXPECT_FALSE(c.degree_bounded(g));
}

// ------------------------------------------------------------- greedy ------

using GreedyCase = std::tuple<fc::Order, int>;  // ordering, graph index

class GreedyColoringTest : public ::testing::TestWithParam<GreedyCase> {
 protected:
  static fg::Graph make_graph(int index) {
    switch (index) {
      case 0:
        return fg::gnp(200, 0.05, 11);
      case 1:
        return fg::barabasi_albert(300, 3, 7);
      case 2:
        return fg::clique(12);
      case 3:
        return fg::cycle(25);
      case 4:
        return fg::random_tree(150, 3);
      default:
        return fg::grid2d(10, 12);
    }
  }
};

TEST_P(GreedyColoringTest, ProperCompleteAndDegreeBounded) {
  const auto [order, graph_index] = GetParam();
  const fg::Graph g = make_graph(graph_index);
  const fc::Coloring coloring = fc::greedy_color(g, order, /*seed=*/5);
  EXPECT_TRUE(coloring.complete());
  EXPECT_TRUE(coloring.proper(g));
  // The §3/§4 requirement: every greedy order gives col(v) ≤ deg(v)+1.
  EXPECT_TRUE(coloring.degree_bounded(g));
}

INSTANTIATE_TEST_SUITE_P(
    OrderingsTimesGraphs, GreedyColoringTest,
    ::testing::Combine(::testing::Values(fc::Order::kIdentity, fc::Order::kRandom,
                                         fc::Order::kLargestFirst, fc::Order::kSmallestLast),
                       ::testing::Range(0, 6)));

TEST(Greedy, SmallestLastRespectsDegeneracy) {
  // Coloring along reverse degeneracy order uses ≤ degeneracy+1 colors.
  const fg::Graph g = fg::barabasi_albert(400, 3, 13);
  const auto degeneracy = fg::degeneracy_order(g).degeneracy;
  const fc::Coloring coloring = fc::greedy_color(g, fc::Order::kSmallestLast);
  EXPECT_LE(coloring.max_color(), degeneracy + 1);
}

TEST(Greedy, CliqueUsesExactlyNColors) {
  const fg::Graph g = fg::clique(9);
  const fc::Coloring coloring = fc::greedy_color(g, fc::Order::kIdentity);
  EXPECT_EQ(coloring.max_color(), 9U);
}

TEST(Greedy, SmallestFreeColorAboveFloor) {
  const fg::Graph g = fg::star(4);
  fc::Coloring c(4);
  c.set_color(1, 6);
  c.set_color(2, 7);
  c.set_color(3, 9);
  // Hub: smallest color > 5 avoiding {6,7,9} is 8.
  EXPECT_EQ(fc::smallest_free_color_above(g, c, 0, 5), 8U);
  // And > 9 is 10.
  EXPECT_EQ(fc::smallest_free_color_above(g, c, 0, 9), 10U);
}

TEST(Greedy, OrderMustBePermutation) {
  const fg::Graph g = fg::path(4);
  const std::vector<fg::NodeId> short_order{0, 1};
  EXPECT_THROW(static_cast<void>(fc::greedy_color(g, short_order)), std::invalid_argument);
}

// ------------------------------------------------------------ bipartite ----

TEST(BipartiteColor, TwoColorsOnBipartite) {
  const fg::Graph g = fg::complete_bipartite(5, 7);
  const auto coloring = fc::bipartite_color(g);
  ASSERT_TRUE(coloring.has_value());
  EXPECT_TRUE(coloring->proper(g));
  EXPECT_LE(coloring->max_color(), 2U);
}

TEST(BipartiteColor, FailsOnOddCycle) {
  EXPECT_FALSE(fc::bipartite_color(fg::cycle(7)).has_value());
}

// --------------------------------------------------------------- DSATUR ----

TEST(Dsatur, ProperOnRandomGraphs) {
  for (std::uint64_t seed = 0; seed < 4; ++seed) {
    const fg::Graph g = fg::gnp(150, 0.08, seed);
    const fc::Coloring coloring = fc::dsatur_color(g);
    EXPECT_TRUE(coloring.complete());
    EXPECT_TRUE(coloring.proper(g));
  }
}

TEST(Dsatur, OptimalOnBipartite) {
  const fg::Graph g = fg::random_bipartite(40, 40, 0.3, 17);
  const fc::Coloring coloring = fc::dsatur_color(g);
  EXPECT_TRUE(coloring.proper(g));
  EXPECT_LE(coloring.max_color(), 2U);  // DSATUR is exact on bipartite graphs
}

TEST(Dsatur, ExactOnClique) {
  const fc::Coloring coloring = fc::dsatur_color(fg::clique(8));
  EXPECT_EQ(coloring.max_color(), 8U);
}

TEST(Dsatur, NoWorseThanLargestFirstOnSparse) {
  const fg::Graph g = fg::gnp(300, 0.03, 23);
  const auto dsatur = fc::dsatur_color(g).max_color();
  const auto greedy = fc::greedy_color(g, fc::Order::kIdentity).max_color();
  EXPECT_LE(dsatur, greedy + 1);  // typically strictly smaller
}

// ------------------------------------------------------------ sequential ---

TEST(SequentialColor, MatchesPaperTrivialExample) {
  const fg::Graph g = fg::gnp(50, 0.2, 29);
  const fc::Coloring coloring = fc::sequential_color(g);
  EXPECT_TRUE(coloring.proper(g));       // all colors distinct
  EXPECT_EQ(coloring.max_color(), 50U);  // and therefore global: |P| colors
  EXPECT_EQ(coloring.distinct_colors(), 50U);
}
