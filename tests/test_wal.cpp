// Tests for fhg::wal — the write-ahead mutation log and its crash recovery.
//
// The contract under test: every committed ApplyMutations batch is durable
// before it is visible, and `Manager::recover()` brings a fresh engine to a
// state *byte-identical* (canonical snapshot comparison) to the engine that
// wrote the log — through compactions, torn tails truncated at every byte
// boundary of the final record, double-covered segments, and base snapshots
// of every supported version.  Corruption that cannot be a torn append
// (damage in a sealed segment, bad magic, alien versions) must fail typed,
// never crash or half-apply.

#include <gtest/gtest.h>

#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <limits>
#include <memory>
#include <span>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "fhg/api/socket.hpp"
#include "fhg/coding/bitio.hpp"
#include "fhg/coding/crc32.hpp"
#include "fhg/dynamic/mutation.hpp"
#include "fhg/engine/engine.hpp"
#include "fhg/engine/snapshot.hpp"
#include "fhg/engine/wal_sink.hpp"
#include "fhg/graph/generators.hpp"
#include "fhg/graph/graph.hpp"
#include "fhg/obs/registry.hpp"
#include "fhg/service/service.hpp"
#include "fhg/wal/wal.hpp"

namespace fa = fhg::api;
namespace fdy = fhg::dynamic;
namespace fe = fhg::engine;
namespace fg = fhg::graph;
namespace fs = fhg::service;
namespace fw = fhg::wal;

namespace {

namespace stdfs = std::filesystem;

/// A mkdtemp-owned scratch directory, removed on scope exit.
class TempDir {
 public:
  TempDir() {
    std::string tmpl = (stdfs::temp_directory_path() / "fhg-wal-XXXXXX").string();
    std::vector<char> buffer(tmpl.begin(), tmpl.end());
    buffer.push_back('\0');
    if (::mkdtemp(buffer.data()) == nullptr) {
      throw std::runtime_error("mkdtemp failed for " + tmpl);
    }
    path_ = buffer.data();
  }
  ~TempDir() {
    std::error_code ec;
    stdfs::remove_all(path_, ec);
  }
  TempDir(const TempDir&) = delete;
  TempDir& operator=(const TempDir&) = delete;

  [[nodiscard]] const std::string& path() const noexcept { return path_; }
  [[nodiscard]] std::string sub(const std::string& name) const {
    return (stdfs::path(path_) / name).string();
  }

 private:
  std::string path_;
};

fe::InstanceSpec dynamic_spec(std::uint32_t bulk_threshold = fe::kDefaultBulkThreshold) {
  fe::InstanceSpec spec;
  spec.kind = fe::SchedulerKind::kDynamicPrefixCode;
  spec.bulk_threshold = bulk_threshold;
  return spec;
}

std::unique_ptr<fe::Engine> make_engine() {
  return std::make_unique<fe::Engine>(fe::EngineOptions{.shards = 4, .threads = 2});
}

/// The canonical state fingerprint both sides of every recovery test compare.
std::vector<std::uint8_t> state_of(fe::Engine& engine) { return engine.snapshot(); }

/// Byte offsets where each complete WAL record *ends* inside a segment file
/// (so `ends.size()` is the record count and `ends.back()` the intact size).
std::vector<std::size_t> record_ends(const std::vector<std::uint8_t>& bytes) {
  constexpr std::size_t kHeader = 16;  // magic + version + generation
  constexpr std::size_t kFrame = 8;    // payload length + crc32
  std::vector<std::size_t> ends;
  std::size_t off = kHeader;
  while (off + kFrame <= bytes.size()) {
    const std::size_t length = (std::size_t{bytes[off]} << 24) |
                               (std::size_t{bytes[off + 1]} << 16) |
                               (std::size_t{bytes[off + 2]} << 8) | std::size_t{bytes[off + 3]};
    if (length == 0 || off + kFrame + length > bytes.size()) {
      break;
    }
    off += kFrame + length;
    ends.push_back(off);
  }
  return ends;
}

std::vector<std::uint8_t> read_bytes(const stdfs::path& path) {
  std::ifstream in(path, std::ios::binary);
  return {std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>()};
}

void write_bytes(const stdfs::path& path, std::span<const std::uint8_t> bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
}

/// Every `wal-*.log` in `dir`, sorted by name.
std::vector<stdfs::path> segment_paths(const std::string& dir) {
  std::vector<stdfs::path> segments;
  for (const auto& entry : stdfs::directory_iterator(dir)) {
    const std::string name = entry.path().filename().string();
    if (name.starts_with("wal-") && name.ends_with(".log")) {
      segments.push_back(entry.path());
    }
  }
  std::sort(segments.begin(), segments.end());
  return segments;
}

}  // namespace

// ------------------------------------------------------ record payload codec --

TEST(WalRecord, EncodeDecodeRoundTrip) {
  fw::DurableBatch batch;
  batch.instance = "tenant-42";
  batch.batch_index = 7;
  batch.holiday = 123456;
  batch.record = {.size = 3, .bulk = true};
  batch.commands = {
      fdy::MutationCommand{fdy::MutationOp::kInsertEdge, 100, 3, 9},
      fdy::MutationCommand{fdy::MutationOp::kEraseEdge, 100, 3, 9},
      fdy::MutationCommand{fdy::MutationOp::kAddNode, 250, 0, 0},
  };
  const std::vector<std::uint8_t> payload = fw::encode_batch(batch);
  EXPECT_EQ(fw::decode_batch(payload), batch);

  // Degenerate but legal: an in-place record with no commands.
  fw::DurableBatch empty;
  empty.instance = "t";
  empty.record = {.size = 0, .bulk = false};
  EXPECT_EQ(fw::decode_batch(fw::encode_batch(empty)), empty);
}

TEST(WalRecord, DecodeFailsTypedOnMalformedPayloads) {
  // Nothing at all: the reader runs out of bits.
  EXPECT_THROW((void)fw::decode_batch({}), std::exception);

  // A name length far beyond what the payload could hold: the plausibility
  // check must refuse before allocating.
  fhg::coding::BitWriter w;
  w.put_uint(std::uint64_t{1} << 40);
  const std::vector<std::uint8_t> huge_name = w.finish();
  EXPECT_THROW((void)fw::decode_batch(huge_name), std::runtime_error);

  // An op outside the enum.
  fhg::coding::BitWriter bad_op;
  bad_op.put_uint(1);                     // name length
  bad_op.put_bytes(std::vector<std::uint8_t>{'x'});
  bad_op.put_uint(0);                     // batch_index
  bad_op.put_uint(0);                     // holiday
  bad_op.put_bit(false);                  // bulk
  bad_op.put_uint(1);                     // command count
  bad_op.put_uint(9);                     // op 9: unknown
  bad_op.put_uint(0);
  bad_op.put_uint(0);
  bad_op.put_uint(0);
  EXPECT_THROW((void)fw::decode_batch(bad_op.finish()), std::runtime_error);
}

// -------------------------------------------------- durable-state round trip --

TEST(WalManager, RecoversStateByteIdenticalToTheWritingEngine) {
  TempDir dir;
  std::vector<std::uint8_t> reference;
  {
    auto engine = make_engine();
    // A mixed tenancy: two dynamic tenants (one with a low bulk threshold so
    // a batch takes the bulk path), one static — the WAL must carry all of
    // the dynamic history and none of the static tenants' (they have none).
    // The dynamic tenants start from empty topologies so every insert below
    // is guaranteed to apply (no-op commands are not logged — the WAL only
    // carries what changed the adapter).
    (void)engine->create_instance("alpha", fg::Graph(24), dynamic_spec());
    (void)engine->create_instance("bulky", fg::Graph(32), dynamic_spec(4));
    (void)engine->create_instance("static", fg::gnp(16, 0.2, 7),
                                  fe::InstanceSpec{});
    (void)engine->step_all(8);

    fw::Manager manager(*engine, {.dir = dir.path(), .shards = 2});
    const fw::RecoveryReport empty = manager.recover();
    EXPECT_FALSE(empty.snapshot_loaded);
    manager.compact();  // seal the built fleet: the base recovery point
    engine->attach_wal(&manager);

    (void)engine->apply_mutations("alpha", std::vector{fdy::insert_edge_command(0, 5)});
    (void)engine->apply_mutations("alpha", std::vector{fdy::erase_edge_command(0, 5),
                                                       fdy::add_node_command()});
    // Five commands >= threshold 4: the recorded path must be bulk, and
    // recovery must route the segment through bulk again.
    (void)engine->apply_mutations(
        "bulky", std::vector{fdy::insert_edge_command(1, 2), fdy::insert_edge_command(3, 4),
                             fdy::insert_edge_command(5, 6), fdy::insert_edge_command(7, 8),
                             fdy::insert_edge_command(9, 10)});
    (void)engine->apply_mutations("bulky", std::vector{fdy::erase_edge_command(1, 2)});

    const fe::WalSinkStats stats = manager.stats();
    EXPECT_EQ(stats.appends, 4u);
    EXPECT_GT(stats.wal_bytes, 0u);
    EXPECT_GT(stats.fsyncs, 0u);

    reference = state_of(*engine);
    engine->attach_wal(nullptr);
  }
  {
    auto engine = make_engine();
    fw::Manager manager(*engine, {.dir = dir.path(), .shards = 2});
    const fw::RecoveryReport report = manager.recover();
    EXPECT_TRUE(report.snapshot_loaded);
    EXPECT_EQ(report.replayed_batches, 4u);
    EXPECT_EQ(report.replayed_commands, 9u);
    EXPECT_EQ(report.torn_bytes, 0u);
    EXPECT_EQ(state_of(*engine), reference);

    // Recovery is itself repeatable: a second process crashing before its
    // first compaction replays the same log to the same bytes.
    auto again = make_engine();
    fw::Manager manager2(*again, {.dir = dir.path(), .shards = 2});
    (void)manager2.recover();
    EXPECT_EQ(state_of(*again), reference);
  }
}

TEST(WalManager, ShardCountMayChangeBetweenRuns) {
  // The instance→shard map is content-addressed (stable hash % shards), so a
  // restart with a different shard count must still see every record: replay
  // reads all segments regardless of which shard wrote them.
  TempDir dir;
  std::vector<std::uint8_t> reference;
  {
    auto engine = make_engine();
    (void)engine->create_instance("a", fg::Graph(12), dynamic_spec());
    (void)engine->create_instance("b", fg::Graph(12), dynamic_spec());
    fw::Manager manager(*engine, {.dir = dir.path(), .shards = 4});
    (void)manager.recover();
    manager.compact();
    engine->attach_wal(&manager);
    (void)engine->apply_mutations("a", std::vector{fdy::insert_edge_command(0, 1)});
    (void)engine->apply_mutations("b", std::vector{fdy::insert_edge_command(2, 3)});
    reference = state_of(*engine);
    engine->attach_wal(nullptr);
  }
  auto engine = make_engine();
  fw::Manager manager(*engine, {.dir = dir.path(), .shards = 1});
  const fw::RecoveryReport report = manager.recover();
  EXPECT_EQ(report.replayed_batches, 2u);
  EXPECT_EQ(state_of(*engine), reference);
}

// ------------------------------------------------------------- compaction ----

TEST(WalManager, CompactionBoundsTheLogAndPreservesState) {
  TempDir dir;
  std::vector<std::uint8_t> reference;
  {
    auto engine = make_engine();
    (void)engine->create_instance("dyn", fg::Graph(20), dynamic_spec());
    fw::Manager manager(*engine, {.dir = dir.path(), .shards = 1});
    (void)manager.recover();
    manager.compact();
    engine->attach_wal(&manager);

    (void)engine->apply_mutations("dyn", std::vector{fdy::insert_edge_command(0, 1)});
    (void)engine->apply_mutations("dyn", std::vector{fdy::insert_edge_command(2, 3)});
    manager.compact();  // folds both batches into the base snapshot
    EXPECT_TRUE(segment_paths(dir.path()).empty())
        << "compaction must delete superseded segments";
    (void)engine->apply_mutations("dyn", std::vector{fdy::insert_edge_command(4, 5)});
    EXPECT_EQ(segment_paths(dir.path()).size(), 1u);

    const fe::WalSinkStats stats = manager.stats();
    EXPECT_GE(stats.compactions, 2u);
    reference = state_of(*engine);
    engine->attach_wal(nullptr);
  }
  auto engine = make_engine();
  fw::Manager manager(*engine, {.dir = dir.path(), .shards = 1});
  const fw::RecoveryReport report = manager.recover();
  // Only the post-compaction batch replays; the first two live in the base.
  EXPECT_EQ(report.replayed_batches, 1u);
  EXPECT_EQ(report.skipped_batches, 0u);
  EXPECT_EQ(state_of(*engine), reference);
}

TEST(WalManager, ReplayIsIdempotentOverDoubleCoveredSegments) {
  // Compaction's race window (a record appended between rotation and
  // snapshot) leaves records both in the base snapshot and in a surviving
  // segment.  Simulate the worst case — an entire segment re-appearing after
  // compaction already covered it — and require recovery to skip every
  // batch by sequence number instead of applying it twice.
  TempDir dir;
  std::vector<std::uint8_t> reference;
  std::vector<std::uint8_t> segment_copy;
  stdfs::path segment;
  {
    auto engine = make_engine();
    (void)engine->create_instance("dyn", fg::Graph(20), dynamic_spec());
    fw::Manager manager(*engine, {.dir = dir.path(), .shards = 1});
    (void)manager.recover();
    manager.compact();
    engine->attach_wal(&manager);
    (void)engine->apply_mutations("dyn", std::vector{fdy::insert_edge_command(0, 1)});
    (void)engine->apply_mutations("dyn", std::vector{fdy::insert_edge_command(2, 3)});
    segment = segment_paths(dir.path()).at(0);
    segment_copy = read_bytes(segment);
    manager.compact();  // deletes the segment; the snapshot now covers it
    reference = state_of(*engine);
    engine->attach_wal(nullptr);
  }
  write_bytes(segment, segment_copy);  // the double-covered segment returns

  auto engine = make_engine();
  fw::Manager manager(*engine, {.dir = dir.path(), .shards = 1});
  const fw::RecoveryReport report = manager.recover();
  EXPECT_EQ(report.replayed_batches, 0u);
  EXPECT_EQ(report.skipped_batches, 2u);
  EXPECT_EQ(state_of(*engine), reference);
}

TEST(WalManager, InstanceLifecycleCompactsSynchronously) {
  TempDir dir;
  auto engine = make_engine();
  fw::Manager manager(*engine, {.dir = dir.path(), .shards = 1});
  (void)manager.recover();
  manager.compact();
  engine->attach_wal(&manager);
  const std::uint64_t before = manager.stats().compactions;

  (void)engine->create_instance("born", fg::Graph(10), dynamic_spec());
  EXPECT_EQ(manager.stats().compactions, before + 1)
      << "create must compact so no segment predates the tenant";
  (void)engine->apply_mutations("born", std::vector{fdy::insert_edge_command(0, 1)});
  ASSERT_TRUE(engine->erase_instance("born").ok());
  EXPECT_EQ(manager.stats().compactions, before + 2)
      << "erase must compact so no segment references a dead tenant";
  engine->attach_wal(nullptr);

  // The directory recovers to a tenancy without the erased instance and
  // without any stale record referencing it.
  auto fresh = make_engine();
  fw::Manager recoverer(*fresh, {.dir = dir.path(), .shards = 1});
  EXPECT_NO_THROW((void)recoverer.recover());
  EXPECT_EQ(fresh->find("born"), nullptr);
}

// ------------------------------------------------------- torn-tail property --

TEST(WalManager, TornTailTruncationIsExactAtEveryByteBoundary) {
  // Build a log of K batches, snapshotting the engine after each, then
  // truncate the (single) segment at *every* byte of its final record and
  // beyond: recovery must land exactly on the longest complete prefix —
  // never crash, never half-apply a batch.
  TempDir base;
  constexpr std::size_t kBatches = 4;
  std::vector<std::vector<std::uint8_t>> prefix_state;  // [k] = state after k batches
  std::vector<std::uint8_t> snapshot_bytes;
  std::vector<std::uint8_t> segment_bytes;
  std::string segment_name;
  {
    auto engine = make_engine();
    (void)engine->create_instance("dyn", fg::gnp(18, 0.2, 17), dynamic_spec());
    (void)engine->step_all(4);
    fw::Manager manager(*engine, {.dir = base.path(), .shards = 1});
    (void)manager.recover();
    manager.compact();
    engine->attach_wal(&manager);
    prefix_state.push_back(state_of(*engine));
    for (std::size_t k = 0; k < kBatches; ++k) {
      (void)engine->apply_mutations(
          "dyn", std::vector{fdy::insert_edge_command(static_cast<fg::NodeId>(2 * k),
                                                      static_cast<fg::NodeId>(2 * k + 1)),
                             fdy::add_node_command()});
      prefix_state.push_back(state_of(*engine));
    }
    engine->attach_wal(nullptr);
    const stdfs::path segment = segment_paths(base.path()).at(0);
    segment_name = segment.filename().string();
    segment_bytes = read_bytes(segment);
    snapshot_bytes = read_bytes(stdfs::path(base.path()) / "snapshot.fhg");
  }
  const std::vector<std::size_t> ends = record_ends(segment_bytes);
  ASSERT_EQ(ends.size(), kBatches);

  // Every cut from just after the penultimate record's end through one byte
  // short of the file: the final record is torn, the rest must replay.
  const std::size_t from = ends[kBatches - 2];
  for (std::size_t cut = from; cut < segment_bytes.size(); ++cut) {
    TempDir scratch;
    write_bytes(stdfs::path(scratch.path()) / "snapshot.fhg", snapshot_bytes);
    write_bytes(stdfs::path(scratch.path()) / segment_name,
                std::span<const std::uint8_t>(segment_bytes).first(cut));

    auto engine = make_engine();
    fw::Manager manager(*engine, {.dir = scratch.path(), .shards = 1});
    fw::RecoveryReport report;
    ASSERT_NO_THROW(report = manager.recover()) << "cut at byte " << cut;
    const std::size_t complete =
        static_cast<std::size_t>(std::count_if(ends.begin(), ends.end(),
                                               [cut](std::size_t end) { return end <= cut; }));
    EXPECT_EQ(report.replayed_batches, complete) << "cut at byte " << cut;
    const std::size_t good = complete == 0 ? 16 : ends[complete - 1];
    EXPECT_EQ(report.torn_bytes, cut - good) << "cut at byte " << cut;
    EXPECT_EQ(state_of(*engine), prefix_state[complete]) << "cut at byte " << cut;
  }

  // Control: the intact file replays everything.
  {
    TempDir scratch;
    write_bytes(stdfs::path(scratch.path()) / "snapshot.fhg", snapshot_bytes);
    write_bytes(stdfs::path(scratch.path()) / segment_name, segment_bytes);
    auto engine = make_engine();
    fw::Manager manager(*engine, {.dir = scratch.path(), .shards = 1});
    const fw::RecoveryReport report = manager.recover();
    EXPECT_EQ(report.replayed_batches, kBatches);
    EXPECT_EQ(report.torn_bytes, 0u);
    EXPECT_EQ(state_of(*engine), prefix_state[kBatches]);
  }
}

TEST(WalManager, RecoveryTruncatesTheTornTailOnDisk) {
  // After a recovery that found a torn tail, the file itself must be clean:
  // a *second* recovery (the next crash-restart cycle, when this segment is
  // no longer the newest) sees an intact segment, not lingering damage.
  TempDir dir;
  {
    auto engine = make_engine();
    (void)engine->create_instance("dyn", fg::gnp(14, 0.2, 19), dynamic_spec());
    fw::Manager manager(*engine, {.dir = dir.path(), .shards = 1});
    (void)manager.recover();
    manager.compact();
    engine->attach_wal(&manager);
    (void)engine->apply_mutations("dyn", std::vector{fdy::insert_edge_command(0, 1)});
    (void)engine->apply_mutations("dyn", std::vector{fdy::insert_edge_command(2, 3)});
    engine->attach_wal(nullptr);
  }
  const stdfs::path segment = segment_paths(dir.path()).at(0);
  std::vector<std::uint8_t> bytes = read_bytes(segment);
  const std::vector<std::size_t> ends = record_ends(bytes);
  ASSERT_EQ(ends.size(), 2u);
  bytes.resize(ends[0] + 3);  // tear 3 bytes into the second record
  write_bytes(segment, bytes);

  {
    auto engine = make_engine();
    fw::Manager manager(*engine, {.dir = dir.path(), .shards = 1});
    const fw::RecoveryReport report = manager.recover();
    EXPECT_EQ(report.replayed_batches, 1u);
    EXPECT_EQ(report.torn_bytes, 3u);
  }
  EXPECT_EQ(stdfs::file_size(segment), ends[0]) << "the torn bytes must be gone from disk";
  {
    auto engine = make_engine();
    fw::Manager manager(*engine, {.dir = dir.path(), .shards = 1});
    const fw::RecoveryReport report = manager.recover();
    EXPECT_EQ(report.replayed_batches, 1u);
    EXPECT_EQ(report.torn_bytes, 0u);
  }
}

// ----------------------------------------------------------- corruption ------

TEST(WalManager, DamageInASealedSegmentIsCorruptionNotATornTail) {
  // Two generations: gen-1 written by the first run, gen-2 by the second.
  // Damage inside gen-1 — which a torn append can never produce, because
  // gen-2's existence proves gen-1 was sealed — must refuse recovery typed.
  TempDir dir;
  {
    auto engine = make_engine();
    (void)engine->create_instance("dyn", fg::Graph(16), dynamic_spec());
    fw::Manager manager(*engine, {.dir = dir.path(), .shards = 1});
    (void)manager.recover();
    manager.compact();
    engine->attach_wal(&manager);
    (void)engine->apply_mutations("dyn", std::vector{fdy::insert_edge_command(0, 1)});
    engine->attach_wal(nullptr);
  }
  ASSERT_EQ(segment_paths(dir.path()).size(), 1u);
  const stdfs::path sealed = segment_paths(dir.path()).at(0);
  {
    auto engine = make_engine();
    fw::Manager manager(*engine, {.dir = dir.path(), .shards = 1});
    (void)manager.recover();
    engine->attach_wal(&manager);
    (void)engine->apply_mutations("dyn", std::vector{fdy::insert_edge_command(2, 3)});
    engine->attach_wal(nullptr);
  }
  ASSERT_EQ(segment_paths(dir.path()).size(), 2u);

  std::vector<std::uint8_t> bytes = read_bytes(sealed);
  bytes[bytes.size() - 1] ^= 0xFF;  // flip a payload byte: CRC mismatch
  write_bytes(sealed, bytes);

  auto engine = make_engine();
  fw::Manager manager(*engine, {.dir = dir.path(), .shards = 1});
  EXPECT_THROW((void)manager.recover(), std::runtime_error);
}

TEST(WalManager, StructurallyImpossibleSegmentsAlwaysThrow) {
  const auto recover_with = [](const std::string& dir) {
    auto engine = make_engine();
    fw::Manager manager(*engine, {.dir = dir, .shards = 1});
    (void)manager.recover();
  };
  // A plausible record body so only the injected damage differs.
  fw::DurableBatch batch;
  batch.instance = "x";
  batch.record = {.size = 1, .bulk = false};
  batch.commands = {fdy::MutationCommand{fdy::MutationOp::kAddNode, 1, 0, 0}};
  const std::vector<std::uint8_t> payload = fw::encode_batch(batch);

  const auto valid_segment = [&](std::uint64_t generation) {
    std::vector<std::uint8_t> bytes = {'F', 'H', 'G', 'W', 0, 0, 0, 1};
    for (int shift = 56; shift >= 0; shift -= 8) {
      bytes.push_back(static_cast<std::uint8_t>(generation >> shift));
    }
    return bytes;
  };

  {  // wrong magic
    TempDir dir;
    std::vector<std::uint8_t> bytes = valid_segment(1);
    bytes[0] = 'X';
    write_bytes(stdfs::path(dir.path()) / "wal-0-1.log", bytes);
    EXPECT_THROW(recover_with(dir.path()), std::runtime_error);
  }
  {  // alien format version
    TempDir dir;
    std::vector<std::uint8_t> bytes = valid_segment(1);
    bytes[7] = 99;
    write_bytes(stdfs::path(dir.path()) / "wal-0-1.log", bytes);
    EXPECT_THROW(recover_with(dir.path()), std::runtime_error);
  }
  {  // filename generation disagrees with the header (a mis-renamed file)
    TempDir dir;
    write_bytes(stdfs::path(dir.path()) / "wal-0-2.log", valid_segment(1));
    EXPECT_THROW(recover_with(dir.path()), std::runtime_error);
  }
  {  // a record referencing an instance the base snapshot does not know
    TempDir dir;
    std::vector<std::uint8_t> bytes = valid_segment(1);
    bytes.push_back(static_cast<std::uint8_t>(payload.size() >> 24));
    bytes.push_back(static_cast<std::uint8_t>(payload.size() >> 16));
    bytes.push_back(static_cast<std::uint8_t>(payload.size() >> 8));
    bytes.push_back(static_cast<std::uint8_t>(payload.size()));
    const std::uint32_t crc = fhg::coding::crc32(payload);
    bytes.push_back(static_cast<std::uint8_t>(crc >> 24));
    bytes.push_back(static_cast<std::uint8_t>(crc >> 16));
    bytes.push_back(static_cast<std::uint8_t>(crc >> 8));
    bytes.push_back(static_cast<std::uint8_t>(crc));
    bytes.insert(bytes.end(), payload.begin(), payload.end());
    write_bytes(stdfs::path(dir.path()) / "wal-0-1.log", bytes);
    EXPECT_THROW(recover_with(dir.path()), std::runtime_error);
  }
}

// --------------------------------------------- snapshot cross-version matrix --

TEST(WalManager, EverySnapshotVersionRestoresIntoAWalEnabledEngine) {
  // v1 cannot carry dynamic tenants and v2 cannot carry bulk batches, so
  // each version gets the richest tenancy it supports; after restoring into
  // a WAL-enabled engine the durability cycle (mutate → crash → recover)
  // must work identically for all three.
  for (const std::uint64_t version :
       {fe::kSnapshotVersionV1, fe::kSnapshotVersionV2, fe::kSnapshotVersionLatest}) {
    SCOPED_TRACE("snapshot v" + std::to_string(version));
    auto source = make_engine();
    (void)source->create_instance("stat", fg::gnp(12, 0.2, 29), fe::InstanceSpec{});
    if (version >= fe::kSnapshotVersionV2) {
      (void)source->create_instance("dyn", fg::gnp(16, 0.2, 31), dynamic_spec());
      (void)source->apply_mutations("dyn", std::vector{fdy::insert_edge_command(0, 1)});
    }
    if (version >= fe::kSnapshotVersionLatest) {
      auto spec = dynamic_spec(2);
      (void)source->create_instance("bulk", fg::gnp(16, 0.2, 37), spec);
      (void)source->apply_mutations("bulk",
                                    std::vector{fdy::insert_edge_command(2, 3),
                                                fdy::insert_edge_command(4, 5)});
    }
    (void)source->step_all(4);
    const std::vector<std::uint8_t> versioned =
        fe::snapshot_registry(source->registry(), version);

    TempDir dir;
    std::vector<std::uint8_t> reference;
    {
      auto engine = make_engine();
      engine->load_snapshot(versioned);
      fw::Manager manager(*engine, {.dir = dir.path(), .shards = 2});
      (void)manager.recover();
      manager.compact();
      engine->attach_wal(&manager);
      // v1 tenancies have no dynamic tenant yet: create one through the
      // WAL-attached engine (exercising the lifecycle compaction) so every
      // version ends up with a mutable tenant to drive.
      if (version < fe::kSnapshotVersionV2) {
        (void)engine->create_instance("dyn", fg::gnp(16, 0.2, 31), dynamic_spec());
      }
      (void)engine->apply_mutations("dyn", std::vector{fdy::insert_edge_command(6, 7),
                                                       fdy::add_node_command()});
      reference = state_of(*engine);
      engine->attach_wal(nullptr);
    }
    auto recovered = make_engine();
    fw::Manager manager(*recovered, {.dir = dir.path(), .shards = 2});
    const fw::RecoveryReport report = manager.recover();
    EXPECT_EQ(report.replayed_batches, 1u);
    EXPECT_EQ(state_of(*recovered), reference);
  }
}

// -------------------------------------------------------- durability contract --

namespace {

/// A sink that refuses every commit — the disk-full stand-in.
class RefusingSink final : public fe::WalSink {
 public:
  void on_commit(const fe::WalCommit&) override {
    throw std::runtime_error("wal: injected append failure");
  }
  void on_lifecycle() override {}
  [[nodiscard]] fe::WalSinkStats stats() const override { return {}; }
};

}  // namespace

TEST(WalSinkContract, FailedAppendKeepsTheBatchInvisible) {
  auto engine = make_engine();
  (void)engine->create_instance("dyn", fg::Graph(12), dynamic_spec());
  const auto before = engine->apply_mutations("dyn", std::vector{fdy::insert_edge_command(0, 1)});

  RefusingSink sink;
  engine->attach_wal(&sink);
  EXPECT_THROW((void)engine->apply_mutations("dyn", std::vector{fdy::insert_edge_command(2, 3)}),
               std::runtime_error);
  engine->attach_wal(nullptr);

  // Durable-before-visible: the failed batch must not have republished the
  // period table — queries still answer from the pre-batch version.  Each
  // republish bumps the version by one, so exactly one bump across the
  // failed and the follow-up batch proves the failed one stayed invisible.
  const auto after = engine->apply_mutations("dyn", std::vector{fdy::insert_edge_command(4, 5)});
  EXPECT_EQ(after.table_version, before.table_version + 1);
}

// ---------------------------------------------------- concurrency (TSan leg) --

TEST(WalManager, ConcurrentAppendsFromManyInstancesRecoverExactly) {
  TempDir dir;
  constexpr std::size_t kInstances = 6;
  constexpr std::size_t kBatchesPerInstance = 12;
  std::vector<std::uint8_t> reference;
  {
    auto engine = make_engine();
    for (std::size_t i = 0; i < kInstances; ++i) {
      (void)engine->create_instance("worker-" + std::to_string(i), fg::gnp(16, 0.15, 43 + i),
                                    dynamic_spec());
    }
    fw::Manager manager(*engine, {.dir = dir.path(), .shards = 3, .fsync_every = 0});
    (void)manager.recover();
    manager.compact();
    engine->attach_wal(&manager);

    // One thread per instance hammering its own tenant (instance order is
    // serialized per tenant by the instance mutex; cross-tenant appends race
    // on the shard files), plus a compaction racing the storm.
    std::vector<std::thread> threads;
    threads.reserve(kInstances + 1);
    for (std::size_t i = 0; i < kInstances; ++i) {
      threads.emplace_back([&engine, i] {
        const std::string name = "worker-" + std::to_string(i);
        for (std::size_t b = 0; b < kBatchesPerInstance; ++b) {
          (void)engine->apply_mutations(
              name, std::vector{fdy::add_node_command(),
                                fdy::insert_edge_command(static_cast<fg::NodeId>(b),
                                                         static_cast<fg::NodeId>(b + 1))});
        }
      });
    }
    threads.emplace_back([&manager] { manager.compact(); });
    for (std::thread& thread : threads) {
      thread.join();
    }
    EXPECT_EQ(manager.stats().appends, kInstances * kBatchesPerInstance);
    reference = state_of(*engine);
    engine->attach_wal(nullptr);
  }
  auto engine = make_engine();
  fw::Manager manager(*engine, {.dir = dir.path(), .shards = 3});
  const fw::RecoveryReport report = manager.recover();
  // The racing compaction decides how much of the storm the base snapshot
  // absorbed (possibly all of it); whatever remains in segments must replay
  // or skip — and the recovered bytes must match regardless of where the
  // compaction landed.
  EXPECT_LE(report.replayed_batches + report.skipped_batches,
            kInstances * kBatchesPerInstance);
  EXPECT_EQ(state_of(*engine), reference);
}

TEST(WalManager, AutoCompactionKicksInUnderAppendPressure) {
  TempDir dir;
  auto engine = make_engine();
  (void)engine->create_instance("dyn", fg::gnp(20, 0.15, 53), dynamic_spec());
  fw::Manager manager(*engine, {.dir = dir.path(), .shards = 1, .compact_every = 4});
  (void)manager.recover();
  manager.compact();
  engine->attach_wal(&manager);
  const std::uint64_t before = manager.stats().compactions;
  for (std::size_t b = 0; b < 16; ++b) {
    (void)engine->apply_mutations("dyn", std::vector{fdy::add_node_command()});
  }
  // The compactor is asynchronous: wait (bounded) for it to have fired.
  for (int spin = 0; spin < 200 && manager.stats().compactions == before; ++spin) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_GT(manager.stats().compactions, before);
  engine->attach_wal(nullptr);
}

// ------------------------------------------------ per-port accept error scope --

TEST(SocketServer, AcceptErrorCountersAreScopedPerListenPort) {
  auto engine = make_engine();
  fs::Service service(*engine, {.shards = 1});
  fa::SocketServer first(service, {});
  fa::SocketServer second(service, {});
  ASSERT_NE(first.port(), second.port());

  const auto has_metric = [](const std::string& name) {
    for (const fhg::obs::MetricSample& sample : fhg::obs::Registry::global().snapshot()) {
      if (sample.name == name) {
        return true;
      }
    }
    return false;
  };
  EXPECT_TRUE(has_metric("fhg_socket_accept_errors_total{port=\"" +
                         std::to_string(first.port()) + "\"}"));
  EXPECT_TRUE(has_metric("fhg_socket_accept_errors_total{port=\"" +
                         std::to_string(second.port()) + "\"}"));
  EXPECT_FALSE(has_metric("fhg_socket_accept_errors_total"))
      << "the unlabeled global counter must be gone — errors are per-listener now";
}
