// The crash matrix: a real `fhg_serve` process, killed with SIGKILL at
// seeded points during a mutation storm over a 128k-node fleet, restarted
// from its WAL directory, and required to end the storm in a state
// byte-identical to an uninterrupted in-process run of the same stream.
//
// The driver resumes after each kill from `RecoverInfo.durable_batches`:
// a kill that lands while a batch is in flight leaves the driver unable to
// know whether the append became durable before the ack was lost, and the
// recovery handshake — not guesswork — resolves that ambiguity.  That makes
// this the end-to-end proof of the durable-before-visible contract across
// process boundaries; the byte-exact torn-tail and corruption properties
// live in test_wal.cpp where they can run in-process.

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <cstdint>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <memory>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "fhg/api/client.hpp"
#include "fhg/api/socket.hpp"
#include "fhg/dynamic/mutation.hpp"
#include "fhg/engine/engine.hpp"
#include "fhg/graph/graph.hpp"
#include "fhg/workload/scenario.hpp"

namespace fa = fhg::api;
namespace fdy = fhg::dynamic;
namespace fe = fhg::engine;
namespace fg = fhg::graph;
namespace fw = fhg::workload;

namespace {

namespace stdfs = std::filesystem;

// The storm: a 131072-node tenancy (128 dynamic tenants x 1024 nodes) hit
// with 512 mutation commands in 128 batches of 4.  `seed` and `horizon` ride
// in the spec string so the server (which would otherwise derive them from
// its own flags) builds the exact fleet the in-process reference builds.
constexpr const char* kSpec =
    "power-law:fleet=128,nodes=1024,aperiodic=0,dynamic=1,seed=7,horizon=8";
constexpr std::uint64_t kSteps = 8;
constexpr std::size_t kBatches = 128;
constexpr std::size_t kCommandsPerBatch = 4;

class TempDir {
 public:
  TempDir() {
    std::string tmpl = (stdfs::temp_directory_path() / "fhg-crash-XXXXXX").string();
    std::vector<char> buffer(tmpl.begin(), tmpl.end());
    buffer.push_back('\0');
    if (::mkdtemp(buffer.data()) == nullptr) {
      throw std::runtime_error("mkdtemp failed for " + tmpl);
    }
    path_ = buffer.data();
  }
  ~TempDir() {
    std::error_code ec;
    stdfs::remove_all(path_, ec);
  }
  TempDir(const TempDir&) = delete;
  TempDir& operator=(const TempDir&) = delete;

  [[nodiscard]] const std::string& path() const noexcept { return path_; }
  [[nodiscard]] std::string sub(const std::string& name) const {
    return (stdfs::path(path_) / name).string();
  }

 private:
  std::string path_;
};

/// One `fhg_serve serve` child process bound to ephemeral ports, publishing
/// them through a --port-file the harness polls.
class ServerProcess {
 public:
  ServerProcess(const std::string& wal_dir, const std::string& port_file) {
    std::error_code ec;
    stdfs::remove(port_file, ec);  // never read a previous run's ports
    pid_ = ::fork();
    if (pid_ < 0) {
      throw std::runtime_error("fork failed");
    }
    if (pid_ == 0) {
      // Quiet child: the harness talks to it over the protocol, not stdout.
      const int null_fd = ::open("/dev/null", O_WRONLY);
      if (null_fd >= 0) {
        ::dup2(null_fd, STDOUT_FILENO);
        ::close(null_fd);
      }
      ::execl(FHG_SERVE_PATH, FHG_SERVE_PATH, "serve", "--port", "0", "--port-file",
              port_file.c_str(), "--stats-port", "0", "--workload", kSpec, "--steps", "8",
              "--shards", "4", "--threads", "2", "--wal-dir", wal_dir.c_str(), "--wal-fsync",
              "1", static_cast<char*>(nullptr));
      ::_exit(127);  // exec failed
    }
    // The fleet build (fresh start) can take a while, recovery less so; the
    // deadline covers sanitizer builds of the 128k-node populate.
    const auto deadline = std::chrono::steady_clock::now() + std::chrono::minutes(3);
    while (std::chrono::steady_clock::now() < deadline) {
      std::ifstream in(port_file);
      if (in >> port_ && port_ != 0) {
        in >> stats_port_;
        return;
      }
      int status = 0;
      if (::waitpid(pid_, &status, WNOHANG) == pid_) {
        pid_ = -1;
        throw std::runtime_error("fhg_serve exited before binding");
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
    kill9();
    throw std::runtime_error("fhg_serve never published its port");
  }

  ~ServerProcess() {
    if (pid_ > 0) {
      kill9();
    }
  }
  ServerProcess(const ServerProcess&) = delete;
  ServerProcess& operator=(const ServerProcess&) = delete;

  [[nodiscard]] std::uint16_t port() const noexcept { return port_; }
  [[nodiscard]] std::uint16_t stats_port() const noexcept { return stats_port_; }

  /// The crash under test: no signal handler runs, no destructor flushes.
  void kill9() {
    if (pid_ > 0) {
      ::kill(pid_, SIGKILL);
      int status = 0;
      ::waitpid(pid_, &status, 0);
      pid_ = -1;
    }
  }

  /// Graceful shutdown (SIGTERM + reap) for the final, healthy server.
  void terminate() {
    if (pid_ > 0) {
      ::kill(pid_, SIGTERM);
      int status = 0;
      ::waitpid(pid_, &status, 0);
      pid_ = -1;
    }
  }

 private:
  pid_t pid_ = -1;
  std::uint16_t port_ = 0;
  std::uint16_t stats_port_ = 0;
};

/// Minimal HTTP GET for the server's /metrics exposition endpoint.
std::string http_get(std::uint16_t port, const std::string& path) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    throw std::runtime_error("socket failed");
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    throw std::runtime_error("connect to stats port failed");
  }
  const std::string request = "GET " + path + " HTTP/1.0\r\nHost: 127.0.0.1\r\n\r\n";
  if (::write(fd, request.data(), request.size()) < 0) {
    ::close(fd);
    throw std::runtime_error("stats request write failed");
  }
  std::string body;
  char buffer[4096];
  for (;;) {
    const ssize_t n = ::read(fd, buffer, sizeof(buffer));
    if (n <= 0) {
      break;
    }
    body.append(buffer, static_cast<std::size_t>(n));
  }
  ::close(fd);
  return body;
}

fw::ScenarioSpec storm_spec() {
  auto spec = fw::parse_scenario(kSpec);
  if (!spec) {
    throw std::runtime_error("bad storm spec");
  }
  return *spec;
}

/// The uninterrupted twin of the served fleet: same generator, same steps.
std::unique_ptr<fe::Engine> build_reference() {
  auto engine = std::make_unique<fe::Engine>(fe::EngineOptions{.shards = 4, .threads = 2});
  const fw::ScenarioGenerator generator(storm_spec());
  generator.populate(*engine);
  (void)engine->step_all(kSteps);
  return engine;
}

struct Tenant {
  std::string name;
  fg::NodeId nodes = 0;
};

/// The dynamic tenants of the fleet, in registry (sorted) order — the same
/// on the server and the reference because both built the same fleet.
std::vector<Tenant> dynamic_tenants(fe::Engine& engine) {
  std::vector<Tenant> tenants;
  for (const auto& instance : engine.registry().all_sorted()) {
    if (instance->spec().kind == fe::SchedulerKind::kDynamicPrefixCode) {
      tenants.push_back({instance->name(), instance->num_nodes()});
    }
  }
  return tenants;
}

/// The deterministic storm: batch `b` targets one tenant with
/// `kCommandsPerBatch` commands derived from a splitmix-style stream.  Both
/// the driver and the reference draw from this, so the streams are equal by
/// construction.
std::vector<fdy::MutationCommand> storm_batch(const std::vector<Tenant>& tenants,
                                              std::size_t batch, std::string& tenant_out) {
  std::uint64_t state = 0x9e3779b97f4a7c15ULL * (batch + 1);
  const auto next = [&state]() {
    state += 0x9e3779b97f4a7c15ULL;
    std::uint64_t z = state;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  };
  const Tenant& tenant = tenants[next() % tenants.size()];
  tenant_out = tenant.name;
  std::vector<fdy::MutationCommand> commands;
  commands.reserve(kCommandsPerBatch);
  // The engine logs only commands that change topology and counts only
  // batches that logged something; opening with add_node (always a change)
  // guarantees every sent batch advances `durable_batches` by exactly one,
  // which is what lets the driver equate its send count with the server's
  // durable count.
  commands.push_back(fdy::add_node_command());
  for (std::size_t c = 1; c < kCommandsPerBatch; ++c) {
    const std::uint64_t kind = next() % 8;
    if (kind == 0) {
      commands.push_back(fdy::add_node_command());
      continue;
    }
    // Endpoints only ever address the tenant's original nodes, so commands
    // stay valid no matter how many add_node commands preceded them.
    const auto u = static_cast<fg::NodeId>(next() % tenant.nodes);
    auto v = static_cast<fg::NodeId>(next() % (tenant.nodes - 1));
    if (v >= u) {
      ++v;  // distinct endpoints: self-loops are rejected by the adapter
    }
    commands.push_back(kind < 6 ? fdy::insert_edge_command(u, v)
                                : fdy::erase_edge_command(u, v));
  }
  return commands;
}

std::unique_ptr<fa::Client> connect(std::uint16_t port) {
  return std::make_unique<fa::Client>(
      std::make_unique<fa::SocketTransport>("127.0.0.1", port));
}

}  // namespace

TEST(CrashRecovery, KillNineMatrixRecoversToTheUninterruptedState) {
  // Seeded kill points: the server dies by SIGKILL while batch `k` is in
  // flight — early in the storm, mid-storm twice in a row (recovery of a
  // recovery), and late.
  const std::vector<std::size_t> kill_points = {9, 47, 53, 101};

  TempDir scratch;
  const std::string wal_dir = scratch.sub("wal");
  stdfs::create_directory(wal_dir);

  // The uninterrupted twin applies every batch exactly once, in order.
  auto reference = build_reference();
  const std::vector<Tenant> tenants = dynamic_tenants(*reference);
  ASSERT_EQ(tenants.size(), 128u) << "dynamic=1 must make the whole fleet dynamic";
  std::uint64_t total_nodes = 0;
  for (const Tenant& tenant : tenants) {
    total_nodes += tenant.nodes;
  }
  EXPECT_GE(total_nodes, 128u * 1024u) << "the storm must cover a 128k-node tenancy";
  for (std::size_t b = 0; b < kBatches; ++b) {
    std::string tenant;
    const std::vector<fdy::MutationCommand> commands = storm_batch(tenants, b, tenant);
    (void)reference->apply_mutations(tenant, commands);
  }
  const std::vector<std::uint8_t> expected = reference->snapshot();

  std::size_t durable = 0;  // batches known applied on the serving side
  std::uint64_t previous_port = 0;
  for (std::size_t round = 0; round <= kill_points.size(); ++round) {
    ServerProcess server(wal_dir, scratch.sub("ports." + std::to_string(round)));
    auto client = connect(server.port());

    // The recovery handshake: the server tells the driver where the durable
    // prefix of the stream ends, resolving any batch whose ack the previous
    // kill swallowed.
    const auto info = client->recover_info();
    ASSERT_TRUE(info.ok()) << info.status.detail;
    ASSERT_TRUE(info.value.wal_enabled);
    ASSERT_GE(info.value.durable_batches, durable)
        << "recovery lost batches the driver saw acked";
    ASSERT_LE(info.value.durable_batches, durable + 1)
        << "recovery invented batches the driver never sent";
    durable = info.value.durable_batches;

    if (round < kill_points.size()) {
      const std::size_t kill_at = kill_points[round];
      ASSERT_LT(durable, kill_at) << "kill points must be increasing";
      while (durable < kill_at) {
        std::string tenant;
        const auto commands = storm_batch(tenants, durable, tenant);
        const auto ack = client->apply_mutations(tenant, commands);
        ASSERT_TRUE(ack.ok()) << "batch " << durable << ": " << ack.status.detail;
        ++durable;
      }
      // The ambiguous kill: SIGKILL races the in-flight batch `kill_at`.
      // Whether its append became durable is exactly what the next round's
      // handshake must answer.
      std::thread killer([&server] {
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
        server.kill9();
      });
      std::string tenant;
      const auto commands = storm_batch(tenants, durable, tenant);
      (void)client->apply_mutations(tenant, commands);  // outcome unknowable
      killer.join();
      previous_port = server.port();
      continue;
    }

    // Final round: no more kills.  Finish the storm and compare states.
    ASSERT_NE(previous_port, 0u);
    EXPECT_NE(server.port(), previous_port)
        << "ephemeral rebinding should move the port across restarts (flaky "
           "only if the kernel handed the same port back)";
    while (durable < kBatches) {
      std::string tenant;
      const auto commands = storm_batch(tenants, durable, tenant);
      const auto ack = client->apply_mutations(tenant, commands);
      ASSERT_TRUE(ack.ok()) << "batch " << durable << ": " << ack.status.detail;
      ++durable;
    }
    const auto recovered = client->snapshot();
    ASSERT_TRUE(recovered.ok()) << recovered.status.detail;
    EXPECT_EQ(recovered.value, expected)
        << "recovered state diverged from the uninterrupted run";

    // Satellite: accept errors are attributed per listener.  The final
    // server's /metrics must carry the counter labeled with *its* bound
    // port — not the dead predecessor's, and not an unlabeled global.
    const std::string metrics = http_get(server.stats_port(), "/metrics");
    EXPECT_NE(metrics.find("fhg_socket_accept_errors_total{port=\"" +
                           std::to_string(server.port()) + "\"}"),
              std::string::npos)
        << "per-port accept-error counter missing from /metrics";
    EXPECT_EQ(metrics.find("fhg_socket_accept_errors_total{port=\"" +
                           std::to_string(previous_port) + "\"}"),
              std::string::npos)
        << "a fresh process must not resurrect the killed listener's counter";

    const auto final_info = client->recover_info();
    ASSERT_TRUE(final_info.ok());
    EXPECT_EQ(final_info.value.durable_batches, kBatches);
    EXPECT_GT(final_info.value.replayed_batches, 0u)
        << "at least one restart must have replayed WAL records";
    client.reset();
    server.terminate();
  }
}
