// Tests for fhg::workload (deterministic scenario expansion) and the batched
// lock-free query pipeline it feeds: same seed ⇒ byte-identical scenarios,
// and query_batch / next_gathering_batch agree with the per-query paths
// across every scenario family.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "fhg/engine/engine.hpp"
#include "fhg/engine/query_batch.hpp"
#include "fhg/graph/generators.hpp"
#include "fhg/workload/scenario.hpp"

namespace fg = fhg::graph;
namespace fe = fhg::engine;
namespace fw = fhg::workload;

namespace {

fw::ScenarioSpec small_spec(fw::GraphFamily family, std::uint64_t seed = 7) {
  fw::ScenarioSpec spec;
  spec.family = family;
  spec.fleet = 24;
  spec.nodes = 16;
  spec.seed = seed;
  spec.horizon = 128;
  return spec;
}

}  // namespace

// ---------------------------------------------------------- families -------

TEST(Workload, FamilyNamesRoundTrip) {
  for (const fw::GraphFamily family : fw::all_graph_families()) {
    const std::string name = fw::graph_family_name(family);
    const auto parsed = fw::parse_graph_family(name);
    ASSERT_TRUE(parsed.has_value()) << name;
    EXPECT_EQ(*parsed, family);
  }
  EXPECT_FALSE(fw::parse_graph_family("no-such-family").has_value());
}

TEST(Workload, ScenarioStringRoundTrip) {
  fw::ScenarioSpec spec = small_spec(fw::GraphFamily::kRandomGeometric, 42);
  spec.churn = 0.125;
  spec.aperiodic = 0.25;
  spec.mix.next_gathering = 0.5;
  const auto parsed = fw::parse_scenario(fw::scenario_name(spec));
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(*parsed, spec);
}

TEST(Workload, ParseScenarioRejectsMalformedInput) {
  EXPECT_FALSE(fw::parse_scenario("not-a-family:fleet=3").has_value());
  EXPECT_FALSE(fw::parse_scenario("ring:fleet").has_value());
  EXPECT_FALSE(fw::parse_scenario("ring:bogus=3").has_value());
  EXPECT_FALSE(fw::parse_scenario("ring:fleet=abc").has_value());
  const auto defaults = fw::parse_scenario("grid");
  ASSERT_TRUE(defaults.has_value());
  EXPECT_EQ(defaults->family, fw::GraphFamily::kGrid);
}

// ------------------------------------------------------- determinism -------

TEST(Workload, SameSeedGivesByteIdenticalScenario) {
  for (const fw::GraphFamily family : fw::all_graph_families()) {
    const fw::ScenarioGenerator a(small_spec(family));
    const fw::ScenarioGenerator b(small_spec(family));
    EXPECT_EQ(a.fingerprint(), b.fingerprint()) << fw::graph_family_name(family);
  }
}

TEST(Workload, DifferentSeedGivesDifferentScenario) {
  // Ring and grid topologies are seed-independent, but scheduler recipes are
  // seeded, so the fingerprint must still diverge.
  for (const fw::GraphFamily family : fw::all_graph_families()) {
    const fw::ScenarioGenerator a(small_spec(family, 7));
    const fw::ScenarioGenerator b(small_spec(family, 8));
    EXPECT_NE(a.fingerprint(), b.fingerprint()) << fw::graph_family_name(family);
  }
}

TEST(Workload, ProbeRoundsAreDeterministicAndMixed) {
  const fw::ScenarioGenerator gen(small_spec(fw::GraphFamily::kPowerLaw));
  fe::Engine eng;
  gen.populate(eng);
  const auto snapshot = eng.query_snapshot();
  const fw::ProbeRound r1 = gen.probes(*snapshot, 1000, /*round=*/3);
  const fw::ProbeRound r2 = gen.probes(*snapshot, 1000, /*round=*/3);
  EXPECT_EQ(r1.membership, r2.membership);
  EXPECT_EQ(r1.next_gathering, r2.next_gathering);
  EXPECT_EQ(r1.membership.size() + r1.next_gathering.size(), 1000U);
  EXPECT_EQ(r1.next_gathering.size(), 125U);  // default mix: 0.125
  const fw::ProbeRound other = gen.probes(*snapshot, 1000, /*round=*/4);
  EXPECT_NE(r1.membership, other.membership);
}

TEST(Workload, ChurnRoundIsDeterministic) {
  fw::ScenarioSpec spec = small_spec(fw::GraphFamily::kGnp);
  spec.churn = 0.25;
  const fw::ScenarioGenerator gen(spec);
  fe::Engine a;
  fe::Engine b;
  gen.populate(a);
  gen.populate(b);
  std::vector<std::uint64_t> gen_a(spec.fleet, 0);
  std::vector<std::uint64_t> gen_b(spec.fleet, 0);
  for (std::uint64_t round = 0; round < 3; ++round) {
    const std::size_t replaced_a = gen.churn_round(a, round, gen_a);
    const std::size_t replaced_b = gen.churn_round(b, round, gen_b);
    EXPECT_EQ(replaced_a, replaced_b);
    EXPECT_GT(replaced_a, 0U);
  }
  EXPECT_EQ(gen_a, gen_b);
  EXPECT_EQ(a.num_instances(), spec.fleet);
  EXPECT_EQ(a.snapshot(), b.snapshot());  // byte-identical engines after churn
}

// ------------------------------------------- batch vs per-query stress -----

TEST(Workload, QueryBatchAgreesWithPerQueryAcrossAllFamilies) {
  for (const fw::GraphFamily family : fw::all_graph_families()) {
    fw::ScenarioSpec spec = small_spec(family);
    spec.aperiodic = 0.3;  // force both the table and the replay path
    const fw::ScenarioGenerator gen(spec);
    fe::Engine eng;
    gen.populate(eng);
    (void)eng.step_all(64);
    const auto snapshot = eng.query_snapshot();
    const fw::ProbeRound round = gen.probes(*snapshot, 2000);

    const std::vector<std::uint8_t> members = eng.query_batch(round.membership);
    ASSERT_EQ(members.size(), round.membership.size());
    for (std::size_t i = 0; i < round.membership.size(); ++i) {
      const fe::Probe& probe = round.membership[i];
      const bool single =
          snapshot->instance(probe.instance)->is_happy(probe.node, probe.holiday);
      ASSERT_EQ(members[i] != 0, single)
          << fw::graph_family_name(family) << " probe " << i << " instance " << probe.instance
          << " node " << probe.node << " holiday " << probe.holiday;
    }

    const std::vector<std::uint64_t> nexts = eng.next_gathering_batch(round.next_gathering);
    ASSERT_EQ(nexts.size(), round.next_gathering.size());
    for (std::size_t i = 0; i < round.next_gathering.size(); ++i) {
      const fe::Probe& probe = round.next_gathering[i];
      const auto single =
          snapshot->instance(probe.instance)->next_gathering(probe.node, probe.holiday);
      ASSERT_EQ(nexts[i], single.value_or(fe::kNoGathering))
          << fw::graph_family_name(family) << " probe " << i;
    }
  }
}

TEST(Workload, QueryBatchMatchesEngineNamePath) {
  const fw::ScenarioGenerator gen(small_spec(fw::GraphFamily::kRing));
  fe::Engine eng;
  gen.populate(eng);
  const auto snapshot = eng.query_snapshot();
  const fw::ProbeRound round = gen.probes(*snapshot, 500);
  const std::vector<std::uint8_t> members = eng.query_batch(round.membership);
  for (std::size_t i = 0; i < round.membership.size(); ++i) {
    const fe::Probe& probe = round.membership[i];
    const std::string& name = snapshot->instance(probe.instance)->name();
    EXPECT_EQ(members[i] != 0, eng.is_happy(name, probe.node, probe.holiday));
  }
}

// --------------------------------------------------- snapshot semantics ----

TEST(QuerySnapshot, RebuildsOnlyWhenRegistryChanges) {
  fe::Engine eng;
  (void)eng.create_instance("a", fg::cycle(5), fe::InstanceSpec{});
  const auto first = eng.query_snapshot();
  const auto second = eng.query_snapshot();
  EXPECT_EQ(first.get(), second.get());  // warm path: same snapshot object

  (void)eng.create_instance("b", fg::cycle(7), fe::InstanceSpec{});
  const auto third = eng.query_snapshot();
  EXPECT_NE(second.get(), third.get());
  EXPECT_GT(third->epoch(), second->epoch());
  EXPECT_EQ(third->size(), 2U);
}

TEST(QuerySnapshot, OldSnapshotSurvivesErase) {
  fe::Engine eng;
  (void)eng.create_instance("victim", fg::cycle(5), fe::InstanceSpec{});
  const auto snapshot = eng.query_snapshot();
  const auto id = snapshot->id_of("victim");
  ASSERT_TRUE(id.has_value());
  ASSERT_TRUE(eng.erase_instance("victim").ok());
  // The old snapshot still answers: shared ownership keeps the instance (and
  // its interned period table) alive for in-flight batches.
  std::vector<fe::Probe> probes(4);
  for (std::uint32_t i = 0; i < probes.size(); ++i) {
    probes[i] = fe::Probe{.instance = *id, .node = static_cast<fg::NodeId>(i), .holiday = i + 1};
  }
  std::vector<std::uint8_t> out(probes.size());
  EXPECT_NO_THROW(snapshot->query_batch(probes, out));
  EXPECT_EQ(eng.query_snapshot()->size(), 0U);
}

TEST(QuerySnapshot, IdOfResolvesSortedNames) {
  fe::Engine eng;
  (void)eng.create_instance("zeta", fg::cycle(4), fe::InstanceSpec{});
  (void)eng.create_instance("alpha", fg::cycle(4), fe::InstanceSpec{});
  const auto snapshot = eng.query_snapshot();
  ASSERT_EQ(snapshot->size(), 2U);
  EXPECT_EQ(snapshot->id_of("alpha"), std::optional<std::uint32_t>(0U));
  EXPECT_EQ(snapshot->id_of("zeta"), std::optional<std::uint32_t>(1U));
  EXPECT_FALSE(snapshot->id_of("missing").has_value());
}

TEST(QuerySnapshot, RejectsOutOfRangeProbes) {
  fe::Engine eng;
  (void)eng.create_instance("only", fg::cycle(4), fe::InstanceSpec{});
  const auto snapshot = eng.query_snapshot();
  std::vector<std::uint8_t> out(1);
  const std::vector<fe::Probe> bad_instance{fe::Probe{.instance = 9, .node = 0, .holiday = 1}};
  EXPECT_THROW(snapshot->query_batch(bad_instance, out), std::out_of_range);
  const std::vector<fe::Probe> bad_node{fe::Probe{.instance = 0, .node = 99, .holiday = 1}};
  EXPECT_THROW(snapshot->query_batch(bad_node, out), std::out_of_range);
}

// ------------------------------------------------- shared period tables ----

TEST(PeriodTableIntern, IdenticalSchedulesShareOneTable) {
  fe::Engine eng;
  const fg::Graph g = fg::cycle(12);
  fe::InstanceSpec spec;
  spec.kind = fe::SchedulerKind::kDegreeBound;
  const auto a = eng.create_instance("a", g, spec);
  const auto b = eng.create_instance("b", g, spec);
  ASSERT_TRUE(a->periodic());
  ASSERT_TRUE(b->periodic());
  EXPECT_EQ(a->period_table_shared(), b->period_table_shared());  // same interned object

  fe::InstanceSpec other;
  other.kind = fe::SchedulerKind::kRoundRobin;
  const auto c = eng.create_instance("c", g, other);
  ASSERT_TRUE(c->periodic());
  EXPECT_NE(a->period_table_shared(), c->period_table_shared());
}

TEST(WorkloadGraph, RandomGeometricIsDeterministicAndSimple) {
  const fg::Graph a = fg::random_geometric(200, 0.12, 5);
  const fg::Graph b = fg::random_geometric(200, 0.12, 5);
  EXPECT_EQ(a.edges(), b.edges());
  const fg::Graph c = fg::random_geometric(200, 0.12, 6);
  EXPECT_NE(a.edges(), c.edges());
  // radius 0 ⇒ no edges; radius sqrt(2) ⇒ complete.
  EXPECT_EQ(fg::random_geometric(50, 0.0, 1).num_edges(), 0U);
  EXPECT_EQ(fg::random_geometric(20, 1.5, 1).num_edges(), 190U);
}

// ------------------------------------------------- mutation rounds (§6) ----

TEST(WorkloadMutation, ScenarioStringRoundTripsDynamicKeys) {
  fw::ScenarioSpec spec = small_spec(fw::GraphFamily::kPowerLaw, 5);
  spec.dynamic_share = 0.375;
  spec.mutation = 0.25;
  const auto parsed = fw::parse_scenario(fw::scenario_name(spec));
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(*parsed, spec);
  const auto explicit_keys = fw::parse_scenario("ring:dynamic=0.5,mutation=0.1");
  ASSERT_TRUE(explicit_keys.has_value());
  EXPECT_DOUBLE_EQ(explicit_keys->dynamic_share, 0.5);
  EXPECT_DOUBLE_EQ(explicit_keys->mutation, 0.1);
}

TEST(WorkloadMutation, DynamicShareProducesDynamicTenants) {
  fw::ScenarioSpec spec = small_spec(fw::GraphFamily::kPowerLaw);
  spec.fleet = 48;
  spec.dynamic_share = 0.5;
  const fw::ScenarioGenerator gen(spec);
  std::size_t dynamic_count = 0;
  for (std::size_t i = 0; i < spec.fleet; ++i) {
    dynamic_count += gen.tenant(i).spec.kind == fe::SchedulerKind::kDynamicPrefixCode ? 1 : 0;
  }
  EXPECT_GT(dynamic_count, 0U);
  EXPECT_LT(dynamic_count, spec.fleet);

  // dynamic=0 leaves the catalogue exactly as before — no accidental drift
  // in existing scenario expansions.
  fw::ScenarioSpec plain = spec;
  plain.dynamic_share = 0.0;
  const fw::ScenarioGenerator plain_gen(plain);
  for (std::size_t i = 0; i < spec.fleet; ++i) {
    EXPECT_NE(plain_gen.tenant(i).spec.kind, fe::SchedulerKind::kDynamicPrefixCode);
  }
}

TEST(WorkloadMutation, MutationCommandsArePureFunctions) {
  fw::ScenarioSpec spec = small_spec(fw::GraphFamily::kGrid, 11);
  spec.dynamic_share = 1.0;
  spec.mutation = 0.5;
  const fw::ScenarioGenerator a(spec);
  const fw::ScenarioGenerator b(spec);
  for (std::size_t slot = 0; slot < spec.fleet; ++slot) {
    for (std::uint64_t round = 0; round < 4; ++round) {
      EXPECT_EQ(a.mutation_commands(slot, round, 16), b.mutation_commands(slot, round, 16));
    }
  }
  // Different rounds decide differently (the streams are not frozen).
  bool diverged = false;
  for (std::size_t slot = 0; slot < spec.fleet && !diverged; ++slot) {
    diverged = a.mutation_commands(slot, 0, 16) != a.mutation_commands(slot, 1, 16);
  }
  EXPECT_TRUE(diverged);
}

TEST(WorkloadMutation, MutationRoundsAreDeterministicAcrossEngines) {
  fw::ScenarioSpec spec = small_spec(fw::GraphFamily::kPowerLaw, 19);
  spec.dynamic_share = 0.75;
  spec.mutation = 0.5;
  const fw::ScenarioGenerator gen(spec);
  fe::Engine a({.shards = 2, .threads = 2});
  fe::Engine b({.shards = 8, .threads = 1});
  gen.populate(a);
  gen.populate(b);
  (void)a.step_all(32);
  (void)b.step_all(32);
  for (std::uint64_t round = 0; round < 3; ++round) {
    const std::size_t applied_a = gen.mutation_round(a, round);
    const std::size_t applied_b = gen.mutation_round(b, round);
    EXPECT_EQ(applied_a, applied_b) << "round " << round;
    EXPECT_GT(applied_a, 0U) << "round " << round;
  }
  // Identical mutation histories ⇒ byte-identical snapshots, shard layout
  // and thread count notwithstanding.
  EXPECT_EQ(a.snapshot(), b.snapshot());
}

TEST(WorkloadMutation, MutationRoundSkipsNonDynamicFleets) {
  fw::ScenarioSpec spec = small_spec(fw::GraphFamily::kRing);
  spec.dynamic_share = 0.0;
  spec.mutation = 1.0;
  const fw::ScenarioGenerator gen(spec);
  fe::Engine eng;
  gen.populate(eng);
  EXPECT_EQ(gen.mutation_round(eng, 0), 0U);  // nothing dynamic to mutate
}

TEST(WorkloadMutation, InPlaceMutationPreservesTenantIdentity) {
  // The point of the mutation path vs churn: the tenant object (and its
  // stepped history) survives topology change.
  fw::ScenarioSpec spec = small_spec(fw::GraphFamily::kPowerLaw, 3);
  spec.dynamic_share = 1.0;
  spec.mutation = 1.0;
  const fw::ScenarioGenerator gen(spec);
  fe::Engine eng;
  gen.populate(eng);
  (void)eng.step_all(16);
  std::vector<std::shared_ptr<fe::Instance>> handles;
  for (std::size_t i = 0; i < spec.fleet; ++i) {
    handles.push_back(eng.find(gen.tenant_name(i)));
  }
  (void)gen.mutation_round(eng, 0);
  for (std::size_t i = 0; i < spec.fleet; ++i) {
    EXPECT_EQ(eng.find(gen.tenant_name(i)), handles[i]) << "slot " << i;
    EXPECT_EQ(handles[i]->current_holiday(), 16U) << "slot " << i;
  }
}
