// Brute-force oracle tests: on tiny instances, exhaustively enumerate the
// whole solution space and check the library's algorithms against it.
// These are the strongest correctness checks in the suite — nothing is
// assumed about the algorithms, only about the definitions.

#include <gtest/gtest.h>

#include <bit>

#include "fhg/core/degree_bound.hpp"
#include "fhg/core/gathering.hpp"
#include "fhg/graph/generators.hpp"
#include "fhg/graph/graph.hpp"
#include "fhg/graph/properties.hpp"
#include "fhg/matching/satisfaction.hpp"
#include "fhg/mis/exact.hpp"
#include "fhg/parallel/rng.hpp"

namespace fg = fhg::graph;
namespace fm = fhg::matching;

namespace {

/// Enumerates all 2^m orientations of a tiny graph and returns the maximum
/// number of satisfied parents — the ground truth for Appendix A.3.
std::size_t brute_force_max_satisfaction(const fg::Graph& g) {
  const auto edges = g.edges();
  const std::size_t m = edges.size();
  EXPECT_LE(m, 20U) << "brute force limited to 2^20 orientations";
  std::size_t best = 0;
  for (std::uint64_t mask = 0; mask < (std::uint64_t{1} << m); ++mask) {
    std::vector<bool> satisfied(g.num_nodes(), false);
    for (std::size_t k = 0; k < m; ++k) {
      const fg::NodeId host = ((mask >> k) & 1U) != 0 ? edges[k].second : edges[k].first;
      satisfied[host] = true;
    }
    std::size_t count = 0;
    for (const bool s : satisfied) {
      count += s ? 1 : 0;
    }
    best = std::max(best, count);
  }
  return best;
}

/// Enumerates all subsets of a tiny graph and returns the maximum
/// independent-set size — the ground truth for Appendix A.1.
std::size_t brute_force_mis(const fg::Graph& g) {
  const fg::NodeId n = g.num_nodes();
  EXPECT_LE(n, 20U);
  std::size_t best = 0;
  for (std::uint64_t mask = 0; mask < (std::uint64_t{1} << n); ++mask) {
    bool independent = true;
    for (const auto& e : g.edges()) {
      if (((mask >> e.first) & 1U) != 0 && ((mask >> e.second) & 1U) != 0) {
        independent = false;
        break;
      }
    }
    if (independent) {
      best = std::max<std::size_t>(best, static_cast<std::size_t>(std::popcount(mask)));
    }
  }
  return best;
}

/// Enumerates all orientations and returns the max number of *happy*
/// (all-children-home) parents — must equal the MIS size plus isolated
/// nodes handled implicitly (isolated nodes are always happy).
std::size_t brute_force_max_happiness(const fg::Graph& g) {
  const auto edges = g.edges();
  const std::size_t m = edges.size();
  EXPECT_LE(m, 18U);
  std::size_t best = 0;
  for (std::uint64_t mask = 0; mask < (std::uint64_t{1} << m); ++mask) {
    std::vector<std::uint32_t> incoming(g.num_nodes(), 0);
    for (std::size_t k = 0; k < m; ++k) {
      const fg::NodeId host = ((mask >> k) & 1U) != 0 ? edges[k].second : edges[k].first;
      ++incoming[host];
    }
    std::size_t count = 0;
    for (fg::NodeId v = 0; v < g.num_nodes(); ++v) {
      count += incoming[v] == g.degree(v) ? 1 : 0;  // sink: all edges inward
    }
    best = std::max(best, count);
  }
  return best;
}

fg::Graph tiny_random_graph(std::uint64_t seed) {
  fhg::parallel::Rng rng(seed, 0x6F7261);
  const auto n = static_cast<fg::NodeId>(4 + rng.uniform_below(5));  // 4..8 nodes
  fg::GraphBuilder builder(n);
  for (fg::NodeId u = 0; u < n; ++u) {
    for (fg::NodeId v = u + 1; v < n; ++v) {
      if (rng.bernoulli(0.4)) {
        builder.add_edge(u, v);
      }
    }
  }
  return std::move(builder).build();
}

}  // namespace

class OracleTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(OracleTest, SatisfactionMatchesBruteForce) {
  const fg::Graph g = tiny_random_graph(GetParam());
  if (g.num_edges() > 18) {
    GTEST_SKIP() << "instance too dense for the oracle";
  }
  const std::size_t truth = brute_force_max_satisfaction(g);
  EXPECT_EQ(fm::max_satisfaction_linear(g).value, truth);
  EXPECT_EQ(fm::max_satisfaction_matching(g).value, truth);
  EXPECT_EQ(fm::max_satisfaction_value(g), truth);
}

TEST_P(OracleTest, ExactMisMatchesBruteForce) {
  const fg::Graph g = tiny_random_graph(GetParam() + 100);
  const std::size_t truth = brute_force_mis(g);
  EXPECT_EQ(fhg::mis::exact_mis(g)->independent_set.size(), truth);
  const std::uint64_t all = (std::uint64_t{1} << g.num_nodes()) - 1;
  EXPECT_EQ(fhg::mis::exact_mis_size_small(g, all), truth);
}

TEST_P(OracleTest, MaxHappinessEqualsMisOverOrientations) {
  // Appendix A.1's observation, checked from first principles: the best
  // one-holiday happiness over *all orientations* equals the MIS size.
  const fg::Graph g = tiny_random_graph(GetParam() + 200);
  if (g.num_edges() > 18) {
    GTEST_SKIP() << "instance too dense for the oracle";
  }
  EXPECT_EQ(brute_force_max_happiness(g), brute_force_mis(g));
}

TEST_P(OracleTest, GatheringFromMisAchievesBruteForceOptimum) {
  // Constructive side: from_happy_set on an exact MIS realizes the optimum.
  const fg::Graph g = tiny_random_graph(GetParam() + 300);
  if (g.num_edges() > 18) {
    GTEST_SKIP() << "instance too dense for the oracle";
  }
  const auto mis = fhg::mis::exact_mis(g);
  const auto gathering = fhg::core::Gathering::from_happy_set(g, mis->independent_set);
  std::size_t happy = 0;
  for (fg::NodeId v = 0; v < g.num_nodes(); ++v) {
    happy += gathering.happy(v) ? 1 : 0;
  }
  EXPECT_GE(happy, mis->independent_set.size());
  EXPECT_EQ(brute_force_max_happiness(g), mis->independent_set.size());
}

TEST_P(OracleTest, DegreeBoundSlotsNeverCollideOverFullPeriodWindow) {
  // Exhaustive conflict check: simulate lcm of all periods and verify no
  // edge ever has both endpoints hosting — brute-forcing Lemma 5.1.
  const fg::Graph g = tiny_random_graph(GetParam() + 400);
  const auto slots =
      fhg::core::assign_degree_bound_slots(g, fhg::core::degree_bound_order(g));
  std::uint64_t window = 1;
  for (const auto& slot : slots) {
    window = std::max(window, slot.period());  // periods are powers of two:
  }                                            // max = lcm
  for (std::uint64_t t = 1; t <= 2 * window; ++t) {
    for (const auto& e : g.edges()) {
      EXPECT_FALSE(slots[e.first].matches(t) && slots[e.second].matches(t))
          << "edge {" << e.first << "," << e.second << "} collides at t=" << t;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, OracleTest, ::testing::Range<std::uint64_t>(0, 12));
