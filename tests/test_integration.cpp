// Integration tests — full pipelines across modules, mirroring how the
// examples and experiments consume the library:
//   Johansson (distributed) → prefix-code scheduler → audited run;
//   distributed degree-bound → scheduler → audited run;
//   cross-scheduler invariants on a shared workload;
//   schedule throughput accounting vs MIS.

#include <gtest/gtest.h>

#include <memory>

#include "fhg/analysis/fairness.hpp"
#include "fhg/coloring/dsatur.hpp"
#include "fhg/coloring/greedy.hpp"
#include "fhg/core/degree_bound.hpp"
#include "fhg/core/driver.hpp"
#include "fhg/core/fcfg.hpp"
#include "fhg/core/gathering.hpp"
#include "fhg/core/phased_greedy.hpp"
#include "fhg/core/prefix_code_scheduler.hpp"
#include "fhg/core/round_robin.hpp"
#include "fhg/distributed/degree_bound.hpp"
#include "fhg/distributed/johansson.hpp"
#include "fhg/graph/generators.hpp"
#include "fhg/graph/properties.hpp"
#include "fhg/mis/greedy.hpp"

namespace fg = fhg::graph;
namespace fc = fhg::coloring;
namespace fco = fhg::core;
namespace fd = fhg::distributed;
namespace fcd = fhg::coding;

TEST(Integration, DistributedColoringFeedsOmegaScheduler) {
  // The paper's full §4 pipeline: distributed (deg+1)-coloring, then the
  // lightweight omega-code schedule, audited end to end.
  const fg::Graph g = fg::barabasi_albert(400, 3, 97);
  const fd::ColoringRun colored = fd::johansson_color(g, /*seed=*/5);
  ASSERT_TRUE(colored.coloring.degree_bounded(g));

  fco::PrefixCodeScheduler scheduler(g, colored.coloring, fcd::CodeFamily::kEliasOmega);
  const auto report =
      fco::run_schedule(scheduler, {.horizon = 4096, .coloring = &scheduler.coloring()});
  EXPECT_TRUE(report.independence_ok);
  EXPECT_TRUE(report.one_color_ok);
  EXPECT_TRUE(report.bounds_respected);

  // Degree-local guarantee via col ≤ d+1: period ≤ 2^ρ(d+1).
  for (fg::NodeId v = 0; v < g.num_nodes(); ++v) {
    const std::uint64_t bound =
        std::uint64_t{1} << fcd::elias_omega_length(g.degree(v) + 1);
    EXPECT_LE(scheduler.period_of(v).value(), bound) << "node " << v;
  }
}

TEST(Integration, DistributedDegreeBoundFeedsScheduler) {
  const fg::Graph g = fg::gnp(300, 0.02, 101);
  fd::DegreeBoundRun run = fd::distributed_degree_bound(g, 13);
  fco::DegreeBoundScheduler scheduler(g, std::move(run.slots));
  const auto report = fco::run_schedule(scheduler, {.horizon = 1024});
  EXPECT_TRUE(report.independence_ok);
  EXPECT_TRUE(report.bounds_respected);
  for (fg::NodeId v = 0; v < g.num_nodes(); ++v) {
    if (report.appearances[v] >= 2) {
      EXPECT_EQ(report.detected_period[v], scheduler.period_of(v));
    }
  }
}

TEST(Integration, AllSchedulersProduceIndependentSetsOnSharedWorkload) {
  const fg::Graph g = fg::grid2d(12, 12);
  const fc::Coloring greedy = fc::greedy_color(g, fc::Order::kLargestFirst);
  const fc::Coloring dsatur = fc::dsatur_color(g);

  std::vector<std::unique_ptr<fco::Scheduler>> schedulers;
  schedulers.push_back(std::make_unique<fco::RoundRobinColorScheduler>(g, greedy));
  schedulers.push_back(std::make_unique<fco::PhasedGreedyScheduler>(g, greedy));
  schedulers.push_back(
      std::make_unique<fco::PrefixCodeScheduler>(g, dsatur, fcd::CodeFamily::kEliasOmega));
  schedulers.push_back(
      std::make_unique<fco::PrefixCodeScheduler>(g, dsatur, fcd::CodeFamily::kEliasGamma));
  schedulers.push_back(std::make_unique<fco::DegreeBoundScheduler>(g));
  schedulers.push_back(std::make_unique<fco::FirstComeFirstGrabScheduler>(g, 7));

  for (auto& scheduler : schedulers) {
    const auto report = fco::run_schedule(*scheduler, {.horizon = 500});
    EXPECT_TRUE(report.independence_ok) << scheduler->name();
    EXPECT_TRUE(report.bounds_respected) << scheduler->name();
    // Every node must appear at least once over 500 holidays (grid degrees
    // are ≤ 4, all guarantees are ≤ 2^ρ(5) = 2^7 = 128 — except FCFG, which
    // has no guarantee but is overwhelmingly likely to cover in 500).
    for (fg::NodeId v = 0; v < g.num_nodes(); ++v) {
      EXPECT_GT(report.appearances[v], 0U) << scheduler->name() << " node " << v;
    }
  }
}

TEST(Integration, PeriodicSchedulersAreFairerThanTrivial) {
  // Fairness (freq ∝ 1/(d+1)) on a heavy-tailed graph: degree-bound beats
  // the trivial |P|-cycle round robin decisively.
  const fg::Graph g = fg::barabasi_albert(150, 2, 11);
  constexpr std::uint64_t kHorizon = 4000;

  fco::DegreeBoundScheduler degree_bound(g);
  const auto db = fco::run_schedule(degree_bound, {.horizon = kHorizon});
  const double fair_db = fhg::analysis::jain_fairness(g, db.appearances, kHorizon);

  fco::RoundRobinColorScheduler trivial(g, fc::sequential_color(g));
  const auto tr = fco::run_schedule(trivial, {.horizon = kHorizon});
  const double fair_tr = fhg::analysis::jain_fairness(g, tr.appearances, kHorizon);

  EXPECT_GT(fair_db, fair_tr);
  EXPECT_GT(fair_db, 0.5);
}

TEST(Integration, HappySetsConvertToGatherings) {
  // Every scheduler output must be expressible as an edge orientation whose
  // sinks cover the happy set (Definition 2.1 ↔ independent sets); extra
  // sinks may appear only where unavoidable — isolated nodes, or one node in
  // a tree component that the happy set skipped entirely.
  const fg::Graph g = fg::gnp(60, 0.08, 3);
  const auto comps = fg::connected_components(g);
  fco::DegreeBoundScheduler scheduler(g);
  for (int t = 0; t < 32; ++t) {
    const auto happy = scheduler.next_holiday();
    const fco::Gathering gathering = fco::Gathering::from_happy_set(g, happy);
    const auto sinks = gathering.happy_set();
    // Containment: every requested node is a sink.
    EXPECT_TRUE(std::includes(sinks.begin(), sinks.end(), happy.begin(), happy.end()));
    // Extras are justified: isolated, or alone in a happy-free component.
    std::vector<bool> requested(g.num_nodes(), false);
    std::vector<bool> component_has_happy(comps.count, false);
    for (const fg::NodeId v : happy) {
      requested[v] = true;
      component_has_happy[comps.id[v]] = true;
    }
    std::vector<int> extras_per_component(comps.count, 0);
    for (const fg::NodeId v : sinks) {
      if (requested[v] || g.degree(v) == 0) {
        continue;
      }
      EXPECT_FALSE(component_has_happy[comps.id[v]])
          << "avoidable extra sink " << v << " at holiday " << t + 1;
      EXPECT_EQ(++extras_per_component[comps.id[v]], 1)
          << "two extra sinks in one component";
    }
  }
}

TEST(Integration, ThroughputNeverExceedsMisPerHoliday) {
  const fg::Graph g = fg::gnp(80, 0.1, 7);
  const std::size_t mis_floor = fhg::mis::greedy_mis(g).size();
  fco::PhasedGreedyScheduler scheduler(g, fc::greedy_color(g, fc::Order::kLargestFirst));
  const auto report = fco::run_schedule(scheduler, {.horizon = 1000});
  // A maximal independent set bounds any *maximum* from below; the happy
  // set per holiday can never exceed the true MIS, and on average honest
  // schedulers land well below.  Sanity: max observed ≤ n and mean ≤ MIS
  // (via greedy lower bound × small factor as a loose sanity envelope).
  EXPECT_LE(report.max_happy_set, g.num_nodes());
  const double mean_happy =
      static_cast<double>(report.total_happy) / static_cast<double>(report.horizon);
  EXPECT_LE(mean_happy, static_cast<double>(mis_floor) * 3.0);
}

TEST(Integration, JohanssonVersusGreedyColorCount) {
  // Substrate sanity: the distributed coloring should not be wildly worse
  // than sequential greedy on the same graph (both are (deg+1)-bounded).
  const fg::Graph g = fg::gnp(500, 0.01, 19);
  const auto johansson = fd::johansson_color(g, 3).coloring.max_color();
  const auto greedy = fc::greedy_color(g, fc::Order::kLargestFirst).max_color();
  EXPECT_LE(johansson, g.max_degree() + 1);
  EXPECT_LE(greedy, g.max_degree() + 1);
}
