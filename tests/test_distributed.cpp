// Tests for fhg::distributed — the LOCAL-model simulator and the four
// distributed algorithms (Johansson/palette coloring, Luby MIS, phased
// greedy, degree-bound).

#include <gtest/gtest.h>

#include <numeric>

#include "fhg/coding/iterated_log.hpp"
#include "fhg/coloring/greedy.hpp"
#include "fhg/core/degree_bound.hpp"
#include "fhg/core/phased_greedy.hpp"
#include "fhg/distributed/degree_bound.hpp"
#include "fhg/distributed/johansson.hpp"
#include "fhg/distributed/luby.hpp"
#include "fhg/distributed/network.hpp"
#include "fhg/distributed/phased_greedy.hpp"
#include "fhg/graph/generators.hpp"
#include "fhg/graph/properties.hpp"

namespace fg = fhg::graph;
namespace fd = fhg::distributed;
namespace fc = fhg::coloring;

// ----------------------------------------------------------- SyncNetwork ---

TEST(SyncNetwork, MessagesArriveNextRound) {
  const fg::Graph g = fg::path(2);
  fd::SyncNetwork net(g, 1);
  std::vector<std::uint64_t> received(2, 0);
  net.set_handler([&](fd::RoundContext& ctx) {
    if (ctx.round() == 0) {
      ctx.broadcast({ctx.self() + 100});
    } else {
      for (const fd::Message& m : ctx.inbox()) {
        received[ctx.self()] = m.payload[0];
      }
      ctx.halt();
    }
  });
  net.step();
  EXPECT_EQ(received[0], 0U);  // nothing yet
  net.step();
  EXPECT_EQ(received[0], 101U);
  EXPECT_EQ(received[1], 100U);
  EXPECT_EQ(net.active_nodes(), 0U);
}

TEST(SyncNetwork, RejectsNonNeighborSend) {
  const fg::Graph g = fg::path(3);  // 0-1-2; 0 and 2 not adjacent
  fd::SyncNetwork net(g, 1);
  net.set_handler([&](fd::RoundContext& ctx) {
    if (ctx.self() == 0) {
      EXPECT_THROW(ctx.send(2, {1}), std::invalid_argument);
    }
    ctx.halt();
  });
  net.step();
}

TEST(SyncNetwork, CountsMessagesAndWords) {
  const fg::Graph g = fg::clique(4);
  fd::SyncNetwork net(g, 1);
  net.set_handler([](fd::RoundContext& ctx) {
    if (ctx.round() == 0) {
      ctx.broadcast({1, 2, 3});
    } else {
      ctx.halt();
    }
  });
  net.step();
  net.step();
  EXPECT_EQ(net.stats().rounds, 2U);
  EXPECT_EQ(net.stats().messages, 12U);  // 4 nodes × 3 neighbors
  EXPECT_EQ(net.stats().words, 36U);
}

TEST(SyncNetwork, RunThrowsOnLivenessFailure) {
  const fg::Graph g = fg::path(2);
  fd::SyncNetwork net(g, 1);
  net.set_handler([](fd::RoundContext&) { /* never halts */ });
  EXPECT_THROW(net.run(5), std::runtime_error);
}

TEST(SyncNetwork, ParallelExecutionMatchesSerial) {
  // A randomized protocol run twice — serial vs thread pool — must produce
  // identical results (deterministic per-(node, round) RNG).
  const fg::Graph g = fg::gnp(300, 0.02, 3);
  const auto run = [&g](fhg::parallel::ThreadPool* pool) {
    const fd::ColoringRun result = fd::johansson_color(g, /*seed=*/7, pool);
    return std::vector<fc::Color>(result.coloring.colors().begin(),
                                  result.coloring.colors().end());
  };
  fhg::parallel::ThreadPool pool(4);
  EXPECT_EQ(run(nullptr), run(&pool));
}

TEST(SyncNetwork, InboxSortedBySender) {
  const fg::Graph g = fg::star(5);
  fd::SyncNetwork net(g, 1);
  std::vector<fg::NodeId> senders;
  net.set_handler([&](fd::RoundContext& ctx) {
    if (ctx.round() == 0) {
      ctx.broadcast({7});
    } else {
      if (ctx.self() == 0) {
        for (const fd::Message& m : ctx.inbox()) {
          senders.push_back(m.from);
        }
      }
      ctx.halt();
    }
  });
  net.step();
  net.step();
  EXPECT_TRUE(std::is_sorted(senders.begin(), senders.end()));
  EXPECT_EQ(senders.size(), 4U);
}

// ------------------------------------------------------------ Johansson ----

class JohanssonTest : public ::testing::TestWithParam<int> {
 protected:
  static fg::Graph make_graph(int index) {
    switch (index) {
      case 0:
        return fg::gnp(400, 0.02, 5);
      case 1:
        return fg::clique(20);
      case 2:
        return fg::barabasi_albert(300, 4, 9);
      case 3:
        return fg::grid2d(15, 15);
      default:
        return fg::random_tree(200, 1);
    }
  }
};

TEST_P(JohanssonTest, ProducesProperDegreeBoundedColoring) {
  const fg::Graph g = make_graph(GetParam());
  const fd::ColoringRun run = fd::johansson_color(g, /*seed=*/42);
  EXPECT_TRUE(run.coloring.complete());
  EXPECT_TRUE(run.coloring.proper(g));
  EXPECT_TRUE(run.coloring.degree_bounded(g));  // col(v) ≤ deg(v)+1: the [16] property
  EXPECT_GT(run.stats.rounds, 0U);
}

INSTANTIATE_TEST_SUITE_P(Graphs, JohanssonTest, ::testing::Range(0, 5));

TEST(Johansson, RoundsGrowSlowly) {
  // O(log n) w.h.p.: even at n = 4000 the 2-rounds-per-phase protocol should
  // finish far below the generous engine cap.
  const fg::Graph g = fg::gnp(4000, 0.002, 11);
  const fd::ColoringRun run = fd::johansson_color(g, 1);
  EXPECT_LT(run.stats.rounds, 64U);
}

TEST(Johansson, DeterministicForSeed) {
  const fg::Graph g = fg::gnp(200, 0.03, 13);
  const fd::ColoringRun a = fd::johansson_color(g, 99);
  const fd::ColoringRun b = fd::johansson_color(g, 99);
  EXPECT_TRUE(std::equal(a.coloring.colors().begin(), a.coloring.colors().end(),
                         b.coloring.colors().begin()));
}

TEST(PaletteColor, RespectsRestrictedPalettes) {
  // Color a cycle with palettes {10, 20, 30} — result must stay in-palette.
  const fg::Graph g = fg::cycle(12);
  std::vector<std::vector<fc::Color>> palettes(12, {10, 20, 30});
  const fd::ColoringRun run =
      fd::palette_color(g, palettes, std::vector<bool>(12, true), /*seed=*/3);
  EXPECT_TRUE(run.coloring.proper(g));
  for (fg::NodeId v = 0; v < 12; ++v) {
    const fc::Color c = run.coloring.color(v);
    EXPECT_TRUE(c == 10 || c == 20 || c == 30);
  }
}

TEST(PaletteColor, NonParticipantsAreUntouchedAndUnconstraining) {
  const fg::Graph g = fg::path(3);  // 0-1-2
  std::vector<std::vector<fc::Color>> palettes{{1}, {}, {1}};
  std::vector<bool> participate{true, false, true};
  const fd::ColoringRun run = fd::palette_color(g, palettes, participate, 1);
  // 0 and 2 are not adjacent, so both may take color 1; 1 stays uncolored.
  EXPECT_EQ(run.coloring.color(0), 1U);
  EXPECT_EQ(run.coloring.color(1), fc::kUncolored);
  EXPECT_EQ(run.coloring.color(2), 1U);
}

TEST(PaletteColor, RejectsPigeonholeViolation) {
  const fg::Graph g = fg::clique(3);
  std::vector<std::vector<fc::Color>> palettes(3, {1, 2});  // 2 colors, 2 rivals
  EXPECT_THROW(
      static_cast<void>(fd::palette_color(g, palettes, std::vector<bool>(3, true), 1)),
      std::invalid_argument);
}

// ----------------------------------------------------------------- Luby ----

class LubyTest : public ::testing::TestWithParam<int> {};

TEST_P(LubyTest, ProducesMaximalIndependentSet) {
  const std::uint64_t seed = static_cast<std::uint64_t>(GetParam());
  const fg::Graph g = fg::gnp(500, 0.01, seed + 100);
  const fd::MisRun run = fd::luby_mis(g, seed);
  EXPECT_TRUE(fg::is_independent_set(g, run.independent_set));
  // Maximality: every node is in the set or adjacent to it.
  std::vector<bool> covered(g.num_nodes(), false);
  for (const fg::NodeId v : run.independent_set) {
    covered[v] = true;
    for (const fg::NodeId w : g.neighbors(v)) {
      covered[w] = true;
    }
  }
  EXPECT_TRUE(std::all_of(covered.begin(), covered.end(), [](bool b) { return b; }));
}

INSTANTIATE_TEST_SUITE_P(Seeds, LubyTest, ::testing::Range(0, 5));

TEST(Luby, CliqueYieldsSingleton) {
  const fd::MisRun run = fd::luby_mis(fg::clique(15), 3);
  EXPECT_EQ(run.independent_set.size(), 1U);
}

TEST(Luby, EmptyGraphTakesEveryone) {
  const fd::MisRun run = fd::luby_mis(fg::Graph(10), 3);
  EXPECT_EQ(run.independent_set.size(), 10U);
}

// -------------------------------------------------------- phased greedy ----

TEST(DistributedPhasedGreedy, MatchesSequentialEngine) {
  const fg::Graph g = fg::gnp(60, 0.1, 21);
  const fc::Coloring initial = fc::greedy_color(g, fc::Order::kLargestFirst);
  constexpr std::uint64_t kHolidays = 40;

  const fd::PhasedGreedyRun dist = fd::run_phased_greedy(g, initial, kHolidays);

  fhg::core::PhasedGreedyScheduler seq(g, initial);
  for (std::uint64_t h = 0; h < kHolidays; ++h) {
    EXPECT_EQ(seq.next_holiday(), dist.happy_sets[h]) << "holiday " << h + 1;
  }
}

TEST(DistributedPhasedGreedy, GapBoundHolds) {
  const fg::Graph g = fg::barabasi_albert(80, 2, 31);
  const fc::Coloring initial = fc::greedy_color(g, fc::Order::kLargestFirst);
  constexpr std::uint64_t kHolidays = 400;
  const fd::PhasedGreedyRun run = fd::run_phased_greedy(g, initial, kHolidays);

  std::vector<std::uint64_t> last(g.num_nodes(), 0);
  for (std::uint64_t h = 1; h <= kHolidays; ++h) {
    for (const fg::NodeId v : run.happy_sets[h - 1]) {
      EXPECT_LE(h - last[v], g.degree(v) + 1) << "node " << v;
      last[v] = h;
    }
  }
  // Tail: everyone must appear in the final (d+1)-window too.
  for (fg::NodeId v = 0; v < g.num_nodes(); ++v) {
    EXPECT_GE(last[v], kHolidays - g.degree(v)) << "node " << v;
  }
}

TEST(DistributedPhasedGreedy, ConstantRoundsPerHoliday) {
  const fg::Graph g = fg::gnp(50, 0.1, 41);
  const fc::Coloring initial = fc::greedy_color(g, fc::Order::kLargestFirst);
  const fd::PhasedGreedyRun run = fd::run_phased_greedy(g, initial, 25);
  EXPECT_EQ(run.stats.rounds, 50U);  // exactly 2 per holiday
}

TEST(DistributedPhasedGreedy, RequiresProperColoring) {
  const fg::Graph g = fg::path(3);
  fc::Coloring bad(3);
  bad.set_color(0, 1);
  bad.set_color(1, 1);  // conflict
  bad.set_color(2, 2);
  EXPECT_THROW(static_cast<void>(fd::run_phased_greedy(g, bad, 5)), std::invalid_argument);
}

// ---------------------------------------------------------- degree bound ---

class DistributedDegreeBoundTest : public ::testing::TestWithParam<int> {
 protected:
  static fg::Graph make_graph(int index) {
    switch (index) {
      case 0:
        return fg::gnp(300, 0.02, 51);
      case 1:
        return fg::star(40);
      case 2:
        return fg::barabasi_albert(250, 3, 53);
      case 3:
        return fg::clique(17);
      default:
        return fg::caterpillar(20, 4);
    }
  }
};

TEST_P(DistributedDegreeBoundTest, SlotsAreConflictFreeWithExactPeriods) {
  const fg::Graph g = make_graph(GetParam());
  const fd::DegreeBoundRun run = fd::distributed_degree_bound(g, /*seed=*/7);
  ASSERT_EQ(run.slots.size(), g.num_nodes());
  EXPECT_TRUE(fhg::core::slots_conflict_free(g, run.slots));
  for (fg::NodeId v = 0; v < g.num_nodes(); ++v) {
    const std::uint64_t d = g.degree(v);
    EXPECT_EQ(run.slots[v].length, fhg::coding::ceil_log2(d + 1));
    if (d >= 1) {
      EXPECT_LE(run.slots[v].period(), 2 * d);  // Theorem 5.3
    } else {
      EXPECT_EQ(run.slots[v].period(), 1U);  // isolated: host every holiday
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Graphs, DistributedDegreeBoundTest, ::testing::Range(0, 5));

TEST(DistributedDegreeBound, PhasesMatchDegreeClasses) {
  // Star: classes ⌈log(1+1)⌉ = 1 (leaves) and ⌈log(40)⌉ = 6 (hub) → 2 phases.
  const fd::DegreeBoundRun run = fd::distributed_degree_bound(fg::star(40), 3);
  EXPECT_EQ(run.phases, 2U);
}

TEST(DistributedDegreeBound, FeedsSchedulerWithoutConflict) {
  const fg::Graph g = fg::gnp(150, 0.05, 61);
  fd::DegreeBoundRun run = fd::distributed_degree_bound(g, 11);
  // The scheduler constructor re-validates conflict-freedom.
  EXPECT_NO_THROW({
    fhg::core::DegreeBoundScheduler scheduler(g, std::move(run.slots));
    (void)scheduler;
  });
}

TEST(DistributedDegreeBound, ParallelExecutionMatchesSerial) {
  const fg::Graph g = fg::gnp(400, 0.015, 71);
  fhg::parallel::ThreadPool pool(4);
  const fd::DegreeBoundRun serial = fd::distributed_degree_bound(g, 9, nullptr);
  const fd::DegreeBoundRun parallel_run = fd::distributed_degree_bound(g, 9, &pool);
  ASSERT_EQ(serial.slots.size(), parallel_run.slots.size());
  for (std::size_t v = 0; v < serial.slots.size(); ++v) {
    EXPECT_EQ(serial.slots[v], parallel_run.slots[v]) << "node " << v;
  }
}

TEST(Luby, ParallelExecutionMatchesSerial) {
  const fg::Graph g = fg::gnp(500, 0.01, 73);
  fhg::parallel::ThreadPool pool(4);
  EXPECT_EQ(fd::luby_mis(g, 5, nullptr).independent_set,
            fd::luby_mis(g, 5, &pool).independent_set);
}

TEST(SyncNetwork, HandlerExceptionsPropagate) {
  // Failure injection: a crashing protocol handler must surface to the
  // caller (not deadlock or vanish), in both serial and parallel execution.
  const fg::Graph g = fg::path(4);
  for (const bool parallel_mode : {false, true}) {
    fhg::parallel::ThreadPool pool(2);
    fd::SyncNetwork net(g, 1, parallel_mode ? &pool : nullptr);
    net.set_handler([](fd::RoundContext& ctx) {
      if (ctx.self() == 2) {
        throw std::runtime_error("injected node failure");
      }
    });
    EXPECT_THROW(net.step(), std::runtime_error) << "parallel=" << parallel_mode;
  }
}
