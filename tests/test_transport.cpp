// Tests for the transport layer: one protocol, two transports.  The seeded
// workload request stream must produce byte-identical response frames
// through the in-process transport and a real TCP loopback socket; lifecycle
// operations serialize through the owning shard's FIFO; every failure mode
// surfaces as a typed status through the Client.

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cstdint>
#include <future>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <thread>
#include <variant>
#include <vector>

#include "fhg/api/client.hpp"
#include "fhg/api/codec.hpp"
#include "fhg/api/protocol.hpp"
#include "fhg/api/socket.hpp"
#include "fhg/api/transport.hpp"
#include "fhg/engine/engine.hpp"
#include "fhg/graph/generators.hpp"
#include "fhg/obs/registry.hpp"
#include "fhg/service/service.hpp"
#include "fhg/workload/scenario.hpp"

namespace fa = fhg::api;
namespace fe = fhg::engine;
namespace fg = fhg::graph;
namespace fs = fhg::service;
namespace fw = fhg::workload;

namespace {

fw::ScenarioSpec mixed_spec() {
  fw::ScenarioSpec spec;
  spec.family = fw::GraphFamily::kPowerLaw;
  spec.fleet = 24;
  spec.nodes = 12;
  spec.seed = 11;
  spec.horizon = 128;
  spec.aperiodic = 0.2;
  spec.dynamic_share = 0.4;
  spec.mutation = 0.2;
  return spec;
}

std::unique_ptr<fe::Engine> make_fleet(const fw::ScenarioSpec& spec) {
  auto engine = std::make_unique<fe::Engine>(fe::EngineOptions{.shards = 8, .threads = 2});
  fw::ScenarioGenerator(spec).populate(*engine);
  (void)engine->step_all(24);
  return engine;
}

/// The lifecycle coda appended to equivalence streams: every admin kind,
/// including a typed failure (the second erase).
std::vector<fa::Request> admin_cycle(const std::string& name) {
  return {
      fa::CreateInstanceRequest{name, 8, {{0, 1}, {1, 2}, {2, 3}}, fe::InstanceSpec{}},
      fa::IsHappyRequest{name, 1, 3},
      fa::NextGatheringRequest{name, 2, 0},
      fa::ListInstancesRequest{},
      fa::SnapshotRequest{},
      fa::EraseInstanceRequest{name},
      fa::EraseInstanceRequest{name},  // second erase: typed kNotFound
  };
}

/// A TCP client below `SocketTransport`: raw sends with caller-chosen
/// boundaries and pacing, so tests can place frame splits exactly where the
/// event loop must reassemble them — and *not* read, to provoke
/// backpressure.  `SocketTransport` can do neither (it always ships whole
/// frames and reads every reply).
class RawClient {
 public:
  RawClient(const std::string& host, std::uint16_t port, int rcvbuf_bytes = 0) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    EXPECT_GE(fd_, 0);
    if (rcvbuf_bytes > 0) {
      // Must be set before connect so the advertised window is small from
      // the SYN onward — the knob the backpressure test turns.
      (void)::setsockopt(fd_, SOL_SOCKET, SO_RCVBUF, &rcvbuf_bytes, sizeof(rcvbuf_bytes));
    }
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    EXPECT_EQ(::inet_pton(AF_INET, host.c_str(), &addr.sin_addr), 1);
    EXPECT_EQ(::connect(fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)), 0);
  }
  ~RawClient() { close(); }
  RawClient(const RawClient&) = delete;
  RawClient& operator=(const RawClient&) = delete;

  void close() {
    if (fd_ >= 0) {
      ::close(fd_);
      fd_ = -1;
    }
  }

  void send_all(std::span<const std::uint8_t> bytes) {
    std::size_t sent = 0;
    while (sent < bytes.size()) {
      const ssize_t n =
          ::send(fd_, bytes.data() + sent, bytes.size() - sent, MSG_NOSIGNAL);
      ASSERT_GT(n, 0) << "send failed: " << errno;
      sent += static_cast<std::size_t>(n);
    }
  }

  void recv_exact(std::uint8_t* out, std::size_t want) {
    std::size_t got = 0;
    while (got < want) {
      const ssize_t n = ::recv(fd_, out + got, want - got, 0);
      ASSERT_GT(n, 0) << "peer closed or errored mid-read: " << errno;
      got += static_cast<std::size_t>(n);
    }
  }

  /// Reads one complete frame (header + payload) off the stream.
  std::vector<std::uint8_t> recv_frame() {
    std::vector<std::uint8_t> frame(fa::kFrameHeaderBytes);
    recv_exact(frame.data(), frame.size());
    const std::size_t payload = (std::size_t{frame[4]} << 24) | (std::size_t{frame[5]} << 16) |
                                (std::size_t{frame[6]} << 8) | std::size_t{frame[7]};
    frame.resize(fa::kFrameHeaderBytes + payload);
    recv_exact(frame.data() + fa::kFrameHeaderBytes, payload);
    return frame;
  }

 private:
  int fd_ = -1;
};

std::uint64_t global_counter(std::string_view name) {
  return fhg::obs::Registry::global().counter(name).value();
}

}  // namespace

// ----------------------------------------------- transport equivalence -----

TEST(Transport, SocketAndInProcessProduceByteIdenticalResponses) {
  const fw::ScenarioSpec spec = mixed_spec();
  // Two identical fleets: mutations in the stream advance both in lockstep,
  // so every response frame — queries, mutation results, snapshots — must
  // match byte for byte.
  auto socket_engine = make_fleet(spec);
  auto inproc_engine = make_fleet(spec);
  fs::Service socket_service(*socket_engine, {.shards = 3});
  fs::Service inproc_service(*inproc_engine, {.shards = 3});
  fa::SocketServer server(socket_service, {});
  fa::SocketTransport socket_transport(server.host(), server.port());
  fa::InProcessTransport inproc_transport(inproc_service);

  const fw::ScenarioGenerator generator(spec);
  auto stream = generator.request_stream(600, 5);
  for (fa::Request& request : admin_cycle("equivalence-probe")) {
    stream.push_back(std::move(request));
  }
  std::size_t mutations = 0;
  for (std::size_t i = 0; i < stream.size(); ++i) {
    mutations += std::holds_alternative<fa::ApplyMutationsRequest>(stream[i]) ? 1 : 0;
    const auto frame = fa::encode_request(i + 1, stream[i]);
    std::vector<std::uint8_t> socket_reply;
    std::vector<std::uint8_t> inproc_reply;
    ASSERT_TRUE(socket_transport.roundtrip(frame, socket_reply).ok()) << i;
    ASSERT_TRUE(inproc_transport.roundtrip(frame, inproc_reply).ok()) << i;
    ASSERT_EQ(socket_reply, inproc_reply)
        << "request " << i << " (" << fa::request_kind_name(stream[i].index()) << ")";
  }
  EXPECT_GT(mutations, 0u) << "the equivalence stream must exercise the mutation path";
  server.stop();
}

TEST(Transport, ClientAnswersMatchDirectEngineOverTheSocket) {
  const fw::ScenarioSpec spec = mixed_spec();
  auto engine = make_fleet(spec);
  fs::Service service(*engine, {.shards = 2});
  fa::SocketServer server(service, {});
  fa::Client client(std::make_unique<fa::SocketTransport>(server.host(), server.port()));

  const fw::ScenarioGenerator generator(spec);
  for (const fa::Request& request : generator.request_stream(300, 9)) {
    if (const auto* happy = std::get_if<fa::IsHappyRequest>(&request)) {
      const auto served = client.is_happy(happy->instance, happy->node, happy->holiday);
      ASSERT_TRUE(served.ok()) << served.status.detail;
      EXPECT_EQ(served.value, engine->is_happy(happy->instance, happy->node, happy->holiday));
    } else if (const auto* next = std::get_if<fa::NextGatheringRequest>(&request)) {
      const auto served = client.next_gathering(next->instance, next->node, next->after);
      ASSERT_TRUE(served.ok()) << served.status.detail;
      EXPECT_EQ(served.value, engine->next_gathering(next->instance, next->node, next->after)
                                  .value_or(fe::kNoGathering));
    }
  }
  server.stop();
}

// ------------------------------------------------- lifecycle through FIFO --

TEST(Transport, LifecycleOpsSerializeThroughTheOwningShardFifo) {
  fe::Engine engine;
  // One shard, deferred start: the FIFO order is exactly submission order,
  // so the queries interleaved with create/erase prove the lifecycle ops
  // ride the same queue (a bypass would see them before the create).
  fs::Service service(engine, {.shards = 1, .queue_capacity = 64, .start = false});
  std::vector<fa::Response> responses;
  std::vector<std::future<fa::Response>> pending;
  const std::string name = "fifo-probe";
  pending.push_back(service.submit(fa::IsHappyRequest{name, 0, 1}));   // before create
  pending.push_back(service.submit(
      fa::CreateInstanceRequest{name, 6, {{0, 1}, {2, 3}}, fe::InstanceSpec{}}));
  pending.push_back(service.submit(fa::IsHappyRequest{name, 0, 1}));   // after create
  pending.push_back(service.submit(fa::EraseInstanceRequest{name}));
  pending.push_back(service.submit(fa::IsHappyRequest{name, 0, 1}));   // after erase
  service.start();
  service.drain();
  for (auto& future : pending) {
    responses.push_back(future.get());
  }
  ASSERT_EQ(responses.size(), 5u);
  EXPECT_EQ(responses[0].status.code, fa::StatusCode::kNotFound) << "query before create";
  EXPECT_TRUE(responses[1].ok()) << responses[1].status.detail;
  EXPECT_TRUE(responses[2].ok()) << "query after create must see the tenant";
  EXPECT_TRUE(responses[3].ok()) << responses[3].status.detail;
  EXPECT_EQ(responses[4].status.code, fa::StatusCode::kNotFound) << "query after erase";
  EXPECT_EQ(service.metrics().totals().admin, 2u);
}

TEST(Transport, AdmissionRejectsArriveAsTypedResponses) {
  fe::Engine engine;
  fs::Service service(engine, {.shards = 1, .queue_capacity = 1, .start = false});
  auto accepted = service.submit(fa::ListInstancesRequest{});
  // The queue holds one request; the second gets a synchronous typed reject.
  auto refused = service.submit(fa::ListInstancesRequest{});
  ASSERT_EQ(refused.wait_for(std::chrono::seconds(0)), std::future_status::ready);
  EXPECT_EQ(refused.get().status.code, fa::StatusCode::kQueueFull);
  service.drain();
  EXPECT_TRUE(accepted.get().ok());
  auto stopped = service.submit(fa::ListInstancesRequest{});
  EXPECT_EQ(stopped.get().status.code, fa::StatusCode::kStopped);
}

// ------------------------------------------------------- typed failures ----

TEST(Transport, EveryFailureModeSurfacesTypedThroughTheClient) {
  fe::Engine engine;
  (void)engine.create_instance("static", fg::cycle(8), fe::InstanceSpec{});
  fs::Service service(engine, {.shards = 2});
  fa::Client client(std::make_unique<fa::InProcessTransport>(service));

  EXPECT_EQ(client.is_happy("missing", 0, 1).status.code, fa::StatusCode::kNotFound);
  EXPECT_EQ(client.is_happy("static", 999, 1).status.code, fa::StatusCode::kInvalidArgument);
  EXPECT_EQ(client.apply_mutations("static", {fhg::dynamic::insert_edge_command(0, 2)})
                .status.code,
            fa::StatusCode::kFailedPrecondition);
  EXPECT_EQ(client.apply_mutations("missing", {fhg::dynamic::insert_edge_command(0, 2)})
                .status.code,
            fa::StatusCode::kNotFound);
  EXPECT_EQ(client.create_instance("static", 4, {}, fe::InstanceSpec{}).code,
            fa::StatusCode::kAlreadyExists);
  EXPECT_EQ(client.create_instance("self-loop", 4, {{1, 1}}, fe::InstanceSpec{}).code,
            fa::StatusCode::kInvalidArgument);
  EXPECT_EQ(client.erase_instance("missing").code, fa::StatusCode::kNotFound);
  EXPECT_EQ(client.restore({0xBA, 0xD0}).status.code, fa::StatusCode::kInvalidArgument);
  // The failed restore must not have clobbered the tenancy.
  const auto listed = client.list_instances();
  ASSERT_TRUE(listed.ok());
  ASSERT_EQ(listed.value.size(), 1u);
  EXPECT_EQ(listed.value[0].name, "static");
}

TEST(Transport, MisFramedBytesEarnATypedDecodeErrorOverTheSocket) {
  fe::Engine engine;
  fs::Service service(engine, {.shards = 1});
  fa::SocketServer server(service, {});
  fa::SocketTransport transport(server.host(), server.port());
  // Ship garbage where a frame should be: the server answers once, typed,
  // then hangs up (resynchronization without frame boundaries is hopeless).
  const std::vector<std::uint8_t> garbage{'n', 'o', 't', ' ', 'a', ' ', 'f', 'r', 'a', 'm'};
  std::vector<std::uint8_t> reply;
  ASSERT_TRUE(transport.roundtrip(garbage, reply).ok());
  fa::DecodedResponse decoded;
  ASSERT_TRUE(fa::decode_response(reply, decoded).ok());
  EXPECT_EQ(decoded.request_id, 0u);  // unreadable prologue: addressed to 0
  EXPECT_EQ(decoded.response.status.code, fa::StatusCode::kDecodeError);
  server.stop();
}

TEST(Transport, VersionMismatchIsRefusedTypedEndToEnd) {
  fe::Engine engine;
  (void)engine.create_instance("static", fg::cycle(8), fe::InstanceSpec{});
  fs::Service service(engine, {.shards = 1});
  fa::SocketServer server(service, {});
  // A client from the future: every call comes back kUnsupportedVersion.
  fa::Client client(std::make_unique<fa::SocketTransport>(server.host(), server.port()),
                    /*version=*/9);
  const auto result = client.is_happy("static", 0, 1);
  EXPECT_EQ(result.status.code, fa::StatusCode::kUnsupportedVersion);
  server.stop();
}

// ------------------------------------------------------ snapshot restore ---

TEST(Transport, SnapshotRestoresIntoAFreshServerOverTheWire) {
  const fw::ScenarioSpec spec = mixed_spec();
  auto source_engine = make_fleet(spec);
  fs::Service source_service(*source_engine, {.shards = 2});
  fa::Client source(std::make_unique<fa::InProcessTransport>(source_service));

  fe::Engine target_engine;
  fs::Service target_service(target_engine, {.shards = 2});
  fa::SocketServer server(target_service, {});
  fa::Client target(std::make_unique<fa::SocketTransport>(server.host(), server.port()));

  const auto snapshot = source.snapshot();
  ASSERT_TRUE(snapshot.ok()) << snapshot.status.detail;
  const auto restored = target.restore(snapshot.value);
  ASSERT_TRUE(restored.ok()) << restored.status.detail;
  EXPECT_EQ(restored.value, source_engine->num_instances());

  // The round trip is byte-identical, as the snapshot format promises.
  // (Taken before any queries: answering a query *extends* an aperiodic
  // tenant's replayed prefix, legitimately advancing its holiday counter.)
  const auto again = target.snapshot();
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again.value, snapshot.value);

  // The restored tenancy answers the seeded query stream identically.
  const fw::ScenarioGenerator generator(spec);
  for (const fa::Request& request : generator.request_stream(200, 3)) {
    if (const auto* happy = std::get_if<fa::IsHappyRequest>(&request)) {
      const auto served = target.is_happy(happy->instance, happy->node, happy->holiday);
      ASSERT_TRUE(served.ok()) << served.status.detail;
      EXPECT_EQ(served.value,
                source_engine->is_happy(happy->instance, happy->node, happy->holiday));
    }
  }
  server.stop();
}

// ------------------------------------------------------------- GetStats ----

TEST(Transport, GetStatsSnapshotsAreByteIdenticalAcrossTransports) {
  // Two identical fleets served the same request stream over the socket and
  // in process must expose byte-identical stats snapshots: the engine
  // registry is per-engine and deterministic under a deterministic workload,
  // and the timing-dependent parts (histograms, traces) are excluded by the
  // request flags.  Transport-layer metrics live on the process-global
  // registry precisely so they cannot leak in here.
  const fw::ScenarioSpec spec = mixed_spec();
  auto socket_engine = make_fleet(spec);
  auto inproc_engine = make_fleet(spec);
  fs::Service socket_service(*socket_engine, {.shards = 3});
  fs::Service inproc_service(*inproc_engine, {.shards = 3});
  fa::SocketServer server(socket_service, {});
  fa::SocketTransport socket_transport(server.host(), server.port());
  fa::InProcessTransport inproc_transport(inproc_service);

  const fw::ScenarioGenerator generator(spec);
  auto stream = generator.request_stream(400, 5);
  for (fa::Request& request : admin_cycle("stats-probe")) {
    stream.push_back(std::move(request));
  }
  stream.push_back(fa::GetStatsRequest{.include_histograms = false, .include_traces = false});
  for (std::size_t i = 0; i < stream.size(); ++i) {
    const auto frame = fa::encode_request(i + 1, stream[i]);
    std::vector<std::uint8_t> socket_reply;
    std::vector<std::uint8_t> inproc_reply;
    ASSERT_TRUE(socket_transport.roundtrip(frame, socket_reply).ok()) << i;
    ASSERT_TRUE(inproc_transport.roundtrip(frame, inproc_reply).ok()) << i;
    ASSERT_EQ(socket_reply, inproc_reply)
        << "request " << i << " (" << fa::request_kind_name(stream[i].index()) << ")";
  }
  // The final frames really were stats: decode one and spot-check content.
  const auto frame = fa::encode_request(9999, fa::Request{fa::GetStatsRequest{
                                                  .include_histograms = false,
                                                  .include_traces = false}});
  std::vector<std::uint8_t> reply;
  ASSERT_TRUE(socket_transport.roundtrip(frame, reply).ok());
  fa::DecodedResponse decoded;
  ASSERT_TRUE(fa::decode_response(reply, decoded).ok());
  const auto* stats = std::get_if<fa::GetStatsResponse>(&decoded.response.payload);
  ASSERT_NE(stats, nullptr);
  EXPECT_FALSE(stats->metrics.empty());
  EXPECT_TRUE(stats->traces.empty());  // excluded by the flag
  for (const auto& sample : stats->metrics) {
    EXPECT_NE(sample.kind, fhg::obs::MetricKind::kHistogram) << sample.name;
    EXPECT_EQ(sample.name.compare(0, 4, "fhg_"), 0) << sample.name;
  }
  server.stop();
}

TEST(Transport, StatsCountersAreMonotoneAcrossALoadBurst) {
  const fw::ScenarioSpec spec = mixed_spec();
  auto engine = make_fleet(spec);
  fs::Service service(*engine, {.shards = 2});
  fa::SocketServer server(service, {});
  fa::Client client(std::make_unique<fa::SocketTransport>(server.host(), server.port()));

  const auto counter_value = [](const fa::GetStatsResponse& stats, std::string_view name) {
    std::uint64_t sum = 0;
    for (const auto& sample : stats.metrics) {
      // Sum across shard labels: "name" or "name{shard=...}".
      const std::string_view sample_name(sample.name);
      if (sample_name == name || (sample_name.size() > name.size() &&
                                  sample_name.substr(0, name.size()) == name &&
                                  sample_name[name.size()] == '{')) {
        sum += sample.value;
      }
    }
    return sum;
  };

  auto before = client.get_stats();
  ASSERT_TRUE(before.ok()) << before.status.detail;
  const fw::ScenarioGenerator generator(spec);
  std::size_t queries = 0;
  for (const fa::Request& request : generator.request_stream(200, 21)) {
    if (const auto* happy = std::get_if<fa::IsHappyRequest>(&request)) {
      ++queries;
      ASSERT_TRUE(client.is_happy(happy->instance, happy->node, happy->holiday).ok());
    }
  }
  ASSERT_GT(queries, 0u);
  auto after = client.get_stats();
  ASSERT_TRUE(after.ok()) << after.status.detail;

  for (const std::string_view name :
       {"fhg_service_accepted_total", "fhg_service_queries_total",
        "fhg_engine_batch_probes_total"}) {
    const std::uint64_t was = counter_value(before.value, name);
    const std::uint64_t now = counter_value(after.value, name);
    EXPECT_GE(now, was + queries) << name;
  }
  // Histograms ride along by default and the burst recorded latencies.
  const auto latency = std::find_if(
      after.value.metrics.begin(), after.value.metrics.end(), [](const auto& sample) {
        return sample.kind == fhg::obs::MetricKind::kHistogram &&
               sample.name.find("fhg_service_latency_us") != std::string::npos &&
               sample.histogram.total() > 0;
      });
  EXPECT_NE(latency, after.value.metrics.end());
  server.stop();
}

TEST(Transport, ClientTraceIdsReachTheSlowestTraceRing) {
  const fw::ScenarioSpec spec = mixed_spec();
  auto engine = make_fleet(spec);
  fs::Service service(*engine, {.shards = 2});
  fa::SocketServer server(service, {});
  fa::Client client(std::make_unique<fa::SocketTransport>(server.host(), server.port()));
  client.set_trace_base(0x50000000ULL);  // tracing is on by default

  const fw::ScenarioGenerator generator(spec);
  std::size_t sent = 0;
  for (const fa::Request& request : generator.request_stream(100, 33)) {
    if (const auto* happy = std::get_if<fa::IsHappyRequest>(&request)) {
      ++sent;
      ASSERT_TRUE(client.is_happy(happy->instance, happy->node, happy->holiday).ok());
    }
  }
  ASSERT_GT(sent, 0u);
  auto stats = client.get_stats();
  ASSERT_TRUE(stats.ok()) << stats.status.detail;
  ASSERT_FALSE(stats.value.traces.empty());
  for (const auto& trace : stats.value.traces) {
    // Every trace was minted by this client: base + request id, echoed back.
    EXPECT_GT(trace.trace_id, 0x50000000ULL);
    EXPECT_EQ(trace.trace_id - 0x50000000ULL, trace.request_id);
    EXPECT_LT(trace.kind, fa::kNumRequestKinds);
    EXPECT_GE(trace.total_us, trace.serve_us);
  }
  // Disabling tracing stops new entries: the ring size stabilizes.
  client.set_tracing(false);
  const std::size_t ring_size = stats.value.traces.size();
  EXPECT_EQ(service.traces().snapshot().size(), ring_size);  // direct accessor agrees
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(client.list_instances().ok());
  }
  auto again = client.get_stats();
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again.value.traces.size(), ring_size);
  server.stop();
}

// ----------------------------------------------------- event-loop edges ----
//
// The epoll server's failure modes live below what SocketTransport can
// reach: partial frames across wakeups, peers vanishing mid-frame, peers
// that stop reading.  RawClient drives each one directly.

TEST(Transport, FrameSplitAcrossManyEpollWakeupsStillDecodes) {
  fe::Engine engine;
  (void)engine.create_instance("split-probe", fg::cycle(6), fe::InstanceSpec{});
  fs::Service service(engine, {.shards = 1});
  fa::SocketServer server(service, {});
  RawClient raw(server.host(), server.port());

  // One byte per send, paced so the kernel delivers them as separate
  // readable events: the frame crosses many wakeups and the assembler must
  // carry the partial frame between them.
  const std::uint64_t wakes_before = global_counter("fhg_socket_epoll_wakes_total");
  const auto frame = fa::encode_request(77, fa::Request{fa::ListInstancesRequest{}});
  for (std::size_t i = 0; i < frame.size(); ++i) {
    raw.send_all(std::span<const std::uint8_t>(&frame[i], 1));
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  const auto reply = raw.recv_frame();
  fa::DecodedResponse decoded;
  ASSERT_TRUE(fa::decode_response(reply, decoded).ok());
  EXPECT_EQ(decoded.request_id, 77u);
  ASSERT_TRUE(decoded.response.ok()) << decoded.response.status.detail;
  const auto* listed = std::get_if<fa::ListInstancesResponse>(&decoded.response.payload);
  ASSERT_NE(listed, nullptr);
  ASSERT_EQ(listed->instances.size(), 1u);
  EXPECT_EQ(listed->instances[0].name, "split-probe");
  // The drip-feed genuinely exercised reassembly across wakeups, not one
  // coalesced read (one wake covers at most a few coalesced bytes).
  EXPECT_GT(global_counter("fhg_socket_epoll_wakes_total"), wakes_before + 5);
  server.stop();
}

TEST(Transport, DisconnectMidFrameReapsTheConnectionCleanly) {
  fe::Engine engine;
  (void)engine.create_instance("reap-probe", fg::cycle(6), fe::InstanceSpec{});
  fs::Service service(engine, {.shards = 1});
  fa::SocketServer server(service, {});
  const std::uint64_t reaped_before = global_counter("fhg_socket_connections_reaped_total");

  {
    // Ship the header plus a sliver of payload, then vanish: the server
    // must notice EOF with a partial frame buffered and reap the
    // connection instead of waiting for a completion that never comes.
    RawClient raw(server.host(), server.port());
    const auto frame = fa::encode_request(1, fa::Request{fa::ListInstancesRequest{}});
    ASSERT_GT(frame.size(), fa::kFrameHeaderBytes + 1);
    raw.send_all(std::span<const std::uint8_t>(frame.data(), fa::kFrameHeaderBytes + 1));
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    raw.close();
  }
  // The reap is asynchronous (next wakeup on the owning worker): poll.
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (global_counter("fhg_socket_connections_reaped_total") == reaped_before &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_GT(global_counter("fhg_socket_connections_reaped_total"), reaped_before);

  // The server is unharmed: a fresh, well-behaved client gets served.
  fa::Client client(std::make_unique<fa::SocketTransport>(server.host(), server.port()));
  const auto listed = client.list_instances();
  ASSERT_TRUE(listed.ok()) << listed.status.detail;
  EXPECT_EQ(listed.value.size(), 1u);
  server.stop();
}

TEST(Transport, SlowReaderTriggersWriteBackpressureAndNothingIsLost) {
  fe::Engine engine;
  // A fat ListInstances response (many tenants, long names) times a deep
  // pipeline of unread requests overflows every kernel buffer in the path,
  // forcing the server through its EAGAIN → park → EPOLLOUT → resume arc.
  for (int i = 0; i < 192; ++i) {
    const std::string name =
        "backpressure-tenant-with-a-deliberately-long-name-" + std::to_string(i);
    ASSERT_NE(engine.create_instance(name, fg::cycle(4), fe::InstanceSpec{}), nullptr);
  }
  fs::Service service(engine, {.shards = 2});
  // Bound the server-side send buffer: the kernel's autotuned loopback
  // buffer grows to megabytes and would absorb the whole pipeline without
  // a single EAGAIN.
  fa::SocketServer server(service, {.send_buffer_bytes = 4096});
  const std::uint64_t stalls_before = global_counter("fhg_socket_write_stalls_total");

  constexpr std::size_t kPipelined = 160;
  RawClient raw(server.host(), server.port(), /*rcvbuf_bytes=*/4096);
  for (std::size_t i = 0; i < kPipelined; ++i) {
    raw.send_all(fa::encode_request(i + 1, fa::Request{fa::ListInstancesRequest{}}));
  }
  // Don't read yet: let the responses pile into the tiny receive window
  // until the server's writes genuinely stall.
  std::this_thread::sleep_for(std::chrono::milliseconds(200));
  EXPECT_GT(global_counter("fhg_socket_write_stalls_total"), stalls_before)
      << "the pipeline never overflowed the socket buffers";

  // Now drain: every response arrives intact, in submission order — parked
  // bytes were neither dropped nor reordered by the stall/resume cycle.
  for (std::size_t i = 0; i < kPipelined; ++i) {
    const auto reply = raw.recv_frame();
    fa::DecodedResponse decoded;
    ASSERT_TRUE(fa::decode_response(reply, decoded).ok()) << "reply " << i;
    ASSERT_EQ(decoded.request_id, i + 1);
    const auto* listed = std::get_if<fa::ListInstancesResponse>(&decoded.response.payload);
    ASSERT_NE(listed, nullptr) << "reply " << i;
    EXPECT_EQ(listed->instances.size(), 192u);
  }
  server.stop();
}

TEST(Transport, ManyIdleConnectionsServeInterleavedRequests) {
  fe::Engine engine;
  (void)engine.create_instance("idle-probe", fg::cycle(6), fe::InstanceSpec{});
  fs::Service service(engine, {.shards = 2});
  fa::SocketServer server(service, {});
  const std::uint64_t accepted_before = global_counter("fhg_socket_connections_total");

  // A small-scale model of the 10k CI run (sized for TSan): most
  // connections sit idle in the epoll set while a rotating few make
  // requests, so idle fds must cost nothing and never starve active ones.
  constexpr std::size_t kConnections = 96;
  std::vector<std::unique_ptr<fa::Client>> clients;
  clients.reserve(kConnections);
  for (std::size_t i = 0; i < kConnections; ++i) {
    clients.push_back(std::make_unique<fa::Client>(
        std::make_unique<fa::SocketTransport>(server.host(), server.port())));
  }
  // connect(2) completes out of the kernel backlog before the acceptor has
  // necessarily accept(2)ed, so the counter can lag the constructors: poll.
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (global_counter("fhg_socket_connections_total") < accepted_before + kConnections &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_GE(global_counter("fhg_socket_connections_total"), accepted_before + kConnections);
  for (std::size_t round = 0; round < 4; ++round) {
    for (std::size_t i = round; i < kConnections; i += 7) {
      const auto listed = clients[i]->list_instances();
      ASSERT_TRUE(listed.ok()) << "round " << round << " client " << i << ": "
                               << listed.status.detail;
      ASSERT_EQ(listed.value.size(), 1u);
      EXPECT_EQ(listed.value[0].name, "idle-probe");
    }
  }
  // Every connection — including ones idle through all four rounds — is
  // still live and serviceable.
  for (std::size_t i = 0; i < kConnections; ++i) {
    ASSERT_TRUE(clients[i]->list_instances().ok()) << "client " << i;
  }
  server.stop();
}

// ------------------------------------------------- reconnect and retry -----

TEST(Transport, SocketTransportReconnectsAcrossAServerBounce) {
  fe::Engine engine;
  (void)engine.create_instance("bounce-probe", fg::cycle(6), fe::InstanceSpec{});
  fs::Service service(engine, {.shards = 1, .queue_capacity = 4096, .start = true,
                               .backend_id = "bouncer"});
  auto first = std::make_unique<fa::SocketServer>(service, fa::SocketServerOptions{});
  const std::uint16_t port = first->port();
  fa::SocketTransport transport(first->host(), port);

  const auto frame = fa::encode_request(1, fa::ListInstancesRequest{});
  std::vector<std::uint8_t> reply_before;
  ASSERT_TRUE(transport.roundtrip(frame, reply_before).ok());

  // The bounce: the old process dies, a new one binds the same port
  // (SO_REUSEADDR).  The dead socket must fail typed, not hang or crash,
  // and one reconnect must fully heal the transport.
  first->stop();
  first.reset();
  std::vector<std::uint8_t> ignored;
  EXPECT_FALSE(transport.roundtrip(frame, ignored).ok());
  fa::SocketServer second(service, fa::SocketServerOptions{.port = port});
  ASSERT_TRUE(transport.reconnect().ok());
  std::vector<std::uint8_t> reply_after;
  ASSERT_TRUE(transport.roundtrip(frame, reply_after).ok());
  // Same service, same request id, same framing: byte-identical replies
  // prove the reassembler restarted clean (no half-frame leaked across).
  EXPECT_EQ(reply_before, reply_after);
  second.stop();
}

TEST(Transport, ClientRetryPolicyHealsABouncedConnectionTransparently) {
  fe::Engine engine;
  (void)engine.create_instance("retry-probe", fg::cycle(6), fe::InstanceSpec{});
  fs::Service service(engine, {.shards = 1, .queue_capacity = 4096, .start = true,
                               .backend_id = "bouncer"});
  auto first = std::make_unique<fa::SocketServer>(service, fa::SocketServerOptions{});
  const std::uint16_t port = first->port();
  const std::string host = first->host();

  fa::Client client(std::make_unique<fa::SocketTransport>(host, port));
  client.set_retry_policy({.max_retries = 3,
                           .initial_backoff = std::chrono::milliseconds(1),
                           .max_backoff = std::chrono::milliseconds(8)});
  ASSERT_TRUE(client.list_instances().ok());
  EXPECT_EQ(client.retries(), 0u) << "a healthy connection must not retry";

  // Bounce while the client holds a now-dead connection: the next call eats
  // the transport failure, reconnects, and succeeds without the caller ever
  // seeing an error.
  first->stop();
  first.reset();
  fa::SocketServer second(service, fa::SocketServerOptions{.port = port});
  const auto listed = client.list_instances();
  ASSERT_TRUE(listed.ok()) << listed.status.detail;
  ASSERT_EQ(listed.value.size(), 1u);
  EXPECT_EQ(listed.value[0].name, "retry-probe");
  EXPECT_GE(client.retries(), 1u);
  EXPECT_GE(client.reconnects(), 1u);

  // With nothing listening, the budget runs out into a typed failure — and
  // a later recovery is still reachable through the same client.
  second.stop();
  const auto while_down = client.list_instances();
  EXPECT_FALSE(while_down.ok());
  EXPECT_EQ(while_down.status.code, fa::StatusCode::kInternal);
  fa::SocketServer third(service, fa::SocketServerOptions{.port = port});
  ASSERT_TRUE(client.list_instances().ok());
  third.stop();
}
