// Tests for the transport layer: one protocol, two transports.  The seeded
// workload request stream must produce byte-identical response frames
// through the in-process transport and a real TCP loopback socket; lifecycle
// operations serialize through the owning shard's FIFO; every failure mode
// surfaces as a typed status through the Client.

#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <future>
#include <memory>
#include <string>
#include <variant>
#include <vector>

#include "fhg/api/client.hpp"
#include "fhg/api/codec.hpp"
#include "fhg/api/protocol.hpp"
#include "fhg/api/socket.hpp"
#include "fhg/api/transport.hpp"
#include "fhg/engine/engine.hpp"
#include "fhg/graph/generators.hpp"
#include "fhg/service/service.hpp"
#include "fhg/workload/scenario.hpp"

namespace fa = fhg::api;
namespace fe = fhg::engine;
namespace fg = fhg::graph;
namespace fs = fhg::service;
namespace fw = fhg::workload;

namespace {

fw::ScenarioSpec mixed_spec() {
  fw::ScenarioSpec spec;
  spec.family = fw::GraphFamily::kPowerLaw;
  spec.fleet = 24;
  spec.nodes = 12;
  spec.seed = 11;
  spec.horizon = 128;
  spec.aperiodic = 0.2;
  spec.dynamic_share = 0.4;
  spec.mutation = 0.2;
  return spec;
}

std::unique_ptr<fe::Engine> make_fleet(const fw::ScenarioSpec& spec) {
  auto engine = std::make_unique<fe::Engine>(fe::EngineOptions{.shards = 8, .threads = 2});
  fw::ScenarioGenerator(spec).populate(*engine);
  (void)engine->step_all(24);
  return engine;
}

/// The lifecycle coda appended to equivalence streams: every admin kind,
/// including a typed failure (the second erase).
std::vector<fa::Request> admin_cycle(const std::string& name) {
  return {
      fa::CreateInstanceRequest{name, 8, {{0, 1}, {1, 2}, {2, 3}}, fe::InstanceSpec{}},
      fa::IsHappyRequest{name, 1, 3},
      fa::NextGatheringRequest{name, 2, 0},
      fa::ListInstancesRequest{},
      fa::SnapshotRequest{},
      fa::EraseInstanceRequest{name},
      fa::EraseInstanceRequest{name},  // second erase: typed kNotFound
  };
}

}  // namespace

// ----------------------------------------------- transport equivalence -----

TEST(Transport, SocketAndInProcessProduceByteIdenticalResponses) {
  const fw::ScenarioSpec spec = mixed_spec();
  // Two identical fleets: mutations in the stream advance both in lockstep,
  // so every response frame — queries, mutation results, snapshots — must
  // match byte for byte.
  auto socket_engine = make_fleet(spec);
  auto inproc_engine = make_fleet(spec);
  fs::Service socket_service(*socket_engine, {.shards = 3});
  fs::Service inproc_service(*inproc_engine, {.shards = 3});
  fa::SocketServer server(socket_service, {});
  fa::SocketTransport socket_transport(server.host(), server.port());
  fa::InProcessTransport inproc_transport(inproc_service);

  const fw::ScenarioGenerator generator(spec);
  auto stream = generator.request_stream(600, 5);
  for (fa::Request& request : admin_cycle("equivalence-probe")) {
    stream.push_back(std::move(request));
  }
  std::size_t mutations = 0;
  for (std::size_t i = 0; i < stream.size(); ++i) {
    mutations += std::holds_alternative<fa::ApplyMutationsRequest>(stream[i]) ? 1 : 0;
    const auto frame = fa::encode_request(i + 1, stream[i]);
    std::vector<std::uint8_t> socket_reply;
    std::vector<std::uint8_t> inproc_reply;
    ASSERT_TRUE(socket_transport.roundtrip(frame, socket_reply).ok()) << i;
    ASSERT_TRUE(inproc_transport.roundtrip(frame, inproc_reply).ok()) << i;
    ASSERT_EQ(socket_reply, inproc_reply)
        << "request " << i << " (" << fa::request_kind_name(stream[i].index()) << ")";
  }
  EXPECT_GT(mutations, 0u) << "the equivalence stream must exercise the mutation path";
  server.stop();
}

TEST(Transport, ClientAnswersMatchDirectEngineOverTheSocket) {
  const fw::ScenarioSpec spec = mixed_spec();
  auto engine = make_fleet(spec);
  fs::Service service(*engine, {.shards = 2});
  fa::SocketServer server(service, {});
  fa::Client client(std::make_unique<fa::SocketTransport>(server.host(), server.port()));

  const fw::ScenarioGenerator generator(spec);
  for (const fa::Request& request : generator.request_stream(300, 9)) {
    if (const auto* happy = std::get_if<fa::IsHappyRequest>(&request)) {
      const auto served = client.is_happy(happy->instance, happy->node, happy->holiday);
      ASSERT_TRUE(served.ok()) << served.status.detail;
      EXPECT_EQ(served.value, engine->is_happy(happy->instance, happy->node, happy->holiday));
    } else if (const auto* next = std::get_if<fa::NextGatheringRequest>(&request)) {
      const auto served = client.next_gathering(next->instance, next->node, next->after);
      ASSERT_TRUE(served.ok()) << served.status.detail;
      EXPECT_EQ(served.value, engine->next_gathering(next->instance, next->node, next->after)
                                  .value_or(fe::kNoGathering));
    }
  }
  server.stop();
}

// ------------------------------------------------- lifecycle through FIFO --

TEST(Transport, LifecycleOpsSerializeThroughTheOwningShardFifo) {
  fe::Engine engine;
  // One shard, deferred start: the FIFO order is exactly submission order,
  // so the queries interleaved with create/erase prove the lifecycle ops
  // ride the same queue (a bypass would see them before the create).
  fs::Service service(engine, {.shards = 1, .queue_capacity = 64, .start = false});
  std::vector<fa::Response> responses;
  std::vector<std::future<fa::Response>> pending;
  const std::string name = "fifo-probe";
  pending.push_back(service.submit(fa::IsHappyRequest{name, 0, 1}));   // before create
  pending.push_back(service.submit(
      fa::CreateInstanceRequest{name, 6, {{0, 1}, {2, 3}}, fe::InstanceSpec{}}));
  pending.push_back(service.submit(fa::IsHappyRequest{name, 0, 1}));   // after create
  pending.push_back(service.submit(fa::EraseInstanceRequest{name}));
  pending.push_back(service.submit(fa::IsHappyRequest{name, 0, 1}));   // after erase
  service.start();
  service.drain();
  for (auto& future : pending) {
    responses.push_back(future.get());
  }
  ASSERT_EQ(responses.size(), 5u);
  EXPECT_EQ(responses[0].status.code, fa::StatusCode::kNotFound) << "query before create";
  EXPECT_TRUE(responses[1].ok()) << responses[1].status.detail;
  EXPECT_TRUE(responses[2].ok()) << "query after create must see the tenant";
  EXPECT_TRUE(responses[3].ok()) << responses[3].status.detail;
  EXPECT_EQ(responses[4].status.code, fa::StatusCode::kNotFound) << "query after erase";
  EXPECT_EQ(service.metrics().totals().admin, 2u);
}

TEST(Transport, AdmissionRejectsArriveAsTypedResponses) {
  fe::Engine engine;
  fs::Service service(engine, {.shards = 1, .queue_capacity = 1, .start = false});
  auto accepted = service.submit(fa::ListInstancesRequest{});
  // The queue holds one request; the second gets a synchronous typed reject.
  auto refused = service.submit(fa::ListInstancesRequest{});
  ASSERT_EQ(refused.wait_for(std::chrono::seconds(0)), std::future_status::ready);
  EXPECT_EQ(refused.get().status.code, fa::StatusCode::kQueueFull);
  service.drain();
  EXPECT_TRUE(accepted.get().ok());
  auto stopped = service.submit(fa::ListInstancesRequest{});
  EXPECT_EQ(stopped.get().status.code, fa::StatusCode::kStopped);
}

// ------------------------------------------------------- typed failures ----

TEST(Transport, EveryFailureModeSurfacesTypedThroughTheClient) {
  fe::Engine engine;
  (void)engine.create_instance("static", fg::cycle(8), fe::InstanceSpec{});
  fs::Service service(engine, {.shards = 2});
  fa::Client client(std::make_unique<fa::InProcessTransport>(service));

  EXPECT_EQ(client.is_happy("missing", 0, 1).status.code, fa::StatusCode::kNotFound);
  EXPECT_EQ(client.is_happy("static", 999, 1).status.code, fa::StatusCode::kInvalidArgument);
  EXPECT_EQ(client.apply_mutations("static", {fhg::dynamic::insert_edge_command(0, 2)})
                .status.code,
            fa::StatusCode::kFailedPrecondition);
  EXPECT_EQ(client.apply_mutations("missing", {fhg::dynamic::insert_edge_command(0, 2)})
                .status.code,
            fa::StatusCode::kNotFound);
  EXPECT_EQ(client.create_instance("static", 4, {}, fe::InstanceSpec{}).code,
            fa::StatusCode::kAlreadyExists);
  EXPECT_EQ(client.create_instance("self-loop", 4, {{1, 1}}, fe::InstanceSpec{}).code,
            fa::StatusCode::kInvalidArgument);
  EXPECT_EQ(client.erase_instance("missing").code, fa::StatusCode::kNotFound);
  EXPECT_EQ(client.restore({0xBA, 0xD0}).status.code, fa::StatusCode::kInvalidArgument);
  // The failed restore must not have clobbered the tenancy.
  const auto listed = client.list_instances();
  ASSERT_TRUE(listed.ok());
  ASSERT_EQ(listed.value.size(), 1u);
  EXPECT_EQ(listed.value[0].name, "static");
}

TEST(Transport, MisFramedBytesEarnATypedDecodeErrorOverTheSocket) {
  fe::Engine engine;
  fs::Service service(engine, {.shards = 1});
  fa::SocketServer server(service, {});
  fa::SocketTransport transport(server.host(), server.port());
  // Ship garbage where a frame should be: the server answers once, typed,
  // then hangs up (resynchronization without frame boundaries is hopeless).
  const std::vector<std::uint8_t> garbage{'n', 'o', 't', ' ', 'a', ' ', 'f', 'r', 'a', 'm'};
  std::vector<std::uint8_t> reply;
  ASSERT_TRUE(transport.roundtrip(garbage, reply).ok());
  fa::DecodedResponse decoded;
  ASSERT_TRUE(fa::decode_response(reply, decoded).ok());
  EXPECT_EQ(decoded.request_id, 0u);  // unreadable prologue: addressed to 0
  EXPECT_EQ(decoded.response.status.code, fa::StatusCode::kDecodeError);
  server.stop();
}

TEST(Transport, VersionMismatchIsRefusedTypedEndToEnd) {
  fe::Engine engine;
  (void)engine.create_instance("static", fg::cycle(8), fe::InstanceSpec{});
  fs::Service service(engine, {.shards = 1});
  fa::SocketServer server(service, {});
  // A client from the future: every call comes back kUnsupportedVersion.
  fa::Client client(std::make_unique<fa::SocketTransport>(server.host(), server.port()),
                    /*version=*/9);
  const auto result = client.is_happy("static", 0, 1);
  EXPECT_EQ(result.status.code, fa::StatusCode::kUnsupportedVersion);
  server.stop();
}

// ------------------------------------------------------ snapshot restore ---

TEST(Transport, SnapshotRestoresIntoAFreshServerOverTheWire) {
  const fw::ScenarioSpec spec = mixed_spec();
  auto source_engine = make_fleet(spec);
  fs::Service source_service(*source_engine, {.shards = 2});
  fa::Client source(std::make_unique<fa::InProcessTransport>(source_service));

  fe::Engine target_engine;
  fs::Service target_service(target_engine, {.shards = 2});
  fa::SocketServer server(target_service, {});
  fa::Client target(std::make_unique<fa::SocketTransport>(server.host(), server.port()));

  const auto snapshot = source.snapshot();
  ASSERT_TRUE(snapshot.ok()) << snapshot.status.detail;
  const auto restored = target.restore(snapshot.value);
  ASSERT_TRUE(restored.ok()) << restored.status.detail;
  EXPECT_EQ(restored.value, source_engine->num_instances());

  // The round trip is byte-identical, as the snapshot format promises.
  // (Taken before any queries: answering a query *extends* an aperiodic
  // tenant's replayed prefix, legitimately advancing its holiday counter.)
  const auto again = target.snapshot();
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again.value, snapshot.value);

  // The restored tenancy answers the seeded query stream identically.
  const fw::ScenarioGenerator generator(spec);
  for (const fa::Request& request : generator.request_stream(200, 3)) {
    if (const auto* happy = std::get_if<fa::IsHappyRequest>(&request)) {
      const auto served = target.is_happy(happy->instance, happy->node, happy->holiday);
      ASSERT_TRUE(served.ok()) << served.status.detail;
      EXPECT_EQ(served.value,
                source_engine->is_happy(happy->instance, happy->node, happy->holiday));
    }
  }
  server.stop();
}

// ------------------------------------------------------------- GetStats ----

TEST(Transport, GetStatsSnapshotsAreByteIdenticalAcrossTransports) {
  // Two identical fleets served the same request stream over the socket and
  // in process must expose byte-identical stats snapshots: the engine
  // registry is per-engine and deterministic under a deterministic workload,
  // and the timing-dependent parts (histograms, traces) are excluded by the
  // request flags.  Transport-layer metrics live on the process-global
  // registry precisely so they cannot leak in here.
  const fw::ScenarioSpec spec = mixed_spec();
  auto socket_engine = make_fleet(spec);
  auto inproc_engine = make_fleet(spec);
  fs::Service socket_service(*socket_engine, {.shards = 3});
  fs::Service inproc_service(*inproc_engine, {.shards = 3});
  fa::SocketServer server(socket_service, {});
  fa::SocketTransport socket_transport(server.host(), server.port());
  fa::InProcessTransport inproc_transport(inproc_service);

  const fw::ScenarioGenerator generator(spec);
  auto stream = generator.request_stream(400, 5);
  for (fa::Request& request : admin_cycle("stats-probe")) {
    stream.push_back(std::move(request));
  }
  stream.push_back(fa::GetStatsRequest{.include_histograms = false, .include_traces = false});
  for (std::size_t i = 0; i < stream.size(); ++i) {
    const auto frame = fa::encode_request(i + 1, stream[i]);
    std::vector<std::uint8_t> socket_reply;
    std::vector<std::uint8_t> inproc_reply;
    ASSERT_TRUE(socket_transport.roundtrip(frame, socket_reply).ok()) << i;
    ASSERT_TRUE(inproc_transport.roundtrip(frame, inproc_reply).ok()) << i;
    ASSERT_EQ(socket_reply, inproc_reply)
        << "request " << i << " (" << fa::request_kind_name(stream[i].index()) << ")";
  }
  // The final frames really were stats: decode one and spot-check content.
  const auto frame = fa::encode_request(9999, fa::Request{fa::GetStatsRequest{
                                                  .include_histograms = false,
                                                  .include_traces = false}});
  std::vector<std::uint8_t> reply;
  ASSERT_TRUE(socket_transport.roundtrip(frame, reply).ok());
  fa::DecodedResponse decoded;
  ASSERT_TRUE(fa::decode_response(reply, decoded).ok());
  const auto* stats = std::get_if<fa::GetStatsResponse>(&decoded.response.payload);
  ASSERT_NE(stats, nullptr);
  EXPECT_FALSE(stats->metrics.empty());
  EXPECT_TRUE(stats->traces.empty());  // excluded by the flag
  for (const auto& sample : stats->metrics) {
    EXPECT_NE(sample.kind, fhg::obs::MetricKind::kHistogram) << sample.name;
    EXPECT_EQ(sample.name.compare(0, 4, "fhg_"), 0) << sample.name;
  }
  server.stop();
}

TEST(Transport, StatsCountersAreMonotoneAcrossALoadBurst) {
  const fw::ScenarioSpec spec = mixed_spec();
  auto engine = make_fleet(spec);
  fs::Service service(*engine, {.shards = 2});
  fa::SocketServer server(service, {});
  fa::Client client(std::make_unique<fa::SocketTransport>(server.host(), server.port()));

  const auto counter_value = [](const fa::GetStatsResponse& stats, std::string_view name) {
    std::uint64_t sum = 0;
    for (const auto& sample : stats.metrics) {
      // Sum across shard labels: "name" or "name{shard=...}".
      const std::string_view sample_name(sample.name);
      if (sample_name == name || (sample_name.size() > name.size() &&
                                  sample_name.substr(0, name.size()) == name &&
                                  sample_name[name.size()] == '{')) {
        sum += sample.value;
      }
    }
    return sum;
  };

  auto before = client.get_stats();
  ASSERT_TRUE(before.ok()) << before.status.detail;
  const fw::ScenarioGenerator generator(spec);
  std::size_t queries = 0;
  for (const fa::Request& request : generator.request_stream(200, 21)) {
    if (const auto* happy = std::get_if<fa::IsHappyRequest>(&request)) {
      ++queries;
      ASSERT_TRUE(client.is_happy(happy->instance, happy->node, happy->holiday).ok());
    }
  }
  ASSERT_GT(queries, 0u);
  auto after = client.get_stats();
  ASSERT_TRUE(after.ok()) << after.status.detail;

  for (const std::string_view name :
       {"fhg_service_accepted_total", "fhg_service_queries_total",
        "fhg_engine_batch_probes_total"}) {
    const std::uint64_t was = counter_value(before.value, name);
    const std::uint64_t now = counter_value(after.value, name);
    EXPECT_GE(now, was + queries) << name;
  }
  // Histograms ride along by default and the burst recorded latencies.
  const auto latency = std::find_if(
      after.value.metrics.begin(), after.value.metrics.end(), [](const auto& sample) {
        return sample.kind == fhg::obs::MetricKind::kHistogram &&
               sample.name.find("fhg_service_latency_us") != std::string::npos &&
               sample.histogram.total() > 0;
      });
  EXPECT_NE(latency, after.value.metrics.end());
  server.stop();
}

TEST(Transport, ClientTraceIdsReachTheSlowestTraceRing) {
  const fw::ScenarioSpec spec = mixed_spec();
  auto engine = make_fleet(spec);
  fs::Service service(*engine, {.shards = 2});
  fa::SocketServer server(service, {});
  fa::Client client(std::make_unique<fa::SocketTransport>(server.host(), server.port()));
  client.set_trace_base(0x50000000ULL);  // tracing is on by default

  const fw::ScenarioGenerator generator(spec);
  std::size_t sent = 0;
  for (const fa::Request& request : generator.request_stream(100, 33)) {
    if (const auto* happy = std::get_if<fa::IsHappyRequest>(&request)) {
      ++sent;
      ASSERT_TRUE(client.is_happy(happy->instance, happy->node, happy->holiday).ok());
    }
  }
  ASSERT_GT(sent, 0u);
  auto stats = client.get_stats();
  ASSERT_TRUE(stats.ok()) << stats.status.detail;
  ASSERT_FALSE(stats.value.traces.empty());
  for (const auto& trace : stats.value.traces) {
    // Every trace was minted by this client: base + request id, echoed back.
    EXPECT_GT(trace.trace_id, 0x50000000ULL);
    EXPECT_EQ(trace.trace_id - 0x50000000ULL, trace.request_id);
    EXPECT_LT(trace.kind, fa::kNumRequestKinds);
    EXPECT_GE(trace.total_us, trace.serve_us);
  }
  // Disabling tracing stops new entries: the ring size stabilizes.
  client.set_tracing(false);
  const std::size_t ring_size = stats.value.traces.size();
  EXPECT_EQ(service.traces().snapshot().size(), ring_size);  // direct accessor agrees
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(client.list_instances().ok());
  }
  auto again = client.get_stats();
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again.value.traces.size(), ring_size);
  server.stop();
}
