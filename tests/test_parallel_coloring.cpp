// Tests for the parallel speculative Jones–Plassmann coloring: validity
// oracles across graph families and seeds, thread-count independence (the
// property the engine's snapshot/replay machinery rests on), partial
// recolors against a fixed boundary, and the engine integration — crossover
// builds, bulk mutation batches, snapshot v3 round trips, and the v2
// downgrade guard.

#include <gtest/gtest.h>

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "fhg/coloring/coloring.hpp"
#include "fhg/coloring/greedy.hpp"
#include "fhg/coloring/parallel_jp.hpp"
#include "fhg/dynamic/adapter.hpp"
#include "fhg/dynamic/mutation.hpp"
#include "fhg/engine/engine.hpp"
#include "fhg/engine/snapshot.hpp"
#include "fhg/graph/generators.hpp"
#include "fhg/graph/graph.hpp"
#include "fhg/parallel/thread_pool.hpp"

namespace fc = fhg::coloring;
namespace fdy = fhg::dynamic;
namespace fe = fhg::engine;
namespace fg = fhg::graph;
namespace fp = fhg::parallel;

namespace {

/// The family sweep the validity oracle runs over.
std::vector<std::pair<std::string, fg::Graph>> family_sweep(std::uint64_t seed) {
  std::vector<std::pair<std::string, fg::Graph>> graphs;
  graphs.emplace_back("power-law", fg::barabasi_albert(600, 3, seed));
  graphs.emplace_back("geometric", fg::random_geometric(600, 0.08, seed));
  graphs.emplace_back("gnp", fg::gnp(600, 0.02, seed));
  graphs.emplace_back("ring", fg::cycle(64));
  graphs.emplace_back("grid", fg::grid2d(12, 9));
  return graphs;
}

fg::NodeId max_degree(const fg::Graph& g) {
  fg::NodeId best = 0;
  for (fg::NodeId v = 0; v < g.num_nodes(); ++v) {
    best = std::max(best, g.degree(v));
  }
  return best;
}

}  // namespace

// ------------------------------------------------------------ validity -----

TEST(ParallelJp, ProperCompleteDegreeBoundedAcrossFamiliesAndSeeds) {
  for (const std::uint64_t seed : {1ULL, 7ULL, 42ULL}) {
    for (const auto& [name, g] : family_sweep(seed)) {
      fc::JpOptions options;
      options.seed = seed;
      fc::JpStats stats;
      const fc::Coloring colors = fc::parallel_jp_color(g, options, &stats);
      EXPECT_TRUE(colors.complete()) << name << " seed " << seed;
      EXPECT_TRUE(colors.proper(g)) << name << " seed " << seed;
      EXPECT_TRUE(colors.degree_bounded(g)) << name << " seed " << seed;
      EXPECT_EQ(stats.colored, g.num_nodes()) << name << " seed " << seed;
      EXPECT_GE(stats.rounds, 1U) << name << " seed " << seed;
    }
  }
}

TEST(ParallelJp, PaletteBoundedLikeGreedy) {
  // Both passes promise col(v) <= deg(v)+1, hence at most Δ+1 colors — the
  // palette bound the paper's schedule derivation needs.  Neither dominates
  // the other per graph; the oracle checks the shared bound.
  for (const std::uint64_t seed : {3ULL, 11ULL}) {
    for (const auto& [name, g] : family_sweep(seed)) {
      const fc::Coloring jp = fc::parallel_jp_color(g, {.seed = seed});
      const fc::Coloring greedy = fc::greedy_color(g, fc::Order::kLargestFirst);
      const fc::Color bound = max_degree(g) + 1;
      EXPECT_LE(jp.max_color(), bound) << name;
      EXPECT_LE(greedy.max_color(), bound) << name;
    }
  }
}

TEST(ParallelJp, EmptyAndTinyGraphs) {
  const fc::Coloring none = fc::parallel_jp_color(fg::Graph(0));
  EXPECT_EQ(none.num_nodes(), 0U);
  EXPECT_TRUE(none.complete());

  const fg::Graph lone(1);
  const fc::Coloring one = fc::parallel_jp_color(lone);
  EXPECT_EQ(one.color(0), 1U);

  const fc::Coloring pair = fc::parallel_jp_color(fg::clique(2));
  EXPECT_TRUE(pair.proper(fg::clique(2)));
}

// ------------------------------------- thread-count independence -----------

TEST(ParallelJp, IdenticalColoringAtAnyWorkerCount) {
  const fg::Graph g = fg::barabasi_albert(5000, 3, 13);
  fp::ThreadPool one(1);
  fp::ThreadPool two(2);
  fp::ThreadPool eight(8);

  fc::JpOptions options;
  options.seed = 99;
  fc::JpStats stats_one;
  fc::JpStats stats_two;
  fc::JpStats stats_eight;

  options.pool = &one;
  const fc::Coloring a = fc::parallel_jp_color(g, options, &stats_one);
  options.pool = &two;
  const fc::Coloring b = fc::parallel_jp_color(g, options, &stats_two);
  options.pool = &eight;
  // A tiny chunk forces many concurrent claims per round — the adversarial
  // schedule for determinism.
  options.chunk = 64;
  const fc::Coloring c = fc::parallel_jp_color(g, options, &stats_eight);

  for (fg::NodeId v = 0; v < g.num_nodes(); ++v) {
    ASSERT_EQ(a.color(v), b.color(v)) << "node " << v;
    ASSERT_EQ(a.color(v), c.color(v)) << "node " << v;
  }
  // Even the per-round accounting is a pure function of (graph, seed).
  EXPECT_EQ(stats_one, stats_two);
  EXPECT_EQ(stats_one, stats_eight);
}

TEST(ParallelJp, SeedSelectsTheColoring) {
  const fg::Graph g = fg::gnp(400, 0.03, 5);
  const fc::Coloring a = fc::parallel_jp_color(g, {.seed = 1});
  const fc::Coloring b = fc::parallel_jp_color(g, {.seed = 2});
  EXPECT_TRUE(a.proper(g));
  EXPECT_TRUE(b.proper(g));
  bool differs = false;
  for (fg::NodeId v = 0; v < g.num_nodes() && !differs; ++v) {
    differs = a.color(v) != b.color(v);
  }
  EXPECT_TRUE(differs);  // different priorities, different (valid) colorings
}

TEST(ParallelJp, PriorityIsPureFunctionOfSeedAndNode) {
  EXPECT_EQ(fc::jp_priority(1, 7), fc::jp_priority(1, 7));
  EXPECT_NE(fc::jp_priority(1, 7), fc::jp_priority(2, 7));
  EXPECT_NE(fc::jp_priority(1, 7), fc::jp_priority(1, 8));
}

// ------------------------------------------------------ partial recolor -----

TEST(ParallelJpRecolor, RepairsTargetsAgainstFixedBoundary) {
  const fg::Graph g = fg::barabasi_albert(300, 3, 21);
  fc::Coloring colors = fc::parallel_jp_color(g, {.seed = 4});
  const fc::Coloring before = colors;

  std::vector<fg::NodeId> targets;
  for (fg::NodeId v = 0; v < g.num_nodes(); v += 7) {
    targets.push_back(v);
    colors.set_color(v, fc::kUncolored);
  }
  fc::JpStats stats;
  fc::parallel_jp_recolor(g, colors, targets, {.seed = 4}, &stats);

  EXPECT_TRUE(colors.complete());
  EXPECT_TRUE(colors.proper(g));
  EXPECT_EQ(stats.colored, targets.size());
  for (const fg::NodeId v : targets) {
    EXPECT_LE(colors.color(v), g.degree(v) + 1) << "target " << v;
  }
  // Non-targets are the fixed boundary: untouched by construction.
  std::size_t t = 0;
  for (fg::NodeId v = 0; v < g.num_nodes(); ++v) {
    if (t < targets.size() && targets[t] == v) {
      ++t;
      continue;
    }
    ASSERT_EQ(colors.color(v), before.color(v)) << "boundary node " << v;
  }
}

TEST(ParallelJpRecolor, RejectsMalformedTargets) {
  const fg::Graph g = fg::cycle(8);
  fc::Coloring colors = fc::parallel_jp_color(g);

  // A still-colored target.
  EXPECT_THROW(fc::parallel_jp_recolor(g, colors, std::vector<fg::NodeId>{3}, {}),
               std::invalid_argument);
  colors.set_color(3, fc::kUncolored);
  colors.set_color(5, fc::kUncolored);
  // Unsorted and duplicate target lists.
  EXPECT_THROW(fc::parallel_jp_recolor(g, colors, std::vector<fg::NodeId>{5, 3}, {}),
               std::invalid_argument);
  EXPECT_THROW(fc::parallel_jp_recolor(g, colors, std::vector<fg::NodeId>{3, 3}, {}),
               std::invalid_argument);
  // Out of range.
  EXPECT_THROW(fc::parallel_jp_recolor(g, colors, std::vector<fg::NodeId>{3, 99}, {}),
               std::invalid_argument);
  // The well-formed call repairs both.
  fc::parallel_jp_recolor(g, colors, std::vector<fg::NodeId>{3, 5}, {});
  EXPECT_TRUE(colors.proper(g));
}

// --------------------------------------------------- engine integration -----

namespace {

fe::InstanceSpec dynamic_spec(std::uint32_t crossover, std::uint32_t bulk_threshold) {
  fe::InstanceSpec spec;
  spec.kind = fe::SchedulerKind::kDynamicPrefixCode;
  spec.parallel_crossover = crossover;
  spec.bulk_threshold = bulk_threshold;
  return spec;
}

/// A batch big enough to clear `bulk_threshold`, mixing inserts that force
/// conflicts with erases and node additions.
std::vector<fdy::MutationCommand> storm_batch(const fg::Graph& g, std::size_t count) {
  std::vector<fdy::MutationCommand> commands;
  const fg::NodeId n = g.num_nodes();
  for (std::size_t i = 0; i < count; ++i) {
    const auto u = static_cast<fg::NodeId>((3 * i) % n);
    const auto v = static_cast<fg::NodeId>((3 * i + 1 + i % 5) % n);
    if (u == v) {
      continue;
    }
    if (i % 4 == 3) {
      commands.push_back(fdy::erase_edge_command(u, v));
    } else {
      commands.push_back(fdy::insert_edge_command(u, v));
    }
  }
  commands.push_back(fdy::add_node_command());
  return commands;
}

}  // namespace

TEST(EngineParallelColoring, CrossoverBuildsWithJonesPlassmannAndCounts) {
  fe::Engine eng;
  const fg::Graph g = fg::barabasi_albert(256, 3, 9);
  // Crossover below the node count: the build must take the parallel pass.
  auto instance = eng.create_instance("jp", g, dynamic_spec(/*crossover=*/64, 0));
  EXPECT_TRUE(instance->build_stats().parallel);
  EXPECT_GE(instance->build_stats().jp.rounds, 1U);
  EXPECT_EQ(instance->build_stats().jp.colored, g.num_nodes());
  EXPECT_EQ(eng.metrics().counter("fhg_coloring_build_parallel_total").value(), 1U);

  // Above the node count: serial greedy, as before the crossover existed.
  auto greedy = eng.create_instance("greedy", g, dynamic_spec(/*crossover=*/1024, 0));
  EXPECT_FALSE(greedy->build_stats().parallel);
  EXPECT_EQ(eng.metrics().counter("fhg_coloring_build_serial_total").value(), 1U);
}

TEST(EngineParallelColoring, BulkBatchRoutesAndReportsStats) {
  fe::Engine eng;
  const fg::Graph g = fg::gnp(120, 0.06, 3);
  (void)eng.create_instance("dyn", g, dynamic_spec(/*crossover=*/16, /*bulk_threshold=*/8));
  (void)eng.step_all(4);

  // Below the threshold: the PR-3 per-command path.
  const auto small = eng.apply_mutations(
      "dyn", std::vector{fdy::insert_edge_command(0, 1), fdy::erase_edge_command(2, 3)});
  EXPECT_FALSE(small.bulk);
  EXPECT_EQ(eng.metrics().counter("fhg_coloring_inplace_batches_total").value(), 1U);

  // At the threshold: one bulk repair pass, JP stats surfaced.
  const auto big = eng.apply_mutations("dyn", storm_batch(g, 32));
  EXPECT_TRUE(big.bulk);
  EXPECT_GT(big.applied, 0U);
  EXPECT_EQ(eng.metrics().counter("fhg_coloring_bulk_batches_total").value(), 1U);
  EXPECT_EQ(eng.metrics().counter("fhg_coloring_parallel_rounds_total").value() > 0,
            big.jp_rounds > 0);

  // The live coloring stays proper through the bulk path.
  const auto audit = eng.audit("dyn");
  EXPECT_TRUE(audit.bounds_respected);
}

TEST(EngineParallelColoring, SnapshotV3RoundTripIsByteIdenticalThroughBulk) {
  fe::Engine eng;
  const fg::Graph g = fg::barabasi_albert(200, 3, 17);
  (void)eng.create_instance("dyn", g, dynamic_spec(/*crossover=*/32, /*bulk_threshold=*/8));
  (void)eng.step_all(8);
  (void)eng.apply_mutations("dyn", std::vector{fdy::insert_edge_command(1, 2)});
  (void)eng.apply_mutations("dyn", storm_batch(g, 24));  // bulk segment mid-log
  (void)eng.step_all(8);

  const auto bytes = eng.snapshot();
  fe::Engine copy;
  copy.load_snapshot(bytes);
  EXPECT_EQ(copy.snapshot(), bytes);  // canonical: restore re-encodes exactly

  // The restored tenant answers every probe identically — the bulk segment
  // replayed through the bulk path, not per command.
  auto original = eng.find("dyn");
  auto restored = copy.find("dyn");
  ASSERT_NE(restored, nullptr);
  ASSERT_EQ(original->num_nodes(), restored->num_nodes());
  for (fg::NodeId v = 0; v < original->num_nodes(); ++v) {
    for (std::uint64_t t = 1; t <= 64; ++t) {
      ASSERT_EQ(original->is_happy(v, t), restored->is_happy(v, t))
          << "node " << v << " holiday " << t;
    }
  }
}

TEST(EngineParallelColoring, V2WriteRefusesParallelBuildsAndBulkBatches) {
  // A JP-built instance cannot be written as v2: the format has no crossover
  // field, so a restore would rebuild greedy — a different coloring.
  fe::InstanceRegistry jp_registry(2);
  (void)jp_registry.create("jp", fg::barabasi_albert(128, 3, 5), dynamic_spec(32, 0));
  EXPECT_THROW((void)fe::snapshot_registry(jp_registry, fe::kSnapshotVersionV2),
               std::invalid_argument);

  // A greedy-built tenant that applied a bulk batch is just as lossy in v2:
  // the replay would run per-command and land elsewhere.
  fe::Engine eng;
  const fg::Graph g = fg::gnp(100, 0.05, 2);
  (void)eng.create_instance("bulk", g, dynamic_spec(/*crossover=*/0, /*bulk_threshold=*/4));
  (void)eng.apply_mutations("bulk", storm_batch(g, 16));
  const auto v3 = eng.snapshot();
  fe::Engine copy;
  copy.load_snapshot(v3);
  EXPECT_EQ(copy.snapshot(), v3);

  fe::InstanceRegistry bulk_registry(2);
  fe::restore_registry(bulk_registry, v3);
  EXPECT_THROW((void)fe::snapshot_registry(bulk_registry, fe::kSnapshotVersionV2),
               std::invalid_argument);
}

TEST(EngineParallelColoring, V2FormatLogsStillLoad) {
  // A tenancy with neither JP builds nor bulk batches writes v2 exactly as
  // before; v2 bytes restore to the identical tenancy (crossover and bulk
  // read back as 0 — the paths those tenants actually took).
  fe::InstanceRegistry registry(2);
  const fg::Graph g = fg::cycle(12);
  (void)registry.create("dyn", g, dynamic_spec(/*crossover=*/0, /*bulk_threshold=*/0));
  auto live = registry.find("dyn");
  ASSERT_NE(live, nullptr);

  const auto v2 = fe::snapshot_registry(registry, fe::kSnapshotVersionV2);
  fe::InstanceRegistry out(2);
  fe::restore_registry(out, v2);
  auto restored = out.find("dyn");
  ASSERT_NE(restored, nullptr);
  EXPECT_EQ(restored->spec().parallel_crossover, 0U);
  EXPECT_EQ(restored->spec().bulk_threshold, 0U);
  EXPECT_EQ(fe::snapshot_registry(out, fe::kSnapshotVersionV2), v2);
}

TEST(AdapterBulk, BulkAndPerCommandPathsBothLandProper) {
  const fg::Graph g = fg::barabasi_albert(150, 3, 8);
  const auto batch = storm_batch(g, 20);

  fdy::DynamicOptions bulk_options;
  bulk_options.bulk_threshold = 1;  // everything bulks
  fdy::DynamicSchedulerAdapter bulk(g, bulk_options);
  const fdy::BatchResult bulk_result = bulk.apply_batch(batch);
  EXPECT_TRUE(bulk_result.bulk);
  EXPECT_TRUE(bulk.scheduler().coloring_proper());
  EXPECT_EQ(bulk.batch_records().size(), 1U);
  EXPECT_TRUE(bulk.batch_records().front().bulk);
  EXPECT_EQ(bulk.batch_records().front().size, bulk_result.applied);

  fdy::DynamicOptions serial_options;  // threshold 0: never bulks
  fdy::DynamicSchedulerAdapter serial(g, serial_options);
  const fdy::BatchResult serial_result = serial.apply_batch(batch);
  EXPECT_FALSE(serial_result.bulk);
  EXPECT_TRUE(serial.scheduler().coloring_proper());
  // Same commands, same topology outcome — only the repair policy differs.
  EXPECT_EQ(bulk_result.applied, serial_result.applied);
  EXPECT_EQ(bulk.graph().num_edges(), serial.graph().num_edges());
}

TEST(AdapterBulk, ReplayRoutesSegmentsThroughRecordedPaths) {
  const fg::Graph g = fg::gnp(90, 0.07, 6);
  fdy::DynamicOptions options;
  options.bulk_threshold = 8;
  fdy::DynamicSchedulerAdapter live(g, options);

  (void)live.apply_batch(std::vector{fdy::insert_edge_command(0, 1),
                                     fdy::insert_edge_command(1, 2)});  // per-command
  (void)live.apply_batch(storm_batch(g, 16));                          // bulk
  (void)live.apply_batch(std::vector{fdy::erase_edge_command(0, 1)});  // per-command

  // Replay with records: identical coloring.  A *threshold-blind* replay of
  // the same log must be routed by the records, not the current threshold —
  // use a replica whose threshold would have bulked everything.
  fdy::DynamicOptions replica_options;
  replica_options.bulk_threshold = 1;
  fdy::DynamicSchedulerAdapter replica(g, replica_options);
  replica.replay_log(live.mutation_log(), live.batch_records());

  for (fg::NodeId v = 0; v < live.graph().num_nodes(); ++v) {
    ASSERT_EQ(live.scheduler().slot_of(v).period(), replica.scheduler().slot_of(v).period())
        << "node " << v;
    ASSERT_EQ(live.scheduler().slot_of(v).first_holiday(),
              replica.scheduler().slot_of(v).first_holiday())
        << "node " << v;
  }
  EXPECT_EQ(replica.batch_records(), live.batch_records());

  // Record sizes that do not cover the log are rejected up front.
  fdy::DynamicSchedulerAdapter fresh(g, replica_options);
  const std::vector<fdy::BatchRecord> bad{{1, false}};
  EXPECT_THROW(fresh.replay_log(live.mutation_log(), bad), std::invalid_argument);
}
