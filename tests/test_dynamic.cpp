// Tests for fhg::dynamic — the §6 dynamic setting: insertions force targeted
// recoloring, deletions trigger (optional) rate repair, and the schedule
// stays conflict-free throughout.

#include <gtest/gtest.h>

#include "fhg/dynamic/dynamic_scheduler.hpp"
#include "fhg/graph/dynamic_graph.hpp"
#include "fhg/graph/generators.hpp"
#include "fhg/graph/properties.hpp"
#include "fhg/parallel/rng.hpp"

namespace fg = fhg::graph;
namespace fdy = fhg::dynamic;
namespace fcd = fhg::coding;

namespace {

fg::DynamicGraph dynamic_from(const fg::Graph& g) { return fg::DynamicGraph(g); }

}  // namespace

TEST(DynamicScheduler, StartsProperAndPeriodic) {
  fg::DynamicGraph g = dynamic_from(fg::gnp(60, 0.08, 3));
  fdy::DynamicPrefixCodeScheduler scheduler(g);
  EXPECT_TRUE(scheduler.coloring_proper());
  for (fg::NodeId v = 0; v < g.num_nodes(); ++v) {
    EXPECT_EQ(scheduler.period_of(v),
              std::uint64_t{1} << fcd::elias_omega_length(scheduler.color_of(v)));
  }
}

TEST(DynamicScheduler, InsertionWithDistinctColorsIsFree) {
  fg::DynamicGraph g(4);
  fdy::DynamicPrefixCodeScheduler scheduler(g);
  // All isolated → everyone has color 1.  Connect 0-1: a recolor must occur.
  const auto first = scheduler.insert_edge(0, 1);
  ASSERT_TRUE(first.has_value());
  EXPECT_TRUE(scheduler.coloring_proper());
  // Now connect 2-3 (both color 1): recolor again, but inserting 0-2 after
  // that is free if their colors already differ.
  static_cast<void>(scheduler.insert_edge(2, 3));
  const bool differ = scheduler.color_of(0) != scheduler.color_of(2);
  const auto maybe = scheduler.insert_edge(0, 2);
  EXPECT_EQ(maybe.has_value(), !differ);
  EXPECT_TRUE(scheduler.coloring_proper());
}

TEST(DynamicScheduler, InsertionRecolorsLowerDegreeEndpoint) {
  fg::DynamicGraph g(5);
  // Build a star around 0 first.
  fdy::DynamicPrefixCodeScheduler scheduler(g);
  static_cast<void>(scheduler.insert_edge(0, 1));
  static_cast<void>(scheduler.insert_edge(0, 2));
  static_cast<void>(scheduler.insert_edge(0, 3));
  // Node 4 (degree 0) and hub 0: if they collide, 4 must be the one to move.
  if (scheduler.color_of(4) == scheduler.color_of(0)) {
    const auto event = scheduler.insert_edge(0, 4);
    ASSERT_TRUE(event.has_value());
    EXPECT_EQ(event->node, 4U);
  } else {
    EXPECT_FALSE(scheduler.insert_edge(0, 4).has_value());
  }
  EXPECT_TRUE(scheduler.coloring_proper());
}

TEST(DynamicScheduler, InsertionStormKeepsProperness) {
  fg::DynamicGraph g(50);
  fdy::DynamicPrefixCodeScheduler scheduler(g);
  fhg::parallel::Rng rng(17);
  std::size_t inserted = 0;
  for (int i = 0; i < 400; ++i) {
    const auto u = static_cast<fg::NodeId>(rng.uniform_below(50));
    const auto v = static_cast<fg::NodeId>(rng.uniform_below(50));
    if (u == v) {
      continue;
    }
    static_cast<void>(scheduler.insert_edge(u, v));
    ++inserted;
    ASSERT_TRUE(scheduler.coloring_proper()) << "after insertion " << inserted;
  }
  // Colors stay degree-bounded: smallest-free recoloring keeps col ≤ deg+1.
  for (fg::NodeId v = 0; v < 50; ++v) {
    EXPECT_LE(scheduler.color_of(v), g.degree(v) + 1) << "node " << v;
  }
}

TEST(DynamicScheduler, RecoveryWithinNewPeriodAfterQuiescence) {
  fg::DynamicGraph g = dynamic_from(fg::gnp(40, 0.1, 7));
  fdy::DynamicPrefixCodeScheduler scheduler(g);
  // Run a while, then hit node with insertions, then verify it hosts within
  // its (new) period after the last change — the §6 recovery guarantee.
  for (int t = 0; t < 20; ++t) {
    static_cast<void>(scheduler.next_holiday());
  }
  static_cast<void>(scheduler.insert_edge(0, 20));
  static_cast<void>(scheduler.insert_edge(0, 21));
  static_cast<void>(scheduler.insert_edge(0, 22));
  EXPECT_TRUE(scheduler.coloring_proper());

  const std::uint64_t period0 = scheduler.period_of(0);
  bool hosted = false;
  for (std::uint64_t i = 0; i < period0 && !hosted; ++i) {
    const auto happy = scheduler.next_holiday();
    hosted = std::find(happy.begin(), happy.end(), 0U) != happy.end();
  }
  EXPECT_TRUE(hosted) << "node 0 must host within one period (" << period0
                      << " holidays) of quiescence";
}

TEST(DynamicScheduler, HappySetsAreAlwaysIndependent) {
  fg::DynamicGraph g = dynamic_from(fg::gnp(40, 0.05, 11));
  fdy::DynamicPrefixCodeScheduler scheduler(g);
  fhg::parallel::Rng rng(23);
  for (int t = 0; t < 300; ++t) {
    // Interleave random mutations with holidays.
    if (t % 3 == 0) {
      const auto u = static_cast<fg::NodeId>(rng.uniform_below(40));
      const auto v = static_cast<fg::NodeId>(rng.uniform_below(40));
      if (u != v) {
        if (rng.bernoulli(0.7)) {
          static_cast<void>(scheduler.insert_edge(u, v));
        } else {
          static_cast<void>(scheduler.erase_edge(u, v));
        }
      }
    }
    const auto happy = scheduler.next_holiday();
    const fg::Graph snapshot = g.snapshot();
    ASSERT_TRUE(fg::is_independent_set(snapshot, happy)) << "holiday " << t + 1;
  }
}

TEST(DynamicScheduler, DeletionRateRepairFires) {
  // Build a hub with high color, then strip its edges: with slack 0 the hub
  // must recolor down so its period tracks its shrunken degree.
  fg::DynamicGraph g = dynamic_from(fg::clique(8));
  fdy::DynamicPrefixCodeScheduler scheduler(g, fcd::CodeFamily::kEliasOmega,
                                            /*deletion_slack=*/0);
  // Find the node wearing the largest color (in a clique: color 8).
  fg::NodeId top = 0;
  for (fg::NodeId v = 1; v < 8; ++v) {
    if (scheduler.color_of(v) > scheduler.color_of(top)) {
      top = v;
    }
  }
  EXPECT_EQ(scheduler.color_of(top), 8U);
  // Remove all of top's edges.
  std::size_t repairs = 0;
  for (fg::NodeId v = 0; v < 8; ++v) {
    if (v != top && scheduler.erase_edge(top, v).has_value()) {
      ++repairs;
    }
  }
  EXPECT_GT(repairs, 0U);
  EXPECT_LE(scheduler.color_of(top), g.degree(top) + 1);
  EXPECT_TRUE(scheduler.coloring_proper());
}

TEST(DynamicScheduler, SlackDefersRepair) {
  fg::DynamicGraph g = dynamic_from(fg::clique(6));
  fdy::DynamicPrefixCodeScheduler lazy(g, fcd::CodeFamily::kEliasOmega,
                                       /*deletion_slack=*/100);
  fg::NodeId top = 0;
  for (fg::NodeId v = 1; v < 6; ++v) {
    if (lazy.color_of(v) > lazy.color_of(top)) {
      top = v;
    }
  }
  for (fg::NodeId v = 0; v < 6; ++v) {
    if (v != top) {
      EXPECT_FALSE(lazy.erase_edge(top, v).has_value());  // slack swallows it
    }
  }
  EXPECT_EQ(lazy.color_of(top), 6U);  // color kept; rate now disproportional
}

TEST(DynamicScheduler, AddNodeJoinsSociety) {
  fg::DynamicGraph g(3);
  fdy::DynamicPrefixCodeScheduler scheduler(g);
  const fg::NodeId v = scheduler.add_node();
  EXPECT_EQ(v, 3U);
  EXPECT_EQ(scheduler.color_of(v), 1U);
  static_cast<void>(scheduler.insert_edge(0, v));
  EXPECT_TRUE(scheduler.coloring_proper());
  // New node participates in holidays.
  bool seen = false;
  for (int t = 0; t < 8 && !seen; ++t) {
    const auto happy = scheduler.next_holiday();
    seen = std::find(happy.begin(), happy.end(), v) != happy.end();
  }
  EXPECT_TRUE(seen);
}

TEST(DynamicScheduler, HistoryRecordsEvents) {
  fg::DynamicGraph g(4);
  fdy::DynamicPrefixCodeScheduler scheduler(g);
  static_cast<void>(scheduler.next_holiday());
  static_cast<void>(scheduler.insert_edge(0, 1));  // forced collision: both color 1
  ASSERT_FALSE(scheduler.history().empty());
  const auto& event = scheduler.history().front();
  EXPECT_EQ(event.holiday, 1U);
  EXPECT_EQ(event.old_color, 1U);
  EXPECT_NE(event.new_color, 1U);
  EXPECT_TRUE(event.due_to_insertion);
}
