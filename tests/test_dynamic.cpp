// Tests for fhg::dynamic — the §6 dynamic setting: insertions force targeted
// recoloring, deletions trigger (optional) rate repair, and the schedule
// stays conflict-free throughout.

#include <gtest/gtest.h>

#include "fhg/dynamic/adapter.hpp"
#include "fhg/dynamic/dynamic_scheduler.hpp"
#include "fhg/dynamic/mutation.hpp"
#include "fhg/graph/dynamic_graph.hpp"
#include "fhg/graph/generators.hpp"
#include "fhg/graph/properties.hpp"
#include "fhg/parallel/rng.hpp"

namespace fg = fhg::graph;
namespace fdy = fhg::dynamic;
namespace fcd = fhg::coding;

namespace {

fg::DynamicGraph dynamic_from(const fg::Graph& g) { return fg::DynamicGraph(g); }

}  // namespace

TEST(DynamicScheduler, StartsProperAndPeriodic) {
  fg::DynamicGraph g = dynamic_from(fg::gnp(60, 0.08, 3));
  fdy::DynamicPrefixCodeScheduler scheduler(g);
  EXPECT_TRUE(scheduler.coloring_proper());
  for (fg::NodeId v = 0; v < g.num_nodes(); ++v) {
    EXPECT_EQ(scheduler.period_of(v),
              std::uint64_t{1} << fcd::elias_omega_length(scheduler.color_of(v)));
  }
}

TEST(DynamicScheduler, InsertionWithDistinctColorsIsFree) {
  fg::DynamicGraph g(4);
  fdy::DynamicPrefixCodeScheduler scheduler(g);
  // All isolated → everyone has color 1.  Connect 0-1: a recolor must occur.
  const auto first = scheduler.insert_edge(0, 1);
  ASSERT_TRUE(first.has_value());
  EXPECT_TRUE(scheduler.coloring_proper());
  // Now connect 2-3 (both color 1): recolor again, but inserting 0-2 after
  // that is free if their colors already differ.
  static_cast<void>(scheduler.insert_edge(2, 3));
  const bool differ = scheduler.color_of(0) != scheduler.color_of(2);
  const auto maybe = scheduler.insert_edge(0, 2);
  EXPECT_EQ(maybe.has_value(), !differ);
  EXPECT_TRUE(scheduler.coloring_proper());
}

TEST(DynamicScheduler, InsertionRecolorsLowerDegreeEndpoint) {
  fg::DynamicGraph g(5);
  // Build a star around 0 first.
  fdy::DynamicPrefixCodeScheduler scheduler(g);
  static_cast<void>(scheduler.insert_edge(0, 1));
  static_cast<void>(scheduler.insert_edge(0, 2));
  static_cast<void>(scheduler.insert_edge(0, 3));
  // Node 4 (degree 0) and hub 0: if they collide, 4 must be the one to move.
  if (scheduler.color_of(4) == scheduler.color_of(0)) {
    const auto event = scheduler.insert_edge(0, 4);
    ASSERT_TRUE(event.has_value());
    EXPECT_EQ(event->node, 4U);
  } else {
    EXPECT_FALSE(scheduler.insert_edge(0, 4).has_value());
  }
  EXPECT_TRUE(scheduler.coloring_proper());
}

TEST(DynamicScheduler, InsertionStormKeepsProperness) {
  fg::DynamicGraph g(50);
  fdy::DynamicPrefixCodeScheduler scheduler(g);
  fhg::parallel::Rng rng(17);
  std::size_t inserted = 0;
  for (int i = 0; i < 400; ++i) {
    const auto u = static_cast<fg::NodeId>(rng.uniform_below(50));
    const auto v = static_cast<fg::NodeId>(rng.uniform_below(50));
    if (u == v) {
      continue;
    }
    static_cast<void>(scheduler.insert_edge(u, v));
    ++inserted;
    ASSERT_TRUE(scheduler.coloring_proper()) << "after insertion " << inserted;
  }
  // Colors stay degree-bounded: smallest-free recoloring keeps col ≤ deg+1.
  for (fg::NodeId v = 0; v < 50; ++v) {
    EXPECT_LE(scheduler.color_of(v), g.degree(v) + 1) << "node " << v;
  }
}

TEST(DynamicScheduler, RecoveryWithinNewPeriodAfterQuiescence) {
  fg::DynamicGraph g = dynamic_from(fg::gnp(40, 0.1, 7));
  fdy::DynamicPrefixCodeScheduler scheduler(g);
  // Run a while, then hit node with insertions, then verify it hosts within
  // its (new) period after the last change — the §6 recovery guarantee.
  for (int t = 0; t < 20; ++t) {
    static_cast<void>(scheduler.next_holiday());
  }
  static_cast<void>(scheduler.insert_edge(0, 20));
  static_cast<void>(scheduler.insert_edge(0, 21));
  static_cast<void>(scheduler.insert_edge(0, 22));
  EXPECT_TRUE(scheduler.coloring_proper());

  const std::uint64_t period0 = scheduler.period_of(0);
  bool hosted = false;
  for (std::uint64_t i = 0; i < period0 && !hosted; ++i) {
    const auto happy = scheduler.next_holiday();
    hosted = std::find(happy.begin(), happy.end(), 0U) != happy.end();
  }
  EXPECT_TRUE(hosted) << "node 0 must host within one period (" << period0
                      << " holidays) of quiescence";
}

TEST(DynamicScheduler, HappySetsAreAlwaysIndependent) {
  fg::DynamicGraph g = dynamic_from(fg::gnp(40, 0.05, 11));
  fdy::DynamicPrefixCodeScheduler scheduler(g);
  fhg::parallel::Rng rng(23);
  for (int t = 0; t < 300; ++t) {
    // Interleave random mutations with holidays.
    if (t % 3 == 0) {
      const auto u = static_cast<fg::NodeId>(rng.uniform_below(40));
      const auto v = static_cast<fg::NodeId>(rng.uniform_below(40));
      if (u != v) {
        if (rng.bernoulli(0.7)) {
          static_cast<void>(scheduler.insert_edge(u, v));
        } else {
          static_cast<void>(scheduler.erase_edge(u, v));
        }
      }
    }
    const auto happy = scheduler.next_holiday();
    const fg::Graph snapshot = g.snapshot();
    ASSERT_TRUE(fg::is_independent_set(snapshot, happy)) << "holiday " << t + 1;
  }
}

TEST(DynamicScheduler, DeletionRateRepairFires) {
  // Build a hub with high color, then strip its edges: with slack 0 the hub
  // must recolor down so its period tracks its shrunken degree.
  fg::DynamicGraph g = dynamic_from(fg::clique(8));
  fdy::DynamicPrefixCodeScheduler scheduler(g, fcd::CodeFamily::kEliasOmega,
                                            /*deletion_slack=*/0);
  // Find the node wearing the largest color (in a clique: color 8).
  fg::NodeId top = 0;
  for (fg::NodeId v = 1; v < 8; ++v) {
    if (scheduler.color_of(v) > scheduler.color_of(top)) {
      top = v;
    }
  }
  EXPECT_EQ(scheduler.color_of(top), 8U);
  // Remove all of top's edges.
  std::size_t repairs = 0;
  for (fg::NodeId v = 0; v < 8; ++v) {
    if (v != top && scheduler.erase_edge(top, v).has_value()) {
      ++repairs;
    }
  }
  EXPECT_GT(repairs, 0U);
  EXPECT_LE(scheduler.color_of(top), g.degree(top) + 1);
  EXPECT_TRUE(scheduler.coloring_proper());
}

TEST(DynamicScheduler, SlackDefersRepair) {
  fg::DynamicGraph g = dynamic_from(fg::clique(6));
  fdy::DynamicPrefixCodeScheduler lazy(g, fcd::CodeFamily::kEliasOmega,
                                       /*deletion_slack=*/100);
  fg::NodeId top = 0;
  for (fg::NodeId v = 1; v < 6; ++v) {
    if (lazy.color_of(v) > lazy.color_of(top)) {
      top = v;
    }
  }
  for (fg::NodeId v = 0; v < 6; ++v) {
    if (v != top) {
      EXPECT_FALSE(lazy.erase_edge(top, v).has_value());  // slack swallows it
    }
  }
  EXPECT_EQ(lazy.color_of(top), 6U);  // color kept; rate now disproportional
}

TEST(DynamicScheduler, AddNodeJoinsSociety) {
  fg::DynamicGraph g(3);
  fdy::DynamicPrefixCodeScheduler scheduler(g);
  const fg::NodeId v = scheduler.add_node();
  EXPECT_EQ(v, 3U);
  EXPECT_EQ(scheduler.color_of(v), 1U);
  static_cast<void>(scheduler.insert_edge(0, v));
  EXPECT_TRUE(scheduler.coloring_proper());
  // New node participates in holidays.
  bool seen = false;
  for (int t = 0; t < 8 && !seen; ++t) {
    const auto happy = scheduler.next_holiday();
    seen = std::find(happy.begin(), happy.end(), v) != happy.end();
  }
  EXPECT_TRUE(seen);
}

TEST(DynamicScheduler, HistoryRecordsEvents) {
  fg::DynamicGraph g(4);
  fdy::DynamicPrefixCodeScheduler scheduler(g);
  static_cast<void>(scheduler.next_holiday());
  static_cast<void>(scheduler.insert_edge(0, 1));  // forced collision: both color 1
  ASSERT_FALSE(scheduler.history().empty());
  const auto& event = scheduler.history().front();
  EXPECT_EQ(event.holiday, 1U);
  EXPECT_EQ(event.old_color, 1U);
  EXPECT_NE(event.new_color, 1U);
  EXPECT_TRUE(event.due_to_insertion);
}

// ------------------------------------------------- §6 edge cases (PR 3) ----

TEST(DynamicScheduler, DeletionSlackBoundaryIsExact) {
  // K4 colors greedily as 1,2,3,4 (equal degrees, stable id order), so node
  // 3 sits at col == deg + 1.  After one divorce its degree drops to 2:
  //   slack = 1  →  col 4 == deg + 1 + slack  →  *no* repair (boundary held)
  //   slack = 0  →  col 4 is one past deg + 1 + slack  →  repair fires
  {
    fg::DynamicGraph g = dynamic_from(fg::clique(4));
    fdy::DynamicPrefixCodeScheduler with_slack(g, fcd::CodeFamily::kEliasOmega,
                                               /*deletion_slack=*/1);
    ASSERT_EQ(with_slack.color_of(3), 4U);
    EXPECT_FALSE(with_slack.erase_edge(0, 3).has_value());
    EXPECT_EQ(with_slack.color_of(3), 4U);  // kept: exactly at the boundary
  }
  {
    fg::DynamicGraph g = dynamic_from(fg::clique(4));
    fdy::DynamicPrefixCodeScheduler eager(g, fcd::CodeFamily::kEliasOmega,
                                          /*deletion_slack=*/0);
    ASSERT_EQ(eager.color_of(3), 4U);
    const auto event = eager.erase_edge(0, 3);
    ASSERT_TRUE(event.has_value());  // one past the boundary: repair
    EXPECT_EQ(event->node, 3U);
    EXPECT_FALSE(event->due_to_insertion);
    EXPECT_LE(eager.color_of(3), g.degree(3) + 1);
    EXPECT_TRUE(eager.coloring_proper());
  }
}

TEST(DynamicScheduler, AddNodeThenImmediateInsertEdge) {
  fg::DynamicGraph g(2);
  fdy::DynamicPrefixCodeScheduler scheduler(g);
  const fg::NodeId v = scheduler.add_node();
  EXPECT_EQ(v, 2U);
  EXPECT_EQ(scheduler.color_of(v), 1U);
  // Marrying the brand-new node into a color-1 household must recolor one
  // endpoint immediately — no holiday needs to pass in between.
  ASSERT_EQ(scheduler.color_of(0), 1U);
  const auto event = scheduler.insert_edge(v, 0);
  ASSERT_TRUE(event.has_value());
  EXPECT_TRUE(scheduler.coloring_proper());
  // The recolored node's slot tracks its new color's codeword.
  const auto& moved = *event;
  EXPECT_EQ(scheduler.slot_of(moved.node),
            fcd::slot_of(fcd::encode(fcd::CodeFamily::kEliasOmega,
                                     scheduler.color_of(moved.node))));
  EXPECT_EQ(scheduler.period_of(moved.node),
            std::uint64_t{1} << fcd::elias_omega_length(scheduler.color_of(moved.node)));
}

TEST(DynamicScheduler, EraseOfNonexistentEdgeIsANoOp) {
  fg::DynamicGraph g(4);
  fdy::DynamicPrefixCodeScheduler scheduler(g);
  static_cast<void>(scheduler.insert_edge(0, 1));
  const std::size_t history_before = scheduler.history().size();
  const std::size_t edges_before = g.num_edges();
  EXPECT_FALSE(scheduler.erase_edge(2, 3).has_value());   // never married
  EXPECT_FALSE(scheduler.erase_edge(0, 99).has_value());  // out of range
  EXPECT_EQ(g.num_edges(), edges_before);
  EXPECT_EQ(scheduler.history().size(), history_before);
  EXPECT_TRUE(scheduler.coloring_proper());
}

TEST(DynamicScheduler, RewindAndSkipMoveOnlyTheCounter) {
  fg::DynamicGraph g = dynamic_from(fg::cycle(8));
  fdy::DynamicPrefixCodeScheduler scheduler(g);
  const auto first = scheduler.next_holiday();
  static_cast<void>(scheduler.next_holiday());
  scheduler.rewind();
  EXPECT_EQ(scheduler.current_holiday(), 0U);
  EXPECT_EQ(scheduler.next_holiday(), first);  // pure function of slots + t
  scheduler.skip_to(100);
  EXPECT_EQ(scheduler.current_holiday(), 100U);
  scheduler.skip_to(50);  // never backwards
  EXPECT_EQ(scheduler.current_holiday(), 100U);
}

// ------------------------------------------------ Scheduler adapter (§6) ----

TEST(DynamicAdapter, ConformsToSchedulerAndBuildsPeriodRows) {
  const fg::Graph initial = fg::gnp(30, 0.12, 11);
  fdy::DynamicSchedulerAdapter adapter(initial);
  EXPECT_EQ(adapter.name(), "dynamic-prefix-code");
  EXPECT_TRUE(adapter.perfectly_periodic());
  const auto rows = adapter.period_phase_rows();
  ASSERT_EQ(rows.size(), initial.num_nodes());
  // Rows agree with a replay: node v is happy exactly at phase + k·period.
  for (std::uint64_t t = 1; t <= 64; ++t) {
    const auto happy = adapter.next_holiday();
    for (fg::NodeId v = 0; v < initial.num_nodes(); ++v) {
      const bool truth = std::binary_search(happy.begin(), happy.end(), v);
      const bool row_says = t >= rows[v].phase && (t - rows[v].phase) % rows[v].period == 0;
      ASSERT_EQ(row_says, truth) << "node " << v << " holiday " << t;
    }
  }
}

TEST(DynamicAdapter, LogsOnlyAppliedCommandsAndStamps) {
  fdy::DynamicSchedulerAdapter adapter(fg::Graph(4));
  for (int t = 0; t < 5; ++t) {
    static_cast<void>(adapter.next_holiday());
  }
  EXPECT_TRUE(adapter.apply(fdy::insert_edge_command(0, 1)).applied);
  EXPECT_FALSE(adapter.apply(fdy::insert_edge_command(0, 1)).applied);  // already married
  EXPECT_FALSE(adapter.apply(fdy::erase_edge_command(2, 3)).applied);   // never married
  EXPECT_TRUE(adapter.apply(fdy::add_node_command()).applied);
  EXPECT_THROW((void)adapter.apply(fdy::insert_edge_command(1, 1)), std::invalid_argument);
  ASSERT_EQ(adapter.mutation_log().size(), 2U);
  EXPECT_EQ(adapter.version(), 2U);
  for (const auto& cmd : adapter.mutation_log()) {
    EXPECT_EQ(cmd.holiday, 5U);  // stamped with the holiday they landed at
  }
  EXPECT_EQ(adapter.graph().num_nodes(), 5U);  // live topology grew
}

TEST(DynamicAdapter, LogReplayReproducesScheduleExactly) {
  const fg::Graph initial = fg::gnp(24, 0.1, 17);
  fdy::DynamicSchedulerAdapter live(initial);
  fhg::parallel::Rng rng(23);
  // A mixed life: holidays pass, marriages and divorces land in between.
  for (int phase = 0; phase < 6; ++phase) {
    for (int t = 0; t < 4; ++t) {
      static_cast<void>(live.next_holiday());
    }
    std::vector<fdy::MutationCommand> mix;
    for (int c = 0; c < 5; ++c) {
      const auto u = static_cast<fg::NodeId>(rng.uniform_below(24));
      auto v = static_cast<fg::NodeId>(rng.uniform_below(23));
      v = v >= u ? v + 1 : v;
      mix.push_back(rng.bernoulli(0.6) ? fdy::insert_edge_command(u, v)
                                       : fdy::erase_edge_command(u, v));
    }
    static_cast<void>(live.apply_batch(mix));
  }
  ASSERT_FALSE(live.mutation_log().empty());

  // Replay the log over a fresh adapter, landing each command at its stamp.
  fdy::DynamicSchedulerAdapter replayed(initial);
  for (const auto& cmd : live.mutation_log()) {
    replayed.advance_to(cmd.holiday);
    const auto result = replayed.apply(cmd, /*restamp=*/false);
    EXPECT_TRUE(result.applied);  // logged commands re-apply deterministically
  }
  replayed.advance_to(live.current_holiday());

  EXPECT_EQ(replayed.mutation_log(), live.mutation_log());
  EXPECT_EQ(replayed.period_phase_rows(), live.period_phase_rows());
  EXPECT_EQ(replayed.graph().edges(), live.graph().edges());
  for (fg::NodeId v = 0; v < live.graph().num_nodes(); ++v) {
    EXPECT_EQ(replayed.scheduler().color_of(v), live.scheduler().color_of(v)) << "node " << v;
  }
  // And the two produce identical futures.
  for (int t = 0; t < 16; ++t) {
    EXPECT_EQ(replayed.next_holiday(), live.next_holiday());
  }
}
