// Tests for fhg::core — gatherings/orientations, all five schedulers, the
// gap tracker, auditor and driver.  These encode the paper's theorems as
// executable properties.

#include <gtest/gtest.h>

#include <memory>

#include "fhg/coding/iterated_log.hpp"
#include "fhg/coloring/dsatur.hpp"
#include "fhg/coloring/greedy.hpp"
#include "fhg/core/auditor.hpp"
#include "fhg/core/degree_bound.hpp"
#include "fhg/core/driver.hpp"
#include "fhg/core/fcfg.hpp"
#include "fhg/core/gap_tracker.hpp"
#include "fhg/core/gathering.hpp"
#include "fhg/core/phased_greedy.hpp"
#include "fhg/core/prefix_code_scheduler.hpp"
#include "fhg/core/round_robin.hpp"
#include "fhg/graph/generators.hpp"
#include "fhg/graph/properties.hpp"

namespace fg = fhg::graph;
namespace fc = fhg::coloring;
namespace fco = fhg::core;
namespace fcd = fhg::coding;

// ------------------------------------------------------------ Gathering ----

TEST(Gathering, DefaultPointsToLowerEndpoint) {
  const fg::Graph g = fg::path(3);  // 0-1-2
  const fco::Gathering h(g);
  EXPECT_TRUE(h.points_to(1, 0));
  EXPECT_FALSE(h.points_to(0, 1));
  EXPECT_TRUE(h.points_to(2, 1));
}

TEST(Gathering, OrientAndQuery) {
  const fg::Graph g = fg::cycle(4);
  fco::Gathering h(g);
  h.orient(0, 1, 1);
  EXPECT_TRUE(h.points_to(0, 1));
  h.orient(0, 1, 0);
  EXPECT_TRUE(h.points_to(1, 0));
  EXPECT_THROW(h.orient(0, 1, 3), std::invalid_argument);
  EXPECT_THROW(h.orient(0, 2, 0), std::invalid_argument);  // no such edge
}

TEST(Gathering, HappyIsSink) {
  const fg::Graph g = fg::star(4);
  fco::Gathering h(g);
  for (fg::NodeId leaf = 1; leaf < 4; ++leaf) {
    h.orient(0, leaf, 0);
  }
  EXPECT_TRUE(h.happy(0));
  EXPECT_FALSE(h.happy(1));  // its only edge points away
  EXPECT_TRUE(h.satisfied(0));
  EXPECT_FALSE(h.satisfied(1));
}

TEST(Gathering, HappySetIsIndependent) {
  const fg::Graph g = fg::gnp(40, 0.15, 3);
  fco::Gathering h(g);  // arbitrary orientation
  const auto happy = h.happy_set();
  EXPECT_TRUE(fg::is_independent_set(g, happy));
}

TEST(Gathering, FromHappySetMakesExactlyThoseSinks) {
  const fg::Graph g = fg::cycle(6);
  const std::vector<fg::NodeId> want{0, 2, 4};
  const fco::Gathering h = fco::Gathering::from_happy_set(g, want);
  EXPECT_EQ(h.happy_set(), want);
}

TEST(Gathering, FromHappySetRejectsDependentNodes) {
  const fg::Graph g = fg::path(3);
  const std::vector<fg::NodeId> bad{0, 1};
  EXPECT_THROW(static_cast<void>(fco::Gathering::from_happy_set(g, bad)), std::invalid_argument);
}

TEST(Gathering, IsolatedNodeIsHappyNotSatisfied) {
  const fg::Graph g(1);
  const fco::Gathering h(g);
  EXPECT_TRUE(h.happy(0));
  EXPECT_FALSE(h.satisfied(0));
}

// ------------------------------------------------------------ GapTracker ---

TEST(GapTracker, TracksGapsIncludingFirstWait) {
  fco::GapTracker tracker(2);
  const std::vector<fg::NodeId> only_zero{0};
  tracker.observe(3, only_zero);   // first wait: gap 3
  tracker.observe(5, only_zero);   // gap 2
  tracker.observe(10, only_zero);  // gap 5
  EXPECT_EQ(tracker.max_gap(0), 5U);
  EXPECT_EQ(tracker.mul(0), 4U);
  EXPECT_EQ(tracker.appearances(0), 3U);
  EXPECT_EQ(tracker.max_gap(1), 0U);
  EXPECT_EQ(tracker.max_gap_with_tail(1, 10), 11U);  // never appeared
}

TEST(GapTracker, DetectsExactPeriod) {
  fco::GapTracker tracker(1);
  const std::vector<fg::NodeId> node{0};
  tracker.observe(4, node);
  tracker.observe(8, node);
  tracker.observe(12, node);
  EXPECT_EQ(tracker.detected_period(0), std::optional<std::uint64_t>(4));
}

TEST(GapTracker, RejectsInconsistentPeriod) {
  fco::GapTracker tracker(1);
  const std::vector<fg::NodeId> node{0};
  tracker.observe(4, node);
  tracker.observe(8, node);
  tracker.observe(13, node);
  EXPECT_FALSE(tracker.detected_period(0).has_value());
}

// -------------------------------------------------------------- Auditor ----

TEST(Auditor, FlagsDependentHappySet) {
  const fg::Graph g = fg::path(3);
  fco::ScheduleAuditor auditor(g);
  const std::vector<fg::NodeId> bad{0, 1};
  EXPECT_FALSE(auditor.check(1, bad));
  EXPECT_FALSE(auditor.all_ok());
  EXPECT_EQ(auditor.violations(), 1U);
  EXPECT_FALSE(auditor.first_violation().empty());
}

TEST(Auditor, FlagsTwoColorHoliday) {
  const fg::Graph g(4);  // no edges: any set is independent
  fc::Coloring coloring(4);
  for (fg::NodeId v = 0; v < 4; ++v) {
    coloring.set_color(v, v % 2 + 1);
  }
  fco::ScheduleAuditor auditor(g, &coloring);
  const std::vector<fg::NodeId> mixed{0, 1};
  EXPECT_FALSE(auditor.check(1, mixed));
  const std::vector<fg::NodeId> uniform{0, 2};
  fco::ScheduleAuditor auditor2(g, &coloring);
  EXPECT_TRUE(auditor2.check(1, uniform));
}

// ------------------------------------------------------------ Round robin --

TEST(RoundRobin, CyclesThroughColorClasses) {
  const fg::Graph g = fg::cycle(6);
  const fc::Coloring coloring = fc::greedy_color(g, fc::Order::kIdentity);
  fco::RoundRobinColorScheduler scheduler(g, coloring);
  const auto report = fco::run_schedule(scheduler, {.horizon = 60, .coloring = &coloring});
  EXPECT_TRUE(report.independence_ok);
  EXPECT_TRUE(report.one_color_ok);
  EXPECT_TRUE(report.bounds_respected);
  // Every node's period equals the number of colors — a global bound.
  const auto colors = coloring.max_color();
  for (fg::NodeId v = 0; v < 6; ++v) {
    EXPECT_EQ(report.detected_period[v], std::optional<std::uint64_t>(colors));
  }
}

TEST(RoundRobin, GlobalBoundIgnoresDegree) {
  // The §1 anti-pattern: a single-child parent waits Δ+1 like everyone else.
  const fg::Graph g = fg::star(30);
  const fc::Coloring coloring = fc::greedy_color(g, fc::Order::kLargestFirst);
  fco::RoundRobinColorScheduler scheduler(g, coloring);
  const auto report = fco::run_schedule(scheduler, {.horizon = 100});
  // Leaf (degree 1) still waits `colors` (= 2 here) — fine; the instructive
  // case is the sequential coloring where it waits |P|:
  const fc::Coloring sequential = fc::sequential_color(g);
  fco::RoundRobinColorScheduler trivial(g, sequential);
  const auto trivial_report = fco::run_schedule(trivial, {.horizon = 90});
  for (fg::NodeId v = 0; v < 30; ++v) {
    EXPECT_EQ(trivial_report.detected_period[v], std::optional<std::uint64_t>(30));
  }
  (void)report;
}

TEST(RoundRobin, RequiresProperColoring) {
  const fg::Graph g = fg::path(2);
  fc::Coloring bad(2);
  bad.set_color(0, 1);
  bad.set_color(1, 1);
  EXPECT_THROW(fco::RoundRobinColorScheduler(g, bad), std::invalid_argument);
}

// ---------------------------------------------------------- Phased greedy --

class PhasedGreedyTest : public ::testing::TestWithParam<int> {
 protected:
  static fg::Graph make_graph(int index) {
    switch (index) {
      case 0:
        return fg::gnp(120, 0.06, 5);
      case 1:
        return fg::clique(10);
      case 2:
        return fg::barabasi_albert(150, 3, 7);
      case 3:
        return fg::star(25);
      case 4:
        return fg::grid2d(9, 9);
      default:
        return fg::random_tree(100, 11);
    }
  }
};

TEST_P(PhasedGreedyTest, TheoremThreeOneGapBound) {
  const fg::Graph g = make_graph(GetParam());
  const fc::Coloring initial = fc::greedy_color(g, fc::Order::kLargestFirst);
  fco::PhasedGreedyScheduler scheduler(g, initial);
  const auto report = fco::run_schedule(scheduler, {.horizon = 2000});
  EXPECT_TRUE(report.independence_ok);
  EXPECT_TRUE(report.bounds_respected)
      << "first violator: "
      << (report.bound_violators.empty() ? -1 : static_cast<int>(report.bound_violators[0]));
  for (fg::NodeId v = 0; v < g.num_nodes(); ++v) {
    EXPECT_LE(report.max_gap_with_tail[v], g.degree(v) + std::uint64_t{1}) << "node " << v;
  }
}

INSTANTIATE_TEST_SUITE_P(Graphs, PhasedGreedyTest, ::testing::Range(0, 6));

TEST(PhasedGreedy, IsGenerallyAperiodic) {
  // On an odd cycle some node must see unequal gaps (period 2 is impossible
  // for all, and phased greedy adapts colors on the fly).
  const fg::Graph g = fg::cycle(9);
  fco::PhasedGreedyScheduler scheduler(g, fc::greedy_color(g, fc::Order::kIdentity));
  const auto report = fco::run_schedule(scheduler, {.horizon = 3000});
  bool some_aperiodic = false;
  for (fg::NodeId v = 0; v < g.num_nodes(); ++v) {
    if (!report.detected_period[v].has_value()) {
      some_aperiodic = true;
    }
  }
  EXPECT_TRUE(some_aperiodic);
  EXPECT_FALSE(scheduler.perfectly_periodic());
}

TEST(PhasedGreedy, ResetReplaysIdentically) {
  const fg::Graph g = fg::gnp(60, 0.1, 17);
  fco::PhasedGreedyScheduler scheduler(g, fc::greedy_color(g, fc::Order::kLargestFirst));
  std::vector<std::vector<fg::NodeId>> first;
  for (int i = 0; i < 50; ++i) {
    first.push_back(scheduler.next_holiday());
  }
  scheduler.reset();
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(scheduler.next_holiday(), first[static_cast<std::size_t>(i)]);
  }
}

TEST(PhasedGreedy, IsolatedNodeHappyEveryHoliday) {
  fg::GraphBuilder b(3);
  b.add_edge(0, 1);  // node 2 isolated
  const fg::Graph g = std::move(b).build();
  fco::PhasedGreedyScheduler scheduler(g, fc::greedy_color(g, fc::Order::kIdentity));
  for (int t = 1; t <= 10; ++t) {
    const auto happy = scheduler.next_holiday();
    EXPECT_TRUE(std::find(happy.begin(), happy.end(), 2U) != happy.end()) << "holiday " << t;
  }
}

// ------------------------------------------------------------ Prefix code --

class PrefixCodeSchedulerTest
    : public ::testing::TestWithParam<std::tuple<fcd::CodeFamily, int>> {
 protected:
  static fg::Graph make_graph(int index) {
    switch (index) {
      case 0:
        return fg::gnp(100, 0.05, 23);
      case 1:
        return fg::complete_bipartite(8, 12);
      case 2:
        return fg::barabasi_albert(120, 2, 29);
      default:
        return fg::clique(8);
    }
  }
};

TEST_P(PrefixCodeSchedulerTest, PerfectlyPeriodicOneColorIndependent) {
  const auto [family, graph_index] = GetParam();
  const fg::Graph g = make_graph(graph_index);
  const fc::Coloring coloring = fc::dsatur_color(g);
  fco::PrefixCodeScheduler scheduler(g, coloring, family);

  // Horizon: at least two periods of the slowest node.
  std::uint64_t horizon = 64;
  for (fg::NodeId v = 0; v < g.num_nodes(); ++v) {
    horizon = std::max(horizon, 2 * scheduler.period_of(v).value());
  }
  const auto report = fco::run_schedule(scheduler, {.horizon = horizon, .coloring = &coloring});
  EXPECT_TRUE(report.independence_ok);
  EXPECT_TRUE(report.one_color_ok);  // Theorem 4.1 hypothesis holds by construction
  EXPECT_TRUE(report.bounds_respected);
  for (fg::NodeId v = 0; v < g.num_nodes(); ++v) {
    // Perfect periodicity: every observed gap equals 2^|K(c)| exactly.
    EXPECT_EQ(report.detected_period[v], scheduler.period_of(v)) << "node " << v;
  }
}

INSTANTIATE_TEST_SUITE_P(
    FamiliesTimesGraphs, PrefixCodeSchedulerTest,
    ::testing::Combine(::testing::Values(fcd::CodeFamily::kEliasGamma,
                                         fcd::CodeFamily::kEliasDelta,
                                         fcd::CodeFamily::kEliasOmega),
                       ::testing::Range(0, 4)));

TEST(PrefixCodeScheduler, OmegaPeriodMatchesRho) {
  const fg::Graph g = fg::gnp(80, 0.08, 31);
  const fc::Coloring coloring = fc::greedy_color(g, fc::Order::kLargestFirst);
  fco::PrefixCodeScheduler scheduler(g, coloring, fcd::CodeFamily::kEliasOmega);
  for (fg::NodeId v = 0; v < g.num_nodes(); ++v) {
    const auto c = coloring.color(v);
    EXPECT_EQ(scheduler.period_of(v).value(),
              std::uint64_t{1} << fcd::elias_omega_length(c));
    // Theorem 4.2: period ≤ 2^{1+log* c} φ(c).
    EXPECT_LE(static_cast<double>(scheduler.period_of(v).value()),
              fcd::omega_period_bound(c) * (1 + 1e-9));
  }
}

TEST(PrefixCodeScheduler, BipartiteSocietyAlternates) {
  // The §1 motivating example: 2-colorable society → gamma code periods
  // 2^1 = 2 and 2^3 = 8 for colors 1 and 2.
  const fg::Graph g = fg::complete_bipartite(5, 5);
  const fc::Coloring coloring = *fc::bipartite_color(g);
  fco::PrefixCodeScheduler scheduler(g, coloring, fcd::CodeFamily::kEliasGamma);
  for (fg::NodeId v = 0; v < 10; ++v) {
    const std::uint64_t period = scheduler.period_of(v).value();
    EXPECT_TRUE(period == 2 || period == 8) << "node " << v;
  }
}

TEST(PrefixCodeScheduler, HappyAtAgreesWithNextHoliday) {
  const fg::Graph g = fg::gnp(50, 0.1, 37);
  const fc::Coloring coloring = fc::dsatur_color(g);
  fco::PrefixCodeScheduler scheduler(g, coloring);
  for (std::uint64_t t = 1; t <= 200; ++t) {
    const auto happy = scheduler.next_holiday();
    for (fg::NodeId v = 0; v < g.num_nodes(); ++v) {
      const bool in_set = std::find(happy.begin(), happy.end(), v) != happy.end();
      EXPECT_EQ(in_set, scheduler.happy_at(v, t));
    }
  }
}

// ----------------------------------------------------------- Degree bound --

class DegreeBoundSchedulerTest : public ::testing::TestWithParam<int> {
 protected:
  static fg::Graph make_graph(int index) {
    switch (index) {
      case 0:
        return fg::gnp(150, 0.04, 41);
      case 1:
        return fg::star(33);
      case 2:
        return fg::clique(9);
      case 3:
        return fg::barabasi_albert(200, 3, 43);
      case 4:
        return fg::caterpillar(15, 5);
      default:
        return fg::grid2d(12, 12);
    }
  }
};

TEST_P(DegreeBoundSchedulerTest, TheoremFiveThreePeriodBound) {
  const fg::Graph g = make_graph(GetParam());
  fco::DegreeBoundScheduler scheduler(g);

  std::uint64_t horizon = 16;
  for (fg::NodeId v = 0; v < g.num_nodes(); ++v) {
    horizon = std::max(horizon, 3 * scheduler.period_of(v).value());
  }
  const auto report = fco::run_schedule(scheduler, {.horizon = horizon});
  EXPECT_TRUE(report.independence_ok);
  EXPECT_TRUE(report.bounds_respected);
  for (fg::NodeId v = 0; v < g.num_nodes(); ++v) {
    const std::uint64_t d = g.degree(v);
    const std::uint64_t period = scheduler.period_of(v).value();
    EXPECT_EQ(period, std::uint64_t{1} << fcd::ceil_log2(d + 1));
    if (d >= 1) {
      EXPECT_LE(period, 2 * d);  // Theorem 5.3
    }
    EXPECT_EQ(report.detected_period[v], std::optional<std::uint64_t>(period));
  }
}

INSTANTIATE_TEST_SUITE_P(Graphs, DegreeBoundSchedulerTest, ::testing::Range(0, 6));

TEST(DegreeBound, LemmaFiveOneNoAdjacentCollision) {
  const fg::Graph g = fg::gnp(200, 0.05, 47);
  const auto slots = fco::assign_degree_bound_slots(g, fco::degree_bound_order(g));
  EXPECT_TRUE(fco::slots_conflict_free(g, slots));
}

TEST(DegreeBound, BadOrderWithRandomPicksFails) {
  // §6: letting low-degree nodes pick first exhausts the hub's residues.
  // Increasing-degree order + random residue picks on a star must throw for
  // some seed (leaves occupy both parities of the hub's modulus).
  const fg::Graph g = fg::star(9);
  std::vector<fg::NodeId> increasing = fco::degree_bound_order(g);
  std::reverse(increasing.begin(), increasing.end());
  bool failed = false;
  for (std::uint64_t seed = 0; seed < 16 && !failed; ++seed) {
    try {
      const auto slots = fco::assign_degree_bound_slots(g, increasing,
                                                        fco::ResiduePick::kRandomFree, seed);
      // If it succeeded, the assignment must at least be conflict-free.
      EXPECT_TRUE(fco::slots_conflict_free(g, slots));
    } catch (const std::runtime_error&) {
      failed = true;
    }
  }
  EXPECT_TRUE(failed);
}

TEST(DegreeBound, IsolatedNodesHostEveryHoliday) {
  const fg::Graph g(5);
  fco::DegreeBoundScheduler scheduler(g);
  for (int t = 1; t <= 4; ++t) {
    EXPECT_EQ(scheduler.next_holiday().size(), 5U);
  }
}

TEST(DegreeBound, RejectsConflictingSlots) {
  const fg::Graph g = fg::path(2);
  std::vector<fcd::ScheduleSlot> conflicting{{0, 1}, {0, 1}};  // same residue & period
  EXPECT_THROW(fco::DegreeBoundScheduler(g, conflicting), std::invalid_argument);
}

// ------------------------------------------------------------------ FCFG ---

TEST(Fcfg, HappyFrequencyMatchesOneOverDPlusOne) {
  const fg::Graph g = fg::random_regular(60, 4, 53);
  fco::FirstComeFirstGrabScheduler scheduler(g, /*seed=*/1);
  constexpr std::uint64_t kHorizon = 20'000;
  const auto report = fco::run_schedule(scheduler, {.horizon = kHorizon});
  EXPECT_TRUE(report.independence_ok);
  for (fg::NodeId v = 0; v < g.num_nodes(); ++v) {
    const double freq =
        static_cast<double>(report.appearances[v]) / static_cast<double>(kHorizon);
    EXPECT_NEAR(freq, 1.0 / 5.0, 0.02) << "node " << v;  // 1/(d+1), d = 4
  }
}

TEST(Fcfg, DeterministicReplay) {
  const fg::Graph g = fg::gnp(50, 0.1, 59);
  fco::FirstComeFirstGrabScheduler a(g, 7);
  fco::FirstComeFirstGrabScheduler b(g, 7);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next_holiday(), b.next_holiday());
  }
  fco::FirstComeFirstGrabScheduler c(g, 8);
  c.reset();
  bool any_different = false;
  a.reset();
  for (int i = 0; i < 100 && !any_different; ++i) {
    any_different = a.next_holiday() != c.next_holiday();
  }
  EXPECT_TRUE(any_different);
}

TEST(Fcfg, HappySetIsLocalMinima) {
  const fg::Graph g = fg::clique(10);
  fco::FirstComeFirstGrabScheduler scheduler(g, 3);
  // In a clique exactly one parent grabs everything each holiday.
  for (int t = 1; t <= 50; ++t) {
    EXPECT_EQ(scheduler.next_holiday().size(), 1U);
  }
}

TEST(Fcfg, NoGuaranteeMeansNoBound) {
  const fg::Graph g = fg::cycle(8);
  const fco::FirstComeFirstGrabScheduler scheduler(g, 5);
  EXPECT_FALSE(scheduler.gap_bound(0).has_value());
  EXPECT_FALSE(scheduler.perfectly_periodic());
}

// ----------------------------------------------------------------- driver --

TEST(Driver, ThroughputAccounting) {
  const fg::Graph g(4);  // no edges: everyone happy every holiday
  const fc::Coloring coloring(std::vector<fc::Color>{1, 1, 1, 1});
  fco::RoundRobinColorScheduler scheduler(g, coloring);
  const auto report = fco::run_schedule(scheduler, {.horizon = 10});
  EXPECT_EQ(report.total_happy, 40U);
  EXPECT_EQ(report.max_happy_set, 4U);
}

TEST(Driver, ReportsSchedulerName) {
  const fg::Graph g = fg::path(4);
  fco::DegreeBoundScheduler scheduler(g);
  const auto report = fco::run_schedule(scheduler, {.horizon = 8});
  EXPECT_EQ(report.scheduler_name, "degree-bound");
  EXPECT_EQ(report.horizon, 8U);
}
