// Tests for fhg::engine — the multi-tenant serving layer: period-table O(1)
// queries vs. naive replay, concurrent step_all determinism, snapshot
// round-trips, registry semantics, and the bit-level snapshot codec.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <span>
#include <vector>

#include "fhg/core/prefix_code_scheduler.hpp"
#include "fhg/coloring/greedy.hpp"
#include "fhg/dynamic/mutation.hpp"
#include "fhg/engine/engine.hpp"
#include "fhg/engine/period_table.hpp"
#include "fhg/engine/replay_index.hpp"
#include "fhg/engine/snapshot.hpp"
#include "fhg/engine/spec.hpp"
#include "fhg/graph/generators.hpp"
#include "fhg/parallel/rng.hpp"

namespace fg = fhg::graph;
namespace fe = fhg::engine;
namespace fco = fhg::core;
namespace fdy = fhg::dynamic;

namespace {

/// InstanceSpec factory (avoids partially-designated initializers, which
/// -Wextra flags even when the omitted members have defaults).
fe::InstanceSpec spec_of(fe::SchedulerKind kind, std::uint64_t seed = 1,
                         std::vector<std::uint64_t> periods = {}) {
  fe::InstanceSpec spec;
  spec.kind = kind;
  spec.seed = seed;
  spec.periods = std::move(periods);
  return spec;
}

/// Replays `s` from scratch and records which holidays ≤ horizon make each
/// node happy — the ground truth every fast path must agree with.
std::vector<std::vector<bool>> replay_membership(fco::Scheduler& s, std::uint64_t horizon) {
  s.reset();
  std::vector<std::vector<bool>> happy(s.graph().num_nodes(),
                                       std::vector<bool>(horizon + 1, false));
  for (std::uint64_t t = 1; t <= horizon; ++t) {
    for (const fg::NodeId v : s.next_holiday()) {
      happy[v][t] = true;
    }
  }
  return happy;
}

}  // namespace

// ---------------------------------------------------------- PeriodTable ----

TEST(PeriodTable, AgreesWithReplayOnRandomProbes) {
  const fg::Graph g = fg::gnp(60, 0.1, 7);
  const std::vector<fe::SchedulerKind> kinds{
      fe::SchedulerKind::kRoundRobin,
      fe::SchedulerKind::kPrefixCode,
      fe::SchedulerKind::kDegreeBound,
  };
  for (const auto kind : kinds) {
    auto s = fe::make_scheduler(g, spec_of(kind));
    const auto table = fe::PeriodTable::build(*s);
    ASSERT_TRUE(table.has_value()) << fe::scheduler_kind_name(kind);
    constexpr std::uint64_t kHorizon = 512;
    const auto truth = replay_membership(*s, kHorizon);
    fhg::parallel::Rng rng(99);
    for (int probe = 0; probe < 1000; ++probe) {
      const auto v = static_cast<fg::NodeId>(rng.uniform_below(g.num_nodes()));
      const std::uint64_t t = 1 + rng.uniform_below(kHorizon);
      EXPECT_EQ(table->is_happy(v, t), truth[v][t])
          << fe::scheduler_kind_name(kind) << " node " << v << " holiday " << t;
    }
  }
}

TEST(PeriodTable, NextGatheringIsFirstMatchAfter) {
  const fg::Graph g = fg::star(9);
  const auto s = fe::make_scheduler(g, spec_of(fe::SchedulerKind::kDegreeBound));
  const auto table = fe::PeriodTable::build(*s);
  ASSERT_TRUE(table.has_value());
  for (fg::NodeId v = 0; v < g.num_nodes(); ++v) {
    for (const std::uint64_t after : {std::uint64_t{0}, std::uint64_t{1}, std::uint64_t{37}}) {
      const std::uint64_t next = table->next_gathering(v, after);
      EXPECT_GT(next, after);
      EXPECT_TRUE(table->is_happy(v, next));
      for (std::uint64_t t = after + 1; t < next; ++t) {
        EXPECT_FALSE(table->is_happy(v, t));
      }
    }
  }
  // phase is the first gathering overall.
  for (fg::NodeId v = 0; v < g.num_nodes(); ++v) {
    EXPECT_EQ(table->next_gathering(v, 0), table->phase(v));
  }
}

TEST(PeriodTable, RejectsAperiodicSchedulers) {
  const fg::Graph g = fg::cycle(6);
  const auto s = fe::make_scheduler(g, spec_of(fe::SchedulerKind::kPhasedGreedy));
  EXPECT_FALSE(fe::PeriodTable::build(*s).has_value());
}

// ------------------------------------------------------ Scheduler phases ----

TEST(SchedulerPhase, MatchesFirstAppearance) {
  const fg::Graph g = fg::barabasi_albert(40, 2, 11);
  for (const auto kind : {fe::SchedulerKind::kRoundRobin, fe::SchedulerKind::kPrefixCode,
                          fe::SchedulerKind::kDegreeBound}) {
    auto s = fe::make_scheduler(g, spec_of(kind));
    std::vector<std::uint64_t> first(g.num_nodes(), 0);
    for (std::uint64_t t = 1; t <= 2048; ++t) {
      for (const fg::NodeId v : s->next_holiday()) {
        if (first[v] == 0) {
          first[v] = t;
        }
      }
    }
    for (fg::NodeId v = 0; v < g.num_nodes(); ++v) {
      const auto phase = s->phase_of(v);
      ASSERT_TRUE(phase.has_value());
      if (first[v] != 0) {
        EXPECT_EQ(*phase, first[v]) << fe::scheduler_kind_name(kind) << " node " << v;
      }
    }
  }
}

TEST(SchedulerPhase, AdvanceToSkipsStatelessSchedulers) {
  const fg::Graph g = fg::clique(8);
  auto s = fe::make_scheduler(g, spec_of(fe::SchedulerKind::kDegreeBound));
  s->advance_to(1'000'000'000ULL);
  EXPECT_EQ(s->current_holiday(), 1'000'000'000ULL);
  // Replay-based default: phased greedy really replays.
  auto pg = fe::make_scheduler(g, spec_of(fe::SchedulerKind::kPhasedGreedy));
  pg->advance_to(100);
  EXPECT_EQ(pg->current_holiday(), 100U);
}

TEST(SchedulerPhase, AdvanceToPreservesSchedule) {
  // Skipping then stepping must equal stepping all the way (stateless kinds).
  const fg::Graph g = fg::gnp(30, 0.15, 3);
  for (const auto kind : {fe::SchedulerKind::kRoundRobin, fe::SchedulerKind::kPrefixCode,
                          fe::SchedulerKind::kDegreeBound, fe::SchedulerKind::kFirstComeFirstGrab}) {
    auto a = fe::make_scheduler(g, spec_of(kind, 5));
    auto b = fe::make_scheduler(g, spec_of(kind, 5));
    for (std::uint64_t t = 1; t <= 64; ++t) {
      (void)a->next_holiday();
    }
    b->advance_to(64);
    for (int i = 0; i < 16; ++i) {
      EXPECT_EQ(a->next_holiday(), b->next_holiday()) << fe::scheduler_kind_name(kind);
    }
  }
}

// ---------------------------------------------------------- ReplayIndex ----

TEST(ReplayIndex, MembershipAndNextGathering) {
  fe::ReplayIndex index(4);
  index.observe(1, std::vector<fg::NodeId>{0, 2});
  index.observe(2, std::vector<fg::NodeId>{1});
  index.observe(3, std::vector<fg::NodeId>{0, 3});
  EXPECT_EQ(index.horizon(), 3U);
  EXPECT_TRUE(index.is_happy(0, 1));
  EXPECT_FALSE(index.is_happy(0, 2));
  EXPECT_TRUE(index.is_happy(0, 3));
  EXPECT_EQ(index.next_gathering(0, 1), std::optional<std::uint64_t>{3});
  EXPECT_EQ(index.next_gathering(1, 2), std::nullopt);
  EXPECT_EQ(index.appearances(0).size(), 2U);
}

// ----------------------------------------------------- Instance queries ----

TEST(Instance, AperiodicQueriesAgreeWithReplay) {
  const fg::Graph g = fg::gnp(40, 0.12, 21);
  fe::Instance instance("t", g, spec_of(fe::SchedulerKind::kPhasedGreedy));
  ASSERT_FALSE(instance.periodic());

  auto truth_scheduler = fe::make_scheduler(g, spec_of(fe::SchedulerKind::kPhasedGreedy));
  constexpr std::uint64_t kHorizon = 256;
  const auto truth = replay_membership(*truth_scheduler, kHorizon);

  fhg::parallel::Rng rng(5);
  for (int probe = 0; probe < 1000; ++probe) {
    const auto v = static_cast<fg::NodeId>(rng.uniform_below(g.num_nodes()));
    const std::uint64_t t = 1 + rng.uniform_below(kHorizon);
    EXPECT_EQ(instance.is_happy(v, t), truth[v][t]) << "node " << v << " holiday " << t;
  }

  // next_gathering walks the memoized prefix and extends it on demand.
  const auto next = instance.next_gathering(0, kHorizon);
  ASSERT_TRUE(next.has_value());
  EXPECT_GT(*next, kHorizon);
  EXPECT_TRUE(instance.is_happy(0, *next));
}

TEST(Instance, RejectsOutOfRangeNodes) {
  const fg::Graph g = fg::path(5);
  fe::Instance periodic("p", g, spec_of(fe::SchedulerKind::kDegreeBound));
  fe::Instance aperiodic("a", g, spec_of(fe::SchedulerKind::kPhasedGreedy));
  EXPECT_THROW((void)periodic.is_happy(5, 1), std::out_of_range);
  EXPECT_THROW((void)periodic.next_gathering(99, 0), std::out_of_range);
  EXPECT_THROW((void)aperiodic.is_happy(5, 1), std::out_of_range);
}

TEST(Instance, ReplayLimitBoundsFarFutureQueries) {
  const fg::Graph g = fg::cycle(6);
  fe::Instance instance("t", g, spec_of(fe::SchedulerKind::kPhasedGreedy));
  // Within the limit: extends and answers.
  (void)instance.is_happy(0, 100);
  EXPECT_GE(instance.current_holiday(), 100U);
  // Far beyond: refuses instead of replaying under the lock forever.
  EXPECT_THROW((void)instance.is_happy(0, instance.current_holiday() + 1'000, /*replay_limit=*/10),
               std::runtime_error);
}

TEST(Instance, StreamDeliversEveryHoliday) {
  const fg::Graph g = fg::cycle(5);
  fe::Instance instance("t", g, spec_of(fe::SchedulerKind::kRoundRobin));
  std::vector<std::uint64_t> seen;
  const auto result = instance.stream(6, [&](std::uint64_t t, std::span<const fg::NodeId> happy) {
    seen.push_back(t);
    EXPECT_FALSE(happy.empty());
  });
  EXPECT_EQ(result.holidays, 6U);
  EXPECT_EQ(seen, (std::vector<std::uint64_t>{1, 2, 3, 4, 5, 6}));
}

TEST(Instance, AuditReportsPeriodicFairness) {
  const fg::Graph g = fg::random_regular(24, 3, 2);
  fe::Instance instance("t", g, spec_of(fe::SchedulerKind::kDegreeBound));
  instance.step(64);
  const auto audit = instance.audit();
  EXPECT_EQ(audit.horizon, 64U);
  EXPECT_TRUE(audit.bounds_respected);
  // Regular graph + identical periods => perfectly even service.
  EXPECT_NEAR(audit.jain, 1.0, 1e-9);
  EXPECT_GT(audit.throughput_ratio, 0.0);
}

TEST(Instance, AuditTracksAperiodicGaps) {
  const fg::Graph g = fg::star(10);
  fe::Instance instance("t", g, spec_of(fe::SchedulerKind::kPhasedGreedy));
  instance.step(200);
  const auto audit = instance.audit();
  EXPECT_EQ(audit.horizon, 200U);
  // Theorem 3.1: every gap within deg+1 (checked against gap_bound).
  EXPECT_TRUE(audit.bounds_respected) << "violators: " << audit.bound_violators.size();
  EXPECT_GT(audit.worst_gap, 0U);
}

// -------------------------------------------------------------- Registry ----

TEST(Registry, CreateFindErase) {
  fe::InstanceRegistry registry(4);
  const fg::Graph g = fg::path(4);
  (void)registry.create("a", g, spec_of(fe::SchedulerKind::kRoundRobin));
  (void)registry.create("b", g, spec_of(fe::SchedulerKind::kDegreeBound));
  EXPECT_EQ(registry.size(), 2U);
  EXPECT_NE(registry.find("a"), nullptr);
  EXPECT_EQ(registry.find("zzz"), nullptr);
  EXPECT_THROW((void)registry.create("a", g, spec_of(fe::SchedulerKind::kRoundRobin)),
               std::invalid_argument);
  EXPECT_TRUE(registry.erase("a"));
  EXPECT_FALSE(registry.erase("a"));
  EXPECT_EQ(registry.size(), 1U);
  const auto all = registry.all_sorted();
  ASSERT_EQ(all.size(), 1U);
  EXPECT_EQ(all[0]->name(), "b");
}

TEST(Registry, ErasedInstanceSurvivesInFlightHandles) {
  fe::InstanceRegistry registry(2);
  const fg::Graph g = fg::clique(5);
  auto handle = registry.create("x", g, spec_of(fe::SchedulerKind::kDegreeBound));
  EXPECT_TRUE(registry.erase("x"));
  // The shared_ptr keeps the instance alive and usable.
  EXPECT_TRUE(handle->is_happy(0, handle->period_table_shared()->phase(0)));
}

// -------------------------------------------------- BatchExecutor sweep ----

TEST(Executor, StepAllMatchesSequentialStepping) {
  // The same fleet stepped by a many-thread executor and by hand must land
  // in identical states: scheduling is deterministic per instance.
  const std::uint64_t kSteps = 37;
  fe::Engine parallel_engine({.shards = 8, .threads = 8});
  std::vector<std::unique_ptr<fco::Scheduler>> reference;
  std::vector<fg::Graph> graphs;
  std::vector<std::string> names;
  for (int i = 0; i < 50; ++i) {
    graphs.push_back(fg::gnp(30, 0.1, 100 + static_cast<std::uint64_t>(i)));
  }
  for (int i = 0; i < 50; ++i) {
    const fe::InstanceSpec spec = spec_of(
        (i % 2 == 0) ? fe::SchedulerKind::kPhasedGreedy : fe::SchedulerKind::kDegreeBound,
        static_cast<std::uint64_t>(i));
    names.push_back("inst-" + std::to_string(i));
    (void)parallel_engine.create_instance(names.back(), graphs[i], spec);
    reference.push_back(fe::make_scheduler(graphs[i], spec));
  }
  const auto stats = parallel_engine.step_all(kSteps);
  EXPECT_EQ(stats.instances, 50U);
  EXPECT_EQ(stats.holidays, 50U * kSteps);

  std::uint64_t reference_happy = 0;
  for (std::size_t i = 0; i < reference.size(); ++i) {
    for (std::uint64_t t = 0; t < kSteps; ++t) {
      reference_happy += reference[i]->next_holiday().size();
    }
    EXPECT_EQ(parallel_engine.find(names[i])->current_holiday(), kSteps);
  }
  EXPECT_EQ(stats.total_happy, reference_happy);

  // A second, single-threaded engine lands in the same state too.
  fe::Engine serial_engine({.shards = 1, .threads = 1});
  for (std::size_t i = 0; i < names.size(); ++i) {
    const fe::InstanceSpec spec = spec_of(
        (i % 2 == 0) ? fe::SchedulerKind::kPhasedGreedy : fe::SchedulerKind::kDegreeBound,
        static_cast<std::uint64_t>(i));
    (void)serial_engine.create_instance(names[i], graphs[i], spec);
  }
  const auto serial_stats = serial_engine.step_all(kSteps);
  EXPECT_EQ(serial_stats.total_happy, stats.total_happy);
}

// -------------------------------------------------------------- Snapshot ----

TEST(Snapshot, BitCodecRoundTrips) {
  fe::BitWriter w;
  w.put_bits(0xA5, 8);
  w.put_uint(0);
  w.put_uint(1);
  w.put_uint(123456789);
  const auto bytes = w.finish();
  fe::BitReader r(bytes);
  EXPECT_EQ(r.get_bits(8), 0xA5U);
  EXPECT_EQ(r.get_uint(), 0U);
  EXPECT_EQ(r.get_uint(), 1U);
  EXPECT_EQ(r.get_uint(), 123456789U);
}

TEST(Snapshot, TruncatedInputThrows) {
  fe::BitReader r(std::span<const std::uint8_t>{});
  EXPECT_THROW((void)r.get_bit(), std::runtime_error);
  fe::InstanceRegistry registry(2);
  const std::vector<std::uint8_t> garbage{0x00, 0x01, 0x02};
  EXPECT_THROW(fe::restore_registry(registry, garbage), std::runtime_error);
}

TEST(Snapshot, MalformedSnapshotLeavesRegistryUntouched) {
  fe::InstanceRegistry registry(2);
  (void)registry.create("keep", fg::path(4), spec_of(fe::SchedulerKind::kRoundRobin));

  // A valid snapshot, truncated mid-stream: magic/version parse but the
  // instance payload is cut off.
  fe::InstanceRegistry donor(2);
  (void)donor.create("a", fg::clique(6), spec_of(fe::SchedulerKind::kDegreeBound));
  (void)donor.create("b", fg::cycle(8), spec_of(fe::SchedulerKind::kPrefixCode));
  auto bytes = fe::snapshot_registry(donor);
  bytes.resize(bytes.size() / 2);

  EXPECT_THROW(fe::restore_registry(registry, bytes), std::runtime_error);
  // The failed restore must not have cleared or half-populated the registry.
  EXPECT_EQ(registry.size(), 1U);
  EXPECT_NE(registry.find("keep"), nullptr);
  EXPECT_EQ(registry.find("a"), nullptr);
}

TEST(Snapshot, RoundTripIsByteIdentical) {
  fe::Engine engine({.shards = 4, .threads = 2});
  (void)engine.create_instance("periodic", fg::gnp(50, 0.08, 3),
                               spec_of(fe::SchedulerKind::kPrefixCode));
  (void)engine.create_instance("aperiodic", fg::barabasi_albert(40, 2, 4),
                               spec_of(fe::SchedulerKind::kPhasedGreedy));
  (void)engine.create_instance("weighted", fg::path(6),
                               spec_of(fe::SchedulerKind::kWeighted, 1, {2, 4, 4, 8, 8, 2}));
  (void)engine.create_instance("random", fg::cycle(12),
                               spec_of(fe::SchedulerKind::kFirstComeFirstGrab, 77));
  (void)engine.step_all(100);

  const auto bytes = engine.snapshot();
  fe::Engine restored({.shards = 2, .threads = 1});
  restored.load_snapshot(bytes);

  EXPECT_EQ(restored.num_instances(), 4U);
  const auto bytes2 = restored.snapshot();
  EXPECT_EQ(bytes, bytes2);
}

TEST(Snapshot, RestorePreservesStateAndQueries) {
  fe::Engine engine({.shards = 4, .threads = 2});
  const fg::Graph pg = fg::gnp(40, 0.1, 9);
  const fg::Graph ag = fg::gnp(40, 0.1, 10);
  (void)engine.create_instance("p", pg, spec_of(fe::SchedulerKind::kDegreeBound));
  (void)engine.create_instance("a", ag, spec_of(fe::SchedulerKind::kPhasedGreedy));
  (void)engine.step_all(128);

  fe::Engine restored;
  restored.load_snapshot(engine.snapshot());

  for (const auto* name : {"p", "a"}) {
    ASSERT_NE(restored.find(name), nullptr) << name;
    EXPECT_EQ(restored.find(name)->current_holiday(), 128U) << name;
  }
  // Queries agree on both engines, within and beyond the stepped horizon.
  fhg::parallel::Rng rng(13);
  for (int probe = 0; probe < 500; ++probe) {
    const auto v = static_cast<fg::NodeId>(rng.uniform_below(40));
    const std::uint64_t t = 1 + rng.uniform_below(200);
    EXPECT_EQ(engine.is_happy("p", v, t), restored.is_happy("p", v, t));
    EXPECT_EQ(engine.is_happy("a", v, t), restored.is_happy("a", v, t));
  }
  // Aperiodic replay restore also reconstructs the fairness statistics.
  const auto audit_a = engine.audit("a");
  const auto audit_b = restored.audit("a");
  EXPECT_EQ(audit_a.worst_gap, audit_b.worst_gap);
  EXPECT_DOUBLE_EQ(audit_a.jain, audit_b.jain);
  // total_happy is reconstructed analytically for the periodic instance.
  EXPECT_EQ(engine.find("p")->total_happy(), restored.find("p")->total_happy());
}

// ------------------------------------------------------------------ Spec ----

TEST(Spec, KindNamesRoundTrip) {
  // Every kind — sweeping the catalogue, so a freshly added kind cannot
  // silently break name parsing (or be forgotten here).
  for (const auto kind : fe::all_scheduler_kinds()) {
    const auto parsed = fe::parse_scheduler_kind(fe::scheduler_kind_name(kind));
    ASSERT_TRUE(parsed.has_value()) << fe::scheduler_kind_name(kind);
    EXPECT_EQ(*parsed, kind) << fe::scheduler_kind_name(kind);
    EXPECT_NE(fe::scheduler_kind_name(kind), "unknown");
  }
  EXPECT_EQ(fe::parse_scheduler_kind("nope"), std::nullopt);
}

TEST(Spec, WeightedSpecValidatesPeriodCount) {
  const fg::Graph g = fg::path(3);
  EXPECT_THROW(
      (void)fe::make_scheduler(g, spec_of(fe::SchedulerKind::kWeighted, 1, {2, 4})),
      std::invalid_argument);
}

// ------------------------------------------- Dynamic tenants + mutations ----

TEST(EngineMutation, DynamicTenantServesAcrossRecolor) {
  fe::Engine eng({.shards = 2, .threads = 2});
  // Four isolated parents: everyone starts at color 1, so the first marriage
  // is guaranteed to collide and force a recolor.
  (void)eng.create_instance("dyn", fg::Graph(4), spec_of(fe::SchedulerKind::kDynamicPrefixCode));
  const auto handle = eng.find("dyn");
  ASSERT_TRUE(handle->dynamic());
  ASSERT_TRUE(handle->periodic());
  EXPECT_EQ(handle->table_version(), 0U);
  (void)eng.step_all(8);

  const auto before = eng.query_snapshot();
  const bool before_0_happy_16 = eng.is_happy("dyn", 0, 16);

  const std::vector<fdy::MutationCommand> cmds{fdy::insert_edge_command(0, 1)};
  const auto result = eng.apply_mutations("dyn", cmds);
  EXPECT_EQ(result.applied, 1U);
  EXPECT_EQ(result.recolors, 1U);
  EXPECT_EQ(result.table_version, 1U);
  EXPECT_EQ(handle->table_version(), 1U);

  // The registry epoch moved, so the engine republishes its lock-free view;
  // the old snapshot keeps answering at its own (pre-mutation) version.
  const auto after = eng.query_snapshot();
  EXPECT_NE(before.get(), after.get());
  fe::Probe probe{0, 0, 16};
  std::uint8_t old_answer = 0;
  before->query_batch(std::span(&probe, 1), std::span(&old_answer, 1));
  EXPECT_EQ(old_answer != 0, before_0_happy_16);

  // Ground truth: step the tenant onward and compare every produced happy
  // set against the served answers — across the recolor boundary.
  const auto log = handle->mutation_log();
  ASSERT_EQ(log.size(), 1U);
  EXPECT_EQ(log[0].holiday, 8U);
  (void)handle->stream(64, [&](std::uint64_t t, std::span<const fg::NodeId> happy) {
    for (fg::NodeId v = 0; v < 4; ++v) {
      const bool truth = std::binary_search(happy.begin(), happy.end(), v);
      EXPECT_EQ(eng.is_happy("dyn", v, t), truth) << "node " << v << " holiday " << t;
    }
  });
  // next_gathering agrees with membership on the post-mutation schedule.
  for (fg::NodeId v = 0; v < 4; ++v) {
    const auto next = eng.next_gathering("dyn", v, 100);
    ASSERT_TRUE(next.has_value());
    EXPECT_TRUE(eng.is_happy("dyn", v, *next));
    for (std::uint64_t t = 101; t < *next; ++t) {
      EXPECT_FALSE(eng.is_happy("dyn", v, t));
    }
  }
}

TEST(EngineMutation, RejectsNonDynamicInstancesAndBadCommands) {
  fe::Engine eng;
  (void)eng.create_instance("static", fg::cycle(8), spec_of(fe::SchedulerKind::kPrefixCode));
  (void)eng.create_instance("dyn", fg::cycle(8), spec_of(fe::SchedulerKind::kDynamicPrefixCode));
  const std::vector<fdy::MutationCommand> cmds{fdy::insert_edge_command(0, 2)};
  EXPECT_THROW((void)eng.apply_mutations("static", cmds), std::logic_error);
  EXPECT_THROW((void)eng.apply_mutations("missing", cmds), std::out_of_range);
  const std::vector<fdy::MutationCommand> bad{fdy::insert_edge_command(3, 3)};
  EXPECT_THROW((void)eng.apply_mutations("dyn", bad), std::invalid_argument);
  const std::vector<fdy::MutationCommand> out_of_range{fdy::erase_edge_command(0, 99)};
  EXPECT_THROW((void)eng.apply_mutations("dyn", out_of_range), std::invalid_argument);

  // Batches are all-or-nothing: a malformed command anywhere rejects the
  // whole batch with nothing applied, logged, or republished.
  const auto handle = eng.find("dyn");
  const std::vector<fdy::MutationCommand> half_bad{fdy::insert_edge_command(0, 2),
                                                   fdy::erase_edge_command(0, 99)};
  EXPECT_THROW((void)eng.apply_mutations("dyn", half_bad), std::invalid_argument);
  EXPECT_TRUE(handle->mutation_log().empty());
  EXPECT_EQ(handle->table_version(), 0U);
  EXPECT_NO_THROW((void)eng.is_happy("dyn", 0, 1));  // still serving
}

TEST(EngineMutation, AddNodeGrowsServedTenant) {
  fe::Engine eng;
  (void)eng.create_instance("dyn", fg::cycle(6), spec_of(fe::SchedulerKind::kDynamicPrefixCode));
  const auto handle = eng.find("dyn");
  EXPECT_EQ(handle->num_nodes(), 6U);
  const std::vector<fdy::MutationCommand> cmds{fdy::add_node_command(),
                                               fdy::insert_edge_command(6, 0)};
  const auto result = eng.apply_mutations("dyn", cmds);
  EXPECT_EQ(result.applied, 2U);
  EXPECT_EQ(handle->num_nodes(), 7U);
  // The recipe graph is unchanged; only the live topology grew.
  EXPECT_EQ(handle->graph().num_nodes(), 6U);
  // The new node is served like any other.
  const auto next = eng.next_gathering("dyn", 6, 0);
  ASSERT_TRUE(next.has_value());
  EXPECT_TRUE(eng.is_happy("dyn", 6, *next));
}

TEST(SnapshotV2, MidLogRestoreIsByteIdentical) {
  fe::Engine eng({.shards = 4, .threads = 2});
  (void)eng.create_instance("dyn-a", fg::gnp(24, 0.1, 5),
                            spec_of(fe::SchedulerKind::kDynamicPrefixCode));
  (void)eng.create_instance("dyn-b", fg::cycle(16),
                            spec_of(fe::SchedulerKind::kDynamicPrefixCode));
  (void)eng.create_instance("static", fg::clique(6), spec_of(fe::SchedulerKind::kDegreeBound));
  (void)eng.create_instance("aper", fg::gnp(20, 0.1, 6),
                            spec_of(fe::SchedulerKind::kPhasedGreedy));

  // Mutations land at different holidays: mid-log, mid-history.
  (void)eng.step_all(8);
  (void)eng.apply_mutations(
      "dyn-a", std::vector{fdy::insert_edge_command(0, 1), fdy::erase_edge_command(2, 3),
                           fdy::add_node_command()});
  (void)eng.step_all(8);
  (void)eng.apply_mutations(
      "dyn-a", std::vector{fdy::insert_edge_command(24, 4)});  // touches the added node
  (void)eng.apply_mutations(
      "dyn-b", std::vector{fdy::insert_edge_command(0, 2), fdy::insert_edge_command(0, 4)});
  (void)eng.step_all(8);

  const auto bytes = eng.snapshot();
  fe::Engine restored({.shards = 2, .threads = 1});
  restored.load_snapshot(bytes);
  EXPECT_EQ(restored.snapshot(), bytes);  // byte-identical re-snapshot, mid-log

  // The restored dynamic tenants carry the same log and answer identically.
  for (const auto* name : {"dyn-a", "dyn-b"}) {
    const auto original = eng.find(name);
    const auto copy = restored.find(name);
    ASSERT_NE(copy, nullptr) << name;
    EXPECT_EQ(original->mutation_log(), copy->mutation_log()) << name;
    EXPECT_EQ(original->current_holiday(), copy->current_holiday()) << name;
    EXPECT_EQ(original->num_nodes(), copy->num_nodes()) << name;
    for (fg::NodeId v = 0; v < original->num_nodes(); ++v) {
      for (std::uint64_t t = 1; t <= 64; ++t) {
        ASSERT_EQ(original->is_happy(v, t), copy->is_happy(v, t))
            << name << " node " << v << " holiday " << t;
      }
    }
  }
}

TEST(SnapshotV2, V1StillLoadsAndDynamicTenancyRejectsV1) {
  fe::InstanceRegistry registry(4);
  (void)registry.create("a", fg::gnp(30, 0.1, 7), spec_of(fe::SchedulerKind::kPrefixCode));
  (void)registry.create("b", fg::cycle(10), spec_of(fe::SchedulerKind::kDegreeBound));

  const auto v1 = fe::snapshot_registry(registry, fe::kSnapshotVersionV1);
  const auto v2 = fe::snapshot_registry(registry);
  EXPECT_NE(v1, v2);  // version byte (and v2 fields) differ on the wire

  fe::InstanceRegistry out(2);
  fe::restore_registry(out, v1);  // version dispatch: v1 still loads
  EXPECT_EQ(out.size(), 2U);
  // A v1 restore zeroes the v3-only spec knobs (those tenants were built
  // serial, and replay must keep them serial), so the latest-version bytes
  // differ from a fresh tenancy's in the spec fields.  Old-format encodings
  // of both tenancies are identical — and the v1 round trip is canonical.
  EXPECT_EQ(fe::snapshot_registry(out, fe::kSnapshotVersionV2),
            fe::snapshot_registry(registry, fe::kSnapshotVersionV2));
  EXPECT_EQ(fe::snapshot_registry(out, fe::kSnapshotVersionV1), v1);

  // A tenancy with a dynamic instance cannot be written as v1 (no log slot).
  (void)registry.create("dyn", fg::Graph(4), spec_of(fe::SchedulerKind::kDynamicPrefixCode));
  EXPECT_THROW((void)fe::snapshot_registry(registry, fe::kSnapshotVersionV1),
               std::invalid_argument);
  EXPECT_THROW((void)fe::snapshot_registry(registry, 99), std::invalid_argument);
}

TEST(SnapshotV2, TruncationAndCorruptionFailTyped) {
  fe::Engine eng;
  (void)eng.create_instance("dyn", fg::cycle(8), spec_of(fe::SchedulerKind::kDynamicPrefixCode));
  (void)eng.step_all(4);
  (void)eng.apply_mutations("dyn", std::vector{fdy::insert_edge_command(0, 2)});
  const auto bytes = eng.snapshot();

  // Every proper prefix either fails with a typed error or — for cuts that
  // only drop zero padding — restores cleanly.  Nothing else is acceptable.
  std::size_t threw = 0;
  for (std::size_t len = 0; len < bytes.size(); ++len) {
    fe::InstanceRegistry scratch(2);
    try {
      fe::restore_registry(scratch, std::span(bytes.data(), len));
    } catch (const std::runtime_error&) {
      ++threw;
    } catch (const std::invalid_argument&) {
      ++threw;
    }
  }
  EXPECT_GE(threw, bytes.size() - 2);

  // Single-bit corruption: typed error or a well-formed (different) tenancy;
  // never UB — the sanitizer job keeps this honest.
  for (std::size_t pos = 0; pos < bytes.size(); ++pos) {
    auto corrupt = bytes;
    corrupt[pos] ^= 0x10;
    fe::InstanceRegistry scratch(2);
    try {
      fe::restore_registry(scratch, corrupt);
    } catch (const std::runtime_error&) {
    } catch (const std::invalid_argument&) {
    }
  }

  // Deterministic garbage with a valid magic still fails typed.
  fhg::parallel::Rng rng(99);
  std::vector<std::uint8_t> garbage{0x46, 0x48, 0x47, 0x53};
  for (int i = 0; i < 64; ++i) {
    garbage.push_back(static_cast<std::uint8_t>(rng.uniform_below(256)));
  }
  fe::InstanceRegistry scratch(2);
  EXPECT_THROW(fe::restore_registry(scratch, garbage), std::runtime_error);
}
