// Tests for fhg::engine — the multi-tenant serving layer: period-table O(1)
// queries vs. naive replay, concurrent step_all determinism, snapshot
// round-trips, registry semantics, and the bit-level snapshot codec.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "fhg/core/prefix_code_scheduler.hpp"
#include "fhg/coloring/greedy.hpp"
#include "fhg/engine/engine.hpp"
#include "fhg/engine/period_table.hpp"
#include "fhg/engine/replay_index.hpp"
#include "fhg/engine/snapshot.hpp"
#include "fhg/engine/spec.hpp"
#include "fhg/graph/generators.hpp"
#include "fhg/parallel/rng.hpp"

namespace fg = fhg::graph;
namespace fe = fhg::engine;
namespace fco = fhg::core;

namespace {

/// InstanceSpec factory (avoids partially-designated initializers, which
/// -Wextra flags even when the omitted members have defaults).
fe::InstanceSpec spec_of(fe::SchedulerKind kind, std::uint64_t seed = 1,
                         std::vector<std::uint64_t> periods = {}) {
  fe::InstanceSpec spec;
  spec.kind = kind;
  spec.seed = seed;
  spec.periods = std::move(periods);
  return spec;
}

/// Replays `s` from scratch and records which holidays ≤ horizon make each
/// node happy — the ground truth every fast path must agree with.
std::vector<std::vector<bool>> replay_membership(fco::Scheduler& s, std::uint64_t horizon) {
  s.reset();
  std::vector<std::vector<bool>> happy(s.graph().num_nodes(),
                                       std::vector<bool>(horizon + 1, false));
  for (std::uint64_t t = 1; t <= horizon; ++t) {
    for (const fg::NodeId v : s.next_holiday()) {
      happy[v][t] = true;
    }
  }
  return happy;
}

}  // namespace

// ---------------------------------------------------------- PeriodTable ----

TEST(PeriodTable, AgreesWithReplayOnRandomProbes) {
  const fg::Graph g = fg::gnp(60, 0.1, 7);
  const std::vector<fe::SchedulerKind> kinds{
      fe::SchedulerKind::kRoundRobin,
      fe::SchedulerKind::kPrefixCode,
      fe::SchedulerKind::kDegreeBound,
  };
  for (const auto kind : kinds) {
    auto s = fe::make_scheduler(g, spec_of(kind));
    const auto table = fe::PeriodTable::build(*s);
    ASSERT_TRUE(table.has_value()) << fe::scheduler_kind_name(kind);
    constexpr std::uint64_t kHorizon = 512;
    const auto truth = replay_membership(*s, kHorizon);
    fhg::parallel::Rng rng(99);
    for (int probe = 0; probe < 1000; ++probe) {
      const auto v = static_cast<fg::NodeId>(rng.uniform_below(g.num_nodes()));
      const std::uint64_t t = 1 + rng.uniform_below(kHorizon);
      EXPECT_EQ(table->is_happy(v, t), truth[v][t])
          << fe::scheduler_kind_name(kind) << " node " << v << " holiday " << t;
    }
  }
}

TEST(PeriodTable, NextGatheringIsFirstMatchAfter) {
  const fg::Graph g = fg::star(9);
  const auto s = fe::make_scheduler(g, spec_of(fe::SchedulerKind::kDegreeBound));
  const auto table = fe::PeriodTable::build(*s);
  ASSERT_TRUE(table.has_value());
  for (fg::NodeId v = 0; v < g.num_nodes(); ++v) {
    for (const std::uint64_t after : {std::uint64_t{0}, std::uint64_t{1}, std::uint64_t{37}}) {
      const std::uint64_t next = table->next_gathering(v, after);
      EXPECT_GT(next, after);
      EXPECT_TRUE(table->is_happy(v, next));
      for (std::uint64_t t = after + 1; t < next; ++t) {
        EXPECT_FALSE(table->is_happy(v, t));
      }
    }
  }
  // phase is the first gathering overall.
  for (fg::NodeId v = 0; v < g.num_nodes(); ++v) {
    EXPECT_EQ(table->next_gathering(v, 0), table->phase(v));
  }
}

TEST(PeriodTable, RejectsAperiodicSchedulers) {
  const fg::Graph g = fg::cycle(6);
  const auto s = fe::make_scheduler(g, spec_of(fe::SchedulerKind::kPhasedGreedy));
  EXPECT_FALSE(fe::PeriodTable::build(*s).has_value());
}

// ------------------------------------------------------ Scheduler phases ----

TEST(SchedulerPhase, MatchesFirstAppearance) {
  const fg::Graph g = fg::barabasi_albert(40, 2, 11);
  for (const auto kind : {fe::SchedulerKind::kRoundRobin, fe::SchedulerKind::kPrefixCode,
                          fe::SchedulerKind::kDegreeBound}) {
    auto s = fe::make_scheduler(g, spec_of(kind));
    std::vector<std::uint64_t> first(g.num_nodes(), 0);
    for (std::uint64_t t = 1; t <= 2048; ++t) {
      for (const fg::NodeId v : s->next_holiday()) {
        if (first[v] == 0) {
          first[v] = t;
        }
      }
    }
    for (fg::NodeId v = 0; v < g.num_nodes(); ++v) {
      const auto phase = s->phase_of(v);
      ASSERT_TRUE(phase.has_value());
      if (first[v] != 0) {
        EXPECT_EQ(*phase, first[v]) << fe::scheduler_kind_name(kind) << " node " << v;
      }
    }
  }
}

TEST(SchedulerPhase, AdvanceToSkipsStatelessSchedulers) {
  const fg::Graph g = fg::clique(8);
  auto s = fe::make_scheduler(g, spec_of(fe::SchedulerKind::kDegreeBound));
  s->advance_to(1'000'000'000ULL);
  EXPECT_EQ(s->current_holiday(), 1'000'000'000ULL);
  // Replay-based default: phased greedy really replays.
  auto pg = fe::make_scheduler(g, spec_of(fe::SchedulerKind::kPhasedGreedy));
  pg->advance_to(100);
  EXPECT_EQ(pg->current_holiday(), 100U);
}

TEST(SchedulerPhase, AdvanceToPreservesSchedule) {
  // Skipping then stepping must equal stepping all the way (stateless kinds).
  const fg::Graph g = fg::gnp(30, 0.15, 3);
  for (const auto kind : {fe::SchedulerKind::kRoundRobin, fe::SchedulerKind::kPrefixCode,
                          fe::SchedulerKind::kDegreeBound, fe::SchedulerKind::kFirstComeFirstGrab}) {
    auto a = fe::make_scheduler(g, spec_of(kind, 5));
    auto b = fe::make_scheduler(g, spec_of(kind, 5));
    for (std::uint64_t t = 1; t <= 64; ++t) {
      (void)a->next_holiday();
    }
    b->advance_to(64);
    for (int i = 0; i < 16; ++i) {
      EXPECT_EQ(a->next_holiday(), b->next_holiday()) << fe::scheduler_kind_name(kind);
    }
  }
}

// ---------------------------------------------------------- ReplayIndex ----

TEST(ReplayIndex, MembershipAndNextGathering) {
  fe::ReplayIndex index(4);
  index.observe(1, std::vector<fg::NodeId>{0, 2});
  index.observe(2, std::vector<fg::NodeId>{1});
  index.observe(3, std::vector<fg::NodeId>{0, 3});
  EXPECT_EQ(index.horizon(), 3U);
  EXPECT_TRUE(index.is_happy(0, 1));
  EXPECT_FALSE(index.is_happy(0, 2));
  EXPECT_TRUE(index.is_happy(0, 3));
  EXPECT_EQ(index.next_gathering(0, 1), std::optional<std::uint64_t>{3});
  EXPECT_EQ(index.next_gathering(1, 2), std::nullopt);
  EXPECT_EQ(index.appearances(0).size(), 2U);
}

// ----------------------------------------------------- Instance queries ----

TEST(Instance, AperiodicQueriesAgreeWithReplay) {
  const fg::Graph g = fg::gnp(40, 0.12, 21);
  fe::Instance instance("t", g, spec_of(fe::SchedulerKind::kPhasedGreedy));
  ASSERT_FALSE(instance.periodic());

  auto truth_scheduler = fe::make_scheduler(g, spec_of(fe::SchedulerKind::kPhasedGreedy));
  constexpr std::uint64_t kHorizon = 256;
  const auto truth = replay_membership(*truth_scheduler, kHorizon);

  fhg::parallel::Rng rng(5);
  for (int probe = 0; probe < 1000; ++probe) {
    const auto v = static_cast<fg::NodeId>(rng.uniform_below(g.num_nodes()));
    const std::uint64_t t = 1 + rng.uniform_below(kHorizon);
    EXPECT_EQ(instance.is_happy(v, t), truth[v][t]) << "node " << v << " holiday " << t;
  }

  // next_gathering walks the memoized prefix and extends it on demand.
  const auto next = instance.next_gathering(0, kHorizon);
  ASSERT_TRUE(next.has_value());
  EXPECT_GT(*next, kHorizon);
  EXPECT_TRUE(instance.is_happy(0, *next));
}

TEST(Instance, RejectsOutOfRangeNodes) {
  const fg::Graph g = fg::path(5);
  fe::Instance periodic("p", g, spec_of(fe::SchedulerKind::kDegreeBound));
  fe::Instance aperiodic("a", g, spec_of(fe::SchedulerKind::kPhasedGreedy));
  EXPECT_THROW((void)periodic.is_happy(5, 1), std::out_of_range);
  EXPECT_THROW((void)periodic.next_gathering(99, 0), std::out_of_range);
  EXPECT_THROW((void)aperiodic.is_happy(5, 1), std::out_of_range);
}

TEST(Instance, ReplayLimitBoundsFarFutureQueries) {
  const fg::Graph g = fg::cycle(6);
  fe::Instance instance("t", g, spec_of(fe::SchedulerKind::kPhasedGreedy));
  // Within the limit: extends and answers.
  (void)instance.is_happy(0, 100);
  EXPECT_GE(instance.current_holiday(), 100U);
  // Far beyond: refuses instead of replaying under the lock forever.
  EXPECT_THROW((void)instance.is_happy(0, instance.current_holiday() + 1'000, /*replay_limit=*/10),
               std::runtime_error);
}

TEST(Instance, StreamDeliversEveryHoliday) {
  const fg::Graph g = fg::cycle(5);
  fe::Instance instance("t", g, spec_of(fe::SchedulerKind::kRoundRobin));
  std::vector<std::uint64_t> seen;
  const auto result = instance.stream(6, [&](std::uint64_t t, std::span<const fg::NodeId> happy) {
    seen.push_back(t);
    EXPECT_FALSE(happy.empty());
  });
  EXPECT_EQ(result.holidays, 6U);
  EXPECT_EQ(seen, (std::vector<std::uint64_t>{1, 2, 3, 4, 5, 6}));
}

TEST(Instance, AuditReportsPeriodicFairness) {
  const fg::Graph g = fg::random_regular(24, 3, 2);
  fe::Instance instance("t", g, spec_of(fe::SchedulerKind::kDegreeBound));
  instance.step(64);
  const auto audit = instance.audit();
  EXPECT_EQ(audit.horizon, 64U);
  EXPECT_TRUE(audit.bounds_respected);
  // Regular graph + identical periods => perfectly even service.
  EXPECT_NEAR(audit.jain, 1.0, 1e-9);
  EXPECT_GT(audit.throughput_ratio, 0.0);
}

TEST(Instance, AuditTracksAperiodicGaps) {
  const fg::Graph g = fg::star(10);
  fe::Instance instance("t", g, spec_of(fe::SchedulerKind::kPhasedGreedy));
  instance.step(200);
  const auto audit = instance.audit();
  EXPECT_EQ(audit.horizon, 200U);
  // Theorem 3.1: every gap within deg+1 (checked against gap_bound).
  EXPECT_TRUE(audit.bounds_respected) << "violators: " << audit.bound_violators.size();
  EXPECT_GT(audit.worst_gap, 0U);
}

// -------------------------------------------------------------- Registry ----

TEST(Registry, CreateFindErase) {
  fe::InstanceRegistry registry(4);
  const fg::Graph g = fg::path(4);
  (void)registry.create("a", g, spec_of(fe::SchedulerKind::kRoundRobin));
  (void)registry.create("b", g, spec_of(fe::SchedulerKind::kDegreeBound));
  EXPECT_EQ(registry.size(), 2U);
  EXPECT_NE(registry.find("a"), nullptr);
  EXPECT_EQ(registry.find("zzz"), nullptr);
  EXPECT_THROW((void)registry.create("a", g, spec_of(fe::SchedulerKind::kRoundRobin)),
               std::invalid_argument);
  EXPECT_TRUE(registry.erase("a"));
  EXPECT_FALSE(registry.erase("a"));
  EXPECT_EQ(registry.size(), 1U);
  const auto all = registry.all_sorted();
  ASSERT_EQ(all.size(), 1U);
  EXPECT_EQ(all[0]->name(), "b");
}

TEST(Registry, ErasedInstanceSurvivesInFlightHandles) {
  fe::InstanceRegistry registry(2);
  const fg::Graph g = fg::clique(5);
  auto handle = registry.create("x", g, spec_of(fe::SchedulerKind::kDegreeBound));
  EXPECT_TRUE(registry.erase("x"));
  // The shared_ptr keeps the instance alive and usable.
  EXPECT_TRUE(handle->is_happy(0, handle->period_table()->phase(0)));
}

// -------------------------------------------------- BatchExecutor sweep ----

TEST(Executor, StepAllMatchesSequentialStepping) {
  // The same fleet stepped by a many-thread executor and by hand must land
  // in identical states: scheduling is deterministic per instance.
  const std::uint64_t kSteps = 37;
  fe::Engine parallel_engine({.shards = 8, .threads = 8});
  std::vector<std::unique_ptr<fco::Scheduler>> reference;
  std::vector<fg::Graph> graphs;
  std::vector<std::string> names;
  for (int i = 0; i < 50; ++i) {
    graphs.push_back(fg::gnp(30, 0.1, 100 + static_cast<std::uint64_t>(i)));
  }
  for (int i = 0; i < 50; ++i) {
    const fe::InstanceSpec spec = spec_of(
        (i % 2 == 0) ? fe::SchedulerKind::kPhasedGreedy : fe::SchedulerKind::kDegreeBound,
        static_cast<std::uint64_t>(i));
    names.push_back("inst-" + std::to_string(i));
    (void)parallel_engine.create_instance(names.back(), graphs[i], spec);
    reference.push_back(fe::make_scheduler(graphs[i], spec));
  }
  const auto stats = parallel_engine.step_all(kSteps);
  EXPECT_EQ(stats.instances, 50U);
  EXPECT_EQ(stats.holidays, 50U * kSteps);

  std::uint64_t reference_happy = 0;
  for (std::size_t i = 0; i < reference.size(); ++i) {
    for (std::uint64_t t = 0; t < kSteps; ++t) {
      reference_happy += reference[i]->next_holiday().size();
    }
    EXPECT_EQ(parallel_engine.find(names[i])->current_holiday(), kSteps);
  }
  EXPECT_EQ(stats.total_happy, reference_happy);

  // A second, single-threaded engine lands in the same state too.
  fe::Engine serial_engine({.shards = 1, .threads = 1});
  for (std::size_t i = 0; i < names.size(); ++i) {
    const fe::InstanceSpec spec = spec_of(
        (i % 2 == 0) ? fe::SchedulerKind::kPhasedGreedy : fe::SchedulerKind::kDegreeBound,
        static_cast<std::uint64_t>(i));
    (void)serial_engine.create_instance(names[i], graphs[i], spec);
  }
  const auto serial_stats = serial_engine.step_all(kSteps);
  EXPECT_EQ(serial_stats.total_happy, stats.total_happy);
}

// -------------------------------------------------------------- Snapshot ----

TEST(Snapshot, BitCodecRoundTrips) {
  fe::BitWriter w;
  w.put_bits(0xA5, 8);
  w.put_uint(0);
  w.put_uint(1);
  w.put_uint(123456789);
  const auto bytes = w.finish();
  fe::BitReader r(bytes);
  EXPECT_EQ(r.get_bits(8), 0xA5U);
  EXPECT_EQ(r.get_uint(), 0U);
  EXPECT_EQ(r.get_uint(), 1U);
  EXPECT_EQ(r.get_uint(), 123456789U);
}

TEST(Snapshot, TruncatedInputThrows) {
  fe::BitReader r(std::span<const std::uint8_t>{});
  EXPECT_THROW((void)r.get_bit(), std::runtime_error);
  fe::InstanceRegistry registry(2);
  const std::vector<std::uint8_t> garbage{0x00, 0x01, 0x02};
  EXPECT_THROW(fe::restore_registry(registry, garbage), std::runtime_error);
}

TEST(Snapshot, MalformedSnapshotLeavesRegistryUntouched) {
  fe::InstanceRegistry registry(2);
  (void)registry.create("keep", fg::path(4), spec_of(fe::SchedulerKind::kRoundRobin));

  // A valid snapshot, truncated mid-stream: magic/version parse but the
  // instance payload is cut off.
  fe::InstanceRegistry donor(2);
  (void)donor.create("a", fg::clique(6), spec_of(fe::SchedulerKind::kDegreeBound));
  (void)donor.create("b", fg::cycle(8), spec_of(fe::SchedulerKind::kPrefixCode));
  auto bytes = fe::snapshot_registry(donor);
  bytes.resize(bytes.size() / 2);

  EXPECT_THROW(fe::restore_registry(registry, bytes), std::runtime_error);
  // The failed restore must not have cleared or half-populated the registry.
  EXPECT_EQ(registry.size(), 1U);
  EXPECT_NE(registry.find("keep"), nullptr);
  EXPECT_EQ(registry.find("a"), nullptr);
}

TEST(Snapshot, RoundTripIsByteIdentical) {
  fe::Engine engine({.shards = 4, .threads = 2});
  (void)engine.create_instance("periodic", fg::gnp(50, 0.08, 3),
                               spec_of(fe::SchedulerKind::kPrefixCode));
  (void)engine.create_instance("aperiodic", fg::barabasi_albert(40, 2, 4),
                               spec_of(fe::SchedulerKind::kPhasedGreedy));
  (void)engine.create_instance("weighted", fg::path(6),
                               spec_of(fe::SchedulerKind::kWeighted, 1, {2, 4, 4, 8, 8, 2}));
  (void)engine.create_instance("random", fg::cycle(12),
                               spec_of(fe::SchedulerKind::kFirstComeFirstGrab, 77));
  (void)engine.step_all(100);

  const auto bytes = engine.snapshot();
  fe::Engine restored({.shards = 2, .threads = 1});
  restored.load_snapshot(bytes);

  EXPECT_EQ(restored.num_instances(), 4U);
  const auto bytes2 = restored.snapshot();
  EXPECT_EQ(bytes, bytes2);
}

TEST(Snapshot, RestorePreservesStateAndQueries) {
  fe::Engine engine({.shards = 4, .threads = 2});
  const fg::Graph pg = fg::gnp(40, 0.1, 9);
  const fg::Graph ag = fg::gnp(40, 0.1, 10);
  (void)engine.create_instance("p", pg, spec_of(fe::SchedulerKind::kDegreeBound));
  (void)engine.create_instance("a", ag, spec_of(fe::SchedulerKind::kPhasedGreedy));
  (void)engine.step_all(128);

  fe::Engine restored;
  restored.load_snapshot(engine.snapshot());

  for (const auto* name : {"p", "a"}) {
    ASSERT_NE(restored.find(name), nullptr) << name;
    EXPECT_EQ(restored.find(name)->current_holiday(), 128U) << name;
  }
  // Queries agree on both engines, within and beyond the stepped horizon.
  fhg::parallel::Rng rng(13);
  for (int probe = 0; probe < 500; ++probe) {
    const auto v = static_cast<fg::NodeId>(rng.uniform_below(40));
    const std::uint64_t t = 1 + rng.uniform_below(200);
    EXPECT_EQ(engine.is_happy("p", v, t), restored.is_happy("p", v, t));
    EXPECT_EQ(engine.is_happy("a", v, t), restored.is_happy("a", v, t));
  }
  // Aperiodic replay restore also reconstructs the fairness statistics.
  const auto audit_a = engine.audit("a");
  const auto audit_b = restored.audit("a");
  EXPECT_EQ(audit_a.worst_gap, audit_b.worst_gap);
  EXPECT_DOUBLE_EQ(audit_a.jain, audit_b.jain);
  // total_happy is reconstructed analytically for the periodic instance.
  EXPECT_EQ(engine.find("p")->total_happy(), restored.find("p")->total_happy());
}

// ------------------------------------------------------------------ Spec ----

TEST(Spec, KindNamesRoundTrip) {
  for (const auto kind : {fe::SchedulerKind::kRoundRobin, fe::SchedulerKind::kPhasedGreedy,
                          fe::SchedulerKind::kPrefixCode, fe::SchedulerKind::kDegreeBound,
                          fe::SchedulerKind::kFirstComeFirstGrab, fe::SchedulerKind::kWeighted}) {
    const auto parsed = fe::parse_scheduler_kind(fe::scheduler_kind_name(kind));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, kind);
  }
  EXPECT_EQ(fe::parse_scheduler_kind("nope"), std::nullopt);
}

TEST(Spec, WeightedSpecValidatesPeriodCount) {
  const fg::Graph g = fg::path(3);
  EXPECT_THROW(
      (void)fe::make_scheduler(g, spec_of(fe::SchedulerKind::kWeighted, 1, {2, 4})),
      std::invalid_argument);
}
