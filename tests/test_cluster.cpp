// Tests for fhg::cluster: the consistent-hash ring's placement contract
// (determinism, succession, bounded remap) and the router's failover story
// against real in-process backends — mirrored writes, read failover,
// eviction + snapshot migration, re-registration, drain — capped by the
// acceptance property: schedules served through the router stay *byte
// identical* with a single-process reference across the loss of a backend.
// When the fhg_serve example binary is on disk (FHG_SERVE_PATH), the same
// property is re-proved against real processes killed with SIGKILL.

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <future>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <variant>
#include <vector>

#include "fhg/api/client.hpp"
#include "fhg/api/protocol.hpp"
#include "fhg/api/socket.hpp"
#include "fhg/api/transport.hpp"
#include "fhg/cluster/ring.hpp"
#include "fhg/cluster/router.hpp"
#include "fhg/dynamic/mutation.hpp"
#include "fhg/engine/engine.hpp"
#include "fhg/graph/generators.hpp"
#include "fhg/obs/registry.hpp"
#include "fhg/service/service.hpp"

namespace fa = fhg::api;
namespace fc = fhg::cluster;
namespace fd = fhg::dynamic;
namespace fe = fhg::engine;
namespace fg = fhg::graph;
namespace fo = fhg::obs;
namespace fs = fhg::service;

namespace {

// ------------------------------------------------------------------ ring ---

TEST(Ring, PlacementIsDeterministicAndOrderIndependent) {
  fc::HashRing forward(64);
  fc::HashRing backward(64);
  const std::vector<std::string> names = {"alpha", "bravo", "charlie", "delta"};
  for (const auto& name : names) {
    forward.add_node(name);
  }
  for (auto it = names.rbegin(); it != names.rend(); ++it) {
    backward.add_node(*it);
  }
  ASSERT_EQ(forward.nodes(), backward.nodes());
  for (int i = 0; i < 200; ++i) {
    const std::string key = "tenant-" + std::to_string(i);
    const std::string owner = forward.owner_of(key);
    EXPECT_EQ(owner, backward.owner_of(key)) << key;
    EXPECT_EQ(forward.successor_of(key), backward.successor_of(key)) << key;
    EXPECT_NE(owner, forward.successor_of(key))
        << key << ": the replica must be a different backend";
  }
}

TEST(Ring, SuccessorInheritsExactlyTheEvictedArc) {
  // The property the whole failover design leans on: after removing one
  // backend, every key it owned is owned by what was its *successor*, and
  // no other key moves at all.
  fc::HashRing ring(64);
  for (const std::string name : {"b0", "b1", "b2", "b3"}) {
    ring.add_node(name);
  }
  std::map<std::string, std::pair<std::string, std::string>> before;
  for (int i = 0; i < 300; ++i) {
    const std::string key = "tenant-" + std::to_string(i);
    before[key] = {ring.owner_of(key), ring.successor_of(key)};
  }
  const std::string dead = "b2";
  ring.remove_node(dead);
  for (const auto& [key, placement] : before) {
    if (placement.first == dead) {
      EXPECT_EQ(ring.owner_of(key), placement.second)
          << key << ": the replica must inherit ownership";
    } else {
      EXPECT_EQ(ring.owner_of(key), placement.first) << key << ": must not move";
    }
  }
}

TEST(Ring, LoadSpreadsAcrossBackendsEvenForNumberedFleets) {
  // Regression: raw FNV-1a barely changes the high bits between `fleet-1`
  // and `fleet-2`, which herded entire numbered fleets onto one backend
  // until the ring started finalizing its coordinates.  Every backend must
  // own a healthy share of a numbered fleet.
  fc::HashRing ring(64);
  for (const std::string name : {"b0", "b1", "b2"}) {
    ring.add_node(name);
  }
  std::map<std::string, int> owned;
  const int fleet = 120;
  for (int i = 0; i < fleet; ++i) {
    ++owned[ring.owner_of("fleet-" + std::to_string(i))];
  }
  ASSERT_EQ(owned.size(), 3u) << "every backend must own part of the fleet";
  for (const auto& [backend, count] : owned) {
    EXPECT_GE(count, fleet / 10) << backend << " owns a starved share";
  }
}

TEST(Ring, RemapFractionOnMembershipChangeIsBounded) {
  fc::HashRing ring(64);
  for (const std::string name : {"b0", "b1", "b2", "b3"}) {
    ring.add_node(name);
  }
  std::map<std::string, std::string> before;
  const int keys = 400;
  for (int i = 0; i < keys; ++i) {
    const std::string key = "tenant-" + std::to_string(i);
    before[key] = ring.owner_of(key);
  }
  ring.add_node("b4");
  int moved = 0;
  for (const auto& [key, owner] : before) {
    moved += ring.owner_of(key) != owner ? 1 : 0;
  }
  // Expectation is 1/5 of the keys; double it for hash variance.  The point
  // is the contrast with naive modulo placement, which remaps ~4/5.
  EXPECT_GT(moved, 0);
  EXPECT_LE(moved, (2 * keys) / 5) << "adding one backend reshuffled the fleet";
}

// -------------------------------------------------------------- router -----

/// One in-process backend: engine + single-shard service + TCP server.  A
/// single service shard keeps each backend's mutation order exactly the
/// router's submission order, which the byte-identity tests lean on.
struct Backend {
  std::string name;
  std::unique_ptr<fe::Engine> engine;
  std::unique_ptr<fs::Service> service;
  std::unique_ptr<fa::SocketServer> server;
  std::uint16_t port = 0;

  explicit Backend(std::string backend_name) : name(std::move(backend_name)) {
    engine = std::make_unique<fe::Engine>(fe::EngineOptions{.shards = 2, .threads = 1});
    service = std::make_unique<fs::Service>(
        *engine, fs::ServiceOptions{.shards = 1, .backend_id = name});
    server = std::make_unique<fa::SocketServer>(*service, fa::SocketServerOptions{});
    port = server->port();
  }

  /// The kill: sever the listener and every connection.  From the router's
  /// side this is indistinguishable from a crashed process.
  void stop() { server->stop(); }

  /// Recovery on the *same* port (the router dials the configured endpoint;
  /// SO_REUSEADDR makes the rebind race-free).
  void restart() {
    server = std::make_unique<fa::SocketServer>(
        *service, fa::SocketServerOptions{.port = port});
  }
};

/// N backends plus a router over them, probing disabled — tests drive the
/// failure detector explicitly through `probe_now`.
struct Cluster {
  std::vector<std::unique_ptr<Backend>> backends;
  std::unique_ptr<fc::Router> router;

  explicit Cluster(std::size_t n) {
    fc::RouterOptions options;
    for (std::size_t i = 0; i < n; ++i) {
      backends.push_back(std::make_unique<Backend>(std::string("b") + std::to_string(i)));
      options.backends.push_back(
          fc::BackendConfig{backends.back()->name, "127.0.0.1", backends.back()->port});
    }
    options.workers = 2;
    options.probe_interval = std::chrono::milliseconds(0);
    options.probe_failures_to_evict = 2;
    router = std::make_unique<fc::Router>(std::move(options));
  }

  ~Cluster() {
    router->stop();
    for (auto& backend : backends) {
      backend->stop();
    }
  }

  [[nodiscard]] Backend& named(const std::string& name) const {
    for (const auto& backend : backends) {
      if (backend->name == name) {
        return *backend;
      }
    }
    throw std::runtime_error("no backend named " + name);
  }

  /// Synchronous request through the router's handler (the `SocketServer`
  /// path adds only framing, which test_transport already covers).
  [[nodiscard]] fa::Response call(fa::Request request) const {
    std::promise<fa::Response> promise;
    auto future = promise.get_future();
    router->handle(std::move(request),
                   [&promise](fa::Response response) { promise.set_value(std::move(response)); });
    return future.get();
  }

  /// Evicts by running probe rounds until the threshold trips.
  void evict_via_probes() const {
    router->probe_now();
    router->probe_now();
  }

  [[nodiscard]] std::uint64_t counter(const std::string& name) const {
    for (const fo::MetricSample& sample : router->metrics().snapshot()) {
      if (sample.name == name) {
        return static_cast<std::uint64_t>(sample.value);
      }
    }
    return 0;
  }
};

/// A small deterministic fleet: alternating static cycles and dynamic
/// instances, created through `call` so the placement is the router's.
const int kFleet = 6;
const int kNodes = 10;
const int kHorizon = 48;

std::string tenant(int i) { return "tenant-" + std::to_string(i); }

fa::Request create_request(int i) {
  std::vector<fg::Edge> edges;
  for (fg::NodeId u = 0; u + 1 < static_cast<fg::NodeId>(kNodes); ++u) {
    edges.push_back({u, u + 1});
  }
  fe::InstanceSpec spec;
  if (i % 2 == 1) {
    spec.kind = fe::SchedulerKind::kDynamicPrefixCode;
  }
  return fa::CreateInstanceRequest{tenant(i), kNodes, edges, spec};
}

/// Deterministic mutation batch `round` for tenant `i` (dynamic tenants
/// only get edges within the node range; static tenants refuse, typed).
std::vector<fd::MutationCommand> mutation_batch(int i, int round) {
  std::vector<fd::MutationCommand> commands;
  const auto u = static_cast<fg::NodeId>((i + round) % kNodes);
  const auto v = static_cast<fg::NodeId>((i + 3 * round + 1) % kNodes);
  if (u != v) {
    commands.push_back(round % 2 == 0 ? fd::insert_edge_command(u, v)
                                      : fd::erase_edge_command(u, v));
  }
  commands.push_back(fd::insert_edge_command(static_cast<fg::NodeId>(round % kNodes),
                                             static_cast<fg::NodeId>((round + 5) % kNodes)));
  return commands;
}

TEST(Router, HelloAndStatsAnswerFromTheRouterItself) {
  Cluster cluster(3);
  const fa::Response hello = cluster.call(fa::HelloRequest{});
  ASSERT_TRUE(hello.ok()) << hello.status.detail;
  EXPECT_EQ(std::get<fa::HelloResponse>(hello.payload).backend, "fhg-router");

  const fa::Response stats = cluster.call(fa::GetStatsRequest{});
  ASSERT_TRUE(stats.ok()) << stats.status.detail;
  const auto& metrics = std::get<fa::GetStatsResponse>(stats.payload).metrics;
  const bool has_cluster_counters =
      std::any_of(metrics.begin(), metrics.end(), [](const fo::MetricSample& sample) {
        return sample.name.rfind("fhg_cluster_", 0) == 0;
      });
  EXPECT_TRUE(has_cluster_counters) << "GetStats through the router must expose its registry";
}

TEST(Router, CreateThroughRouterLandsOnPrimaryAndReplicaOnly) {
  Cluster cluster(3);
  for (int i = 0; i < kFleet; ++i) {
    const fa::Response created = cluster.call(create_request(i));
    ASSERT_TRUE(created.ok()) << tenant(i) << ": " << created.status.detail;
  }
  for (int i = 0; i < kFleet; ++i) {
    const auto [primary, replica] = cluster.router->route_of(tenant(i));
    ASSERT_FALSE(primary.empty());
    ASSERT_FALSE(replica.empty());
    for (const auto& backend : cluster.backends) {
      const bool holds = backend->engine->find(tenant(i)) != nullptr;
      const bool should = backend->name == primary || backend->name == replica;
      EXPECT_EQ(holds, should)
          << tenant(i) << " on " << backend->name << " (primary " << primary << ", replica "
          << replica << ")";
    }
  }
}

TEST(Router, RoutedAnswersMatchASingleProcessService) {
  Cluster cluster(3);
  fe::Engine reference_engine(fe::EngineOptions{.shards = 2, .threads = 1});
  fs::Service reference(reference_engine, fs::ServiceOptions{.shards = 1});
  fa::Client direct(std::make_unique<fa::InProcessTransport>(reference));

  for (int i = 0; i < kFleet; ++i) {
    ASSERT_TRUE(cluster.call(create_request(i)).ok());
    ASSERT_TRUE(direct.call(create_request(i)).ok());
  }
  for (int round = 0; round < 8; ++round) {
    for (int i = 0; i < kFleet; ++i) {
      const fa::Request request = fa::ApplyMutationsRequest{tenant(i), mutation_batch(i, round)};
      const fa::Response routed = cluster.call(request);
      const fa::Response local = direct.call(request);
      // Static tenants refuse mutations; both sides must agree either way.
      ASSERT_EQ(routed.status.code, local.status.code) << tenant(i) << " round " << round;
    }
  }
  for (int i = 0; i < kFleet; ++i) {
    for (fg::NodeId node = 0; node < static_cast<fg::NodeId>(kNodes); ++node) {
      for (int holiday = 1; holiday <= kHorizon; ++holiday) {
        const fa::Request probe = fa::IsHappyRequest{tenant(i), node,
                                                     static_cast<std::uint64_t>(holiday)};
        const fa::Response routed = cluster.call(probe);
        const fa::Response local = direct.call(probe);
        ASSERT_TRUE(routed.ok()) << routed.status.detail;
        ASSERT_EQ(std::get<fa::IsHappyResponse>(routed.payload).happy,
                  std::get<fa::IsHappyResponse>(local.payload).happy)
            << tenant(i) << " node " << node << " holiday " << holiday;
      }
    }
  }
}

TEST(Router, ReadsFailOverWhenThePrimaryStops) {
  Cluster cluster(3);
  for (int i = 0; i < kFleet; ++i) {
    ASSERT_TRUE(cluster.call(create_request(i)).ok());
  }
  const auto [primary, replica] = cluster.router->route_of(tenant(0));
  cluster.named(primary).stop();
  const fa::Response answered = cluster.call(fa::IsHappyRequest{tenant(0), 1, 3});
  ASSERT_TRUE(answered.ok()) << "replica must answer: " << answered.status.detail;
  EXPECT_GE(cluster.counter("fhg_cluster_failovers_total"), 1u);
}

TEST(Router, EvictionMigratesAndRestoresReplication) {
  Cluster cluster(3);
  for (int i = 0; i < kFleet; ++i) {
    ASSERT_TRUE(cluster.call(create_request(i)).ok());
  }
  // Remember every answer while healthy; they must survive the eviction.
  std::map<std::string, bool> before;
  for (int i = 0; i < kFleet; ++i) {
    const fa::Response answered = cluster.call(fa::IsHappyRequest{tenant(i), 2, 5});
    ASSERT_TRUE(answered.ok());
    before[tenant(i)] = std::get<fa::IsHappyResponse>(answered.payload).happy;
  }
  const std::string dead = cluster.router->route_of(tenant(0)).first;
  cluster.named(dead).stop();
  cluster.evict_via_probes();

  EXPECT_EQ(cluster.router->ring_members().size(), 2u);
  EXPECT_GE(cluster.counter("fhg_cluster_evictions_total"), 1u);
  EXPECT_GE(cluster.counter("fhg_cluster_migrations_total"), 1u);
  for (int i = 0; i < kFleet; ++i) {
    // Replication factor restored: both surviving holders are live backends.
    const auto [primary, replica] = cluster.router->route_of(tenant(i));
    EXPECT_NE(primary, dead);
    EXPECT_NE(replica, dead);
    EXPECT_NE(cluster.named(primary).engine->find(tenant(i)), nullptr) << tenant(i);
    EXPECT_NE(cluster.named(replica).engine->find(tenant(i)), nullptr) << tenant(i);
    // And the answers did not change.
    const fa::Response after = cluster.call(fa::IsHappyRequest{tenant(i), 2, 5});
    ASSERT_TRUE(after.ok()) << tenant(i) << ": " << after.status.detail;
    EXPECT_EQ(std::get<fa::IsHappyResponse>(after.payload).happy, before[tenant(i)])
        << tenant(i);
  }
}

TEST(Router, RecoveredBackendIsReRegisteredAndReconciled) {
  Cluster cluster(3);
  for (int i = 0; i < kFleet; ++i) {
    ASSERT_TRUE(cluster.call(create_request(i)).ok());
  }
  const std::string dead = cluster.router->route_of(tenant(0)).first;
  cluster.named(dead).stop();
  cluster.evict_via_probes();
  ASSERT_EQ(cluster.router->ring_members().size(), 2u);

  cluster.named(dead).restart();
  cluster.router->probe_now();
  EXPECT_EQ(cluster.router->ring_members().size(), 3u);
  EXPECT_GE(cluster.counter("fhg_cluster_reregistrations_total"), 1u);
  // Re-registration pulled the rejoiner's share back onto it.
  for (int i = 0; i < kFleet; ++i) {
    const auto [primary, replica] = cluster.router->route_of(tenant(i));
    EXPECT_NE(cluster.named(primary).engine->find(tenant(i)), nullptr) << tenant(i);
    EXPECT_NE(cluster.named(replica).engine->find(tenant(i)), nullptr) << tenant(i);
  }
}

TEST(Router, DrainPinsABackendOutOfTheRing) {
  Cluster cluster(3);
  for (int i = 0; i < kFleet; ++i) {
    ASSERT_TRUE(cluster.call(create_request(i)).ok());
  }
  const std::string drained = cluster.router->route_of(tenant(0)).first;
  const fa::Response response = cluster.call(fa::DrainBackendRequest{drained});
  ASSERT_TRUE(response.ok()) << response.status.detail;
  EXPECT_EQ(cluster.router->ring_members().size(), 2u);
  // The prober must not bring a drained backend back, even though it is up.
  cluster.router->probe_now();
  EXPECT_EQ(cluster.router->ring_members().size(), 2u);
  // Unknown backends and double drains answer typed.
  EXPECT_EQ(cluster.call(fa::DrainBackendRequest{"nonesuch"}).status.code,
            fa::StatusCode::kNotFound);
  EXPECT_EQ(cluster.call(fa::DrainBackendRequest{drained}).status.code,
            fa::StatusCode::kFailedPrecondition);
}

TEST(Router, SingleProcessAdminKindsAreRefusedTyped) {
  Cluster cluster(2);
  EXPECT_EQ(cluster.call(fa::SnapshotRequest{}).status.code,
            fa::StatusCode::kFailedPrecondition);
  EXPECT_EQ(cluster.call(fa::RestoreRequest{}).status.code,
            fa::StatusCode::kFailedPrecondition);
  EXPECT_EQ(cluster.call(fa::RecoverInfoRequest{}).status.code,
            fa::StatusCode::kFailedPrecondition);
}

// The acceptance property: a fleet served through the router across the
// loss of a backend produces the *same schedule, bit for bit*, as an
// uninterrupted single-process service fed the identical stream.
TEST(Router, MutationSchedulesStayByteIdenticalAcrossABackendLoss) {
  Cluster cluster(3);
  fe::Engine reference_engine(fe::EngineOptions{.shards = 2, .threads = 1});
  fs::Service reference(reference_engine, fs::ServiceOptions{.shards = 1});
  fa::Client direct(std::make_unique<fa::InProcessTransport>(reference));

  for (int i = 0; i < kFleet; ++i) {
    ASSERT_TRUE(cluster.call(create_request(i)).ok());
    ASSERT_TRUE(direct.call(create_request(i)).ok());
  }
  auto apply_round = [&](int round) {
    for (int i = 0; i < kFleet; ++i) {
      const fa::Request request = fa::ApplyMutationsRequest{tenant(i), mutation_batch(i, round)};
      const fa::Response routed = cluster.call(request);
      const fa::Response local = direct.call(request);
      ASSERT_EQ(routed.status.code, local.status.code) << tenant(i) << " round " << round;
    }
  };
  for (int round = 0; round < 5; ++round) {
    apply_round(round);
  }
  // Lose the busiest backend mid-stream and heal the ring.
  const std::string dead = cluster.router->route_of(tenant(1)).first;
  cluster.named(dead).stop();
  cluster.evict_via_probes();
  for (int round = 5; round < 10; ++round) {
    apply_round(round);
  }
  for (int i = 0; i < kFleet; ++i) {
    for (fg::NodeId node = 0; node < static_cast<fg::NodeId>(kNodes); ++node) {
      for (int holiday = 1; holiday <= kHorizon; ++holiday) {
        const fa::Request probe = fa::IsHappyRequest{tenant(i), node,
                                                     static_cast<std::uint64_t>(holiday)};
        const fa::Response routed = cluster.call(probe);
        ASSERT_TRUE(routed.ok()) << routed.status.detail;
        ASSERT_EQ(std::get<fa::IsHappyResponse>(routed.payload).happy,
                  std::get<fa::IsHappyResponse>(direct.call(probe).payload).happy)
            << tenant(i) << " node " << node << " holiday " << holiday
            << " diverged after losing " << dead;
      }
    }
  }
  EXPECT_GE(cluster.counter("fhg_cluster_migrations_total"), 1u);
}

}  // namespace
