// Tests for the §6 open-problem probe: general-period residue schedules
// decided by exhaustive search on small graphs.

#include <gtest/gtest.h>

#include "fhg/core/degree_bound.hpp"
#include "fhg/core/periodic_probe.hpp"
#include "fhg/graph/generators.hpp"
#include "fhg/graph/properties.hpp"

namespace fg = fhg::graph;
namespace fco = fhg::core;

namespace {

/// Simulates the general-period schedule and checks true periodicity plus
/// independence over a window covering all pairwise interactions.
void expect_valid_schedule(const fg::Graph& g, const std::vector<fco::GeneralSlot>& slots) {
  ASSERT_TRUE(fco::general_slots_conflict_free(g, slots));
  std::uint64_t window = 1;
  for (const auto& slot : slots) {
    window = std::max(window, slot.period);
  }
  window *= 4;  // several periods of everyone
  std::vector<std::uint64_t> last(g.num_nodes(), 0);
  for (std::uint64_t t = 1; t <= window; ++t) {
    std::vector<fg::NodeId> happy;
    for (fg::NodeId v = 0; v < g.num_nodes(); ++v) {
      if (slots[v].matches(t)) {
        happy.push_back(v);
        if (last[v] != 0) {
          EXPECT_EQ(t - last[v], slots[v].period) << "node " << v << " not periodic";
        }
        last[v] = t;
      }
    }
    EXPECT_TRUE(fg::is_independent_set(g, happy)) << "holiday " << t;
  }
}

}  // namespace

TEST(PeriodicProbe, TriangleAchievesDPlusOne) {
  // K3: d+1 = 3 for everyone — periods (3,3,3) = the 3-coloring schedule.
  const fg::Graph g = fg::clique(3);
  const auto probe = fco::min_uniform_slack(g);
  ASSERT_TRUE(probe.has_value());
  EXPECT_EQ(probe->slack, 1U);
  expect_valid_schedule(g, probe->slots);
}

TEST(PeriodicProbe, OddCycleAchievesDPlusOne) {
  // C5: d = 2, period bound 3; a valid witness exists (χ(C5) = 3 gives the
  // all-3s mod-3 labeling).  Power-of-two periods (§5) would force 4 = 2d.
  const fg::Graph g = fg::cycle(5);
  const auto probe = fco::min_uniform_slack(g);
  ASSERT_TRUE(probe.has_value());
  EXPECT_EQ(probe->slack, 1U);
  expect_valid_schedule(g, probe->slots);
  for (const auto& slot : probe->slots) {
    EXPECT_LE(slot.period, 3U);
  }
}

TEST(PeriodicProbe, CoprimeExactPeriodsAlwaysConflict) {
  // Exact periods (3, 2, 2) on a 2-leaf star: gcd(hub, leaf) = 1 means the
  // hub collides with each leaf at every alignment — infeasible.  The
  // *bounded* search is free to shorten the hub's period to 2 and succeeds
  // at slack 1 (the star is bipartite: everyone alternates).
  const fg::Graph g = fg::star(3);
  const auto exact = fco::find_periodic_residues(g, std::vector<std::uint64_t>{3, 2, 2});
  EXPECT_FALSE(exact.has_value());
  const auto probe = fco::min_uniform_slack(g);
  ASSERT_TRUE(probe.has_value());
  EXPECT_EQ(probe->slack, 1U);
  expect_valid_schedule(g, probe->slots);
}

TEST(PeriodicProbe, EvenStarHubCanUseEvenPeriod) {
  // Star with 3 leaves: hub d = 3 → period 4 (even) vs leaf period 2:
  // gcd = 2, residues of opposite parity coexist → slack 1 feasible.
  const fg::Graph g = fg::star(4);
  const auto probe = fco::min_uniform_slack(g);
  ASSERT_TRUE(probe.has_value());
  EXPECT_EQ(probe->slack, 1U);
  expect_valid_schedule(g, probe->slots);
}

TEST(PeriodicProbe, InfeasiblePeriodsRejected) {
  // Two adjacent nodes, both period 1: impossible.
  const fg::Graph g = fg::path(2);
  EXPECT_FALSE(fco::find_periodic_residues(g, std::vector<std::uint64_t>{1, 1}).has_value());
  // Period 2 for both: feasible (opposite parities).
  const auto slots = fco::find_periodic_residues(g, std::vector<std::uint64_t>{2, 2});
  ASSERT_TRUE(slots.has_value());
  EXPECT_NE((*slots)[0].residue, (*slots)[1].residue);
}

TEST(PeriodicProbe, MatchesDegreeBoundOnPowerOfTwoPeriods) {
  // Feeding §5's power-of-two periods to the general search must succeed
  // (the §5 assignment is a witness).
  const fg::Graph g = fg::gnp(12, 0.3, 5);
  std::vector<std::uint64_t> periods(g.num_nodes());
  const auto reference = fco::assign_degree_bound_slots(g, fco::degree_bound_order(g));
  for (fg::NodeId v = 0; v < g.num_nodes(); ++v) {
    periods[v] = reference[v].period();
  }
  const auto slots = fco::find_periodic_residues(g, periods);
  ASSERT_TRUE(slots.has_value());
  expect_valid_schedule(g, *slots);
}

TEST(PeriodicProbe, BudgetExhaustionReturnsNullopt) {
  const fg::Graph g = fg::clique(8);
  std::vector<std::uint64_t> periods(8, 8);
  EXPECT_FALSE(fco::find_periodic_residues(g, periods, /*node_budget=*/1).has_value());
}

TEST(PeriodicProbe, RejectsBadInput) {
  const fg::Graph g = fg::path(2);
  EXPECT_THROW(
      static_cast<void>(fco::find_periodic_residues(g, std::vector<std::uint64_t>{1})),
      std::invalid_argument);
  EXPECT_THROW(
      static_cast<void>(fco::find_periodic_residues(g, std::vector<std::uint64_t>{0, 1})),
      std::invalid_argument);
}

class SlackZooTest : public ::testing::TestWithParam<int> {
 protected:
  static fg::Graph make_graph(int index) {
    switch (index) {
      case 0:
        return fg::cycle(7);
      case 1:
        return fg::clique(5);
      case 2:
        return fg::complete_bipartite(3, 3);
      case 3:
        return fg::path(8);
      case 4:
        return fg::grid2d(3, 3);
      default:
        return fg::gnp(10, 0.35, 17);
    }
  }
};

TEST_P(SlackZooTest, SmallSlackSufficesAndWitnessIsValid) {
  const fg::Graph g = make_graph(GetParam());
  const auto probe = fco::min_uniform_slack(g, /*max_slack=*/6);
  ASSERT_TRUE(probe.has_value());
  EXPECT_LE(probe->slack, 2U);  // on this zoo the open-problem gap is tiny
  expect_valid_schedule(g, probe->slots);
  for (fg::NodeId v = 0; v < g.num_nodes(); ++v) {
    EXPECT_LE(probe->slots[v].period,
              g.degree(v) == 0 ? 1 : g.degree(v) + probe->slack);
  }
}

INSTANTIATE_TEST_SUITE_P(Zoo, SlackZooTest, ::testing::Range(0, 6));
