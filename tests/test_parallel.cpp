// Tests for fhg::parallel — deterministic RNG streams, thread pool, and the
// data-parallel loop/reduce helpers.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdint>
#include <set>
#include <stdexcept>
#include <vector>

#include "fhg/parallel/parallel_for.hpp"
#include "fhg/parallel/rng.hpp"
#include "fhg/parallel/thread_pool.hpp"

namespace fp = fhg::parallel;

// ---------------------------------------------------------------- rng -----

TEST(Rng, SameSeedSameStreamReproduces) {
  fp::Rng a(42, 7);
  fp::Rng b(42, 7);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a(), b());
  }
}

TEST(Rng, DifferentStreamsDiffer) {
  fp::Rng a(42, 0);
  fp::Rng b(42, 1);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    equal += a() == b() ? 1 : 0;
  }
  EXPECT_LT(equal, 2);
}

TEST(Rng, DifferentSeedsDiffer) {
  fp::Rng a(1, 0);
  fp::Rng b(2, 0);
  EXPECT_NE(a(), b());
}

TEST(Rng, UniformBelowIsInRange) {
  fp::Rng rng(123);
  for (std::uint64_t bound : {1ULL, 2ULL, 3ULL, 10ULL, 1000ULL, 1ULL << 40}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(rng.uniform_below(bound), bound);
    }
  }
}

TEST(Rng, UniformBelowCoversAllValues) {
  fp::Rng rng(5);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 500; ++i) {
    seen.insert(rng.uniform_below(7));
  }
  EXPECT_EQ(seen.size(), 7U);
}

TEST(Rng, UniformBelowIsApproximatelyUniform) {
  fp::Rng rng(99);
  constexpr int kBuckets = 8;
  constexpr int kDraws = 80'000;
  std::vector<int> counts(kBuckets, 0);
  for (int i = 0; i < kDraws; ++i) {
    ++counts[rng.uniform_below(kBuckets)];
  }
  const double expected = static_cast<double>(kDraws) / kBuckets;
  for (const int c : counts) {
    EXPECT_NEAR(c, expected, expected * 0.1);
  }
}

TEST(Rng, UniformIntRespectsBounds) {
  fp::Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const auto x = rng.uniform_int(-5, 5);
    EXPECT_GE(x, -5);
    EXPECT_LE(x, 5);
  }
}

TEST(Rng, UniformRealInUnitInterval) {
  fp::Rng rng(11);
  double sum = 0.0;
  for (int i = 0; i < 10'000; ++i) {
    const double x = rng.uniform_real();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
    sum += x;
  }
  EXPECT_NEAR(sum / 10'000.0, 0.5, 0.02);
}

TEST(Rng, BernoulliMatchesProbability) {
  fp::Rng rng(13);
  int hits = 0;
  constexpr int kDraws = 50'000;
  for (int i = 0; i < kDraws; ++i) {
    hits += rng.bernoulli(0.3) ? 1 : 0;
  }
  EXPECT_NEAR(static_cast<double>(hits) / kDraws, 0.3, 0.02);
}

TEST(Rng, PermutationIsAPermutation) {
  fp::Rng rng(17);
  const auto perm = rng.permutation(100);
  std::set<std::uint32_t> seen(perm.begin(), perm.end());
  EXPECT_EQ(seen.size(), 100U);
  EXPECT_EQ(*seen.begin(), 0U);
  EXPECT_EQ(*seen.rbegin(), 99U);
}

TEST(Rng, SplitProducesIndependentChild) {
  fp::Rng parent(42);
  fp::Rng child1 = parent.split(1);
  fp::Rng child2 = parent.split(2);
  EXPECT_NE(child1(), child2());
  // Splitting must not perturb the parent.
  fp::Rng parent_again(42);
  EXPECT_EQ(parent(), parent_again());
}

TEST(Rng, HashDrawIsPure) {
  EXPECT_EQ(fp::hash_draw(1, 2, 3), fp::hash_draw(1, 2, 3));
  EXPECT_NE(fp::hash_draw(1, 2, 3), fp::hash_draw(1, 2, 4));
  EXPECT_NE(fp::hash_draw(1, 2, 3), fp::hash_draw(1, 3, 3));
  EXPECT_NE(fp::hash_draw(1, 2, 3), fp::hash_draw(2, 2, 3));
}

TEST(Rng, ShuffleKeepsMultiset) {
  fp::Rng rng(23);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto sorted = v;
  rng.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, sorted);
}

// ---------------------------------------------------------- thread pool ----

TEST(ThreadPool, ExecutesSubmittedTasks) {
  fp::ThreadPool pool(4);
  auto f = pool.submit([] { return 6 * 7; });
  EXPECT_EQ(f.get(), 42);
}

TEST(ThreadPool, RunsManyTasks) {
  fp::ThreadPool pool(4);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 100; ++i) {
    futures.push_back(pool.submit([&counter] { counter.fetch_add(1); }));
  }
  for (auto& f : futures) {
    f.get();
  }
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, PropagatesExceptions) {
  fp::ThreadPool pool(2);
  auto f = pool.submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW(f.get(), std::runtime_error);
}

TEST(ThreadPool, ForwardsArguments) {
  fp::ThreadPool pool(2);
  auto f = pool.submit([](int a, int b) { return a + b; }, 40, 2);
  EXPECT_EQ(f.get(), 42);
}

TEST(ThreadPool, SizeMatchesRequest) {
  fp::ThreadPool pool(3);
  EXPECT_EQ(pool.size(), 3U);
}

// ----------------------------------------------------------- parallel_for --

TEST(ParallelFor, VisitsEveryIndexExactlyOnce) {
  fp::ThreadPool pool(4);
  constexpr std::size_t kN = 10'000;
  std::vector<std::atomic<int>> visits(kN);
  fp::parallel_for(pool, 0, kN, [&](std::size_t i) { visits[i].fetch_add(1); }, 64);
  for (std::size_t i = 0; i < kN; ++i) {
    EXPECT_EQ(visits[i].load(), 1) << "index " << i;
  }
}

TEST(ParallelFor, EmptyRangeIsNoop) {
  fp::ThreadPool pool(2);
  bool touched = false;
  fp::parallel_for(pool, 5, 5, [&](std::size_t) { touched = true; });
  EXPECT_FALSE(touched);
}

TEST(ParallelFor, PropagatesBodyException) {
  fp::ThreadPool pool(2);
  EXPECT_THROW(fp::parallel_for(
                   pool, 0, 1000,
                   [](std::size_t i) {
                     if (i == 637) {
                       throw std::runtime_error("body failure");
                     }
                   },
                   16),
               std::runtime_error);
}

TEST(ParallelForDynamic, VisitsEveryIndexExactlyOnce) {
  fp::ThreadPool pool(4);
  constexpr std::size_t kN = 10'000;
  std::vector<std::atomic<int>> visits(kN);
  fp::parallel_for_dynamic(pool, 0, kN, [&](std::size_t i) { visits[i].fetch_add(1); }, 64);
  for (std::size_t i = 0; i < kN; ++i) {
    EXPECT_EQ(visits[i].load(), 1) << "index " << i;
  }
}

TEST(ParallelForDynamic, SkewedBodyCostStillCoversTheRange) {
  // The reason dynamic chunking exists: one hub index costing ~1000x the
  // others must not serialize the sweep.  Correctness half of that claim:
  // every index is still visited exactly once while workers steal chunks
  // around the hub.
  fp::ThreadPool pool(4);
  constexpr std::size_t kN = 4'096;
  std::vector<std::atomic<int>> visits(kN);
  std::atomic<std::uint64_t> sink{0};
  fp::parallel_for_dynamic(
      pool, 0, kN,
      [&](std::size_t i) {
        std::uint64_t spin = (i == 17) ? 100'000 : 100;  // the hub
        std::uint64_t acc = i;
        while (spin-- > 0) {
          acc = acc * 6364136223846793005ULL + 1442695040888963407ULL;
        }
        sink.fetch_add(acc, std::memory_order_relaxed);
        visits[i].fetch_add(1);
      },
      32);
  for (std::size_t i = 0; i < kN; ++i) {
    ASSERT_EQ(visits[i].load(), 1) << "index " << i;
  }
}

TEST(ParallelForDynamic, EmptyRangeAndSerialFallback) {
  fp::ThreadPool pool(2);
  bool touched = false;
  fp::parallel_for_dynamic(pool, 5, 5, [&](std::size_t) { touched = true; });
  EXPECT_FALSE(touched);

  // n <= chunk runs inline on the caller — no pool round trip.
  std::vector<int> hits(8, 0);
  fp::parallel_for_dynamic(pool, 0, 8, [&](std::size_t i) { ++hits[i]; }, 256);
  EXPECT_EQ(std::count(hits.begin(), hits.end(), 1), 8);
}

TEST(ParallelForDynamic, PropagatesBodyException) {
  fp::ThreadPool pool(2);
  EXPECT_THROW(fp::parallel_for_dynamic(
                   pool, 0, 1000,
                   [](std::size_t i) {
                     if (i == 637) {
                       throw std::runtime_error("body failure");
                     }
                   },
                   16),
               std::runtime_error);
}

TEST(ParallelReduce, SumsCorrectly) {
  fp::ThreadPool pool(4);
  const std::uint64_t total = fp::parallel_reduce<std::uint64_t>(
      pool, 1, 10'001, 0ULL, [](std::size_t i) { return static_cast<std::uint64_t>(i); },
      [](std::uint64_t a, std::uint64_t b) { return a + b; }, 128);
  EXPECT_EQ(total, 10'000ULL * 10'001ULL / 2);
}

TEST(ParallelReduce, DeterministicForFixedGrain) {
  fp::ThreadPool pool(4);
  const auto run = [&pool] {
    return fp::parallel_reduce<double>(
        pool, 0, 5000, 0.0, [](std::size_t i) { return std::sqrt(static_cast<double>(i)); },
        [](double a, double b) { return a + b; }, 97);
  };
  const double first = run();
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(first, run());  // bitwise equality, not approximate
  }
}

TEST(ParallelReduce, MatchesSerialExecution) {
  fp::ThreadPool pool(4);
  const std::uint64_t parallel = fp::parallel_reduce<std::uint64_t>(
      pool, 0, 1000, 0ULL, [](std::size_t i) { return static_cast<std::uint64_t>(i * i); },
      [](std::uint64_t a, std::uint64_t b) { return a + b; }, 10);
  std::uint64_t serial = 0;
  for (std::size_t i = 0; i < 1000; ++i) {
    serial += static_cast<std::uint64_t>(i * i);
  }
  EXPECT_EQ(parallel, serial);
}
