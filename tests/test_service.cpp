// Tests for fhg::service — the sharded asynchronous request pipeline:
// typed backpressure at admission, drain-on-shutdown completing every
// accepted request, mutation/query serialization through one shard's FIFO,
// and cross-shard determinism of answers against the direct synchronous
// engine path.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <memory>
#include <stdexcept>
#include <string>
#include <string_view>
#include <thread>
#include <tuple>
#include <utility>
#include <vector>

#include "fhg/api/protocol.hpp"
#include "fhg/dynamic/mutation.hpp"
#include "fhg/engine/engine.hpp"
#include "fhg/graph/generators.hpp"
#include "fhg/service/metrics.hpp"
#include "fhg/service/service.hpp"
#include "fhg/workload/scenario.hpp"

namespace fa = fhg::api;
namespace fd = fhg::dynamic;
namespace fe = fhg::engine;
namespace fg = fhg::graph;
namespace fs = fhg::service;
namespace fw = fhg::workload;

namespace {

fw::ScenarioSpec fleet_spec(std::size_t fleet, double aperiodic = 0.25, double dyn = 0.0) {
  fw::ScenarioSpec spec;
  spec.family = fw::GraphFamily::kPowerLaw;
  spec.fleet = fleet;
  spec.nodes = 16;
  spec.seed = 7;
  spec.horizon = 256;
  spec.aperiodic = aperiodic;
  spec.dynamic_share = dyn;
  return spec;
}

std::unique_ptr<fe::Engine> make_fleet(const fw::ScenarioSpec& spec) {
  auto engine = std::make_unique<fe::Engine>(fe::EngineOptions{.shards = 8, .threads = 2});
  fw::ScenarioGenerator(spec).populate(*engine);
  (void)engine->step_all(32);
  return engine;
}

/// A one-instance engine with a dynamic tenant named "dyn" over C_8.
std::unique_ptr<fe::Engine> make_dynamic_single() {
  auto engine = std::make_unique<fe::Engine>(fe::EngineOptions{.shards = 4, .threads = 1});
  fe::InstanceSpec spec;
  spec.kind = fe::SchedulerKind::kDynamicPrefixCode;
  (void)engine->create_instance("dyn", fg::cycle(8), spec);
  (void)engine->step_all(16);
  return engine;
}

}  // namespace

// ----------------------------------------------------------- metrics -------

TEST(ServiceMetrics, HistogramBucketsArePowersOfTwo) {
  EXPECT_EQ(fs::Histogram::bucket_of(0), 0u);
  EXPECT_EQ(fs::Histogram::bucket_of(1), 1u);
  EXPECT_EQ(fs::Histogram::bucket_of(2), 2u);
  EXPECT_EQ(fs::Histogram::bucket_of(3), 2u);
  EXPECT_EQ(fs::Histogram::bucket_of(4), 3u);
  EXPECT_EQ(fs::Histogram::bucket_of(7), 3u);
  EXPECT_EQ(fs::Histogram::bucket_of(8), 4u);
  // Values past the last exact bucket clamp into it.
  EXPECT_EQ(fs::Histogram::bucket_of(~std::uint64_t{0}), fs::Histogram::kBuckets - 1);
  EXPECT_EQ(fs::Histogram::bucket_floor(0), 0u);
  EXPECT_EQ(fs::Histogram::bucket_floor(1), 1u);
  EXPECT_EQ(fs::Histogram::bucket_floor(4), 8u);
}

TEST(ServiceMetrics, HistogramRecordsTotalsAndMerges) {
  fs::Histogram a;
  a.record(0);
  a.record(5);
  a.record(5);
  EXPECT_EQ(a.total(), 3u);
  fs::Histogram b;
  b.record(1);
  b.merge(a);
  EXPECT_EQ(b.total(), 4u);
  EXPECT_EQ(b.buckets[fs::Histogram::bucket_of(5)], 2u);
}

TEST(ServiceMetrics, ShardMergeSumsCountersAndMaxesHighWater) {
  fs::ShardMetrics a;
  a.accepted = 10;
  a.queue_high_water = 3;
  fs::ShardMetrics b;
  b.accepted = 5;
  b.queue_high_water = 8;
  a.merge(b);
  EXPECT_EQ(a.accepted, 15u);
  EXPECT_EQ(a.queue_high_water, 8u);
}

// -------------------------------------------------------- admission --------

TEST(Service, BackpressureRejectsTypedWhenQueueFull) {
  auto engine = make_dynamic_single();
  // Deferred start: nothing drains, so the queue fills deterministically.
  fs::Service service(*engine, {.shards = 1, .queue_capacity = 4, .start = false});
  std::vector<fs::Submission<bool>> accepted;
  for (int i = 0; i < 4; ++i) {
    auto pending = service.is_happy("dyn", 0, 1 + static_cast<std::uint64_t>(i));
    ASSERT_TRUE(pending.accepted()) << i;
    accepted.push_back(std::move(pending));
  }
  auto refused = service.is_happy("dyn", 0, 99);
  ASSERT_FALSE(refused.accepted());
  EXPECT_EQ(*refused.reject, fs::Reject::kQueueFull);
  EXPECT_EQ(fs::reject_name(*refused.reject), "queue-full");

  // The callback flavor is refused the same way, without invoking `done`.
  std::atomic<int> invoked{0};
  const auto reject = service.is_happy("dyn", 0, 99, [&](fs::Outcome<bool>) { ++invoked; });
  ASSERT_TRUE(reject.has_value());
  EXPECT_EQ(*reject, fs::Reject::kQueueFull);

  // Draining starts the worker: every *accepted* request still completes.
  service.drain();
  for (auto& pending : accepted) {
    EXPECT_NO_THROW((void)pending.future.get());
  }
  EXPECT_EQ(invoked.load(), 0);
  const auto totals = service.metrics().totals();
  EXPECT_EQ(totals.accepted, 4u);
  EXPECT_EQ(totals.rejected_full, 2u);
  EXPECT_EQ(totals.queue_high_water, 4u);
}

TEST(Service, StoppedServiceRejectsTyped) {
  auto engine = make_dynamic_single();
  fs::Service service(*engine, {.shards = 2});
  service.drain();
  EXPECT_TRUE(service.stopped());
  auto refused = service.next_gathering("dyn", 0, 0);
  ASSERT_FALSE(refused.accepted());
  EXPECT_EQ(*refused.reject, fs::Reject::kStopped);
  EXPECT_EQ(fs::reject_name(*refused.reject), "stopped");
  EXPECT_GE(service.metrics().totals().rejected_stopped, 1u);
}

TEST(Service, UnknownInstanceAndBadNodeFailPerRequest) {
  auto engine = make_dynamic_single();
  fs::Service service(*engine, {.shards = 2});
  // A failing request must not poison valid ones coalesced with it.
  auto good = service.is_happy("dyn", 0, 1);
  auto missing = service.is_happy("no-such-tenant", 0, 1);
  auto bad_node = service.is_happy("dyn", 1000, 1);
  ASSERT_TRUE(good.accepted());
  ASSERT_TRUE(missing.accepted());
  ASSERT_TRUE(bad_node.accepted());
  EXPECT_NO_THROW((void)good.future.get());
  EXPECT_THROW((void)missing.future.get(), std::runtime_error);
  EXPECT_THROW((void)bad_node.future.get(), std::runtime_error);

  std::atomic<bool> saw_error{false};
  ASSERT_FALSE(service.next_gathering("no-such-tenant", 0, 0,
                                      [&](fs::Outcome<std::uint64_t> outcome) {
                                        saw_error = !outcome.ok() && !outcome.error.empty();
                                      })
                   .has_value());
  service.drain();
  EXPECT_TRUE(saw_error.load());
  EXPECT_GE(service.metrics().totals().failed, 3u);
}

// ------------------------------------------------------------ drain --------

TEST(Service, DrainCompletesEveryAcceptedRequest) {
  const fw::ScenarioSpec spec = fleet_spec(16);
  auto engine = make_fleet(spec);
  const fw::ScenarioGenerator generator(spec);
  fs::Service service(*engine, {.shards = 4, .queue_capacity = 8192});
  std::atomic<std::uint64_t> completed{0};
  std::uint64_t accepted = 0;
  const auto stream = generator.request_stream(2000, 3);
  for (const fa::Request& request : stream) {
    std::optional<fs::Reject> reject;
    if (const auto* next = std::get_if<fa::NextGatheringRequest>(&request)) {
      reject = service.next_gathering(next->instance, next->node, next->after,
                                      [&](fs::Outcome<std::uint64_t>) { ++completed; });
    } else {
      const auto& happy = std::get<fa::IsHappyRequest>(request);
      reject = service.is_happy(happy.instance, happy.node, happy.holiday,
                                [&](fs::Outcome<bool>) { ++completed; });
    }
    accepted += reject.has_value() ? 0 : 1;
  }
  service.drain();
  EXPECT_EQ(completed.load(), accepted);
  const auto totals = service.metrics().totals();
  EXPECT_EQ(totals.accepted, accepted);
  EXPECT_EQ(totals.queries + totals.next_gatherings, accepted);
  EXPECT_EQ(totals.latency_us.total(), accepted);
  EXPECT_GE(totals.batches, 1u);
  EXPECT_EQ(totals.batch_size.total(), totals.batches);
  EXPECT_EQ(totals.failed, 0u);
  // Drain is idempotent and the second call still reports stopped.
  service.drain();
  EXPECT_TRUE(service.stopped());
}

// -------------------------------------------- mutation serialization -------

TEST(Service, MutationSerializesAgainstQueriesOnOneShard) {
  auto engine = make_dynamic_single();
  auto twin = make_dynamic_single();

  // Queue Q1 → M → Q2 → M2 → Q3 on the single shard *before* starting the
  // worker, so the FIFO order is exactly the submission order.
  fs::Service service(*engine, {.shards = 1, .queue_capacity = 64, .start = false});
  const fg::NodeId node = 3;
  const std::uint64_t holiday = 12;
  const std::vector<fd::MutationCommand> first{fd::insert_edge_command(3, 6)};
  const std::vector<fd::MutationCommand> second{fd::erase_edge_command(3, 6),
                                                fd::insert_edge_command(1, 5)};
  auto q1 = service.is_happy("dyn", node, holiday);
  auto m1 = service.apply_mutations("dyn", first);
  auto q2 = service.is_happy("dyn", node, holiday);
  auto m2 = service.apply_mutations("dyn", second);
  auto q3 = service.is_happy("dyn", node, holiday);
  ASSERT_TRUE(q1.accepted() && m1.accepted() && q2.accepted() && m2.accepted() &&
              q3.accepted());
  service.start();
  service.drain();

  // The twin runs the identical sequence synchronously: the async pipeline
  // must observe each query at the same schedule version.
  const bool expect1 = twin->is_happy("dyn", node, holiday);
  const fe::MutationResult twin_m1 = twin->apply_mutations("dyn", first);
  const bool expect2 = twin->is_happy("dyn", node, holiday);
  const fe::MutationResult twin_m2 = twin->apply_mutations("dyn", second);
  const bool expect3 = twin->is_happy("dyn", node, holiday);

  EXPECT_EQ(q1.future.get(), expect1);
  EXPECT_EQ(q2.future.get(), expect2);
  EXPECT_EQ(q3.future.get(), expect3);
  const fe::MutationResult r1 = m1.future.get();
  const fe::MutationResult r2 = m2.future.get();
  EXPECT_EQ(r1.applied, twin_m1.applied);
  EXPECT_EQ(r2.applied, twin_m2.applied);
  EXPECT_EQ(r1.table_version, twin_m1.table_version);
  EXPECT_EQ(r2.table_version, twin_m2.table_version);
  EXPECT_EQ(engine->find("dyn")->table_version(), twin->find("dyn")->table_version());
  EXPECT_EQ(engine->find("dyn")->mutation_log().size(),
            twin->find("dyn")->mutation_log().size());
  EXPECT_EQ(service.metrics().totals().mutations, 2u);
}

TEST(Service, MutatingNonDynamicInstanceFailsTyped) {
  const fw::ScenarioSpec spec = fleet_spec(4, /*aperiodic=*/0.0);
  auto engine = make_fleet(spec);
  const fw::ScenarioGenerator generator(spec);
  fs::Service service(*engine, {.shards = 2});
  auto pending =
      service.apply_mutations(generator.tenant_name(0), {fd::insert_edge_command(0, 2)});
  ASSERT_TRUE(pending.accepted());
  EXPECT_THROW((void)pending.future.get(), std::runtime_error);
}

// ---------------------------------------------------- determinism ----------

TEST(Service, AnswersMatchDirectEngineAcrossShardCounts) {
  const fw::ScenarioSpec spec = fleet_spec(32);
  auto engine = make_fleet(spec);
  const fw::ScenarioGenerator generator(spec);
  const auto stream = generator.request_stream(1500, 11);

  for (const std::size_t shards : {std::size_t{1}, std::size_t{4}}) {
    fs::Service service(*engine, {.shards = shards, .queue_capacity = 4096});
    std::vector<std::pair<const fa::IsHappyRequest*, fs::Submission<bool>>> memberships;
    std::vector<std::pair<const fa::NextGatheringRequest*, fs::Submission<std::uint64_t>>> nexts;
    for (const fa::Request& request : stream) {
      if (const auto* happy = std::get_if<fa::IsHappyRequest>(&request)) {
        auto pending = service.is_happy(happy->instance, happy->node, happy->holiday);
        ASSERT_TRUE(pending.accepted());
        memberships.emplace_back(happy, std::move(pending));
      } else {
        const auto& next = std::get<fa::NextGatheringRequest>(request);
        auto pending = service.next_gathering(next.instance, next.node, next.after);
        ASSERT_TRUE(pending.accepted());
        nexts.emplace_back(&next, std::move(pending));
      }
    }
    service.drain();
    for (auto& [request, pending] : memberships) {
      EXPECT_EQ(pending.future.get(),
                engine->is_happy(request->instance, request->node, request->holiday))
          << shards << " shards, instance " << request->instance;
    }
    for (auto& [request, pending] : nexts) {
      EXPECT_EQ(pending.future.get(),
                engine->next_gathering(request->instance, request->node, request->after)
                    .value_or(fe::kNoGathering))
          << shards << " shards, instance " << request->instance;
    }
  }
}

TEST(Service, ConcurrentSubmittersAllComplete) {
  const fw::ScenarioSpec spec = fleet_spec(16);
  auto engine = make_fleet(spec);
  const fw::ScenarioGenerator generator(spec);
  fs::Service service(*engine, {.shards = 4, .queue_capacity = 512});
  constexpr std::size_t kClients = 4;
  constexpr std::size_t kPerClient = 500;
  std::atomic<std::uint64_t> completed{0};
  std::atomic<std::uint64_t> submitted{0};
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (std::size_t c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      const auto stream = generator.request_stream(kPerClient, 100 + c);
      for (const fa::Request& request : stream) {
        // Every request degrades to a membership probe here: the test
        // exercises admission under contention, not answer shapes.
        const auto [name, node, holiday] = [&] {
          if (const auto* next = std::get_if<fa::NextGatheringRequest>(&request)) {
            return std::tuple<std::string, fg::NodeId, std::uint64_t>(next->instance,
                                                                      next->node, next->after);
          }
          const auto& happy = std::get<fa::IsHappyRequest>(request);
          return std::tuple<std::string, fg::NodeId, std::uint64_t>(happy.instance, happy.node,
                                                                    happy.holiday);
        }();
        for (;;) {
          const auto reject = service.is_happy(name, node, holiday,
                                               [&](fs::Outcome<bool>) { ++completed; });
          if (!reject) {
            ++submitted;
            break;
          }
          ASSERT_EQ(*reject, fs::Reject::kQueueFull);  // bounded queue, not stopped
          std::this_thread::yield();
        }
      }
    });
  }
  for (std::thread& client : clients) {
    client.join();
  }
  service.drain();
  EXPECT_EQ(submitted.load(), kClients * kPerClient);
  EXPECT_EQ(completed.load(), submitted.load());
  EXPECT_EQ(service.metrics().totals().accepted, submitted.load());
}

// --------------------------------------------------- request stream --------

TEST(Workload, RequestStreamIsDeterministicAndRespectsShares) {
  fw::ScenarioSpec spec = fleet_spec(32, /*aperiodic=*/0.1, /*dyn=*/0.5);
  spec.mutation = 0.2;
  const fw::ScenarioGenerator a(spec);
  const fw::ScenarioGenerator b(spec);
  const auto stream_a = a.request_stream(4000, 5);
  EXPECT_EQ(stream_a, b.request_stream(4000, 5));
  EXPECT_NE(stream_a, a.request_stream(4000, 6)) << "rounds must differ";

  // Requests are addressed by tenant name ("<family>-<slot>"); recover the
  // slot to cross-check the recipe the roll was kept for.
  const auto slot_of = [](std::string_view name) {
    return static_cast<std::size_t>(
        std::strtoull(std::string(name.substr(name.rfind('-') + 1)).c_str(), nullptr, 10));
  };
  std::size_t mutates = 0;
  std::size_t nexts = 0;
  for (const fa::Request& request : stream_a) {
    if (const auto* mutate = std::get_if<fa::ApplyMutationsRequest>(&request)) {
      const std::size_t slot = slot_of(mutate->instance);
      ASSERT_LT(slot, spec.fleet);
      // Only dynamic slots may be asked to mutate, and the commands are
      // materialized into the request itself.
      EXPECT_EQ(a.recipe_at(slot, 0).kind, fe::SchedulerKind::kDynamicPrefixCode);
      EXPECT_FALSE(mutate->commands.empty());
      ++mutates;
    } else if (const auto* next = std::get_if<fa::NextGatheringRequest>(&request)) {
      ASSERT_LT(slot_of(next->instance), spec.fleet);
      ASSERT_LT(next->node, spec.nodes);
      ++nexts;
    } else {
      const auto& happy = std::get<fa::IsHappyRequest>(request);
      ASSERT_LT(slot_of(happy.instance), spec.fleet);
      ASSERT_LT(happy.node, spec.nodes);
      ASSERT_GE(happy.holiday, 1u);
    }
  }
  EXPECT_GT(mutates, 0u);
  EXPECT_GT(nexts, 0u);
  EXPECT_LT(mutates, stream_a.size() / 2);
}
