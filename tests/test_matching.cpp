// Tests for fhg::matching — Hopcroft–Karp and the Appendix A.3 satisfaction
// algorithms (peeling/orientation vs matching, alternation schedule).

#include <gtest/gtest.h>

#include "fhg/graph/generators.hpp"
#include "fhg/graph/properties.hpp"
#include "fhg/matching/hopcroft_karp.hpp"
#include "fhg/matching/satisfaction.hpp"
#include "fhg/parallel/rng.hpp"

namespace fg = fhg::graph;
namespace fm = fhg::matching;

// -------------------------------------------------------- Hopcroft–Karp ----

TEST(HopcroftKarp, PerfectMatchingOnCompleteBipartite) {
  fm::BipartiteGraph b;
  b.left_count = 4;
  b.right_count = 4;
  b.adj.assign(4, {0, 1, 2, 3});
  const fm::MatchingResult m = fm::hopcroft_karp(b);
  EXPECT_EQ(m.size, 4U);
  EXPECT_TRUE(fm::is_valid_matching(b, m));
}

TEST(HopcroftKarp, EmptyGraph) {
  fm::BipartiteGraph b;
  b.left_count = 3;
  b.right_count = 3;
  b.adj.assign(3, {});
  const fm::MatchingResult m = fm::hopcroft_karp(b);
  EXPECT_EQ(m.size, 0U);
}

TEST(HopcroftKarp, KnownAugmentingPathCase) {
  // l0-{r0}, l1-{r0, r1}: maximum matching has size 2 and requires
  // augmenting through l1.
  fm::BipartiteGraph b;
  b.left_count = 2;
  b.right_count = 2;
  b.adj = {{0}, {0, 1}};
  const fm::MatchingResult m = fm::hopcroft_karp(b);
  EXPECT_EQ(m.size, 2U);
  EXPECT_EQ(m.match_left[0], 0U);
  EXPECT_EQ(m.match_left[1], 1U);
}

TEST(HopcroftKarp, HallViolatorLimitsMatching) {
  // Three left vertices all confined to the same single right vertex.
  fm::BipartiteGraph b;
  b.left_count = 3;
  b.right_count = 3;
  b.adj = {{1}, {1}, {1}};
  EXPECT_EQ(fm::hopcroft_karp(b).size, 1U);
}

TEST(HopcroftKarp, MatchesGreedyLowerBoundOnRandom) {
  // Maximum matching is ≥ any greedy matching; sanity on random instances.
  fhg::parallel::Rng rng(7);
  for (int trial = 0; trial < 10; ++trial) {
    fm::BipartiteGraph b;
    b.left_count = 30;
    b.right_count = 30;
    b.adj.assign(30, {});
    for (std::uint32_t l = 0; l < 30; ++l) {
      for (std::uint32_t r = 0; r < 30; ++r) {
        if (rng.bernoulli(0.1)) {
          b.adj[l].push_back(r);
        }
      }
    }
    // Greedy matching.
    std::vector<bool> right_used(30, false);
    std::size_t greedy = 0;
    for (std::uint32_t l = 0; l < 30; ++l) {
      for (const std::uint32_t r : b.adj[l]) {
        if (!right_used[r]) {
          right_used[r] = true;
          ++greedy;
          break;
        }
      }
    }
    const fm::MatchingResult m = fm::hopcroft_karp(b);
    EXPECT_GE(m.size, greedy);
    EXPECT_TRUE(fm::is_valid_matching(b, m));
  }
}

// --------------------------------------------------------- satisfaction ----

namespace {

/// Checks internal consistency of a SatisfactionResult against g.
void expect_consistent(const fg::Graph& g, const fm::SatisfactionResult& r) {
  const auto edges = g.edges();
  ASSERT_EQ(r.host_of_edge.size(), edges.size());
  std::vector<bool> derived(g.num_nodes(), false);
  for (std::size_t k = 0; k < edges.size(); ++k) {
    EXPECT_TRUE(r.host_of_edge[k] == edges[k].first || r.host_of_edge[k] == edges[k].second)
        << "edge " << k << " hosted by a non-endpoint";
    derived[r.host_of_edge[k]] = true;
  }
  std::size_t count = 0;
  for (fg::NodeId v = 0; v < g.num_nodes(); ++v) {
    EXPECT_EQ(derived[v], r.satisfied[v]) << "node " << v;
    count += r.satisfied[v] ? 1 : 0;
  }
  EXPECT_EQ(count, r.value);
}

}  // namespace

class SatisfactionTest : public ::testing::TestWithParam<int> {
 protected:
  static fg::Graph make_graph(int index) {
    switch (index) {
      case 0:
        return fg::gnp(80, 0.03, 3);  // sparse: many tree components
      case 1:
        return fg::gnp(80, 0.1, 5);   // denser: cyclic components
      case 2:
        return fg::random_tree(60, 7);
      case 3:
        return fg::cycle(15);
      case 4:
        return fg::star(20);
      case 5:
        return fg::disjoint_union(fg::path(5), 6);
      case 6:
        return fg::clique(10);
      default:
        return fg::barabasi_albert(100, 2, 9);
    }
  }
};

TEST_P(SatisfactionTest, MatchingEqualsLinearEqualsOracle) {
  const fg::Graph g = make_graph(GetParam());
  const std::size_t oracle = fm::max_satisfaction_value(g);
  const fm::SatisfactionResult via_matching = fm::max_satisfaction_matching(g);
  const fm::SatisfactionResult via_linear = fm::max_satisfaction_linear(g);
  EXPECT_EQ(via_matching.value, oracle);
  EXPECT_EQ(via_linear.value, oracle);
  expect_consistent(g, via_matching);
  expect_consistent(g, via_linear);
}

INSTANTIATE_TEST_SUITE_P(Graphs, SatisfactionTest, ::testing::Range(0, 8));

TEST(Satisfaction, TreeLeavesExactlyOneUnsatisfied) {
  const fg::Graph g = fg::random_tree(40, 13);
  const fm::SatisfactionResult r = fm::max_satisfaction_linear(g);
  EXPECT_EQ(r.value, 39U);  // min(n, n-1) = n-1
}

TEST(Satisfaction, CycleSatisfiesEveryone) {
  const fm::SatisfactionResult r = fm::max_satisfaction_linear(fg::cycle(11));
  EXPECT_EQ(r.value, 11U);
}

TEST(Satisfaction, IsolatedNodesNeverSatisfied) {
  fg::GraphBuilder b(4);
  b.add_edge(0, 1);
  const fg::Graph g = std::move(b).build();
  const fm::SatisfactionResult r = fm::max_satisfaction_linear(g);
  EXPECT_EQ(r.value, 1U);  // one couple satisfies one of {0,1}; 2,3 hopeless
  EXPECT_FALSE(r.satisfied[2]);
  EXPECT_FALSE(r.satisfied[3]);
}

TEST(Satisfaction, EmptyGraph) {
  const fg::Graph g(5);
  EXPECT_EQ(fm::max_satisfaction_linear(g).value, 0U);
  EXPECT_EQ(fm::max_satisfaction_matching(g).value, 0U);
}

// ----------------------------------------------------------- alternation ---

TEST(Alternation, SatisfactionGapIsAtMostTwo) {
  const fg::Graph g = fg::gnp(60, 0.08, 17);
  std::vector<std::uint64_t> last(g.num_nodes(), 0);
  for (std::uint64_t t = 1; t <= 20; ++t) {
    for (const fg::NodeId v : fm::alternation_satisfied_set(g, t)) {
      EXPECT_LE(t - last[v], 2U) << "node " << v;
      last[v] = t;
    }
  }
  for (fg::NodeId v = 0; v < g.num_nodes(); ++v) {
    if (g.degree(v) > 0) {
      EXPECT_GE(last[v], 19U) << "node " << v;  // satisfied in the last window
    } else {
      EXPECT_EQ(last[v], 0U);
    }
  }
}

TEST(Alternation, PartitionsEdgeEndpointsOverTwoHolidays) {
  const fg::Graph g = fg::path(4);
  const auto odd = fm::alternation_satisfied_set(g, 1);
  const auto even = fm::alternation_satisfied_set(g, 2);
  // Odd holidays host at lower endpoints {0,1,2}; even at uppers {1,2,3}.
  EXPECT_EQ(odd, (std::vector<fg::NodeId>{0, 1, 2}));
  EXPECT_EQ(even, (std::vector<fg::NodeId>{1, 2, 3}));
}

TEST(Alternation, PeriodTwoExactly) {
  const fg::Graph g = fg::cycle(6);
  const auto t1 = fm::alternation_satisfied_set(g, 1);
  const auto t3 = fm::alternation_satisfied_set(g, 3);
  EXPECT_EQ(t1, t3);
}

// ------------------------------------------- satisfaction schedulers -------

#include "fhg/matching/satisfaction_scheduler.hpp"

namespace {

fg::Graph scheduler_workload(std::uint64_t seed) { return fg::gnp(70, 0.05, seed); }

}  // namespace

class SatisfactionSchedulerTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SatisfactionSchedulerTest, AlternationGapTwoEverywhere) {
  const fg::Graph g = scheduler_workload(GetParam());
  fm::AlternationScheduler scheduler(g);
  const auto report = fm::run_satisfaction(scheduler, 50);
  EXPECT_TRUE(report.bounds_respected);
  for (fg::NodeId v = 0; v < g.num_nodes(); ++v) {
    if (g.degree(v) > 0) {
      EXPECT_LE(report.max_gap[v], 2U) << "node " << v;
    }
  }
}

TEST_P(SatisfactionSchedulerTest, MaxFlipGapTwoAndOptimalOddHolidays) {
  const fg::Graph g = scheduler_workload(GetParam() + 50);
  fm::MaxFlipScheduler scheduler(g);
  const std::size_t optimum = fm::max_satisfaction_value(g);
  EXPECT_EQ(scheduler.optimum(), optimum);
  // Odd holidays achieve the one-shot optimum.
  const auto first = scheduler.next_holiday();
  EXPECT_EQ(first.size(), optimum);
  const auto report = fm::run_satisfaction(scheduler, 51);
  EXPECT_TRUE(report.bounds_respected);
  for (fg::NodeId v = 0; v < g.num_nodes(); ++v) {
    if (g.degree(v) > 0) {
      EXPECT_LE(report.max_gap[v], 2U) << "node " << v;
    }
  }
}

TEST_P(SatisfactionSchedulerTest, MaxFlipDominatesAlternationThroughput) {
  const fg::Graph g = scheduler_workload(GetParam() + 100);
  fm::AlternationScheduler alternation(g);
  fm::MaxFlipScheduler max_flip(g);
  const auto alt = fm::run_satisfaction(alternation, 100);
  const auto flip = fm::run_satisfaction(max_flip, 100);
  // Equal worst-case guarantee, but max-flip fits the optimum into odd
  // holidays — its throughput is at least alternation's optimum share.
  EXPECT_GE(flip.total_satisfied, 50 * fm::max_satisfaction_value(g));
  EXPECT_TRUE(alt.bounds_respected);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SatisfactionSchedulerTest,
                         ::testing::Range<std::uint64_t>(0, 5));

TEST(StaticOptimumScheduler, WinnersEveryYearStarvedForever) {
  const fg::Graph g = fg::random_tree(30, 3);  // exactly one starved parent
  fm::StaticOptimumScheduler scheduler(g);
  EXPECT_EQ(scheduler.optimum(), 29U);
  const auto report = fm::run_satisfaction(scheduler, 20);
  EXPECT_TRUE(report.bounds_respected);
  std::size_t starved = 0;
  for (fg::NodeId v = 0; v < g.num_nodes(); ++v) {
    if (report.max_gap[v] == 21U) {  // horizon + 1: never satisfied
      ++starved;
      EXPECT_FALSE(scheduler.gap_bound(v).has_value());
    } else {
      EXPECT_EQ(report.max_gap[v], 1U);
    }
  }
  EXPECT_EQ(starved, 1U);
}

TEST(SatisfactionSchedulers, ResetReplaysIdentically) {
  const fg::Graph g = fg::gnp(40, 0.08, 9);
  fm::MaxFlipScheduler scheduler(g);
  std::vector<std::vector<fg::NodeId>> first_run;
  for (int i = 0; i < 6; ++i) {
    first_run.push_back(scheduler.next_holiday());
  }
  scheduler.reset();
  for (int i = 0; i < 6; ++i) {
    EXPECT_EQ(scheduler.next_holiday(), first_run[static_cast<std::size_t>(i)]);
  }
}
