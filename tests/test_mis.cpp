// Tests for fhg::mis — exact branch & bound, greedy heuristic and the
// Shapley sampler for the Appendix A.2 happiness coalition game.

#include <gtest/gtest.h>

#include <numeric>

#include "fhg/graph/generators.hpp"
#include "fhg/graph/properties.hpp"
#include "fhg/mis/exact.hpp"
#include "fhg/mis/greedy.hpp"
#include "fhg/mis/shapley.hpp"
#include "fhg/parallel/rng.hpp"

namespace fg = fhg::graph;
namespace fm = fhg::mis;

// --------------------------------------------------------------- exact -----

TEST(ExactMis, KnownValues) {
  EXPECT_EQ(fm::exact_mis(fg::clique(7))->independent_set.size(), 1U);
  EXPECT_EQ(fm::exact_mis(fg::cycle(8))->independent_set.size(), 4U);
  EXPECT_EQ(fm::exact_mis(fg::cycle(9))->independent_set.size(), 4U);  // ⌊9/2⌋
  EXPECT_EQ(fm::exact_mis(fg::path(7))->independent_set.size(), 4U);   // ⌈7/2⌉
  EXPECT_EQ(fm::exact_mis(fg::star(10))->independent_set.size(), 9U);  // all leaves
  EXPECT_EQ(fm::exact_mis(fg::complete_bipartite(4, 9))->independent_set.size(), 9U);
  EXPECT_EQ(fm::exact_mis(fg::Graph(6))->independent_set.size(), 6U);
}

TEST(ExactMis, GridValue) {
  // 3x3 grid: independence number 5 (the corners + center pattern).
  EXPECT_EQ(fm::exact_mis(fg::grid2d(3, 3))->independent_set.size(), 5U);
  // 4x4 grid: 8 (checkerboard).
  EXPECT_EQ(fm::exact_mis(fg::grid2d(4, 4))->independent_set.size(), 8U);
}

TEST(ExactMis, ResultIsIndependent) {
  for (std::uint64_t seed = 0; seed < 5; ++seed) {
    const fg::Graph g = fg::gnp(40, 0.15, seed);
    const auto result = fm::exact_mis(g);
    ASSERT_TRUE(result.has_value());
    EXPECT_TRUE(fg::is_independent_set(g, result->independent_set));
  }
}

TEST(ExactMis, BeatsOrMatchesGreedy) {
  for (std::uint64_t seed = 10; seed < 16; ++seed) {
    const fg::Graph g = fg::gnp(45, 0.12, seed);
    const auto exact = fm::exact_mis(g);
    const auto greedy = fm::greedy_mis(g);
    ASSERT_TRUE(exact.has_value());
    EXPECT_GE(exact->independent_set.size(), greedy.size());
  }
}

TEST(ExactMis, BudgetTruncatesSearch) {
  const fg::Graph g = fg::gnp(60, 0.3, 1);
  EXPECT_FALSE(fm::exact_mis(g, /*node_budget=*/2).has_value());
  const auto full = fm::exact_mis(g);
  ASSERT_TRUE(full.has_value());
  EXPECT_GT(full->branch_count, 2U);
}

TEST(ExactMisSmall, MatchesFullSolver) {
  for (std::uint64_t seed = 0; seed < 6; ++seed) {
    const fg::Graph g = fg::gnp(18, 0.25, seed);
    const std::uint64_t all = (std::uint64_t{1} << 18) - 1;
    const auto full = fm::exact_mis(g);
    ASSERT_TRUE(full.has_value());
    EXPECT_EQ(fm::exact_mis_size_small(g, all), full->independent_set.size());
  }
}

TEST(ExactMisSmall, SubsetMasksAreMonotone) {
  const fg::Graph g = fg::gnp(14, 0.3, 3);
  const std::uint64_t all = (std::uint64_t{1} << 14) - 1;
  const std::uint32_t whole = fm::exact_mis_size_small(g, all);
  // Removing a node can lower MIS by at most 1 and never raise it.
  for (fg::NodeId v = 0; v < 14; ++v) {
    const std::uint32_t without = fm::exact_mis_size_small(g, all & ~(std::uint64_t{1} << v));
    EXPECT_LE(without, whole);
    EXPECT_GE(without + 1, whole);
  }
}

// --------------------------------------------------------------- greedy ----

TEST(GreedyMis, ProducesMaximalIndependentSet) {
  for (std::uint64_t seed = 0; seed < 5; ++seed) {
    const fg::Graph g = fg::barabasi_albert(200, 3, seed);
    const auto mis = fm::greedy_mis(g);
    EXPECT_TRUE(fg::is_independent_set(g, mis));
    std::vector<bool> covered(g.num_nodes(), false);
    for (const fg::NodeId v : mis) {
      covered[v] = true;
      for (const fg::NodeId w : g.neighbors(v)) {
        covered[w] = true;
      }
    }
    EXPECT_TRUE(std::all_of(covered.begin(), covered.end(), [](bool b) { return b; }));
  }
}

TEST(GreedyMis, AchievesCaroWeiBound) {
  for (std::uint64_t seed = 0; seed < 5; ++seed) {
    const fg::Graph g = fg::gnp(150, 0.05, seed + 40);
    const auto mis = fm::greedy_mis(g);
    EXPECT_GE(static_cast<double>(mis.size()), fm::caro_wei_bound(g) - 1e-9);
  }
}

TEST(GreedyMis, OptimalOnStar) {
  EXPECT_EQ(fm::greedy_mis(fg::star(12)).size(), 11U);
}

// -------------------------------------------------------------- Shapley ----

TEST(Shapley, ValuesSumToMisSize) {
  const fg::Graph g = fg::gnp(12, 0.3, 5);
  const auto values = fm::shapley_estimate(g, /*samples=*/200, /*seed=*/3);
  const double total = std::accumulate(values.begin(), values.end(), 0.0);
  const auto mis = fm::exact_mis(g);
  // Efficiency is exact per-sample (telescoping), so the sum is exact.
  EXPECT_NEAR(total, static_cast<double>(mis->independent_set.size()), 1e-9);
}

TEST(Shapley, IsolatedNodeGetsFullShare) {
  fg::GraphBuilder b(3);
  b.add_edge(0, 1);  // node 2 isolated
  const fg::Graph g = std::move(b).build();
  const auto values = fm::shapley_estimate(g, 500, 7);
  EXPECT_NEAR(values[2], 1.0, 1e-9);          // always contributes itself
  EXPECT_NEAR(values[0], 0.5, 0.1);           // symmetric pair shares 1
  EXPECT_NEAR(values[0], values[1], 0.15);
}

TEST(Shapley, CliqueSharesEqually) {
  const fg::Graph g = fg::clique(6);
  const auto values = fm::shapley_estimate(g, 2000, 11);
  for (const double v : values) {
    EXPECT_NEAR(v, 1.0 / 6.0, 0.05);  // v(S) = 1 for any nonempty S
  }
}

TEST(Shapley, RejectsLargeGraphsAndZeroSamples) {
  EXPECT_THROW(static_cast<void>(fm::shapley_estimate(fg::path(65), 10, 1)),
               std::invalid_argument);
  EXPECT_THROW(static_cast<void>(fm::shapley_estimate(fg::path(5), 0, 1)),
               std::invalid_argument);
}

// ----------------------------------------- coalition-game cross-checks -----

#include "fhg/graph/subgraph.hpp"

TEST(ExactMis, InducedSubgraphAgreesWithMaskOracle) {
  // The Appendix A.2 coalition value two ways: exact MIS of the *materialized*
  // induced subgraph vs the bitmask oracle used by the Shapley sampler.
  const fg::Graph g = fg::gnp(18, 0.25, 21);
  fhg::parallel::Rng rng(31);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<fg::NodeId> coalition;
    std::uint64_t mask = 0;
    for (fg::NodeId v = 0; v < g.num_nodes(); ++v) {
      if (rng.bernoulli(0.5)) {
        coalition.push_back(v);
        mask |= std::uint64_t{1} << v;
      }
    }
    const auto sub = fg::induced_subgraph(g, coalition);
    const auto direct = fm::exact_mis(sub.graph);
    ASSERT_TRUE(direct.has_value());
    EXPECT_EQ(direct->independent_set.size(), fm::exact_mis_size_small(g, mask));
  }
}

TEST(ExactMis, ComplementDualityOnSmallGraphs) {
  // α(G) = ω(Ḡ): a maximum independent set of G is a maximum clique of the
  // complement — checked via MIS on both sides using α(Ḡ) of the complement
  // of the complement.
  for (std::uint64_t seed = 0; seed < 5; ++seed) {
    const fg::Graph g = fg::gnp(16, 0.4, seed);
    const auto mis = fm::exact_mis(g);
    const fg::Graph co = fg::complement(g);
    // The MIS nodes form a clique in the complement.
    for (std::size_t i = 0; i < mis->independent_set.size(); ++i) {
      for (std::size_t j = i + 1; j < mis->independent_set.size(); ++j) {
        EXPECT_TRUE(co.has_edge(mis->independent_set[i], mis->independent_set[j]));
      }
    }
  }
}
