// Tests for fhg::obs — the telemetry layer every serving component shares:
// the power-of-two histogram (quantiles, merge, saturation), the lock-free
// metrics registry, the slowest-N trace ring, the exposition formatters
// (Prometheus text format and the human-readable table), and the /metrics
// HTTP endpoint.

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "fhg/obs/format.hpp"
#include "fhg/obs/histogram.hpp"
#include "fhg/obs/http.hpp"
#include "fhg/obs/registry.hpp"
#include "fhg/obs/trace.hpp"

namespace fo = fhg::obs;

// ------------------------------------------------------------ histogram ----

TEST(ObsHistogram, EmptyHistogramQuantilesAreZero) {
  const fo::Histogram h;
  EXPECT_EQ(h.total(), 0u);
  EXPECT_FALSE(h.saturated());
  EXPECT_EQ(h.quantile(0.0), 0u);
  EXPECT_EQ(h.quantile(0.5), 0u);
  EXPECT_EQ(h.quantile(1.0), 0u);
}

TEST(ObsHistogram, SingleBucketQuantilesInterpolateWithinTheBucket) {
  fo::Histogram h;
  for (int i = 0; i < 100; ++i) {
    h.record(10);  // bucket [8, 16)
  }
  EXPECT_EQ(h.total(), 100u);
  // Every quantile lands in the one occupied bucket: estimates stay inside
  // its [floor, ceiling) range and grow monotonically with q.
  const std::uint64_t q01 = h.quantile(0.01);
  const std::uint64_t q50 = h.quantile(0.5);
  const std::uint64_t q99 = h.quantile(0.99);
  EXPECT_GE(q01, 8u);
  EXPECT_LE(q99, 16u);
  EXPECT_LE(q01, q50);
  EXPECT_LE(q50, q99);
}

TEST(ObsHistogram, QuantileRanksAcrossBuckets) {
  fo::Histogram h;
  for (int i = 0; i < 90; ++i) {
    h.record(1);  // bucket [1, 2)
  }
  for (int i = 0; i < 10; ++i) {
    h.record(1000);  // bucket [512, 1024)
  }
  // p50 is deep inside the low bucket; p99 inside the high one.
  EXPECT_LT(h.quantile(0.5), 2u);
  EXPECT_GE(h.quantile(0.95), 512u);
  EXPECT_LE(h.quantile(0.99), 1024u);
}

TEST(ObsHistogram, ZeroValuesLandInBucketZero) {
  fo::Histogram h;
  h.record(0);
  h.record(0);
  EXPECT_EQ(h.buckets[0], 2u);
  EXPECT_EQ(h.quantile(1.0), 0u);
}

TEST(ObsHistogram, SaturatedTopBucketReportsFloorAndFlagsIt) {
  fo::Histogram h;
  const std::uint64_t top_floor = fo::Histogram::bucket_floor(fo::Histogram::kBuckets - 1);
  h.record(~std::uint64_t{0});  // clamps into the top bucket
  h.record(top_floor);
  EXPECT_TRUE(h.saturated());
  // The tail is clipped: the quantile is the clamp boundary, a lower bound.
  EXPECT_EQ(h.quantile(0.99), top_floor);
  EXPECT_EQ(h.quantile(1.0), top_floor);
}

TEST(ObsHistogram, MergeAddsBucketwiseAndEmptyMergeIsIdentity) {
  fo::Histogram a;
  a.record(3);
  a.record(100);
  const fo::Histogram before = a;
  a.merge(fo::Histogram{});  // merging empty changes nothing
  EXPECT_EQ(a, before);
  fo::Histogram b;
  b.record(3);
  b.record(~std::uint64_t{0});
  a.merge(b);
  EXPECT_EQ(a.total(), 4u);
  EXPECT_EQ(a.buckets[fo::Histogram::bucket_of(3)], 2u);
  EXPECT_TRUE(a.saturated());  // saturation survives a merge
  fo::Histogram empty;
  empty.merge(b);  // merging *into* empty copies
  EXPECT_EQ(empty, b);
}

// ------------------------------------------------------------- registry ----

TEST(ObsRegistry, HandlesAreStableAndIdempotent) {
  fo::Registry registry;
  fo::Counter& c1 = registry.counter("fhg_test_a_total");
  fo::Counter& c2 = registry.counter("fhg_test_a_total");
  EXPECT_EQ(&c1, &c2);  // same name, same cell
  c1.add(3);
  c2.increment();
  EXPECT_EQ(c1.value(), 4u);
  fo::Gauge& g = registry.gauge("fhg_test_depth");
  g.set(10);
  g.add(-3);
  EXPECT_EQ(g.value(), 7);
  registry.histogram("fhg_test_us").record(100);
}

TEST(ObsRegistry, GaugeRecordMaxIsARunningMaximumUnderConcurrency) {
  fo::Gauge gauge;
  gauge.record_max(7);
  EXPECT_EQ(gauge.value(), 7);
  gauge.record_max(3);  // lower candidates never pull the high-water mark down
  EXPECT_EQ(gauge.value(), 7);
  gauge.record_max(7);  // equal candidates are a no-op, not a CAS loop
  EXPECT_EQ(gauge.value(), 7);

  // Racing recorders must converge on the true maximum (the CAS retry path).
  std::vector<std::thread> recorders;
  for (int t = 0; t < 4; ++t) {
    recorders.emplace_back([&gauge, t] {
      for (std::int64_t i = 0; i < 10'000; ++i) {
        gauge.record_max(i * 4 + t);
      }
    });
  }
  for (std::thread& recorder : recorders) {
    recorder.join();
  }
  EXPECT_EQ(gauge.value(), 9'999 * 4 + 3);
}

TEST(ObsRegistry, SnapshotIsSortedByNameAndTyped) {
  fo::Registry registry;
  registry.counter("fhg_z_total").add(1);
  registry.gauge("fhg_a_gauge").set(-5);
  registry.histogram("fhg_m_us").record(42);
  const auto samples = registry.snapshot();
  ASSERT_EQ(samples.size(), 3u);
  EXPECT_EQ(samples[0].name, "fhg_a_gauge");
  EXPECT_EQ(samples[0].kind, fo::MetricKind::kGauge);
  EXPECT_EQ(static_cast<std::int64_t>(samples[0].value), -5);
  EXPECT_EQ(samples[1].name, "fhg_m_us");
  EXPECT_EQ(samples[1].kind, fo::MetricKind::kHistogram);
  EXPECT_EQ(samples[1].value, 1u);  // histogram sample value = total count
  EXPECT_EQ(samples[1].histogram.total(), 1u);
  EXPECT_EQ(samples[2].name, "fhg_z_total");
  EXPECT_EQ(samples[2].kind, fo::MetricKind::kCounter);
  EXPECT_EQ(samples[2].value, 1u);
}

TEST(ObsRegistry, TwoRegistriesWithTheSameEventsSnapshotIdentically) {
  // The property GetStats transport equivalence rests on: snapshots are a
  // pure function of the recorded events, not of registration order.
  fo::Registry a;
  fo::Registry b;
  a.counter("one_total").add(5);
  a.gauge("depth").set(2);
  b.gauge("depth").set(2);  // registered in a different order
  b.counter("one_total").add(5);
  EXPECT_EQ(a.snapshot(), b.snapshot());
}

TEST(ObsRegistry, ConcurrentIncrementsAreExact) {
  fo::Registry registry;
  fo::Counter& counter = registry.counter("fhg_test_hammer_total");
  constexpr int kThreads = 8;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&counter] {
      for (int i = 0; i < kPerThread; ++i) {
        counter.increment();
      }
    });
  }
  for (auto& thread : threads) {
    thread.join();
  }
  EXPECT_EQ(counter.value(), static_cast<std::uint64_t>(kThreads) * kPerThread);
}

// ------------------------------------------------------------ trace ring ---

TEST(ObsTraceRing, KeepsTheSlowestNSortedSlowestFirst) {
  fo::TraceRing ring(4);
  for (std::uint64_t i = 1; i <= 10; ++i) {
    ring.offer(fo::TraceSample{.trace_id = i, .total_us = i * 100});
  }
  const auto kept = ring.snapshot();
  ASSERT_EQ(kept.size(), 4u);
  EXPECT_EQ(kept[0].total_us, 1000u);  // slowest first
  EXPECT_EQ(kept[1].total_us, 900u);
  EXPECT_EQ(kept[2].total_us, 800u);
  EXPECT_EQ(kept[3].total_us, 700u);
}

TEST(ObsTraceRing, FastRequestsAreRejectedOnceFull) {
  fo::TraceRing ring(2);
  ring.offer(fo::TraceSample{.trace_id = 1, .total_us = 500});
  ring.offer(fo::TraceSample{.trace_id = 2, .total_us = 600});
  ring.offer(fo::TraceSample{.trace_id = 3, .total_us = 100});  // too fast
  const auto kept = ring.snapshot();
  ASSERT_EQ(kept.size(), 2u);
  EXPECT_EQ(kept[0].trace_id, 2u);
  EXPECT_EQ(kept[1].trace_id, 1u);
}

TEST(ObsTraceRing, TiesBreakByTraceIdAndClearForgets) {
  fo::TraceRing ring(3);
  ring.offer(fo::TraceSample{.trace_id = 9, .total_us = 100});
  ring.offer(fo::TraceSample{.trace_id = 3, .total_us = 100});
  auto kept = ring.snapshot();
  ASSERT_EQ(kept.size(), 2u);
  EXPECT_EQ(kept[0].trace_id, 3u);  // equal total_us: lower trace id first
  EXPECT_EQ(kept[1].trace_id, 9u);
  ring.clear();
  EXPECT_TRUE(ring.snapshot().empty());
  // After a clear, fast samples are admitted again (the floor reset).
  ring.offer(fo::TraceSample{.trace_id = 1, .total_us = 1});
  EXPECT_EQ(ring.snapshot().size(), 1u);
}

TEST(ObsTraceRing, ZeroCapacityKeepsNothing) {
  fo::TraceRing ring(0);
  ring.offer(fo::TraceSample{.trace_id = 1, .total_us = 1000});
  EXPECT_TRUE(ring.snapshot().empty());
}

// ------------------------------------------------------------ formatters ---

TEST(ObsFormat, PrometheusRendersCountersGaugesAndLabels) {
  std::vector<fo::MetricSample> samples;
  samples.push_back(fo::MetricSample{.name = "fhg_api_frames_encoded_total",
                                     .kind = fo::MetricKind::kCounter,
                                     .value = 42});
  samples.push_back(fo::MetricSample{.name = "fhg_engine_nodes",
                                     .kind = fo::MetricKind::kGauge,
                                     .value = static_cast<std::uint64_t>(-7)});
  samples.push_back(fo::MetricSample{.name = "fhg_service_accepted_total{shard=\"0\"}",
                                     .kind = fo::MetricKind::kCounter,
                                     .value = 9});
  const std::string text = fo::to_prometheus(samples);
  EXPECT_NE(text.find("# TYPE fhg_api_frames_encoded_total counter"), std::string::npos);
  EXPECT_NE(text.find("fhg_api_frames_encoded_total 42\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE fhg_engine_nodes gauge"), std::string::npos);
  EXPECT_NE(text.find("fhg_engine_nodes -7\n"), std::string::npos);
  // Labeled sample: the TYPE line names the bare family, the sample line
  // keeps its labels.
  EXPECT_NE(text.find("# TYPE fhg_service_accepted_total counter"), std::string::npos);
  EXPECT_NE(text.find("fhg_service_accepted_total{shard=\"0\"} 9\n"), std::string::npos);
}

TEST(ObsFormat, PrometheusHistogramIsCumulativeWithInfAndCount) {
  fo::Histogram h;
  h.record(1);   // le 1
  h.record(10);  // le 15
  std::vector<fo::MetricSample> samples;
  samples.push_back(fo::MetricSample{.name = "fhg_socket_frame_us{port=\"1\"}",
                                     .kind = fo::MetricKind::kHistogram,
                                     .value = h.total(),
                                     .histogram = h});
  const std::string text = fo::to_prometheus(samples);
  EXPECT_NE(text.find("# TYPE fhg_socket_frame_us histogram"), std::string::npos);
  // Buckets are cumulative and carry both the baked-in and the le label.
  EXPECT_NE(text.find("fhg_socket_frame_us_bucket{port=\"1\",le=\"1\"} 1\n"),
            std::string::npos);
  EXPECT_NE(text.find("fhg_socket_frame_us_bucket{port=\"1\",le=\"15\"} 2\n"),
            std::string::npos);
  EXPECT_NE(text.find("fhg_socket_frame_us_bucket{port=\"1\",le=\"+Inf\"} 2\n"),
            std::string::npos);
  EXPECT_NE(text.find("fhg_socket_frame_us_count{port=\"1\"} 2\n"), std::string::npos);
  EXPECT_NE(text.find("fhg_socket_frame_us_sum{port=\"1\"} "), std::string::npos);
  EXPECT_EQ(text.find("# WARNING"), std::string::npos);  // not saturated
}

TEST(ObsFormat, PrometheusFlagsSaturatedHistograms) {
  fo::Histogram h;
  h.record(~std::uint64_t{0});
  std::vector<fo::MetricSample> samples;
  samples.push_back(fo::MetricSample{.name = "fhg_engine_query_batch_us",
                                     .kind = fo::MetricKind::kHistogram,
                                     .value = h.total(),
                                     .histogram = h});
  const std::string text = fo::to_prometheus(samples);
  EXPECT_NE(text.find("# WARNING fhg_engine_query_batch_us"), std::string::npos);
  EXPECT_NE(text.find("le=\"+Inf\"} 1\n"), std::string::npos);
}

TEST(ObsFormat, TextTableRendersEveryKindAndMarksSaturation) {
  fo::Histogram plain;
  plain.record(100);
  fo::Histogram clipped;
  clipped.record(~std::uint64_t{0});
  std::vector<fo::MetricSample> samples;
  samples.push_back(fo::MetricSample{
      .name = "fhg_a_total", .kind = fo::MetricKind::kCounter, .value = 5});
  samples.push_back(fo::MetricSample{.name = "fhg_b_depth",
                                     .kind = fo::MetricKind::kGauge,
                                     .value = static_cast<std::uint64_t>(-3)});
  samples.push_back(fo::MetricSample{.name = "fhg_c_us",
                                     .kind = fo::MetricKind::kHistogram,
                                     .value = plain.total(),
                                     .histogram = plain});
  samples.push_back(fo::MetricSample{.name = "fhg_d_us",
                                     .kind = fo::MetricKind::kHistogram,
                                     .value = clipped.total(),
                                     .histogram = clipped});
  const std::string text = fo::to_text(samples);
  EXPECT_NE(text.find("fhg_a_total"), std::string::npos);
  EXPECT_NE(text.find("-3"), std::string::npos);
  EXPECT_NE(text.find("p50="), std::string::npos);
  EXPECT_NE(text.find("[saturated]"), std::string::npos);
  // The unsaturated histogram's row must not carry the marker.
  const auto c_row = text.find("fhg_c_us");
  const auto c_end = text.find('\n', c_row);
  EXPECT_EQ(text.substr(c_row, c_end - c_row).find("[saturated]"), std::string::npos);
}

TEST(ObsFormat, TraceTableListsSlowestFirst) {
  std::vector<fo::TraceSample> traces;
  traces.push_back(fo::TraceSample{.trace_id = 11,
                                   .request_id = 2,
                                   .kind = 0,
                                   .queue_us = 10,
                                   .serve_us = 40,
                                   .total_us = 50});
  const std::string text = fo::to_text(traces);
  EXPECT_NE(text.find("trace"), std::string::npos);
  EXPECT_NE(text.find("11"), std::string::npos);
  EXPECT_NE(text.find("50"), std::string::npos);
}

// ---------------------------------------------------------- http endpoint --

namespace {

/// Minimal scrape client: connects, sends one GET, reads to EOF.
std::string scrape(std::uint16_t port, const std::string& path) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return {};
  }
  sockaddr_in address{};
  address.sin_family = AF_INET;
  address.sin_port = htons(port);
  ::inet_pton(AF_INET, "127.0.0.1", &address.sin_addr);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&address), sizeof(address)) != 0) {
    ::close(fd);
    return {};
  }
  const std::string request = "GET " + path + " HTTP/1.1\r\nHost: test\r\n\r\n";
  (void)::send(fd, request.data(), request.size(), 0);
  std::string reply;
  char chunk[4096];
  for (;;) {
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n <= 0) {
      break;
    }
    reply.append(chunk, static_cast<std::size_t>(n));
  }
  ::close(fd);
  return reply;
}

}  // namespace

TEST(ObsHttp, ServesRenderedMetricsAndCountsScrapes) {
  std::atomic<int> renders{0};
  fo::StatsHttpServer server([&renders] {
    renders.fetch_add(1);
    return std::string("fhg_test_total 1\n");
  });
  ASSERT_NE(server.port(), 0);
  const std::string reply = scrape(server.port(), "/metrics");
  EXPECT_NE(reply.find("HTTP/1.1 200 OK"), std::string::npos);
  EXPECT_NE(reply.find("text/plain; version=0.0.4"), std::string::npos);
  EXPECT_NE(reply.find("fhg_test_total 1"), std::string::npos);
  EXPECT_EQ(renders.load(), 1);
  EXPECT_EQ(server.scrapes(), 1u);
  // A query string still hits the endpoint; an unknown path 404s without
  // invoking the renderer.
  EXPECT_NE(scrape(server.port(), "/metrics?ts=1").find("200 OK"), std::string::npos);
  EXPECT_NE(scrape(server.port(), "/other").find("404"), std::string::npos);
  EXPECT_EQ(server.scrapes(), 2u);
  server.stop();
  server.stop();  // idempotent
}
