// Tests for the weighted perfectly-periodic scheduler extension
// (src/core/weighted.hpp) — §5 generalized to user-chosen demand periods.

#include <gtest/gtest.h>

#include "fhg/coding/iterated_log.hpp"
#include "fhg/core/degree_bound.hpp"
#include "fhg/core/driver.hpp"
#include "fhg/core/weighted.hpp"
#include "fhg/graph/generators.hpp"
#include "fhg/parallel/rng.hpp"

namespace fg = fhg::graph;
namespace fco = fhg::core;

TEST(RoundPeriodUp, PowersOfTwo) {
  EXPECT_EQ(fco::round_period_up(1), 1U);
  EXPECT_EQ(fco::round_period_up(2), 2U);
  EXPECT_EQ(fco::round_period_up(3), 4U);
  EXPECT_EQ(fco::round_period_up(5), 8U);
  EXPECT_EQ(fco::round_period_up(1024), 1024U);
  EXPECT_EQ(fco::round_period_up(1025), 2048U);
  EXPECT_THROW(static_cast<void>(fco::round_period_up(0)), std::invalid_argument);
}

TEST(WeightedSlots, GrantsExactRequestsWhenFeasible) {
  // Path 0-1-2 with periods 4, 2, 4: densities 3/4, 1, 3/4 — feasible.
  const fg::Graph g = fg::path(3);
  const std::vector<std::uint64_t> request{4, 2, 4};
  const auto assignment = fco::assign_weighted_slots(g, request, fco::WeightedPolicy::kStrict);
  EXPECT_TRUE(assignment.relaxed.empty());
  EXPECT_EQ(assignment.slots[0].period(), 4U);
  EXPECT_EQ(assignment.slots[1].period(), 2U);
  EXPECT_EQ(assignment.slots[2].period(), 4U);
  EXPECT_TRUE(fco::slots_conflict_free(g, assignment.slots));
}

TEST(WeightedSlots, StrictThrowsWhenOverloaded) {
  // Triangle where everyone wants period 2: density 3/2 > 1.
  const fg::Graph g = fg::clique(3);
  const std::vector<std::uint64_t> request{2, 2, 2};
  EXPECT_THROW(
      static_cast<void>(fco::assign_weighted_slots(g, request, fco::WeightedPolicy::kStrict)),
      std::runtime_error);
}

TEST(WeightedSlots, AutoRelaxResolvesOverload) {
  const fg::Graph g = fg::clique(3);
  const std::vector<std::uint64_t> request{2, 2, 2};
  const auto assignment =
      fco::assign_weighted_slots(g, request, fco::WeightedPolicy::kAutoRelax);
  EXPECT_FALSE(assignment.relaxed.empty());
  EXPECT_TRUE(fco::slots_conflict_free(g, assignment.slots));
  // Everyone still gets scheduled; granted periods are powers of two ≥ 2.
  for (const auto& slot : assignment.slots) {
    EXPECT_GE(slot.period(), 2U);
  }
}

TEST(WeightedSlots, DegreeFloorRequestsAlwaysGrantedStrictly) {
  // Requests at (double) the §5 degree floor are feasible by the pigeonhole
  // regardless of the load diagnostic: strict mode grants them verbatim.
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    const fg::Graph g = fg::gnp(60, 0.08, seed);
    std::vector<std::uint64_t> request(g.num_nodes());
    for (fg::NodeId v = 0; v < g.num_nodes(); ++v) {
      request[v] = std::uint64_t{2} << fhg::coding::ceil_log2(g.degree(v) + 1);
    }
    const auto assignment =
        fco::assign_weighted_slots(g, request, fco::WeightedPolicy::kStrict);
    EXPECT_TRUE(assignment.relaxed.empty());
    for (fg::NodeId v = 0; v < g.num_nodes(); ++v) {
      EXPECT_EQ(assignment.slots[v].period(), request[v]);
    }
  }
}

TEST(WeightedSlots, LoadAtMostOneImpliesNoRelaxation) {
  // The documented sufficient condition: if schedule_load(v) ≤ 1 for all v,
  // kAutoRelax changes nothing and every request is granted exactly.
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    const fg::Graph g = fg::gnp(50, 0.1, seed + 20);
    std::vector<std::uint64_t> request(g.num_nodes());
    for (fg::NodeId v = 0; v < g.num_nodes(); ++v) {
      // Uniform period ≥ Δ+1 rounded: load = (d+1)/P ≤ 1 everywhere.
      request[v] = fco::round_period_up(g.max_degree() + 1);
    }
    const auto loads = fco::schedule_load(g, request);
    for (const double load : loads) {
      ASSERT_LE(load, 1.0);
    }
    const auto assignment =
        fco::assign_weighted_slots(g, request, fco::WeightedPolicy::kAutoRelax);
    EXPECT_TRUE(assignment.relaxed.empty());
    for (fg::NodeId v = 0; v < g.num_nodes(); ++v) {
      EXPECT_EQ(assignment.slots[v].period(), fco::round_period_up(g.max_degree() + 1));
    }
  }
}

TEST(WeightedSlots, DegreeBoundIsTheSpecialCase) {
  // Requesting exactly 2^ceil(log(d+1)) reproduces §5's granted periods.
  const fg::Graph g = fg::barabasi_albert(150, 3, 9);
  std::vector<std::uint64_t> request(g.num_nodes());
  for (fg::NodeId v = 0; v < g.num_nodes(); ++v) {
    request[v] = std::uint64_t{1} << fhg::coding::ceil_log2(g.degree(v) + 1);
  }
  const auto weighted = fco::assign_weighted_slots(g, request, fco::WeightedPolicy::kStrict);
  fco::DegreeBoundScheduler reference(g);
  EXPECT_TRUE(weighted.relaxed.empty());
  for (fg::NodeId v = 0; v < g.num_nodes(); ++v) {
    EXPECT_EQ(weighted.slots[v].period(), reference.period_of(v).value());
  }
}

class WeightedSchedulerTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(WeightedSchedulerTest, DrivenRunIsExactlyPeriodic) {
  const std::uint64_t seed = GetParam();
  const fg::Graph g = fg::gnp(80, 0.05, seed);
  fhg::parallel::Rng rng(seed, 0x77);
  std::vector<std::uint64_t> request(g.num_nodes());
  for (fg::NodeId v = 0; v < g.num_nodes(); ++v) {
    // Random demands above the degree-based floor (stays feasible often;
    // auto-relax covers the rest).
    const std::uint64_t floor_period =
        std::uint64_t{1} << fhg::coding::ceil_log2(g.degree(v) + 1);
    request[v] = floor_period << rng.uniform_below(3);
  }
  fco::WeightedPeriodicScheduler scheduler(g, request);
  std::uint64_t horizon = 64;
  for (fg::NodeId v = 0; v < g.num_nodes(); ++v) {
    horizon = std::max(horizon, 3 * scheduler.period_of(v).value());
  }
  const auto report = fco::run_schedule(scheduler, {.horizon = horizon});
  EXPECT_TRUE(report.independence_ok);
  EXPECT_TRUE(report.bounds_respected);
  for (fg::NodeId v = 0; v < g.num_nodes(); ++v) {
    EXPECT_EQ(report.detected_period[v], scheduler.period_of(v)) << "node " << v;
    EXPECT_GE(scheduler.period_of(v).value(), fco::round_period_up(request[v]));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, WeightedSchedulerTest, ::testing::Range<std::uint64_t>(0, 6));

TEST(WeightedScheduler, HappyAtMatchesNextHoliday) {
  const fg::Graph g = fg::cycle(12);
  const std::vector<std::uint64_t> request(12, 4);
  fco::WeightedPeriodicScheduler scheduler(g, request);
  for (std::uint64_t t = 1; t <= 64; ++t) {
    const auto happy = scheduler.next_holiday();
    for (fg::NodeId v = 0; v < 12; ++v) {
      const bool in_set = std::find(happy.begin(), happy.end(), v) != happy.end();
      EXPECT_EQ(in_set, scheduler.happy_at(v, t));
    }
  }
}

TEST(WeightedScheduler, GoldSilverBronzeClasses) {
  // The radio scenario: gold nodes demand period 2, others 8/16 — on a
  // bipartite-ish graph the golds get their rate and nobody conflicts.
  const fg::Graph g = fg::complete_bipartite(3, 5);
  std::vector<std::uint64_t> request(8, 16);
  request[0] = 2;  // gold on the small side
  fco::WeightedPeriodicScheduler scheduler(g, request);
  EXPECT_EQ(scheduler.period_of(0).value(), 2U);
  const auto report = fco::run_schedule(scheduler, {.horizon = 256});
  EXPECT_TRUE(report.independence_ok);
}

TEST(WeightedSlots, RejectsBadInput) {
  const fg::Graph g = fg::path(2);
  EXPECT_THROW(
      static_cast<void>(fco::assign_weighted_slots(g, std::vector<std::uint64_t>{1},
                                                   fco::WeightedPolicy::kStrict)),
      std::invalid_argument);
  EXPECT_THROW(static_cast<void>(fco::assign_weighted_slots(
                   g, std::vector<std::uint64_t>{1, std::uint64_t{1} << 30},
                   fco::WeightedPolicy::kStrict)),
               std::invalid_argument);
}

TEST(WeightedSlots, AdjacentPeriodOneIsImpossible) {
  // Two adjacent nodes both demanding period 1 can never both be granted:
  // strict throws, auto-relax separates them.
  const fg::Graph g = fg::path(2);
  const std::vector<std::uint64_t> request{1, 1};
  EXPECT_THROW(
      static_cast<void>(fco::assign_weighted_slots(g, request, fco::WeightedPolicy::kStrict)),
      std::runtime_error);
  const auto relaxed = fco::assign_weighted_slots(g, request, fco::WeightedPolicy::kAutoRelax);
  EXPECT_TRUE(fco::slots_conflict_free(g, relaxed.slots));
}
