// Tests for fhg::api — the unified protocol surface and its versioned wire
// codec: status vocabulary, round trips for every request/response kind, and
// strict decode validation (truncated frames, bad magic, wrong version,
// oversized length prefixes, unknown tags, implausible counts) failing with
// typed statuses instead of UB or unbounded allocation.

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

#include "fhg/api/codec.hpp"
#include "fhg/api/protocol.hpp"
#include "fhg/api/status.hpp"
#include "fhg/coding/bitio.hpp"
#include "fhg/dynamic/mutation.hpp"
#include "fhg/engine/spec.hpp"
#include "fhg/obs/registry.hpp"
#include "fhg/obs/trace.hpp"

namespace fa = fhg::api;
namespace fc = fhg::coding;
namespace fd = fhg::dynamic;
namespace fe = fhg::engine;

namespace {

/// Wraps raw payload bytes in a frame header (magic + big-endian length).
std::vector<std::uint8_t> frame_of(const std::vector<std::uint8_t>& payload,
                                   std::uint32_t magic = fa::kFrameMagic,
                                   std::optional<std::uint32_t> forced_length = std::nullopt) {
  std::vector<std::uint8_t> frame;
  const std::uint32_t length =
      forced_length.value_or(static_cast<std::uint32_t>(payload.size()));
  for (int shift = 24; shift >= 0; shift -= 8) {
    frame.push_back(static_cast<std::uint8_t>(magic >> shift));
  }
  for (int shift = 24; shift >= 0; shift -= 8) {
    frame.push_back(static_cast<std::uint8_t>(length >> shift));
  }
  frame.insert(frame.end(), payload.begin(), payload.end());
  return frame;
}

/// One representative of every request kind, with non-default fields.
std::vector<fa::Request> all_request_kinds() {
  fe::InstanceSpec spec;
  spec.kind = fe::SchedulerKind::kWeighted;
  spec.code = fhg::coding::CodeFamily::kEliasDelta;
  spec.seed = 99;
  spec.slack = 3;
  spec.periods = {4, 8, 16};
  return {
      fa::IsHappyRequest{"acme", 7, 123456789},
      fa::NextGatheringRequest{"acme", 3, 42},
      fa::ApplyMutationsRequest{"dyn",
                                {fd::insert_edge_command(1, 5), fd::erase_edge_command(2, 3),
                                 fd::add_node_command()}},
      fa::CreateInstanceRequest{"fresh", 6, {{0, 1}, {1, 2}, {4, 5}}, spec},
      fa::EraseInstanceRequest{"gone"},
      fa::ListInstancesRequest{},
      fa::SnapshotRequest{},
      fa::RestoreRequest{{0xDE, 0xAD, 0xBE, 0xEF, 0x00, 0x42}},
      fa::GetStatsRequest{.include_histograms = false, .include_traces = true},
      fa::RecoverInfoRequest{},
      fa::HelloRequest{},
      fa::SnapshotInstanceRequest{"acme"},
      fa::RestoreInstanceRequest{"acme", {0xFE, 0xED, 0x00, 0x17}},
      fa::DrainBackendRequest{"backend-2"},
  };
}

/// One representative of every response payload kind (plus error statuses).
std::vector<fa::Response> all_response_kinds() {
  fa::ListInstancesResponse list;
  list.instances.push_back(fa::InstanceInfo{.name = "acme",
                                            .kind = fe::SchedulerKind::kDegreeBound,
                                            .nodes = 48,
                                            .periodic = true,
                                            .dynamic = false});
  list.instances.push_back(fa::InstanceInfo{.name = "dyn",
                                            .kind = fe::SchedulerKind::kDynamicPrefixCode,
                                            .nodes = 9,
                                            .periodic = true,
                                            .dynamic = true});
  const auto success = [](fa::ResponsePayload payload) {
    fa::Response response;
    response.payload = std::move(payload);
    return response;
  };
  std::vector<fa::Response> responses;
  responses.push_back(success(fa::IsHappyResponse{true}));
  responses.push_back(success(fa::NextGatheringResponse{1024}));
  responses.push_back(success(fa::ApplyMutationsResponse{3, 2, 7}));
  responses.push_back(success(fa::CreateInstanceResponse{}));
  responses.push_back(success(fa::EraseInstanceResponse{}));
  responses.push_back(success(std::move(list)));
  responses.push_back(success(fa::SnapshotResponse{{1, 2, 3, 255, 0}}));
  responses.push_back(success(fa::RestoreResponse{512}));
  fa::GetStatsResponse stats;
  stats.metrics.push_back(fhg::obs::MetricSample{.name = "fhg_engine_queries_total",
                                                 .kind = fhg::obs::MetricKind::kCounter,
                                                 .value = 12345});
  stats.metrics.push_back(fhg::obs::MetricSample{.name = "fhg_engine_nodes",
                                                 .kind = fhg::obs::MetricKind::kGauge,
                                                 .value = static_cast<std::uint64_t>(-42)});
  fhg::obs::Histogram latency;
  latency.record(0);
  latency.record(17);
  latency.record(1u << 19);  // saturates the top bucket
  stats.metrics.push_back(fhg::obs::MetricSample{.name = "fhg_service_latency_us{shard=\"1\"}",
                                                 .kind = fhg::obs::MetricKind::kHistogram,
                                                 .value = latency.total(),
                                                 .histogram = latency});
  stats.traces.push_back(fhg::obs::TraceSample{.trace_id = 7001,
                                               .request_id = 31,
                                               .kind = 0,
                                               .queue_us = 12,
                                               .serve_us = 90,
                                               .total_us = 102});
  responses.push_back(success(std::move(stats)));
  responses.push_back(success(fa::RecoverInfoResponse{.wal_enabled = true,
                                                      .last_durable_holiday = 4096,
                                                      .wal_bytes = 8192,
                                                      .segments = 4,
                                                      .appends = 17,
                                                      .fsyncs = 17,
                                                      .compactions = 2,
                                                      .replayed_batches = 5,
                                                      .replayed_commands = 40,
                                                      .skipped_batches = 1,
                                                      .torn_bytes = 13,
                                                      .durable_batches = 23}));
  responses.push_back(success(fa::HelloResponse{
      .backend = "backend-0", .min_version = fa::kMinSupportedVersion,
      .max_version = fa::kProtocolVersion}));
  responses.push_back(success(fa::SnapshotInstanceResponse{{9, 8, 7, 0, 255}}));
  responses.push_back(success(fa::RestoreInstanceResponse{true}));
  responses.push_back(success(fa::DrainBackendResponse{5}));
  responses.push_back(fa::Response::error(fa::StatusCode::kNotFound, "no instance named 'x'"));
  responses.push_back(fa::Response::error(fa::StatusCode::kQueueFull,
                                          "the owning shard's queue is at capacity"));
  return responses;
}

}  // namespace

// ------------------------------------------------------------- status ------

TEST(ApiStatus, NamesCoverEveryCodeAndKeepRejectSpellings) {
  // The admission names must match the historical service::reject_name
  // spellings — log grep compatibility is part of the contract.
  EXPECT_EQ(fa::status_name(fa::StatusCode::kQueueFull), "queue-full");
  EXPECT_EQ(fa::status_name(fa::StatusCode::kStopped), "stopped");
  for (std::uint64_t code = 0; code < fa::kNumStatusCodes; ++code) {
    EXPECT_NE(fa::status_name(static_cast<fa::StatusCode>(code)), "unknown") << code;
  }
}

TEST(ApiStatus, OkAndErrorHelpers) {
  EXPECT_TRUE(fa::Status::good().ok());
  EXPECT_TRUE(fa::Status::good().detail.empty());
  const fa::Status status = fa::Status::error(fa::StatusCode::kDecodeError, "bad frame");
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.name(), "decode-error");
  EXPECT_EQ(status.detail, "bad frame");
}

TEST(ApiProtocol, KindNamesAndRoutingInstance) {
  const auto requests = all_request_kinds();
  ASSERT_EQ(requests.size(), fa::kNumRequestKinds);
  EXPECT_EQ(fa::request_kind_name(0), "is-happy");
  EXPECT_EQ(fa::request_kind_name(7), "restore");
  EXPECT_EQ(fa::request_kind_name(8), "get-stats");
  EXPECT_EQ(fa::request_kind_name(9), "recover-info");
  EXPECT_EQ(fa::request_kind_name(10), "hello");
  EXPECT_EQ(fa::request_kind_name(11), "snapshot-instance");
  EXPECT_EQ(fa::request_kind_name(12), "restore-instance");
  EXPECT_EQ(fa::request_kind_name(13), "drain-backend");
  EXPECT_EQ(fa::request_kind_name(99), "unknown");
  // Instance-addressed kinds route by name; tenancy-wide kinds route empty.
  EXPECT_EQ(fa::routing_instance(requests[0]), "acme");
  EXPECT_EQ(fa::routing_instance(requests[2]), "dyn");
  EXPECT_EQ(fa::routing_instance(requests[3]), "fresh");
  EXPECT_EQ(fa::routing_instance(requests[5]), "");
  EXPECT_EQ(fa::routing_instance(requests[6]), "");
  EXPECT_EQ(fa::routing_instance(requests[7]), "");
  EXPECT_EQ(fa::routing_instance(requests[8]), "");
  EXPECT_EQ(fa::routing_instance(requests[9]), "");
  EXPECT_EQ(fa::routing_instance(requests[10]), "");
  // The migration pair routes by the migrating tenant's name, so snapshot
  // and adopt serialize with that tenant's other lifecycle traffic.
  EXPECT_EQ(fa::routing_instance(requests[11]), "acme");
  EXPECT_EQ(fa::routing_instance(requests[12]), "acme");
  EXPECT_EQ(fa::routing_instance(requests[13]), "");
}

TEST(ApiProtocol, IdempotenceTableCoversEveryKind) {
  // Reads and probes retry safely; mutations, lifecycle, and migration
  // verbs must not be replayed after an ambiguous failure.
  EXPECT_TRUE(fa::request_is_idempotent(0));    // is-happy
  EXPECT_TRUE(fa::request_is_idempotent(1));    // next-gathering
  EXPECT_FALSE(fa::request_is_idempotent(2));   // apply-mutations
  EXPECT_FALSE(fa::request_is_idempotent(3));   // create-instance
  EXPECT_FALSE(fa::request_is_idempotent(4));   // erase-instance
  EXPECT_TRUE(fa::request_is_idempotent(5));    // list-instances
  EXPECT_TRUE(fa::request_is_idempotent(6));    // snapshot
  EXPECT_FALSE(fa::request_is_idempotent(7));   // restore
  EXPECT_TRUE(fa::request_is_idempotent(8));    // get-stats
  EXPECT_TRUE(fa::request_is_idempotent(9));    // recover-info
  EXPECT_TRUE(fa::request_is_idempotent(10));   // hello
  EXPECT_TRUE(fa::request_is_idempotent(11));   // snapshot-instance
  EXPECT_FALSE(fa::request_is_idempotent(12));  // restore-instance
  EXPECT_FALSE(fa::request_is_idempotent(13));  // drain-backend
  EXPECT_FALSE(fa::request_is_idempotent(99));  // out of range: never retry
}

// --------------------------------------------------------- round trips -----

TEST(ApiCodec, EveryRequestKindRoundTrips) {
  std::uint64_t id = 100;
  for (const fa::Request& request : all_request_kinds()) {
    const auto frame = fa::encode_request(++id, request);
    fa::DecodedRequest decoded;
    const fa::Status status = fa::decode_request(frame, decoded);
    ASSERT_TRUE(status.ok()) << status.detail;
    EXPECT_EQ(decoded.protocol_version, fa::kProtocolVersion);
    EXPECT_EQ(decoded.request_id, id);
    EXPECT_EQ(decoded.request, request) << "kind " << fa::request_kind_name(request.index());
  }
}

TEST(ApiCodec, EveryResponseKindRoundTrips) {
  std::uint64_t id = 200;
  for (const fa::Response& response : all_response_kinds()) {
    const auto frame = fa::encode_response(++id, response);
    fa::DecodedResponse decoded;
    const fa::Status status = fa::decode_response(frame, decoded);
    ASSERT_TRUE(status.ok()) << status.detail;
    EXPECT_EQ(decoded.request_id, id);
    EXPECT_EQ(decoded.response, response) << "payload " << response.payload.index();
  }
}

TEST(ApiCodec, EncodingIsDeterministic) {
  const fa::Request request = fa::IsHappyRequest{"acme", 7, 99};
  EXPECT_EQ(fa::encode_request(1, request), fa::encode_request(1, request));
  EXPECT_NE(fa::encode_request(1, request), fa::encode_request(2, request));
}

// --------------------------------------------------- adversarial decode ----

TEST(ApiCodec, TruncatedFramesFailTypedAtEveryLength) {
  const auto frame =
      fa::encode_request(7, fa::ApplyMutationsRequest{"dyn", {fd::insert_edge_command(0, 1)}});
  for (std::size_t length = 0; length < frame.size(); ++length) {
    fa::DecodedRequest decoded;
    const fa::Status status =
        fa::decode_request(std::span(frame.data(), length), decoded);
    EXPECT_EQ(status.code, fa::StatusCode::kDecodeError) << "prefix length " << length;
  }
}

TEST(ApiCodec, TruncatedPayloadWithPatchedLengthFailsTyped) {
  // Re-frame a truncated payload with a *consistent* length prefix, so the
  // failure comes from the bit stream running dry, not the length check.
  const auto frame = fa::encode_request(7, fa::IsHappyRequest{"acme", 7, 123456789});
  const std::vector<std::uint8_t> payload(frame.begin() + 8, frame.end() - 2);
  fa::DecodedRequest decoded;
  const fa::Status status = fa::decode_request(frame_of(payload), decoded);
  EXPECT_EQ(status.code, fa::StatusCode::kDecodeError);
}

TEST(ApiCodec, BadMagicFailsTyped) {
  const auto frame = fa::encode_request(1, fa::SnapshotRequest{});
  const std::vector<std::uint8_t> payload(frame.begin() + 8, frame.end());
  fa::DecodedRequest decoded;
  const fa::Status status = fa::decode_request(frame_of(payload, 0x46484753), decoded);
  EXPECT_EQ(status.code, fa::StatusCode::kDecodeError);
}

TEST(ApiCodec, OversizedLengthPrefixFailsTypedWithoutAllocating) {
  // A hostile length prefix claiming ~4 GiB must be refused from the 8
  // header bytes alone.
  const std::vector<std::uint8_t> payload;
  fa::DecodedRequest decoded;
  const fa::Status status =
      fa::decode_request(frame_of(payload, fa::kFrameMagic, 0xFFFFFFFF), decoded);
  EXPECT_EQ(status.code, fa::StatusCode::kDecodeError);
}

TEST(ApiCodec, LengthMismatchFailsTyped) {
  const auto frame = fa::encode_request(1, fa::SnapshotRequest{});
  const std::vector<std::uint8_t> payload(frame.begin() + 8, frame.end());
  fa::DecodedRequest decoded;
  // Claim one byte fewer than present.
  const fa::Status status = fa::decode_request(
      frame_of(payload, fa::kFrameMagic, static_cast<std::uint32_t>(payload.size() - 1)),
      decoded);
  EXPECT_EQ(status.code, fa::StatusCode::kDecodeError);
}

TEST(ApiCodec, WrongVersionFailsTypedAndPreservesRequestId) {
  const auto frame =
      fa::encode_request(4242, fa::IsHappyRequest{"acme", 1, 2}, /*version=*/7);
  fa::DecodedRequest decoded;
  const fa::Status status = fa::decode_request(frame, decoded);
  EXPECT_EQ(status.code, fa::StatusCode::kUnsupportedVersion);
  // The prologue is version-invariant, so the server can address its typed
  // refusal to the right request.
  EXPECT_EQ(decoded.request_id, 4242u);
}

TEST(ApiCodec, V1FramesStillDecodeUnderTheV2Build) {
  // A v1 peer's frames keep decoding: the version range is [min, current],
  // not an exact match.
  const fa::Request request = fa::IsHappyRequest{"acme", 7, 9};
  const auto frame = fa::encode_request(11, request, /*version=*/1);
  fa::DecodedRequest decoded;
  ASSERT_TRUE(fa::decode_request(frame, decoded).ok());
  EXPECT_EQ(decoded.protocol_version, 1u);
  EXPECT_EQ(decoded.request, request);
}

TEST(ApiCodec, V2KindsInsideAV1FrameFailTyped) {
  // A frame claiming v1 must not smuggle v2 vocabulary: the tag gate turns
  // it into a decode error rather than a silently mis-versioned exchange.
  const auto frame = fa::encode_request(12, fa::HelloRequest{}, /*version=*/1);
  fa::DecodedRequest decoded;
  const fa::Status status = fa::decode_request(frame, decoded);
  EXPECT_EQ(status.code, fa::StatusCode::kDecodeError);

  const auto response_frame =
      fa::encode_response(13, [] {
        fa::Response r;
        r.payload = fa::DrainBackendResponse{2};
        return r;
      }(), /*version=*/1);
  fa::DecodedResponse response;
  EXPECT_EQ(fa::decode_response(response_frame, response).code,
            fa::StatusCode::kDecodeError);
}

TEST(ApiCodec, UnknownRequestTagFailsTyped) {
  fc::BitWriter w;
  w.put_uint(fa::kProtocolVersion);
  w.put_uint(1);                      // request id
  w.put_uint(fa::kNumRequestKinds);   // first invalid tag
  fa::DecodedRequest decoded;
  const fa::Status status = fa::decode_request(frame_of(w.finish()), decoded);
  EXPECT_EQ(status.code, fa::StatusCode::kDecodeError);
}

TEST(ApiCodec, ImplausibleCountFailsTypedBeforeAllocating) {
  // An ApplyMutations body claiming 2^40 commands in a tiny frame must be
  // rejected by the remaining-bits plausibility check, not by attempting a
  // terabyte-scale reserve.
  fc::BitWriter w;
  w.put_uint(fa::kProtocolVersion);
  w.put_uint(1);  // request id
  w.put_uint(2);  // ApplyMutations tag
  w.put_uint(3);  // instance name length
  const std::uint8_t name[] = {'d', 'y', 'n'};
  w.put_bytes(name);  // strings are byte-aligned on the wire
  w.put_uint(std::uint64_t{1} << 40);  // command count
  fa::DecodedRequest decoded;
  const fa::Status status = fa::decode_request(frame_of(w.finish()), decoded);
  EXPECT_EQ(status.code, fa::StatusCode::kDecodeError);
}

TEST(ApiCodec, OutOfRangeEnumValuesFailTyped) {
  // Mutation op 3 does not exist.
  fc::BitWriter w;
  w.put_uint(fa::kProtocolVersion);
  w.put_uint(1);
  w.put_uint(2);  // ApplyMutations tag
  w.put_uint(1);  // name length
  const std::uint8_t name[] = {'d'};
  w.put_bytes(name);  // strings are byte-aligned on the wire
  w.put_uint(1);  // one command
  w.put_uint(3);  // invalid op
  fa::DecodedRequest decoded;
  EXPECT_EQ(fa::decode_request(frame_of(w.finish()), decoded).code,
            fa::StatusCode::kDecodeError);

  // Status code past the vocabulary fails the response decoder.
  fc::BitWriter r;
  r.put_uint(fa::kProtocolVersion);
  r.put_uint(1);
  r.put_uint(fa::kNumStatusCodes);  // first invalid status code
  fa::DecodedResponse response;
  EXPECT_EQ(fa::decode_response(frame_of(r.finish()), response).code,
            fa::StatusCode::kDecodeError);
}

// ------------------------------------------------------- frame assembly ----

TEST(ApiFrameAssembler, ReassemblesByteByByteAndBackToBack) {
  const auto first = fa::encode_request(1, fa::IsHappyRequest{"acme", 7, 9});
  const auto second = fa::encode_request(2, fa::ListInstancesRequest{});
  std::vector<std::uint8_t> wire = first;
  wire.insert(wire.end(), second.begin(), second.end());

  fa::FrameAssembler assembler;
  std::vector<std::vector<std::uint8_t>> frames;
  for (const std::uint8_t byte : wire) {
    ASSERT_TRUE(assembler.feed({&byte, 1}).ok());
    while (auto frame = assembler.next()) {
      frames.push_back(std::move(*frame));
    }
  }
  ASSERT_EQ(frames.size(), 2u);
  EXPECT_EQ(frames[0], first);
  EXPECT_EQ(frames[1], second);
  EXPECT_EQ(assembler.buffered(), 0u);
}

TEST(ApiFrameAssembler, BadMagicPoisonsTheStream) {
  fa::FrameAssembler assembler;
  const std::vector<std::uint8_t> garbage{'G', 'A', 'R', 'B', 0, 0, 0, 1, 42};
  EXPECT_EQ(assembler.feed(garbage).code, fa::StatusCode::kDecodeError);
  EXPECT_FALSE(assembler.next().has_value());
  // Sticky: even a valid frame afterwards cannot resynchronize the stream.
  const auto valid = fa::encode_request(1, fa::SnapshotRequest{});
  EXPECT_EQ(assembler.feed(valid).code, fa::StatusCode::kDecodeError);
  EXPECT_FALSE(assembler.next().has_value());
}

TEST(ApiFrameAssembler, OversizedLengthPrefixPoisonsImmediately) {
  fa::FrameAssembler small(/*max_payload=*/16);
  const auto frame = fa::encode_request(1, fa::IsHappyRequest{"a-rather-long-name", 1, 2});
  ASSERT_GT(frame.size(), 16u + fa::kFrameHeaderBytes);
  // The header alone condemns the frame — no buffering of the bogus body.
  EXPECT_EQ(small.feed(std::span(frame.data(), fa::kFrameHeaderBytes)).code,
            fa::StatusCode::kDecodeError);
}

TEST(ApiFrameAssembler, ResetClearsPartialBytesAndStickyErrors) {
  const auto frame = fa::encode_request(1, fa::IsHappyRequest{"acme", 7, 9});

  // Half a frame buffered (a connection died mid-response)...
  fa::FrameAssembler assembler;
  ASSERT_TRUE(assembler.feed(std::span(frame.data(), frame.size() / 2)).ok());
  ASSERT_GT(assembler.buffered(), 0u);
  // ...reset drops it, so the replacement connection's first frame is not
  // parsed against the dead one's leftover prefix.
  assembler.reset();
  EXPECT_EQ(assembler.buffered(), 0u);
  ASSERT_TRUE(assembler.feed(frame).ok());
  auto reassembled = assembler.next();
  ASSERT_TRUE(reassembled.has_value());
  EXPECT_EQ(*reassembled, frame);

  // Reset also clears the sticky poison, unlike any amount of valid input.
  const std::vector<std::uint8_t> garbage{'G', 'A', 'R', 'B', 0, 0, 0, 1, 42};
  EXPECT_EQ(assembler.feed(garbage).code, fa::StatusCode::kDecodeError);
  assembler.reset();
  EXPECT_TRUE(assembler.error().ok());
  ASSERT_TRUE(assembler.feed(frame).ok());
  EXPECT_TRUE(assembler.next().has_value());
}

TEST(ApiFrameAssembler, ValidatesTheHeaderBehindAPoppedFrame) {
  const auto valid = fa::encode_request(1, fa::SnapshotRequest{});
  std::vector<std::uint8_t> wire = valid;
  const std::vector<std::uint8_t> garbage{'X', 'X', 'X', 'X', 0, 0, 0, 0};
  wire.insert(wire.end(), garbage.begin(), garbage.end());
  fa::FrameAssembler assembler;
  // Feeding is fine while the garbage hides behind the valid front frame...
  ASSERT_TRUE(assembler.feed(wire).ok());
  ASSERT_TRUE(assembler.next().has_value());
  // ...but popping the valid frame exposes — and condemns — the bad header.
  EXPECT_EQ(assembler.error().code, fa::StatusCode::kDecodeError);
  EXPECT_FALSE(assembler.next().has_value());
}

// ------------------------------------------------------- trace envelope ----

TEST(ApiEnvelope, TraceIdRoundTripsThroughTheCodec) {
  const fa::Request request = fa::IsHappyRequest{"acme", 7, 123456789};
  const auto frame = fa::encode_request(42, request, fa::kProtocolVersion, 0xABCDEF12345ULL);
  fa::DecodedRequest decoded;
  ASSERT_TRUE(fa::decode_request(frame, decoded).ok());
  EXPECT_EQ(decoded.trace_id, 0xABCDEF12345ULL);
  EXPECT_EQ(decoded.request_id, 42u);
  EXPECT_EQ(decoded.request, request);
}

TEST(ApiEnvelope, AbsentEnvelopeDecodesAsUntraced) {
  // Trace id zero writes no envelope at all: the frame is byte-identical to
  // what a pre-envelope encoder produced, and decodes as untraced.
  const fa::Request request = fa::NextGatheringRequest{"acme", 3, 42};
  const auto untraced = fa::encode_request(7, request, fa::kProtocolVersion, 0);
  const auto default_encoded = fa::encode_request(7, request);
  EXPECT_EQ(untraced, default_encoded);
  fa::DecodedRequest decoded;
  ASSERT_TRUE(fa::decode_request(untraced, decoded).ok());
  EXPECT_EQ(decoded.trace_id, 0u);
  // A traced frame is strictly longer: the envelope is a real suffix.
  const auto traced = fa::encode_request(7, request, fa::kProtocolVersion, 99);
  EXPECT_GT(traced.size(), untraced.size());
}

TEST(ApiEnvelope, UnknownEnvelopeFieldsAreSkippedForForwardCompat) {
  // A future peer may append envelope fields this decoder has never heard
  // of.  Hand-build such an envelope: two fields, the first with an unknown
  // tag, the second the trace id.  The decoder must skip the stranger and
  // still capture the trace.
  const fa::Request request = fa::SnapshotRequest{};
  const auto plain = fa::encode_request(5, request);  // no envelope
  std::vector<std::uint8_t> payload(plain.begin() + fa::kFrameHeaderBytes, plain.end());
  fc::BitWriter envelope;
  envelope.put_uint(2);       // field count
  envelope.put_uint(777);     // unknown tag...
  envelope.put_uint(424242);  // ...with a value to skip
  envelope.put_uint(fa::kEnvelopeTraceId);
  envelope.put_uint(31337);
  const auto extra = envelope.finish();
  payload.insert(payload.end(), extra.begin(), extra.end());
  fa::DecodedRequest decoded;
  ASSERT_TRUE(fa::decode_request(frame_of(payload), decoded).ok());
  EXPECT_EQ(decoded.trace_id, 31337u);
  EXPECT_EQ(decoded.request, request);
}

TEST(ApiEnvelope, TruncatedEnvelopeFailsTyped) {
  const fa::Request request = fa::SnapshotRequest{};
  const auto plain = fa::encode_request(5, request);
  std::vector<std::uint8_t> payload(plain.begin() + fa::kFrameHeaderBytes, plain.end());
  fc::BitWriter envelope;
  envelope.put_uint(3);  // claims three fields, delivers one
  envelope.put_uint(fa::kEnvelopeTraceId);
  envelope.put_uint(1);
  const auto extra = envelope.finish();
  payload.insert(payload.end(), extra.begin(), extra.end());
  fa::DecodedRequest decoded;
  EXPECT_EQ(fa::decode_request(frame_of(payload), decoded).code,
            fa::StatusCode::kDecodeError);
}
