#include "fhg/coding/prefix.hpp"

#include <cmath>
#include <stdexcept>

namespace fhg::coding {

namespace {

/// Binary trie over codewords; node 0 is the root.
struct Trie {
  struct Node {
    std::int64_t child[2] = {-1, -1};
    std::int64_t word = -1;  ///< index of the codeword ending here, or -1
  };
  std::vector<Node> nodes{Node{}};

  /// Inserts word `index`; returns the index of a codeword that conflicts
  /// (is a prefix of, equals, or is extended by this word), or -1.
  std::int64_t insert(const BitString& w, std::size_t index) {
    std::size_t cursor = 0;
    for (std::size_t i = 0; i < w.size(); ++i) {
      if (nodes[cursor].word >= 0) {
        return nodes[cursor].word;  // an existing word is a proper prefix of w
      }
      const int b = w.bit(i) ? 1 : 0;
      if (nodes[cursor].child[b] < 0) {
        nodes[cursor].child[b] = static_cast<std::int64_t>(nodes.size());
        nodes.emplace_back();
      }
      cursor = static_cast<std::size_t>(nodes[cursor].child[b]);
    }
    if (nodes[cursor].word >= 0) {
      return nodes[cursor].word;  // duplicate
    }
    if (nodes[cursor].child[0] >= 0 || nodes[cursor].child[1] >= 0) {
      // w is a proper prefix of some already-inserted word; find one.
      std::size_t probe = cursor;
      while (nodes[probe].word < 0) {
        probe = static_cast<std::size_t>(nodes[probe].child[0] >= 0 ? nodes[probe].child[0]
                                                                    : nodes[probe].child[1]);
      }
      nodes[cursor].word = static_cast<std::int64_t>(index);
      return nodes[probe].word;
    }
    nodes[cursor].word = static_cast<std::int64_t>(index);
    return -1;
  }
};

}  // namespace

ScheduleSlot slot_of(const BitString& codeword) {
  if (codeword.empty()) {
    throw std::invalid_argument("slot_of: empty codeword");
  }
  if (codeword.size() > 64) {
    throw std::invalid_argument("slot_of: codeword longer than 64 bits");
  }
  return ScheduleSlot{codeword.to_uint_lsb_first(), static_cast<std::uint32_t>(codeword.size())};
}

bool is_prefix_free(std::span<const BitString> code_book) {
  Trie trie;
  for (std::size_t i = 0; i < code_book.size(); ++i) {
    if (code_book[i].empty()) {
      return false;
    }
    if (trie.insert(code_book[i], i) >= 0) {
      return false;
    }
  }
  return true;
}

std::vector<std::pair<std::size_t, std::size_t>> prefix_violations(
    std::span<const BitString> code_book) {
  std::vector<std::pair<std::size_t, std::size_t>> witnesses;
  for (std::size_t i = 0; i < code_book.size(); ++i) {
    for (std::size_t j = 0; j < code_book.size(); ++j) {
      if (i != j && code_book[i].is_prefix_of(code_book[j])) {
        // Report (prefix, extended); for duplicates report the lower index
        // first and only once.
        if (code_book[i].size() < code_book[j].size() || i < j) {
          witnesses.emplace_back(i, j);
        }
      }
    }
  }
  return witnesses;
}

double kraft_sum(std::span<const BitString> code_book) {
  double sum = 0.0;
  for (const BitString& w : code_book) {
    sum += std::exp2(-static_cast<double>(w.size()));
  }
  return sum;
}

}  // namespace fhg::coding
