#include "fhg/coding/crc32.hpp"

#include <array>

namespace fhg::coding {

namespace {

constexpr std::array<std::uint32_t, 256> make_table() noexcept {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int bit = 0; bit < 8; ++bit) {
      c = (c & 1U) != 0 ? 0xEDB88320U ^ (c >> 1) : c >> 1;
    }
    table[i] = c;
  }
  return table;
}

constexpr std::array<std::uint32_t, 256> kTable = make_table();

}  // namespace

std::uint32_t crc32(std::span<const std::uint8_t> bytes, std::uint32_t seed) noexcept {
  std::uint32_t c = seed ^ 0xFFFFFFFFU;
  for (const std::uint8_t b : bytes) {
    c = kTable[(c ^ b) & 0xFFU] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFU;
}

}  // namespace fhg::coding
