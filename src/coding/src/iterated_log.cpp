#include "fhg/coding/iterated_log.hpp"

#include <bit>
#include <cmath>

namespace fhg::coding {

std::uint32_t floor_log2(std::uint64_t n) noexcept {
  return n == 0 ? 0 : static_cast<std::uint32_t>(std::bit_width(n) - 1);
}

std::uint32_t ceil_log2(std::uint64_t n) noexcept {
  if (n <= 1) {
    return 0;
  }
  return static_cast<std::uint32_t>(std::bit_width(n - 1));
}

std::uint32_t log_star(double n) noexcept {
  std::uint32_t count = 0;
  while (n > 1.0) {
    n = std::log2(n);
    ++count;
  }
  return count;
}

double iterated_log(double n, std::uint32_t k) noexcept {
  for (std::uint32_t i = 0; i < k; ++i) {
    n = std::log2(n);
  }
  return n;
}

double phi(double n) noexcept {
  double product = 1.0;
  while (n > 1.0) {
    product *= n;
    n = std::log2(n);
  }
  return product;
}

double omega_period_bound(std::uint64_t c) noexcept {
  const auto cd = static_cast<double>(c);
  return std::exp2(1.0 + log_star(cd)) * phi(cd);
}

}  // namespace fhg::coding
