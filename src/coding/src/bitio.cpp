#include "fhg/coding/bitio.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>
#include <utility>

#include "fhg/coding/bitstring.hpp"
#include "fhg/coding/elias.hpp"

namespace fhg::coding {

// ---------------------------------------------------------------- BitWriter --

void BitWriter::put_bit(bool b) {
  if (bit_pos_ == 0) {
    bytes_.push_back(0);
    bit_pos_ = 8;
  }
  --bit_pos_;
  if (b) {
    bytes_.back() |= static_cast<std::uint8_t>(1U << bit_pos_);
  }
}

void BitWriter::put_bits(std::uint64_t v, std::uint32_t width) {
  for (std::uint32_t i = width; i > 0; --i) {
    put_bit(((v >> (i - 1)) & 1U) != 0);
  }
}

void BitWriter::put_uint(std::uint64_t v) {
  const BitString code = elias_delta(v + 1);
  for (std::size_t i = 0; i < code.size(); ++i) {
    put_bit(code.bit(i));
  }
}

void BitWriter::put_bytes(std::span<const std::uint8_t> bytes) {
  align();
  bytes_.insert(bytes_.end(), bytes.begin(), bytes.end());
}

std::vector<std::uint8_t> BitWriter::finish() {
  bit_pos_ = 0;
  return std::move(bytes_);
}

// ---------------------------------------------------------------- BitReader --

bool BitReader::get_bit() {
  if (next_bit_ >= bytes_.size() * 8) {
    throw std::runtime_error("bitio: truncated bit stream");
  }
  const std::uint8_t byte = bytes_[next_bit_ / 8];
  const bool b = ((byte >> (7 - next_bit_ % 8)) & 1U) != 0;
  ++next_bit_;
  return b;
}

std::uint64_t BitReader::get_bits(std::uint32_t width) {
  std::uint64_t v = 0;
  for (std::uint32_t i = 0; i < width; ++i) {
    v = (v << 1) | static_cast<std::uint64_t>(get_bit());
  }
  return v;
}

std::uint64_t BitReader::get_uint() {
  return decode_elias_delta([this] { return get_bit(); }) - 1;
}

void BitReader::get_bytes(std::span<std::uint8_t> out) {
  align();
  const std::size_t first = next_bit_ / 8;
  if (out.size() > bytes_.size() - first) {
    throw std::runtime_error("bitio: truncated bit stream");
  }
  std::copy_n(bytes_.begin() + static_cast<std::ptrdiff_t>(first), out.size(), out.begin());
  next_bit_ += out.size() * 8;
}

void check_count(const BitReader& reader, std::uint64_t count, std::uint64_t min_bits_each,
                 const char* what) {
  if (count > reader.remaining_bits() / min_bits_each) {
    throw std::runtime_error(std::string("bitio: implausible ") + what + " count " +
                             std::to_string(count));
  }
}

}  // namespace fhg::coding
