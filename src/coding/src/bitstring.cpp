#include "fhg/coding/bitstring.hpp"

#include <algorithm>
#include <bit>
#include <stdexcept>

namespace fhg::coding {

BitString::BitString(std::string_view bits) {
  bits_.reserve(bits.size());
  for (const char c : bits) {
    if (c != '0' && c != '1') {
      throw std::invalid_argument("BitString: invalid character in bit literal");
    }
    bits_.push_back(c == '1' ? 1 : 0);
  }
}

BitString BitString::binary(std::uint64_t value, std::uint32_t width) {
  if (width > 64) {
    throw std::invalid_argument("BitString::binary: width > 64");
  }
  BitString result;
  result.bits_.resize(width);
  for (std::uint32_t i = 0; i < width; ++i) {
    result.bits_[width - 1 - i] = static_cast<std::uint8_t>((value >> i) & 1U);
  }
  return result;
}

BitString BitString::standard_binary(std::uint64_t value) {
  if (value == 0) {
    throw std::invalid_argument("BitString::standard_binary: B(n) is defined for n >= 1");
  }
  const auto width = static_cast<std::uint32_t>(std::bit_width(value));
  return binary(value, width);
}

void BitString::append(const BitString& other) {
  bits_.insert(bits_.end(), other.bits_.begin(), other.bits_.end());
}

BitString BitString::reversed() const {
  BitString result;
  result.bits_.assign(bits_.rbegin(), bits_.rend());
  return result;
}

bool BitString::is_prefix_of(const BitString& other) const noexcept {
  if (size() > other.size()) {
    return false;
  }
  return std::equal(bits_.begin(), bits_.end(), other.bits_.begin());
}

std::uint64_t BitString::to_uint_msb_first() const {
  if (size() > 64) {
    throw std::length_error("BitString::to_uint_msb_first: more than 64 bits");
  }
  std::uint64_t value = 0;
  for (const std::uint8_t b : bits_) {
    value = (value << 1) | b;
  }
  return value;
}

std::uint64_t BitString::to_uint_lsb_first() const {
  if (size() > 64) {
    throw std::length_error("BitString::to_uint_lsb_first: more than 64 bits");
  }
  std::uint64_t value = 0;
  for (std::size_t i = 0; i < bits_.size(); ++i) {
    value |= static_cast<std::uint64_t>(bits_[i]) << i;
  }
  return value;
}

std::string BitString::to_string() const {
  std::string s;
  s.reserve(bits_.size());
  for (const std::uint8_t b : bits_) {
    s.push_back(b != 0 ? '1' : '0');
  }
  return s;
}

}  // namespace fhg::coding
