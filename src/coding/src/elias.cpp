#include "fhg/coding/elias.hpp"

#include <bit>
#include <stdexcept>

namespace fhg::coding {

namespace {

void require_positive(std::uint64_t n, const char* where) {
  if (n == 0) {
    throw std::invalid_argument(std::string(where) + ": codes are defined for n >= 1");
  }
}

/// |B(n)| = floor(log2 n) + 1.
std::uint32_t bits_of(std::uint64_t n) noexcept {
  return static_cast<std::uint32_t>(std::bit_width(n));
}

}  // namespace

BitString unary_code(std::uint64_t n) {
  require_positive(n, "unary_code");
  BitString w;
  for (std::uint64_t i = 1; i < n; ++i) {
    w.push_back(true);
  }
  w.push_back(false);
  return w;
}

BitString elias_gamma(std::uint64_t n) {
  require_positive(n, "elias_gamma");
  const std::uint32_t len = bits_of(n);
  BitString w;
  for (std::uint32_t i = 1; i < len; ++i) {
    w.push_back(false);
  }
  w.append(BitString::standard_binary(n));
  return w;
}

BitString elias_delta(std::uint64_t n) {
  require_positive(n, "elias_delta");
  const std::uint32_t len = bits_of(n);
  BitString w = elias_gamma(len);
  // Append B(n) without its leading 1 bit.
  const BitString b = BitString::standard_binary(n);
  for (std::size_t i = 1; i < b.size(); ++i) {
    w.push_back(b.bit(i));
  }
  return w;
}

BitString elias_omega(std::uint64_t n) {
  require_positive(n, "elias_omega");
  // re(i) = re(|B(i)| - 1) ∘ B(i); built by prepending, so collect groups
  // and emit in reverse discovery order.
  BitString w;
  std::vector<BitString> groups;
  std::uint64_t value = n;
  while (value > 1) {
    groups.push_back(BitString::standard_binary(value));
    value = bits_of(value) - 1;
  }
  for (auto it = groups.rbegin(); it != groups.rend(); ++it) {
    w.append(*it);
  }
  w.push_back(false);  // the terminating 0
  return w;
}

std::uint32_t unary_length(std::uint64_t n) noexcept {
  return static_cast<std::uint32_t>(n);
}

std::uint32_t elias_gamma_length(std::uint64_t n) noexcept {
  return 2 * (bits_of(n) - 1) + 1;
}

std::uint32_t elias_delta_length(std::uint64_t n) noexcept {
  const std::uint32_t len = bits_of(n);
  return (len - 1) + elias_gamma_length(len);
}

std::uint32_t elias_omega_length(std::uint64_t n) noexcept {
  // rb(1) = 0; rb(i) = |B(i)| + rb(|B(i)| - 1).  ρ(n) = rb(n) + 1.
  std::uint32_t total = 1;
  std::uint64_t value = n;
  while (value > 1) {
    const std::uint32_t len = bits_of(value);
    total += len;
    value = len - 1;
  }
  return total;
}

std::uint64_t decode_unary(const BitSource& source) {
  std::uint64_t n = 1;
  while (source()) {
    ++n;
  }
  return n;
}

std::uint64_t decode_elias_gamma(const BitSource& source) {
  std::uint32_t zeros = 0;
  while (!source()) {
    if (++zeros > 63) {
      throw std::runtime_error("decode_elias_gamma: value exceeds 64 bits");
    }
  }
  std::uint64_t value = 1;
  for (std::uint32_t i = 0; i < zeros; ++i) {
    value = (value << 1) | static_cast<std::uint64_t>(source());
  }
  return value;
}

std::uint64_t decode_elias_delta(const BitSource& source) {
  const std::uint64_t len = decode_elias_gamma(source);
  if (len > 64) {
    throw std::runtime_error("decode_elias_delta: value exceeds 64 bits");
  }
  std::uint64_t value = 1;
  for (std::uint64_t i = 1; i < len; ++i) {
    value = (value << 1) | static_cast<std::uint64_t>(source());
  }
  return value;
}

std::uint64_t decode_elias_omega(const BitSource& source) {
  std::uint64_t n = 1;
  for (;;) {
    if (!source()) {
      return n;  // terminating 0
    }
    if (n > 63) {
      throw std::runtime_error("decode_elias_omega: value exceeds 64 bits");
    }
    // A group of n+1 bits starting with the 1 just read.
    std::uint64_t value = 1;
    for (std::uint64_t i = 0; i < n; ++i) {
      value = (value << 1) | static_cast<std::uint64_t>(source());
    }
    n = value;
  }
}

std::string code_family_name(CodeFamily family) {
  switch (family) {
    case CodeFamily::kUnary:
      return "unary";
    case CodeFamily::kEliasGamma:
      return "gamma";
    case CodeFamily::kEliasDelta:
      return "delta";
    case CodeFamily::kEliasOmega:
      return "omega";
  }
  throw std::invalid_argument("code_family_name: unknown family");
}

BitString encode(CodeFamily family, std::uint64_t n) {
  switch (family) {
    case CodeFamily::kUnary:
      return unary_code(n);
    case CodeFamily::kEliasGamma:
      return elias_gamma(n);
    case CodeFamily::kEliasDelta:
      return elias_delta(n);
    case CodeFamily::kEliasOmega:
      return elias_omega(n);
  }
  throw std::invalid_argument("encode: unknown family");
}

std::uint32_t code_length(CodeFamily family, std::uint64_t n) {
  switch (family) {
    case CodeFamily::kUnary:
      return unary_length(n);
    case CodeFamily::kEliasGamma:
      return elias_gamma_length(n);
    case CodeFamily::kEliasDelta:
      return elias_delta_length(n);
    case CodeFamily::kEliasOmega:
      return elias_omega_length(n);
  }
  throw std::invalid_argument("code_length: unknown family");
}

std::uint64_t decode(CodeFamily family, const BitSource& source) {
  switch (family) {
    case CodeFamily::kUnary:
      return decode_unary(source);
    case CodeFamily::kEliasGamma:
      return decode_elias_gamma(source);
    case CodeFamily::kEliasDelta:
      return decode_elias_delta(source);
    case CodeFamily::kEliasOmega:
      return decode_elias_omega(source);
  }
  throw std::invalid_argument("decode: unknown family");
}

std::optional<std::uint64_t> decode_holiday(CodeFamily family, std::uint64_t t) {
  // Bits of t from least significant upward, zero-padded forever; cap at 128
  // pulled bits so a malformed stream cannot loop (unary of huge colors).
  std::uint32_t cursor = 0;
  auto source = [&]() -> bool {
    const std::uint32_t i = cursor++;
    if (i >= 64) {
      return false;
    }
    return ((t >> i) & 1U) != 0;
  };
  try {
    const std::uint64_t color = decode(family, source);
    if (cursor > 128) {
      return std::nullopt;
    }
    return color;
  } catch (const std::runtime_error&) {
    return std::nullopt;
  }
}

}  // namespace fhg::coding
