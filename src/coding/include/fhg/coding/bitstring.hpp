#pragma once

/// \file bitstring.hpp
/// A small sequence-of-bits value type for codewords.
///
/// Codewords in this library are short (the Elias omega code of 2^64-1 is 72
/// bits), so clarity beats packing: bits are stored one per byte in
/// *left-to-right* (most-significant-first) order, exactly as the paper
/// writes them — `ω(9) = 1110010` has `bit(0) == 1` and `bit(6) == 0`.

#include <cstdint>
#include <compare>
#include <string>
#include <string_view>
#include <vector>

namespace fhg::coding {

/// An immutable-ish sequence of bits written left to right.
class BitString {
 public:
  BitString() = default;

  /// Parses a string of '0'/'1' characters; throws `std::invalid_argument`
  /// on any other character.
  explicit BitString(std::string_view bits);

  /// The `width` low bits of `value`, written MSB-first.
  /// Example: `BitString::binary(9, 4) == BitString("1001")`.
  [[nodiscard]] static BitString binary(std::uint64_t value, std::uint32_t width);

  /// Standard binary representation of `value >= 1` with no leading zeros
  /// (the paper's `B(n)`).
  [[nodiscard]] static BitString standard_binary(std::uint64_t value);

  /// Number of bits.
  [[nodiscard]] std::size_t size() const noexcept { return bits_.size(); }
  [[nodiscard]] bool empty() const noexcept { return bits_.empty(); }

  /// The i-th bit, counting from the left (0-based).
  [[nodiscard]] bool bit(std::size_t i) const noexcept { return bits_[i] != 0; }

  /// Appends one bit at the right end.
  void push_back(bool b) { bits_.push_back(b ? 1 : 0); }

  /// Appends all of `other` at the right end (the paper's `u ∘ v`).
  void append(const BitString& other);

  /// Concatenation.
  [[nodiscard]] friend BitString operator+(BitString lhs, const BitString& rhs) {
    lhs.append(rhs);
    return lhs;
  }

  /// Left-to-right reversal (the paper's `S^R`).
  [[nodiscard]] BitString reversed() const;

  /// True iff `this` is a prefix of `other` (every string is a prefix of
  /// itself).
  [[nodiscard]] bool is_prefix_of(const BitString& other) const noexcept;

  /// Integer value when the bits are read MSB-first, i.e. the usual binary
  /// value.  Requires `size() <= 64`.
  [[nodiscard]] std::uint64_t to_uint_msb_first() const;

  /// Integer value when `bit(0)` is the *least* significant bit.  This is
  /// exactly the residue a codeword occupies in the holiday counter: node
  /// with codeword `w` is happy at holidays `t ≡ to_uint_lsb_first()
  /// (mod 2^size())` (see §4.2 of the paper: `LSB(B(i)) = ω(p)^R`).
  [[nodiscard]] std::uint64_t to_uint_lsb_first() const;

  /// '0'/'1' rendering, left-to-right.
  [[nodiscard]] std::string to_string() const;

  friend bool operator==(const BitString&, const BitString&) = default;
  friend std::strong_ordering operator<=>(const BitString&, const BitString&) = default;

 private:
  std::vector<std::uint8_t> bits_;
};

}  // namespace fhg::coding
