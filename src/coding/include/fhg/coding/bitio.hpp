#pragma once

/// \file bitio.hpp
/// Bit-packed byte streams with Elias-delta varints — the library's wire
/// primitive.
///
/// `BitWriter`/`BitReader` pack bits MSB-first into bytes and write every
/// unsigned integer as the Elias delta code of `value + 1` — the same
/// universal code the §4 scheduler is built from, earning its keep as a
/// serialization format: small values (tags, counts, deltas — the
/// overwhelming majority) cost a handful of bits.  Both the engine snapshot
/// format (`fhg/engine/snapshot.hpp`) and the `fhg::api` request/response
/// wire codec (`fhg/api/codec.hpp`) are built on this pair.
///
/// Decoding is defensive by construction: reading past the end of the input
/// throws `std::runtime_error` (never reads out of bounds), and
/// `remaining_bits()` lets format layers sanity-check decoded length fields
/// *before* allocating — a corrupt count can never claim more items than the
/// stream still holds bits.

#include <cstdint>
#include <span>
#include <vector>

namespace fhg::coding {

/// Packs bits MSB-first into bytes; integers as Elias delta of `value + 1`.
class BitWriter {
 public:
  /// Appends one bit.
  void put_bit(bool b);
  /// Appends the low `width` bits of `v`, MSB first.
  void put_bits(std::uint64_t v, std::uint32_t width);
  /// Appends the Elias delta code of `v + 1` (any `v < 2^64 - 1`).
  void put_uint(std::uint64_t v);
  /// Zero-pads to the next byte boundary (no-op when already aligned).
  void align() noexcept { bit_pos_ = 0; }
  /// Aligns to a byte boundary, then appends `bytes` verbatim — the bulk
  /// path for strings and blobs (memcpy speed instead of 8 `put_bit` calls
  /// per byte).
  void put_bytes(std::span<const std::uint8_t> bytes);
  /// Zero-pads to a byte boundary and returns the buffer.
  [[nodiscard]] std::vector<std::uint8_t> finish();

 private:
  std::vector<std::uint8_t> bytes_;
  std::uint32_t bit_pos_ = 0;  ///< bits used in the last byte (0 = full)
};

/// Mirror of `BitWriter`.  Throws `std::runtime_error` on truncated input.
class BitReader {
 public:
  /// Reads from `bytes` (not owned; must outlive the reader).
  explicit BitReader(std::span<const std::uint8_t> bytes) noexcept : bytes_(bytes) {}

  /// Consumes one bit.
  [[nodiscard]] bool get_bit();
  /// Consumes `width` bits, MSB first.
  [[nodiscard]] std::uint64_t get_bits(std::uint32_t width);
  /// Consumes one Elias-delta codeword and returns the coded value minus 1.
  [[nodiscard]] std::uint64_t get_uint();
  /// Skips to the next byte boundary (no-op when already aligned).
  void align() noexcept { next_bit_ = (next_bit_ + 7) / 8 * 8; }
  /// Aligns to a byte boundary, then copies `out.size()` bytes verbatim —
  /// the mirror of `BitWriter::put_bytes`.  Throws on truncated input.
  void get_bytes(std::span<std::uint8_t> out);

  /// Bits left to read — used to sanity-check decoded length fields before
  /// allocating (a corrupt count can't claim more items than bits remain).
  [[nodiscard]] std::uint64_t remaining_bits() const noexcept {
    return bytes_.size() * 8 - next_bit_;
  }

 private:
  std::span<const std::uint8_t> bytes_;
  std::size_t next_bit_ = 0;
};

/// Guards a decoded length field: `count` items of at least `min_bits_each`
/// cannot exceed what the stream still holds.  Throws `std::runtime_error`
/// naming `what` otherwise — the shared defense (engine snapshots, the api
/// wire codec) against a corrupt count triggering a huge allocation before
/// truncation is detected.
void check_count(const BitReader& reader, std::uint64_t count, std::uint64_t min_bits_each,
                 const char* what);

}  // namespace fhg::coding
