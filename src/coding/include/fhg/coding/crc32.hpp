#pragma once

/// \file crc32.hpp
/// CRC-32 (IEEE 802.3, polynomial 0xEDB88320) over byte spans.
///
/// The write-ahead log (`fhg::wal`) frames every appended record as
/// `[length][crc][payload]` and uses this checksum to tell a torn tail — a
/// record the process died in the middle of writing — from a complete one.
/// Table-driven, one table shared process-wide, no dependencies beyond
/// `<span>`; incremental use chains via the `seed` parameter.

#include <cstdint>
#include <span>

namespace fhg::coding {

/// CRC-32 of `bytes`, continuing from `seed` (pass the previous return value
/// to checksum a stream in pieces; the default starts a fresh checksum).
[[nodiscard]] std::uint32_t crc32(std::span<const std::uint8_t> bytes,
                                  std::uint32_t seed = 0) noexcept;

}  // namespace fhg::coding
