#pragma once

/// \file iterated_log.hpp
/// The iterated-logarithm toolkit behind Theorem 4.1's lower bound.
///
/// Definition 4.1 of the paper:
///   `φ(i) = 1` for `i ≤ 1`, else `φ(i) = i · φ(log i)`;
/// explicitly `φ(i) = ∏_{k=0}^{log* i} log^(k) i` — the product
/// `i · log i · log log i · … · 1`.  By the Cauchy condensation test this is
/// the threshold function: `Σ 1/f(c)` converges only if `f` grows faster
/// than `φ` (by a `(log^(k))^{1+ε}` factor on some level), so no color-based
/// schedule can achieve `mul(c) = o(φ(c))`.
///
/// Logs are base 2 throughout, as in the paper.

#include <cstdint>

namespace fhg::coding {

/// `⌊log2 n⌋` for `n >= 1`.
[[nodiscard]] std::uint32_t floor_log2(std::uint64_t n) noexcept;

/// `⌈log2 n⌉` for `n >= 1`.
[[nodiscard]] std::uint32_t ceil_log2(std::uint64_t n) noexcept;

/// The iterated logarithm `log* n`: the number of times `log2` must be
/// applied to reach a value ≤ 1.  `log_star(1) == 0`, `log_star(2) == 1`,
/// `log_star(16) == 3`, `log_star(65536) == 4`.
[[nodiscard]] std::uint32_t log_star(double n) noexcept;

/// `log^(k) n`: `log2` iterated `k` times (real-valued). `k == 0` returns n.
[[nodiscard]] double iterated_log(double n, std::uint32_t k) noexcept;

/// `φ(n)` per Definition 4.1 (real-valued recursion bottoming out at 1).
[[nodiscard]] double phi(double n) noexcept;

/// The paper's Theorem 4.2 upper bound for the omega-code period of color
/// `c`: `2^{1 + log* c} · φ(c)`.
[[nodiscard]] double omega_period_bound(std::uint64_t c) noexcept;

/// Partial sum `Σ_{c=a}^{b} 1/f(c)` evaluated with compensated (Kahan)
/// summation; `f` is any positive function.  Used by E3 to exhibit the
/// divergence/convergence threshold at `φ`.
template <typename F>
[[nodiscard]] double reciprocal_sum(std::uint64_t a, std::uint64_t b, F&& f) noexcept {
  double sum = 0.0;
  double carry = 0.0;
  for (std::uint64_t c = a; c <= b; ++c) {
    const double term = 1.0 / f(c);
    const double y = term - carry;
    const double t = sum + y;
    carry = (t - sum) - y;
    sum = t;
  }
  return sum;
}

}  // namespace fhg::coding
