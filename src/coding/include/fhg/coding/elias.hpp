#pragma once

/// \file elias.hpp
/// Universal prefix-free codes for the positive integers: unary, Elias gamma,
/// Elias delta and Elias omega (Elias, IEEE-IT 1975), plus a streaming
/// decoder used to map holiday numbers back to colors.
///
/// The §4 scheduler turns *any* prefix-free code `K` into a perfectly
/// periodic schedule: a node of color `c` is happy at holiday `t` iff the
/// `|K(c)|` least-significant bits of `t` spell `K(c)` reversed, i.e.
/// `t ≡ slot(c).residue (mod 2^slot(c).length)`.  Prefix-freeness guarantees
/// that no holiday matches two distinct colors.  The omega code gives period
/// `2^ρ(c) ≤ 2^{1+log* c}·φ(c)`, nearly matching the Theorem 4.1 lower bound.

#include <cstdint>
#include <functional>
#include <optional>
#include <string>

#include "fhg/coding/bitstring.hpp"

namespace fhg::coding {

// -- Encoders ---------------------------------------------------------------

/// Unary code: `n-1` ones followed by a zero. Length `n`.  The worst
/// reasonable prefix-free code — included as a baseline (its scheduling
/// period is `2^c`, catastrophically far from `φ(c)`).
[[nodiscard]] BitString unary_code(std::uint64_t n);

/// Elias gamma: `⌊log n⌋` zeros then `B(n)`. Length `2⌊log n⌋ + 1`.
[[nodiscard]] BitString elias_gamma(std::uint64_t n);

/// Elias delta: `gamma(|B(n)|)` then `B(n)` without its leading 1.
/// Length `⌊log n⌋ + 2⌊log(⌊log n⌋ + 1)⌋ + 1`.
[[nodiscard]] BitString elias_delta(std::uint64_t n);

/// Elias omega (the paper's Appendix B): `re(n) ∘ 0` where `re(1) = λ` and
/// `re(i) = re(|B(i)| - 1) ∘ B(i)`.
[[nodiscard]] BitString elias_omega(std::uint64_t n);

// -- Exact codeword lengths (no allocation) ----------------------------------

[[nodiscard]] std::uint32_t unary_length(std::uint64_t n) noexcept;
[[nodiscard]] std::uint32_t elias_gamma_length(std::uint64_t n) noexcept;
[[nodiscard]] std::uint32_t elias_delta_length(std::uint64_t n) noexcept;

/// ρ(n): the exact Elias-omega codeword length, via the paper's recursion
/// `ρ(n) = 1 + rb(n)`, `rb(1) = 0`, `rb(i) = |B(i)| + rb(|B(i)| - 1)`.
[[nodiscard]] std::uint32_t elias_omega_length(std::uint64_t n) noexcept;

// -- Decoders -----------------------------------------------------------------

/// A pull-based bit source; returns bits in codeword (left-to-right) order.
using BitSource = std::function<bool()>;

/// Decodes one unary codeword from `source`.
[[nodiscard]] std::uint64_t decode_unary(const BitSource& source);

/// Decodes one Elias gamma codeword from `source`.
[[nodiscard]] std::uint64_t decode_elias_gamma(const BitSource& source);

/// Decodes one Elias delta codeword from `source`.
[[nodiscard]] std::uint64_t decode_elias_delta(const BitSource& source);

/// Decodes one Elias omega codeword from `source`.
[[nodiscard]] std::uint64_t decode_elias_omega(const BitSource& source);

// -- Code registry -------------------------------------------------------------

/// The prefix-free codes shipped with the library.  `PrefixCodeScheduler`
/// is parameterized on this enum; E4 sweeps all of them.
enum class CodeFamily : std::uint8_t {
  kUnary,
  kEliasGamma,
  kEliasDelta,
  kEliasOmega,
};

/// Human-readable family name ("unary", "gamma", "delta", "omega").
[[nodiscard]] std::string code_family_name(CodeFamily family);

/// Encodes `n >= 1` under `family`.
[[nodiscard]] BitString encode(CodeFamily family, std::uint64_t n);

/// Codeword length of `n` under `family` without materializing it.
[[nodiscard]] std::uint32_t code_length(CodeFamily family, std::uint64_t n);

/// Decodes one codeword of `family` from `source`.
[[nodiscard]] std::uint64_t decode(CodeFamily family, const BitSource& source);

/// The holiday-to-color map of §4 ("decode(i)"): reads the bits of holiday
/// number `t` from least significant upwards (with infinite zero padding)
/// and decodes one codeword.  Returns the unique color that holiday `t`
/// makes happy under `family`, or `std::nullopt` if decoding would need more
/// than 64 bits of `t` (possible only for astronomically large colors).
[[nodiscard]] std::optional<std::uint64_t> decode_holiday(CodeFamily family, std::uint64_t t);

}  // namespace fhg::coding
