#pragma once

/// \file prefix.hpp
/// Prefix-freeness verification and the codeword → schedule-slot mapping.
///
/// The correctness of the §4 scheduler rests on one combinatorial fact: in a
/// prefix-free code no codeword is a prefix of another, hence the low bits of
/// a holiday number can spell out (the reversal of) at most one codeword.
/// `is_prefix_free` checks a whole code book with a binary trie in
/// `O(total bits)`; `slot_of` converts codewords to `(residue, modulus)`
/// arithmetic so the hot scheduling path is a single mask-and-compare.

#include <cstdint>
#include <span>
#include <vector>

#include "fhg/coding/bitstring.hpp"

namespace fhg::coding {

/// The periodic schedule slot induced by a codeword `w`:
/// happy holidays are exactly `{ t : t ≡ residue (mod 2^length) }`.
struct ScheduleSlot {
  std::uint64_t residue = 0;
  std::uint32_t length = 0;  ///< period is 2^length

  /// The node's perfectly-periodic interval.
  [[nodiscard]] constexpr std::uint64_t period() const noexcept {
    return std::uint64_t{1} << length;
  }

  /// True iff holiday `t` belongs to this slot.
  [[nodiscard]] constexpr bool matches(std::uint64_t t) const noexcept {
    const std::uint64_t mask = (length >= 64) ? ~std::uint64_t{0} : period() - 1;
    return (t & mask) == residue;
  }

  /// The first 1-based holiday this slot matches — the schedule's *phase*.
  /// Holidays are 1-based, so residue 0 is first hit at `t = period`.
  [[nodiscard]] constexpr std::uint64_t first_holiday() const noexcept {
    return residue == 0 ? period() : residue;
  }

  friend constexpr bool operator==(const ScheduleSlot&, const ScheduleSlot&) noexcept = default;
};

/// Converts a codeword to its schedule slot (§4.2: a node with codeword `w`
/// is happy when `LSB(B(t), |w|) = w^R`, i.e. `t ≡ value_lsb_first(w)
/// (mod 2^|w|)`).  Requires `w.size() <= 64`.
[[nodiscard]] ScheduleSlot slot_of(const BitString& codeword);

/// True iff no codeword in `code_book` is a proper prefix of another and no
/// two are equal.  Empty codewords are rejected (they prefix everything).
[[nodiscard]] bool is_prefix_free(std::span<const BitString> code_book);

/// If the code book is *not* prefix free, returns indices `(i, j)` of a
/// witness pair where `code_book[i]` is a prefix of `code_book[j]`; otherwise
/// an empty vector.  Used by tests to produce actionable failures.
[[nodiscard]] std::vector<std::pair<std::size_t, std::size_t>> prefix_violations(
    std::span<const BitString> code_book);

/// Kraft sum `Σ 2^{-|w|}` of a code book.  A prefix-free code always has
/// Kraft sum ≤ 1; this is the coding-theory face of the Theorem 4.1 budget
/// `Σ 1/f(c) ≤ 1`.
[[nodiscard]] double kraft_sum(std::span<const BitString> code_book);

}  // namespace fhg::coding
