#include "fhg/engine/engine.hpp"

#include <chrono>
#include <stdexcept>

namespace fhg::engine {

namespace {

/// Microseconds elapsed since `start`, saturated at zero.
std::uint64_t elapsed_us(std::chrono::steady_clock::time_point start) {
  const auto us = std::chrono::duration_cast<std::chrono::microseconds>(
      std::chrono::steady_clock::now() - start);
  return us.count() > 0 ? static_cast<std::uint64_t>(us.count()) : 0;
}

}  // namespace

Engine::Telemetry::Telemetry(obs::Registry& registry)
    : queries(registry.counter("fhg_engine_queries_total")),
      batches(registry.counter("fhg_engine_batches_total")),
      batch_probes(registry.counter("fhg_engine_batch_probes_total")),
      mutation_batches(registry.counter("fhg_engine_mutation_batches_total")),
      mutation_commands(registry.counter("fhg_engine_mutation_commands_total")),
      recolors(registry.counter("fhg_engine_recolors_total")),
      bulk_batches(registry.counter("fhg_coloring_bulk_batches_total")),
      inplace_batches(registry.counter("fhg_coloring_inplace_batches_total")),
      parallel_rounds(registry.counter("fhg_coloring_parallel_rounds_total")),
      coloring_conflicts(registry.counter("fhg_coloring_conflicts_total")),
      builds_parallel(registry.counter("fhg_coloring_build_parallel_total")),
      builds_serial(registry.counter("fhg_coloring_build_serial_total")),
      instances_created(registry.counter("fhg_engine_instances_created_total")),
      instances_erased(registry.counter("fhg_engine_instances_erased_total")),
      snapshots(registry.counter("fhg_engine_snapshots_total")),
      snapshot_bytes(registry.counter("fhg_engine_snapshot_bytes_total")),
      restores(registry.counter("fhg_engine_restores_total")),
      instance_snapshots(registry.counter("fhg_engine_instance_snapshots_total")),
      adoptions(registry.counter("fhg_engine_instance_adoptions_total")),
      query_batch_us(registry.histogram("fhg_engine_query_batch_us")),
      mutation_us(registry.histogram("fhg_engine_mutation_us")),
      instances(registry.gauge("fhg_engine_instances")),
      nodes(registry.gauge("fhg_engine_nodes")),
      table_versions(registry.gauge("fhg_engine_table_versions")),
      last_snapshot_bytes(registry.gauge("fhg_engine_snapshot_bytes")) {}

Engine::Engine(EngineOptions options)
    : options_(options),
      telemetry_(metrics_),
      pool_(options.threads),
      registry_(options.shards),
      executor_(registry_, pool_) {}

api::Status Engine::try_create_instance(std::string name, graph::Graph g, InstanceSpec spec,
                                        std::shared_ptr<Instance>* created) {
  // Build first — a malformed spec (unknown kind, weighted period mismatch)
  // surfaces as `std::invalid_argument` from the scheduler factory — then
  // insert, where the only failure left is a name collision.
  std::shared_ptr<Instance> instance;
  try {
    instance = std::make_shared<Instance>(std::move(name), std::move(g), std::move(spec));
  } catch (const std::invalid_argument& e) {
    return api::Status::error(api::StatusCode::kInvalidArgument, e.what());
  } catch (const std::bad_alloc&) {
    return api::Status::error(api::StatusCode::kResourceExhausted,
                              "instance too large to allocate");
  } catch (const std::exception& e) {
    return api::Status::error(api::StatusCode::kInternal, e.what());
  }
  if (!registry_.insert(instance)) {
    return api::Status::error(api::StatusCode::kAlreadyExists,
                              "instance '" + instance->name() + "' already exists");
  }
  // Which path built the initial coloring, plus the JP round/conflict totals
  // when it was the parallel one — the observable trace of the crossover.
  const ColoringBuildStats& build = instance->build_stats();
  if (build.parallel) {
    telemetry_.builds_parallel.increment();
    telemetry_.parallel_rounds.add(build.jp.rounds);
    telemetry_.coloring_conflicts.add(build.jp.conflicts);
  } else {
    telemetry_.builds_serial.increment();
  }
  if (created != nullptr) {
    *created = std::move(instance);
  }
  telemetry_.instances_created.increment();
  if (WalSink* sink = wal_sink()) {
    sink->on_lifecycle();  // fold the new fleet shape into durable state
  }
  return api::Status::good();
}

std::shared_ptr<Instance> Engine::create_instance(std::string name, graph::Graph g,
                                                  InstanceSpec spec) {
  std::shared_ptr<Instance> created;
  const api::Status status =
      try_create_instance(std::move(name), std::move(g), std::move(spec), &created);
  if (!status.ok()) {
    throw std::invalid_argument("Engine::create_instance: " + status.detail);
  }
  return created;
}

api::Status Engine::erase_instance(std::string_view name) {
  if (!registry_.erase(name)) {
    return api::Status::error(api::StatusCode::kNotFound,
                              "no instance named '" + std::string(name) + "'");
  }
  telemetry_.instances_erased.increment();
  if (WalSink* sink = wal_sink()) {
    sink->on_lifecycle();  // log segments must never outlive their tenants
  }
  return api::Status::good();
}

std::shared_ptr<Instance> Engine::require(std::string_view instance) const {
  auto found = registry_.find(instance);
  if (!found) {
    throw std::out_of_range("Engine: no instance named '" + std::string(instance) + "'");
  }
  return found;
}

bool Engine::is_happy(std::string_view instance, graph::NodeId v, std::uint64_t t) {
  telemetry_.queries.increment();
  return require(instance)->is_happy(v, t);
}

std::optional<std::uint64_t> Engine::next_gathering(std::string_view instance, graph::NodeId v,
                                                    std::uint64_t after) {
  telemetry_.queries.increment();
  return require(instance)->next_gathering(v, after);
}

FairnessAudit Engine::audit(std::string_view instance) { return require(instance)->audit(); }

MutationResult Engine::apply_mutations(std::string_view instance,
                                       std::span<const dynamic::MutationCommand> commands) {
  const auto start = std::chrono::steady_clock::now();
  const MutationResult result = require(instance)->apply_mutations(commands, wal_sink());
  if (result.applied > 0) {
    registry_.note_mutation();  // stale snapshots must be republished
  }
  telemetry_.mutation_batches.increment();
  telemetry_.mutation_commands.add(commands.size());
  telemetry_.recolors.add(result.recolors);
  if (result.bulk) {
    telemetry_.bulk_batches.increment();
    telemetry_.parallel_rounds.add(result.jp_rounds);
    telemetry_.coloring_conflicts.add(result.jp_conflicts);
  } else {
    telemetry_.inplace_batches.increment();
  }
  telemetry_.mutation_us.record(elapsed_us(start));
  return result;
}

MutationResult Engine::wal_replay_batch(std::string_view instance,
                                        std::span<const dynamic::MutationCommand> commands,
                                        dynamic::BatchRecord record) {
  const auto start = std::chrono::steady_clock::now();
  const MutationResult result = require(instance)->wal_replay_batch(commands, record);
  if (result.applied > 0) {
    registry_.note_mutation();
  }
  telemetry_.mutation_batches.increment();
  telemetry_.mutation_commands.add(commands.size());
  telemetry_.recolors.add(result.recolors);
  if (result.bulk) {
    telemetry_.bulk_batches.increment();
    telemetry_.parallel_rounds.add(result.jp_rounds);
    telemetry_.coloring_conflicts.add(result.jp_conflicts);
  } else {
    telemetry_.inplace_batches.increment();
  }
  telemetry_.mutation_us.record(elapsed_us(start));
  return result;
}

std::shared_ptr<const QuerySnapshot> Engine::query_snapshot() {
  const std::uint64_t epoch = registry_.epoch();
  auto view = view_.load(std::memory_order_acquire);
  if (view && view->epoch() == epoch) {
    return view;  // warm path: no locks taken
  }
  const std::lock_guard<std::mutex> lock(view_mutex_);
  view = view_.load(std::memory_order_acquire);
  // Re-read the epoch under the rebuild lock: a create/erase racing the
  // rebuild bumps it again, and the next reader rebuilds once more.
  const std::uint64_t current = registry_.epoch();
  if (view && view->epoch() == current) {
    return view;
  }
  view = QuerySnapshot::build(registry_, current);
  view_.store(view, std::memory_order_release);
  return view;
}

std::vector<std::uint8_t> Engine::query_batch(std::span<const Probe> probes) {
  const auto start = std::chrono::steady_clock::now();
  std::vector<std::uint8_t> out(probes.size());
  query_snapshot()->query_batch(probes, out);
  telemetry_.batches.increment();
  telemetry_.batch_probes.add(probes.size());
  telemetry_.query_batch_us.record(elapsed_us(start));
  return out;
}

std::vector<std::uint64_t> Engine::next_gathering_batch(std::span<const Probe> probes) {
  const auto start = std::chrono::steady_clock::now();
  std::vector<std::uint64_t> out(probes.size());
  query_snapshot()->next_gathering_batch(probes, out);
  telemetry_.batches.increment();
  telemetry_.batch_probes.add(probes.size());
  telemetry_.query_batch_us.record(elapsed_us(start));
  return out;
}

std::vector<std::uint8_t> Engine::snapshot() const {
  std::vector<std::uint8_t> bytes = snapshot_registry(registry_);
  telemetry_.snapshots.increment();
  telemetry_.snapshot_bytes.add(bytes.size());
  telemetry_.last_snapshot_bytes.set(static_cast<std::int64_t>(bytes.size()));
  return bytes;
}

void Engine::load_snapshot(std::span<const std::uint8_t> bytes) {
  restore_registry(registry_, bytes);
  telemetry_.restores.increment();
}

api::Status Engine::snapshot_instance(std::string_view instance,
                                      std::vector<std::uint8_t>& out) const {
  const std::shared_ptr<Instance> found = registry_.find(instance);
  if (!found) {
    return api::Status::error(api::StatusCode::kNotFound,
                              "no instance named '" + std::string(instance) + "'");
  }
  out = engine::snapshot_instance(*found);
  telemetry_.instance_snapshots.increment();
  telemetry_.snapshot_bytes.add(out.size());
  return api::Status::good();
}

api::Status Engine::adopt_instance(std::span<const std::uint8_t> bytes,
                                   std::string_view expect_name, bool* replaced) {
  // Parse, build, replay, and fast-forward before touching the registry — a
  // malformed blob must never displace the tenant it claimed to replace.
  std::shared_ptr<Instance> instance;
  try {
    instance = restore_instance(bytes);
  } catch (const std::exception& e) {
    return api::Status::error(api::StatusCode::kInvalidArgument, e.what());
  }
  if (!expect_name.empty() && instance->name() != expect_name) {
    return api::Status::error(api::StatusCode::kInvalidArgument,
                              "snapshot holds instance '" + instance->name() +
                                  "', not the requested '" + std::string(expect_name) + "'");
  }
  bool displaced = false;
  // Replace-insert: a create racing the adoption can take the name between
  // the erase and the insert; the migration wins deterministically.
  while (!registry_.insert(instance)) {
    displaced |= registry_.erase(instance->name());
  }
  telemetry_.adoptions.increment();
  if (WalSink* sink = wal_sink()) {
    sink->on_lifecycle();  // the adopted tenant's fleet shape must be durable
  }
  if (replaced != nullptr) {
    *replaced = displaced;
  }
  return api::Status::good();
}

void Engine::refresh_gauges() {
  std::int64_t instances = 0;
  std::int64_t nodes = 0;
  std::int64_t versions = 0;
  for (const auto& instance : registry_.all_sorted()) {
    ++instances;
    nodes += static_cast<std::int64_t>(instance->num_nodes());
    versions += static_cast<std::int64_t>(instance->table_version());
  }
  telemetry_.instances.set(instances);
  telemetry_.nodes.set(nodes);
  telemetry_.table_versions.set(versions);
}

}  // namespace fhg::engine
