#include "fhg/engine/engine.hpp"

#include <stdexcept>

namespace fhg::engine {

Engine::Engine(EngineOptions options)
    : options_(options),
      pool_(options.threads),
      registry_(options.shards),
      executor_(registry_, pool_) {}

std::shared_ptr<Instance> Engine::create_instance(std::string name, graph::Graph g,
                                                  InstanceSpec spec) {
  return registry_.create(std::move(name), std::move(g), std::move(spec));
}

std::shared_ptr<Instance> Engine::require(std::string_view instance) const {
  auto found = registry_.find(instance);
  if (!found) {
    throw std::out_of_range("Engine: no instance named '" + std::string(instance) + "'");
  }
  return found;
}

bool Engine::is_happy(std::string_view instance, graph::NodeId v, std::uint64_t t) {
  return require(instance)->is_happy(v, t);
}

std::optional<std::uint64_t> Engine::next_gathering(std::string_view instance, graph::NodeId v,
                                                    std::uint64_t after) {
  return require(instance)->next_gathering(v, after);
}

FairnessAudit Engine::audit(std::string_view instance) { return require(instance)->audit(); }

MutationResult Engine::apply_mutations(std::string_view instance,
                                       std::span<const dynamic::MutationCommand> commands) {
  const MutationResult result = require(instance)->apply_mutations(commands);
  if (result.applied > 0) {
    registry_.note_mutation();  // stale snapshots must be republished
  }
  return result;
}

std::shared_ptr<const QuerySnapshot> Engine::query_snapshot() {
  const std::uint64_t epoch = registry_.epoch();
  auto view = view_.load(std::memory_order_acquire);
  if (view && view->epoch() == epoch) {
    return view;  // warm path: no locks taken
  }
  const std::lock_guard<std::mutex> lock(view_mutex_);
  view = view_.load(std::memory_order_acquire);
  // Re-read the epoch under the rebuild lock: a create/erase racing the
  // rebuild bumps it again, and the next reader rebuilds once more.
  const std::uint64_t current = registry_.epoch();
  if (view && view->epoch() == current) {
    return view;
  }
  view = QuerySnapshot::build(registry_, current);
  view_.store(view, std::memory_order_release);
  return view;
}

std::vector<std::uint8_t> Engine::query_batch(std::span<const Probe> probes) {
  std::vector<std::uint8_t> out(probes.size());
  query_snapshot()->query_batch(probes, out);
  return out;
}

std::vector<std::uint64_t> Engine::next_gathering_batch(std::span<const Probe> probes) {
  std::vector<std::uint64_t> out(probes.size());
  query_snapshot()->next_gathering_batch(probes, out);
  return out;
}

}  // namespace fhg::engine
