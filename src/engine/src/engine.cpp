#include "fhg/engine/engine.hpp"

#include <stdexcept>

namespace fhg::engine {

Engine::Engine(EngineOptions options)
    : options_(options),
      pool_(options.threads),
      registry_(options.shards),
      executor_(registry_, pool_) {}

std::shared_ptr<Instance> Engine::create_instance(std::string name, graph::Graph g,
                                                  InstanceSpec spec) {
  return registry_.create(std::move(name), std::move(g), std::move(spec));
}

std::shared_ptr<Instance> Engine::require(std::string_view instance) const {
  auto found = registry_.find(instance);
  if (!found) {
    throw std::out_of_range("Engine: no instance named '" + std::string(instance) + "'");
  }
  return found;
}

bool Engine::is_happy(std::string_view instance, graph::NodeId v, std::uint64_t t) {
  return require(instance)->is_happy(v, t);
}

std::optional<std::uint64_t> Engine::next_gathering(std::string_view instance, graph::NodeId v,
                                                    std::uint64_t after) {
  return require(instance)->next_gathering(v, after);
}

FairnessAudit Engine::audit(std::string_view instance) { return require(instance)->audit(); }

}  // namespace fhg::engine
