#include "fhg/engine/engine.hpp"

#include <stdexcept>

namespace fhg::engine {

Engine::Engine(EngineOptions options)
    : options_(options),
      pool_(options.threads),
      registry_(options.shards),
      executor_(registry_, pool_) {}

api::Status Engine::try_create_instance(std::string name, graph::Graph g, InstanceSpec spec,
                                        std::shared_ptr<Instance>* created) {
  // Build first — a malformed spec (unknown kind, weighted period mismatch)
  // surfaces as `std::invalid_argument` from the scheduler factory — then
  // insert, where the only failure left is a name collision.
  std::shared_ptr<Instance> instance;
  try {
    instance = std::make_shared<Instance>(std::move(name), std::move(g), std::move(spec));
  } catch (const std::invalid_argument& e) {
    return api::Status::error(api::StatusCode::kInvalidArgument, e.what());
  } catch (const std::bad_alloc&) {
    return api::Status::error(api::StatusCode::kResourceExhausted,
                              "instance too large to allocate");
  } catch (const std::exception& e) {
    return api::Status::error(api::StatusCode::kInternal, e.what());
  }
  if (!registry_.insert(instance)) {
    return api::Status::error(api::StatusCode::kAlreadyExists,
                              "instance '" + instance->name() + "' already exists");
  }
  if (created != nullptr) {
    *created = std::move(instance);
  }
  return api::Status::good();
}

std::shared_ptr<Instance> Engine::create_instance(std::string name, graph::Graph g,
                                                  InstanceSpec spec) {
  std::shared_ptr<Instance> created;
  const api::Status status =
      try_create_instance(std::move(name), std::move(g), std::move(spec), &created);
  if (!status.ok()) {
    throw std::invalid_argument("Engine::create_instance: " + status.detail);
  }
  return created;
}

api::Status Engine::erase_instance(std::string_view name) {
  if (!registry_.erase(name)) {
    return api::Status::error(api::StatusCode::kNotFound,
                              "no instance named '" + std::string(name) + "'");
  }
  return api::Status::good();
}

std::shared_ptr<Instance> Engine::require(std::string_view instance) const {
  auto found = registry_.find(instance);
  if (!found) {
    throw std::out_of_range("Engine: no instance named '" + std::string(instance) + "'");
  }
  return found;
}

bool Engine::is_happy(std::string_view instance, graph::NodeId v, std::uint64_t t) {
  return require(instance)->is_happy(v, t);
}

std::optional<std::uint64_t> Engine::next_gathering(std::string_view instance, graph::NodeId v,
                                                    std::uint64_t after) {
  return require(instance)->next_gathering(v, after);
}

FairnessAudit Engine::audit(std::string_view instance) { return require(instance)->audit(); }

MutationResult Engine::apply_mutations(std::string_view instance,
                                       std::span<const dynamic::MutationCommand> commands) {
  const MutationResult result = require(instance)->apply_mutations(commands);
  if (result.applied > 0) {
    registry_.note_mutation();  // stale snapshots must be republished
  }
  return result;
}

std::shared_ptr<const QuerySnapshot> Engine::query_snapshot() {
  const std::uint64_t epoch = registry_.epoch();
  auto view = view_.load(std::memory_order_acquire);
  if (view && view->epoch() == epoch) {
    return view;  // warm path: no locks taken
  }
  const std::lock_guard<std::mutex> lock(view_mutex_);
  view = view_.load(std::memory_order_acquire);
  // Re-read the epoch under the rebuild lock: a create/erase racing the
  // rebuild bumps it again, and the next reader rebuilds once more.
  const std::uint64_t current = registry_.epoch();
  if (view && view->epoch() == current) {
    return view;
  }
  view = QuerySnapshot::build(registry_, current);
  view_.store(view, std::memory_order_release);
  return view;
}

std::vector<std::uint8_t> Engine::query_batch(std::span<const Probe> probes) {
  std::vector<std::uint8_t> out(probes.size());
  query_snapshot()->query_batch(probes, out);
  return out;
}

std::vector<std::uint64_t> Engine::next_gathering_batch(std::span<const Probe> probes) {
  std::vector<std::uint64_t> out(probes.size());
  query_snapshot()->next_gathering_batch(probes, out);
  return out;
}

}  // namespace fhg::engine
