#include "fhg/engine/spec.hpp"

#include <stdexcept>

#include "fhg/coloring/greedy.hpp"
#include "fhg/core/degree_bound.hpp"
#include "fhg/core/fcfg.hpp"
#include "fhg/core/phased_greedy.hpp"
#include "fhg/core/prefix_code_scheduler.hpp"
#include "fhg/core/round_robin.hpp"
#include "fhg/core/weighted.hpp"
#include "fhg/dynamic/adapter.hpp"

namespace fhg::engine {

std::string scheduler_kind_name(SchedulerKind kind) {
  switch (kind) {
    case SchedulerKind::kRoundRobin:
      return "round-robin";
    case SchedulerKind::kPhasedGreedy:
      return "phased-greedy";
    case SchedulerKind::kPrefixCode:
      return "prefix-code";
    case SchedulerKind::kDegreeBound:
      return "degree-bound";
    case SchedulerKind::kFirstComeFirstGrab:
      return "fcfg";
    case SchedulerKind::kWeighted:
      return "weighted";
    case SchedulerKind::kDynamicPrefixCode:
      return "dynamic-prefix-code";
  }
  return "unknown";
}

std::optional<SchedulerKind> parse_scheduler_kind(std::string_view name) {
  if (name == "round-robin") {
    return SchedulerKind::kRoundRobin;
  }
  if (name == "phased-greedy") {
    return SchedulerKind::kPhasedGreedy;
  }
  if (name == "prefix-code" || name == "prefix") {
    return SchedulerKind::kPrefixCode;
  }
  if (name == "degree-bound") {
    return SchedulerKind::kDegreeBound;
  }
  if (name == "fcfg") {
    return SchedulerKind::kFirstComeFirstGrab;
  }
  if (name == "weighted") {
    return SchedulerKind::kWeighted;
  }
  if (name == "dynamic-prefix-code" || name == "dynamic") {
    return SchedulerKind::kDynamicPrefixCode;
  }
  return std::nullopt;
}

const std::vector<SchedulerKind>& all_scheduler_kinds() {
  static const std::vector<SchedulerKind> kinds{
      SchedulerKind::kRoundRobin,     SchedulerKind::kPhasedGreedy,
      SchedulerKind::kPrefixCode,     SchedulerKind::kDegreeBound,
      SchedulerKind::kFirstComeFirstGrab, SchedulerKind::kWeighted,
      SchedulerKind::kDynamicPrefixCode};
  return kinds;
}

namespace {

/// The initial coloring of the coloring-based kinds: serial greedy
/// largest-first below the crossover, parallel Jones–Plassmann at or above
/// it.  Both give col ≤ deg+1 and both are deterministic functions of
/// (graph, spec) alone.
coloring::Coloring build_coloring(const graph::Graph& g, const InstanceSpec& spec,
                                  ColoringBuildStats* stats) {
  if (spec.parallel_crossover > 0 && g.num_nodes() >= spec.parallel_crossover) {
    coloring::JpOptions options;
    options.seed = spec.seed;
    coloring::JpStats jp;
    coloring::Coloring colors = coloring::parallel_jp_color(g, options, &jp);
    if (stats != nullptr) {
      stats->parallel = true;
      stats->jp = jp;
    }
    return colors;
  }
  return coloring::greedy_color(g, coloring::Order::kLargestFirst);
}

}  // namespace

std::unique_ptr<core::Scheduler> make_scheduler(const graph::Graph& g, const InstanceSpec& spec,
                                                ColoringBuildStats* stats) {
  if (stats != nullptr) {
    *stats = {};
  }
  switch (spec.kind) {
    case SchedulerKind::kRoundRobin:
      return std::make_unique<core::RoundRobinColorScheduler>(g, build_coloring(g, spec, stats));
    case SchedulerKind::kPhasedGreedy:
      return std::make_unique<core::PhasedGreedyScheduler>(g, build_coloring(g, spec, stats));
    case SchedulerKind::kPrefixCode:
      return std::make_unique<core::PrefixCodeScheduler>(g, build_coloring(g, spec, stats),
                                                         spec.code);
    case SchedulerKind::kDegreeBound:
      return std::make_unique<core::DegreeBoundScheduler>(g);
    case SchedulerKind::kFirstComeFirstGrab:
      return std::make_unique<core::FirstComeFirstGrabScheduler>(g, spec.seed);
    case SchedulerKind::kWeighted:
      if (spec.periods.size() != g.num_nodes()) {
        throw std::invalid_argument(
            "make_scheduler: weighted spec needs one period per node (got " +
            std::to_string(spec.periods.size()) + " for " + std::to_string(g.num_nodes()) +
            " nodes)");
      }
      return std::make_unique<core::WeightedPeriodicScheduler>(g, spec.periods,
                                                               core::WeightedPolicy::kAutoRelax);
    case SchedulerKind::kDynamicPrefixCode: {
      // Copies `g` in as the recipe topology; the adapter owns the mutable
      // graph and the mutation log from here on.
      dynamic::DynamicOptions options;
      options.family = spec.code;
      options.deletion_slack = spec.slack;
      options.parallel_crossover = spec.parallel_crossover;
      options.bulk_threshold = spec.bulk_threshold;
      options.jp_seed = spec.seed;
      auto adapter = std::make_unique<dynamic::DynamicSchedulerAdapter>(g, options);
      if (stats != nullptr) {
        stats->parallel = adapter->scheduler().built_parallel();
        stats->jp = adapter->scheduler().build_stats();
      }
      return adapter;
    }
  }
  throw std::invalid_argument("make_scheduler: unknown scheduler kind");
}

}  // namespace fhg::engine
