#include "fhg/engine/registry.hpp"

#include <algorithm>
#include <functional>
#include <stdexcept>

namespace fhg::engine {

InstanceRegistry::InstanceRegistry(std::size_t shards) {
  shards_.reserve(std::max<std::size_t>(shards, 1));
  for (std::size_t i = 0; i < std::max<std::size_t>(shards, 1); ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
}

InstanceRegistry::Shard& InstanceRegistry::shard_for(std::string_view name) const {
  return *shards_[std::hash<std::string_view>{}(name) % shards_.size()];
}

std::shared_ptr<Instance> InstanceRegistry::create(std::string name, graph::Graph g,
                                                   InstanceSpec spec) {
  auto instance = std::make_shared<Instance>(std::move(name), std::move(g), std::move(spec));
  if (!insert(instance)) {
    throw std::invalid_argument("InstanceRegistry::create: duplicate instance '" +
                                instance->name() + "'");
  }
  return instance;
}

bool InstanceRegistry::insert(std::shared_ptr<Instance> instance) {
  Shard& shard = shard_for(instance->name());
  const std::lock_guard<std::mutex> lock(shard.mutex);
  const auto [it, inserted] = shard.map.emplace(instance->name(), instance);
  if (!inserted) {
    return false;
  }
  epoch_.fetch_add(1, std::memory_order_acq_rel);
  return true;
}

std::shared_ptr<Instance> InstanceRegistry::find(std::string_view name) const {
  Shard& shard = shard_for(name);
  const std::lock_guard<std::mutex> lock(shard.mutex);
  const auto it = shard.map.find(name);  // transparent: no temporary string
  return it == shard.map.end() ? nullptr : it->second;
}

bool InstanceRegistry::erase(std::string_view name) {
  Shard& shard = shard_for(name);
  const std::lock_guard<std::mutex> lock(shard.mutex);
  const auto it = shard.map.find(name);
  if (it == shard.map.end()) {
    return false;
  }
  shard.map.erase(it);
  epoch_.fetch_add(1, std::memory_order_acq_rel);
  return true;
}

void InstanceRegistry::clear() {
  for (const auto& shard : shards_) {
    const std::lock_guard<std::mutex> lock(shard->mutex);
    shard->map.clear();
  }
  epoch_.fetch_add(1, std::memory_order_acq_rel);
}

std::size_t InstanceRegistry::size() const {
  std::size_t total = 0;
  for (const auto& shard : shards_) {
    const std::lock_guard<std::mutex> lock(shard->mutex);
    total += shard->map.size();
  }
  return total;
}

std::vector<std::shared_ptr<Instance>> InstanceRegistry::shard_instances(std::size_t shard) const {
  std::vector<std::shared_ptr<Instance>> out;
  const Shard& s = *shards_[shard];
  const std::lock_guard<std::mutex> lock(s.mutex);
  out.reserve(s.map.size());
  for (const auto& [name, instance] : s.map) {
    out.push_back(instance);
  }
  return out;
}

std::vector<std::shared_ptr<Instance>> InstanceRegistry::all_sorted() const {
  std::vector<std::shared_ptr<Instance>> out;
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    auto chunk = shard_instances(i);
    out.insert(out.end(), std::make_move_iterator(chunk.begin()),
               std::make_move_iterator(chunk.end()));
  }
  std::sort(out.begin(), out.end(),
            [](const auto& a, const auto& b) { return a->name() < b->name(); });
  return out;
}

}  // namespace fhg::engine
