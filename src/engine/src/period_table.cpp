#include "fhg/engine/period_table.hpp"

namespace fhg::engine {

std::optional<PeriodTable> PeriodTable::build(const core::Scheduler& s) {
  if (!s.perfectly_periodic()) {
    return std::nullopt;
  }
  const graph::NodeId n = s.graph().num_nodes();
  std::vector<Row> rows(n);
  for (graph::NodeId v = 0; v < n; ++v) {
    const auto period = s.period_of(v);
    const auto phase = s.phase_of(v);
    if (!period || !phase || *period == 0 || *phase == 0) {
      return std::nullopt;
    }
    rows[v] = Row{.period = *period, .residue = *phase % *period, .phase = *phase};
  }
  return PeriodTable(std::move(rows));
}

}  // namespace fhg::engine
