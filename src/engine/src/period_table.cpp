#include "fhg/engine/period_table.hpp"

#include <iterator>
#include <mutex>
#include <unordered_map>
#include <utility>

#include "fhg/parallel/rng.hpp"

namespace fhg::engine {

std::optional<PeriodTable> PeriodTable::build(const core::Scheduler& s) {
  if (!s.perfectly_periodic()) {
    return std::nullopt;
  }
  const std::vector<core::PeriodPhaseRow> rows = s.period_phase_rows();
  if (rows.size() != s.graph().num_nodes()) {
    return std::nullopt;  // some node lacks an exposed (period, phase)
  }
  const std::size_t n = rows.size();
  std::vector<std::uint64_t> periods(n);
  std::vector<std::uint64_t> residues(n);
  std::vector<std::uint64_t> phases(n);
  for (std::size_t v = 0; v < n; ++v) {
    periods[v] = rows[v].period;
    residues[v] = rows[v].phase % rows[v].period;
    phases[v] = rows[v].phase;
  }
  return PeriodTable(std::move(periods), std::move(residues), std::move(phases));
}

std::uint64_t PeriodTable::content_hash() const noexcept {
  std::uint64_t h = parallel::mix64(periods_.size());
  for (std::size_t v = 0; v < periods_.size(); ++v) {
    h = parallel::mix_keys(h, periods_[v]);
    h = parallel::mix_keys(h, phases_[v]);
  }
  return h;
}

namespace {

/// Process-wide content-addressed intern pool.  Entries are weak, so a table
/// lives exactly as long as the instances sharing it.  Expired slots are
/// reclaimed on collision and by a periodic full sweep, so a long-running
/// churny tenancy (every replacement minting a distinct table) cannot grow
/// the map without bound.
struct InternPool {
  std::mutex mutex;
  std::unordered_multimap<std::uint64_t, std::weak_ptr<const PeriodTable>> tables;
  std::size_t inserts_since_sweep = 0;

  static constexpr std::size_t kSweepInterval = 256;

  /// Drops every expired entry.  Caller must hold `mutex`.
  void sweep() {
    for (auto it = tables.begin(); it != tables.end();) {
      it = it->second.expired() ? tables.erase(it) : std::next(it);
    }
    inserts_since_sweep = 0;
  }
};

InternPool& intern_pool() {
  static InternPool pool;
  return pool;
}

}  // namespace

std::shared_ptr<const PeriodTable> PeriodTable::build_shared(const core::Scheduler& s) {
  auto built = build(s);
  if (!built) {
    return nullptr;
  }
  const std::uint64_t key = built->content_hash();
  InternPool& pool = intern_pool();
  const std::lock_guard<std::mutex> lock(pool.mutex);
  auto [first, last] = pool.tables.equal_range(key);
  for (auto it = first; it != last;) {
    if (auto existing = it->second.lock()) {
      if (*existing == *built) {
        return existing;
      }
      ++it;
    } else {
      it = pool.tables.erase(it);  // reclaim an expired slot in passing
    }
  }
  auto shared = std::make_shared<const PeriodTable>(std::move(*built));
  pool.tables.emplace(key, shared);
  if (++pool.inserts_since_sweep >= InternPool::kSweepInterval) {
    pool.sweep();
  }
  return shared;
}

}  // namespace fhg::engine
