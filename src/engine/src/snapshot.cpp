#include "fhg/engine/snapshot.hpp"

#include <limits>
#include <stdexcept>
#include <string>

#include "fhg/coding/bitstring.hpp"

namespace fhg::engine {

namespace {

constexpr std::uint32_t kMagic = 0x46484753;  // "FHGS"
constexpr std::uint64_t kVersion = 1;

}  // namespace

// ---------------------------------------------------------------- BitWriter --

void BitWriter::put_bit(bool b) {
  if (bit_pos_ == 0) {
    bytes_.push_back(0);
    bit_pos_ = 8;
  }
  --bit_pos_;
  if (b) {
    bytes_.back() |= static_cast<std::uint8_t>(1U << bit_pos_);
  }
}

void BitWriter::put_bits(std::uint64_t v, std::uint32_t width) {
  for (std::uint32_t i = width; i > 0; --i) {
    put_bit(((v >> (i - 1)) & 1U) != 0);
  }
}

void BitWriter::put_uint(std::uint64_t v) {
  const coding::BitString code = coding::elias_delta(v + 1);
  for (std::size_t i = 0; i < code.size(); ++i) {
    put_bit(code.bit(i));
  }
}

std::vector<std::uint8_t> BitWriter::finish() {
  bit_pos_ = 0;
  return std::move(bytes_);
}

// ---------------------------------------------------------------- BitReader --

bool BitReader::get_bit() {
  if (next_bit_ >= bytes_.size() * 8) {
    throw std::runtime_error("snapshot: truncated bit stream");
  }
  const std::uint8_t byte = bytes_[next_bit_ / 8];
  const bool b = ((byte >> (7 - next_bit_ % 8)) & 1U) != 0;
  ++next_bit_;
  return b;
}

std::uint64_t BitReader::get_bits(std::uint32_t width) {
  std::uint64_t v = 0;
  for (std::uint32_t i = 0; i < width; ++i) {
    v = (v << 1) | static_cast<std::uint64_t>(get_bit());
  }
  return v;
}

std::uint64_t BitReader::get_uint() {
  return coding::decode_elias_delta([this] { return get_bit(); }) - 1;
}

// ----------------------------------------------------------------- snapshot --

namespace {

/// Guards a decoded length field: `count` items of at least `min_bits_each`
/// cannot exceed what the stream still holds.  Prevents a corrupt count from
/// triggering a huge allocation before truncation is detected.
void check_count(const BitReader& r, std::uint64_t count, std::uint64_t min_bits_each,
                 const char* what) {
  if (count > r.remaining_bits() / min_bits_each) {
    throw std::runtime_error(std::string("snapshot: implausible ") + what + " count " +
                             std::to_string(count));
  }
}

void write_graph(BitWriter& w, const graph::Graph& g) {
  w.put_uint(g.num_nodes());
  const std::vector<graph::Edge> edges = g.edges();  // sorted lexicographically
  w.put_uint(edges.size());
  graph::NodeId prev_first = 0;
  for (const graph::Edge& e : edges) {
    w.put_uint(e.first - prev_first);       // non-negative: edges are sorted
    w.put_uint(e.second - e.first - 1);     // second > first always
    prev_first = e.first;
  }
}

graph::Graph read_graph(BitReader& r) {
  const std::uint64_t n64 = r.get_uint();
  if (n64 > std::numeric_limits<graph::NodeId>::max()) {
    throw std::runtime_error("snapshot: node count " + std::to_string(n64) +
                             " exceeds NodeId range");
  }
  const auto n = static_cast<graph::NodeId>(n64);
  const std::uint64_t m = r.get_uint();
  check_count(r, m, 2, "edge");  // each edge costs >= 2 bits (two codewords)
  std::vector<graph::Edge> edges;
  edges.reserve(m);
  std::uint64_t prev_first = 0;
  for (std::uint64_t i = 0; i < m; ++i) {
    const std::uint64_t first = prev_first + r.get_uint();
    const std::uint64_t second = first + 1 + r.get_uint();
    if (second >= n64) {
      throw std::runtime_error("snapshot: edge endpoint " + std::to_string(second) +
                               " out of range for " + std::to_string(n64) + " nodes");
    }
    edges.push_back({static_cast<graph::NodeId>(first), static_cast<graph::NodeId>(second)});
    prev_first = first;
  }
  return graph::Graph::from_edges(n, edges);
}

void write_spec(BitWriter& w, const InstanceSpec& spec) {
  w.put_uint(static_cast<std::uint64_t>(spec.kind));
  w.put_uint(static_cast<std::uint64_t>(spec.code));
  w.put_uint(spec.seed);
  w.put_uint(spec.periods.size());
  for (const std::uint64_t p : spec.periods) {
    w.put_uint(p);
  }
}

InstanceSpec read_spec(BitReader& r) {
  InstanceSpec spec;
  spec.kind = static_cast<SchedulerKind>(r.get_uint());
  spec.code = static_cast<coding::CodeFamily>(r.get_uint());
  spec.seed = r.get_uint();
  const std::uint64_t count = r.get_uint();
  check_count(r, count, 1, "period");
  spec.periods.resize(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    spec.periods[i] = r.get_uint();
  }
  return spec;
}

void write_name(BitWriter& w, const std::string& name) {
  w.put_uint(name.size());
  for (const char c : name) {
    w.put_bits(static_cast<std::uint8_t>(c), 8);
  }
}

std::string read_name(BitReader& r) {
  const std::uint64_t length = r.get_uint();
  check_count(r, length, 8, "name byte");
  std::string name(length, '\0');
  for (std::uint64_t i = 0; i < length; ++i) {
    name[i] = static_cast<char>(r.get_bits(8));
  }
  return name;
}

}  // namespace

std::vector<std::uint8_t> snapshot_registry(const InstanceRegistry& registry) {
  BitWriter w;
  w.put_bits(kMagic, 32);
  w.put_uint(kVersion);
  const auto instances = registry.all_sorted();
  w.put_uint(instances.size());
  for (const auto& instance : instances) {
    write_name(w, instance->name());
    write_spec(w, instance->spec());
    write_graph(w, instance->graph());
    w.put_uint(instance->current_holiday());
  }
  return w.finish();
}

void restore_registry(InstanceRegistry& registry, std::span<const std::uint8_t> bytes) {
  BitReader r(bytes);
  if (r.get_bits(32) != kMagic) {
    throw std::runtime_error("snapshot: bad magic");
  }
  if (const std::uint64_t version = r.get_uint(); version != kVersion) {
    throw std::runtime_error("snapshot: unsupported version " + std::to_string(version));
  }
  const std::uint64_t count = r.get_uint();
  check_count(r, count, 8, "instance");

  // Parse the whole stream before touching the registry, so a malformed
  // snapshot cannot leave a half-restored tenancy (or destroy the old one).
  struct Parsed {
    std::string name;
    InstanceSpec spec;
    graph::Graph graph;
    std::uint64_t holiday = 0;
  };
  std::vector<Parsed> parsed;
  parsed.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    Parsed p;
    p.name = read_name(r);
    p.spec = read_spec(r);
    p.graph = read_graph(r);
    p.holiday = r.get_uint();
    parsed.push_back(std::move(p));
  }

  registry.clear();
  for (auto& p : parsed) {
    const auto instance =
        registry.create(std::move(p.name), std::move(p.graph), std::move(p.spec));
    instance->fast_forward(p.holiday);
  }
}

}  // namespace fhg::engine
