#include "fhg/engine/snapshot.hpp"

#include <limits>
#include <stdexcept>
#include <string>

#include "fhg/coding/bitstring.hpp"

namespace fhg::engine {

namespace detail {

/// The one non-Engine door into `Instance::replay_mutation_log` (see the
/// friend declaration in instance.hpp): both restore entry points rebuild
/// tenants through this shim.
struct SnapshotReplay {
  static void replay(Instance& instance, std::span<const dynamic::MutationCommand> log,
                     std::span<const dynamic::BatchRecord> records) {
    instance.replay_mutation_log(log, records);
  }
};

}  // namespace detail

namespace {

constexpr std::uint32_t kMagic = 0x46484753;  // "FHGS"

// The length-field plausibility guard is shared with the api wire codec:
// see coding::check_count beside BitReader in fhg/coding/bitio.hpp.
using coding::check_count;

void write_graph(BitWriter& w, const graph::Graph& g) {
  w.put_uint(g.num_nodes());
  const std::vector<graph::Edge> edges = g.edges();  // sorted lexicographically
  w.put_uint(edges.size());
  graph::NodeId prev_first = 0;
  for (const graph::Edge& e : edges) {
    w.put_uint(e.first - prev_first);       // non-negative: edges are sorted
    w.put_uint(e.second - e.first - 1);     // second > first always
    prev_first = e.first;
  }
}

graph::Graph read_graph(BitReader& r) {
  const std::uint64_t n64 = r.get_uint();
  if (n64 > std::numeric_limits<graph::NodeId>::max()) {
    throw std::runtime_error("snapshot: node count " + std::to_string(n64) +
                             " exceeds NodeId range");
  }
  const auto n = static_cast<graph::NodeId>(n64);
  const std::uint64_t m = r.get_uint();
  check_count(r, m, 2, "edge");  // each edge costs >= 2 bits (two codewords)
  std::vector<graph::Edge> edges;
  edges.reserve(m);
  std::uint64_t prev_first = 0;
  for (std::uint64_t i = 0; i < m; ++i) {
    const std::uint64_t first = prev_first + r.get_uint();
    const std::uint64_t second = first + 1 + r.get_uint();
    if (second >= n64) {
      throw std::runtime_error("snapshot: edge endpoint " + std::to_string(second) +
                               " out of range for " + std::to_string(n64) + " nodes");
    }
    edges.push_back({static_cast<graph::NodeId>(first), static_cast<graph::NodeId>(second)});
    prev_first = first;
  }
  return graph::Graph::from_edges(n, edges);
}

void write_spec(BitWriter& w, const InstanceSpec& spec, std::uint64_t version) {
  w.put_uint(static_cast<std::uint64_t>(spec.kind));
  w.put_uint(static_cast<std::uint64_t>(spec.code));
  w.put_uint(spec.seed);
  if (version >= 2) {
    w.put_uint(spec.slack);
  }
  if (version >= 3) {
    w.put_uint(spec.parallel_crossover);
    w.put_uint(spec.bulk_threshold);
  }
  w.put_uint(spec.periods.size());
  for (const std::uint64_t p : spec.periods) {
    w.put_uint(p);
  }
}

InstanceSpec read_spec(BitReader& r, std::uint64_t version) {
  InstanceSpec spec;
  const std::uint64_t kind = r.get_uint();
  if (kind > static_cast<std::uint64_t>(SchedulerKind::kDynamicPrefixCode)) {
    throw std::runtime_error("snapshot: unknown scheduler kind " + std::to_string(kind));
  }
  spec.kind = static_cast<SchedulerKind>(kind);
  const std::uint64_t code = r.get_uint();
  if (code > static_cast<std::uint64_t>(coding::CodeFamily::kEliasOmega)) {
    throw std::runtime_error("snapshot: unknown code family " + std::to_string(code));
  }
  spec.code = static_cast<coding::CodeFamily>(code);
  spec.seed = r.get_uint();
  if (version >= 2) {
    const std::uint64_t slack = r.get_uint();
    if (slack > std::numeric_limits<std::uint32_t>::max()) {
      throw std::runtime_error("snapshot: slack " + std::to_string(slack) + " out of range");
    }
    spec.slack = static_cast<std::uint32_t>(slack);
  }
  if (version >= 3) {
    const std::uint64_t crossover = r.get_uint();
    const std::uint64_t bulk = r.get_uint();
    if (crossover > std::numeric_limits<std::uint32_t>::max() ||
        bulk > std::numeric_limits<std::uint32_t>::max()) {
      throw std::runtime_error("snapshot: coloring threshold out of range");
    }
    spec.parallel_crossover = static_cast<std::uint32_t>(crossover);
    spec.bulk_threshold = static_cast<std::uint32_t>(bulk);
  } else {
    // Pre-v3 tenants were built serial-greedy and replayed per command;
    // zero both knobs so the rebuild takes exactly those paths.
    spec.parallel_crossover = 0;
    spec.bulk_threshold = 0;
  }
  const std::uint64_t count = r.get_uint();
  check_count(r, count, 1, "period");
  spec.periods.resize(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    spec.periods[i] = r.get_uint();
  }
  return spec;
}

/// Mutation log: count, then per command (op, holiday delta, endpoints).
/// Stamps are non-decreasing along a log, so delta coding keeps them small.
void write_log(BitWriter& w, std::span<const dynamic::MutationCommand> log) {
  w.put_uint(log.size());
  std::uint64_t prev_holiday = 0;
  for (const dynamic::MutationCommand& cmd : log) {
    w.put_uint(static_cast<std::uint64_t>(cmd.op));
    w.put_uint(cmd.holiday - prev_holiday);
    w.put_uint(cmd.u);
    w.put_uint(cmd.v);
    prev_holiday = cmd.holiday;
  }
}

std::vector<dynamic::MutationCommand> read_log(BitReader& r) {
  const std::uint64_t count = r.get_uint();
  check_count(r, count, 4, "mutation");  // four codewords of >= 1 bit each
  std::vector<dynamic::MutationCommand> log;
  log.reserve(count);
  std::uint64_t prev_holiday = 0;
  for (std::uint64_t i = 0; i < count; ++i) {
    dynamic::MutationCommand cmd;
    const std::uint64_t op = r.get_uint();
    if (op > static_cast<std::uint64_t>(dynamic::MutationOp::kAddNode)) {
      throw std::runtime_error("snapshot: unknown mutation op " + std::to_string(op));
    }
    cmd.op = static_cast<dynamic::MutationOp>(op);
    cmd.holiday = prev_holiday + r.get_uint();
    const std::uint64_t u = r.get_uint();
    const std::uint64_t v = r.get_uint();
    if (u > std::numeric_limits<graph::NodeId>::max() ||
        v > std::numeric_limits<graph::NodeId>::max()) {
      throw std::runtime_error("snapshot: mutation endpoint out of NodeId range");
    }
    cmd.u = static_cast<graph::NodeId>(u);
    cmd.v = static_cast<graph::NodeId>(v);
    prev_holiday = cmd.holiday;
    log.push_back(cmd);
  }
  return log;
}

/// Batch segmentation (v3): count, then per record (applied size, bulk bit).
/// Replay routes each log segment through the recorded path, so the restored
/// coloring matches even when thresholds changed since the snapshot.
void write_batches(BitWriter& w, std::span<const dynamic::BatchRecord> batches) {
  w.put_uint(batches.size());
  for (const dynamic::BatchRecord& record : batches) {
    w.put_uint(record.size);
    w.put_bits(record.bulk ? 1 : 0, 1);
  }
}

std::vector<dynamic::BatchRecord> read_batches(BitReader& r, std::size_t log_size) {
  const std::uint64_t count = r.get_uint();
  check_count(r, count, 2, "batch record");  // one codeword + one flag bit
  std::vector<dynamic::BatchRecord> batches;
  batches.reserve(count);
  std::uint64_t total = 0;
  for (std::uint64_t i = 0; i < count; ++i) {
    dynamic::BatchRecord record;
    const std::uint64_t size = r.get_uint();
    if (size == 0 || size > std::numeric_limits<std::uint32_t>::max()) {
      throw std::runtime_error("snapshot: batch record size " + std::to_string(size) +
                               " out of range");
    }
    record.size = static_cast<std::uint32_t>(size);
    record.bulk = r.get_bits(1) != 0;
    total += record.size;
    batches.push_back(record);
  }
  if (total != log_size) {
    throw std::runtime_error("snapshot: batch records cover " + std::to_string(total) +
                             " commands, log has " + std::to_string(log_size));
  }
  return batches;
}

void write_name(BitWriter& w, const std::string& name) {
  w.put_uint(name.size());
  for (const char c : name) {
    w.put_bits(static_cast<std::uint8_t>(c), 8);
  }
}

std::string read_name(BitReader& r) {
  const std::uint64_t length = r.get_uint();
  check_count(r, length, 8, "name byte");
  std::string name(length, '\0');
  for (std::uint64_t i = 0; i < length; ++i) {
    name[i] = static_cast<char>(r.get_bits(8));
  }
  return name;
}

/// One instance's record, serialized exactly as `snapshot_registry` writes
/// it — the shared body of the tenancy-wide and single-instance writers, so
/// a single-instance blob is a count-1 tenancy snapshot byte for byte.
void write_instance(BitWriter& w, const Instance& instance, std::uint64_t version) {
  if (version < 2 && instance.dynamic()) {
    throw std::invalid_argument("snapshot_registry: instance '" + instance.name() +
                                "' is dynamic; its mutation log needs format v2");
  }
  // One locked read for (holiday, log, batches): a tenant stepping and
  // mutating concurrently can never tear the triple a restore replays from.
  const Instance::PersistedState state = instance.persisted_state();
  if (version < 3) {
    // Downgrade guard: pre-v3 formats cannot say "this coloring came from
    // the parallel builder" or "this log segment was a bulk batch", and a
    // restore that re-derives either choice lands on a different (if
    // equally proper) coloring.  Refuse the lossy write, like v1 does for
    // mutation logs.
    if (instance.build_stats().parallel) {
      throw std::invalid_argument("snapshot_registry: instance '" + instance.name() +
                                  "' built its coloring with the parallel pass; format v" +
                                  std::to_string(version) + " cannot record that");
    }
    for (const dynamic::BatchRecord& record : state.batches) {
      if (record.bulk) {
        throw std::invalid_argument("snapshot_registry: instance '" + instance.name() +
                                    "' applied a bulk mutation batch; its segmentation needs "
                                    "format v3");
      }
    }
  }
  write_name(w, instance.name());
  write_spec(w, instance.spec(), version);
  write_graph(w, instance.graph());
  w.put_uint(state.holiday);
  if (version >= 2) {
    write_log(w, state.log);
  }
  if (version >= 3) {
    write_batches(w, state.batches);
  }
}

/// One instance's parsed-but-not-built record (see `restore_registry`'s
/// parse-everything-first discipline).
struct Parsed {
  std::string name;
  InstanceSpec spec;
  graph::Graph graph;
  std::uint64_t holiday = 0;
  std::vector<dynamic::MutationCommand> log;
  std::vector<dynamic::BatchRecord> batches;
};

Parsed read_instance(BitReader& r, std::uint64_t version) {
  Parsed p;
  p.name = read_name(r);
  p.spec = read_spec(r, version);
  p.graph = read_graph(r);
  p.holiday = r.get_uint();
  if (version >= 2) {
    p.log = read_log(r);
    if (!p.log.empty() && p.spec.kind != SchedulerKind::kDynamicPrefixCode) {
      throw std::runtime_error("snapshot: mutation log on non-dynamic instance '" + p.name +
                               "'");
    }
  }
  if (version >= 3) {
    p.batches = read_batches(r, p.log.size());
  }
  return p;
}

/// Builds a live instance from a parsed record: construct the recipe state,
/// replay the mutation log through the recorded batch paths, fast-forward.
std::shared_ptr<Instance> build_instance(Parsed&& p) {
  auto instance =
      std::make_shared<Instance>(std::move(p.name), std::move(p.graph), std::move(p.spec));
  if (!p.log.empty()) {
    // Replay the mutation log over the freshly built recipe state: every
    // recolor decision is deterministic, so this lands on the identical
    // coloring and slots the snapshotted tenant had.  The batch records
    // (v3) route each segment through the path the live tenant took;
    // pre-v3 logs replay per command, which is how they were applied.
    detail::SnapshotReplay::replay(*instance, p.log, p.batches);
  }
  instance->fast_forward(p.holiday);
  return instance;
}

/// Shared header parse: magic, version.
std::uint64_t read_header(BitReader& r) {
  if (r.get_bits(32) != kMagic) {
    throw std::runtime_error("snapshot: bad magic");
  }
  const std::uint64_t version = r.get_uint();
  if (version < kSnapshotVersionV1 || version > kSnapshotVersionLatest) {
    throw std::runtime_error("snapshot: unsupported version " + std::to_string(version));
  }
  return version;
}

}  // namespace

std::vector<std::uint8_t> snapshot_registry(const InstanceRegistry& registry,
                                            std::uint64_t version) {
  if (version < kSnapshotVersionV1 || version > kSnapshotVersionLatest) {
    throw std::invalid_argument("snapshot_registry: unknown version " + std::to_string(version));
  }
  BitWriter w;
  w.put_bits(kMagic, 32);
  w.put_uint(version);
  const auto instances = registry.all_sorted();
  w.put_uint(instances.size());
  for (const auto& instance : instances) {
    write_instance(w, *instance, version);
  }
  return w.finish();
}

std::vector<std::uint8_t> snapshot_instance(const Instance& instance, std::uint64_t version) {
  if (version < kSnapshotVersionV1 || version > kSnapshotVersionLatest) {
    throw std::invalid_argument("snapshot_instance: unknown version " +
                                std::to_string(version));
  }
  BitWriter w;
  w.put_bits(kMagic, 32);
  w.put_uint(version);
  w.put_uint(1);
  write_instance(w, instance, version);
  return w.finish();
}

std::shared_ptr<Instance> restore_instance(std::span<const std::uint8_t> bytes) {
  BitReader r(bytes);
  const std::uint64_t version = read_header(r);
  const std::uint64_t count = r.get_uint();
  if (count != 1) {
    throw std::runtime_error("snapshot: expected a single-instance snapshot, found " +
                             std::to_string(count) + " instances");
  }
  return build_instance(read_instance(r, version));
}

void restore_registry(InstanceRegistry& registry, std::span<const std::uint8_t> bytes) {
  BitReader r(bytes);
  const std::uint64_t version = read_header(r);
  const std::uint64_t count = r.get_uint();
  check_count(r, count, 8, "instance");

  // Parse the whole stream before touching the registry, so a malformed
  // snapshot cannot leave a half-restored tenancy (or destroy the old one).
  std::vector<Parsed> parsed;
  parsed.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    Parsed p = read_instance(r, version);
    // The canonical encoding is strictly name-sorted; enforcing it here
    // also rules out duplicate names before the destructive phase below.
    if (!parsed.empty() && parsed.back().name >= p.name) {
      throw std::runtime_error("snapshot: instances out of canonical name order at '" + p.name +
                               "'");
    }
    parsed.push_back(std::move(p));
  }

  // Build, replay, and fast-forward every instance *before* touching the
  // registry: scheduler construction and log replay are the paths that can
  // still throw on a pathological snapshot, so they must run while the old
  // tenancy is intact.  After this loop the destructive phase is
  // exception-free and the registry can never be left half-restored.
  std::vector<std::shared_ptr<Instance>> instances;
  instances.reserve(parsed.size());
  for (auto& p : parsed) {
    instances.push_back(build_instance(std::move(p)));
  }

  registry.clear();
  for (auto& instance : instances) {
    // A create racing the restore on another shard can take a snapshotted
    // name between the clear and this insert; the restore wins
    // deterministically (last writer is the snapshot's tenant).
    while (!registry.insert(instance)) {
      (void)registry.erase(instance->name());
    }
  }
}

}  // namespace fhg::engine
