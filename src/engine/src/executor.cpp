#include "fhg/engine/executor.hpp"

#include <atomic>
#include <future>
#include <vector>

namespace fhg::engine {

StepStats BatchExecutor::step_all(std::uint64_t n) {
  const std::size_t num_shards = registry_->num_shards();
  std::vector<std::vector<std::shared_ptr<Instance>>> work(num_shards);
  for (std::size_t s = 0; s < num_shards; ++s) {
    work[s] = registry_->shard_instances(s);
  }

  std::vector<std::atomic<std::size_t>> cursors(num_shards);
  std::atomic<std::uint64_t> instances{0};
  std::atomic<std::uint64_t> total_happy{0};

  const std::size_t workers = pool_->size();
  const auto drain = [&](std::size_t first_shard) {
    std::uint64_t local_instances = 0;
    std::uint64_t local_happy = 0;
    for (std::size_t offset = 0; offset < num_shards; ++offset) {
      const std::size_t s = (first_shard + offset) % num_shards;
      for (;;) {
        const std::size_t i = cursors[s].fetch_add(1, std::memory_order_relaxed);
        if (i >= work[s].size()) {
          break;
        }
        local_happy += work[s][i]->step(n).total_happy;
        ++local_instances;
      }
    }
    instances.fetch_add(local_instances, std::memory_order_relaxed);
    total_happy.fetch_add(local_happy, std::memory_order_relaxed);
  };

  std::vector<std::future<void>> done;
  done.reserve(workers);
  for (std::size_t w = 0; w < workers; ++w) {
    done.push_back(pool_->submit(drain, w % num_shards));
  }
  for (auto& f : done) {
    f.get();
  }

  StepStats stats;
  stats.instances = instances.load();
  stats.holidays = stats.instances * n;
  stats.total_happy = total_happy.load();
  return stats;
}

}  // namespace fhg::engine
