#include "fhg/engine/instance.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>

#include "fhg/analysis/fairness.hpp"

namespace fhg::engine {

Instance::Instance(std::string name, graph::Graph g, InstanceSpec spec)
    : name_(std::move(name)), graph_(std::move(g)), spec_(std::move(spec)) {
  scheduler_ = make_scheduler(graph_, spec_);
  table_ = PeriodTable::build_shared(*scheduler_);
  if (!table_) {
    replay_ = std::make_unique<ReplayIndex>(graph_.num_nodes());
    gaps_ = std::make_unique<core::GapTracker>(graph_.num_nodes());
  }
}

std::uint64_t Instance::current_holiday() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return scheduler_->current_holiday();
}

std::uint64_t Instance::total_happy() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return total_happy_;
}

std::vector<graph::NodeId> Instance::produce_locked() {
  std::vector<graph::NodeId> happy = scheduler_->next_holiday();
  const std::uint64_t t = scheduler_->current_holiday();
  total_happy_ += happy.size();
  if (replay_) {
    replay_->observe(t, happy);
    gaps_->observe(t, happy);
  }
  return happy;
}

void Instance::extend_locked(std::uint64_t t) {
  while (scheduler_->current_holiday() < t) {
    (void)produce_locked();
  }
}

StepResult Instance::step(std::uint64_t n) {
  const std::lock_guard<std::mutex> lock(mutex_);
  StepResult result;
  for (std::uint64_t i = 0; i < n; ++i) {
    result.total_happy += produce_locked().size();
  }
  result.holidays = n;
  return result;
}

StepResult Instance::stream(
    std::uint64_t n,
    const std::function<void(std::uint64_t, std::span<const graph::NodeId>)>& sink) {
  const std::lock_guard<std::mutex> lock(mutex_);
  StepResult result;
  for (std::uint64_t i = 0; i < n; ++i) {
    const std::vector<graph::NodeId> happy = produce_locked();
    result.total_happy += happy.size();
    sink(scheduler_->current_holiday(), happy);
  }
  result.holidays = n;
  return result;
}

void Instance::check_node(graph::NodeId v) const {
  if (v >= graph_.num_nodes()) {
    throw std::out_of_range("Instance '" + name_ + "': node " + std::to_string(v) +
                            " out of range (n=" + std::to_string(graph_.num_nodes()) + ")");
  }
}

bool Instance::is_happy(graph::NodeId v, std::uint64_t t, std::uint64_t replay_limit) {
  check_node(v);
  if (table_) {
    return table_->is_happy(v, t);  // O(1), lock-free
  }
  const std::lock_guard<std::mutex> lock(mutex_);
  if (t > replay_->horizon() && t - replay_->horizon() > replay_limit) {
    throw std::runtime_error("Instance '" + name_ + "': is_happy(" + std::to_string(t) +
                             ") would replay past the " + std::to_string(replay_limit) +
                             "-holiday limit (horizon " + std::to_string(replay_->horizon()) +
                             ")");
  }
  extend_locked(t);
  return replay_->is_happy(v, t);
}

std::optional<std::uint64_t> Instance::next_gathering(graph::NodeId v, std::uint64_t after,
                                                      std::uint64_t search_limit) {
  check_node(v);
  if (table_) {
    return table_->next_gathering(v, after);  // O(1), lock-free
  }
  const std::lock_guard<std::mutex> lock(mutex_);
  if (const auto hit = replay_->next_gathering(v, after)) {
    return hit;
  }
  const std::uint64_t cap = after + search_limit;
  while (replay_->horizon() < cap) {
    const std::vector<graph::NodeId> happy = produce_locked();
    const std::uint64_t t = scheduler_->current_holiday();
    if (t > after && std::binary_search(happy.begin(), happy.end(), v)) {
      return t;
    }
  }
  return std::nullopt;
}

namespace {

/// Number of happy holidays of a `(period, phase)` slot in `[1, horizon]`.
std::uint64_t periodic_appearances(std::uint64_t period, std::uint64_t phase,
                                   std::uint64_t horizon) noexcept {
  return horizon >= phase ? (horizon - phase) / period + 1 : 0;
}

}  // namespace

FairnessAudit Instance::audit() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  FairnessAudit audit;
  const graph::NodeId n = graph_.num_nodes();
  std::vector<std::uint64_t> appearances(n, 0);

  if (table_) {
    // Analytic audit: the schedule is exactly (phase + k·period) per node.
    const std::uint64_t h = scheduler_->current_holiday();
    audit.horizon = h;
    for (graph::NodeId v = 0; v < n; ++v) {
      const std::uint64_t period = table_->period(v);
      const std::uint64_t phase = table_->phase(v);
      appearances[v] = periodic_appearances(period, phase, h);
      std::uint64_t worst = 0;
      if (appearances[v] == 0) {
        worst = h + 1;  // open-ended wait for the first gathering
      } else {
        const std::uint64_t last = phase + (appearances[v] - 1) * period;
        worst = std::max(phase, h - last + 1);  // first-wait vs. open tail
        if (appearances[v] >= 2) {
          worst = std::max(worst, period);
        }
      }
      audit.worst_gap = std::max(audit.worst_gap, worst);
      if (const auto bound = scheduler_->gap_bound(v); bound && worst > *bound) {
        audit.bounds_respected = false;
        audit.bound_violators.push_back(v);
      }
    }
  } else {
    const std::uint64_t h = replay_->horizon();
    audit.horizon = h;
    for (graph::NodeId v = 0; v < n; ++v) {
      appearances[v] = gaps_->appearances(v);
      const std::uint64_t worst = gaps_->max_gap_with_tail(v, h);
      audit.worst_gap = std::max(audit.worst_gap, worst);
      if (const auto bound = scheduler_->gap_bound(v); bound && worst > *bound) {
        audit.bounds_respected = false;
        audit.bound_violators.push_back(v);
      }
    }
  }

  if (audit.horizon > 0 && n > 0) {
    audit.jain = analysis::jain_fairness(graph_, appearances, audit.horizon);
    audit.throughput_ratio = analysis::throughput_ratio(graph_, appearances, audit.horizon);
  }
  return audit;
}

void Instance::fast_forward(std::uint64_t t) {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (table_) {
    scheduler_->advance_to(t);  // O(1) counter skip for periodic schedulers
    // Reconstruct Σ|happy| analytically so stats survive the skip.
    total_happy_ = 0;
    for (graph::NodeId v = 0; v < graph_.num_nodes(); ++v) {
      total_happy_ += periodic_appearances(table_->period(v), table_->phase(v), t);
    }
  } else {
    extend_locked(t);  // exact replay rebuilds index + gap statistics
  }
}

}  // namespace fhg::engine
