#include "fhg/engine/instance.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>

#include "fhg/analysis/fairness.hpp"
#include "fhg/dynamic/adapter.hpp"
#include "fhg/engine/wal_sink.hpp"

namespace fhg::engine {

Instance::Instance(std::string name, graph::Graph g, InstanceSpec spec)
    : name_(std::move(name)), graph_(std::move(g)), spec_(std::move(spec)) {
  scheduler_ = make_scheduler(graph_, spec_, &build_stats_);
  adapter_ = dynamic_cast<dynamic::DynamicSchedulerAdapter*>(scheduler_.get());
  auto built = PeriodTable::build_shared(*scheduler_);
  if (!adapter_) {
    fixed_table_ = built.get();  // never republished: raw fast path is safe
  }
  table_.store(std::move(built), std::memory_order_release);
  if (!table()) {
    replay_ = std::make_unique<ReplayIndex>(graph_.num_nodes());
    gaps_ = std::make_unique<core::GapTracker>(graph_.num_nodes());
  }
}

std::uint64_t Instance::current_holiday() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return scheduler_->current_holiday();
}

std::uint64_t Instance::total_happy() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return total_happy_;
}

std::vector<graph::NodeId> Instance::produce_locked() {
  std::vector<graph::NodeId> happy = scheduler_->next_holiday();
  const std::uint64_t t = scheduler_->current_holiday();
  total_happy_ += happy.size();
  if (replay_) {
    replay_->observe(t, happy);
    gaps_->observe(t, happy);
  }
  return happy;
}

void Instance::extend_locked(std::uint64_t t) {
  while (scheduler_->current_holiday() < t) {
    (void)produce_locked();
  }
}

StepResult Instance::step(std::uint64_t n) {
  const std::lock_guard<std::mutex> lock(mutex_);
  StepResult result;
  for (std::uint64_t i = 0; i < n; ++i) {
    result.total_happy += produce_locked().size();
  }
  result.holidays = n;
  return result;
}

StepResult Instance::stream(
    std::uint64_t n,
    const std::function<void(std::uint64_t, std::span<const graph::NodeId>)>& sink) {
  const std::lock_guard<std::mutex> lock(mutex_);
  StepResult result;
  for (std::uint64_t i = 0; i < n; ++i) {
    const std::vector<graph::NodeId> happy = produce_locked();
    result.total_happy += happy.size();
    sink(scheduler_->current_holiday(), happy);
  }
  result.holidays = n;
  return result;
}

void Instance::republish_table_locked() {
  table_.store(PeriodTable::build_shared(*scheduler_), std::memory_order_release);
  table_version_.fetch_add(1, std::memory_order_acq_rel);
}

MutationResult Instance::apply_mutations(std::span<const dynamic::MutationCommand> commands,
                                         WalSink* wal) {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (!adapter_) {
    throw std::logic_error("Instance '" + name_ +
                           "': apply_mutations on a non-dynamic instance (kind " +
                           scheduler_kind_name(spec_.kind) + ")");
  }
  MutationResult result;
  const std::size_t recolors_before = adapter_->scheduler().history().size();
  const dynamic::BatchResult batch = adapter_->apply_batch(commands);
  result.applied = batch.applied;
  result.bulk = batch.bulk;
  result.jp_rounds = batch.jp.rounds;
  result.jp_conflicts = batch.jp.conflicts;
  result.recolors = adapter_->scheduler().history().size() - recolors_before;
  if (result.applied > 0) {
    if (wal != nullptr) {
      // Durable before visible: persist the batch exactly as the adapter
      // logged it (holiday-stamped, routing recorded) before any reader can
      // see the new table.  A throwing sink propagates with the table still
      // at the pre-batch version.
      const std::vector<dynamic::MutationCommand>& log = adapter_->mutation_log();
      const std::vector<dynamic::BatchRecord>& records = adapter_->batch_records();
      WalCommit commit;
      commit.instance = name_;
      commit.commands = std::span<const dynamic::MutationCommand>(log).last(result.applied);
      commit.record = records.back();
      commit.batch_index = records.size() - 1;
      commit.holiday = scheduler_->current_holiday();
      wal->on_commit(commit);
    }
    republish_table_locked();
  }
  result.table_version = table_version_.load(std::memory_order_acquire);
  return result;
}

MutationResult Instance::wal_replay_batch(std::span<const dynamic::MutationCommand> commands,
                                          dynamic::BatchRecord record) {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (!adapter_) {
    throw std::logic_error("Instance '" + name_ +
                           "': wal_replay_batch on a non-dynamic instance (kind " +
                           scheduler_kind_name(spec_.kind) + ")");
  }
  MutationResult result;
  const std::size_t recolors_before = adapter_->scheduler().history().size();
  const dynamic::BatchResult batch = adapter_->replay_batch(commands, record);
  result.applied = batch.applied;
  result.bulk = batch.bulk;
  result.jp_rounds = batch.jp.rounds;
  result.jp_conflicts = batch.jp.conflicts;
  result.recolors = adapter_->scheduler().history().size() - recolors_before;
  if (result.applied > 0) {
    republish_table_locked();
  }
  result.table_version = table_version_.load(std::memory_order_acquire);
  return result;
}

std::vector<dynamic::MutationCommand> Instance::mutation_log() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (!adapter_) {
    return {};
  }
  return adapter_->mutation_log();
}

std::uint64_t Instance::batch_count() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (!adapter_) {
    return 0;
  }
  return adapter_->batch_records().size();
}

Instance::PersistedState Instance::persisted_state() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  PersistedState state;
  state.holiday = scheduler_->current_holiday();
  if (adapter_) {
    state.log = adapter_->mutation_log();
    state.batches = adapter_->batch_records();
  }
  return state;
}

void Instance::replay_mutation_log(std::span<const dynamic::MutationCommand> log,
                                   std::span<const dynamic::BatchRecord> records) {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (!adapter_) {
    throw std::logic_error("Instance '" + name_ +
                           "': replay_mutation_log on a non-dynamic instance");
  }
  if (!adapter_->mutation_log().empty() || scheduler_->current_holiday() != 0) {
    throw std::logic_error("Instance '" + name_ +
                           "': replay_mutation_log needs a freshly built instance");
  }
  adapter_->replay_log(log, records);
  republish_table_locked();
}

void Instance::check_node(graph::NodeId v) const {
  // Only reachable on the aperiodic fall-through (the table paths validate
  // against their loaded table inline), and aperiodic instances are never
  // dynamic — the recipe graph is exact, no atomic table load needed.
  if (v >= graph_.num_nodes()) {
    throw std::out_of_range("Instance '" + name_ + "': node " + std::to_string(v) +
                            " out of range (n=" + std::to_string(graph_.num_nodes()) + ")");
  }
}

bool Instance::is_happy(graph::NodeId v, std::uint64_t t, std::uint64_t replay_limit) {
  std::shared_ptr<const PeriodTable> held;
  if (const PeriodTable* table = query_table(held)) {
    // Validate against the loaded table itself, so a probe racing a
    // mutation batch stays internally consistent with one version.
    if (v >= table->num_nodes()) {
      throw std::out_of_range("Instance '" + name_ + "': node " + std::to_string(v) +
                              " out of range (n=" + std::to_string(table->num_nodes()) + ")");
    }
    return table->is_happy(v, t);  // O(1), lock-free
  }
  check_node(v);
  const std::lock_guard<std::mutex> lock(mutex_);
  if (t > replay_->horizon() && t - replay_->horizon() > replay_limit) {
    throw std::runtime_error("Instance '" + name_ + "': is_happy(" + std::to_string(t) +
                             ") would replay past the " + std::to_string(replay_limit) +
                             "-holiday limit (horizon " + std::to_string(replay_->horizon()) +
                             ")");
  }
  extend_locked(t);
  return replay_->is_happy(v, t);
}

std::optional<std::uint64_t> Instance::next_gathering(graph::NodeId v, std::uint64_t after,
                                                      std::uint64_t search_limit) {
  std::shared_ptr<const PeriodTable> held;
  if (const PeriodTable* table = query_table(held)) {
    if (v >= table->num_nodes()) {
      throw std::out_of_range("Instance '" + name_ + "': node " + std::to_string(v) +
                              " out of range (n=" + std::to_string(table->num_nodes()) + ")");
    }
    return table->next_gathering(v, after);  // O(1), lock-free
  }
  check_node(v);
  const std::lock_guard<std::mutex> lock(mutex_);
  if (const auto hit = replay_->next_gathering(v, after)) {
    return hit;
  }
  const std::uint64_t cap = after + search_limit;
  while (replay_->horizon() < cap) {
    const std::vector<graph::NodeId> happy = produce_locked();
    const std::uint64_t t = scheduler_->current_holiday();
    if (t > after && std::binary_search(happy.begin(), happy.end(), v)) {
      return t;
    }
  }
  return std::nullopt;
}

namespace {

/// Number of happy holidays of a `(period, phase)` slot in `[1, horizon]`.
std::uint64_t periodic_appearances(std::uint64_t period, std::uint64_t phase,
                                   std::uint64_t horizon) noexcept {
  return horizon >= phase ? (horizon - phase) / period + 1 : 0;
}

}  // namespace

FairnessAudit Instance::audit() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  FairnessAudit audit;
  const auto table = this->table();
  const graph::NodeId n = table ? table->num_nodes() : graph_.num_nodes();
  std::vector<std::uint64_t> appearances(n, 0);

  if (table) {
    // Analytic audit: the schedule is exactly (phase + k·period) per node.
    const std::uint64_t h = scheduler_->current_holiday();
    audit.horizon = h;
    for (graph::NodeId v = 0; v < n; ++v) {
      const std::uint64_t period = table->period(v);
      const std::uint64_t phase = table->phase(v);
      appearances[v] = periodic_appearances(period, phase, h);
      std::uint64_t worst = 0;
      if (appearances[v] == 0) {
        worst = h + 1;  // open-ended wait for the first gathering
      } else {
        const std::uint64_t last = phase + (appearances[v] - 1) * period;
        worst = std::max(phase, h - last + 1);  // first-wait vs. open tail
        if (appearances[v] >= 2) {
          worst = std::max(worst, period);
        }
      }
      audit.worst_gap = std::max(audit.worst_gap, worst);
      if (const auto bound = scheduler_->gap_bound(v); bound && worst > *bound) {
        audit.bounds_respected = false;
        audit.bound_violators.push_back(v);
      }
    }
  } else {
    const std::uint64_t h = replay_->horizon();
    audit.horizon = h;
    for (graph::NodeId v = 0; v < n; ++v) {
      appearances[v] = gaps_->appearances(v);
      const std::uint64_t worst = gaps_->max_gap_with_tail(v, h);
      audit.worst_gap = std::max(audit.worst_gap, worst);
      if (const auto bound = scheduler_->gap_bound(v); bound && worst > *bound) {
        audit.bounds_respected = false;
        audit.bound_violators.push_back(v);
      }
    }
  }

  if (audit.horizon > 0 && n > 0) {
    // For dynamic tenants `scheduler_->graph()` is the live topology (the
    // one the appearance counts are measured against); for everything else
    // it is the recipe graph.
    audit.jain = analysis::jain_fairness(scheduler_->graph(), appearances, audit.horizon);
    audit.throughput_ratio =
        analysis::throughput_ratio(scheduler_->graph(), appearances, audit.horizon);
  }
  return audit;
}

void Instance::fast_forward(std::uint64_t t) {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (const auto table = this->table()) {
    scheduler_->advance_to(t);  // O(1) counter skip for periodic schedulers
    // Reconstruct Σ|happy| analytically so stats survive the skip.
    total_happy_ = 0;
    for (graph::NodeId v = 0; v < table->num_nodes(); ++v) {
      total_happy_ += periodic_appearances(table->period(v), table->phase(v), t);
    }
  } else {
    extend_locked(t);  // exact replay rebuilds index + gap statistics
  }
}

}  // namespace fhg::engine
