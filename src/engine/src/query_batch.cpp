#include "fhg/engine/query_batch.hpp"

#include <stdexcept>
#include <string>

#include "fhg/engine/registry.hpp"

namespace fhg::engine {

std::shared_ptr<const QuerySnapshot> QuerySnapshot::build(const InstanceRegistry& registry,
                                                          std::uint64_t epoch) {
  auto snapshot = std::shared_ptr<QuerySnapshot>(new QuerySnapshot());
  snapshot->epoch_ = epoch;
  snapshot->instances_ = registry.all_sorted();
  snapshot->names_.reserve(snapshot->instances_.size());
  snapshot->tables_.reserve(snapshot->instances_.size());
  snapshot->num_nodes_.reserve(snapshot->instances_.size());
  snapshot->ids_.reserve(snapshot->instances_.size());
  for (const auto& instance : snapshot->instances_) {
    snapshot->names_.push_back(instance->name());
    snapshot->ids_.emplace(snapshot->names_.back(),
                           static_cast<std::uint32_t>(snapshot->names_.size() - 1));
    snapshot->tables_.push_back(instance->period_table_shared());
    // Derive the probe-validation bound from the captured table itself, so a
    // mutation batch racing this build cannot let a probe index past the
    // version we actually hold.  Aperiodic tenants are never dynamic; their
    // recipe graph is immutable.
    const auto& table = snapshot->tables_.back();
    snapshot->num_nodes_.push_back(table ? table->num_nodes() : instance->graph().num_nodes());
  }
  return snapshot;
}

std::optional<std::uint32_t> QuerySnapshot::id_of(std::string_view name) const {
  const auto it = ids_.find(name);  // transparent: no temporary string
  if (it == ids_.end()) {
    return std::nullopt;
  }
  return it->second;
}

std::vector<std::uint32_t> QuerySnapshot::sorted_order(std::span<const Probe> probes) const {
  const auto n = static_cast<std::uint32_t>(instances_.size());
  // Histogram pass doubles as validation, so the kernels index unchecked.
  std::vector<std::uint32_t> counts(static_cast<std::size_t>(n) + 1, 0);
  for (const Probe& probe : probes) {
    if (probe.instance >= n) {
      throw std::out_of_range("QuerySnapshot: probe instance " + std::to_string(probe.instance) +
                              " out of range (snapshot holds " + std::to_string(n) + ")");
    }
    if (probe.node >= num_nodes_[probe.instance]) {
      throw std::out_of_range("QuerySnapshot: probe node " + std::to_string(probe.node) +
                              " out of range for instance '" + std::string(names_[probe.instance]) +
                              "'");
    }
    ++counts[probe.instance + 1];
  }
  for (std::uint32_t id = 1; id <= n; ++id) {
    counts[id] += counts[id - 1];
  }
  std::vector<std::uint32_t> order(probes.size());
  for (std::uint32_t i = 0; i < probes.size(); ++i) {
    order[counts[probes[i].instance]++] = i;
  }
  return order;
}

void QuerySnapshot::query_batch(std::span<const Probe> probes, std::span<std::uint8_t> out) const {
  if (out.size() < probes.size()) {
    throw std::invalid_argument("QuerySnapshot::query_batch: output span too small");
  }
  const std::vector<std::uint32_t> order = sorted_order(probes);
  std::size_t i = 0;
  while (i < order.size()) {
    const std::uint32_t id = probes[order[i]].instance;
    // One run per instance: all its probes answered back-to-back.
    std::size_t end = i;
    while (end < order.size() && probes[order[end]].instance == id) {
      ++end;
    }
    if (const PeriodTable* table = tables_[id].get()) {
      for (std::size_t k = i; k < end; ++k) {
        const Probe& probe = probes[order[k]];
        out[order[k]] = table->is_happy(probe.node, probe.holiday) ? 1 : 0;
      }
    } else {
      Instance& instance = *instances_[id];
      for (std::size_t k = i; k < end; ++k) {
        const Probe& probe = probes[order[k]];
        out[order[k]] = instance.is_happy(probe.node, probe.holiday) ? 1 : 0;
      }
    }
    i = end;
  }
}

void QuerySnapshot::next_gathering_batch(std::span<const Probe> probes,
                                         std::span<std::uint64_t> out) const {
  if (out.size() < probes.size()) {
    throw std::invalid_argument("QuerySnapshot::next_gathering_batch: output span too small");
  }
  const std::vector<std::uint32_t> order = sorted_order(probes);
  std::size_t i = 0;
  while (i < order.size()) {
    const std::uint32_t id = probes[order[i]].instance;
    std::size_t end = i;
    while (end < order.size() && probes[order[end]].instance == id) {
      ++end;
    }
    if (const PeriodTable* table = tables_[id].get()) {
      for (std::size_t k = i; k < end; ++k) {
        const Probe& probe = probes[order[k]];
        out[order[k]] = table->next_gathering(probe.node, probe.holiday);
      }
    } else {
      Instance& instance = *instances_[id];
      for (std::size_t k = i; k < end; ++k) {
        const Probe& probe = probes[order[k]];
        out[order[k]] = instance.next_gathering(probe.node, probe.holiday).value_or(kNoGathering);
      }
    }
    i = end;
  }
}

}  // namespace fhg::engine
