#include "fhg/engine/replay_index.hpp"

#include <algorithm>
#include <cassert>

namespace fhg::engine {

void ReplayIndex::observe(std::uint64_t t, std::span<const graph::NodeId> happy) {
  assert(t == horizon_ + 1 && "ReplayIndex::observe: holidays must arrive in order");
  horizon_ = t;
  for (const graph::NodeId v : happy) {
    appearances_[v].push_back(t);
  }
}

bool ReplayIndex::is_happy(graph::NodeId v, std::uint64_t t) const noexcept {
  const auto& a = appearances_[v];
  return std::binary_search(a.begin(), a.end(), t);
}

std::optional<std::uint64_t> ReplayIndex::next_gathering(graph::NodeId v,
                                                         std::uint64_t after) const noexcept {
  const auto& a = appearances_[v];
  const auto it = std::upper_bound(a.begin(), a.end(), after);
  if (it == a.end()) {
    return std::nullopt;
  }
  return *it;
}

}  // namespace fhg::engine
