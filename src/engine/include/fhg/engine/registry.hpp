#pragma once

/// \file registry.hpp
/// Sharded ownership of named scheduler instances.
///
/// The registry is the engine's tenancy layer: thousands of sessions, each
/// mapping a string id to an `Instance`.  The map is split into `S` shards,
/// each behind its own mutex, so create/find/erase from many threads contend
/// only 1/S of the time — and the `BatchExecutor` steals work shard by shard
/// instead of serializing on one lock.  Instances are handed out as
/// `shared_ptr`, so an instance being erased never invalidates a query in
/// flight.

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "fhg/engine/instance.hpp"

namespace fhg::engine {

class InstanceRegistry {
 public:
  /// `shards` fixes the shard count for the registry's lifetime (min 1).
  explicit InstanceRegistry(std::size_t shards = 16);

  InstanceRegistry(const InstanceRegistry&) = delete;
  InstanceRegistry& operator=(const InstanceRegistry&) = delete;

  /// Creates and registers an instance.  Throws `std::invalid_argument` if
  /// the name is already taken.
  std::shared_ptr<Instance> create(std::string name, graph::Graph g, InstanceSpec spec);

  /// Registers an already built instance under its own name.  Returns false
  /// (and leaves the registry untouched) when the name is taken — the
  /// non-throwing half of `create`, for callers that report typed statuses.
  bool insert(std::shared_ptr<Instance> instance);

  /// Looks up an instance; nullptr if absent.
  [[nodiscard]] std::shared_ptr<Instance> find(std::string_view name) const;

  /// Removes an instance; returns false if absent.  In-flight queries
  /// holding the shared_ptr finish safely.
  bool erase(std::string_view name);

  /// Removes every instance.
  void clear();

  /// Number of registered instances (sums shard sizes; a racing snapshot).
  [[nodiscard]] std::size_t size() const;

  [[nodiscard]] std::size_t num_shards() const noexcept { return shards_.size(); }

  /// Monotonic change counter: bumped by every successful create/erase/clear
  /// and by every in-place mutation batch (`note_mutation`).  A
  /// `QuerySnapshot` stamps the epoch it was built at, so readers can detect
  /// staleness with one relaxed atomic load instead of walking the shards.
  [[nodiscard]] std::uint64_t epoch() const noexcept {
    return epoch_.load(std::memory_order_acquire);
  }

  /// Records that an instance changed *in place* (a dynamic tenant applied a
  /// mutation batch and republished its period table).  Membership is
  /// untouched, but any `QuerySnapshot` built before this call now serves
  /// the tenant's previous schedule version, so the epoch must move for the
  /// engine to republish its view.
  void note_mutation() noexcept { epoch_.fetch_add(1, std::memory_order_acq_rel); }

  /// All instances of one shard (shared ownership, unspecified order).
  [[nodiscard]] std::vector<std::shared_ptr<Instance>> shard_instances(std::size_t shard) const;

  /// Every instance, sorted by name — the deterministic iteration order used
  /// by snapshots.
  [[nodiscard]] std::vector<std::shared_ptr<Instance>> all_sorted() const;

 private:
  /// Transparent hashing so find/erase take string_view without allocating
  /// a temporary std::string on the query hot path.
  struct StringHash {
    using is_transparent = void;
    [[nodiscard]] std::size_t operator()(std::string_view s) const noexcept {
      return std::hash<std::string_view>{}(s);
    }
  };

  struct Shard {
    mutable std::mutex mutex;
    std::unordered_map<std::string, std::shared_ptr<Instance>, StringHash, std::equal_to<>> map;
  };

  [[nodiscard]] Shard& shard_for(std::string_view name) const;

  std::vector<std::unique_ptr<Shard>> shards_;
  std::atomic<std::uint64_t> epoch_{0};
};

}  // namespace fhg::engine
