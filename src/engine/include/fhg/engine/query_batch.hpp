#pragma once

/// \file query_batch.hpp
/// The lock-free batched read path of the engine.
///
/// `QuerySnapshot` is an immutable, flat view of the registry at one epoch:
/// instances sorted by name, with each periodic tenant's `PeriodTable`
/// pointer pulled into a parallel array.  The engine publishes the current
/// snapshot through an atomic `shared_ptr` and rebuilds it only when the
/// registry's epoch has moved — so after warm-up (fleet built, first batch
/// served) every `query_batch` call is: one atomic load, one relaxed epoch
/// check, then pure table arithmetic.  No shard mutex, no name hashing, no
/// per-probe allocation.
///
/// Probes address instances by their snapshot index (resolve names once via
/// `id_of`, amortized over thousands of probes).  The batch kernel
/// counting-sorts probe *indices* by instance id in O(probes + fleet), so
/// all probes against one table run back-to-back over its
/// structure-of-arrays storage — the sorted-access locality that makes
/// batching ~an order of magnitude faster than calling `Engine::is_happy`
/// per probe.

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "fhg/engine/instance.hpp"
#include "fhg/graph/graph.hpp"

namespace fhg::engine {

class InstanceRegistry;

/// One (instance, family, holiday) probe.  `holiday` is the queried holiday
/// `t` for membership batches and the exclusive lower bound `after` for
/// next-gathering batches.
struct Probe {
  std::uint32_t instance = 0;  ///< index into the snapshot (see `QuerySnapshot::id_of`)
  graph::NodeId node = 0;      ///< the family asking
  std::uint64_t holiday = 0;

  friend constexpr bool operator==(const Probe&, const Probe&) noexcept = default;
};

/// Sentinel for "no gathering found within the search limit" in
/// `next_gathering_batch` results (holidays are 1-based, so 0 is free).
inline constexpr std::uint64_t kNoGathering = 0;

class QuerySnapshot {
 public:
  /// Flattens the registry's current membership (sorted by name) and stamps
  /// it with `epoch`.
  [[nodiscard]] static std::shared_ptr<const QuerySnapshot> build(const InstanceRegistry& registry,
                                                                  std::uint64_t epoch);

  /// Registry epoch this snapshot was built at.
  [[nodiscard]] std::uint64_t epoch() const noexcept { return epoch_; }

  /// Number of instances captured.
  [[nodiscard]] std::size_t size() const noexcept { return instances_.size(); }

  /// Snapshot index of `name`; nullopt if the instance was not present when
  /// the snapshot was taken.  O(1): the build indexes every name in a hash
  /// map, so per-request name resolution (the `fhg::service` front-end
  /// resolves each queued request exactly once) costs one hash, not a
  /// binary search.
  [[nodiscard]] std::optional<std::uint32_t> id_of(std::string_view name) const;

  /// The instance at snapshot index `id` (shared ownership: stays valid even
  /// if the registry has since erased it).
  [[nodiscard]] const std::shared_ptr<Instance>& instance(std::uint32_t id) const {
    return instances_[id];
  }

  /// Name of the instance at snapshot index `id`.
  [[nodiscard]] std::string_view name(std::uint32_t id) const { return names_[id]; }

  /// Node count of instance `id` as captured at build time — the bound the
  /// batch kernels validate probes against.  Batch-entry hook: callers that
  /// coalesce independent requests (the service layer) pre-validate each
  /// probe against this bound so one malformed request is rejected alone
  /// instead of poisoning the whole batch with an exception.
  [[nodiscard]] graph::NodeId num_nodes(std::uint32_t id) const { return num_nodes_[id]; }

  /// Answers `out[i] = is_happy(probes[i])` for every probe.  Periodic
  /// instances are answered lock-free from their period tables in sorted
  /// order; aperiodic instances fall back to the per-instance replay path.
  /// Throws `std::out_of_range` on an invalid instance index or node.
  void query_batch(std::span<const Probe> probes, std::span<std::uint8_t> out) const;

  /// Answers `out[i] = next_gathering(probes[i])` (first happy holiday
  /// strictly after `probes[i].holiday`), or `kNoGathering` when an
  /// aperiodic search gives up.  Same ordering and error contract as
  /// `query_batch`.
  void next_gathering_batch(std::span<const Probe> probes, std::span<std::uint64_t> out) const;

 private:
  QuerySnapshot() = default;

  /// Probe indices grouped by instance id (counting sort, O(probes +
  /// fleet)) — the shared iteration order of both batch kernels.  Also
  /// validates every probe so the kernels can index unchecked.
  [[nodiscard]] std::vector<std::uint32_t> sorted_order(std::span<const Probe> probes) const;

  /// Transparent hashing so `id_of` takes a string_view without allocating.
  struct NameHash {
    using is_transparent = void;
    [[nodiscard]] std::size_t operator()(std::string_view s) const noexcept {
      return std::hash<std::string_view>{}(s);
    }
  };

  std::uint64_t epoch_ = 0;
  std::vector<std::shared_ptr<Instance>> instances_;  ///< sorted by name
  std::vector<std::string_view> names_;               ///< views into instances_' names
  /// name → snapshot index; keys view into instances_' names (stable: the
  /// shared_ptrs above keep every instance alive for the snapshot's life).
  std::unordered_map<std::string_view, std::uint32_t, NameHash, std::equal_to<>> ids_;
  /// Table *version* captured at build time, nullptr for aperiodic tenants.
  /// Shared ownership, not raw pointers: a dynamic tenant republishes its
  /// table on mutation, and this snapshot must keep serving the version it
  /// captured — consistently and without dangling — until readers drop it.
  std::vector<std::shared_ptr<const PeriodTable>> tables_;
  std::vector<graph::NodeId> num_nodes_;              ///< per-instance node counts at build time
};

}  // namespace fhg::engine
