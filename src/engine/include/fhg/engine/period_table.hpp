#pragma once

/// \file period_table.hpp
/// The engine's O(1) query path for perfectly periodic schedules.
///
/// A perfectly periodic scheduler makes node `v` happy exactly at
/// `phase_v, phase_v + P_v, phase_v + 2·P_v, …` — so once `(P_v, phase_v)`
/// are materialized, "is `v` happy on holiday `t`?" is one modulo and
/// `next_gathering` is one division.  No scheduler state is touched, so the
/// table can serve concurrent readers without any locking, regardless of
/// which holiday the instance itself has been stepped to.  This is the
/// serving-layer payoff of the paper's periodicity results: the schedule
/// need not be replayed to be queried.
///
/// Storage is structure-of-arrays: three parallel `uint64_t` vectors
/// (`periods`, `residues`, `phases`) rather than an array of row structs.
/// The batched query kernel streams the `periods`/`residues` arrays with
/// unit stride, and fleets built from a small pool of topologies share one
/// table per distinct schedule through `build_shared`'s content-addressed
/// intern pool — 10k tenants over 16 topologies hold 16 tables, not 10k.

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "fhg/core/scheduler.hpp"
#include "fhg/graph/graph.hpp"

namespace fhg::engine {

class PeriodTable {
 public:
  /// Materializes the table from a perfectly periodic scheduler.  Returns
  /// nullopt when `s` is not perfectly periodic (or does not expose phases),
  /// in which case the engine falls back to memoized replay.
  [[nodiscard]] static std::optional<PeriodTable> build(const core::Scheduler& s);

  /// Like `build`, but returns a content-interned shared table: two
  /// schedulers producing identical `(period, phase)` vectors get the *same*
  /// immutable table object, so a fleet of instances over a handful of
  /// distinct topologies shares storage instead of duplicating it per
  /// tenant.  Returns nullptr when `s` is not perfectly periodic.
  [[nodiscard]] static std::shared_ptr<const PeriodTable> build_shared(const core::Scheduler& s);

  [[nodiscard]] graph::NodeId num_nodes() const noexcept {
    return static_cast<graph::NodeId>(periods_.size());
  }

  /// O(1): true iff `v` is happy on (1-based) holiday `t`.
  [[nodiscard]] bool is_happy(graph::NodeId v, std::uint64_t t) const noexcept {
    return t >= 1 && t % periods_[v] == residues_[v];
  }

  /// O(1): the first happy holiday of `v` strictly after `after`.
  [[nodiscard]] std::uint64_t next_gathering(graph::NodeId v, std::uint64_t after) const noexcept {
    const std::uint64_t period = periods_[v];
    const std::uint64_t delta = (residues_[v] + period - after % period) % period;
    return after + (delta == 0 ? period : delta);
  }

  /// The exact period of `v`.
  [[nodiscard]] std::uint64_t period(graph::NodeId v) const noexcept { return periods_[v]; }

  /// The first happy holiday of `v`.
  [[nodiscard]] std::uint64_t phase(graph::NodeId v) const noexcept { return phases_[v]; }

  /// Structure-of-arrays views for batch kernels (all of length num_nodes).
  [[nodiscard]] const std::vector<std::uint64_t>& periods() const noexcept { return periods_; }
  [[nodiscard]] const std::vector<std::uint64_t>& residues() const noexcept { return residues_; }
  [[nodiscard]] const std::vector<std::uint64_t>& phases() const noexcept { return phases_; }

  /// Content equality: same `(period, phase)` for every node.
  friend bool operator==(const PeriodTable&, const PeriodTable&) = default;

 private:
  PeriodTable(std::vector<std::uint64_t> periods, std::vector<std::uint64_t> residues,
              std::vector<std::uint64_t> phases) noexcept
      : periods_(std::move(periods)), residues_(std::move(residues)), phases_(std::move(phases)) {}

  [[nodiscard]] std::uint64_t content_hash() const noexcept;

  std::vector<std::uint64_t> periods_;
  std::vector<std::uint64_t> residues_;  ///< phase % period, the modulo the hot path tests
  std::vector<std::uint64_t> phases_;
};

}  // namespace fhg::engine
