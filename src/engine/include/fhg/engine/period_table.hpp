#pragma once

/// \file period_table.hpp
/// The engine's O(1) query path for perfectly periodic schedules.
///
/// A perfectly periodic scheduler makes node `v` happy exactly at
/// `phase_v, phase_v + P_v, phase_v + 2·P_v, …` — so once `(P_v, phase_v)`
/// are materialized, "is `v` happy on holiday `t`?" is one modulo and
/// `next_gathering` is one division.  No scheduler state is touched, so the
/// table can serve concurrent readers without any locking, regardless of
/// which holiday the instance itself has been stepped to.  This is the
/// serving-layer payoff of the paper's periodicity results: the schedule
/// need not be replayed to be queried.

#include <cstdint>
#include <optional>
#include <vector>

#include "fhg/core/scheduler.hpp"
#include "fhg/graph/graph.hpp"

namespace fhg::engine {

class PeriodTable {
 public:
  /// Materializes the table from a perfectly periodic scheduler.  Returns
  /// nullopt when `s` is not perfectly periodic (or does not expose phases),
  /// in which case the engine falls back to memoized replay.
  [[nodiscard]] static std::optional<PeriodTable> build(const core::Scheduler& s);

  [[nodiscard]] graph::NodeId num_nodes() const noexcept {
    return static_cast<graph::NodeId>(rows_.size());
  }

  /// O(1): true iff `v` is happy on (1-based) holiday `t`.
  [[nodiscard]] bool is_happy(graph::NodeId v, std::uint64_t t) const noexcept {
    const Row& r = rows_[v];
    return t >= 1 && t % r.period == r.residue;
  }

  /// O(1): the first happy holiday of `v` strictly after `after`.
  [[nodiscard]] std::uint64_t next_gathering(graph::NodeId v, std::uint64_t after) const noexcept {
    const Row& r = rows_[v];
    const std::uint64_t delta = (r.residue + r.period - after % r.period) % r.period;
    return after + (delta == 0 ? r.period : delta);
  }

  /// The exact period of `v`.
  [[nodiscard]] std::uint64_t period(graph::NodeId v) const noexcept { return rows_[v].period; }

  /// The first happy holiday of `v`.
  [[nodiscard]] std::uint64_t phase(graph::NodeId v) const noexcept { return rows_[v].phase; }

 private:
  struct Row {
    std::uint64_t period = 1;
    std::uint64_t residue = 0;  ///< phase % period
    std::uint64_t phase = 1;
  };

  explicit PeriodTable(std::vector<Row> rows) noexcept : rows_(std::move(rows)) {}

  std::vector<Row> rows_;
};

}  // namespace fhg::engine
