#pragma once

/// \file instance.hpp
/// One tenant of the engine: a named scheduler plus its serving state.
///
/// An `Instance` bundles a conflict graph (owned), the scheduler built from
/// its `InstanceSpec`, a `GapTracker` for fairness audits, and one of two
/// query paths:
///
///  * **periodic** — a `PeriodTable` materialized at construction; queries
///    are O(1) arithmetic, lock-free, and independent of how far the
///    instance has been stepped;
///  * **aperiodic** — a `ReplayIndex` fed by every produced holiday; queries
///    bind to the replayed prefix (extending it on demand) and cost
///    `O(log appearances)`.
///
/// Stepping and aperiodic queries mutate scheduler state and are serialized
/// by a per-instance mutex, so the `BatchExecutor` can advance thousands of
/// instances from many threads while queries keep landing.

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "fhg/core/gap_tracker.hpp"
#include "fhg/core/scheduler.hpp"
#include "fhg/engine/period_table.hpp"
#include "fhg/engine/replay_index.hpp"
#include "fhg/engine/spec.hpp"
#include "fhg/graph/graph.hpp"

namespace fhg::engine {

/// What one `step` call produced.
struct StepResult {
  std::uint64_t holidays = 0;     ///< holidays advanced
  std::uint64_t total_happy = 0;  ///< Σ |happy set| over those holidays
};

/// Fairness report over everything an instance has observed so far.
struct FairnessAudit {
  std::uint64_t horizon = 0;       ///< holidays observed by the gap tracker
  double jain = 0.0;               ///< Jain index over degree-normalized frequencies
  double throughput_ratio = 0.0;   ///< mean happy-set size / Caro–Wei bound
  std::uint64_t worst_gap = 0;     ///< max over nodes of max_gap_with_tail
  bool bounds_respected = true;    ///< every observed gap within gap_bound()
  std::vector<graph::NodeId> bound_violators;
};

class Instance {
 public:
  /// Builds the scheduler from `spec` and, when it is perfectly periodic,
  /// materializes the O(1) period table.  The graph is copied in and owned.
  Instance(std::string name, graph::Graph g, InstanceSpec spec);

  Instance(const Instance&) = delete;
  Instance& operator=(const Instance&) = delete;

  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] const graph::Graph& graph() const noexcept { return graph_; }
  [[nodiscard]] const InstanceSpec& spec() const noexcept { return spec_; }
  [[nodiscard]] std::string scheduler_name() const { return scheduler_->name(); }

  /// True iff the instance serves queries from a `PeriodTable`.
  [[nodiscard]] bool periodic() const noexcept { return table_ != nullptr; }

  /// The O(1) table, or nullptr for aperiodic instances.  Immutable and
  /// content-interned: instances with identical schedules share one table.
  /// The pointer stays valid as long as the instance does — `QuerySnapshot`
  /// relies on this by holding the instance, not the table.
  [[nodiscard]] const PeriodTable* period_table() const noexcept { return table_.get(); }

  /// The holiday the scheduler has advanced to (thread-safe).
  [[nodiscard]] std::uint64_t current_holiday() const;

  /// Advances `n` holidays, feeding the gap tracker (and, for aperiodic
  /// instances, the replay index).  Thread-safe; concurrent steps serialize.
  StepResult step(std::uint64_t n);

  /// Advances `n` holidays, invoking `sink(t, happy)` for each — the
  /// per-instance streaming interface.  Observations are recorded exactly as
  /// in `step`.
  StepResult stream(std::uint64_t n,
                    const std::function<void(std::uint64_t, std::span<const graph::NodeId>)>& sink);

  /// Default bound on how far a single query may extend an aperiodic
  /// instance's replayed prefix — one query must not be able to stall the
  /// whole engine by replaying an unbounded schedule under the instance lock.
  static constexpr std::uint64_t kDefaultReplayLimit = 1'048'576;

  /// Membership query.  Periodic instances answer in O(1) without locking;
  /// aperiodic instances extend the replayed prefix to `t` if needed (under
  /// the instance lock) and binary-search it.  Throws `std::out_of_range`
  /// for an invalid node, and `std::runtime_error` when answering would
  /// extend an aperiodic replay by more than `replay_limit` holidays.
  [[nodiscard]] bool is_happy(graph::NodeId v, std::uint64_t t,
                              std::uint64_t replay_limit = kDefaultReplayLimit);

  /// First happy holiday of `v` strictly after `after`.  O(1) for periodic
  /// instances.  Aperiodic instances search the replayed prefix, extending
  /// it up to `after + search_limit` holidays before giving up (nullopt).
  /// Throws `std::out_of_range` for an invalid node.
  [[nodiscard]] std::optional<std::uint64_t> next_gathering(graph::NodeId v, std::uint64_t after,
                                                            std::uint64_t search_limit = 65536);

  /// Fairness audit (thread-safe).  Periodic instances are audited
  /// *analytically* from the period table at the current holiday — exact,
  /// O(n), and no observation cost on the stepping hot path.  Aperiodic
  /// instances are audited from the gap tracker over the replayed prefix.
  [[nodiscard]] FairnessAudit audit() const;

  /// Σ |happy set| over all stepped holidays (thread-safe).
  [[nodiscard]] std::uint64_t total_happy() const;

  /// Snapshot restore: brings the instance to holiday `t`.  Periodic
  /// instances skip in O(1) (their queries never depended on replay);
  /// aperiodic instances replay from the start, rebuilding the replay index
  /// and gap statistics exactly as they were when the snapshot was taken.
  void fast_forward(std::uint64_t t);

 private:
  /// Throws `std::out_of_range` unless `v` is a node of this instance.
  void check_node(graph::NodeId v) const;

  /// Replays holidays until `scheduler_->current_holiday() >= t`.
  /// Caller must hold `mutex_`.
  void extend_locked(std::uint64_t t);

  /// One holiday forward + bookkeeping.  Caller must hold `mutex_`.
  std::vector<graph::NodeId> produce_locked();

  mutable std::mutex mutex_;
  std::string name_;
  graph::Graph graph_;  ///< must outlive scheduler_ (declared first)
  InstanceSpec spec_;
  std::unique_ptr<core::Scheduler> scheduler_;
  std::shared_ptr<const PeriodTable> table_;  ///< interned; shared across tenants
  // Aperiodic instances only: appearance index + observed gap statistics.
  std::unique_ptr<ReplayIndex> replay_;
  std::unique_ptr<core::GapTracker> gaps_;
  std::uint64_t total_happy_ = 0;
};

}  // namespace fhg::engine
