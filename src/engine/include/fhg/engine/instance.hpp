#pragma once

/// \file instance.hpp
/// One tenant of the engine: a named scheduler plus its serving state.
///
/// An `Instance` bundles a conflict graph (the construction-time *recipe*
/// topology, owned), the scheduler built from its `InstanceSpec`, a
/// `GapTracker` for fairness audits, and one of two query paths:
///
///  * **periodic** — a `PeriodTable` materialized at construction; queries
///    are O(1) arithmetic, lock-free, and independent of how far the
///    instance has been stepped;
///  * **aperiodic** — a `ReplayIndex` fed by every produced holiday; queries
///    bind to the replayed prefix (extending it on demand) and cost
///    `O(log appearances)`.
///
/// Dynamic tenants (`SchedulerKind::kDynamicPrefixCode`) add a third
/// dimension: `apply_mutations` recolors the live topology **in place** and
/// republishes the period table at a new version.  The table is held behind
/// an atomic `shared_ptr`, so lock-free readers either see the old table or
/// the new one — never a torn or freed table — and a `QuerySnapshot` holding
/// the old table keeps answering consistently at its own epoch.  The
/// instance records every applied command in a mutation log; `recipe graph +
/// spec + log` fully determines the schedule, which is what the v2 snapshot
/// format persists.
///
/// Stepping, mutations, and aperiodic queries mutate scheduler state and are
/// serialized by a per-instance mutex, so the `BatchExecutor` can advance
/// thousands of instances from many threads while queries keep landing.

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "fhg/core/gap_tracker.hpp"
#include "fhg/core/scheduler.hpp"
#include "fhg/dynamic/mutation.hpp"
#include "fhg/engine/period_table.hpp"
#include "fhg/engine/replay_index.hpp"
#include "fhg/engine/spec.hpp"
#include "fhg/graph/graph.hpp"

namespace fhg::dynamic {
class DynamicSchedulerAdapter;
}  // namespace fhg::dynamic

namespace fhg::engine {

class Engine;
class InstanceRegistry;
class Instance;

namespace detail {
struct SnapshotReplay;  // snapshot restore's private-access shim (snapshot.cpp)
}  // namespace detail
class WalSink;
void restore_registry(InstanceRegistry& registry, std::span<const std::uint8_t> bytes);

/// What one `step` call produced.
struct StepResult {
  std::uint64_t holidays = 0;     ///< holidays advanced
  std::uint64_t total_happy = 0;  ///< Σ |happy set| over those holidays
};

/// What one `apply_mutations` call did.
struct MutationResult {
  std::size_t applied = 0;            ///< commands that changed topology
  std::size_t recolors = 0;           ///< recolor events those commands forced
  std::uint64_t table_version = 0;    ///< table version after the batch
  bool bulk = false;                  ///< batch took the bulk-recolor path
  std::uint64_t jp_rounds = 0;        ///< Jones–Plassmann rounds (bulk only)
  std::uint64_t jp_conflicts = 0;     ///< proposals lost to priority (bulk only)
};

/// Fairness report over everything an instance has observed so far.
struct FairnessAudit {
  std::uint64_t horizon = 0;       ///< holidays observed by the gap tracker
  double jain = 0.0;               ///< Jain index over degree-normalized frequencies
  double throughput_ratio = 0.0;   ///< mean happy-set size / Caro–Wei bound
  std::uint64_t worst_gap = 0;     ///< max over nodes of max_gap_with_tail
  bool bounds_respected = true;    ///< every observed gap within gap_bound()
  std::vector<graph::NodeId> bound_violators;
};

class Instance {
 public:
  /// Builds the scheduler from `spec` and, when it is perfectly periodic,
  /// materializes the O(1) period table.  The graph is copied in and owned.
  Instance(std::string name, graph::Graph g, InstanceSpec spec);

  Instance(const Instance&) = delete;
  Instance& operator=(const Instance&) = delete;

  [[nodiscard]] const std::string& name() const noexcept { return name_; }

  /// The construction-time recipe topology.  For dynamic tenants the live
  /// topology diverges from it as mutations land — recipe + `mutation_log()`
  /// is the persistent identity; `num_nodes()` tracks the live node count.
  [[nodiscard]] const graph::Graph& graph() const noexcept { return graph_; }

  [[nodiscard]] const InstanceSpec& spec() const noexcept { return spec_; }
  [[nodiscard]] std::string scheduler_name() const { return scheduler_->name(); }

  /// True iff the instance serves queries from a `PeriodTable`.
  [[nodiscard]] bool periodic() const noexcept { return table() != nullptr; }

  /// True iff the instance accepts live topology mutations.
  [[nodiscard]] bool dynamic() const noexcept { return adapter_ != nullptr; }

  /// The current O(1) table, or nullptr for aperiodic instances.  Immutable
  /// and content-interned: instances with identical schedules share one
  /// table.  Dynamic tenants republish a *new* table after each mutation
  /// batch; holding the returned `shared_ptr` keeps the old version alive
  /// (and consistent) for as long as a reader needs it — `QuerySnapshot`
  /// relies on exactly that.
  [[nodiscard]] std::shared_ptr<const PeriodTable> period_table_shared() const noexcept {
    return table();
  }

  /// Monotonic version of the published table: 0 at construction, bumped by
  /// every mutation batch that republishes.  Readers can detect a stale
  /// table with one relaxed load.
  [[nodiscard]] std::uint64_t table_version() const noexcept {
    return table_version_.load(std::memory_order_acquire);
  }

  /// The live node count: grows under `kAddNode` mutations.  Lock-free.
  [[nodiscard]] graph::NodeId num_nodes() const noexcept {
    const auto t = table();
    return t ? t->num_nodes() : graph_.num_nodes();
  }

  /// The holiday the scheduler has advanced to (thread-safe).
  [[nodiscard]] std::uint64_t current_holiday() const;

  /// Advances `n` holidays, feeding the gap tracker (and, for aperiodic
  /// instances, the replay index).  Thread-safe; concurrent steps serialize.
  StepResult step(std::uint64_t n);

  /// Advances `n` holidays, invoking `sink(t, happy)` for each — the
  /// per-instance streaming interface.  Observations are recorded exactly as
  /// in `step`.
  StepResult stream(std::uint64_t n,
                    const std::function<void(std::uint64_t, std::span<const graph::NodeId>)>& sink);

  /// Applies a batch of topology mutations in place: each command is stamped
  /// with the current holiday, applied to the live graph (recoloring per §6
  /// where needed), appended to the mutation log, and — once per batch — the
  /// period table is republished at the next version.  Batches are
  /// all-or-nothing: a malformed command anywhere rejects the whole batch
  /// untouched.  Thread-safe against steps and other mutation batches;
  /// lock-free readers keep answering against whichever table version they
  /// loaded.  Throws `std::logic_error` on a non-dynamic instance and
  /// `std::invalid_argument` on malformed commands (self-loops, out-of-range
  /// endpoints).
  ///
  /// When `wal` is non-null the batch is handed to it *after* it applies to
  /// the scheduler and *before* the table republishes — durable-then-visible.
  /// A throwing sink leaves the table at the pre-batch version (see
  /// `wal_sink.hpp` for the full contract).
  ///
  /// Private because republishing obliges the registry epoch to move (or
  /// `Engine::query_snapshot` would keep serving the old table version);
  /// `Engine::apply_mutations` is the entry point that maintains both.
 private:
  friend class Engine;
  /// Snapshot restore's private-access shim (defined in snapshot.cpp): the
  /// one non-Engine path allowed to call `replay_mutation_log`, shared by
  /// the tenancy-wide and single-instance restore entry points.
  friend struct detail::SnapshotReplay;
  MutationResult apply_mutations(std::span<const dynamic::MutationCommand> commands,
                                 WalSink* wal = nullptr);

  /// WAL-recovery path: re-applies one persisted batch through the routing
  /// path its record names, keeping the persisted holiday stamps.  Unlike
  /// `replay_mutation_log` this works on a *live* instance (typically one
  /// just restored from a snapshot) and does not touch the WAL sink — the
  /// batch being replayed is already durable.  Throws `std::logic_error` on
  /// a non-dynamic instance and `std::runtime_error` when the batch does not
  /// reproduce `record.size` applied commands (log divergence).
  MutationResult wal_replay_batch(std::span<const dynamic::MutationCommand> commands,
                                  dynamic::BatchRecord record);

  /// Snapshot-restore path: replays a persisted mutation log over the
  /// freshly built recipe state, keeping the persisted holiday stamps and
  /// routing each batch segment through the path its record names (empty
  /// `records` = pre-segmentation log, one per-command batch per entry).
  /// Requires a dynamic instance with an empty log (i.e. straight after
  /// construction); throws `std::logic_error` otherwise.
  void replay_mutation_log(std::span<const dynamic::MutationCommand> log,
                           std::span<const dynamic::BatchRecord> records = {});

 public:

  /// Copy of the mutation log: every applied command, in order, stamped with
  /// the holiday it landed at.  Empty for non-dynamic instances.
  [[nodiscard]] std::vector<dynamic::MutationCommand> mutation_log() const;

  /// Number of applied mutation batches so far (0 for non-dynamic
  /// instances).  This is the WAL's per-instance sequence number: a durable
  /// record with `batch_index < batch_count()` is already part of this
  /// instance's state and must be skipped on replay.
  [[nodiscard]] std::uint64_t batch_count() const;

  /// What a snapshot persists beyond the recipe: the holiday counter, the
  /// mutation log, and the log's batch segmentation, read under *one* lock
  /// so the triple is always mutually consistent (a log entry can never be
  /// stamped past the holiday) even while the instance keeps stepping and
  /// mutating.
  struct PersistedState {
    std::uint64_t holiday = 0;
    std::vector<dynamic::MutationCommand> log;
    std::vector<dynamic::BatchRecord> batches;
  };
  [[nodiscard]] PersistedState persisted_state() const;

  /// How `make_scheduler` built this instance's initial coloring (default
  /// stats for kinds without one).
  [[nodiscard]] const ColoringBuildStats& build_stats() const noexcept { return build_stats_; }

  /// Default bound on how far a single query may extend an aperiodic
  /// instance's replayed prefix — one query must not be able to stall the
  /// whole engine by replaying an unbounded schedule under the instance lock.
  static constexpr std::uint64_t kDefaultReplayLimit = 1'048'576;

  /// Membership query.  Periodic instances answer in O(1) without locking;
  /// aperiodic instances extend the replayed prefix to `t` if needed (under
  /// the instance lock) and binary-search it.  Throws `std::out_of_range`
  /// for an invalid node, and `std::runtime_error` when answering would
  /// extend an aperiodic replay by more than `replay_limit` holidays.
  [[nodiscard]] bool is_happy(graph::NodeId v, std::uint64_t t,
                              std::uint64_t replay_limit = kDefaultReplayLimit);

  /// First happy holiday of `v` strictly after `after`.  O(1) for periodic
  /// instances.  Aperiodic instances search the replayed prefix, extending
  /// it up to `after + search_limit` holidays before giving up (nullopt).
  /// Throws `std::out_of_range` for an invalid node.
  [[nodiscard]] std::optional<std::uint64_t> next_gathering(graph::NodeId v, std::uint64_t after,
                                                            std::uint64_t search_limit = 65536);

  /// Fairness audit (thread-safe).  Periodic instances are audited
  /// *analytically* from the period table at the current holiday — exact,
  /// O(n), and no observation cost on the stepping hot path.  For dynamic
  /// tenants the analytic audit describes the *current* schedule version
  /// as-if it had always held (past versions are not replayed).  Aperiodic
  /// instances are audited from the gap tracker over the replayed prefix.
  [[nodiscard]] FairnessAudit audit() const;

  /// Σ |happy set| over all stepped holidays (thread-safe).
  [[nodiscard]] std::uint64_t total_happy() const;

  /// Snapshot restore: brings the instance to holiday `t`.  Periodic
  /// instances skip in O(1) (their queries never depended on replay);
  /// aperiodic instances replay from the start, rebuilding the replay index
  /// and gap statistics exactly as they were when the snapshot was taken.
  void fast_forward(std::uint64_t t);

 private:
  /// Acquire-load of the published table.
  [[nodiscard]] std::shared_ptr<const PeriodTable> table() const noexcept {
    return table_.load(std::memory_order_acquire);
  }

  /// The query-path table: the raw pointer for static tenants (their table
  /// never changes, so no refcount traffic on the hot path), an owning load
  /// for dynamic ones (`held` pins the version against a concurrent
  /// republish).  Returns nullptr for aperiodic instances.
  [[nodiscard]] const PeriodTable* query_table(std::shared_ptr<const PeriodTable>& held) const {
    if (fixed_table_ != nullptr || adapter_ == nullptr) {
      return fixed_table_;
    }
    held = table();
    return held.get();
  }

  /// Rebuilds and republishes the table from the scheduler's current slots.
  /// Caller must hold `mutex_`.
  void republish_table_locked();

  /// Throws `std::out_of_range` unless `v` is a node of this instance.
  void check_node(graph::NodeId v) const;

  /// Replays holidays until `scheduler_->current_holiday() >= t`.
  /// Caller must hold `mutex_`.
  void extend_locked(std::uint64_t t);

  /// One holiday forward + bookkeeping.  Caller must hold `mutex_`.
  std::vector<graph::NodeId> produce_locked();

  mutable std::mutex mutex_;
  std::string name_;
  graph::Graph graph_;  ///< recipe topology; must outlive scheduler_ (declared first)
  InstanceSpec spec_;
  ColoringBuildStats build_stats_;
  std::unique_ptr<core::Scheduler> scheduler_;
  dynamic::DynamicSchedulerAdapter* adapter_ = nullptr;  ///< non-null iff dynamic
  /// Published table (atomic so mutation batches can republish under
  /// lock-free readers); interned and shared across tenants.
  std::atomic<std::shared_ptr<const PeriodTable>> table_{nullptr};
  /// Non-dynamic periodic tenants only: `table_` is immutable for the
  /// instance's lifetime, so queries read this raw pointer instead of paying
  /// shared_ptr refcount traffic per probe.
  const PeriodTable* fixed_table_ = nullptr;
  std::atomic<std::uint64_t> table_version_{0};
  // Aperiodic instances only: appearance index + observed gap statistics.
  std::unique_ptr<ReplayIndex> replay_;
  std::unique_ptr<core::GapTracker> gaps_;
  std::uint64_t total_happy_ = 0;
};

}  // namespace fhg::engine
