#pragma once

/// \file wal_sink.hpp
/// The engine-side durability hook.
///
/// `WalSink` is the narrow interface the engine calls to make a mutation
/// batch durable *before* it becomes visible: `Instance::apply_mutations`
/// invokes `on_commit` after the batch has been applied to the scheduler but
/// before the period table is republished, while the per-instance mutex is
/// still held.  The concrete implementation lives in `fhg::wal` (which
/// depends on the engine, not the other way round); an engine without an
/// attached sink pays one relaxed atomic load per batch and nothing else.
///
/// Ordering contract: commits for one instance arrive in `batch_index`
/// order (the index is assigned under the same instance mutex the hook runs
/// under).  Commits for *different* instances may arrive concurrently — a
/// sink must do its own locking.  If `on_commit` throws, the batch is
/// already applied to the in-memory scheduler but the table is **not**
/// republished and the error propagates to the caller: readers keep the
/// pre-batch version, and the process should be treated as failing durable
/// writes (restart + recovery is the supported path out).

#include <cstdint>
#include <span>
#include <string_view>

#include "fhg/dynamic/mutation.hpp"

namespace fhg::engine {

/// One committed mutation batch, as the durability layer must persist it.
/// Spans point into adapter-owned storage and are valid only for the
/// duration of the `on_commit` call.
struct WalCommit {
  std::string_view instance;  ///< tenant name (registry key)
  /// The batch's applied commands exactly as logged: holiday-stamped, in
  /// application order (the tail of the instance's mutation log).
  std::span<const dynamic::MutationCommand> commands;
  dynamic::BatchRecord record;    ///< size + bulk/in-place routing for replay
  std::uint64_t batch_index = 0;  ///< 0-based position in the instance's batch log
  std::uint64_t holiday = 0;      ///< instance holiday the batch landed at
};

/// Counters a sink exposes for `RecoverInfo` and tests.  All values are
/// totals since the sink was constructed (recovery counters cover the
/// `recover()` call that built it).
struct WalSinkStats {
  std::uint64_t last_durable_holiday = 0;  ///< max holiday across appended commits
  std::uint64_t wal_bytes = 0;             ///< bytes across live log segments
  std::uint64_t segments = 0;              ///< live log segment files
  std::uint64_t appends = 0;               ///< commits appended
  std::uint64_t fsyncs = 0;                ///< fsync calls issued
  std::uint64_t compactions = 0;           ///< snapshot + truncate cycles completed
  std::uint64_t replayed_batches = 0;      ///< batches re-applied during recovery
  std::uint64_t replayed_commands = 0;     ///< commands re-applied during recovery
  std::uint64_t skipped_batches = 0;       ///< recovery batches already in the snapshot
  std::uint64_t torn_bytes = 0;            ///< torn-tail bytes truncated by recovery
};

class WalSink {
 public:
  virtual ~WalSink() = default;

  /// Makes `commit` durable.  Called under the instance mutex; may throw on
  /// I/O failure (see the ordering contract above).
  virtual void on_commit(const WalCommit& commit) = 0;

  /// Instance-set change hook: the engine calls this after an instance is
  /// created or erased, so the sink can fold the new fleet shape into its
  /// durable state (the `fhg::wal` manager compacts, guaranteeing no log
  /// segment ever references an instance absent from its base snapshot).
  virtual void on_lifecycle() = 0;

  /// Point-in-time counters (thread-safe).
  [[nodiscard]] virtual WalSinkStats stats() const = 0;
};

}  // namespace fhg::engine
