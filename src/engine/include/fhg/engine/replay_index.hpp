#pragma once

/// \file replay_index.hpp
/// Memoized membership index for *aperiodic* schedules.
///
/// Aperiodic schedulers (phased greedy, first-come-first-grab) cannot be
/// queried arithmetically, so the engine records each node's appearance
/// times as holidays are produced and answers membership / next-gathering by
/// binary search over the recorded prefix — `O(log appearances)` per query,
/// with the schedule replayed at most once no matter how many queries
/// arrive.  The owning `Instance` keeps a `GapTracker` alongside, so
/// fairness audits over the same prefix are free.

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "fhg/graph/graph.hpp"

namespace fhg::engine {

class ReplayIndex {
 public:
  explicit ReplayIndex(graph::NodeId n) : appearances_(n) {}

  /// Records the happy set of holiday `t`; `t` must be `horizon() + 1`.
  void observe(std::uint64_t t, std::span<const graph::NodeId> happy);

  /// Highest holiday recorded so far (0 before the first observe).
  [[nodiscard]] std::uint64_t horizon() const noexcept { return horizon_; }

  /// O(log): true iff `v` was happy at `t`.  Requires `t <= horizon()`.
  [[nodiscard]] bool is_happy(graph::NodeId v, std::uint64_t t) const noexcept;

  /// O(log): the first recorded happy holiday of `v` strictly after `after`,
  /// or nullopt if none has been recorded yet (the caller may extend the
  /// horizon and retry).
  [[nodiscard]] std::optional<std::uint64_t> next_gathering(graph::NodeId v,
                                                            std::uint64_t after) const noexcept;

  /// All recorded appearance times of `v`, ascending.
  [[nodiscard]] std::span<const std::uint64_t> appearances(graph::NodeId v) const noexcept {
    return appearances_[v];
  }

 private:
  std::vector<std::vector<std::uint64_t>> appearances_;
  std::uint64_t horizon_ = 0;
};

}  // namespace fhg::engine
