#pragma once

/// \file spec.hpp
/// Declarative scheduler recipes for the multi-tenant engine.
///
/// The engine never stores a scheduler's internal state in snapshots —
/// it stores the *recipe* (`InstanceSpec`) plus the holiday counter, and
/// rebuilds deterministically on restore.  For the static kinds that works
/// because every scheduler is a pure function of (graph, spec, holiday):
/// colorings are computed by a fixed deterministic algorithm, residue
/// assignments are deterministic, and randomized schedulers derive all
/// randomness from `(seed, holiday)`.
///
/// `kDynamicPrefixCode` tenants deliberately break that invariant: their
/// schedule is a function of (graph, spec, **mutation log**, holiday) — live
/// topology mutations recolor nodes in place, so the recipe alone no longer
/// determines the schedule.  The snapshot layer says so explicitly: its v2
/// format persists each dynamic tenant's mutation log, and restore replays
/// the log (every recolor decision is deterministic given the command order)
/// to land on the identical coloring and slots.

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "fhg/coding/elias.hpp"
#include "fhg/coloring/parallel_jp.hpp"
#include "fhg/core/scheduler.hpp"
#include "fhg/graph/graph.hpp"

namespace fhg::engine {

/// The scheduler families an engine instance can run.
enum class SchedulerKind : std::uint8_t {
  kRoundRobin = 0,         ///< §1 baseline: cycle the color classes
  kPhasedGreedy = 1,       ///< §3: recolor-after-hosting (aperiodic)
  kPrefixCode = 2,         ///< §4: prefix-free-code periodic schedule
  kDegreeBound = 3,        ///< §5: power-of-two residues, period ≤ 2d
  kFirstComeFirstGrab = 4, ///< §1 chaotic baseline (aperiodic, randomized)
  kWeighted = 5,           ///< extension: user-chosen demand periods
  kDynamicPrefixCode = 6,  ///< §6: §4 schedule over a mutable topology
};

/// Human-readable kind name ("round-robin", "phased-greedy", …).
[[nodiscard]] std::string scheduler_kind_name(SchedulerKind kind);

/// Parses a kind name; nullopt for unknown names.
[[nodiscard]] std::optional<SchedulerKind> parse_scheduler_kind(std::string_view name);

/// All kinds, in enum order — for sweeps and name round-trip tests.
[[nodiscard]] const std::vector<SchedulerKind>& all_scheduler_kinds();

/// Default `InstanceSpec::bulk_threshold`: mutation batches of at least this
/// many commands route through the bulk Jones–Plassmann repair.
inline constexpr std::uint32_t kDefaultBulkThreshold = 256;

/// Everything needed to (re)build a scheduler for a given graph.
struct InstanceSpec {
  SchedulerKind kind = SchedulerKind::kPrefixCode;
  /// Prefix-free code family (kPrefixCode and kDynamicPrefixCode).
  coding::CodeFamily code = coding::CodeFamily::kEliasOmega;
  /// Randomness seed (kFirstComeFirstGrab; also the Jones–Plassmann priority
  /// seed for coloring kinds built above `parallel_crossover`).
  std::uint64_t seed = 1;
  /// Deletion slack (kDynamicPrefixCode only): a node recolors after a
  /// divorce once its color exceeds `deg + 1 + slack`.
  std::uint32_t slack = 0;
  /// Node count at or above which coloring-based kinds build their initial
  /// coloring with the parallel Jones–Plassmann pass instead of serial
  /// greedy (0 = always greedy).  Both algorithms are deterministic — the
  /// JP result additionally does not depend on the worker count — so either
  /// way rebuild-from-recipe stays exact; the choice is part of the recipe
  /// because the two algorithms land on different colorings.
  std::uint32_t parallel_crossover = coloring::kDefaultParallelCrossover;
  /// Command count at or above which a mutation batch routes through the
  /// bulk recolor path (kDynamicPrefixCode only; 0 = never bulk).
  std::uint32_t bulk_threshold = kDefaultBulkThreshold;
  /// Requested per-node periods (kWeighted only; must have one entry per
  /// node of the instance's graph).
  std::vector<std::uint64_t> periods;

  friend bool operator==(const InstanceSpec&, const InstanceSpec&) = default;
};

/// How `make_scheduler` built the initial coloring (kinds without a coloring
/// report the default: serial, zero stats).
struct ColoringBuildStats {
  bool parallel = false;   ///< true = parallel Jones–Plassmann, false = greedy
  coloring::JpStats jp;    ///< rounds/conflicts/colored of the JP pass
};

/// Builds the scheduler described by `spec` over `g`.  Colorings are greedy
/// largest-first below `spec.parallel_crossover` nodes and parallel
/// Jones–Plassmann at or above it — both deterministic, so rebuilding from a
/// snapshot reproduces the schedule bit for bit.  Fills `*stats` (when given)
/// with which path built the coloring.  Throws `std::invalid_argument` on a
/// malformed spec (e.g. a weighted spec whose period list does not match the
/// graph).  `g` must outlive the returned scheduler.
[[nodiscard]] std::unique_ptr<core::Scheduler> make_scheduler(const graph::Graph& g,
                                                              const InstanceSpec& spec,
                                                              ColoringBuildStats* stats = nullptr);

}  // namespace fhg::engine
