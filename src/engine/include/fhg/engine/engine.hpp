#pragma once

/// \file engine.hpp
/// The multi-tenant scheduling engine: the library's serving layer.
///
/// One `Engine` owns a sharded `InstanceRegistry` of named scheduler
/// instances, a thread pool, and a `BatchExecutor` that advances all of them
/// concurrently.  Queries route through each instance's fast path — O(1)
/// period-table arithmetic for perfectly periodic schedules (the paper's
/// punchline made operational: a served schedule never has to be replayed),
/// memoized replay otherwise.  `snapshot`/`load_snapshot` round-trip the
/// whole tenancy through the Elias-coded wire format so engines survive
/// restarts and state can be shipped between processes.
///
/// ```
/// fhg::engine::Engine engine;
/// engine.create_instance("acme", fhg::graph::gnp(500, 0.02, 1),
///                        {.kind = fhg::engine::SchedulerKind::kDegreeBound});
/// engine.step_all(1024);
/// bool happy = engine.is_happy("acme", 7, 123456789);   // O(1), no replay
/// auto bytes = engine.snapshot();                        // compact, canonical
/// ```

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "fhg/api/status.hpp"
#include "fhg/engine/executor.hpp"
#include "fhg/engine/instance.hpp"
#include "fhg/engine/query_batch.hpp"
#include "fhg/engine/registry.hpp"
#include "fhg/engine/snapshot.hpp"
#include "fhg/engine/spec.hpp"
#include "fhg/engine/wal_sink.hpp"
#include "fhg/obs/registry.hpp"
#include "fhg/parallel/thread_pool.hpp"

namespace fhg::engine {

/// Construction-time sizing of an `Engine`.
struct EngineOptions {
  std::size_t shards = 16;   ///< registry shard count
  std::size_t threads = 0;   ///< worker threads (0 = hardware concurrency)
};

/// The multi-tenant serving engine: a sharded registry of named scheduler
/// instances, a worker pool advancing them in parallel, and the lock-free
/// batched query pipeline.  Thread-safe throughout; see the member docs for
/// the exact contract of each path.  The asynchronous front-end
/// (`fhg::service::Service`) layers request queues and coalescing on top of
/// this class without the engine knowing about it.
class Engine {
 public:
  /// Builds an empty engine: `options.shards` registry shards and a pool of
  /// `options.threads` workers (0 means hardware concurrency).
  explicit Engine(EngineOptions options = {});

  Engine(const Engine&) = delete;             ///< non-copyable (owns threads)
  Engine& operator=(const Engine&) = delete;  ///< non-assignable

  /// The options the engine was built with.
  [[nodiscard]] const EngineOptions& options() const noexcept { return options_; }

  /// The underlying sharded instance registry.
  [[nodiscard]] InstanceRegistry& registry() noexcept { return registry_; }
  /// Const view of the underlying sharded instance registry.
  [[nodiscard]] const InstanceRegistry& registry() const noexcept { return registry_; }

  /// Creates a named instance with a typed verdict instead of an exception:
  /// `kInvalidArgument` for a malformed spec, `kAlreadyExists` for a taken
  /// name.  On success `*created` (when non-null) receives the new instance.
  api::Status try_create_instance(std::string name, graph::Graph g, InstanceSpec spec,
                                  std::shared_ptr<Instance>* created = nullptr);

  /// Creates a named instance.  Thin shim over `try_create_instance` kept
  /// for construction-time call sites that treat failure as fatal: throws
  /// `std::invalid_argument` on duplicate names or malformed specs.
  std::shared_ptr<Instance> create_instance(std::string name, graph::Graph g, InstanceSpec spec);

  /// Looks up an instance; nullptr if absent.
  [[nodiscard]] std::shared_ptr<Instance> find(std::string_view name) const {
    return registry_.find(name);
  }

  /// Removes an instance.  `kNotFound` when no such tenant exists; in-flight
  /// queries holding the instance finish safely either way.
  api::Status erase_instance(std::string_view name);

  /// Number of registered instances (a racing snapshot; see
  /// `InstanceRegistry::size`).
  [[nodiscard]] std::size_t num_instances() const { return registry_.size(); }

  /// Advances every instance by `n` holidays on the worker pool.
  StepStats step_all(std::uint64_t n) { return executor_.step_all(n); }

  /// Membership query on one instance.  Throws `std::out_of_range` for an
  /// unknown instance name.
  [[nodiscard]] bool is_happy(std::string_view instance, graph::NodeId v, std::uint64_t t);

  /// First happy holiday of `v` strictly after `after` on one instance.
  [[nodiscard]] std::optional<std::uint64_t> next_gathering(std::string_view instance,
                                                            graph::NodeId v, std::uint64_t after);

  /// Fairness audit of one instance.
  [[nodiscard]] FairnessAudit audit(std::string_view instance);

  /// Applies a batch of live topology mutations to a dynamic tenant
  /// (`SchedulerKind::kDynamicPrefixCode`): edges appear/dissolve and nodes
  /// join *in place*, recoloring per §6 instead of erasing and recreating
  /// the tenant.  The instance republishes its period table at a new version
  /// and, when anything actually changed, the registry epoch moves so the
  /// next `query_snapshot()` call rebuilds the lock-free view — snapshots
  /// taken earlier keep answering at their own (older) schedule version.
  /// Throws `std::out_of_range` for an unknown instance, `std::logic_error`
  /// for a non-dynamic one.
  MutationResult apply_mutations(std::string_view instance,
                                 std::span<const dynamic::MutationCommand> commands);

  /// WAL-recovery entry point: re-applies one durable batch to a (typically
  /// just-restored) tenant through the routing path its record names,
  /// keeping the persisted holiday stamps.  Moves the registry epoch and
  /// records the same mutation telemetry as `apply_mutations`, but never
  /// calls the attached sink — the batch is already durable.  Throws
  /// `std::out_of_range` for an unknown instance, `std::logic_error` for a
  /// non-dynamic one, `std::runtime_error` on log/state divergence.
  MutationResult wal_replay_batch(std::string_view instance,
                                  std::span<const dynamic::MutationCommand> commands,
                                  dynamic::BatchRecord record);

  /// Attaches (or, with nullptr, detaches) the durability sink every
  /// subsequent committed mutation batch is handed to before it becomes
  /// visible.  The sink must outlive the engine or a later `attach_wal`
  /// call; attach *after* recovery has replayed the existing log.  Not a
  /// synchronization point — don't race attachment against in-flight
  /// mutation batches.
  void attach_wal(WalSink* sink) noexcept { wal_.store(sink, std::memory_order_release); }

  /// The attached durability sink, or nullptr (the default).
  [[nodiscard]] WalSink* wal_sink() const noexcept {
    return wal_.load(std::memory_order_acquire);
  }

  /// The current lock-free query view: an immutable snapshot of the fleet,
  /// rebuilt only when instances have been created or erased since the last
  /// call.  After warm-up this is one atomic load + one epoch check.  The
  /// returned snapshot stays valid (and answers consistently) however the
  /// registry changes afterwards — resolve probe ids and run batches against
  /// the same snapshot.
  [[nodiscard]] std::shared_ptr<const QuerySnapshot> query_snapshot();

  /// Batched membership: `result[i] = is_happy` for each (instance, family,
  /// holiday) probe, answered against the *current* snapshot with
  /// sorted-access locality.  Probe instance ids are snapshot indices
  /// (`QuerySnapshot::id_of`) — only valid here while no create/erase has
  /// intervened since they were resolved.  If membership can change
  /// concurrently, hold the snapshot you resolved against and call its
  /// `query_batch` directly; ids minted from a stale snapshot would
  /// otherwise silently rebind to different tenants.
  [[nodiscard]] std::vector<std::uint8_t> query_batch(std::span<const Probe> probes);

  /// Batched next-gathering: `result[i]` is the first happy holiday strictly
  /// after `probes[i].holiday`, or `kNoGathering` when an aperiodic search
  /// gives up.  Same snapshot-validity contract as `query_batch`.
  [[nodiscard]] std::vector<std::uint64_t> next_gathering_batch(std::span<const Probe> probes);

  /// Serializes every instance into the canonical Elias-coded format.
  [[nodiscard]] std::vector<std::uint8_t> snapshot() const;

  /// Replaces all instances with the snapshot's contents.
  void load_snapshot(std::span<const std::uint8_t> bytes);

  /// Serializes one named tenant as a count-1 snapshot stream — the unit the
  /// cluster router ships when migrating an instance between backends.
  /// `kNotFound` when no such tenant exists; on success `out` holds the
  /// blob.
  api::Status snapshot_instance(std::string_view instance, std::vector<std::uint8_t>& out) const;

  /// Adopts the single tenant of a count-1 snapshot stream, replacing any
  /// same-named one — the receiving half of an instance migration.  When
  /// `expect_name` is non-empty the snapshot's tenant must carry that name
  /// (`kInvalidArgument` otherwise); `kInvalidArgument` also covers a
  /// malformed stream.  On success `*replaced` (when non-null) reports
  /// whether an existing tenant was displaced.
  api::Status adopt_instance(std::span<const std::uint8_t> bytes, std::string_view expect_name,
                             bool* replaced = nullptr);

  /// The engine's telemetry registry (`fhg_engine_*` counters, gauges and
  /// timing histograms).  Per-engine rather than process-global, so twin
  /// engines fed identical workloads produce identical counter snapshots —
  /// the property the GetStats transport-equivalence tests rest on.  The
  /// service layer registers its per-shard metrics here too, making this
  /// registry the one scrape domain `GetStats` serves.
  [[nodiscard]] obs::Registry& metrics() noexcept { return metrics_; }

  /// Recomputes the fleet-shape gauges (`fhg_engine_instances`,
  /// `fhg_engine_nodes`, `fhg_engine_table_versions`) from the registry.
  /// Called by stats serving just before a snapshot; cheap (one pass over
  /// the instance list), so scraping pays for freshness, not the hot path.
  void refresh_gauges();

 private:
  [[nodiscard]] std::shared_ptr<Instance> require(std::string_view instance) const;

  /// Cached registry handles: registered once at construction, recorded via
  /// relaxed atomics on the serving paths.  Reference members, so const
  /// paths (e.g. `snapshot()`) can record without the registry being
  /// mutable.
  struct Telemetry {
    explicit Telemetry(obs::Registry& registry);
    obs::Counter& queries;            ///< single-call is_happy / next_gathering
    obs::Counter& batches;            ///< batched query kernel invocations
    obs::Counter& batch_probes;       ///< probes answered by batch kernels
    obs::Counter& mutation_batches;   ///< apply_mutations calls
    obs::Counter& mutation_commands;  ///< commands across those calls
    obs::Counter& recolors;           ///< recolor events mutations forced
    obs::Counter& bulk_batches;       ///< mutation batches on the bulk path
    obs::Counter& inplace_batches;    ///< mutation batches on the per-command path
    obs::Counter& parallel_rounds;    ///< Jones–Plassmann rounds (builds + bulk repairs)
    obs::Counter& coloring_conflicts; ///< JP proposals lost to a higher priority
    obs::Counter& builds_parallel;    ///< instance colorings built by the JP pass
    obs::Counter& builds_serial;      ///< instance colorings built serial-greedy
    obs::Counter& instances_created;  ///< successful creates
    obs::Counter& instances_erased;   ///< successful erases
    obs::Counter& snapshots;          ///< snapshot() calls
    obs::Counter& snapshot_bytes;     ///< bytes across those snapshots
    obs::Counter& restores;           ///< load_snapshot() calls
    obs::Counter& instance_snapshots; ///< snapshot_instance() successes
    obs::Counter& adoptions;          ///< adopt_instance() successes
    obs::HistogramCell& query_batch_us;  ///< batch kernel wall time (µs)
    obs::HistogramCell& mutation_us;     ///< apply_mutations wall time (µs)
    obs::Gauge& instances;               ///< live tenant count (refresh_gauges)
    obs::Gauge& nodes;                   ///< total nodes across tenants
    obs::Gauge& table_versions;          ///< summed period-table versions
    obs::Gauge& last_snapshot_bytes;     ///< size of the latest snapshot
  };

  /// Attached durability sink (nullptr = durability off).  Atomic so the
  /// mutation path pays one acquire load, not a lock.
  std::atomic<WalSink*> wal_{nullptr};
  EngineOptions options_;
  obs::Registry metrics_;  ///< must precede telemetry_ (handles point into it)
  Telemetry telemetry_;
  parallel::ThreadPool pool_;
  InstanceRegistry registry_;
  BatchExecutor executor_;
  /// Published query view (epoch/seqlock style): readers do a lock-free
  /// atomic load; the rebuild after a membership change is serialized by
  /// `view_mutex_` and re-validated against the registry epoch.
  std::atomic<std::shared_ptr<const QuerySnapshot>> view_{nullptr};
  std::mutex view_mutex_;
};

}  // namespace fhg::engine
