#pragma once

/// \file executor.hpp
/// Batched, work-stealing advancement of every instance in a registry.
///
/// `step_all(n)` advances each registered instance by `n` holidays using the
/// shared thread pool.  Work distribution is *stealing over shards*: worker
/// `w` starts draining shard `w mod S` (so workers begin on disjoint shards)
/// and claims instances through a per-shard atomic cursor; when its shard
/// runs dry it moves to the next, so a shard of heavyweight instances is
/// finished cooperatively instead of pinning one thread.  Instance evolution
/// is deterministic regardless of which worker steps it (schedulers draw
/// randomness only from their own seeded streams), so `step_all` commutes
/// with sequential stepping — tested property, not an accident.

#include <cstdint>

#include "fhg/engine/registry.hpp"
#include "fhg/parallel/thread_pool.hpp"

namespace fhg::engine {

/// Aggregate of one `step_all` sweep.
struct StepStats {
  std::uint64_t instances = 0;    ///< instances advanced
  std::uint64_t holidays = 0;     ///< Σ holidays advanced (instances × n)
  std::uint64_t total_happy = 0;  ///< Σ |happy set| across all of them
};

class BatchExecutor {
 public:
  /// Both `registry` and `pool` must outlive the executor.
  BatchExecutor(InstanceRegistry& registry, parallel::ThreadPool& pool) noexcept
      : registry_(&registry), pool_(&pool) {}

  /// Advances every instance by `n` holidays; blocks until the sweep is
  /// complete.  Safe to call while queries are in flight (instances
  /// serialize internally).
  StepStats step_all(std::uint64_t n);

 private:
  InstanceRegistry* registry_;
  parallel::ThreadPool* pool_;
};

}  // namespace fhg::engine
