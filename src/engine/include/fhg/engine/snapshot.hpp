#pragma once

/// \file snapshot.hpp
/// Compact engine snapshots built on the `fhg::coding` Elias layer.
///
/// A snapshot stores, per instance, the *recipe* rather than raw scheduler
/// state: name, `InstanceSpec`, the conflict graph (delta-encoded edge
/// list), and the holiday counter.  Every integer is written as the Elias
/// delta code of `value + 1` — the same universal code the §4 scheduler is
/// built from, now earning its keep as a wire format: small values (the
/// overwhelming majority: edge deltas, kinds, counts) cost a handful of
/// bits.  Restore rebuilds each scheduler deterministically and fast-forwards
/// it: O(1) counter skip for periodic instances, exact replay (including gap
/// statistics and the replay index) for aperiodic ones.
///
/// **v2** extends the recipe with each tenant's *mutation log*: dynamic
/// tenants are not pure functions of (graph, spec, holiday) — their schedule
/// also depends on every topology mutation applied so far — so v2 persists
/// the log (op, holiday stamp delta-coded, endpoints) and restore replays it
/// command by command, landing on the identical coloring and slots before
/// fast-forwarding.  v1 snapshots still load (version dispatch); writing v1
/// is only possible for tenancies without dynamic instances.
///
/// The encoding is canonical — instances sorted by name, edges sorted
/// lexicographically, logs in apply order — so snapshot → restore → snapshot
/// is byte-identical, including mid-log.

#include <cstdint>
#include <span>
#include <vector>

#include "fhg/coding/elias.hpp"
#include "fhg/engine/registry.hpp"

namespace fhg::engine {

/// Packs bits MSB-first into bytes; integers as Elias delta of `value + 1`.
class BitWriter {
 public:
  void put_bit(bool b);
  /// The low `width` bits of `v`, MSB first.
  void put_bits(std::uint64_t v, std::uint32_t width);
  /// Elias delta of `v + 1` (any `v < 2^64 - 1`).
  void put_uint(std::uint64_t v);
  /// Zero-pads to a byte boundary and returns the buffer.
  [[nodiscard]] std::vector<std::uint8_t> finish();

 private:
  std::vector<std::uint8_t> bytes_;
  std::uint32_t bit_pos_ = 0;  ///< bits used in the last byte (0 = full)
};

/// Mirror of `BitWriter`.  Throws `std::runtime_error` on truncated input.
class BitReader {
 public:
  explicit BitReader(std::span<const std::uint8_t> bytes) noexcept : bytes_(bytes) {}

  [[nodiscard]] bool get_bit();
  [[nodiscard]] std::uint64_t get_bits(std::uint32_t width);
  [[nodiscard]] std::uint64_t get_uint();

  /// Bits left to read — used to sanity-check decoded length fields before
  /// allocating (a corrupt count can't claim more items than bits remain).
  [[nodiscard]] std::uint64_t remaining_bits() const noexcept {
    return bytes_.size() * 8 - next_bit_;
  }

 private:
  std::span<const std::uint8_t> bytes_;
  std::size_t next_bit_ = 0;
};

/// Wire-format versions.  v1: recipe + holiday only.  v2 (current): adds the
/// per-instance mutation log and the `slack` spec field.
inline constexpr std::uint64_t kSnapshotVersionV1 = 1;
inline constexpr std::uint64_t kSnapshotVersionLatest = 2;

/// Serializes every instance of `registry` (names, specs, graphs, holiday
/// counters, and — in v2 — mutation logs) into a canonical byte string.
/// Throws `std::invalid_argument` when `version` is unknown, or when v1 is
/// requested for a tenancy containing dynamic instances (v1 cannot carry a
/// mutation log).
[[nodiscard]] std::vector<std::uint8_t> snapshot_registry(
    const InstanceRegistry& registry, std::uint64_t version = kSnapshotVersionLatest);

/// Clears `registry` and repopulates it from `bytes`, fast-forwarding each
/// instance to its snapshotted holiday.  Throws `std::runtime_error` on a
/// malformed snapshot.
void restore_registry(InstanceRegistry& registry, std::span<const std::uint8_t> bytes);

}  // namespace fhg::engine
