#pragma once

/// \file snapshot.hpp
/// Compact engine snapshots built on the `fhg::coding` Elias layer.
///
/// A snapshot stores, per instance, the *recipe* rather than raw scheduler
/// state: name, `InstanceSpec`, the conflict graph (delta-encoded edge
/// list), and the holiday counter.  Every integer is written as the Elias
/// delta code of `value + 1` — the same universal code the §4 scheduler is
/// built from, now earning its keep as a wire format: small values (the
/// overwhelming majority: edge deltas, kinds, counts) cost a handful of
/// bits.  Restore rebuilds each scheduler deterministically and fast-forwards
/// it: O(1) counter skip for periodic instances, exact replay (including gap
/// statistics and the replay index) for aperiodic ones.
///
/// **v2** extends the recipe with each tenant's *mutation log*: dynamic
/// tenants are not pure functions of (graph, spec, holiday) — their schedule
/// also depends on every topology mutation applied so far — so v2 persists
/// the log (op, holiday stamp delta-coded, endpoints) and restore replays it
/// command by command, landing on the identical coloring and slots before
/// fast-forwarding.  v1 snapshots still load (version dispatch); writing v1
/// is only possible for tenancies without dynamic instances.
///
/// The encoding is canonical — instances sorted by name, edges sorted
/// lexicographically, logs in apply order — so snapshot → restore → snapshot
/// is byte-identical, including mid-log.

#include <cstdint>
#include <span>
#include <vector>

#include "fhg/coding/bitio.hpp"
#include "fhg/coding/elias.hpp"
#include "fhg/engine/registry.hpp"

namespace fhg::engine {

/// The snapshot bit stream (lives in `fhg::coding` now; the `fhg::api` wire
/// codec shares it).  Kept as aliases for source compatibility.
using BitWriter = coding::BitWriter;
/// Mirror of `BitWriter`; see `fhg::coding::BitReader`.
using BitReader = coding::BitReader;

/// Wire-format versions.  v1: recipe + holiday only.  v2 (current): adds the
/// per-instance mutation log and the `slack` spec field.
inline constexpr std::uint64_t kSnapshotVersionV1 = 1;
inline constexpr std::uint64_t kSnapshotVersionLatest = 2;

/// Serializes every instance of `registry` (names, specs, graphs, holiday
/// counters, and — in v2 — mutation logs) into a canonical byte string.
/// Throws `std::invalid_argument` when `version` is unknown, or when v1 is
/// requested for a tenancy containing dynamic instances (v1 cannot carry a
/// mutation log).
[[nodiscard]] std::vector<std::uint8_t> snapshot_registry(
    const InstanceRegistry& registry, std::uint64_t version = kSnapshotVersionLatest);

/// Clears `registry` and repopulates it from `bytes`, fast-forwarding each
/// instance to its snapshotted holiday.  Throws `std::runtime_error` on a
/// malformed snapshot.
void restore_registry(InstanceRegistry& registry, std::span<const std::uint8_t> bytes);

}  // namespace fhg::engine
