#pragma once

/// \file snapshot.hpp
/// Compact engine snapshots built on the `fhg::coding` Elias layer.
///
/// A snapshot stores, per instance, the *recipe* rather than raw scheduler
/// state: name, `InstanceSpec`, the conflict graph (delta-encoded edge
/// list), and the holiday counter.  Every integer is written as the Elias
/// delta code of `value + 1` — the same universal code the §4 scheduler is
/// built from, now earning its keep as a wire format: small values (the
/// overwhelming majority: edge deltas, kinds, counts) cost a handful of
/// bits.  Restore rebuilds each scheduler deterministically and fast-forwards
/// it: O(1) counter skip for periodic instances, exact replay (including gap
/// statistics and the replay index) for aperiodic ones.
///
/// **v2** extends the recipe with each tenant's *mutation log*: dynamic
/// tenants are not pure functions of (graph, spec, holiday) — their schedule
/// also depends on every topology mutation applied so far — so v2 persists
/// the log (op, holiday stamp delta-coded, endpoints) and restore replays it
/// command by command, landing on the identical coloring and slots before
/// fast-forwarding.  v1 snapshots still load (version dispatch); writing v1
/// is only possible for tenancies without dynamic instances.
///
/// **v3** adds the parallel-coloring recipe knobs (`parallel_crossover`,
/// `bulk_threshold`) and each log's *batch segmentation*: once large batches
/// can take the bulk Jones–Plassmann path — whose repair policy deliberately
/// differs from per-command recoloring — the log alone no longer determines
/// the coloring, so v3 records per batch how many commands it applied and
/// which path it took, and restore replays each segment through the recorded
/// path.  v1/v2 snapshots still load (fields default to 0 = serial greedy,
/// per-command replay — exactly how those tenants were built); writing v2 is
/// only possible when no instance used the parallel builder or a bulk batch.
///
/// The encoding is canonical — instances sorted by name, edges sorted
/// lexicographically, logs in apply order — so snapshot → restore → snapshot
/// is byte-identical, including mid-log.

#include <cstdint>
#include <span>
#include <vector>

#include "fhg/coding/bitio.hpp"
#include "fhg/coding/elias.hpp"
#include "fhg/engine/registry.hpp"

namespace fhg::engine {

/// The snapshot bit stream (lives in `fhg::coding` now; the `fhg::api` wire
/// codec shares it).  Kept as aliases for source compatibility.
using BitWriter = coding::BitWriter;
/// Mirror of `BitWriter`; see `fhg::coding::BitReader`.
using BitReader = coding::BitReader;

/// Wire-format versions.  v1: recipe + holiday only.  v2: adds the
/// per-instance mutation log and the `slack` spec field.  v3 (current): adds
/// the parallel-coloring spec fields and the log's batch segmentation.
inline constexpr std::uint64_t kSnapshotVersionV1 = 1;
inline constexpr std::uint64_t kSnapshotVersionV2 = 2;
inline constexpr std::uint64_t kSnapshotVersionLatest = 3;

/// Serializes every instance of `registry` (names, specs, graphs, holiday
/// counters, and — from v2 — mutation logs, from v3 batch records) into a
/// canonical byte string.  Throws `std::invalid_argument` when `version` is
/// unknown, when v1 is requested for a tenancy containing dynamic instances
/// (v1 cannot carry a mutation log), or when v2 is requested for a tenancy
/// where some instance built its coloring with the parallel pass or applied
/// a bulk batch (v2 cannot carry the fields a faithful rebuild needs).
[[nodiscard]] std::vector<std::uint8_t> snapshot_registry(
    const InstanceRegistry& registry, std::uint64_t version = kSnapshotVersionLatest);

/// Clears `registry` and repopulates it from `bytes`, fast-forwarding each
/// instance to its snapshotted holiday.  Throws `std::runtime_error` on a
/// malformed snapshot.
void restore_registry(InstanceRegistry& registry, std::span<const std::uint8_t> bytes);

/// Serializes a single instance as a count-1 snapshot stream — the migration
/// unit the cluster router ships between backends.  The bytes are a regular
/// snapshot (same magic/version/count header), so `restore_registry` loads
/// them too.  Throws `std::invalid_argument` under the same downgrade rules
/// as `snapshot_registry`.
[[nodiscard]] std::vector<std::uint8_t> snapshot_instance(
    const Instance& instance, std::uint64_t version = kSnapshotVersionLatest);

/// Rebuilds the one instance of a count-1 snapshot stream: parse, construct
/// the recipe state, replay the mutation log, fast-forward.  Throws
/// `std::runtime_error` when `bytes` is malformed or holds more than one
/// instance.
[[nodiscard]] std::shared_ptr<Instance> restore_instance(std::span<const std::uint8_t> bytes);

}  // namespace fhg::engine
