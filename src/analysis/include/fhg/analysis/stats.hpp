#pragma once

/// \file stats.hpp
/// Small descriptive-statistics helpers used by the experiment tables.

#include <cstdint>
#include <span>
#include <vector>

namespace fhg::analysis {

/// Five-number-plus summary of a sample.
struct Summary {
  std::size_t count = 0;
  double min = 0.0;
  double max = 0.0;
  double mean = 0.0;
  double median = 0.0;
  double p95 = 0.0;
  double stddev = 0.0;
};

/// Computes a summary (empty input yields all zeros).
[[nodiscard]] Summary summarize(std::span<const double> values);

/// Convenience overload for integer samples.
[[nodiscard]] Summary summarize(std::span<const std::uint64_t> values);

/// `q`-th quantile (0 ≤ q ≤ 1) by linear interpolation on the sorted sample.
[[nodiscard]] double quantile(std::vector<double> values, double q);

/// Groups `values[i]` by `keys[i]` and returns, for each distinct key in
/// ascending order, `(key, max over group, mean over group, count)` —
/// the shape of every per-degree table in the experiments.
struct GroupRow {
  std::uint64_t key = 0;
  double max = 0.0;
  double mean = 0.0;
  std::size_t count = 0;
};
[[nodiscard]] std::vector<GroupRow> group_stats(std::span<const std::uint64_t> keys,
                                                std::span<const double> values);

}  // namespace fhg::analysis
