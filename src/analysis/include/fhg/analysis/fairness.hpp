#pragma once

/// \file fairness.hpp
/// Fairness metrics for gathering schedules.
///
/// The paper's fairness landmark (§1): under first-come-first-grab every
/// parent is happy with probability `1/(deg+1)` per holiday, so a schedule
/// is "fair" when node `v`'s happiness *frequency* is proportional to
/// `1/(deg(v)+1)`.  We report Jain's fairness index over the normalized
/// frequencies (1 = perfectly proportional; 1/n = maximally lopsided) plus
/// the throughput ratio against the `Σ 1/(d+1)` Caro–Wei landmark.

#include <cstdint>
#include <span>

#include "fhg/graph/graph.hpp"

namespace fhg::analysis {

/// Jain's index `(Σx)² / (n·Σx²)` over `x_v = freq_v · (deg_v + 1)` where
/// `freq_v = appearances_v / horizon`.
[[nodiscard]] double jain_fairness(const graph::Graph& g,
                                   std::span<const std::uint64_t> appearances,
                                   std::uint64_t horizon);

/// Mean happy-set size divided by the Caro–Wei bound `Σ 1/(d+1)` — ≥ 1 means
/// the schedule beats the chaotic baseline's expected throughput.
[[nodiscard]] double throughput_ratio(const graph::Graph& g,
                                      std::span<const std::uint64_t> appearances,
                                      std::uint64_t horizon);

}  // namespace fhg::analysis
