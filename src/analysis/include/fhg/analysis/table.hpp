#pragma once

/// \file table.hpp
/// Paper-style ASCII tables for the benchmark binaries.
///
/// Every experiment prints its results through this writer so that
/// `bench_output.txt` has one consistent, diff-able format:
///
/// ```
/// | degree | nodes | max gap | bound 2d | ok |
/// |--------|-------|---------|----------|----|
/// |      1 |   312 |       2 |        2 | Y  |
/// ```

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace fhg::analysis {

class Table {
 public:
  /// Creates a table with the given column headers.
  explicit Table(std::vector<std::string> headers);

  /// Starts a new row; values are appended with `add`.
  Table& row();

  /// Appends a cell to the current row.
  Table& add(const std::string& value);
  Table& add(const char* value);
  Table& add(std::uint64_t value);
  Table& add(std::int64_t value);
  Table& add(double value, int precision = 3);
  Table& add(bool value);  ///< renders Y / N

  /// Renders the table with aligned columns (numbers right-aligned).
  void print(std::ostream& out) const;

  [[nodiscard]] std::size_t rows() const noexcept { return cells_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> cells_;
};

/// Prints a `### title` section heading (and a blank line) before a table.
void print_section(std::ostream& out, const std::string& title);

}  // namespace fhg::analysis
