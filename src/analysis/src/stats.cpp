#include "fhg/analysis/stats.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <stdexcept>

namespace fhg::analysis {

Summary summarize(std::span<const double> values) {
  Summary s;
  s.count = values.size();
  if (values.empty()) {
    return s;
  }
  std::vector<double> sorted(values.begin(), values.end());
  std::sort(sorted.begin(), sorted.end());
  s.min = sorted.front();
  s.max = sorted.back();
  double total = 0.0;
  for (const double v : sorted) {
    total += v;
  }
  s.mean = total / static_cast<double>(s.count);
  s.median = quantile(sorted, 0.5);
  s.p95 = quantile(sorted, 0.95);
  double ss = 0.0;
  for (const double v : sorted) {
    ss += (v - s.mean) * (v - s.mean);
  }
  s.stddev = std::sqrt(ss / static_cast<double>(s.count));
  return s;
}

Summary summarize(std::span<const std::uint64_t> values) {
  std::vector<double> as_double(values.begin(), values.end());
  return summarize(as_double);
}

double quantile(std::vector<double> values, double q) {
  if (values.empty()) {
    throw std::invalid_argument("quantile: empty sample");
  }
  if (q < 0.0 || q > 1.0) {
    throw std::invalid_argument("quantile: q must be in [0,1]");
  }
  std::sort(values.begin(), values.end());
  const double pos = q * static_cast<double>(values.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, values.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return values[lo] * (1.0 - frac) + values[hi] * frac;
}

std::vector<GroupRow> group_stats(std::span<const std::uint64_t> keys,
                                  std::span<const double> values) {
  if (keys.size() != values.size()) {
    throw std::invalid_argument("group_stats: keys/values size mismatch");
  }
  std::map<std::uint64_t, GroupRow> groups;
  for (std::size_t i = 0; i < keys.size(); ++i) {
    GroupRow& row = groups[keys[i]];
    row.key = keys[i];
    row.max = row.count == 0 ? values[i] : std::max(row.max, values[i]);
    row.mean += values[i];  // running sum; divided below
    ++row.count;
  }
  std::vector<GroupRow> result;
  result.reserve(groups.size());
  for (auto& [key, row] : groups) {
    row.mean /= static_cast<double>(row.count);
    result.push_back(row);
  }
  return result;
}

}  // namespace fhg::analysis
