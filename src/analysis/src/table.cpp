#include "fhg/analysis/table.hpp"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace fhg::analysis {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  if (headers_.empty()) {
    throw std::invalid_argument("Table: at least one column required");
  }
}

Table& Table::row() {
  cells_.emplace_back();
  cells_.back().reserve(headers_.size());
  return *this;
}

Table& Table::add(const std::string& value) {
  if (cells_.empty()) {
    throw std::logic_error("Table::add: call row() first");
  }
  cells_.back().push_back(value);
  return *this;
}

Table& Table::add(const char* value) { return add(std::string(value)); }

Table& Table::add(std::uint64_t value) { return add(std::to_string(value)); }

Table& Table::add(std::int64_t value) { return add(std::to_string(value)); }

Table& Table::add(double value, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << value;
  return add(os.str());
}

Table& Table::add(bool value) { return add(std::string(value ? "Y" : "N")); }

void Table::print(std::ostream& out) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& row : cells_) {
    for (std::size_t c = 0; c < row.size() && c < widths.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  const auto is_numeric = [](const std::string& s) {
    if (s.empty()) {
      return false;
    }
    return s.find_first_not_of("0123456789+-.eE") == std::string::npos;
  };
  const auto emit_row = [&](const std::vector<std::string>& row) {
    out << '|';
    for (std::size_t c = 0; c < widths.size(); ++c) {
      const std::string cell = c < row.size() ? row[c] : std::string{};
      out << ' ';
      if (is_numeric(cell)) {
        out << std::setw(static_cast<int>(widths[c])) << std::right << cell;
      } else {
        out << std::setw(static_cast<int>(widths[c])) << std::left << cell;
      }
      out << " |";
    }
    out << '\n';
  };
  emit_row(headers_);
  out << '|';
  for (const std::size_t w : widths) {
    out << std::string(w + 2, '-') << '|';
  }
  out << '\n';
  for (const auto& row : cells_) {
    emit_row(row);
  }
}

void print_section(std::ostream& out, const std::string& title) {
  out << "\n### " << title << "\n\n";
}

}  // namespace fhg::analysis
