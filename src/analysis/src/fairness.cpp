#include "fhg/analysis/fairness.hpp"

#include <stdexcept>

namespace fhg::analysis {

double jain_fairness(const graph::Graph& g, std::span<const std::uint64_t> appearances,
                     std::uint64_t horizon) {
  const graph::NodeId n = g.num_nodes();
  if (appearances.size() != n) {
    throw std::invalid_argument("jain_fairness: one appearance count per node required");
  }
  if (n == 0 || horizon == 0) {
    return 1.0;
  }
  double sum = 0.0;
  double sum_sq = 0.0;
  for (graph::NodeId v = 0; v < n; ++v) {
    const double freq = static_cast<double>(appearances[v]) / static_cast<double>(horizon);
    const double x = freq * (static_cast<double>(g.degree(v)) + 1.0);
    sum += x;
    sum_sq += x * x;
  }
  if (sum_sq == 0.0) {
    return 0.0;
  }
  return (sum * sum) / (static_cast<double>(n) * sum_sq);
}

double throughput_ratio(const graph::Graph& g, std::span<const std::uint64_t> appearances,
                        std::uint64_t horizon) {
  const graph::NodeId n = g.num_nodes();
  if (appearances.size() != n) {
    throw std::invalid_argument("throughput_ratio: one appearance count per node required");
  }
  if (horizon == 0) {
    return 0.0;
  }
  double caro_wei = 0.0;
  for (graph::NodeId v = 0; v < n; ++v) {
    caro_wei += 1.0 / (static_cast<double>(g.degree(v)) + 1.0);
  }
  if (caro_wei == 0.0) {
    return 0.0;
  }
  double total = 0.0;
  for (const std::uint64_t a : appearances) {
    total += static_cast<double>(a);
  }
  return (total / static_cast<double>(horizon)) / caro_wei;
}

}  // namespace fhg::analysis
