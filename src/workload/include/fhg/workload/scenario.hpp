#pragma once

/// \file scenario.hpp
/// Declarative workload scenarios for the serving layer.
///
/// A `ScenarioSpec` names a structured instance family (the graph topology
/// every tenant runs on), a fleet size, a query mix, and a churn rate — the
/// knobs that fair-periodic-assignment evaluations sweep.  The
/// `ScenarioGenerator` expands a spec deterministically: tenant `i`'s graph,
/// scheduler recipe, every probe of every query round, and every churn
/// decision are pure functions of `(spec, i)`, so the engine, the
/// `engine_server` example, and the benchmarks all consume *identical*
/// workloads for a given spec, regardless of thread count or call order.
/// `fingerprint()` serializes the whole expansion so determinism is
/// byte-checkable in tests.
///
/// Scenario strings give the spec a one-line form shared by CLI flags and
/// bench labels: `family:key=value,...`, e.g.
/// `power-law:fleet=1000,nodes=48,seed=7,churn=0.05,next=0.125`.

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "fhg/api/protocol.hpp"
#include "fhg/dynamic/mutation.hpp"
#include "fhg/engine/engine.hpp"
#include "fhg/engine/query_batch.hpp"
#include "fhg/engine/spec.hpp"
#include "fhg/graph/graph.hpp"

namespace fhg::workload {

/// The structured conflict-graph families a scenario can run on.
enum class GraphFamily : std::uint8_t {
  kRing = 0,             ///< cycle C_n: bounded degree 2, long diameter
  kGrid = 1,             ///< 2-D grid: planar radio-interference topology
  kPowerLaw = 2,         ///< Barabási–Albert: heavy-tailed degrees
  kRandomGeometric = 3,  ///< unit-square disc graph: clustered interference
  kGnp = 4,              ///< Erdős–Rényi: the unstructured control
};

/// Human-readable family name ("ring", "grid", "power-law", …).
[[nodiscard]] std::string graph_family_name(GraphFamily family);

/// Parses a family name; nullopt for unknown names.
[[nodiscard]] std::optional<GraphFamily> parse_graph_family(std::string_view name);

/// All families, in enum order — for sweeps over the whole catalogue.
[[nodiscard]] const std::vector<GraphFamily>& all_graph_families();

/// How a query round splits between probe types.
struct QueryMix {
  /// Fraction of probes answered as `next_gathering` (the rest are
  /// membership probes).  Clamped to [0, 1].
  double next_gathering = 0.125;

  friend bool operator==(const QueryMix&, const QueryMix&) = default;
};

/// Everything needed to expand a workload deterministically.
struct ScenarioSpec {
  GraphFamily family = GraphFamily::kPowerLaw;
  std::size_t fleet = 1000;     ///< number of tenant instances
  graph::NodeId nodes = 48;     ///< requested nodes per tenant (families round)
  double churn = 0.0;           ///< fraction of the fleet replaced per churn round
  double aperiodic = 0.2;       ///< fraction of tenants running aperiodic schedulers
  /// Fraction of tenants running the §6 dynamic scheduler.  Takes precedence
  /// over `aperiodic` when the fractions overlap (`dynamic=1` is always a
  /// fully dynamic fleet).
  double dynamic_share = 0.0;
  double mutation = 0.0;        ///< fraction of the fleet mutated per mutation round
  QueryMix mix;
  std::uint64_t seed = 1;       ///< master seed; everything derives from it
  std::uint64_t horizon = 1024; ///< holiday depth that probes target
  /// Commands each mutated tenant receives per mutation round.  The default
  /// keeps batches on the per-command path; mutation-storm scenarios raise it
  /// past the engine's bulk threshold to exercise the bulk recolor.
  std::size_t commands_per_mutation = 4;

  friend bool operator==(const ScenarioSpec&, const ScenarioSpec&) = default;
};

/// Named single-tenant large-graph presets for the parallel-coloring
/// benchmarks and stress runs: `powerlaw-1m` and `geometric-1m` expand to a
/// fleet of one fully dynamic 2^20-node tenant (mutation on, churn off).
/// Nullopt for unknown names.
[[nodiscard]] std::optional<ScenarioSpec> scenario_preset(std::string_view name);

/// The preset names `scenario_preset` knows, for usage text and sweeps.
[[nodiscard]] const std::vector<std::string>& scenario_preset_names();

/// Parses a scenario string `family[:key=value,...]` with keys `fleet`,
/// `nodes`, `seed`, `churn`, `aperiodic`, `dynamic`, `mutation`, `next`,
/// `horizon`, `cmds`.  The leading token may also be a preset name
/// (`powerlaw-1m:mutation=0` starts from the preset, then applies the
/// overrides).  Nullopt on an unknown family/preset, unknown key, or
/// malformed value.
[[nodiscard]] std::optional<ScenarioSpec> parse_scenario(std::string_view text);

/// The canonical one-line form of `spec` (parses back to an equal spec).
[[nodiscard]] std::string scenario_name(const ScenarioSpec& spec);

/// One tenant's expansion: the arguments `Engine::create_instance` wants.
struct TenantSpec {
  std::string name;
  graph::Graph graph;
  engine::InstanceSpec spec;
};

/// A deterministic probe round, split by query type so each half can go to
/// the matching batch API.
struct ProbeRound {
  std::vector<engine::Probe> membership;      ///< for `query_batch`
  std::vector<engine::Probe> next_gathering;  ///< for `next_gathering_batch`
};

class ScenarioGenerator {
 public:
  explicit ScenarioGenerator(ScenarioSpec spec);

  [[nodiscard]] const ScenarioSpec& spec() const noexcept { return spec_; }

  /// Tenant `i`'s name: "<family>-<i>".  Deliberately stable across churn
  /// generations — `churn_round` erases and re-creates the *same* name, only
  /// the graph/recipe behind it changes — so slot identity survives churn.
  [[nodiscard]] std::string tenant_name(std::size_t i) const;

  /// Expands tenant `i` (generation 0).  Pure function of `(spec, i)`.
  [[nodiscard]] TenantSpec tenant(std::size_t i) const { return tenant_at(i, 0); }

  /// Expands tenant `i` at churn generation `generation` (each churn
  /// replacement bumps the slot's generation, re-deriving graph + recipe
  /// from fresh sub-seeds).
  [[nodiscard]] TenantSpec tenant_at(std::size_t i, std::uint64_t generation) const;

  /// The scheduler recipe slot `i` runs at `generation` — `tenant_at`
  /// without building the graph.  Cheap (a few hash mixes), so consumers
  /// can ask per request, e.g. whether a rolled slot is dynamic.
  [[nodiscard]] engine::InstanceSpec recipe_at(std::size_t i, std::uint64_t generation) const;

  /// Creates the whole generation-0 fleet in `eng`.
  void populate(engine::Engine& eng) const;

  /// Deterministic probe round `round` with `count` probes total, split per
  /// the query mix.  Probe instance ids index `snapshot`; probes target only
  /// tenants present in it.  Throws `std::invalid_argument` on an empty
  /// snapshot.
  [[nodiscard]] ProbeRound probes(const engine::QuerySnapshot& snapshot, std::size_t count,
                                  std::uint64_t round = 0) const;

  /// Applies churn round `round`: deterministically picks `churn · fleet`
  /// slots, erases each and re-creates it at the next generation — the
  /// whole-tenant-replacement *fallback* for topology change.  Loses the
  /// slot's gap history and pays a full rebuild; prefer `mutation_round` for
  /// tenants that can mutate in place.  Returns the number of tenants
  /// replaced.  `generations` must map slot → current generation and is
  /// updated in place (size `fleet`, all zeros initially).
  std::size_t churn_round(engine::Engine& eng, std::uint64_t round,
                          std::vector<std::uint64_t>& generations) const;

  /// Deterministic protocol request stream `round` with `count` requests —
  /// ready-to-send `api::Request` values addressed by tenant *name*, the
  /// shape every consumer of the unified protocol speaks (`api::Client`
  /// over either transport, `service::Service::handle`, load generators,
  /// benches, tests).  A `mutation` fraction of the rolls attempt an
  /// `ApplyMutations` batch (kept only when the rolled slot's generation-0
  /// recipe is dynamic — otherwise the roll degrades to a query; commands
  /// come from `mutation_commands` with the recipe node range), a
  /// `mix.next_gathering` fraction of the rest are next-gathering probes,
  /// the remainder membership probes.  Query nodes are drawn below
  /// `spec.nodes`, which every family's tenant graph meets or exceeds, so
  /// requests stay valid whatever the live topology.  Pure function of
  /// `(spec, count, round)` — identical streams everywhere, which is what
  /// the transport-equivalence tests byte-compare.
  [[nodiscard]] std::vector<api::Request> request_stream(std::size_t count,
                                                         std::uint64_t round = 0) const;

  /// The seeded marry/divorce/add-node command mix slot `i` receives at
  /// mutation round `round`, with edge endpoints drawn from `[0, nodes)` —
  /// a pure function of `(spec, i, round, nodes)`, so every consumer
  /// (engine_server, tests, benchmarks) derives identical event streams.
  [[nodiscard]] std::vector<dynamic::MutationCommand> mutation_commands(
      std::size_t i, std::uint64_t round, graph::NodeId nodes) const;

  /// Applies mutation round `round`: deterministically picks
  /// `mutation · fleet` slots and routes each slot's `mutation_commands`
  /// through `Engine::apply_mutations` — edge-level topology change served
  /// *in place* (recolor, republish table), no tenant replacement.  Slots
  /// whose tenant is missing or not dynamic are skipped.  Returns the number
  /// of commands that changed topology.
  std::size_t mutation_round(engine::Engine& eng, std::uint64_t round) const;

  /// Byte-serialization of the full generation-0 expansion (spec, every
  /// tenant's edges and recipe).  Two generators with equal specs produce
  /// byte-identical fingerprints; any divergence in expansion shows up here.
  [[nodiscard]] std::vector<std::uint8_t> fingerprint() const;

 private:
  [[nodiscard]] graph::Graph tenant_graph(std::uint64_t tenant_seed) const;

  ScenarioSpec spec_;
};

}  // namespace fhg::workload
