#include "fhg/workload/scenario.hpp"

#include <algorithm>
#include <charconv>
#include <cmath>
#include <cstdlib>
#include <set>
#include <sstream>
#include <stdexcept>

#include "fhg/graph/generators.hpp"
#include "fhg/parallel/rng.hpp"

namespace fhg::workload {

using parallel::Rng;

std::string graph_family_name(GraphFamily family) {
  switch (family) {
    case GraphFamily::kRing:
      return "ring";
    case GraphFamily::kGrid:
      return "grid";
    case GraphFamily::kPowerLaw:
      return "power-law";
    case GraphFamily::kRandomGeometric:
      return "random-geometric";
    case GraphFamily::kGnp:
      return "gnp";
  }
  return "unknown";
}

std::optional<GraphFamily> parse_graph_family(std::string_view name) {
  for (const GraphFamily family : all_graph_families()) {
    if (name == graph_family_name(family)) {
      return family;
    }
  }
  return std::nullopt;
}

const std::vector<GraphFamily>& all_graph_families() {
  static const std::vector<GraphFamily> families{
      GraphFamily::kRing, GraphFamily::kGrid, GraphFamily::kPowerLaw,
      GraphFamily::kRandomGeometric, GraphFamily::kGnp};
  return families;
}

namespace {

std::optional<std::uint64_t> parse_uint(std::string_view text) {
  std::uint64_t value = 0;
  const auto [ptr, ec] = std::from_chars(text.data(), text.data() + text.size(), value);
  if (ec != std::errc() || ptr != text.data() + text.size()) {
    return std::nullopt;
  }
  return value;
}

/// Shortest decimal form that parses back to exactly `v` (std::to_chars).
std::string format_double(double v) {
  char buffer[64];
  const auto [ptr, ec] = std::to_chars(buffer, buffer + sizeof(buffer), v);
  return ec == std::errc() ? std::string(buffer, ptr) : std::to_string(v);
}

std::optional<double> parse_double(std::string_view text) {
  const std::string owned(text);
  char* end = nullptr;
  const double value = std::strtod(owned.c_str(), &end);
  if (end != owned.c_str() + owned.size() || owned.empty()) {
    return std::nullopt;
  }
  return value;
}

}  // namespace

std::optional<ScenarioSpec> scenario_preset(std::string_view name) {
  // One huge dynamic tenant, mutation rounds on: the shape the parallel
  // Jones–Plassmann benchmarks and stress smokes run against.
  ScenarioSpec spec;
  spec.fleet = 1;
  spec.nodes = 1u << 20;
  spec.churn = 0.0;
  spec.aperiodic = 0.0;
  spec.dynamic_share = 1.0;
  spec.mutation = 1.0;
  if (name == "powerlaw-1m") {
    spec.family = GraphFamily::kPowerLaw;
    return spec;
  }
  if (name == "geometric-1m") {
    spec.family = GraphFamily::kRandomGeometric;
    return spec;
  }
  return std::nullopt;
}

const std::vector<std::string>& scenario_preset_names() {
  static const std::vector<std::string> names{"powerlaw-1m", "geometric-1m"};
  return names;
}

std::optional<ScenarioSpec> parse_scenario(std::string_view text) {
  const auto colon = text.find(':');
  const std::string_view head = text.substr(0, colon);
  ScenarioSpec spec;
  if (const auto preset = scenario_preset(head)) {
    spec = *preset;  // `key=value` overrides below still apply
  } else {
    const auto family = parse_graph_family(head);
    if (!family) {
      return std::nullopt;
    }
    spec.family = *family;
  }
  if (colon == std::string_view::npos) {
    return spec;
  }
  std::string_view rest = text.substr(colon + 1);
  while (!rest.empty()) {
    const auto comma = rest.find(',');
    const std::string_view pair = rest.substr(0, comma);
    rest = comma == std::string_view::npos ? std::string_view{} : rest.substr(comma + 1);
    const auto eq = pair.find('=');
    if (eq == std::string_view::npos) {
      return std::nullopt;
    }
    const std::string_view key = pair.substr(0, eq);
    const std::string_view value = pair.substr(eq + 1);
    if (key == "fleet") {
      const auto v = parse_uint(value);
      if (!v) {
        return std::nullopt;
      }
      spec.fleet = static_cast<std::size_t>(*v);
    } else if (key == "nodes") {
      const auto v = parse_uint(value);
      if (!v) {
        return std::nullopt;
      }
      spec.nodes = static_cast<graph::NodeId>(*v);
    } else if (key == "seed") {
      const auto v = parse_uint(value);
      if (!v) {
        return std::nullopt;
      }
      spec.seed = *v;
    } else if (key == "horizon") {
      const auto v = parse_uint(value);
      if (!v) {
        return std::nullopt;
      }
      spec.horizon = *v;
    } else if (key == "cmds") {
      const auto v = parse_uint(value);
      if (!v) {
        return std::nullopt;
      }
      spec.commands_per_mutation = static_cast<std::size_t>(*v);
    } else if (key == "churn") {
      const auto v = parse_double(value);
      if (!v) {
        return std::nullopt;
      }
      spec.churn = *v;
    } else if (key == "aperiodic") {
      const auto v = parse_double(value);
      if (!v) {
        return std::nullopt;
      }
      spec.aperiodic = *v;
    } else if (key == "dynamic") {
      const auto v = parse_double(value);
      if (!v) {
        return std::nullopt;
      }
      spec.dynamic_share = *v;
    } else if (key == "mutation") {
      const auto v = parse_double(value);
      if (!v) {
        return std::nullopt;
      }
      spec.mutation = *v;
    } else if (key == "next") {
      const auto v = parse_double(value);
      if (!v) {
        return std::nullopt;
      }
      spec.mix.next_gathering = *v;
    } else {
      return std::nullopt;
    }
  }
  return spec;
}

std::string scenario_name(const ScenarioSpec& spec) {
  std::ostringstream out;
  out << graph_family_name(spec.family) << ":fleet=" << spec.fleet << ",nodes=" << spec.nodes
      << ",seed=" << spec.seed << ",horizon=" << spec.horizon
      << ",cmds=" << spec.commands_per_mutation
      << ",churn=" << format_double(spec.churn) << ",aperiodic=" << format_double(spec.aperiodic)
      << ",dynamic=" << format_double(spec.dynamic_share)
      << ",mutation=" << format_double(spec.mutation)
      << ",next=" << format_double(spec.mix.next_gathering);
  return out.str();
}

ScenarioGenerator::ScenarioGenerator(ScenarioSpec spec) : spec_(spec) {
  if (spec_.fleet == 0) {
    throw std::invalid_argument("ScenarioGenerator: fleet must be positive");
  }
  if (spec_.nodes < 4) {
    throw std::invalid_argument("ScenarioGenerator: need at least 4 nodes per tenant");
  }
  spec_.churn = std::clamp(spec_.churn, 0.0, 1.0);
  spec_.aperiodic = std::clamp(spec_.aperiodic, 0.0, 1.0);
  spec_.dynamic_share = std::clamp(spec_.dynamic_share, 0.0, 1.0);
  spec_.mutation = std::clamp(spec_.mutation, 0.0, 1.0);
  spec_.mix.next_gathering = std::clamp(spec_.mix.next_gathering, 0.0, 1.0);
}

std::string ScenarioGenerator::tenant_name(std::size_t i) const {
  return graph_family_name(spec_.family) + "-" + std::to_string(i);
}

graph::Graph ScenarioGenerator::tenant_graph(std::uint64_t tenant_seed) const {
  const graph::NodeId n = spec_.nodes;
  switch (spec_.family) {
    case GraphFamily::kRing:
      return graph::cycle(n);
    case GraphFamily::kGrid: {
      const auto rows = static_cast<graph::NodeId>(
          std::max(2.0, std::floor(std::sqrt(static_cast<double>(n)))));
      const auto cols = static_cast<graph::NodeId>((n + rows - 1) / rows);
      return graph::grid2d(rows, std::max<graph::NodeId>(cols, 2));
    }
    case GraphFamily::kPowerLaw:
      return graph::barabasi_albert(n, 3, tenant_seed);
    case GraphFamily::kRandomGeometric: {
      // Radius for an expected degree of ~6: E[deg] ≈ n·π·r².
      const double radius = std::sqrt(6.0 / (3.14159265358979323846 * static_cast<double>(n)));
      return graph::random_geometric(n, radius, tenant_seed);
    }
    case GraphFamily::kGnp:
      return graph::gnp(n, std::min(1.0, 8.0 / static_cast<double>(n)), tenant_seed);
  }
  throw std::invalid_argument("ScenarioGenerator: unknown graph family");
}

engine::InstanceSpec ScenarioGenerator::recipe_at(std::size_t i, std::uint64_t generation) const {
  const std::uint64_t tenant_seed =
      parallel::mix_keys(spec_.seed, parallel::mix_keys(i, generation));
  engine::InstanceSpec recipe;
  recipe.seed = tenant_seed;
  // Deterministic kind choice: a `dynamic` fraction of slots run the §6
  // scheduler (mutable topology, recolor in place), an `aperiodic` fraction
  // the stateful schedulers (memoized replay), the rest rotate the periodic
  // catalogue (O(1) period-table path).  `dynamic` takes precedence when the
  // fractions overlap — `dynamic=1` always means a fully dynamic fleet —
  // and with `dynamic=0` the bands are exactly the pre-mutation expansion.
  const double roll = static_cast<double>(parallel::hash_draw(tenant_seed, 0xA9E2, 0) >> 11) *
                      0x1.0p-53;
  if (roll < spec_.dynamic_share) {
    recipe.kind = engine::SchedulerKind::kDynamicPrefixCode;
  } else if (roll < spec_.dynamic_share + spec_.aperiodic) {
    recipe.kind = (tenant_seed >> 8) % 2 == 0 ? engine::SchedulerKind::kPhasedGreedy
                                              : engine::SchedulerKind::kFirstComeFirstGrab;
  } else {
    constexpr engine::SchedulerKind kPeriodic[] = {engine::SchedulerKind::kDegreeBound,
                                                   engine::SchedulerKind::kPrefixCode,
                                                   engine::SchedulerKind::kRoundRobin};
    recipe.kind = kPeriodic[(tenant_seed >> 8) % std::size(kPeriodic)];
  }
  return recipe;
}

TenantSpec ScenarioGenerator::tenant_at(std::size_t i, std::uint64_t generation) const {
  engine::InstanceSpec recipe = recipe_at(i, generation);
  return TenantSpec{.name = tenant_name(i), .graph = tenant_graph(recipe.seed),
                    .spec = std::move(recipe)};
}

void ScenarioGenerator::populate(engine::Engine& eng) const {
  for (std::size_t i = 0; i < spec_.fleet; ++i) {
    TenantSpec t = tenant(i);
    (void)eng.create_instance(std::move(t.name), std::move(t.graph), std::move(t.spec));
  }
}

ProbeRound ScenarioGenerator::probes(const engine::QuerySnapshot& snapshot, std::size_t count,
                                     std::uint64_t round) const {
  if (snapshot.size() == 0) {
    throw std::invalid_argument("ScenarioGenerator::probes: empty snapshot");
  }
  Rng rng(spec_.seed, parallel::mix_keys(0x70726F62, round));
  const auto next_count =
      static_cast<std::size_t>(spec_.mix.next_gathering * static_cast<double>(count));
  ProbeRound out;
  out.membership.reserve(count - next_count);
  out.next_gathering.reserve(next_count);
  for (std::size_t q = 0; q < count; ++q) {
    engine::Probe probe;
    probe.instance = static_cast<std::uint32_t>(rng.uniform_below(snapshot.size()));
    probe.node = static_cast<graph::NodeId>(
        rng.uniform_below(snapshot.instance(probe.instance)->graph().num_nodes()));
    if (q < next_count) {
      probe.holiday = rng.uniform_below(spec_.horizon);  // `after` may be 0
      out.next_gathering.push_back(probe);
    } else {
      probe.holiday = 1 + rng.uniform_below(spec_.horizon);
      out.membership.push_back(probe);
    }
  }
  return out;
}

std::size_t ScenarioGenerator::churn_round(engine::Engine& eng, std::uint64_t round,
                                           std::vector<std::uint64_t>& generations) const {
  if (generations.size() != spec_.fleet) {
    throw std::invalid_argument("ScenarioGenerator::churn_round: generations size mismatch");
  }
  const auto replacements =
      static_cast<std::size_t>(spec_.churn * static_cast<double>(spec_.fleet));
  Rng rng(spec_.seed, parallel::mix_keys(0x63687572, round));
  std::set<std::size_t> slots;
  while (slots.size() < std::min(replacements, spec_.fleet)) {
    slots.insert(static_cast<std::size_t>(rng.uniform_below(spec_.fleet)));
  }
  for (const std::size_t slot : slots) {
    (void)eng.erase_instance(tenant_name(slot));
    TenantSpec t = tenant_at(slot, ++generations[slot]);
    (void)eng.create_instance(std::move(t.name), std::move(t.graph), std::move(t.spec));
  }
  return slots.size();
}

std::vector<api::Request> ScenarioGenerator::request_stream(std::size_t count,
                                                            std::uint64_t round) const {
  Rng rng(spec_.seed, parallel::mix_keys(0x73657276, round));  // "serv"
  std::vector<api::Request> out;
  out.reserve(count);
  for (std::size_t q = 0; q < count; ++q) {
    const auto slot = static_cast<std::size_t>(rng.uniform_below(spec_.fleet));
    if (spec_.mutation > 0.0 && rng.uniform_real() < spec_.mutation &&
        recipe_at(slot, 0).kind == engine::SchedulerKind::kDynamicPrefixCode) {
      // A distinct command round per request keeps the marry/divorce mixes
      // from repeating within one stream.  Endpoints are drawn from the
      // recipe node range, which every generation's live topology covers.
      out.push_back(api::ApplyMutationsRequest{
          tenant_name(slot), mutation_commands(slot, parallel::mix_keys(round, q),
                                               spec_.nodes)});
      continue;
    }
    const auto node = static_cast<graph::NodeId>(rng.uniform_below(spec_.nodes));
    if (rng.uniform_real() < spec_.mix.next_gathering) {
      out.push_back(api::NextGatheringRequest{
          tenant_name(slot), node, rng.uniform_below(spec_.horizon)});  // `after` may be 0
    } else {
      out.push_back(api::IsHappyRequest{tenant_name(slot), node,
                                        1 + rng.uniform_below(spec_.horizon)});
    }
  }
  return out;
}

std::vector<dynamic::MutationCommand> ScenarioGenerator::mutation_commands(
    std::size_t i, std::uint64_t round, graph::NodeId nodes) const {
  // Per-round command count from the spec: the default (4) usually forces at
  // least one recolor without rewriting the whole topology; mutation-storm
  // scenarios raise `cmds` past the bulk threshold.
  const std::size_t per_tenant = spec_.commands_per_mutation;
  Rng rng(spec_.seed, parallel::mix_keys(0x6D757478, parallel::mix_keys(i, round)));
  std::vector<dynamic::MutationCommand> commands;
  commands.reserve(per_tenant);
  for (std::size_t c = 0; c < per_tenant && nodes >= 2; ++c) {
    const double roll = rng.uniform_real();
    if (roll < 0.1) {
      commands.push_back(dynamic::add_node_command());
      continue;
    }
    // Distinct endpoints within the recipe node range, so the stream stays a
    // pure function of the inputs whatever earlier rounds did.
    const auto u = static_cast<graph::NodeId>(rng.uniform_below(nodes));
    auto v = static_cast<graph::NodeId>(rng.uniform_below(nodes - 1));
    v = v >= u ? v + 1 : v;
    commands.push_back(roll < 0.55 ? dynamic::insert_edge_command(u, v)
                                   : dynamic::erase_edge_command(u, v));
  }
  return commands;
}

std::size_t ScenarioGenerator::mutation_round(engine::Engine& eng, std::uint64_t round) const {
  const auto mutated =
      static_cast<std::size_t>(spec_.mutation * static_cast<double>(spec_.fleet));
  Rng rng(spec_.seed, parallel::mix_keys(0x6D757461, round));
  std::set<std::size_t> slots;
  while (slots.size() < std::min(mutated, spec_.fleet)) {
    slots.insert(static_cast<std::size_t>(rng.uniform_below(spec_.fleet)));
  }
  std::size_t applied = 0;
  for (const std::size_t slot : slots) {
    const std::string name = tenant_name(slot);
    const auto instance = eng.find(name);
    if (!instance || !instance->dynamic()) {
      continue;  // churned into a non-dynamic recipe, or erased outright
    }
    const auto commands = mutation_commands(slot, round, instance->graph().num_nodes());
    applied += eng.apply_mutations(name, commands).applied;
  }
  return applied;
}

namespace {

void put_u64(std::vector<std::uint8_t>& bytes, std::uint64_t v) {
  for (int shift = 56; shift >= 0; shift -= 8) {
    bytes.push_back(static_cast<std::uint8_t>(v >> shift));
  }
}

void put_string(std::vector<std::uint8_t>& bytes, std::string_view s) {
  put_u64(bytes, s.size());
  bytes.insert(bytes.end(), s.begin(), s.end());
}

}  // namespace

std::vector<std::uint8_t> ScenarioGenerator::fingerprint() const {
  std::vector<std::uint8_t> bytes;
  put_string(bytes, scenario_name(spec_));
  for (std::size_t i = 0; i < spec_.fleet; ++i) {
    const TenantSpec t = tenant(i);
    put_string(bytes, t.name);
    put_u64(bytes, t.graph.num_nodes());
    for (const graph::Edge& e : t.graph.edges()) {
      put_u64(bytes, e.first);
      put_u64(bytes, e.second);
    }
    put_u64(bytes, static_cast<std::uint64_t>(t.spec.kind));
    put_u64(bytes, static_cast<std::uint64_t>(t.spec.code));
    put_u64(bytes, t.spec.seed);
    put_u64(bytes, t.spec.slack);
    put_u64(bytes, t.spec.parallel_crossover);
    put_u64(bytes, t.spec.bulk_threshold);
    put_u64(bytes, t.spec.periods.size());
    for (const std::uint64_t p : t.spec.periods) {
      put_u64(bytes, p);
    }
  }
  return bytes;
}

}  // namespace fhg::workload
