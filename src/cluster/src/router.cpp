#include "fhg/cluster/router.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "fhg/api/codec.hpp"
#include "fhg/api/socket.hpp"

namespace fhg::cluster {

namespace {

using Clock = std::chrono::steady_clock;

/// Microseconds elapsed since `start`, saturated at zero.
std::uint64_t elapsed_us(Clock::time_point start) {
  const auto us =
      std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() - start);
  return us.count() > 0 ? static_cast<std::uint64_t>(us.count()) : 0;
}

/// True when `response` failed in a way a different backend could cure: the
/// transport died under the client, or the backend is draining.  Typed
/// verdicts (kNotFound, kInvalidArgument, ...) are the backend's real
/// answer and must not be shopped around the ring.
bool is_backend_failure(const api::Response& response) {
  return response.status.code == api::StatusCode::kInternal ||
         response.status.code == api::StatusCode::kStopped;
}

/// The write kinds the router mirrors onto the replica (the instance's
/// state-changing verbs; see the file comment in router.hpp).
bool is_replicated_write(std::size_t tag) {
  return tag == 2 ||   // apply-mutations
         tag == 3 ||   // create-instance
         tag == 4 ||   // erase-instance
         tag == 12;    // restore-instance
}

}  // namespace

Router::Router(RouterOptions options)
    : options_(std::move(options)),
      retries_total_(metrics_.counter("fhg_cluster_retries_total")),
      failovers_total_(metrics_.counter("fhg_cluster_failovers_total")),
      evictions_total_(metrics_.counter("fhg_cluster_evictions_total")),
      reregistrations_total_(metrics_.counter("fhg_cluster_reregistrations_total")),
      migrations_total_(metrics_.counter("fhg_cluster_migrations_total")),
      migration_errors_total_(metrics_.counter("fhg_cluster_migration_errors_total")),
      replica_errors_total_(metrics_.counter("fhg_cluster_replica_errors_total")),
      rejects_total_(metrics_.counter("fhg_cluster_rejects_total")),
      ring_size_(metrics_.gauge("fhg_cluster_ring_size")),
      backends_healthy_(metrics_.gauge("fhg_cluster_backends_healthy")),
      forward_us_(metrics_.histogram("fhg_cluster_forward_us")),
      ring_(options_.vnodes) {
  if (options_.backends.empty()) {
    throw std::invalid_argument("Router: at least one backend is required");
  }
  for (const BackendConfig& config : options_.backends) {
    if (backends_.contains(config.name)) {
      throw std::invalid_argument("Router: duplicate backend name '" + config.name + "'");
    }
    const std::string label = "{backend=\"" + config.name + "\"}";
    auto backend = std::make_unique<Backend>(Backend{
        .config = config,
        .requests = metrics_.counter("fhg_cluster_requests_total" + label),
        .errors = metrics_.counter("fhg_cluster_errors_total" + label),
        .up_gauge = metrics_.gauge("fhg_cluster_backend_up" + label),
    });
    ring_.add_node(config.name);
    backends_.emplace(config.name, std::move(backend));
  }
  {
    const std::lock_guard<std::mutex> lock(topology_mutex_);
    refresh_topology_gauges();
  }
  if (options_.workers == 0) {
    options_.workers = 1;
  }
  if (options_.queue_capacity == 0) {
    options_.queue_capacity = 1;
  }
  workers_.reserve(options_.workers);
  for (std::size_t i = 0; i < options_.workers; ++i) {
    workers_.push_back(std::make_unique<Worker>());
  }
  seed_directory();
  for (auto& worker : workers_) {
    Worker* w = worker.get();
    worker->thread = std::thread([this, w] { worker_loop(*w); });
  }
  if (options_.probe_interval.count() > 0) {
    probe_thread_ = std::thread([this] { probe_loop(); });
  }
}

Router::~Router() { stop(); }

void Router::stop() {
  const std::lock_guard<std::mutex> stop_lock(stop_mutex_);
  if (stopped_) {
    return;
  }
  stopped_ = true;
  stopping_.store(true, std::memory_order_release);
  probe_wakeup_.notify_all();
  if (probe_thread_.joinable()) {
    probe_thread_.join();
  }
  for (auto& worker : workers_) {
    worker->ready.notify_all();
  }
  for (auto& worker : workers_) {
    if (worker->thread.joinable()) {
      worker->thread.join();
    }
  }
  // Workers exited with their queues drained-or-flushed; complete stragglers.
  for (auto& worker : workers_) {
    std::deque<Pending> leftover;
    {
      const std::lock_guard<std::mutex> lock(worker->mutex);
      leftover.swap(worker->queue);
    }
    for (Pending& pending : leftover) {
      if (pending.done) {
        pending.done(api::Response::error(api::StatusCode::kStopped,
                                          "the router is shutting down"));
      }
    }
  }
}

void Router::handle(api::Request request, api::ResponseCallback done) {
  handle(std::move(request), api::RequestContext{}, std::move(done));
}

void Router::handle(api::Request request, const api::RequestContext& context,
                    api::ResponseCallback done) {
  if (stopping_.load(std::memory_order_acquire)) {
    rejects_total_.increment();
    done(api::Response::error(api::StatusCode::kStopped, "the router is shutting down"));
    return;
  }
  // Same shard key as the backends' own service layer: per-instance FIFO.
  const std::string_view instance = api::routing_instance(request);
  Worker& worker =
      *workers_[instance.empty() ? 0 : fnv1a(instance) % workers_.size()];
  {
    const std::lock_guard<std::mutex> lock(worker.mutex);
    if (worker.queue.size() >= options_.queue_capacity) {
      rejects_total_.increment();
      done(api::Response::error(api::StatusCode::kQueueFull,
                                "the routing worker's queue is at capacity"));
      return;
    }
    worker.queue.push_back(Pending{std::move(request), context, std::move(done)});
  }
  worker.ready.notify_one();
}

void Router::worker_loop(Worker& worker) {
  for (;;) {
    Pending pending;
    {
      std::unique_lock<std::mutex> lock(worker.mutex);
      worker.ready.wait(lock, [&] {
        return !worker.queue.empty() || stopping_.load(std::memory_order_acquire);
      });
      if (worker.queue.empty()) {
        return;  // stopping and drained
      }
      pending = std::move(worker.queue.front());
      worker.queue.pop_front();
    }
    const Clock::time_point start = Clock::now();
    api::Response response = route(worker, pending.request);
    forward_us_.record(elapsed_us(start));
    if (pending.done) {
      pending.done(std::move(response));
    }
  }
}

api::Response Router::route(Worker& worker, const api::Request& request) {
  const std::size_t tag = request.index();
  // Router-terminal kinds first.
  if (std::holds_alternative<api::HelloRequest>(request)) {
    api::Response response;
    response.payload = api::HelloResponse{.backend = options_.router_id,
                                          .min_version = api::kMinSupportedVersion,
                                          .max_version = api::kProtocolVersion};
    return response;
  }
  if (const auto* get_stats = std::get_if<api::GetStatsRequest>(&request)) {
    return stats_response(*get_stats);
  }
  if (std::holds_alternative<api::ListInstancesRequest>(request)) {
    return fan_out_list(worker);
  }
  if (const auto* drain_request = std::get_if<api::DrainBackendRequest>(&request)) {
    return drain(worker, drain_request->backend);
  }
  if (std::holds_alternative<api::SnapshotRequest>(request) ||
      std::holds_alternative<api::RestoreRequest>(request) ||
      std::holds_alternative<api::RecoverInfoRequest>(request)) {
    // One process's tenancy, not a ring's: snapshotting "the cluster" through
    // the router would interleave per-backend tenancies into a stream no
    // single backend could restore.  Dial the backend directly.
    return api::Response::error(
        api::StatusCode::kFailedPrecondition,
        "request '" + std::string(api::request_kind_name(tag)) +
            "' addresses one backend's tenancy; dial the backend, not the router");
  }

  // Instance-addressed kinds: resolve the holder pair on the current ring.
  const std::string_view instance = api::routing_instance(request);
  auto [primary, replica] = route_of(instance);
  if (primary.empty()) {
    return api::Response::error(api::StatusCode::kInternal,
                                "the ring has no healthy backend");
  }

  api::Response response = forward_to(worker, primary, request);
  if (is_replicated_write(tag)) {
    if (!replica.empty()) {
      // Mirror the write; the replica's copy is what survives losing the
      // primary.  A replica miss is repaired by reconcile, not surfaced —
      // the primary's verdict is the caller's answer either way (and the
      // mirror of a failed primary write fails identically, keeping the
      // copies in lockstep).
      const api::Response mirrored = forward_to(worker, replica, request);
      if (mirrored.status.code != response.status.code) {
        replica_errors_total_.increment();
      }
    }
    if (response.ok()) {
      const std::lock_guard<std::mutex> lock(topology_mutex_);
      if (std::holds_alternative<api::EraseInstanceRequest>(request)) {
        directory_.erase(std::string(instance));
      } else {
        directory_.insert(std::string(instance));
      }
    }
    return response;
  }
  if (is_backend_failure(response) && !replica.empty()) {
    // Read failover: the replica holds a byte-identical copy (writes are
    // mirrored in the same per-instance order), so any idempotent read it
    // answers matches what the primary would have said.
    failovers_total_.increment();
    return forward_to(worker, replica, request);
  }
  return response;
}

api::Response Router::forward_to(Worker& worker, const std::string& backend,
                                 const api::Request& request) {
  Backend& state = *backends_.at(backend);
  state.requests.increment();
  api::Client* client = client_for(worker, backend);
  if (client == nullptr) {
    state.errors.increment();
    return api::Response::error(api::StatusCode::kInternal,
                                "backend '" + backend + "' is unreachable");
  }
  api::Response response = client->call(request);
  // Fold the client's bounded-retry work into the cluster registry.
  std::uint64_t& watermark = worker.last_retries[backend];
  const std::uint64_t retries = client->retries();
  if (retries > watermark) {
    retries_total_.add(retries - watermark);
    watermark = retries;
  }
  if (is_backend_failure(response)) {
    state.errors.increment();
  }
  return response;
}

api::Client* Router::client_for(Worker& worker, const std::string& backend) {
  const auto found = worker.clients.find(backend);
  if (found != worker.clients.end()) {
    return found->second.get();
  }
  const Backend& state = *backends_.at(backend);
  std::unique_ptr<api::SocketTransport> transport;
  try {
    transport =
        std::make_unique<api::SocketTransport>(state.config.host, state.config.port);
  } catch (const std::runtime_error&) {
    return nullptr;  // dial refused; the next forward attempt re-dials
  }
  auto client = std::make_unique<api::Client>(std::move(transport));
  client->set_retry_policy(options_.retry);
  api::Client* raw = client.get();
  worker.clients.emplace(backend, std::move(client));
  return raw;
}

api::Response Router::fan_out_list(Worker& worker) {
  std::vector<std::string> members;
  {
    const std::lock_guard<std::mutex> lock(topology_mutex_);
    members = ring_.nodes();
  }
  std::map<std::string, api::InstanceInfo> merged;  // name-sorted dedup
  bool any_answered = false;
  for (const std::string& member : members) {
    api::Client* client = client_for(worker, member);
    if (client == nullptr) {
      continue;
    }
    auto listed = client->list_instances();
    if (!listed.ok()) {
      continue;
    }
    any_answered = true;
    for (api::InstanceInfo& info : listed.value) {
      // Primaries and replicas report the same tenants; first sight wins
      // (the copies are byte-identical by construction).
      merged.emplace(info.name, std::move(info));
    }
  }
  if (!any_answered) {
    return api::Response::error(api::StatusCode::kInternal,
                                "no ring member answered list-instances");
  }
  api::ListInstancesResponse list;
  list.instances.reserve(merged.size());
  for (auto& [name, info] : merged) {
    list.instances.push_back(std::move(info));
  }
  api::Response response;
  response.payload = std::move(list);
  return response;
}

api::Response Router::stats_response(const api::GetStatsRequest& request) {
  api::GetStatsResponse stats;
  stats.metrics = metrics_.snapshot();
  if (!request.include_histograms) {
    std::erase_if(stats.metrics, [](const obs::MetricSample& sample) {
      return sample.kind == obs::MetricKind::kHistogram;
    });
  }
  api::Response response;
  response.payload = std::move(stats);
  return response;
}

api::Response Router::drain(Worker& worker, const std::string& backend) {
  (void)worker;
  if (!backends_.contains(backend)) {
    return api::Response::error(api::StatusCode::kNotFound,
                                "no backend named '" + backend + "'");
  }
  {
    const std::lock_guard<std::mutex> lock(topology_mutex_);
    if (!ring_.contains(backend)) {
      return api::Response::error(api::StatusCode::kFailedPrecondition,
                                  "backend '" + backend + "' is not in the ring");
    }
    if (ring_.size() == 1) {
      return api::Response::error(api::StatusCode::kFailedPrecondition,
                                  "cannot drain the last ring member");
    }
  }
  const std::uint64_t migrations_before = migrations_total_.value();
  evict(backend, /*pin=*/true);
  api::Response response;
  response.payload =
      api::DrainBackendResponse{migrations_total_.value() - migrations_before};
  return response;
}

bool Router::probe_backend(Backend& backend) {
  // A fresh dial per probe: the probe must measure the backend, never the
  // staleness of a cached connection.
  std::unique_ptr<api::SocketTransport> transport;
  try {
    transport = std::make_unique<api::SocketTransport>(backend.config.host,
                                                       backend.config.port);
  } catch (const std::runtime_error&) {
    return false;
  }
  api::Client probe(std::move(transport));
  const auto hello = probe.hello();
  return hello.ok();
}

void Router::probe_now() {
  for (auto& [name, backend] : backends_) {
    const bool answered = probe_backend(*backend);
    bool up = false;
    bool drained = false;
    {
      const std::lock_guard<std::mutex> lock(topology_mutex_);
      up = backend->up;
      drained = backend->drained;
    }
    if (answered) {
      backend->consecutive_failures = 0;
      if (!up && !drained) {
        reregister(name);
      }
      continue;
    }
    ++backend->consecutive_failures;
    if (up && backend->consecutive_failures >= options_.probe_failures_to_evict) {
      evict(name, /*pin=*/false);
    }
  }
}

void Router::probe_loop() {
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(topology_mutex_);
      probe_wakeup_.wait_for(lock, options_.probe_interval, [&] {
        return stopping_.load(std::memory_order_acquire);
      });
    }
    if (stopping_.load(std::memory_order_acquire)) {
      return;
    }
    probe_now();
  }
}

std::pair<std::string, std::string> Router::holders_on(const HashRing& ring,
                                                       std::string_view instance) const {
  std::string primary = ring.owner_of(instance);
  std::string replica =
      options_.replicate ? ring.successor_of(instance) : std::string{};
  return {std::move(primary), std::move(replica)};
}

void Router::evict(const std::string& backend, bool pin) {
  std::vector<MigrationTask> tasks;
  {
    const std::lock_guard<std::mutex> lock(topology_mutex_);
    Backend& state = *backends_.at(backend);
    if (!ring_.contains(backend)) {
      if (pin) {
        state.drained = true;
      }
      return;
    }
    // Holder pairs before and after the removal; every *new* holder needs a
    // copy from a surviving old holder.  Succession makes the common case
    // free: the old replica becomes the new primary without moving a byte —
    // only the new replica (one arc further) receives a migration.
    const HashRing old_ring = ring_;
    ring_.remove_node(backend);
    state.up = false;
    state.drained = pin;
    for (const std::string& instance : directory_) {
      const auto old_pair = holders_on(old_ring, instance);
      const auto new_pair = holders_on(ring_, instance);
      const std::string source =
          old_pair.first != backend ? old_pair.first : old_pair.second;
      if (source.empty()) {
        continue;  // no surviving copy (single-member ring died)
      }
      for (const std::string& target : {new_pair.first, new_pair.second}) {
        if (target.empty() || target == old_pair.first || target == old_pair.second) {
          continue;
        }
        tasks.push_back(MigrationTask{instance, source, target});
      }
    }
    refresh_topology_gauges();
  }
  evictions_total_.increment();
  execute_migrations(tasks);
}

void Router::reregister(const std::string& backend) {
  std::vector<MigrationTask> tasks;
  {
    const std::lock_guard<std::mutex> lock(topology_mutex_);
    Backend& state = *backends_.at(backend);
    if (ring_.contains(backend)) {
      return;
    }
    const HashRing old_ring = ring_;
    ring_.add_node(backend);
    state.up = true;
    // The rejoining backend's state is stale (it missed every write since
    // its eviction — or, fresh off a crash, holds only its WAL-recovered
    // tenants).  Re-copy every instance it now holds from a current holder.
    for (const std::string& instance : directory_) {
      const auto old_pair = holders_on(old_ring, instance);
      const auto new_pair = holders_on(ring_, instance);
      const std::string& source = old_pair.first;
      if (source.empty()) {
        continue;
      }
      for (const std::string& target : {new_pair.first, new_pair.second}) {
        if (target.empty() || target == old_pair.first || target == old_pair.second) {
          continue;
        }
        tasks.push_back(MigrationTask{instance, source, target});
      }
    }
    refresh_topology_gauges();
  }
  reregistrations_total_.increment();
  execute_migrations(tasks);
}

void Router::execute_migrations(const std::vector<MigrationTask>& tasks) {
  // Fresh connections, outside the topology lock: migration is rare and its
  // traffic must not contend with the forwarding clients' FIFO streams.
  std::map<std::string, std::unique_ptr<api::Client>> clients;
  const auto client_of = [&](const std::string& backend) -> api::Client* {
    auto found = clients.find(backend);
    if (found != clients.end()) {
      return found->second.get();
    }
    const Backend& state = *backends_.at(backend);
    try {
      auto client = std::make_unique<api::Client>(
          std::make_unique<api::SocketTransport>(state.config.host, state.config.port));
      return clients.emplace(backend, std::move(client)).first->second.get();
    } catch (const std::runtime_error&) {
      return nullptr;
    }
  };
  for (const MigrationTask& task : tasks) {
    api::Client* source = client_of(task.source);
    api::Client* target = client_of(task.target);
    if (source == nullptr || target == nullptr) {
      migration_errors_total_.increment();
      continue;
    }
    auto blob = source->snapshot_instance(task.instance);
    if (!blob.ok()) {
      migration_errors_total_.increment();
      continue;
    }
    const auto adopted = target->restore_instance(task.instance, std::move(blob.value));
    if (!adopted.ok()) {
      migration_errors_total_.increment();
      continue;
    }
    migrations_total_.increment();
  }
}

void Router::seed_directory() {
  // Backends may already hold tenants (WAL recovery, a restarted router):
  // fold every reachable backend's tenant list into the directory so the
  // first eviction migrates them too.
  for (const auto& [name, backend] : backends_) {
    std::unique_ptr<api::Client> client;
    try {
      client = std::make_unique<api::Client>(std::make_unique<api::SocketTransport>(
          backend->config.host, backend->config.port));
    } catch (const std::runtime_error&) {
      continue;  // unreachable at construction; the prober will deal with it
    }
    const auto listed = client->list_instances();
    if (!listed.ok()) {
      continue;
    }
    const std::lock_guard<std::mutex> lock(topology_mutex_);
    for (const api::InstanceInfo& info : listed.value) {
      directory_.insert(info.name);
    }
  }
}

std::vector<std::string> Router::ring_members() const {
  const std::lock_guard<std::mutex> lock(topology_mutex_);
  return ring_.nodes();
}

std::pair<std::string, std::string> Router::route_of(std::string_view instance) const {
  const std::lock_guard<std::mutex> lock(topology_mutex_);
  return holders_on(ring_, instance);
}

void Router::refresh_topology_gauges() {
  ring_size_.set(static_cast<std::int64_t>(ring_.size()));
  std::int64_t healthy = 0;
  for (const auto& [name, backend] : backends_) {
    const bool up = ring_.contains(name);
    backend->up_gauge.set(up ? 1 : 0);
    healthy += up ? 1 : 0;
  }
  backends_healthy_.set(healthy);
}

}  // namespace fhg::cluster
