#include "fhg/cluster/ring.hpp"

namespace fhg::cluster {

std::uint64_t fnv1a(std::string_view bytes) noexcept {
  // FNV-1a 64-bit: offset basis and prime from the reference spec.
  std::uint64_t hash = 0xcbf29ce484222325ULL;
  for (const char c : bytes) {
    hash ^= static_cast<std::uint8_t>(c);
    hash *= 0x100000001b3ULL;
  }
  return hash;
}

std::uint64_t ring_point(std::string_view key) noexcept {
  // SplitMix64 finalizer over the FNV hash.  FNV-1a's multiply only carries
  // a changed byte's entropy *upward*, and the final byte gets a single
  // round of it — keys differing only in a trailing digit end up with
  // near-equal high bits and therefore adjacent ring positions.  The
  // xor-shift rounds push every input bit into every output bit.
  std::uint64_t h = fnv1a(key);
  h ^= h >> 30;
  h *= 0xbf58476d1ce4e5b9ULL;
  h ^= h >> 27;
  h *= 0x94d049bb133111ebULL;
  h ^= h >> 31;
  return h;
}

void HashRing::add_node(const std::string& backend) {
  if (members_.contains(backend)) {
    return;
  }
  std::size_t placed = 0;
  for (std::size_t i = 0; i < vnodes_; ++i) {
    const std::uint64_t point = ring_point(backend + "#" + std::to_string(i));
    // A 64-bit collision with another backend's point is vanishingly rare;
    // first owner keeps the point so add/remove stays symmetric.
    placed += points_.emplace(point, backend).second ? 1 : 0;
  }
  members_.emplace(backend, placed);
}

void HashRing::remove_node(const std::string& backend) {
  const auto member = members_.find(backend);
  if (member == members_.end()) {
    return;
  }
  for (std::size_t i = 0; i < vnodes_; ++i) {
    const auto point = points_.find(ring_point(backend + "#" + std::to_string(i)));
    if (point != points_.end() && point->second == backend) {
      points_.erase(point);
    }
  }
  members_.erase(member);
}

std::string HashRing::owner_of(std::string_view key) const {
  if (points_.empty()) {
    return {};
  }
  // First virtual point clockwise from the key's hash, wrapping at the top.
  auto it = points_.lower_bound(ring_point(key));
  if (it == points_.end()) {
    it = points_.begin();
  }
  return it->second;
}

std::string HashRing::successor_of(std::string_view key) const {
  if (members_.size() < 2) {
    return {};
  }
  auto it = points_.lower_bound(ring_point(key));
  if (it == points_.end()) {
    it = points_.begin();
  }
  const std::string& owner = it->second;
  // Walk clockwise past the owner's consecutive points to the first point
  // held by anyone else.  Bounded: at least one other member exists.
  for (;;) {
    ++it;
    if (it == points_.end()) {
      it = points_.begin();
    }
    if (it->second != owner) {
      return it->second;
    }
  }
}

std::vector<std::string> HashRing::nodes() const {
  std::vector<std::string> out;
  out.reserve(members_.size());
  for (const auto& [backend, points] : members_) {
    out.push_back(backend);
  }
  return out;
}

}  // namespace fhg::cluster
