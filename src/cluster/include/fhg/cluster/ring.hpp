#pragma once

/// \file ring.hpp
/// The consistent-hash ring that assigns instance names to backends.
///
/// Each backend contributes `vnodes` virtual points on a 64-bit circle
/// (`ring_point` of `"name#i"`); an instance lands on the first point
/// clockwise from its own `ring_point`, and its *replica* on the first
/// point owned by a different backend.  Two properties carry the whole
/// failover design:
///
/// 1. **Stability** — adding or removing one backend only remaps the
///    instances whose arc it owned (in expectation `1/N` of them), so a
///    backend death never reshuffles the healthy fleet.
/// 2. **Succession** — `owner_of` on the ring minus a dead backend equals
///    `successor_of` on the full ring wherever the dead backend owned.  The
///    replica (ring successor) *automatically becomes the owner* after the
///    primary is evicted, which is why writes go to primary + replica: the
///    copy that survives a kill is exactly the copy the rerouted reads land
///    on.
///
/// The hash is FNV-1a pushed through a 64-bit finalizer mix — fixed and
/// platform-independent, never `std::hash` — so every router (and every
/// test, on every libstdc++) places an instance identically.  The finalizer
/// matters: raw FNV-1a barely disturbs the high bits when only a key's
/// trailing characters differ (`fleet-1` vs `fleet-2`), and the ring orders
/// by the high bits first, so an un-mixed ring herds a numbered fleet onto
/// one backend.  Not thread-safe; the router guards its ring with the
/// topology lock.

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace fhg::cluster {

/// FNV-1a, 64-bit: the fixed placement hash of the ring.  Exposed so tests
/// (and the docs' worked example) can verify placements independently.
[[nodiscard]] std::uint64_t fnv1a(std::string_view bytes) noexcept;

/// A key's position on the ring circle: `fnv1a` finalized with the
/// SplitMix64 avalanche rounds so that near-identical keys scatter.  This —
/// not raw `fnv1a` — is the coordinate both virtual points and lookups use.
[[nodiscard]] std::uint64_t ring_point(std::string_view key) noexcept;

/// A consistent-hash ring over named backends with virtual nodes.
class HashRing {
 public:
  /// `vnodes` virtual points per backend (min 1; default 64 keeps the
  /// maximum/mean arc-length ratio low enough that a 3-backend ring splits
  /// load within a few percent of evenly).
  explicit HashRing(std::size_t vnodes = 64) : vnodes_(vnodes == 0 ? 1 : vnodes) {}

  /// Adds a backend's virtual points.  Idempotent: re-adding an existing
  /// backend is a no-op (re-registration after a health recovery).
  void add_node(const std::string& backend);

  /// Removes a backend's virtual points; a no-op for unknown backends.
  void remove_node(const std::string& backend);

  /// True iff `backend` currently contributes points.
  [[nodiscard]] bool contains(const std::string& backend) const {
    return members_.contains(backend);
  }

  /// The backend owning `key`: first virtual point clockwise from
  /// `ring_point(key)`.  Empty string on an empty ring.
  [[nodiscard]] std::string owner_of(std::string_view key) const;

  /// The first backend clockwise from `key`'s owner that is a *different*
  /// backend — the replica holder, and the deterministic heir when the
  /// owner dies.  Empty when the ring has fewer than two backends.
  [[nodiscard]] std::string successor_of(std::string_view key) const;

  /// Member backends, sorted by name.
  [[nodiscard]] std::vector<std::string> nodes() const;

  /// Member backend count.
  [[nodiscard]] std::size_t size() const { return members_.size(); }

 private:
  std::size_t vnodes_;
  std::map<std::uint64_t, std::string> points_;  ///< virtual point -> backend
  std::map<std::string, std::size_t> members_;   ///< backend -> points held
};

}  // namespace fhg::cluster
