#pragma once

/// \file router.hpp
/// The cluster router: one `api::Handler` that consistent-hashes instance
/// names across N `fhg_serve` backends and survives losing any one of them.
///
/// A `Router` fronts a fixed set of configured backends.  Requests enter
/// `handle` (typically from a `SocketServer`, so the router speaks the same
/// wire protocol as the backends it proxies), are sharded onto a small
/// worker pool by the FNV-1a hash of their routing instance — per-instance
/// FIFO order is what keeps a tenant's mutations identically ordered on its
/// primary and replica — and are forwarded over per-worker `api::Client`s:
///
/// - **Reads** (idempotent kinds) go to the instance's ring owner and fail
///   over to the replica when the owner cannot answer.
/// - **Writes** (create / erase / apply-mutations / restore-instance) go to
///   the primary *and* the replica, in that order, and ack on the primary's
///   verdict; a replica miss is repaired by the next reconcile rather than
///   failing the write (losing the replica is the single failure the design
///   tolerates — the primary still holds the data).
/// - **Tenancy-wide reads** (list-instances) fan out to every healthy
///   backend and merge; **get-stats** answers from the router's own
///   `fhg_cluster_*` registry; **snapshot/restore/recover-info** are
///   refused typed (`kFailedPrecondition`) — they address one process's
///   tenancy, not a ring.
///
/// A prober thread health-checks every configured backend (`Hello`).  After
/// `probe_failures_to_evict` consecutive misses the backend is evicted from
/// the ring, and every instance whose holder set changed is re-replicated
/// by **snapshot migration**: `SnapshotInstance` from a surviving holder,
/// `RestoreInstance` into each adopting backend.  Because the replica is
/// the ring successor, the surviving copy is already where rerouted reads
/// land — migration only restores the replication factor.  A recovered
/// backend is re-registered and reconciled the same way; `drain` does the
/// eviction dance on an operator's schedule and pins the backend out.

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <string_view>
#include <thread>
#include <utility>
#include <vector>

#include "fhg/api/client.hpp"
#include "fhg/api/handler.hpp"
#include "fhg/cluster/ring.hpp"
#include "fhg/obs/registry.hpp"

namespace fhg::cluster {

/// One configured backend: a stable name (the ring key and the id its
/// `Hello` response must report) and the endpoint to dial.
struct BackendConfig {
  std::string name = {};           ///< stable ring identity
  std::string host = "127.0.0.1";  ///< endpoint host
  std::uint16_t port = 0;          ///< endpoint port

  friend bool operator==(const BackendConfig&, const BackendConfig&) = default;
};

/// Construction-time options of a `Router`.
struct RouterOptions {
  std::vector<BackendConfig> backends = {};  ///< the fixed fleet (>= 1)
  std::size_t vnodes = 64;              ///< virtual points per backend
  std::size_t workers = 4;              ///< forwarding workers, min 1
  std::size_t queue_capacity = 4096;    ///< per-worker admission bound, min 1
  /// Keep a replica of every instance on its ring successor (the failover
  /// design; turn off only for single-backend or throwaway rings).
  bool replicate = true;
  /// Per-forward reconnect-retry budget handed to each backend client.
  api::RetryPolicy retry{.max_retries = 2};
  /// Health-probe cadence.  0 disables the prober (tests drive eviction
  /// explicitly via `probe_now`).
  std::chrono::milliseconds probe_interval{200};
  std::size_t probe_failures_to_evict = 2;  ///< consecutive misses before eviction
  std::string router_id = "fhg-router";     ///< identity `Hello` reports
};

/// The consistent-hash router/proxy.  Thread-safe: any thread may call
/// `handle`; topology changes serialize on an internal lock.
class Router : public api::Handler {
 public:
  /// Builds the ring from `options.backends`, seeds the instance directory
  /// from a `ListInstances` fan-out (backends may already hold tenants, e.g.
  /// after a WAL-recovered restart), and starts the workers and the prober.
  /// Throws `std::invalid_argument` on an empty backend list or duplicate
  /// backend names.
  explicit Router(RouterOptions options);

  /// Stops the prober and workers; queued requests complete `kStopped`.
  ~Router() override;

  Router(const Router&) = delete;             ///< non-copyable (owns threads)
  Router& operator=(const Router&) = delete;  ///< non-assignable

  /// Routes one typed request (see the file comment for the per-kind
  /// rules).  Admission failures complete synchronously.
  void handle(api::Request request, api::ResponseCallback done) override;

  /// As above with the wire context (trace ids travel through to backends
  /// via each client's own envelope minting).
  void handle(api::Request request, const api::RequestContext& context,
              api::ResponseCallback done) override;

  /// Stops accepting, completes queued requests `kStopped`, joins all
  /// threads.  Idempotent; the destructor calls it.
  void stop();

  /// Runs one synchronous probe round (every configured backend), applying
  /// the same eviction / re-registration rules as the prober thread.  Lets
  /// tests and the CLI converge the ring without waiting out the cadence.
  void probe_now();

  /// Backends currently in the ring, sorted by name.
  [[nodiscard]] std::vector<std::string> ring_members() const;

  /// The (primary, replica) pair `instance` routes to right now; replica is
  /// empty when replication is off or the ring is a single backend.
  [[nodiscard]] std::pair<std::string, std::string> route_of(std::string_view instance) const;

  /// The router's `fhg_cluster_*` telemetry registry.
  [[nodiscard]] obs::Registry& metrics() noexcept { return metrics_; }

 private:
  struct Backend;
  struct Worker;
  struct Pending;

  /// One queued request with its completion.
  struct Pending {
    api::Request request;
    api::RequestContext context;
    api::ResponseCallback done;
  };

  /// Worker loop: pop, forward, complete.
  void worker_loop(Worker& worker);

  /// Forwards `request` per the routing rules; always returns a response.
  [[nodiscard]] api::Response route(Worker& worker, const api::Request& request);

  /// Forwards one request to one backend through the worker's cached
  /// client, folding the client's retry/reconnect deltas into the registry.
  [[nodiscard]] api::Response forward_to(Worker& worker, const std::string& backend,
                                         const api::Request& request);

  /// The worker's client for `backend`, dialing on first use.  Nullptr when
  /// the backend cannot be dialed (counted; the caller answers typed).
  [[nodiscard]] api::Client* client_for(Worker& worker, const std::string& backend);

  /// List-instances fan-out across healthy ring members, merged name-sorted
  /// and deduplicated (primaries and replicas report the same tenants).
  [[nodiscard]] api::Response fan_out_list(Worker& worker);

  /// The router's own stats (`fhg_cluster_*` registry snapshot).
  [[nodiscard]] api::Response stats_response(const api::GetStatsRequest& request);

  /// Handles the `DrainBackend` verb: migrate everything off, pin out.
  [[nodiscard]] api::Response drain(Worker& worker, const std::string& backend);

  /// One probe of one backend; returns true when the backend answered.
  [[nodiscard]] bool probe_backend(Backend& backend);

  /// Prober thread body.
  void probe_loop();

  /// Removes `backend` from the ring and re-replicates every instance whose
  /// holder set changed.  `pin` marks it drained (the prober will not
  /// re-register it).
  void evict(const std::string& backend, bool pin);

  /// Adds `backend` back to the ring and re-replicates onto it.
  void reregister(const std::string& backend);

  /// Computes, under the topology lock, which (instance, source, target)
  /// copies a ring change requires, given each instance's holder pair
  /// before (`old_ring`) and after (current ring).  Executes the copies
  /// *outside* the lock via fresh connections.
  struct MigrationTask {
    std::string instance;
    std::string source;
    std::string target;
  };
  void execute_migrations(const std::vector<MigrationTask>& tasks);

  /// Seeds `directory_` from a list-instances fan-out (constructor path).
  void seed_directory();

  /// The holder pair of `instance` on `ring` (replica empty when
  /// replication is off or the ring is a single member).
  [[nodiscard]] std::pair<std::string, std::string> holders_on(const HashRing& ring,
                                                               std::string_view instance) const;

  /// Refreshes `ring_size` / `backends_healthy` / `backend_up` gauges.
  /// Caller holds `topology_mutex_`.
  void refresh_topology_gauges();

  RouterOptions options_;
  obs::Registry metrics_;

  /// Cached registry handles (the forwarding hot path records through
  /// these; per-backend counters live in per-Backend state).
  obs::Counter& retries_total_;
  obs::Counter& failovers_total_;
  obs::Counter& evictions_total_;
  obs::Counter& reregistrations_total_;
  obs::Counter& migrations_total_;
  obs::Counter& migration_errors_total_;
  obs::Counter& replica_errors_total_;
  obs::Counter& rejects_total_;
  obs::Gauge& ring_size_;
  obs::Gauge& backends_healthy_;
  obs::HistogramCell& forward_us_;

  /// One configured backend's health and per-backend counters.
  struct Backend {
    BackendConfig config;
    obs::Counter& requests;  ///< fhg_cluster_requests_total{backend=...}
    obs::Counter& errors;    ///< fhg_cluster_errors_total{backend=...}
    obs::Gauge& up_gauge;    ///< fhg_cluster_backend_up{backend=...}
    std::size_t consecutive_failures = 0;  ///< prober state (prober thread only)
    bool up = true;                        ///< in the ring (topology_mutex_)
    bool drained = false;                  ///< pinned out (topology_mutex_)
  };

  /// Topology: the ring, the directory of known instances, per-backend
  /// health flags.  One mutex — topology changes are rare and short.
  mutable std::mutex topology_mutex_;
  HashRing ring_;
  std::set<std::string> directory_;  ///< known instance names
  std::map<std::string, std::unique_ptr<Backend>> backends_;

  /// One forwarding worker: FIFO queue plus per-backend cached clients.
  struct Worker {
    std::mutex mutex;
    std::condition_variable ready;
    std::deque<Pending> queue;  ///< guarded by mutex
    std::map<std::string, std::unique_ptr<api::Client>> clients;  ///< worker thread only
    std::map<std::string, std::uint64_t> last_retries;   ///< client retry watermark
    std::thread thread;
  };
  std::vector<std::unique_ptr<Worker>> workers_;

  std::mutex stop_mutex_;  ///< serializes stop()
  bool stopped_ = false;   ///< guarded by stop_mutex_
  std::atomic<bool> stopping_{false};
  std::thread probe_thread_;
  std::condition_variable probe_wakeup_;  ///< with topology_mutex_: stop() interrupts the nap
};

}  // namespace fhg::cluster
