#pragma once

/// \file codec.hpp
/// The versioned binary wire codec of the `fhg::api` protocol.
///
/// Every message — request or response — travels as one *frame*:
///
/// ```
/// offset  size  field
/// 0       4     magic "FHGA" (0x46 0x48 0x47 0x41)
/// 4       4     payload length in bytes, big-endian (<= kMaxFramePayload)
/// 8       n     payload: a coding::BitWriter stream
/// ```
///
/// The payload prologue is version-invariant — `protocol version` then
/// `request id`, both Elias-delta varints — so a peer can always recover the
/// id to address an `unsupported-version` reply; the message body (a kind
/// tag, then the kind's fields) may change shape between versions.  See
/// `src/api/README.md` for the full field-by-field layout and the version
/// negotiation rules.
///
/// Request frames may carry a trailing *envelope*: byte-aligned after the
/// body, a field count followed by (tag, varint value) pairs.  Version 1
/// defines tag 1 = trace id; unknown tags are skipped (their value is read
/// and discarded), so newer peers can append fields without breaking this
/// decoder.  An absent envelope decodes as trace id 0 — frames from
/// pre-envelope encoders (whose payload simply ends at the body) remain
/// valid version-1 frames, and an untraced request writes no envelope at
/// all, keeping its frame byte-identical to the pre-envelope encoding.
///
/// Decoding is strict and total: truncated frames, bad magic, oversized
/// length prefixes, unknown tags, out-of-range enum values and implausible
/// length fields all fail with a typed `Status` (`kDecodeError` /
/// `kUnsupportedVersion`) — never UB, never an exception across the API
/// boundary, and never an allocation proportional to an unvalidated count.

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "fhg/api/protocol.hpp"
#include "fhg/api/status.hpp"

namespace fhg::api {

/// Frame magic, byte order on the wire: 'F' 'H' 'G' 'A'.
inline constexpr std::uint32_t kFrameMagic = 0x46484741;

/// Bytes before the payload: magic (4) + big-endian payload length (4).
inline constexpr std::size_t kFrameHeaderBytes = 8;

/// The protocol version this build speaks by default.  Version 2 appended
/// the cluster kinds (`Hello`, `SnapshotInstance`, `RestoreInstance`,
/// `DrainBackend`); the version-1 surface (tags 0–9) is frozen and encodes
/// byte-identically under both versions.
inline constexpr std::uint64_t kProtocolVersion = 2;

/// The oldest protocol version this build still decodes.  Frames claiming a
/// version outside [`kMinSupportedVersion`, `kProtocolVersion`] are refused
/// with a typed `kUnsupportedVersion`; a version-1 frame carrying a
/// version-2 kind tag is refused with a typed `kDecodeError`.
inline constexpr std::uint64_t kMinSupportedVersion = 1;

/// Hard bound on one frame's payload size.  A length prefix past this is
/// rejected before any allocation — the defense against a hostile peer
/// claiming a multi-gigabyte frame.
inline constexpr std::size_t kMaxFramePayload = std::size_t{1} << 26;  // 64 MiB

/// Envelope field tags (append-only).  Tag 1 carries the request's trace id.
inline constexpr std::uint64_t kEnvelopeTraceId = 1;

/// A decoded request frame.
struct DecodedRequest {
  std::uint64_t protocol_version = 0;  ///< version the peer encoded at
  std::uint64_t request_id = 0;        ///< caller-chosen correlation id
  std::uint64_t trace_id = 0;          ///< envelope trace id (0 = untraced / absent)
  Request request;                     ///< the typed request
};

/// A decoded response frame.
struct DecodedResponse {
  std::uint64_t protocol_version = 0;  ///< version the peer encoded at
  std::uint64_t request_id = 0;        ///< echoes the request's id
  Response response;                   ///< the typed response
};

/// Encodes one request as a complete frame (header + payload).  `version`
/// is written into the prologue verbatim — passing a version other than
/// `kProtocolVersion` produces a frame peers will refuse typed, which is
/// exactly what the version-negotiation tests exercise.  A nonzero
/// `trace_id` is appended as the trailing envelope; zero writes no envelope
/// (the frame stays byte-identical to the pre-envelope encoding).
[[nodiscard]] std::vector<std::uint8_t> encode_request(std::uint64_t request_id,
                                                       const Request& request,
                                                       std::uint64_t version = kProtocolVersion,
                                                       std::uint64_t trace_id = 0);

/// Encodes one response as a complete frame (header + payload).
[[nodiscard]] std::vector<std::uint8_t> encode_response(std::uint64_t request_id,
                                                        const Response& response,
                                                        std::uint64_t version = kProtocolVersion);

/// As `encode_response`, but into a caller-provided buffer whose capacity
/// is reused (the event-driven server recycles response buffers through a
/// pool instead of allocating one per frame).  Clears `frame` first; throws
/// `std::length_error` when the payload exceeds `kMaxFramePayload`.
void encode_response_into(std::uint64_t request_id, const Response& response,
                          std::vector<std::uint8_t>& frame,
                          std::uint64_t version = kProtocolVersion);

/// Decodes one complete request frame.  On failure returns `kDecodeError`
/// or `kUnsupportedVersion` and leaves `out.request` default-constructed;
/// `out.request_id` is still filled when the prologue was readable, so
/// servers can address their error reply.
[[nodiscard]] Status decode_request(std::span<const std::uint8_t> frame, DecodedRequest& out);

/// Decodes one complete response frame; same contract as `decode_request`.
[[nodiscard]] Status decode_response(std::span<const std::uint8_t> frame, DecodedResponse& out);

/// Reassembles frames from an arbitrary byte stream (the socket read loop).
///
/// Feed whatever arrived; pop complete frames.  Header validation happens as
/// soon as eight bytes are buffered, so bad magic or an oversized length
/// prefix poisons the assembler immediately (`error()` turns non-ok and
/// stays that way) instead of waiting for a bogus frame to "complete".
class FrameAssembler {
 public:
  /// `max_payload` bounds accepted frames (default `kMaxFramePayload`).
  explicit FrameAssembler(std::size_t max_payload = kMaxFramePayload)
      : max_payload_(max_payload) {}

  /// Appends `bytes` to the buffer and validates any newly complete header.
  /// Returns the assembler's (sticky) error status.
  Status feed(std::span<const std::uint8_t> bytes);

  /// Pops the next complete frame (header included), or nullopt when more
  /// bytes are needed or the assembler is poisoned.
  [[nodiscard]] std::optional<std::vector<std::uint8_t>> next();

  /// The sticky error status (`kOk` while the stream is well-framed).
  [[nodiscard]] const Status& error() const noexcept { return error_; }

  /// Bytes buffered but not yet popped as frames.
  [[nodiscard]] std::size_t buffered() const noexcept { return buffer_.size(); }

  /// Discards all buffered bytes and clears a sticky error, returning the
  /// assembler to its freshly constructed state.  A transport that reuses
  /// one assembler across reconnects must call this when it re-dials, so a
  /// partial frame from the dead connection can never prefix the first
  /// frame of the new one.
  void reset();

 private:
  /// Validates the magic and length of the header at the buffer's front.
  void validate_front();

  std::vector<std::uint8_t> buffer_;
  std::size_t max_payload_;
  Status error_;
};

}  // namespace fhg::api
