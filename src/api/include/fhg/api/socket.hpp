#pragma once

/// \file socket.hpp
/// The TCP face of the protocol: an event-driven epoll listener built for
/// large connection counts, and the matching client transport.
///
/// `SocketServer` is one acceptor thread plus a small pool of epoll event
/// loops.  Connections are nonblocking and owned by exactly one loop; each
/// is a state machine that drains bytes through a `FrameAssembler`
/// (zero-copy for frames that arrive whole), dispatches decoded requests
/// asynchronously into the `Handler`, and writes responses back *in request
/// order* — completions may arrive out of order from the handler's worker
/// shards, but a per-connection sequence window reorders them, so a
/// synchronous client sees responses in submission order and the
/// transport-equivalence guarantee holds.  A slow reader exerts
/// backpressure: when the kernel send buffer fills, the remaining bytes
/// park in the connection's outbox and the loop re-arms for `EPOLLOUT`
/// instead of blocking a thread.  Concurrency comes from connections; no
/// thread is ever parked on any single one of them, which is what lets one
/// process hold 10k+ mostly-idle connections open.
///
/// `SocketTransport` is the client half: one blocking TCP connection,
/// `roundtrip` = send frame, reassemble exactly one response frame.
///
/// POSIX sockets only (the project targets Linux); both ends speak
/// plaintext and the server binds 127.0.0.1 by default — loopback gates,
/// benchmarks and trusted networks, not the open internet.

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "fhg/api/handler.hpp"
#include "fhg/api/status.hpp"
#include "fhg/api/transport.hpp"

namespace fhg::obs {
class Counter;
}  // namespace fhg::obs

namespace fhg::api {

/// Construction-time options of a `SocketServer`.
struct SocketServerOptions {
  std::string host = "127.0.0.1";  ///< address to bind (loopback by default)
  std::uint16_t port = 0;          ///< port to bind (0 = ephemeral, see `port()`)
  int backlog = 512;               ///< listen(2) backlog (connection storms queue here)
  /// Event-loop worker count; 0 picks a small pool sized to the hardware
  /// (min(4, cores)).  Workers multiplex *all* connections — they are not
  /// per-connection threads — so a handful is enough for tens of thousands.
  std::size_t workers = 0;
  /// SO_SNDBUF for accepted connections; 0 keeps the kernel's autotuned
  /// default (which grows to megabytes on loopback).  Bounding it makes
  /// write backpressure kick in at a predictable depth — tests use this to
  /// exercise the EAGAIN → EPOLLOUT path deterministically, and deployments
  /// can use it to cap per-connection kernel memory at high fan-in.
  int send_buffer_bytes = 0;
};

/// An event-driven TCP listener that drains request frames into a `Handler`.
class SocketServer {
 public:
  /// Binds, listens, and starts the acceptor and event-loop workers.
  /// Throws `std::runtime_error` when the socket cannot be bound.
  /// `handler` is not owned and must outlive the server.
  explicit SocketServer(Handler& handler, SocketServerOptions options = {});

  /// Stops accepting, drains in-flight requests, joins all threads.
  ~SocketServer();

  SocketServer(const SocketServer&) = delete;             ///< non-copyable (owns threads)
  SocketServer& operator=(const SocketServer&) = delete;  ///< non-assignable

  /// The bound port — the ephemeral one the kernel picked when
  /// `options.port` was 0.
  [[nodiscard]] std::uint16_t port() const noexcept { return port_; }

  /// The bound address ("127.0.0.1" unless overridden).
  [[nodiscard]] const std::string& host() const noexcept { return host_; }

  /// Connections accepted so far.
  [[nodiscard]] std::uint64_t connections_accepted() const noexcept {
    return connections_accepted_.load(std::memory_order_relaxed);
  }

  /// Event-loop workers serving connections.
  [[nodiscard]] std::size_t num_workers() const noexcept { return workers_.size(); }

  /// Stops accepting, shuts every live connection down, waits for every
  /// dispatched request's completion to land, joins all threads.
  /// Idempotent; the destructor calls it.
  void stop();

 private:
  struct Connection;
  struct Worker;

  /// Accept loop body (runs on `accept_thread_`).  Transient accept
  /// failures (aborted handshakes, momentary fd exhaustion) are counted
  /// and retried; only a closed listener ends the loop.
  void accept_loop();

  /// Event loop body (one per worker): epoll_wait, then read / flush /
  /// complete until told to stop and the last in-flight completion landed.
  void event_loop(Worker& worker);

  /// Reads a ready connection until EAGAIN/EOF, dispatching every complete
  /// frame into the handler.
  void on_readable(Worker& worker, const std::shared_ptr<Connection>& connection);

  /// Dispatches one complete frame (decode → handle) with an ordered
  /// per-connection sequence slot.
  void dispatch_frame(Worker& worker, const std::shared_ptr<Connection>& connection,
                      std::span<const std::uint8_t> frame);

  /// Moves ready in-order responses into the outbox and writes until the
  /// kernel buffer fills (arming EPOLLOUT) or everything is flushed.
  void flush(Worker& worker, const std::shared_ptr<Connection>& connection);

  /// Tears one connection down: deregister, close, forget.  Late
  /// completions for it are dropped on arrival.
  void close_connection(Worker& worker, const std::shared_ptr<Connection>& connection);

  Handler& handler_;
  SocketServerOptions options_;  ///< post-construction: tuning knobs only (host/port resolved)
  std::string host_;
  std::uint16_t port_ = 0;
  /// Accept failures of *this* listener, labeled by bound port
  /// (`fhg_socket_accept_errors_total{port="..."}`).  Per-server, unlike the
  /// process-wide socket counters: a test harness restarting servers must be
  /// able to tell a fresh listener's failures from a previous one's.
  obs::Counter* accept_errors_ = nullptr;
  int listen_fd_ = -1;
  std::mutex stop_mutex_;  ///< serializes stop(); a second caller blocks until done
  bool stopped_ = false;   ///< guarded by stop_mutex_
  std::atomic<bool> stopping_{false};
  std::atomic<std::uint64_t> connections_accepted_{0};
  std::atomic<std::size_t> next_worker_{0};  ///< round-robin connection placement
  std::thread accept_thread_;
  std::vector<std::unique_ptr<Worker>> workers_;
};

/// The TCP client transport: one blocking connection to a `SocketServer`.
class SocketTransport final : public Transport {
 public:
  /// Connects to `host:port`.  Throws `std::runtime_error` when the
  /// connection cannot be established.
  SocketTransport(const std::string& host, std::uint16_t port);

  /// Closes the connection.
  ~SocketTransport() override;

  SocketTransport(const SocketTransport&) = delete;             ///< non-copyable (owns the fd)
  SocketTransport& operator=(const SocketTransport&) = delete;  ///< non-assignable

  /// Sends the frame, then blocks until one complete response frame is
  /// reassembled.  Non-ok on connection loss or a mis-framed peer.
  [[nodiscard]] Status roundtrip(std::span<const std::uint8_t> request_frame,
                                 std::vector<std::uint8_t>& response_frame) override;

  /// Closes the current connection (if any) and dials `host:port` again.
  /// The frame assembler is reset first, so a partial frame from the dead
  /// connection can never leak into the first response of the new one.
  /// Non-ok (`kInternal`) when the endpoint refuses; the transport is then
  /// disconnected and a later `reconnect` may still succeed.
  [[nodiscard]] Status reconnect() override;

 private:
  /// Dials `host_:port_` into `fd_`.  Throws `std::runtime_error` on
  /// failure (the constructor's contract); `reconnect` catches.
  void connect_to_endpoint();

  std::string host_;        ///< remembered endpoint, re-dialed by `reconnect`
  std::uint16_t port_ = 0;  ///< remembered endpoint, re-dialed by `reconnect`
  int fd_ = -1;
  FrameAssembler assembler_;  ///< carries partial bytes across roundtrips
};

}  // namespace fhg::api
