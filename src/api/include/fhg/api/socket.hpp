#pragma once

/// \file socket.hpp
/// The TCP face of the protocol: a minimal loopback-friendly listener and
/// the matching client transport.
///
/// `SocketServer` accepts connections and serves frames: each connection
/// gets a thread that drains bytes through a `FrameAssembler` and answers
/// every complete frame via `serve_frame` — requests on one connection are
/// served in order, so a synchronous client sees responses in submission
/// order and the transport-equivalence guarantee holds.  Concurrency comes
/// from connections: each client (or client thread) opens its own.
///
/// `SocketTransport` is the client half: one blocking TCP connection,
/// `roundtrip` = send frame, reassemble exactly one response frame.
///
/// POSIX sockets only (the project targets Linux); both ends are designed
/// for loopback smoke tests and benchmarks, not for the open internet — the
/// server binds 127.0.0.1 by default and speaks plaintext.

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "fhg/api/handler.hpp"
#include "fhg/api/status.hpp"
#include "fhg/api/transport.hpp"

namespace fhg::api {

/// Construction-time options of a `SocketServer`.
struct SocketServerOptions {
  std::string host = "127.0.0.1";  ///< address to bind (loopback by default)
  std::uint16_t port = 0;          ///< port to bind (0 = ephemeral, see `port()`)
  int backlog = 64;                ///< listen(2) backlog
};

/// A minimal TCP listener that drains request frames into a `Handler`.
class SocketServer {
 public:
  /// Binds, listens, and starts the accept loop.  Throws
  /// `std::runtime_error` when the socket cannot be bound.  `handler` is not
  /// owned and must outlive the server.
  explicit SocketServer(Handler& handler, SocketServerOptions options = {});

  /// Stops accepting, closes every connection, joins all threads.
  ~SocketServer();

  SocketServer(const SocketServer&) = delete;             ///< non-copyable (owns threads)
  SocketServer& operator=(const SocketServer&) = delete;  ///< non-assignable

  /// The bound port — the ephemeral one the kernel picked when
  /// `options.port` was 0.
  [[nodiscard]] std::uint16_t port() const noexcept { return port_; }

  /// The bound address ("127.0.0.1" unless overridden).
  [[nodiscard]] const std::string& host() const noexcept { return host_; }

  /// Connections accepted so far.
  [[nodiscard]] std::uint64_t connections_accepted() const noexcept {
    return connections_accepted_.load(std::memory_order_relaxed);
  }

  /// Stops accepting, shuts every live connection down, joins all threads.
  /// Idempotent; the destructor calls it.
  void stop();

 private:
  /// One accepted connection: its socket and the thread serving it.  The
  /// serve loop flags `done` on exit; the fd is closed (and the thread
  /// joined) by `reap_finished` or `stop`, never by the serve loop itself —
  /// keeping fd ownership in one place rules out close/shutdown races.
  struct Connection {
    int fd = -1;
    std::thread thread;
    std::atomic<bool> done{false};  ///< set by the serve loop on exit
  };

  /// Accept loop body (runs on `accept_thread_`).  Transient accept
  /// failures (aborted handshakes, momentary fd exhaustion) are retried;
  /// only a closed listener ends the loop.
  void accept_loop();

  /// Per-connection serve loop: reassemble frames, answer each in order.
  void serve_connection(Connection& connection);

  /// Joins and closes connections whose serve loop has finished — called
  /// from the accept loop so long-running servers do not accumulate dead
  /// fds and thread handles while clients come and go.
  void reap_finished();

  Handler& handler_;
  std::string host_;
  std::uint16_t port_ = 0;
  int listen_fd_ = -1;
  std::mutex stop_mutex_;  ///< serializes stop(); a second caller blocks until done
  bool stopped_ = false;   ///< guarded by stop_mutex_
  std::atomic<bool> stopping_{false};
  std::atomic<std::uint64_t> connections_accepted_{0};
  std::thread accept_thread_;
  std::mutex connections_mutex_;  ///< guards the connection list
  std::vector<std::unique_ptr<Connection>> connections_;
};

/// The TCP client transport: one blocking connection to a `SocketServer`.
class SocketTransport final : public Transport {
 public:
  /// Connects to `host:port`.  Throws `std::runtime_error` when the
  /// connection cannot be established.
  SocketTransport(const std::string& host, std::uint16_t port);

  /// Closes the connection.
  ~SocketTransport() override;

  SocketTransport(const SocketTransport&) = delete;             ///< non-copyable (owns the fd)
  SocketTransport& operator=(const SocketTransport&) = delete;  ///< non-assignable

  /// Sends the frame, then blocks until one complete response frame is
  /// reassembled.  Non-ok on connection loss or a mis-framed peer.
  [[nodiscard]] Status roundtrip(std::span<const std::uint8_t> request_frame,
                                 std::vector<std::uint8_t>& response_frame) override;

 private:
  int fd_ = -1;
  FrameAssembler assembler_;  ///< carries partial bytes across roundtrips
};

}  // namespace fhg::api
