#pragma once

/// \file protocol.hpp
/// The typed request/response surface of the fhg serving stack.
///
/// The paper's scheduler answers exactly two online questions — "does family
/// `v` celebrate on holiday `t`?" and "when is `v`'s next gathering?" — plus
/// live marriage/divorce updates.  This header reifies that surface (and the
/// tenancy-management operations around it) as one closed set of request and
/// response types: every way into the system, whether from the same process
/// or over a socket, is one of the nine `Request` alternatives, and every
/// answer is a `Response` carrying a unified `Status` plus the matching
/// payload.  The variant order is wire-stable — the codec writes the variant
/// index as the frame tag — so alternatives must only ever be appended.
///
/// ```
/// fhg::api::Request request = fhg::api::IsHappyRequest{"acme", 7, 123456789};
/// handler.handle(std::move(request), [](fhg::api::Response response) {
///   if (response.status.ok()) {
///     use(std::get<fhg::api::IsHappyResponse>(response.payload).happy);
///   }
/// });
/// ```

#include <cstdint>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

#include "fhg/api/status.hpp"
#include "fhg/dynamic/mutation.hpp"
#include "fhg/engine/spec.hpp"
#include "fhg/graph/graph.hpp"
#include "fhg/obs/registry.hpp"
#include "fhg/obs/trace.hpp"

namespace fhg::api {

// -- Requests -----------------------------------------------------------------

/// Membership query: is `node` happy on holiday `holiday` of `instance`?
struct IsHappyRequest {
  std::string instance;          ///< tenant name
  graph::NodeId node = 0;        ///< the family asking
  std::uint64_t holiday = 0;     ///< the queried holiday (1-based)

  friend bool operator==(const IsHappyRequest&, const IsHappyRequest&) = default;
};

/// Next-gathering query: first happy holiday of `node` strictly after `after`.
struct NextGatheringRequest {
  std::string instance;          ///< tenant name
  graph::NodeId node = 0;        ///< the family asking
  std::uint64_t after = 0;       ///< exclusive lower bound (0 = from the start)

  friend bool operator==(const NextGatheringRequest&, const NextGatheringRequest&) = default;
};

/// Live topology mutation batch for a dynamic tenant (§6): marriages,
/// divorces and new parents applied in place, all-or-nothing.
struct ApplyMutationsRequest {
  std::string instance;                            ///< tenant name (must be dynamic)
  std::vector<dynamic::MutationCommand> commands;  ///< applied in order

  friend bool operator==(const ApplyMutationsRequest&, const ApplyMutationsRequest&) = default;
};

/// Creates a named tenant from a scheduler recipe and an edge list.
struct CreateInstanceRequest {
  std::string instance;            ///< tenant name (must be unused)
  graph::NodeId nodes = 0;         ///< node count of the conflict graph
  std::vector<graph::Edge> edges;  ///< undirected edges, `first < second`
  engine::InstanceSpec spec;       ///< the scheduler recipe to build

  friend bool operator==(const CreateInstanceRequest&, const CreateInstanceRequest&) = default;
};

/// Removes a named tenant.  In-flight queries holding the instance finish
/// safely; the name becomes available again.
struct EraseInstanceRequest {
  std::string instance;  ///< tenant name

  friend bool operator==(const EraseInstanceRequest&, const EraseInstanceRequest&) = default;
};

/// Lists every tenant, sorted by name (the registry's canonical order).
struct ListInstancesRequest {
  friend bool operator==(const ListInstancesRequest&, const ListInstancesRequest&) = default;
};

/// Serializes the whole tenancy into the canonical Elias-coded snapshot.
struct SnapshotRequest {
  friend bool operator==(const SnapshotRequest&, const SnapshotRequest&) = default;
};

/// Replaces the whole tenancy with a previously taken snapshot.
struct RestoreRequest {
  std::vector<std::uint8_t> bytes;  ///< a `SnapshotResponse::bytes` blob

  friend bool operator==(const RestoreRequest&, const RestoreRequest&) = default;
};

/// Telemetry scrape: the serving side's full registry snapshot (engine
/// counters and gauges plus the per-shard service metrics re-expressed as
/// labeled samples) and, optionally, the slowest-request trace ring.
///
/// The two flags exist for determinism as much as for size: timing
/// histograms and traces are inherently run-dependent, so a caller that
/// wants two stacks fed identical workloads to produce byte-identical
/// snapshots (the transport-equivalence tests do) turns both off.
struct GetStatsRequest {
  bool include_histograms = true;  ///< include histogram-kind samples
  bool include_traces = true;      ///< include the slowest-N trace ring

  friend bool operator==(const GetStatsRequest&, const GetStatsRequest&) = default;
};

/// Durability introspection: what the serving side's write-ahead log has
/// made durable (last durable holiday, live log bytes, compaction and
/// recovery counters).  Served even when no WAL is attached — then
/// `wal_enabled` is false and the WAL fields are zero — so callers can probe
/// for durability support without a failure path.
struct RecoverInfoRequest {
  friend bool operator==(const RecoverInfoRequest&, const RecoverInfoRequest&) = default;
};

// -- Protocol-version-2 kinds (cluster serving) -------------------------------

/// Identity handshake (v2): who is on the other end of this connection?  A
/// backend answers with its configured id; a router answers with its own.
/// The router's health prober and the `fhg_router topology` subcommand use
/// this to tell "the backend I expect" from "something else on that port".
struct HelloRequest {
  friend bool operator==(const HelloRequest&, const HelloRequest&) = default;
};

/// Per-instance snapshot (v2): serialize exactly one tenant into a
/// single-instance blob of the canonical snapshot format.  This is the unit
/// of cluster migration — a router snapshots an instance from a surviving
/// replica and restores it into the adopting backend.  Routes through the
/// owning shard like a query, so it serializes against that instance's
/// mutations.
struct SnapshotInstanceRequest {
  std::string instance;  ///< tenant name

  friend bool operator==(const SnapshotInstanceRequest&, const SnapshotInstanceRequest&) = default;
};

/// Per-instance restore (v2): adopt one tenant from a
/// `SnapshotInstanceResponse::bytes` blob, replacing any instance of the
/// same name.  The inverse of `SnapshotInstanceRequest`; together they move
/// an instance between backends without touching the rest of the tenancy.
struct RestoreInstanceRequest {
  std::string instance;             ///< tenant name (must match the blob)
  std::vector<std::uint8_t> bytes;  ///< a single-instance snapshot blob

  friend bool operator==(const RestoreInstanceRequest&, const RestoreInstanceRequest&) = default;
};

/// Drain a backend out of a cluster (v2): migrate every instance it owns
/// onto the rest of the ring, then remove it.  Only a router can honor this;
/// a backend answers with a typed `kFailedPrecondition`.
struct DrainBackendRequest {
  std::string backend;  ///< the backend id to drain

  friend bool operator==(const DrainBackendRequest&, const DrainBackendRequest&) = default;
};

/// Every way into the system.  The alternative index is the wire tag
/// (append-only; never reorder).  Tags 10+ are protocol-version-2 kinds: the
/// codec refuses to decode them out of a frame that claims version 1.
using Request = std::variant<IsHappyRequest, NextGatheringRequest, ApplyMutationsRequest,
                             CreateInstanceRequest, EraseInstanceRequest, ListInstancesRequest,
                             SnapshotRequest, RestoreRequest, GetStatsRequest,
                             RecoverInfoRequest, HelloRequest, SnapshotInstanceRequest,
                             RestoreInstanceRequest, DrainBackendRequest>;

/// Number of request alternatives (the decode-time tag bound).
inline constexpr std::uint64_t kNumRequestKinds = std::variant_size_v<Request>;

/// First request tag that needs protocol version 2 (`HelloRequest`).  Tags
/// below this bound are the frozen version-1 surface.
inline constexpr std::uint64_t kFirstV2RequestTag = 10;

/// Short request kind name by wire tag ("is-happy", "next-gathering", …);
/// "unknown" past the end.  For logs and bench labels.
[[nodiscard]] std::string_view request_kind_name(std::size_t tag) noexcept;

/// True when the request kind by wire tag is safe to send twice: reads and
/// probes (queries, listings, snapshots, stats, hello) whose repeat is
/// invisible.  Mutations, lifecycle and restores are excluded — a retry
/// after an ambiguous failure could apply them twice.  This is the
/// vocabulary both the client's reconnect-retry policy and the cluster
/// router's failover consult; false past the end.
[[nodiscard]] bool request_is_idempotent(std::size_t tag) noexcept;

/// The instance a request addresses, or empty for the tenancy-wide kinds
/// (`ListInstances`, `Snapshot`, `Restore`).  This is the service layer's
/// routing key: everything about one instance serializes through one shard.
[[nodiscard]] std::string_view routing_instance(const Request& request) noexcept;

// -- Responses ----------------------------------------------------------------

/// Answer to `IsHappyRequest`.
struct IsHappyResponse {
  bool happy = false;  ///< true iff the node celebrates on the queried holiday

  friend bool operator==(const IsHappyResponse&, const IsHappyResponse&) = default;
};

/// Answer to `NextGatheringRequest`.
struct NextGatheringResponse {
  /// First happy holiday strictly after `after`, or `engine::kNoGathering`
  /// (0) when an aperiodic search gave up within its limit.
  std::uint64_t holiday = 0;

  friend bool operator==(const NextGatheringResponse&, const NextGatheringResponse&) = default;
};

/// Answer to `ApplyMutationsRequest` (mirror of `engine::MutationResult`).
struct ApplyMutationsResponse {
  std::uint64_t applied = 0;        ///< commands that changed topology
  std::uint64_t recolors = 0;       ///< recolor events those commands forced
  std::uint64_t table_version = 0;  ///< period-table version after the batch

  friend bool operator==(const ApplyMutationsResponse&, const ApplyMutationsResponse&) = default;
};

/// Answer to `CreateInstanceRequest` (success carries no data).
struct CreateInstanceResponse {
  friend bool operator==(const CreateInstanceResponse&, const CreateInstanceResponse&) = default;
};

/// Answer to `EraseInstanceRequest` (success carries no data).
struct EraseInstanceResponse {
  friend bool operator==(const EraseInstanceResponse&, const EraseInstanceResponse&) = default;
};

/// One tenant's row in a `ListInstancesResponse`.
struct InstanceInfo {
  std::string name;                                          ///< tenant name
  engine::SchedulerKind kind = engine::SchedulerKind::kPrefixCode;  ///< recipe kind
  graph::NodeId nodes = 0;   ///< live node count (grows under add-node mutations)
  bool periodic = false;     ///< serves queries from an O(1) period table
  bool dynamic = false;      ///< accepts live topology mutations

  friend bool operator==(const InstanceInfo&, const InstanceInfo&) = default;
};

/// Answer to `ListInstancesRequest`: every tenant, sorted by name.
struct ListInstancesResponse {
  std::vector<InstanceInfo> instances;  ///< canonical (name-sorted) order

  friend bool operator==(const ListInstancesResponse&, const ListInstancesResponse&) = default;
};

/// Answer to `SnapshotRequest`.
struct SnapshotResponse {
  std::vector<std::uint8_t> bytes;  ///< canonical Elias-coded snapshot

  friend bool operator==(const SnapshotResponse&, const SnapshotResponse&) = default;
};

/// Answer to `RestoreRequest`.
struct RestoreResponse {
  std::uint64_t instances = 0;  ///< tenants in the restored registry

  friend bool operator==(const RestoreResponse&, const RestoreResponse&) = default;
};

/// Answer to `GetStatsRequest`: the registry snapshot (name-sorted; see
/// `obs::Registry::snapshot`) and the slowest-request traces (slowest
/// first).  Vectors are empty when the matching request flag was off.
struct GetStatsResponse {
  std::vector<obs::MetricSample> metrics;  ///< name-sorted registry snapshot
  std::vector<obs::TraceSample> traces;    ///< slowest-N, slowest first

  friend bool operator==(const GetStatsResponse&, const GetStatsResponse&) = default;
};

/// Answer to `RecoverInfoRequest`: the durability picture.  `wal_enabled`
/// false means no WAL sink is attached — every WAL field is then zero.
/// `durable_batches` (total applied mutation batches across the tenancy) is
/// served either way: it is the sequence point a crash-recovery driver
/// resumes a deterministic mutation stream from.
struct RecoverInfoResponse {
  bool wal_enabled = false;                ///< a WAL sink is attached
  std::uint64_t last_durable_holiday = 0;  ///< max holiday across durable batches
  std::uint64_t wal_bytes = 0;             ///< bytes across live log segments
  std::uint64_t segments = 0;              ///< live log segment files
  std::uint64_t appends = 0;               ///< batches appended to the log
  std::uint64_t fsyncs = 0;                ///< fsync calls issued
  std::uint64_t compactions = 0;           ///< snapshot + truncate cycles
  std::uint64_t replayed_batches = 0;      ///< batches re-applied at recovery
  std::uint64_t replayed_commands = 0;     ///< commands across those batches
  std::uint64_t skipped_batches = 0;       ///< recovery batches already snapshotted
  std::uint64_t torn_bytes = 0;            ///< torn-tail bytes truncated at recovery
  std::uint64_t durable_batches = 0;       ///< Σ applied batches across tenants

  friend bool operator==(const RecoverInfoResponse&, const RecoverInfoResponse&) = default;
};

/// Answer to `HelloRequest` (v2): who answered, and what it speaks.
struct HelloResponse {
  std::string backend;             ///< the responder's configured id
  std::uint64_t min_version = 0;   ///< oldest protocol version it decodes
  std::uint64_t max_version = 0;   ///< newest protocol version it decodes

  friend bool operator==(const HelloResponse&, const HelloResponse&) = default;
};

/// Answer to `SnapshotInstanceRequest` (v2).
struct SnapshotInstanceResponse {
  std::vector<std::uint8_t> bytes;  ///< single-instance canonical snapshot

  friend bool operator==(const SnapshotInstanceResponse&,
                         const SnapshotInstanceResponse&) = default;
};

/// Answer to `RestoreInstanceRequest` (v2).
struct RestoreInstanceResponse {
  bool replaced = false;  ///< true iff an instance of that name already existed

  friend bool operator==(const RestoreInstanceResponse&,
                         const RestoreInstanceResponse&) = default;
};

/// Answer to `DrainBackendRequest` (v2, router-served).
struct DrainBackendResponse {
  std::uint64_t migrated = 0;  ///< instances moved off the drained backend

  friend bool operator==(const DrainBackendResponse&, const DrainBackendResponse&) = default;
};

/// The payload of a `Response`: `std::monostate` on failure, otherwise the
/// alternative matching the request kind (same order, offset by one).  The
/// alternative index is the wire tag (append-only; never reorder).  Tags 11+
/// are protocol-version-2 payloads: the codec refuses to decode them out of
/// a frame that claims version 1.
using ResponsePayload =
    std::variant<std::monostate, IsHappyResponse, NextGatheringResponse, ApplyMutationsResponse,
                 CreateInstanceResponse, EraseInstanceResponse, ListInstancesResponse,
                 SnapshotResponse, RestoreResponse, GetStatsResponse, RecoverInfoResponse,
                 HelloResponse, SnapshotInstanceResponse, RestoreInstanceResponse,
                 DrainBackendResponse>;

/// Number of response payload alternatives (the decode-time tag bound).
inline constexpr std::uint64_t kNumResponseKinds = std::variant_size_v<ResponsePayload>;

/// First response payload tag that needs protocol version 2 (`HelloResponse`).
inline constexpr std::uint64_t kFirstV2ResponseTag = 11;

/// What one served request produced: a typed status, and — iff the status is
/// ok — the payload matching the request kind.
struct Response {
  Status status;            ///< the typed verdict
  ResponsePayload payload;  ///< engaged (non-monostate) iff `status.ok()`

  /// True iff the request succeeded.
  [[nodiscard]] bool ok() const noexcept { return status.ok(); }

  /// A failure response with no payload.
  [[nodiscard]] static Response error(StatusCode code, std::string detail) {
    return Response{Status::error(code, std::move(detail)), std::monostate{}};
  }

  friend bool operator==(const Response&, const Response&) = default;
};

}  // namespace fhg::api
