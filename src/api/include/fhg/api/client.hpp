#pragma once

/// \file client.hpp
/// The transport-agnostic typed client — the one front door of the system.
///
/// A `Client` owns a `Transport` and turns typed calls into wire frames and
/// back: it assigns monotonically increasing request ids, encodes through
/// the versioned codec, round-trips the frame, and validates the response
/// (id echo, payload kind).  The same code drives an engine in this process
/// (`InProcessTransport`) or across TCP (`SocketTransport`) — swap the
/// transport, keep the calls.
///
/// ```
/// fhg::engine::Engine engine;
/// fhg::service::Service service(engine);
/// fhg::api::Client client(
///     std::make_unique<fhg::api::InProcessTransport>(service));
/// client.create_instance("acme", /*nodes=*/500, edges,
///                        {.kind = fhg::engine::SchedulerKind::kDegreeBound});
/// auto happy = client.is_happy("acme", 7, 123456789);
/// if (happy.status.ok() && happy.value) { plan_the_gathering(); }
/// ```
///
/// Not thread-safe: use one client (with its own transport) per thread.

#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "fhg/api/codec.hpp"
#include "fhg/api/protocol.hpp"
#include "fhg/api/transport.hpp"
#include "fhg/dynamic/mutation.hpp"
#include "fhg/engine/spec.hpp"
#include "fhg/graph/graph.hpp"

namespace fhg::api {

/// A typed call's outcome: a status, and a value that is meaningful iff the
/// status is ok.
template <typename T>
struct Result {
  Status status;  ///< the typed verdict
  T value{};      ///< meaningful iff `status.ok()`

  /// True iff the call succeeded and `value` is meaningful.
  [[nodiscard]] bool ok() const noexcept { return status.ok(); }
};

/// Bounded reconnect-with-backoff, applied by `Client::call` after a
/// *transport* failure (connection reset, peer gone) or a typed `kStopped`
/// (the server is draining — after a restart a fresh connection reaches the
/// new listener).  Off by default (`max_retries == 0`) so existing callers
/// keep their fail-fast semantics; the cluster router and `fhg_serve load
/// --retry` opt in.  Only idempotent request kinds are retried unless
/// `retry_non_idempotent` is set — an ambiguous failure mid-mutation must
/// not apply the batch twice (see `request_is_idempotent`).
struct RetryPolicy {
  std::size_t max_retries = 0;                  ///< extra attempts after the first (0 = off)
  std::chrono::milliseconds initial_backoff{5};  ///< sleep before the first retry
  std::chrono::milliseconds max_backoff{500};    ///< backoff doubles up to this cap
  bool retry_non_idempotent = false;             ///< opt mutations into retries too
};

/// The typed request/response client over an owned transport.
class Client {
 public:
  /// Takes ownership of `transport`.  `version` is the protocol version
  /// every frame is encoded at (override only to test version negotiation).
  explicit Client(std::unique_ptr<Transport> transport,
                  std::uint64_t version = kProtocolVersion)
      : transport_(std::move(transport)), version_(version) {}

  /// Round-trips one typed request: encode, transport, decode, validate the
  /// id echo.  Transport and decode failures come back as a `Response` with
  /// the corresponding typed status — `call` never throws.
  [[nodiscard]] Response call(const Request& request);

  /// The id the next `call` will stamp (ids start at 1 and increment).
  [[nodiscard]] std::uint64_t next_request_id() const noexcept { return next_id_; }

  /// Enables or disables trace minting (on by default).  While enabled,
  /// every `call` stamps `trace_base() + request_id` into the request
  /// envelope, so the server's slowest-N ring can name the exact call.
  /// Disabling writes no envelope — frames stay byte-identical to the
  /// pre-envelope encoding.
  void set_tracing(bool enabled) noexcept { tracing_ = enabled; }

  /// Offsets minted trace ids (default 0, i.e. trace id == request id).
  /// Give each client of a fleet a distinct base to keep ids globally
  /// unique across connections.
  void set_trace_base(std::uint64_t base) noexcept { trace_base_ = base; }

  /// The base added to request ids when minting trace ids.
  [[nodiscard]] std::uint64_t trace_base() const noexcept { return trace_base_; }

  /// Installs a reconnect-retry policy (see `RetryPolicy`; default off).
  void set_retry_policy(RetryPolicy policy) noexcept { retry_ = policy; }

  /// The active reconnect-retry policy.
  [[nodiscard]] const RetryPolicy& retry_policy() const noexcept { return retry_; }

  /// Transport roundtrips that failed and were retried under the policy.
  [[nodiscard]] std::uint64_t retries() const noexcept { return retries_; }

  /// `Transport::reconnect` calls the retry policy issued.
  [[nodiscard]] std::uint64_t reconnects() const noexcept { return reconnects_; }

  // -- Typed convenience wrappers (one per request kind) ----------------------

  /// Membership query: is `node` happy on holiday `holiday` of `instance`?
  [[nodiscard]] Result<bool> is_happy(std::string instance, graph::NodeId node,
                                      std::uint64_t holiday);

  /// First happy holiday of `node` strictly after `after`, or
  /// `engine::kNoGathering` when an aperiodic search gave up.
  [[nodiscard]] Result<std::uint64_t> next_gathering(std::string instance, graph::NodeId node,
                                                     std::uint64_t after);

  /// Applies a topology mutation batch to a dynamic tenant.
  [[nodiscard]] Result<ApplyMutationsResponse> apply_mutations(
      std::string instance, std::vector<dynamic::MutationCommand> commands);

  /// Creates a named tenant over an edge list with a scheduler recipe.
  [[nodiscard]] Status create_instance(std::string instance, graph::NodeId nodes,
                                       std::vector<graph::Edge> edges,
                                       engine::InstanceSpec spec);

  /// Removes a named tenant.
  [[nodiscard]] Status erase_instance(std::string instance);

  /// Every tenant, sorted by name.
  [[nodiscard]] Result<std::vector<InstanceInfo>> list_instances();

  /// The canonical Elias-coded snapshot of the whole tenancy.
  [[nodiscard]] Result<std::vector<std::uint8_t>> snapshot();

  /// Replaces the tenancy with a snapshot; the value is the restored tenant
  /// count.
  [[nodiscard]] Result<std::uint64_t> restore(std::vector<std::uint8_t> bytes);

  /// The serving side's telemetry: registry snapshot plus slowest-request
  /// traces (see `GetStatsRequest` for the determinism flags).
  [[nodiscard]] Result<GetStatsResponse> get_stats(GetStatsRequest options = {});

  /// The serving side's durability picture: WAL counters when a write-ahead
  /// log is attached (`wal_enabled`), plus the tenancy-wide applied-batch
  /// count either way.
  [[nodiscard]] Result<RecoverInfoResponse> recover_info();

  /// Identity handshake (protocol v2): who is on the other end, and what
  /// protocol versions it speaks.
  [[nodiscard]] Result<HelloResponse> hello();

  /// Single-instance snapshot (protocol v2): the migration unit blob.
  [[nodiscard]] Result<std::vector<std::uint8_t>> snapshot_instance(std::string instance);

  /// Single-instance restore (protocol v2): adopt `bytes` as `instance`,
  /// replacing any same-named tenant; the value reports whether one was
  /// replaced.
  [[nodiscard]] Result<bool> restore_instance(std::string instance,
                                              std::vector<std::uint8_t> bytes);

  /// Asks a router to drain `backend` out of its ring (protocol v2); the
  /// value is the number of instances migrated away.  Backends answer with
  /// a typed `kFailedPrecondition`.
  [[nodiscard]] Result<std::uint64_t> drain_backend(std::string backend);

 private:
  /// One encode → roundtrip → decode → id-check pass.  Sets
  /// `transport_failed` iff the transport itself reported the failure (the
  /// only failures a reconnect can cure).
  [[nodiscard]] Response call_once(const Request& request, bool& transport_failed);

  /// Runs `call` and unwraps a payload of type `P` into `Result<T>` via
  /// `project` (defaults to identity for `T == P`).
  template <typename P, typename T, typename Project>
  [[nodiscard]] Result<T> unwrap(const Request& request, Project project);

  std::unique_ptr<Transport> transport_;
  std::uint64_t version_;
  std::uint64_t next_id_ = 1;
  bool tracing_ = true;
  std::uint64_t trace_base_ = 0;
  RetryPolicy retry_{};
  std::uint64_t retries_ = 0;
  std::uint64_t reconnects_ = 0;
};

}  // namespace fhg::api
