#pragma once

/// \file status.hpp
/// The unified error model of the `fhg::api` protocol.
///
/// One enum covers every way a request can fail anywhere in the stack —
/// admission control (`kQueueFull`/`kStopped`, the former
/// `fhg::service::Reject`), engine lookup and validation (`kNotFound`,
/// `kInvalidArgument`, `kAlreadyExists`, `kFailedPrecondition`,
/// `kResourceExhausted`), and the wire codec (`kDecodeError`,
/// `kUnsupportedVersion`) — so callers branch on one code instead of
/// unpicking a `bool` / `std::optional<Reject>` / exception mix.  A `Status`
/// pairs the code with a human-readable detail string for logs; the code is
/// the contract, the detail is free-form.
///
/// This header is deliberately dependency-free (standard library only) so
/// layers *below* the api module — the engine, the service — can return
/// typed statuses without a dependency cycle.

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>

namespace fhg::api {

/// Why a request failed (or `kOk`).  Wire-stable: values are part of the
/// protocol and must never be renumbered.
enum class StatusCode : std::uint8_t {
  kOk = 0,                  ///< the request succeeded
  kQueueFull = 1,           ///< admission: the owning shard's queue is at capacity
  kStopped = 2,             ///< admission: the service is draining or drained
  kNotFound = 3,            ///< no instance with the requested name
  kInvalidArgument = 4,     ///< malformed request (bad node, bad spec, bad command)
  kAlreadyExists = 5,       ///< create: the instance name is already taken
  kFailedPrecondition = 6,  ///< the operation needs state the tenant lacks (e.g. mutating a non-dynamic tenant)
  kResourceExhausted = 7,   ///< a serving limit was hit (e.g. aperiodic replay limit)
  kDecodeError = 8,         ///< the frame or payload failed strict decode validation
  kUnsupportedVersion = 9,  ///< the peer speaks a protocol version this build does not
  kInternal = 10,           ///< unexpected failure; detail carries the diagnosis
};

/// Number of status codes (the decode-time validation bound).
inline constexpr std::uint64_t kNumStatusCodes = 11;

/// Human-readable code name ("ok", "queue-full", "stopped", "not-found", …).
/// The admission names match the former `service::reject_name` spellings, so
/// existing log grep patterns keep working.
[[nodiscard]] constexpr std::string_view status_name(StatusCode code) noexcept {
  switch (code) {
    case StatusCode::kOk:
      return "ok";
    case StatusCode::kQueueFull:
      return "queue-full";
    case StatusCode::kStopped:
      return "stopped";
    case StatusCode::kNotFound:
      return "not-found";
    case StatusCode::kInvalidArgument:
      return "invalid-argument";
    case StatusCode::kAlreadyExists:
      return "already-exists";
    case StatusCode::kFailedPrecondition:
      return "failed-precondition";
    case StatusCode::kResourceExhausted:
      return "resource-exhausted";
    case StatusCode::kDecodeError:
      return "decode-error";
    case StatusCode::kUnsupportedVersion:
      return "unsupported-version";
    case StatusCode::kInternal:
      return "internal";
  }
  return "unknown";
}

/// A status code plus a free-form detail string.  `code` is the typed
/// contract callers branch on; `detail` exists for humans and logs and is
/// never part of equality-of-behavior guarantees (but it *is* carried over
/// the wire, so both transports return identical details for identical
/// request streams).
struct Status {
  StatusCode code = StatusCode::kOk;  ///< the typed verdict
  std::string detail;                 ///< human-readable context; empty on success

  /// True iff the request succeeded.
  [[nodiscard]] bool ok() const noexcept { return code == StatusCode::kOk; }

  /// Human-readable name of `code`.
  [[nodiscard]] std::string_view name() const noexcept { return status_name(code); }

  /// Success.
  [[nodiscard]] static Status good() { return Status{}; }

  /// Failure with `code` and `detail`.
  [[nodiscard]] static Status error(StatusCode code, std::string detail) {
    return Status{code, std::move(detail)};
  }

  friend bool operator==(const Status&, const Status&) = default;
};

}  // namespace fhg::api
