#pragma once

/// \file transport.hpp
/// The client-side seam of the protocol: anything that can carry one encoded
/// request frame to a server and bring back the encoded response frame.
///
/// Transports move *bytes*, not typed values — the `Client` encodes before
/// and decodes after, so every path through the system exercises the same
/// codec and identical request streams produce byte-identical response
/// frames whether the server is in this process (`InProcessTransport`) or
/// across a socket (`SocketTransport`).  The transport-equivalence tests
/// assert exactly that.

#include <span>
#include <vector>

#include "fhg/api/codec.hpp"
#include "fhg/api/handler.hpp"
#include "fhg/api/status.hpp"

namespace fhg::api {

/// Carries encoded frames to a server and back.  Implementations are *not*
/// required to be thread-safe; use one transport (and one `Client`) per
/// thread.
class Transport {
 public:
  virtual ~Transport() = default;

  /// Sends one complete request frame and fills `response_frame` with the
  /// complete response frame.  Returns non-ok only on *transport* failure
  /// (connection lost, peer mis-framed); protocol-level failures travel
  /// inside the response frame as a typed `Response::status`.
  [[nodiscard]] virtual Status roundtrip(std::span<const std::uint8_t> request_frame,
                                         std::vector<std::uint8_t>& response_frame) = 0;

  /// Tears the underlying channel down and establishes a fresh one to the
  /// same endpoint, discarding any partial response state.  The hook the
  /// client's reconnect-retry policy calls after a failed roundtrip.  The
  /// default says this transport has nothing to reconnect (`kInternal`);
  /// the in-process transport cannot lose its "connection", so only
  /// channel-backed transports override it.
  [[nodiscard]] virtual Status reconnect() {
    return Status::error(StatusCode::kInternal, "transport does not support reconnect");
  }
};

/// Server-side glue shared by every transport: decodes one request frame,
/// executes it on `handler` (blocking until the completion lands), and
/// returns the encoded response frame.  Malformed frames come back as
/// encoded error responses (`kDecodeError` / `kUnsupportedVersion`)
/// addressed to the request id when the prologue was readable, id 0
/// otherwise — so a client always gets a typed answer, never silence.
///
/// Blocks the calling thread; must not be invoked from a handler completion
/// callback (the worker it would wait on is the one running it).
[[nodiscard]] std::vector<std::uint8_t> serve_frame(Handler& handler,
                                                    std::span<const std::uint8_t> frame);

/// The in-process transport: `roundtrip` is `serve_frame` against a local
/// handler.  Requests still pass through the full encode → decode → execute
/// → encode → decode pipeline, so in-process callers exercise (and validate)
/// the identical wire path the socket transport uses.
class InProcessTransport final : public Transport {
 public:
  /// Wraps `handler` (not owned; must outlive the transport).
  explicit InProcessTransport(Handler& handler) : handler_(handler) {}

  /// Serves the frame synchronously; the transport itself cannot fail.
  [[nodiscard]] Status roundtrip(std::span<const std::uint8_t> request_frame,
                                 std::vector<std::uint8_t>& response_frame) override;

 private:
  Handler& handler_;
};

}  // namespace fhg::api
