#pragma once

/// \file handler.hpp
/// The server-side seam of the protocol: anything that can execute a typed
/// `api::Request` and complete it with a typed `api::Response`.
///
/// `fhg::service::Service` is the production implementation (sharded queues,
/// coalesced engine batches); transports — in-process and socket — are
/// written against this interface, so the wire layer never names the service
/// and the dependency arrow points one way: `service → api`, never back.

#include <functional>

#include "fhg/api/protocol.hpp"

namespace fhg::api {

/// Completion callback for one request; invoked exactly once.
using ResponseCallback = std::function<void(Response)>;

/// Executes typed requests.  Implementations must invoke `done` exactly once
/// per `handle` call — possibly synchronously on the calling thread (e.g.
/// admission rejects) or later on a worker thread.
class Handler {
 public:
  virtual ~Handler() = default;

  /// Executes `request` and completes `done` with the typed outcome.
  /// Failures of any kind (admission, validation, serving) surface as a
  /// `Response` whose status is non-ok; implementations do not throw.
  virtual void handle(Request request, ResponseCallback done) = 0;
};

}  // namespace fhg::api
