#pragma once

/// \file handler.hpp
/// The server-side seam of the protocol: anything that can execute a typed
/// `api::Request` and complete it with a typed `api::Response`.
///
/// `fhg::service::Service` is the production implementation (sharded queues,
/// coalesced engine batches); transports — in-process and socket — are
/// written against this interface, so the wire layer never names the service
/// and the dependency arrow points one way: `service → api`, never back.

#include <cstdint>
#include <functional>
#include <utility>

#include "fhg/api/protocol.hpp"

namespace fhg::api {

/// Completion callback for one request; invoked exactly once.
using ResponseCallback = std::function<void(Response)>;

/// Wire-level context travelling alongside one request: the correlation id
/// from the frame prologue, and the trace id from the optional envelope
/// (zero when the caller did not trace the request).  Carried out-of-band —
/// not inside `Request` — so the typed request surface stays exactly the
/// paper's query surface and existing handlers need not know tracing exists.
struct RequestContext {
  std::uint64_t trace_id = 0;    ///< envelope trace id (0 = untraced)
  std::uint64_t request_id = 0;  ///< frame correlation id
};

/// Executes typed requests.  Implementations must invoke `done` exactly once
/// per `handle` call — possibly synchronously on the calling thread (e.g.
/// admission rejects) or later on a worker thread.
class Handler {
 public:
  virtual ~Handler() = default;

  /// Executes `request` and completes `done` with the typed outcome.
  /// Failures of any kind (admission, validation, serving) surface as a
  /// `Response` whose status is non-ok; implementations do not throw.
  virtual void handle(Request request, ResponseCallback done) = 0;

  /// As above, with the wire context.  Transports call this overload; the
  /// default forwards to the context-free `handle`, so handlers that do not
  /// trace (tests, adapters) implement only the pure virtual and still work.
  virtual void handle(Request request, const RequestContext& context, ResponseCallback done) {
    (void)context;
    handle(std::move(request), std::move(done));
  }
};

}  // namespace fhg::api
