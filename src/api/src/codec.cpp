#include "fhg/api/codec.hpp"

#include <limits>
#include <stdexcept>
#include <string>
#include <utility>

#include "fhg/coding/bitio.hpp"
#include "fhg/obs/registry.hpp"

namespace fhg::api {

namespace {

using coding::BitReader;
using coding::BitWriter;

// -- Codec telemetry ----------------------------------------------------------
//
// Bytes and frames through the codec land on the process-wide registry
// (`obs::Registry::global()`), *not* on any engine's registry: the /metrics
// endpoint scrapes them, but GetStats deliberately excludes them so that
// serving a stats request does not perturb the stats it reports.  The hot
// counters are cached once (Meyers statics); decode errors are rare enough
// to pay a registry lookup per occurrence, which buys a per-cause label.

obs::Counter& bytes_encoded_counter() {
  static obs::Counter& counter =
      obs::Registry::global().counter("fhg_api_bytes_encoded_total");
  return counter;
}

obs::Counter& frames_encoded_counter() {
  static obs::Counter& counter =
      obs::Registry::global().counter("fhg_api_frames_encoded_total");
  return counter;
}

obs::Counter& bytes_decoded_counter() {
  static obs::Counter& counter =
      obs::Registry::global().counter("fhg_api_bytes_decoded_total");
  return counter;
}

obs::Counter& frames_decoded_counter() {
  static obs::Counter& counter =
      obs::Registry::global().counter("fhg_api_frames_decoded_total");
  return counter;
}

void count_decode_error(const char* cause) {
  obs::Registry::global()
      .counter(std::string("fhg_api_decode_errors_total{cause=\"") + cause + "\"}")
      .increment();
}

/// Thrown inside the decoders to carry a typed failure out to the catch in
/// `decode_request`/`decode_response` (where it becomes a `Status`).
struct DecodeFailure : std::runtime_error {
  using std::runtime_error::runtime_error;
};

[[noreturn]] void fail(const std::string& what) { throw DecodeFailure("api codec: " + what); }

using coding::check_count;

std::uint64_t checked_enum(BitReader& r, std::uint64_t bound, const char* what) {
  const std::uint64_t value = r.get_uint();
  if (value >= bound) {
    fail(std::string("unknown ") + what + " " + std::to_string(value));
  }
  return value;
}

graph::NodeId read_node(BitReader& r) {
  const std::uint64_t v = r.get_uint();
  if (v > std::numeric_limits<graph::NodeId>::max()) {
    fail("node id " + std::to_string(v) + " out of NodeId range");
  }
  return static_cast<graph::NodeId>(v);
}

// Strings and blobs are byte-aligned on the wire (length varint, zero-pad
// to the next byte boundary, then the raw bytes): multi-megabyte snapshot
// payloads move at memcpy speed instead of eight branchy bit calls per
// byte, for at most seven padding bits per field.

void write_string(BitWriter& w, std::string_view s) {
  w.put_uint(s.size());
  w.put_bytes({reinterpret_cast<const std::uint8_t*>(s.data()), s.size()});
}

std::string read_string(BitReader& r, const char* what) {
  const std::uint64_t length = r.get_uint();
  check_count(r, length, 8, what);
  std::string s(static_cast<std::size_t>(length), '\0');
  r.get_bytes({reinterpret_cast<std::uint8_t*>(s.data()), s.size()});
  return s;
}

void write_blob(BitWriter& w, std::span<const std::uint8_t> bytes) {
  w.put_uint(bytes.size());
  w.put_bytes(bytes);
}

std::vector<std::uint8_t> read_blob(BitReader& r, const char* what) {
  const std::uint64_t length = r.get_uint();
  check_count(r, length, 8, what);
  std::vector<std::uint8_t> bytes(static_cast<std::size_t>(length));
  r.get_bytes(bytes);
  return bytes;
}

void write_commands(BitWriter& w, std::span<const dynamic::MutationCommand> commands) {
  w.put_uint(commands.size());
  for (const dynamic::MutationCommand& cmd : commands) {
    w.put_uint(static_cast<std::uint64_t>(cmd.op));
    w.put_uint(cmd.holiday);
    w.put_uint(cmd.u);
    w.put_uint(cmd.v);
  }
}

std::vector<dynamic::MutationCommand> read_commands(BitReader& r) {
  const std::uint64_t count = r.get_uint();
  check_count(r, count, 4, "mutation command");  // four codewords of >= 1 bit
  std::vector<dynamic::MutationCommand> commands;
  commands.reserve(static_cast<std::size_t>(count));
  for (std::uint64_t i = 0; i < count; ++i) {
    dynamic::MutationCommand cmd;
    cmd.op = static_cast<dynamic::MutationOp>(
        checked_enum(r, static_cast<std::uint64_t>(dynamic::MutationOp::kAddNode) + 1,
                     "mutation op"));
    cmd.holiday = r.get_uint();
    cmd.u = read_node(r);
    cmd.v = read_node(r);
    commands.push_back(cmd);
  }
  return commands;
}

void write_spec(BitWriter& w, const engine::InstanceSpec& spec) {
  w.put_uint(static_cast<std::uint64_t>(spec.kind));
  w.put_uint(static_cast<std::uint64_t>(spec.code));
  w.put_uint(spec.seed);
  w.put_uint(spec.slack);
  w.put_uint(spec.periods.size());
  for (const std::uint64_t p : spec.periods) {
    w.put_uint(p);
  }
}

engine::InstanceSpec read_spec(BitReader& r) {
  engine::InstanceSpec spec;
  spec.kind = static_cast<engine::SchedulerKind>(checked_enum(
      r, static_cast<std::uint64_t>(engine::SchedulerKind::kDynamicPrefixCode) + 1,
      "scheduler kind"));
  spec.code = static_cast<coding::CodeFamily>(
      checked_enum(r, static_cast<std::uint64_t>(coding::CodeFamily::kEliasOmega) + 1,
                   "code family"));
  spec.seed = r.get_uint();
  const std::uint64_t slack = r.get_uint();
  if (slack > std::numeric_limits<std::uint32_t>::max()) {
    fail("slack " + std::to_string(slack) + " out of range");
  }
  spec.slack = static_cast<std::uint32_t>(slack);
  const std::uint64_t periods = r.get_uint();
  check_count(r, periods, 1, "period");
  spec.periods.resize(static_cast<std::size_t>(periods));
  for (std::uint64_t i = 0; i < periods; ++i) {
    spec.periods[static_cast<std::size_t>(i)] = r.get_uint();
  }
  return spec;
}

void write_edges(BitWriter& w, std::span<const graph::Edge> edges) {
  w.put_uint(edges.size());
  for (const graph::Edge& e : edges) {
    w.put_uint(e.first);
    w.put_uint(e.second);
  }
}

std::vector<graph::Edge> read_edges(BitReader& r) {
  const std::uint64_t count = r.get_uint();
  check_count(r, count, 2, "edge");  // two codewords of >= 1 bit each
  std::vector<graph::Edge> edges;
  edges.reserve(static_cast<std::size_t>(count));
  for (std::uint64_t i = 0; i < count; ++i) {
    const graph::NodeId first = read_node(r);
    const graph::NodeId second = read_node(r);
    edges.push_back({first, second});
  }
  return edges;
}

// -- Stats payloads -----------------------------------------------------------

/// Gauges can be negative; zigzag keeps small magnitudes small on the wire
/// (and keeps the varint out of the astronomically long two's-complement
/// encodings a negative value would otherwise produce).
std::uint64_t zigzag(std::int64_t value) noexcept {
  return (static_cast<std::uint64_t>(value) << 1) ^
         static_cast<std::uint64_t>(value >> 63);
}

std::int64_t unzigzag(std::uint64_t value) noexcept {
  return static_cast<std::int64_t>((value >> 1) ^ (~(value & 1) + 1));
}

void write_histogram(BitWriter& w, const obs::Histogram& hist) {
  w.put_uint(obs::Histogram::kBuckets);
  for (const std::uint64_t count : hist.buckets) {
    w.put_uint(count);
  }
}

obs::Histogram read_histogram(BitReader& r) {
  const std::uint64_t buckets = r.get_uint();
  if (buckets != obs::Histogram::kBuckets) {
    fail("histogram with " + std::to_string(buckets) + " buckets; this build has " +
         std::to_string(obs::Histogram::kBuckets));
  }
  obs::Histogram hist;
  for (std::size_t i = 0; i < obs::Histogram::kBuckets; ++i) {
    hist.buckets[i] = r.get_uint();
  }
  return hist;
}

void write_metric_samples(BitWriter& w, std::span<const obs::MetricSample> samples) {
  w.put_uint(samples.size());
  for (const obs::MetricSample& sample : samples) {
    write_string(w, sample.name);
    w.put_uint(static_cast<std::uint64_t>(sample.kind));
    switch (sample.kind) {
      case obs::MetricKind::kCounter:
        w.put_uint(sample.value);
        break;
      case obs::MetricKind::kGauge:
        w.put_uint(zigzag(static_cast<std::int64_t>(sample.value)));
        break;
      case obs::MetricKind::kHistogram:
        write_histogram(w, sample.histogram);
        break;
    }
  }
}

std::vector<obs::MetricSample> read_metric_samples(BitReader& r) {
  const std::uint64_t count = r.get_uint();
  check_count(r, count, 3, "metric sample");  // name len + kind + >= 1 value bit
  std::vector<obs::MetricSample> samples;
  samples.reserve(static_cast<std::size_t>(count));
  for (std::uint64_t i = 0; i < count; ++i) {
    obs::MetricSample sample;
    sample.name = read_string(r, "metric name byte");
    sample.kind = static_cast<obs::MetricKind>(
        checked_enum(r, static_cast<std::uint64_t>(obs::MetricKind::kHistogram) + 1,
                     "metric kind"));
    switch (sample.kind) {
      case obs::MetricKind::kCounter:
        sample.value = r.get_uint();
        break;
      case obs::MetricKind::kGauge:
        sample.value = static_cast<std::uint64_t>(unzigzag(r.get_uint()));
        break;
      case obs::MetricKind::kHistogram:
        sample.histogram = read_histogram(r);
        sample.value = sample.histogram.total();
        break;
    }
    samples.push_back(std::move(sample));
  }
  return samples;
}

void write_trace_samples(BitWriter& w, std::span<const obs::TraceSample> traces) {
  w.put_uint(traces.size());
  for (const obs::TraceSample& trace : traces) {
    w.put_uint(trace.trace_id);
    w.put_uint(trace.request_id);
    w.put_uint(trace.kind);
    w.put_uint(trace.queue_us);
    w.put_uint(trace.serve_us);
    w.put_uint(trace.total_us);
  }
}

std::vector<obs::TraceSample> read_trace_samples(BitReader& r) {
  const std::uint64_t count = r.get_uint();
  check_count(r, count, 6, "trace sample");  // six codewords of >= 1 bit
  std::vector<obs::TraceSample> traces;
  traces.reserve(static_cast<std::size_t>(count));
  for (std::uint64_t i = 0; i < count; ++i) {
    obs::TraceSample trace;
    trace.trace_id = r.get_uint();
    trace.request_id = r.get_uint();
    trace.kind = static_cast<std::uint8_t>(
        checked_enum(r, kNumRequestKinds, "trace request kind"));
    trace.queue_us = r.get_uint();
    trace.serve_us = r.get_uint();
    trace.total_us = r.get_uint();
    traces.push_back(trace);
  }
  return traces;
}

// -- Request envelope ---------------------------------------------------------
//
// Byte-aligned after the body: a field count, then (tag, varint value)
// pairs.  Alignment is what makes "absent" unambiguous — after the reader
// aligns past the body's zero padding, an envelope-free payload has exactly
// zero bits left, while the smallest possible envelope spans at least one
// full byte.  Unknown tags are skipped for forward compatibility.

void write_envelope(BitWriter& w, std::uint64_t trace_id) {
  if (trace_id == 0) {
    return;  // no envelope: the frame stays byte-identical to pre-envelope encoders
  }
  w.align();
  w.put_uint(1);  // field count
  w.put_uint(kEnvelopeTraceId);
  w.put_uint(trace_id);
}

std::uint64_t read_envelope(BitReader& r) {
  r.align();
  if (r.remaining_bits() < 8) {
    return 0;  // no envelope present
  }
  std::uint64_t trace_id = 0;
  const std::uint64_t fields = r.get_uint();
  check_count(r, fields, 2, "envelope field");  // tag + value, >= 1 bit each
  for (std::uint64_t i = 0; i < fields; ++i) {
    const std::uint64_t tag = r.get_uint();
    const std::uint64_t value = r.get_uint();
    if (tag == kEnvelopeTraceId) {
      trace_id = value;
    }
    // Unknown tags: value read and discarded (forward compatibility).
  }
  return trace_id;
}

// -- Request bodies -----------------------------------------------------------

void write_request_body(BitWriter& w, const Request& request) {
  w.put_uint(request.index());
  std::visit(
      [&w](const auto& r) {
        using R = std::decay_t<decltype(r)>;
        if constexpr (std::is_same_v<R, IsHappyRequest>) {
          write_string(w, r.instance);
          w.put_uint(r.node);
          w.put_uint(r.holiday);
        } else if constexpr (std::is_same_v<R, NextGatheringRequest>) {
          write_string(w, r.instance);
          w.put_uint(r.node);
          w.put_uint(r.after);
        } else if constexpr (std::is_same_v<R, ApplyMutationsRequest>) {
          write_string(w, r.instance);
          write_commands(w, r.commands);
        } else if constexpr (std::is_same_v<R, CreateInstanceRequest>) {
          write_string(w, r.instance);
          w.put_uint(r.nodes);
          write_edges(w, r.edges);
          write_spec(w, r.spec);
        } else if constexpr (std::is_same_v<R, EraseInstanceRequest>) {
          write_string(w, r.instance);
        } else if constexpr (std::is_same_v<R, RestoreRequest>) {
          write_blob(w, r.bytes);
        } else if constexpr (std::is_same_v<R, GetStatsRequest>) {
          w.put_bit(r.include_histograms);
          w.put_bit(r.include_traces);
        } else if constexpr (std::is_same_v<R, SnapshotInstanceRequest>) {
          write_string(w, r.instance);
        } else if constexpr (std::is_same_v<R, RestoreInstanceRequest>) {
          write_string(w, r.instance);
          write_blob(w, r.bytes);
        } else if constexpr (std::is_same_v<R, DrainBackendRequest>) {
          write_string(w, r.backend);
        } else {
          // ListInstances / Snapshot / RecoverInfo / Hello carry no fields
          // beyond the tag.
          static_assert(std::is_same_v<R, ListInstancesRequest> ||
                        std::is_same_v<R, SnapshotRequest> ||
                        std::is_same_v<R, RecoverInfoRequest> ||
                        std::is_same_v<R, HelloRequest>);
        }
      },
      request);
}

Request read_request_body(BitReader& r, std::uint64_t version) {
  const std::uint64_t tag = r.get_uint();
  if (tag >= kFirstV2RequestTag && version < 2) {
    // A version-1 frame can never legitimately carry a version-2 kind: the
    // tag space above the v1 bound simply does not exist at that version,
    // so this is a malformed frame, not a negotiable mismatch.
    fail("request tag " + std::to_string(tag) + " needs protocol version 2, frame claims " +
         std::to_string(version));
  }
  switch (tag) {
    case 0: {
      IsHappyRequest req;
      req.instance = read_string(r, "instance name byte");
      req.node = read_node(r);
      req.holiday = r.get_uint();
      return req;
    }
    case 1: {
      NextGatheringRequest req;
      req.instance = read_string(r, "instance name byte");
      req.node = read_node(r);
      req.after = r.get_uint();
      return req;
    }
    case 2: {
      ApplyMutationsRequest req;
      req.instance = read_string(r, "instance name byte");
      req.commands = read_commands(r);
      return req;
    }
    case 3: {
      CreateInstanceRequest req;
      req.instance = read_string(r, "instance name byte");
      req.nodes = read_node(r);
      req.edges = read_edges(r);
      req.spec = read_spec(r);
      return req;
    }
    case 4: {
      EraseInstanceRequest req;
      req.instance = read_string(r, "instance name byte");
      return req;
    }
    case 5:
      return ListInstancesRequest{};
    case 6:
      return SnapshotRequest{};
    case 7: {
      RestoreRequest req;
      req.bytes = read_blob(r, "snapshot byte");
      return req;
    }
    case 8: {
      GetStatsRequest req;
      req.include_histograms = r.get_bit();
      req.include_traces = r.get_bit();
      return req;
    }
    case 9:
      return RecoverInfoRequest{};
    case 10:
      return HelloRequest{};
    case 11: {
      SnapshotInstanceRequest req;
      req.instance = read_string(r, "instance name byte");
      return req;
    }
    case 12: {
      RestoreInstanceRequest req;
      req.instance = read_string(r, "instance name byte");
      req.bytes = read_blob(r, "snapshot byte");
      return req;
    }
    case 13: {
      DrainBackendRequest req;
      req.backend = read_string(r, "backend id byte");
      return req;
    }
    default:
      fail("unknown request tag " + std::to_string(tag));
  }
}

// -- Response bodies ----------------------------------------------------------

void write_response_body(BitWriter& w, const Response& response) {
  w.put_uint(static_cast<std::uint64_t>(response.status.code));
  write_string(w, response.status.detail);
  w.put_uint(response.payload.index());
  std::visit(
      [&w](const auto& p) {
        using P = std::decay_t<decltype(p)>;
        if constexpr (std::is_same_v<P, IsHappyResponse>) {
          w.put_bit(p.happy);
        } else if constexpr (std::is_same_v<P, NextGatheringResponse>) {
          w.put_uint(p.holiday);
        } else if constexpr (std::is_same_v<P, ApplyMutationsResponse>) {
          w.put_uint(p.applied);
          w.put_uint(p.recolors);
          w.put_uint(p.table_version);
        } else if constexpr (std::is_same_v<P, ListInstancesResponse>) {
          w.put_uint(p.instances.size());
          for (const InstanceInfo& info : p.instances) {
            write_string(w, info.name);
            w.put_uint(static_cast<std::uint64_t>(info.kind));
            w.put_uint(info.nodes);
            w.put_bit(info.periodic);
            w.put_bit(info.dynamic);
          }
        } else if constexpr (std::is_same_v<P, SnapshotResponse>) {
          write_blob(w, p.bytes);
        } else if constexpr (std::is_same_v<P, RestoreResponse>) {
          w.put_uint(p.instances);
        } else if constexpr (std::is_same_v<P, GetStatsResponse>) {
          write_metric_samples(w, p.metrics);
          write_trace_samples(w, p.traces);
        } else if constexpr (std::is_same_v<P, RecoverInfoResponse>) {
          w.put_bit(p.wal_enabled);
          w.put_uint(p.last_durable_holiday);
          w.put_uint(p.wal_bytes);
          w.put_uint(p.segments);
          w.put_uint(p.appends);
          w.put_uint(p.fsyncs);
          w.put_uint(p.compactions);
          w.put_uint(p.replayed_batches);
          w.put_uint(p.replayed_commands);
          w.put_uint(p.skipped_batches);
          w.put_uint(p.torn_bytes);
          w.put_uint(p.durable_batches);
        } else if constexpr (std::is_same_v<P, HelloResponse>) {
          write_string(w, p.backend);
          w.put_uint(p.min_version);
          w.put_uint(p.max_version);
        } else if constexpr (std::is_same_v<P, SnapshotInstanceResponse>) {
          write_blob(w, p.bytes);
        } else if constexpr (std::is_same_v<P, RestoreInstanceResponse>) {
          w.put_bit(p.replaced);
        } else if constexpr (std::is_same_v<P, DrainBackendResponse>) {
          w.put_uint(p.migrated);
        } else {
          // monostate / Create / Erase carry no fields beyond the tag.
          static_assert(std::is_same_v<P, std::monostate> ||
                        std::is_same_v<P, CreateInstanceResponse> ||
                        std::is_same_v<P, EraseInstanceResponse>);
        }
      },
      response.payload);
}

Response read_response_body(BitReader& r, std::uint64_t version) {
  Response response;
  response.status.code =
      static_cast<StatusCode>(checked_enum(r, kNumStatusCodes, "status code"));
  response.status.detail = read_string(r, "status detail byte");
  const std::uint64_t tag = r.get_uint();
  if (tag >= kFirstV2ResponseTag && version < 2) {
    fail("response tag " + std::to_string(tag) + " needs protocol version 2, frame claims " +
         std::to_string(version));
  }
  switch (tag) {
    case 0:
      response.payload = std::monostate{};
      break;
    case 1: {
      IsHappyResponse p;
      p.happy = r.get_bit();
      response.payload = p;
      break;
    }
    case 2: {
      NextGatheringResponse p;
      p.holiday = r.get_uint();
      response.payload = p;
      break;
    }
    case 3: {
      ApplyMutationsResponse p;
      p.applied = r.get_uint();
      p.recolors = r.get_uint();
      p.table_version = r.get_uint();
      response.payload = p;
      break;
    }
    case 4:
      response.payload = CreateInstanceResponse{};
      break;
    case 5:
      response.payload = EraseInstanceResponse{};
      break;
    case 6: {
      ListInstancesResponse p;
      const std::uint64_t count = r.get_uint();
      check_count(r, count, 5, "instance info");  // name len + 2 uints + 2 bits
      p.instances.reserve(static_cast<std::size_t>(count));
      for (std::uint64_t i = 0; i < count; ++i) {
        InstanceInfo info;
        info.name = read_string(r, "instance name byte");
        info.kind = static_cast<engine::SchedulerKind>(checked_enum(
            r, static_cast<std::uint64_t>(engine::SchedulerKind::kDynamicPrefixCode) + 1,
            "scheduler kind"));
        info.nodes = read_node(r);
        info.periodic = r.get_bit();
        info.dynamic = r.get_bit();
        p.instances.push_back(std::move(info));
      }
      response.payload = std::move(p);
      break;
    }
    case 7: {
      SnapshotResponse p;
      p.bytes = read_blob(r, "snapshot byte");
      response.payload = std::move(p);
      break;
    }
    case 8: {
      RestoreResponse p;
      p.instances = r.get_uint();
      response.payload = p;
      break;
    }
    case 9: {
      GetStatsResponse p;
      p.metrics = read_metric_samples(r);
      p.traces = read_trace_samples(r);
      response.payload = std::move(p);
      break;
    }
    case 10: {
      RecoverInfoResponse p;
      p.wal_enabled = r.get_bit();
      p.last_durable_holiday = r.get_uint();
      p.wal_bytes = r.get_uint();
      p.segments = r.get_uint();
      p.appends = r.get_uint();
      p.fsyncs = r.get_uint();
      p.compactions = r.get_uint();
      p.replayed_batches = r.get_uint();
      p.replayed_commands = r.get_uint();
      p.skipped_batches = r.get_uint();
      p.torn_bytes = r.get_uint();
      p.durable_batches = r.get_uint();
      response.payload = p;
      break;
    }
    case 11: {
      HelloResponse p;
      p.backend = read_string(r, "backend id byte");
      p.min_version = r.get_uint();
      p.max_version = r.get_uint();
      response.payload = std::move(p);
      break;
    }
    case 12: {
      SnapshotInstanceResponse p;
      p.bytes = read_blob(r, "snapshot byte");
      response.payload = std::move(p);
      break;
    }
    case 13: {
      RestoreInstanceResponse p;
      p.replaced = r.get_bit();
      response.payload = p;
      break;
    }
    case 14: {
      DrainBackendResponse p;
      p.migrated = r.get_uint();
      response.payload = p;
      break;
    }
    default:
      fail("unknown response tag " + std::to_string(tag));
  }
  return response;
}

// -- Framing ------------------------------------------------------------------

/// Wraps a finished payload in the 8-byte header.
std::vector<std::uint8_t> frame_payload(std::vector<std::uint8_t> payload) {
  if (payload.size() > kMaxFramePayload) {
    throw std::length_error("api codec: payload of " + std::to_string(payload.size()) +
                            " bytes exceeds kMaxFramePayload");
  }
  std::vector<std::uint8_t> frame;
  frame.reserve(kFrameHeaderBytes + payload.size());
  for (int shift = 24; shift >= 0; shift -= 8) {
    frame.push_back(static_cast<std::uint8_t>(kFrameMagic >> shift));
  }
  const auto length = static_cast<std::uint32_t>(payload.size());
  for (int shift = 24; shift >= 0; shift -= 8) {
    frame.push_back(static_cast<std::uint8_t>(length >> shift));
  }
  frame.insert(frame.end(), payload.begin(), payload.end());
  return frame;
}

/// Validates the header of a complete frame and returns the payload span.
/// Non-ok statuses mirror `FrameAssembler`'s framing errors; `cause` names
/// the failure for the per-cause decode-error counter.
Status framed_payload(std::span<const std::uint8_t> frame,
                      std::span<const std::uint8_t>& payload, const char*& cause) {
  if (frame.size() < kFrameHeaderBytes) {
    cause = "short-frame";
    return Status::error(StatusCode::kDecodeError,
                         "frame of " + std::to_string(frame.size()) +
                             " bytes is shorter than the 8-byte header");
  }
  std::uint32_t magic = 0;
  std::uint32_t length = 0;
  for (std::size_t i = 0; i < 4; ++i) {
    magic = (magic << 8) | frame[i];
    length = (length << 8) | frame[4 + i];
  }
  if (magic != kFrameMagic) {
    cause = "bad-magic";
    return Status::error(StatusCode::kDecodeError, "bad frame magic");
  }
  if (length > kMaxFramePayload) {
    cause = "oversized";
    return Status::error(StatusCode::kDecodeError,
                         "length prefix " + std::to_string(length) + " exceeds the " +
                             std::to_string(kMaxFramePayload) + "-byte frame bound");
  }
  if (length != frame.size() - kFrameHeaderBytes) {
    cause = "length-mismatch";
    return Status::error(StatusCode::kDecodeError,
                         "length prefix " + std::to_string(length) + " does not match the " +
                             std::to_string(frame.size() - kFrameHeaderBytes) +
                             " payload bytes present");
  }
  payload = frame.subspan(kFrameHeaderBytes);
  return Status::good();
}

/// Shared prologue decode: version then request id.  Fills `version` and
/// `request_id` (best effort) and returns non-ok for unsupported versions.
Status decode_prologue(BitReader& r, std::uint64_t& version, std::uint64_t& request_id) {
  version = r.get_uint();
  request_id = r.get_uint();
  if (version < kMinSupportedVersion || version > kProtocolVersion) {
    return Status::error(StatusCode::kUnsupportedVersion,
                         "peer speaks protocol version " + std::to_string(version) +
                             "; this build supports versions " +
                             std::to_string(kMinSupportedVersion) + " through " +
                             std::to_string(kProtocolVersion));
  }
  return Status::good();
}

}  // namespace

std::vector<std::uint8_t> encode_request(std::uint64_t request_id, const Request& request,
                                         std::uint64_t version, std::uint64_t trace_id) {
  BitWriter w;
  w.put_uint(version);
  w.put_uint(request_id);
  write_request_body(w, request);
  write_envelope(w, trace_id);
  std::vector<std::uint8_t> frame = frame_payload(w.finish());
  bytes_encoded_counter().add(frame.size());
  frames_encoded_counter().increment();
  return frame;
}

std::vector<std::uint8_t> encode_response(std::uint64_t request_id, const Response& response,
                                          std::uint64_t version) {
  std::vector<std::uint8_t> frame;
  encode_response_into(request_id, response, frame, version);
  return frame;
}

void encode_response_into(std::uint64_t request_id, const Response& response,
                          std::vector<std::uint8_t>& frame, std::uint64_t version) {
  BitWriter w;
  w.put_uint(version);
  w.put_uint(request_id);
  write_response_body(w, response);
  const std::vector<std::uint8_t> payload = w.finish();
  if (payload.size() > kMaxFramePayload) {
    throw std::length_error("api codec: payload of " + std::to_string(payload.size()) +
                            " bytes exceeds kMaxFramePayload");
  }
  frame.clear();
  frame.reserve(kFrameHeaderBytes + payload.size());
  for (int shift = 24; shift >= 0; shift -= 8) {
    frame.push_back(static_cast<std::uint8_t>(kFrameMagic >> shift));
  }
  const auto length = static_cast<std::uint32_t>(payload.size());
  for (int shift = 24; shift >= 0; shift -= 8) {
    frame.push_back(static_cast<std::uint8_t>(length >> shift));
  }
  frame.insert(frame.end(), payload.begin(), payload.end());
  bytes_encoded_counter().add(frame.size());
  frames_encoded_counter().increment();
}

Status decode_request(std::span<const std::uint8_t> frame, DecodedRequest& out) {
  out = DecodedRequest{};
  std::span<const std::uint8_t> payload;
  const char* cause = "frame";
  if (Status status = framed_payload(frame, payload, cause); !status.ok()) {
    count_decode_error(cause);
    return status;
  }
  BitReader r(payload);
  try {
    if (Status status = decode_prologue(r, out.protocol_version, out.request_id);
        !status.ok()) {
      count_decode_error("version");
      return status;
    }
    out.request = read_request_body(r, out.protocol_version);
    out.trace_id = read_envelope(r);
  } catch (const std::runtime_error& e) {
    count_decode_error("body");
    return Status::error(StatusCode::kDecodeError, e.what());
  }
  bytes_decoded_counter().add(frame.size());
  frames_decoded_counter().increment();
  return Status::good();
}

Status decode_response(std::span<const std::uint8_t> frame, DecodedResponse& out) {
  out = DecodedResponse{};
  std::span<const std::uint8_t> payload;
  const char* cause = "frame";
  if (Status status = framed_payload(frame, payload, cause); !status.ok()) {
    count_decode_error(cause);
    return status;
  }
  BitReader r(payload);
  try {
    if (Status status = decode_prologue(r, out.protocol_version, out.request_id);
        !status.ok()) {
      count_decode_error("version");
      return status;
    }
    out.response = read_response_body(r, out.protocol_version);
  } catch (const std::runtime_error& e) {
    count_decode_error("body");
    return Status::error(StatusCode::kDecodeError, e.what());
  }
  bytes_decoded_counter().add(frame.size());
  frames_decoded_counter().increment();
  return Status::good();
}

// ------------------------------------------------------------ FrameAssembler --

Status FrameAssembler::feed(std::span<const std::uint8_t> bytes) {
  if (!error_.ok()) {
    return error_;
  }
  buffer_.insert(buffer_.end(), bytes.begin(), bytes.end());
  validate_front();
  return error_;
}

void FrameAssembler::validate_front() {
  if (!error_.ok() || buffer_.size() < kFrameHeaderBytes) {
    return;
  }
  std::uint32_t magic = 0;
  std::uint32_t length = 0;
  for (std::size_t i = 0; i < 4; ++i) {
    magic = (magic << 8) | buffer_[i];
    length = (length << 8) | buffer_[4 + i];
  }
  if (magic != kFrameMagic) {
    error_ = Status::error(StatusCode::kDecodeError, "bad frame magic");
  } else if (length > max_payload_) {
    error_ = Status::error(StatusCode::kDecodeError,
                           "length prefix " + std::to_string(length) + " exceeds the " +
                               std::to_string(max_payload_) + "-byte frame bound");
  }
}

void FrameAssembler::reset() {
  buffer_.clear();
  error_ = Status::good();
}

std::optional<std::vector<std::uint8_t>> FrameAssembler::next() {
  if (!error_.ok() || buffer_.size() < kFrameHeaderBytes) {
    return std::nullopt;
  }
  std::uint32_t length = 0;
  for (std::size_t i = 0; i < 4; ++i) {
    length = (length << 8) | buffer_[4 + i];
  }
  const std::size_t total = kFrameHeaderBytes + length;
  if (buffer_.size() < total) {
    return std::nullopt;
  }
  std::vector<std::uint8_t> frame(buffer_.begin(),
                                  buffer_.begin() + static_cast<std::ptrdiff_t>(total));
  buffer_.erase(buffer_.begin(), buffer_.begin() + static_cast<std::ptrdiff_t>(total));
  validate_front();  // the next frame's header may already be buffered
  return frame;
}

}  // namespace fhg::api
