#include "fhg/api/client.hpp"

#include <stdexcept>
#include <utility>

namespace fhg::api {

Response Client::call(const Request& request) {
  const std::uint64_t id = next_id_++;
  std::vector<std::uint8_t> frame;
  try {
    frame = encode_request(id, request, version_, tracing_ ? trace_base_ + id : 0);
  } catch (const std::length_error&) {
    // The request (e.g. a Restore carrying a giant snapshot) exceeds the
    // frame bound; `call` promises typed failures, never exceptions.
    return Response::error(StatusCode::kInvalidArgument,
                           "request exceeds the frame payload bound");
  }
  std::vector<std::uint8_t> response_frame;
  if (Status status = transport_->roundtrip(frame, response_frame); !status.ok()) {
    return Response{std::move(status), std::monostate{}};
  }
  DecodedResponse decoded;
  if (Status status = decode_response(response_frame, decoded); !status.ok()) {
    return Response{std::move(status), std::monostate{}};
  }
  if (decoded.request_id != id) {
    return Response::error(StatusCode::kInternal,
                           "response id " + std::to_string(decoded.request_id) +
                               " does not echo request id " + std::to_string(id));
  }
  return std::move(decoded.response);
}

template <typename P, typename T, typename Project>
Result<T> Client::unwrap(const Request& request, Project project) {
  Response response = call(request);
  if (!response.ok()) {
    return Result<T>{std::move(response.status), T{}};
  }
  auto* payload = std::get_if<P>(&response.payload);
  if (payload == nullptr) {
    return Result<T>{Status::error(StatusCode::kInternal,
                                   "response payload does not match the request kind"),
                     T{}};
  }
  return Result<T>{Status::good(), project(std::move(*payload))};
}

Result<bool> Client::is_happy(std::string instance, graph::NodeId node, std::uint64_t holiday) {
  return unwrap<IsHappyResponse, bool>(
      IsHappyRequest{std::move(instance), node, holiday},
      [](IsHappyResponse p) { return p.happy; });
}

Result<std::uint64_t> Client::next_gathering(std::string instance, graph::NodeId node,
                                             std::uint64_t after) {
  return unwrap<NextGatheringResponse, std::uint64_t>(
      NextGatheringRequest{std::move(instance), node, after},
      [](NextGatheringResponse p) { return p.holiday; });
}

Result<ApplyMutationsResponse> Client::apply_mutations(
    std::string instance, std::vector<dynamic::MutationCommand> commands) {
  return unwrap<ApplyMutationsResponse, ApplyMutationsResponse>(
      ApplyMutationsRequest{std::move(instance), std::move(commands)},
      [](ApplyMutationsResponse p) { return p; });
}

Status Client::create_instance(std::string instance, graph::NodeId nodes,
                               std::vector<graph::Edge> edges, engine::InstanceSpec spec) {
  return unwrap<CreateInstanceResponse, CreateInstanceResponse>(
             CreateInstanceRequest{std::move(instance), nodes, std::move(edges),
                                   std::move(spec)},
             [](CreateInstanceResponse p) { return p; })
      .status;
}

Status Client::erase_instance(std::string instance) {
  return unwrap<EraseInstanceResponse, EraseInstanceResponse>(
             EraseInstanceRequest{std::move(instance)},
             [](EraseInstanceResponse p) { return p; })
      .status;
}

Result<std::vector<InstanceInfo>> Client::list_instances() {
  return unwrap<ListInstancesResponse, std::vector<InstanceInfo>>(
      ListInstancesRequest{}, [](ListInstancesResponse p) { return std::move(p.instances); });
}

Result<std::vector<std::uint8_t>> Client::snapshot() {
  return unwrap<SnapshotResponse, std::vector<std::uint8_t>>(
      SnapshotRequest{}, [](SnapshotResponse p) { return std::move(p.bytes); });
}

Result<std::uint64_t> Client::restore(std::vector<std::uint8_t> bytes) {
  return unwrap<RestoreResponse, std::uint64_t>(RestoreRequest{std::move(bytes)},
                                                [](RestoreResponse p) { return p.instances; });
}

Result<GetStatsResponse> Client::get_stats(GetStatsRequest options) {
  return unwrap<GetStatsResponse, GetStatsResponse>(options,
                                                    [](GetStatsResponse p) { return p; });
}

Result<RecoverInfoResponse> Client::recover_info() {
  return unwrap<RecoverInfoResponse, RecoverInfoResponse>(
      RecoverInfoRequest{}, [](RecoverInfoResponse p) { return p; });
}

}  // namespace fhg::api
