#include "fhg/api/client.hpp"

#include <algorithm>
#include <stdexcept>
#include <thread>
#include <utility>

namespace fhg::api {

Response Client::call_once(const Request& request, bool& transport_failed) {
  transport_failed = false;
  const std::uint64_t id = next_id_++;
  std::vector<std::uint8_t> frame;
  try {
    frame = encode_request(id, request, version_, tracing_ ? trace_base_ + id : 0);
  } catch (const std::length_error&) {
    // The request (e.g. a Restore carrying a giant snapshot) exceeds the
    // frame bound; `call` promises typed failures, never exceptions.
    return Response::error(StatusCode::kInvalidArgument,
                           "request exceeds the frame payload bound");
  }
  std::vector<std::uint8_t> response_frame;
  if (Status status = transport_->roundtrip(frame, response_frame); !status.ok()) {
    transport_failed = true;
    return Response{std::move(status), std::monostate{}};
  }
  DecodedResponse decoded;
  if (Status status = decode_response(response_frame, decoded); !status.ok()) {
    return Response{std::move(status), std::monostate{}};
  }
  if (decoded.request_id != id) {
    return Response::error(StatusCode::kInternal,
                           "response id " + std::to_string(decoded.request_id) +
                               " does not echo request id " + std::to_string(id));
  }
  return std::move(decoded.response);
}

Response Client::call(const Request& request) {
  bool transport_failed = false;
  Response response = call_once(request, transport_failed);
  if (retry_.max_retries == 0) {
    return response;
  }
  if (!retry_.retry_non_idempotent && !request_is_idempotent(request.index())) {
    return response;
  }
  std::chrono::milliseconds backoff = retry_.initial_backoff;
  for (std::size_t attempt = 0; attempt < retry_.max_retries; ++attempt) {
    // Retry only what a fresh connection can cure: a dead transport, or a
    // server that answered "stopped" because it is draining (a restart
    // replaces the listener, so redialing reaches the new process).  Every
    // other verdict — including typed failures like kNotFound — is the
    // server's real answer.
    const bool stopped = !transport_failed && response.status.code == StatusCode::kStopped;
    if (!transport_failed && !stopped) {
      return response;
    }
    std::this_thread::sleep_for(backoff);
    backoff = std::min(backoff * 2, retry_.max_backoff);
    ++retries_;
    // Best effort: a refused dial leaves the transport disconnected and the
    // next attempt's roundtrip fails typed, consuming one bounded attempt.
    ++reconnects_;
    (void)transport_->reconnect();
    response = call_once(request, transport_failed);
  }
  return response;
}

template <typename P, typename T, typename Project>
Result<T> Client::unwrap(const Request& request, Project project) {
  Response response = call(request);
  if (!response.ok()) {
    return Result<T>{std::move(response.status), T{}};
  }
  auto* payload = std::get_if<P>(&response.payload);
  if (payload == nullptr) {
    return Result<T>{Status::error(StatusCode::kInternal,
                                   "response payload does not match the request kind"),
                     T{}};
  }
  return Result<T>{Status::good(), project(std::move(*payload))};
}

Result<bool> Client::is_happy(std::string instance, graph::NodeId node, std::uint64_t holiday) {
  return unwrap<IsHappyResponse, bool>(
      IsHappyRequest{std::move(instance), node, holiday},
      [](IsHappyResponse p) { return p.happy; });
}

Result<std::uint64_t> Client::next_gathering(std::string instance, graph::NodeId node,
                                             std::uint64_t after) {
  return unwrap<NextGatheringResponse, std::uint64_t>(
      NextGatheringRequest{std::move(instance), node, after},
      [](NextGatheringResponse p) { return p.holiday; });
}

Result<ApplyMutationsResponse> Client::apply_mutations(
    std::string instance, std::vector<dynamic::MutationCommand> commands) {
  return unwrap<ApplyMutationsResponse, ApplyMutationsResponse>(
      ApplyMutationsRequest{std::move(instance), std::move(commands)},
      [](ApplyMutationsResponse p) { return p; });
}

Status Client::create_instance(std::string instance, graph::NodeId nodes,
                               std::vector<graph::Edge> edges, engine::InstanceSpec spec) {
  return unwrap<CreateInstanceResponse, CreateInstanceResponse>(
             CreateInstanceRequest{std::move(instance), nodes, std::move(edges),
                                   std::move(spec)},
             [](CreateInstanceResponse p) { return p; })
      .status;
}

Status Client::erase_instance(std::string instance) {
  return unwrap<EraseInstanceResponse, EraseInstanceResponse>(
             EraseInstanceRequest{std::move(instance)},
             [](EraseInstanceResponse p) { return p; })
      .status;
}

Result<std::vector<InstanceInfo>> Client::list_instances() {
  return unwrap<ListInstancesResponse, std::vector<InstanceInfo>>(
      ListInstancesRequest{}, [](ListInstancesResponse p) { return std::move(p.instances); });
}

Result<std::vector<std::uint8_t>> Client::snapshot() {
  return unwrap<SnapshotResponse, std::vector<std::uint8_t>>(
      SnapshotRequest{}, [](SnapshotResponse p) { return std::move(p.bytes); });
}

Result<std::uint64_t> Client::restore(std::vector<std::uint8_t> bytes) {
  return unwrap<RestoreResponse, std::uint64_t>(RestoreRequest{std::move(bytes)},
                                                [](RestoreResponse p) { return p.instances; });
}

Result<GetStatsResponse> Client::get_stats(GetStatsRequest options) {
  return unwrap<GetStatsResponse, GetStatsResponse>(options,
                                                    [](GetStatsResponse p) { return p; });
}

Result<RecoverInfoResponse> Client::recover_info() {
  return unwrap<RecoverInfoResponse, RecoverInfoResponse>(
      RecoverInfoRequest{}, [](RecoverInfoResponse p) { return p; });
}

Result<HelloResponse> Client::hello() {
  return unwrap<HelloResponse, HelloResponse>(HelloRequest{},
                                              [](HelloResponse p) { return p; });
}

Result<std::vector<std::uint8_t>> Client::snapshot_instance(std::string instance) {
  return unwrap<SnapshotInstanceResponse, std::vector<std::uint8_t>>(
      SnapshotInstanceRequest{std::move(instance)},
      [](SnapshotInstanceResponse p) { return std::move(p.bytes); });
}

Result<bool> Client::restore_instance(std::string instance, std::vector<std::uint8_t> bytes) {
  return unwrap<RestoreInstanceResponse, bool>(
      RestoreInstanceRequest{std::move(instance), std::move(bytes)},
      [](RestoreInstanceResponse p) { return p.replaced; });
}

Result<std::uint64_t> Client::drain_backend(std::string backend) {
  return unwrap<DrainBackendResponse, std::uint64_t>(
      DrainBackendRequest{std::move(backend)},
      [](DrainBackendResponse p) { return p.migrated; });
}

}  // namespace fhg::api
