#include "fhg/api/socket.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <deque>
#include <map>
#include <stdexcept>
#include <string>
#include <unordered_map>
#include <utility>

#include "fhg/api/codec.hpp"
#include "fhg/obs/registry.hpp"

namespace fhg::api {

namespace {

using Clock = std::chrono::steady_clock;

/// Read chunk size of the event-loop and roundtrip read paths.
constexpr std::size_t kReadChunk = 64 * 1024;

/// epoll_wait batch size per wakeup.
constexpr int kEpollBatch = 256;

/// Pooled response buffers kept per server (and the capacity bound above
/// which a buffer is returned to the allocator instead of the pool, so one
/// giant snapshot response does not pin megabytes forever).
constexpr std::size_t kPoolMaxBuffers = 256;
constexpr std::size_t kPoolMaxBufferBytes = 256 * 1024;

// Socket-layer telemetry lands on the process-wide registry (scraped by
// /metrics, excluded from GetStats — see the codec's registry note).
// Handles are cached once; the event loop pays relaxed increments only.

struct SocketCounters {
  obs::Counter& connections =
      obs::Registry::global().counter("fhg_socket_connections_total");
  obs::Counter& connections_reaped =
      obs::Registry::global().counter("fhg_socket_connections_reaped_total");
  obs::Gauge& connections_open = obs::Registry::global().gauge("fhg_socket_connections");
  obs::Gauge& connections_peak =
      obs::Registry::global().gauge("fhg_socket_connections_peak");
  // accept errors are deliberately absent here: they are per-listener (see
  // SocketServer::accept_errors_), labeled by bound port.
  obs::Counter& epoll_wakes =
      obs::Registry::global().counter("fhg_socket_epoll_wakes_total");
  obs::Counter& write_stalls =
      obs::Registry::global().counter("fhg_socket_write_stalls_total");
  obs::Counter& frames = obs::Registry::global().counter("fhg_socket_frames_total");
  obs::Counter& bytes_read =
      obs::Registry::global().counter("fhg_socket_bytes_read_total");
  obs::Counter& bytes_written =
      obs::Registry::global().counter("fhg_socket_bytes_written_total");
  obs::HistogramCell& frame_us =
      obs::Registry::global().histogram("fhg_socket_frame_us");
};

SocketCounters& socket_counters() {
  static SocketCounters counters;
  return counters;
}

[[noreturn]] void throw_errno(const std::string& what) {
  throw std::runtime_error("fhg::api socket: " + what + ": " + std::strerror(errno));
}

/// Parses a dotted-quad address into a loopback-or-any sockaddr.
sockaddr_in make_address(const std::string& host, std::uint16_t port) {
  sockaddr_in address{};
  address.sin_family = AF_INET;
  address.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &address.sin_addr) != 1) {
    throw std::runtime_error("fhg::api socket: '" + host +
                             "' is not a dotted-quad IPv4 address");
  }
  return address;
}

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  (void)::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

/// Sends the whole buffer on a *blocking* socket, retrying on EINTR and
/// partial writes.  MSG_NOSIGNAL keeps a dead peer an errno (EPIPE), never
/// a process-killing SIGPIPE.
bool send_all(int fd, std::span<const std::uint8_t> bytes) {
  std::size_t sent = 0;
  while (sent < bytes.size()) {
    const ssize_t n = ::send(fd, bytes.data() + sent, bytes.size() - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      return false;
    }
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

/// One recv, retrying on EINTR.  Returns -1 on error, 0 on orderly EOF.
ssize_t recv_some(int fd, std::uint8_t* buffer, std::size_t size) {
  for (;;) {
    const ssize_t n = ::recv(fd, buffer, size, 0);
    if (n < 0 && errno == EINTR) {
      continue;
    }
    return n;
  }
}

/// Reads the big-endian length prefix of a frame header, or npos when the
/// header is not a valid one (the assembler re-checks and poisons).
constexpr std::size_t kBadHeader = static_cast<std::size_t>(-1);
std::size_t whole_frame_size(std::span<const std::uint8_t> bytes, std::size_t max_payload) {
  if (bytes.size() < kFrameHeaderBytes) {
    return kBadHeader;
  }
  const std::uint32_t magic = (std::uint32_t{bytes[0]} << 24) | (std::uint32_t{bytes[1]} << 16) |
                              (std::uint32_t{bytes[2]} << 8) | std::uint32_t{bytes[3]};
  if (magic != kFrameMagic) {
    return kBadHeader;
  }
  const std::size_t payload = (std::size_t{bytes[4]} << 24) | (std::size_t{bytes[5]} << 16) |
                              (std::size_t{bytes[6]} << 8) | std::size_t{bytes[7]};
  if (payload > max_payload) {
    return kBadHeader;
  }
  return kFrameHeaderBytes + payload;
}

}  // namespace

// ------------------------------------------------------------- event loop --

/// One accepted connection: a state machine owned by exactly one event-loop
/// worker.  All fields are touched only on that worker's thread — handler
/// completions never mutate a connection directly; they post to the owning
/// worker's inbox and the worker applies them.
struct SocketServer::Connection {
  int fd = -1;
  std::size_t worker = 0;  ///< owning event loop (index into workers_)
  FrameAssembler assembler;

  // The ordering window: requests get sequence numbers as they decode;
  // completions may land out of order but responses are written strictly in
  // sequence, so pipelined clients see answers in submission order.
  std::uint64_t next_dispatch_seq = 0;  ///< next request sequence to assign
  std::uint64_t next_write_seq = 0;     ///< next response sequence to write
  std::map<std::uint64_t, std::vector<std::uint8_t>> ready;  ///< out-of-order completions
  std::size_t inflight = 0;  ///< dispatched requests whose completion has not landed

  std::deque<std::vector<std::uint8_t>> outbox;  ///< response bytes awaiting the kernel
  std::size_t outbox_offset = 0;                 ///< sent prefix of outbox.front()

  bool want_write = false;        ///< EPOLLOUT armed (kernel buffer was full)
  bool read_open = true;          ///< still reading (no EOF, not poisoned)
  bool hangup_after_flush = false;  ///< close once every pending response is out
  bool closed = false;            ///< fd closed; late completions are dropped
};

/// A worker's cross-thread mailbox.  Held by `shared_ptr` from the worker,
/// the acceptor and every in-flight completion callback, so a completion
/// landing after the server stopped finds a flagged-closed inbox instead of
/// a dangling pointer or a recycled eventfd.
struct SocketServer::Worker {
  struct Inbox {
    std::mutex mutex;
    bool closed = false;  ///< set after the worker exits; wake() becomes a no-op
    int event_fd = -1;
    std::vector<int> incoming;  ///< freshly accepted fds awaiting registration

    struct Completion {
      std::shared_ptr<Connection> connection;
      std::uint64_t seq = 0;
      std::vector<std::uint8_t> bytes;
    };
    std::vector<Completion> completions;

    /// Recycled response buffers: completion callbacks (on handler worker
    /// threads) acquire, the event loop releases after the bytes hit the
    /// kernel.  Bounded in count and per-buffer capacity.
    std::vector<std::vector<std::uint8_t>> pool;

    std::vector<std::uint8_t> acquire_buffer() {
      const std::lock_guard<std::mutex> lock(mutex);
      if (pool.empty()) {
        return {};
      }
      std::vector<std::uint8_t> buffer = std::move(pool.back());
      pool.pop_back();
      return buffer;
    }

    void release_buffer(std::vector<std::uint8_t>&& buffer) {
      if (buffer.capacity() > kPoolMaxBufferBytes) {
        return;  // oversized one-offs go back to the allocator
      }
      buffer.clear();
      const std::lock_guard<std::mutex> lock(mutex);
      if (pool.size() < kPoolMaxBuffers) {
        pool.push_back(std::move(buffer));
      }
    }

    /// Wakes the event loop (one relaxed eventfd write).  Safe at any time,
    /// from any thread, including after the worker exited.
    void wake() {
      const std::lock_guard<std::mutex> lock(mutex);
      if (!closed) {
        const std::uint64_t one = 1;
        [[maybe_unused]] const ssize_t n = ::write(event_fd, &one, sizeof(one));
      }
    }
  };

  int epoll_fd = -1;
  std::shared_ptr<Inbox> inbox = std::make_shared<Inbox>();
  std::thread thread;
  std::unordered_map<int, std::shared_ptr<Connection>> connections;  ///< by fd
  std::size_t inflight = 0;  ///< dispatched-not-yet-applied completions (loop thread only)
  std::vector<std::uint8_t> read_buffer = std::vector<std::uint8_t>(kReadChunk);
};

SocketServer::SocketServer(Handler& handler, SocketServerOptions options)
    : handler_(handler), options_(options), host_(std::move(options.host)) {
  const sockaddr_in address = make_address(host_, options.port);
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    throw_errno("socket");
  }
  const int enable = 1;
  (void)::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &enable, sizeof(enable));
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&address), sizeof(address)) != 0) {
    const int saved = errno;
    ::close(listen_fd_);
    errno = saved;
    throw_errno("bind " + host_ + ":" + std::to_string(options.port));
  }
  if (::listen(listen_fd_, options.backlog) != 0) {
    const int saved = errno;
    ::close(listen_fd_);
    errno = saved;
    throw_errno("listen");
  }
  sockaddr_in bound{};
  socklen_t bound_size = sizeof(bound);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &bound_size) != 0) {
    const int saved = errno;
    ::close(listen_fd_);
    errno = saved;
    throw_errno("getsockname");
  }
  port_ = ntohs(bound.sin_port);
  // The port is only known post-bind (0 = ephemeral), so the per-listener
  // error counter is created here rather than in the shared counter bundle.
  accept_errors_ = &obs::Registry::global().counter(
      "fhg_socket_accept_errors_total{port=\"" + std::to_string(port_) + "\"}");

  std::size_t workers = options.workers;
  if (workers == 0) {
    workers = std::min<std::size_t>(4, std::max(1u, std::thread::hardware_concurrency()));
  }
  workers_.reserve(workers);
  for (std::size_t w = 0; w < workers; ++w) {
    auto worker = std::make_unique<Worker>();
    worker->epoll_fd = ::epoll_create1(EPOLL_CLOEXEC);
    if (worker->epoll_fd < 0) {
      throw_errno("epoll_create1");
    }
    worker->inbox->event_fd = ::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
    if (worker->inbox->event_fd < 0) {
      throw_errno("eventfd");
    }
    epoll_event wake_event{};
    wake_event.events = EPOLLIN;
    wake_event.data.fd = worker->inbox->event_fd;
    if (::epoll_ctl(worker->epoll_fd, EPOLL_CTL_ADD, worker->inbox->event_fd, &wake_event) != 0) {
      throw_errno("epoll_ctl eventfd");
    }
    workers_.push_back(std::move(worker));
  }
  for (auto& worker : workers_) {
    Worker& ref = *worker;
    ref.thread = std::thread([this, &ref] { event_loop(ref); });
  }
  accept_thread_ = std::thread([this] { accept_loop(); });
}

SocketServer::~SocketServer() { stop(); }

void SocketServer::accept_loop() {
  SocketCounters& counters = socket_counters();
  for (;;) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (stopping_.load(std::memory_order_acquire)) {
        return;  // listen socket closed by stop()
      }
      if (errno == EINTR || errno == ECONNABORTED || errno == EPROTO) {
        accept_errors_->increment();
        continue;  // aborted handshake: the listener is fine, keep serving
      }
      if (errno == EMFILE || errno == ENFILE) {
        // Momentary fd exhaustion: back off briefly instead of abandoning
        // the port forever — connections close and free fds all the time.
        accept_errors_->increment();
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
        continue;
      }
      return;  // the listener itself is unusable
    }
    connections_accepted_.fetch_add(1, std::memory_order_relaxed);
    counters.connections.increment();
    counters.connections_open.add(1);
    counters.connections_peak.record_max(counters.connections_open.value());
    const int enable = 1;
    (void)::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &enable, sizeof(enable));
    if (options_.send_buffer_bytes > 0) {
      (void)::setsockopt(fd, SOL_SOCKET, SO_SNDBUF, &options_.send_buffer_bytes,
                         sizeof(options_.send_buffer_bytes));
    }
    set_nonblocking(fd);
    // Round-robin placement; the owning worker registers the fd in its own
    // epoll set, so connection state never crosses threads.
    Worker& worker = *workers_[next_worker_.fetch_add(1, std::memory_order_relaxed) %
                              workers_.size()];
    {
      const std::lock_guard<std::mutex> lock(worker.inbox->mutex);
      if (worker.inbox->closed) {
        ::close(fd);  // raced with stop(): the loop is gone, refuse politely
        counters.connections_open.add(-1);
        return;
      }
      worker.inbox->incoming.push_back(fd);
      const std::uint64_t one = 1;
      [[maybe_unused]] const ssize_t n = ::write(worker.inbox->event_fd, &one, sizeof(one));
    }
  }
}

void SocketServer::event_loop(Worker& worker) {
  SocketCounters& counters = socket_counters();
  epoll_event events[kEpollBatch];
  std::vector<int> incoming;
  std::vector<Worker::Inbox::Completion> completions;
  // The loop outlives stop() long enough to apply every in-flight handler
  // completion: callbacks hold shared state (inbox, connections), so exiting
  // with inflight > 0 would strand them; exiting only at zero means every
  // completion has fully run by the time stop() joins this thread.
  while (!stopping_.load(std::memory_order_acquire) || worker.inflight > 0) {
    const int ready = ::epoll_wait(worker.epoll_fd, events, kEpollBatch, -1);
    if (ready < 0) {
      if (errno == EINTR) {
        continue;
      }
      break;  // the epoll fd itself failed: unrecoverable
    }
    counters.epoll_wakes.increment();

    // 1. Drain the inbox: register fresh connections, apply completions.
    bool inbox_signaled = false;
    for (int i = 0; i < ready; ++i) {
      inbox_signaled |= events[i].data.fd == worker.inbox->event_fd;
    }
    if (inbox_signaled) {
      std::uint64_t drained = 0;
      [[maybe_unused]] const ssize_t n =
          ::read(worker.inbox->event_fd, &drained, sizeof(drained));
      {
        const std::lock_guard<std::mutex> lock(worker.inbox->mutex);
        incoming.swap(worker.inbox->incoming);
        completions.swap(worker.inbox->completions);
      }
      const bool draining = stopping_.load(std::memory_order_acquire);
      for (const int fd : incoming) {
        if (draining) {
          ::close(fd);
          counters.connections_open.add(-1);
          counters.connections_reaped.increment();
          continue;
        }
        auto connection = std::make_shared<Connection>();
        connection->fd = fd;
        epoll_event event{};
        event.events = EPOLLIN;
        event.data.fd = fd;
        if (::epoll_ctl(worker.epoll_fd, EPOLL_CTL_ADD, fd, &event) != 0) {
          ::close(fd);
          counters.connections_open.add(-1);
          counters.connections_reaped.increment();
          continue;
        }
        worker.connections.emplace(fd, std::move(connection));
      }
      incoming.clear();
      for (auto& completion : completions) {
        --worker.inflight;
        const std::shared_ptr<Connection>& connection = completion.connection;
        --connection->inflight;
        if (connection->closed) {
          continue;  // the peer is gone; the response has no one to go to
        }
        connection->ready.emplace(completion.seq, std::move(completion.bytes));
        flush(worker, connection);
      }
      completions.clear();
    }

    // 2. Socket readiness.  Look connections up by fd: a connection closed
    // earlier in this batch (or replaced after an fd reuse) simply misses.
    for (int i = 0; i < ready; ++i) {
      if (events[i].data.fd == worker.inbox->event_fd) {
        continue;
      }
      const auto it = worker.connections.find(events[i].data.fd);
      if (it == worker.connections.end()) {
        continue;
      }
      const std::shared_ptr<Connection> connection = it->second;
      if ((events[i].events & (EPOLLERR | EPOLLHUP)) != 0) {
        close_connection(worker, connection);
        continue;
      }
      if ((events[i].events & EPOLLOUT) != 0 && !connection->closed) {
        flush(worker, connection);
      }
      if ((events[i].events & EPOLLIN) != 0 && !connection->closed &&
          connection->read_open) {
        on_readable(worker, connection);
      }
    }

    // Entering shutdown: fail every connection's pending I/O once.  The
    // loop then spins on the inbox until the last completion lands.
    if (stopping_.load(std::memory_order_acquire)) {
      std::vector<std::shared_ptr<Connection>> live;
      live.reserve(worker.connections.size());
      for (const auto& [fd, connection] : worker.connections) {
        live.push_back(connection);
      }
      for (const auto& connection : live) {
        close_connection(worker, connection);
      }
    }
  }
}

namespace {

/// Re-arms a connection's epoll interest to match its state machine: read
/// while the stream is open, write while the outbox is parked on a full
/// kernel buffer.  A mask of zero is valid (EPOLLERR/EPOLLHUP still fire) —
/// crucially, a drained EOF connection must *not* stay EPOLLIN-armed, or
/// level-triggered readiness would spin the loop.
void update_interest(int epoll_fd, int fd, bool read_open, bool want_write) {
  epoll_event event{};
  event.events = (read_open ? EPOLLIN : 0u) | (want_write ? EPOLLOUT : 0u);
  event.data.fd = fd;
  (void)::epoll_ctl(epoll_fd, EPOLL_CTL_MOD, fd, &event);
}

}  // namespace

void SocketServer::on_readable(Worker& worker, const std::shared_ptr<Connection>& connection) {
  SocketCounters& counters = socket_counters();
  for (;;) {
    const ssize_t n = recv_some(connection->fd, worker.read_buffer.data(), kReadChunk);
    if (n < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        return;  // drained; epoll will call again
      }
      close_connection(worker, connection);  // ECONNRESET and friends
      return;
    }
    if (n == 0) {
      // Orderly EOF: stop reading, let pending responses flush, then close.
      connection->read_open = false;
      connection->hangup_after_flush = true;
      update_interest(worker.epoll_fd, connection->fd, false, connection->want_write);
      flush(worker, connection);
      return;
    }
    counters.bytes_read.add(static_cast<std::uint64_t>(n));
    std::span<const std::uint8_t> bytes{worker.read_buffer.data(), static_cast<std::size_t>(n)};

    // Zero-copy fast path: frames that arrived whole in this read are
    // dispatched straight from the read buffer; only a trailing partial
    // frame (or a mid-frame carryover) pays the assembler's copy.
    if (connection->assembler.buffered() == 0) {
      while (!bytes.empty()) {
        const std::size_t frame_size = whole_frame_size(bytes, kMaxFramePayload);
        if (frame_size == kBadHeader || frame_size > bytes.size()) {
          break;  // partial or mis-framed: the assembler takes over
        }
        dispatch_frame(worker, connection, bytes.subspan(0, frame_size));
        bytes = bytes.subspan(frame_size);
        if (connection->closed || !connection->read_open) {
          return;
        }
      }
      if (bytes.empty()) {
        flush(worker, connection);
        continue;
      }
    }
    if (!connection->assembler.feed(bytes).ok()) {
      // The stream is irrecoverably mis-framed (bad magic / oversized
      // length): answer typed once — as the connection's final, ordered
      // response — then hang up; resynchronization is impossible without
      // frame boundaries.
      const std::uint64_t seq = connection->next_dispatch_seq++;
      connection->ready.emplace(
          seq, encode_response(0, Response{connection->assembler.error(), std::monostate{}}));
      connection->read_open = false;
      connection->hangup_after_flush = true;
      update_interest(worker.epoll_fd, connection->fd, false, connection->want_write);
      flush(worker, connection);
      return;
    }
    while (auto frame = connection->assembler.next()) {
      dispatch_frame(worker, connection, *frame);
      if (connection->closed || !connection->read_open) {
        return;
      }
    }
    flush(worker, connection);
  }
}

void SocketServer::dispatch_frame(Worker& worker, const std::shared_ptr<Connection>& connection,
                                  std::span<const std::uint8_t> frame) {
  DecodedRequest decoded;
  if (Status status = decode_request(frame, decoded); !status.ok()) {
    // Well-framed but undecodable: a typed reply addressed to whatever id
    // the prologue yielded, and the stream continues — framing is intact.
    const std::uint64_t seq = connection->next_dispatch_seq++;
    connection->ready.emplace(seq, encode_response(decoded.request_id,
                                                   Response{std::move(status), std::monostate{}}));
    return;
  }
  const std::uint64_t seq = connection->next_dispatch_seq++;
  ++connection->inflight;
  ++worker.inflight;
  const RequestContext context{decoded.trace_id, decoded.request_id};
  // The completion may run synchronously (admission rejects) or later on a
  // handler worker thread; either way it only touches the shared inbox —
  // the event loop applies it to the connection on its own thread.
  handler_.handle(
      std::move(decoded.request), context,
      [inbox = worker.inbox, connection, seq, request_id = decoded.request_id,
       start = Clock::now()](Response response) {
        std::vector<std::uint8_t> bytes = inbox->acquire_buffer();
        try {
          encode_response_into(request_id, response, bytes);
        } catch (const std::length_error&) {
          // The response (e.g. a huge tenancy's snapshot) exceeds the frame
          // bound.  Answer typed instead of letting the exception escape.
          bytes.clear();
          encode_response_into(
              request_id,
              Response::error(StatusCode::kResourceExhausted,
                              "response exceeds the frame payload bound"),
              bytes);
        }
        socket_counters().frame_us.record(static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() - start)
                .count()));
        const std::lock_guard<std::mutex> lock(inbox->mutex);
        inbox->completions.push_back({connection, seq, std::move(bytes)});
        if (!inbox->closed) {
          const std::uint64_t one = 1;
          [[maybe_unused]] const ssize_t n = ::write(inbox->event_fd, &one, sizeof(one));
        }
      });
}

void SocketServer::flush(Worker& worker, const std::shared_ptr<Connection>& connection) {
  if (connection->closed) {
    return;
  }
  SocketCounters& counters = socket_counters();
  // Promote contiguously ready responses into the outbox, in order.
  while (!connection->ready.empty() &&
         connection->ready.begin()->first == connection->next_write_seq) {
    connection->outbox.push_back(std::move(connection->ready.begin()->second));
    connection->ready.erase(connection->ready.begin());
    ++connection->next_write_seq;
  }
  // Write until the kernel stops taking bytes.
  while (!connection->outbox.empty()) {
    std::vector<std::uint8_t>& front = connection->outbox.front();
    const ssize_t n = ::send(connection->fd, front.data() + connection->outbox_offset,
                             front.size() - connection->outbox_offset, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        // Backpressure: the reader is slower than the handler.  Park the
        // bytes and let EPOLLOUT call back when the buffer drains.
        counters.write_stalls.increment();
        if (!connection->want_write) {
          connection->want_write = true;
          update_interest(worker.epoll_fd, connection->fd, connection->read_open, true);
        }
        return;
      }
      close_connection(worker, connection);  // EPIPE / ECONNRESET: peer is gone
      return;
    }
    counters.bytes_written.add(static_cast<std::uint64_t>(n));
    connection->outbox_offset += static_cast<std::size_t>(n);
    if (connection->outbox_offset == front.size()) {
      counters.frames.increment();
      worker.inbox->release_buffer(std::move(front));
      connection->outbox.pop_front();
      connection->outbox_offset = 0;
    }
  }
  if (connection->want_write) {
    connection->want_write = false;
    update_interest(worker.epoll_fd, connection->fd, connection->read_open, false);
  }
  // Drained, and no more input is coming: the connection is complete.
  if (connection->hangup_after_flush && connection->inflight == 0 &&
      connection->ready.empty()) {
    close_connection(worker, connection);
  }
}

void SocketServer::close_connection(Worker& worker,
                                    const std::shared_ptr<Connection>& connection) {
  if (connection->closed) {
    return;
  }
  connection->closed = true;
  (void)::epoll_ctl(worker.epoll_fd, EPOLL_CTL_DEL, connection->fd, nullptr);
  ::close(connection->fd);
  connection->outbox.clear();
  connection->ready.clear();
  worker.connections.erase(connection->fd);
  socket_counters().connections_open.add(-1);
  socket_counters().connections_reaped.increment();
}

void SocketServer::stop() {
  // Serialized and blocking: a second caller waits until the first stop has
  // finished tearing everything down, then returns immediately.
  const std::lock_guard<std::mutex> lock(stop_mutex_);
  if (stopped_) {
    return;
  }
  stopped_ = true;
  stopping_.store(true, std::memory_order_release);
  // Closing the listen socket fails the blocking accept(2) and ends the
  // accept loop.
  ::shutdown(listen_fd_, SHUT_RDWR);
  ::close(listen_fd_);
  if (accept_thread_.joinable()) {
    accept_thread_.join();
  }
  // Wake every event loop: each closes its connections, then drains its
  // in-flight completions before exiting (so no callback is left running
  // against freed state).
  for (auto& worker : workers_) {
    worker->inbox->wake();
  }
  for (auto& worker : workers_) {
    if (worker->thread.joinable()) {
      worker->thread.join();
    }
    {
      // Flag the inbox closed under its lock: completion callbacks that
      // somehow straggle (there are none once inflight hit zero, but the
      // flag makes that a guarantee, not an argument) see `closed` and
      // skip the eventfd.
      const std::lock_guard<std::mutex> inbox_lock(worker->inbox->mutex);
      worker->inbox->closed = true;
      ::close(worker->inbox->event_fd);
      worker->inbox->event_fd = -1;
    }
    ::close(worker->epoll_fd);
    worker->epoll_fd = -1;
  }
}

// ------------------------------------------------------------ SocketTransport --

SocketTransport::SocketTransport(const std::string& host, std::uint16_t port)
    : host_(host), port_(port) {
  connect_to_endpoint();
}

void SocketTransport::connect_to_endpoint() {
  const sockaddr_in address = make_address(host_, port_);
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) {
    throw_errno("socket");
  }
  if (::connect(fd_, reinterpret_cast<const sockaddr*>(&address), sizeof(address)) != 0) {
    const int saved = errno;
    ::close(fd_);
    fd_ = -1;
    errno = saved;
    throw_errno("connect " + host_ + ":" + std::to_string(port_));
  }
  const int enable = 1;
  (void)::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &enable, sizeof(enable));
}

SocketTransport::~SocketTransport() {
  if (fd_ >= 0) {
    ::close(fd_);
  }
}

Status SocketTransport::reconnect() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  // Reset *before* dialing: even if the dial fails, the dead connection's
  // partial bytes must never survive into a later successful reconnect.
  assembler_.reset();
  try {
    connect_to_endpoint();
  } catch (const std::runtime_error& e) {
    return Status::error(StatusCode::kInternal, e.what());
  }
  return Status::good();
}

Status SocketTransport::roundtrip(std::span<const std::uint8_t> request_frame,
                                  std::vector<std::uint8_t>& response_frame) {
  if (fd_ < 0) {
    return Status::error(StatusCode::kInternal, "transport is disconnected (reconnect failed)");
  }
  if (!send_all(fd_, request_frame)) {
    return Status::error(StatusCode::kInternal,
                         std::string("send failed: ") + std::strerror(errno));
  }
  for (;;) {
    if (auto frame = assembler_.next()) {
      response_frame = std::move(*frame);
      return Status::good();
    }
    if (!assembler_.error().ok()) {
      return assembler_.error();
    }
    std::uint8_t chunk[kReadChunk];
    const ssize_t n = recv_some(fd_, chunk, sizeof(chunk));
    if (n < 0) {
      return Status::error(StatusCode::kInternal,
                           std::string("recv failed: ") + std::strerror(errno));
    }
    if (n == 0) {
      return Status::error(StatusCode::kInternal,
                           "connection closed before a complete response frame arrived");
    }
    if (Status status = assembler_.feed({chunk, static_cast<std::size_t>(n)}); !status.ok()) {
      return status;
    }
  }
}

}  // namespace fhg::api
