#include "fhg/api/socket.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <stdexcept>
#include <string>
#include <utility>

#include "fhg/obs/registry.hpp"

namespace fhg::api {

namespace {

/// Read chunk size of the serve and roundtrip loops.
constexpr std::size_t kReadChunk = 64 * 1024;

// Socket-layer telemetry lands on the process-wide registry (scraped by
// /metrics, excluded from GetStats — see the codec's registry note).
// Handles are cached once; the serve loop pays relaxed increments only.

struct SocketCounters {
  obs::Counter& connections =
      obs::Registry::global().counter("fhg_socket_connections_total");
  obs::Counter& connections_reaped =
      obs::Registry::global().counter("fhg_socket_connections_reaped_total");
  obs::Counter& frames = obs::Registry::global().counter("fhg_socket_frames_total");
  obs::Counter& bytes_read =
      obs::Registry::global().counter("fhg_socket_bytes_read_total");
  obs::Counter& bytes_written =
      obs::Registry::global().counter("fhg_socket_bytes_written_total");
  obs::HistogramCell& frame_us =
      obs::Registry::global().histogram("fhg_socket_frame_us");
};

SocketCounters& socket_counters() {
  static SocketCounters counters;
  return counters;
}

[[noreturn]] void throw_errno(const std::string& what) {
  throw std::runtime_error("fhg::api socket: " + what + ": " + std::strerror(errno));
}

/// Parses a dotted-quad address into a loopback-or-any sockaddr.
sockaddr_in make_address(const std::string& host, std::uint16_t port) {
  sockaddr_in address{};
  address.sin_family = AF_INET;
  address.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &address.sin_addr) != 1) {
    throw std::runtime_error("fhg::api socket: '" + host +
                             "' is not a dotted-quad IPv4 address");
  }
  return address;
}

/// Sends the whole buffer, retrying on EINTR and partial writes.
bool send_all(int fd, std::span<const std::uint8_t> bytes) {
  std::size_t sent = 0;
  while (sent < bytes.size()) {
    const ssize_t n = ::send(fd, bytes.data() + sent, bytes.size() - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      return false;
    }
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

/// One recv, retrying on EINTR.  Returns -1 on error, 0 on orderly EOF.
ssize_t recv_some(int fd, std::uint8_t* buffer, std::size_t size) {
  for (;;) {
    const ssize_t n = ::recv(fd, buffer, size, 0);
    if (n < 0 && errno == EINTR) {
      continue;
    }
    return n;
  }
}

}  // namespace

// --------------------------------------------------------------- SocketServer --

SocketServer::SocketServer(Handler& handler, SocketServerOptions options)
    : handler_(handler), host_(std::move(options.host)) {
  const sockaddr_in address = make_address(host_, options.port);
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    throw_errno("socket");
  }
  const int enable = 1;
  (void)::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &enable, sizeof(enable));
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&address), sizeof(address)) != 0) {
    const int saved = errno;
    ::close(listen_fd_);
    errno = saved;
    throw_errno("bind " + host_ + ":" + std::to_string(options.port));
  }
  if (::listen(listen_fd_, options.backlog) != 0) {
    const int saved = errno;
    ::close(listen_fd_);
    errno = saved;
    throw_errno("listen");
  }
  sockaddr_in bound{};
  socklen_t bound_size = sizeof(bound);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &bound_size) != 0) {
    const int saved = errno;
    ::close(listen_fd_);
    errno = saved;
    throw_errno("getsockname");
  }
  port_ = ntohs(bound.sin_port);
  accept_thread_ = std::thread([this] { accept_loop(); });
}

SocketServer::~SocketServer() { stop(); }

void SocketServer::accept_loop() {
  for (;;) {
    reap_finished();
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (stopping_.load(std::memory_order_acquire)) {
        return;  // listen socket closed by stop()
      }
      if (errno == EINTR || errno == ECONNABORTED || errno == EPROTO) {
        continue;  // aborted handshake: the listener is fine, keep serving
      }
      if (errno == EMFILE || errno == ENFILE) {
        // Momentary fd exhaustion: reaping just freed what it could; back
        // off briefly instead of abandoning the port forever.
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
        continue;
      }
      return;  // the listener itself is unusable
    }
    connections_accepted_.fetch_add(1, std::memory_order_relaxed);
    socket_counters().connections.increment();
    const int enable = 1;
    (void)::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &enable, sizeof(enable));
    // Registration and thread start happen under the lock as one unit, so
    // stop() either sees a fully registered connection (and joins it) or
    // runs before this block (and the re-check below closes the socket).
    const std::lock_guard<std::mutex> lock(connections_mutex_);
    if (stopping_.load(std::memory_order_acquire)) {
      ::close(fd);
      return;
    }
    auto connection = std::make_unique<Connection>();
    connection->fd = fd;
    Connection& ref = *connection;  // unique_ptr: address stable under vector growth
    connections_.push_back(std::move(connection));
    ref.thread = std::thread([this, &ref] { serve_connection(ref); });
  }
}

void SocketServer::serve_connection(Connection& connection) {
  const int fd = connection.fd;
  SocketCounters& counters = socket_counters();
  FrameAssembler assembler;
  std::uint8_t chunk[kReadChunk];
  for (;;) {
    const ssize_t n = recv_some(fd, chunk, sizeof(chunk));
    if (n <= 0) {
      break;  // EOF, connection reset, or shutdown via stop()
    }
    counters.bytes_read.add(static_cast<std::uint64_t>(n));
    if (!assembler.feed({chunk, static_cast<std::size_t>(n)}).ok()) {
      // The stream is irrecoverably mis-framed (bad magic / oversized
      // length): answer typed once, then hang up — resynchronization is
      // impossible without frame boundaries.
      const auto reply =
          encode_response(0, Response{assembler.error(), std::monostate{}});
      (void)send_all(fd, reply);
      break;
    }
    bool sending_ok = true;
    while (auto frame = assembler.next()) {
      const auto start = std::chrono::steady_clock::now();
      const auto reply = serve_frame(handler_, *frame);
      const bool sent = send_all(fd, reply);
      counters.frames.increment();
      counters.bytes_written.add(reply.size());
      counters.frame_us.record(static_cast<std::uint64_t>(
          std::chrono::duration_cast<std::chrono::microseconds>(
              std::chrono::steady_clock::now() - start)
              .count()));
      if (!sent) {
        sending_ok = false;
        break;
      }
    }
    if (!sending_ok) {
      break;
    }
  }
  // The reaper (or stop) joins this thread and closes the fd.
  connection.done.store(true, std::memory_order_release);
}

void SocketServer::reap_finished() {
  std::vector<std::unique_ptr<Connection>> finished;
  {
    const std::lock_guard<std::mutex> lock(connections_mutex_);
    for (auto it = connections_.begin(); it != connections_.end();) {
      if ((*it)->done.load(std::memory_order_acquire)) {
        finished.push_back(std::move(*it));
        it = connections_.erase(it);
      } else {
        ++it;
      }
    }
  }
  for (const auto& connection : finished) {
    if (connection->thread.joinable()) {
      connection->thread.join();
    }
    ::close(connection->fd);
    socket_counters().connections_reaped.increment();
  }
}

void SocketServer::stop() {
  // Serialized and blocking: a second caller waits until the first stop has
  // finished tearing everything down, then returns immediately.
  const std::lock_guard<std::mutex> lock(stop_mutex_);
  if (stopped_) {
    return;
  }
  stopped_ = true;
  stopping_.store(true, std::memory_order_release);
  // Closing the listen socket fails the blocking accept(2) and ends the
  // accept loop; shutting down the connection sockets fails their recv(2).
  ::shutdown(listen_fd_, SHUT_RDWR);
  ::close(listen_fd_);
  if (accept_thread_.joinable()) {
    accept_thread_.join();
  }
  std::vector<std::unique_ptr<Connection>> live;
  {
    const std::lock_guard<std::mutex> connections_lock(connections_mutex_);
    live.swap(connections_);
  }
  for (const auto& connection : live) {
    ::shutdown(connection->fd, SHUT_RDWR);
  }
  for (const auto& connection : live) {
    if (connection->thread.joinable()) {
      connection->thread.join();
    }
    ::close(connection->fd);
  }
}

// ------------------------------------------------------------ SocketTransport --

SocketTransport::SocketTransport(const std::string& host, std::uint16_t port) {
  const sockaddr_in address = make_address(host, port);
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) {
    throw_errno("socket");
  }
  if (::connect(fd_, reinterpret_cast<const sockaddr*>(&address), sizeof(address)) != 0) {
    const int saved = errno;
    ::close(fd_);
    fd_ = -1;
    errno = saved;
    throw_errno("connect " + host + ":" + std::to_string(port));
  }
  const int enable = 1;
  (void)::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &enable, sizeof(enable));
}

SocketTransport::~SocketTransport() {
  if (fd_ >= 0) {
    ::close(fd_);
  }
}

Status SocketTransport::roundtrip(std::span<const std::uint8_t> request_frame,
                                  std::vector<std::uint8_t>& response_frame) {
  if (!send_all(fd_, request_frame)) {
    return Status::error(StatusCode::kInternal,
                         std::string("send failed: ") + std::strerror(errno));
  }
  for (;;) {
    if (auto frame = assembler_.next()) {
      response_frame = std::move(*frame);
      return Status::good();
    }
    if (!assembler_.error().ok()) {
      return assembler_.error();
    }
    std::uint8_t chunk[kReadChunk];
    const ssize_t n = recv_some(fd_, chunk, sizeof(chunk));
    if (n < 0) {
      return Status::error(StatusCode::kInternal,
                           std::string("recv failed: ") + std::strerror(errno));
    }
    if (n == 0) {
      return Status::error(StatusCode::kInternal,
                           "connection closed before a complete response frame arrived");
    }
    if (Status status = assembler_.feed({chunk, static_cast<std::size_t>(n)}); !status.ok()) {
      return status;
    }
  }
}

}  // namespace fhg::api
