#include "fhg/api/transport.hpp"

#include <future>
#include <stdexcept>
#include <utility>

namespace fhg::api {

std::vector<std::uint8_t> serve_frame(Handler& handler, std::span<const std::uint8_t> frame) {
  DecodedRequest decoded;
  if (Status status = decode_request(frame, decoded); !status.ok()) {
    // A mis-framed or mis-versioned request still earns a typed reply; the
    // id is whatever the prologue yielded (0 when unreadable).
    return encode_response(decoded.request_id,
                           Response{std::move(status), std::monostate{}});
  }
  std::promise<Response> promise;
  std::future<Response> pending = promise.get_future();
  const RequestContext context{decoded.trace_id, decoded.request_id};
  handler.handle(std::move(decoded.request), context,
                 [&promise](Response response) { promise.set_value(std::move(response)); });
  try {
    return encode_response(decoded.request_id, pending.get());
  } catch (const std::length_error&) {
    // The response (e.g. a huge tenancy's snapshot) exceeds the frame
    // bound.  Answer typed instead of letting the exception escape a
    // connection thread and take the whole server down with it.
    return encode_response(
        decoded.request_id,
        Response::error(StatusCode::kResourceExhausted,
                        "response exceeds the frame payload bound"));
  }
}

Status InProcessTransport::roundtrip(std::span<const std::uint8_t> request_frame,
                                     std::vector<std::uint8_t>& response_frame) {
  response_frame = serve_frame(handler_, request_frame);
  return Status::good();
}

}  // namespace fhg::api
