#include "fhg/api/protocol.hpp"

namespace fhg::api {

std::string_view request_kind_name(std::size_t tag) noexcept {
  constexpr std::string_view kNames[] = {"is-happy",        "next-gathering", "apply-mutations",
                                         "create-instance", "erase-instance", "list-instances",
                                         "snapshot",        "restore",        "get-stats",
                                         "recover-info"};
  static_assert(std::size(kNames) == kNumRequestKinds);
  return tag < std::size(kNames) ? kNames[tag] : "unknown";
}

std::string_view routing_instance(const Request& request) noexcept {
  return std::visit(
      [](const auto& r) -> std::string_view {
        if constexpr (requires { r.instance; }) {
          return r.instance;
        } else {
          return {};
        }
      },
      request);
}

}  // namespace fhg::api
