#include "fhg/api/protocol.hpp"

namespace fhg::api {

std::string_view request_kind_name(std::size_t tag) noexcept {
  constexpr std::string_view kNames[] = {
      "is-happy",       "next-gathering", "apply-mutations",  "create-instance",
      "erase-instance", "list-instances", "snapshot",         "restore",
      "get-stats",      "recover-info",   "hello",            "snapshot-instance",
      "restore-instance", "drain-backend"};
  static_assert(std::size(kNames) == kNumRequestKinds);
  return tag < std::size(kNames) ? kNames[tag] : "unknown";
}

bool request_is_idempotent(std::size_t tag) noexcept {
  constexpr bool kIdempotent[] = {
      true,   // is-happy: pure read
      true,   // next-gathering: pure read
      false,  // apply-mutations: add-node grows the graph on every apply
      false,  // create-instance: second attempt reports kAlreadyExists
      false,  // erase-instance: second attempt reports kNotFound
      true,   // list-instances: pure read
      true,   // snapshot: pure read (serialization)
      false,  // restore: replaces the tenancy (epoch moves even on repeat)
      true,   // get-stats: observational only
      true,   // recover-info: observational only
      true,   // hello: observational only
      true,   // snapshot-instance: pure read (serialization)
      false,  // restore-instance: replaces an instance
      false,  // drain-backend: moves instances and shrinks the ring
  };
  static_assert(std::size(kIdempotent) == kNumRequestKinds);
  return tag < std::size(kIdempotent) && kIdempotent[tag];
}

std::string_view routing_instance(const Request& request) noexcept {
  return std::visit(
      [](const auto& r) -> std::string_view {
        if constexpr (requires { r.instance; }) {
          return r.instance;
        } else {
          return {};
        }
      },
      request);
}

}  // namespace fhg::api
