#include "fhg/mis/shapley.hpp"

#include <stdexcept>

#include "fhg/mis/exact.hpp"
#include "fhg/parallel/rng.hpp"

namespace fhg::mis {

std::vector<double> shapley_estimate(const graph::Graph& g, std::uint32_t samples,
                                     std::uint64_t seed) {
  const graph::NodeId n = g.num_nodes();
  if (n > 64) {
    throw std::invalid_argument("shapley_estimate: limited to 64 nodes (exact-MIS oracle)");
  }
  if (samples == 0) {
    throw std::invalid_argument("shapley_estimate: need at least one sample");
  }
  std::vector<double> totals(n, 0.0);
  parallel::Rng rng(seed, /*stream=*/0x736861);
  for (std::uint32_t s = 0; s < samples; ++s) {
    const std::vector<std::uint32_t> order = rng.permutation(n);
    std::uint64_t coalition = 0;
    std::uint32_t value = 0;
    for (const std::uint32_t v : order) {
      coalition |= std::uint64_t{1} << v;
      const std::uint32_t with_v = exact_mis_size_small(g, coalition);
      totals[v] += static_cast<double>(with_v - value);
      value = with_v;
    }
  }
  for (double& t : totals) {
    t /= samples;
  }
  return totals;
}

}  // namespace fhg::mis
