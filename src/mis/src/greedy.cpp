#include "fhg/mis/greedy.hpp"

#include <algorithm>
#include <limits>

namespace fhg::mis {

std::vector<graph::NodeId> greedy_mis(const graph::Graph& g) {
  const graph::NodeId n = g.num_nodes();
  std::vector<std::uint32_t> degree(n);
  std::vector<bool> alive(n, true);
  for (graph::NodeId v = 0; v < n; ++v) {
    degree[v] = g.degree(v);
  }

  std::vector<graph::NodeId> result;
  graph::NodeId alive_count = n;
  while (alive_count > 0) {
    // Min-degree alive vertex (linear scan; the sizes used here do not merit
    // a bucket queue, and correctness is easier to see).
    graph::NodeId pick = n;
    std::uint32_t pick_degree = std::numeric_limits<std::uint32_t>::max();
    for (graph::NodeId v = 0; v < n; ++v) {
      if (alive[v] && degree[v] < pick_degree) {
        pick = v;
        pick_degree = degree[v];
      }
    }
    result.push_back(pick);
    // Remove closed neighborhood, updating remaining degrees.
    alive[pick] = false;
    --alive_count;
    for (const graph::NodeId w : g.neighbors(pick)) {
      if (!alive[w]) {
        continue;
      }
      alive[w] = false;
      --alive_count;
      for (const graph::NodeId x : g.neighbors(w)) {
        if (alive[x] && degree[x] > 0) {
          --degree[x];
        }
      }
    }
  }
  std::sort(result.begin(), result.end());
  return result;
}

double caro_wei_bound(const graph::Graph& g) {
  double total = 0.0;
  for (graph::NodeId v = 0; v < g.num_nodes(); ++v) {
    total += 1.0 / (g.degree(v) + 1.0);
  }
  return total;
}

}  // namespace fhg::mis
