#include "fhg/mis/exact.hpp"

#include <algorithm>
#include <bit>
#include <stdexcept>

namespace fhg::mis {

namespace {

/// Dynamic bitset over n nodes, 64 per word.
class NodeSet {
 public:
  explicit NodeSet(std::size_t n) : words_((n + 63) / 64, 0), n_(n) {}

  void set(std::size_t v) noexcept { words_[v / 64] |= std::uint64_t{1} << (v % 64); }
  void clear(std::size_t v) noexcept { words_[v / 64] &= ~(std::uint64_t{1} << (v % 64)); }
  [[nodiscard]] bool test(std::size_t v) const noexcept {
    return (words_[v / 64] >> (v % 64)) & 1U;
  }
  [[nodiscard]] std::size_t count() const noexcept {
    std::size_t total = 0;
    for (const std::uint64_t w : words_) {
      total += static_cast<std::size_t>(std::popcount(w));
    }
    return total;
  }
  /// this &= ~other
  void subtract(const NodeSet& other) noexcept {
    for (std::size_t i = 0; i < words_.size(); ++i) {
      words_[i] &= ~other.words_[i];
    }
  }
  /// popcount(this & other)
  [[nodiscard]] std::size_t intersection_count(const NodeSet& other) const noexcept {
    std::size_t total = 0;
    for (std::size_t i = 0; i < words_.size(); ++i) {
      total += static_cast<std::size_t>(std::popcount(words_[i] & other.words_[i]));
    }
    return total;
  }
  [[nodiscard]] std::size_t size() const noexcept { return n_; }

  /// First set bit at or after `from`, or `size()` if none.
  [[nodiscard]] std::size_t next(std::size_t from) const noexcept {
    if (from >= n_) {
      return n_;
    }
    std::size_t word = from / 64;
    std::uint64_t bits = words_[word] & (~std::uint64_t{0} << (from % 64));
    while (true) {
      if (bits != 0) {
        const std::size_t v = word * 64 + static_cast<std::size_t>(std::countr_zero(bits));
        return v < n_ ? v : n_;
      }
      if (++word >= words_.size()) {
        return n_;
      }
      bits = words_[word];
    }
  }

 private:
  std::vector<std::uint64_t> words_;
  std::size_t n_;
};

struct Searcher {
  const std::vector<NodeSet>& adjacency;
  std::uint64_t budget;  // 0 = unlimited
  std::uint64_t branches = 0;
  bool exhausted = false;
  std::vector<graph::NodeId> best;
  std::vector<graph::NodeId> current;

  void search(NodeSet alive) {
    if (exhausted) {
      return;
    }
    ++branches;
    if (budget != 0 && branches > budget) {
      exhausted = true;
      return;
    }
    const std::size_t entry_size = current.size();

    // Greedy closure: take degree-≤1 vertices (always part of some optimum).
    for (;;) {
      std::size_t picked = alive.size();
      for (std::size_t v = alive.next(0); v < alive.size(); v = alive.next(v + 1)) {
        if (adjacency[v].intersection_count(alive) <= 1) {
          picked = v;
          break;
        }
      }
      if (picked == alive.size()) {
        break;
      }
      current.push_back(static_cast<graph::NodeId>(picked));
      alive.clear(picked);
      alive.subtract(adjacency[picked]);
    }

    const std::size_t remaining = alive.count();
    if (remaining == 0) {
      if (current.size() > best.size()) {
        best = current;
      }
      current.resize(entry_size);
      return;
    }
    if (current.size() + remaining <= best.size()) {
      current.resize(entry_size);  // bound: cannot beat incumbent
      return;
    }

    // Branch on a maximum-degree vertex (kills the most edges per branch).
    std::size_t pivot = alive.next(0);
    std::size_t pivot_degree = 0;
    for (std::size_t v = alive.next(0); v < alive.size(); v = alive.next(v + 1)) {
      const std::size_t d = adjacency[v].intersection_count(alive);
      if (d > pivot_degree) {
        pivot_degree = d;
        pivot = v;
      }
    }

    // Include pivot.
    {
      NodeSet next = alive;
      next.clear(pivot);
      next.subtract(adjacency[pivot]);
      current.push_back(static_cast<graph::NodeId>(pivot));
      search(std::move(next));
      current.pop_back();
    }
    // Exclude pivot.
    {
      NodeSet next = alive;
      next.clear(pivot);
      search(std::move(next));
    }
    current.resize(entry_size);
  }
};

}  // namespace

std::optional<ExactMisResult> exact_mis(const graph::Graph& g, std::uint64_t node_budget) {
  const graph::NodeId n = g.num_nodes();
  std::vector<NodeSet> adjacency(n, NodeSet(n));
  for (graph::NodeId v = 0; v < n; ++v) {
    for (const graph::NodeId w : g.neighbors(v)) {
      adjacency[v].set(w);
    }
  }
  Searcher searcher{.adjacency = adjacency, .budget = node_budget, .branches = 0,
                    .exhausted = false, .best = {}, .current = {}};
  NodeSet all(n);
  for (graph::NodeId v = 0; v < n; ++v) {
    all.set(v);
  }
  searcher.search(std::move(all));
  if (searcher.exhausted) {
    return std::nullopt;
  }
  ExactMisResult result;
  result.independent_set = std::move(searcher.best);
  std::sort(result.independent_set.begin(), result.independent_set.end());
  result.branch_count = searcher.branches;
  return result;
}

std::uint32_t exact_mis_size_small(const graph::Graph& g, std::uint64_t mask) {
  if (g.num_nodes() > 64) {
    throw std::invalid_argument("exact_mis_size_small: graph exceeds 64 nodes");
  }
  // Precompute 64-bit neighborhoods once per call (cheap for tiny graphs).
  std::uint64_t nbr[64] = {};
  for (graph::NodeId v = 0; v < g.num_nodes(); ++v) {
    for (const graph::NodeId w : g.neighbors(v)) {
      nbr[v] |= std::uint64_t{1} << w;
    }
  }
  // Simple recursive solver on bitmasks.
  const auto solve = [&](auto&& self, std::uint64_t alive) -> std::uint32_t {
    if (alive == 0) {
      return 0;
    }
    const auto v = static_cast<std::uint32_t>(std::countr_zero(alive));
    const std::uint64_t without = alive & ~(std::uint64_t{1} << v);
    // Degree-0/1 shortcut: include v when it has at most one alive neighbor.
    const std::uint64_t alive_nbrs = nbr[v] & alive;
    if (std::popcount(alive_nbrs) <= 1) {
      return 1 + self(self, without & ~alive_nbrs);
    }
    const std::uint32_t include = 1 + self(self, without & ~nbr[v]);
    const std::uint32_t exclude = self(self, without);
    return std::max(include, exclude);
  };
  return solve(solve, mask);
}

}  // namespace fhg::mis
