#pragma once

/// \file exact.hpp
/// Exact Maximum Independent Set via branch and bound.
///
/// Appendix A.1: maximizing single-holiday happiness *is* MIS, which is
/// MAXSNP-hard (even on degree-3 graphs) and inapproximable to `n^{1-ε}` in
/// general — so the paper gives up on per-holiday optimality and pursues
/// long-run local guarantees instead.  This solver makes that hardness
/// tangible (E9 shows the exponential wall) and serves as the ground-truth
/// oracle for small instances in tests.
///
/// Algorithm: recursive branching on a maximum-degree vertex `v`
/// (`MIS(G) = max(1 + MIS(G − N[v]), MIS(G − v))`) with the standard
/// refinements: vertices of degree ≤ 1 are taken greedily (always safe), and
/// branches are pruned when `|current| + |remaining|` cannot beat the
/// incumbent.  Adjacency is kept in dynamic bitsets, so neighborhood removal
/// is word-parallel.

#include <cstdint>
#include <optional>
#include <vector>

#include "fhg/graph/graph.hpp"

namespace fhg::mis {

/// Result of an exact MIS computation.
struct ExactMisResult {
  std::vector<graph::NodeId> independent_set;  ///< sorted, maximum-size
  std::uint64_t branch_count = 0;              ///< search-tree nodes explored
};

/// Computes a maximum independent set of `g`.
/// `node_budget` caps search-tree nodes (0 = unlimited); returns
/// `std::nullopt` when exceeded, which E9 uses to chart the hardness cliff.
[[nodiscard]] std::optional<ExactMisResult> exact_mis(const graph::Graph& g,
                                                      std::uint64_t node_budget = 0);

/// Exact MIS *size* of the subgraph induced by `mask` over the first
/// ≤ 64 nodes (bitmask convention: bit v = node v present).  The fast oracle
/// behind the Shapley sampler.
[[nodiscard]] std::uint32_t exact_mis_size_small(const graph::Graph& g, std::uint64_t mask);

}  // namespace fhg::mis
