#pragma once

/// \file greedy.hpp
/// Greedy minimum-degree Maximal Independent Set.
///
/// Repeatedly takes a minimum-remaining-degree vertex and deletes its closed
/// neighborhood.  Guarantees size ≥ Σ 1/(deg(v)+1) ≥ n/(Δ+1) (Turán-type
/// bound — the same `1/(d+1)` quantity as the first-come-first-grab happy
/// probability).  The practical fallback once exact MIS hits the Appendix A
/// hardness wall.

#include <vector>

#include "fhg/graph/graph.hpp"

namespace fhg::mis {

/// Returns a maximal independent set (sorted) via the min-degree heuristic.
[[nodiscard]] std::vector<graph::NodeId> greedy_mis(const graph::Graph& g);

/// The Turán-type lower bound `Σ_v 1/(deg(v)+1)` on the MIS size.
[[nodiscard]] double caro_wei_bound(const graph::Graph& g);

}  // namespace fhg::mis
