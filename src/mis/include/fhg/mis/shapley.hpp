#pragma once

/// \file shapley.hpp
/// Monte-Carlo Shapley values for the happiness coalition game (App. A.2).
///
/// The game: `v(S)` = size of the maximum independent set of the subgraph
/// induced by `S` — the best collective happiness the parents in `S` can
/// reach if everyone else abstains.  The Shapley value of node `p` is its
/// expected marginal contribution `v(S ∪ {p}) − v(S)` over a uniformly
/// random arrival order.  The paper observes that (a) the marginal
/// contributions along any single order sum to `MIS(G)`, and (b) computing
/// or even approximating these shares is as hard as approximating MIS — so
/// this sampler is restricted to ≤ 64-node instances where the exact oracle
/// is cheap, and is offered as an *illustration* (example `fair_share`), not
/// a scalable tool.

#include <cstdint>
#include <vector>

#include "fhg/graph/graph.hpp"

namespace fhg::mis {

/// Estimated Shapley values (one per node; they sum to ≈ MIS(g)).
/// `samples` random permutations are averaged; throws
/// `std::invalid_argument` if `g` has more than 64 nodes.
[[nodiscard]] std::vector<double> shapley_estimate(const graph::Graph& g, std::uint32_t samples,
                                                   std::uint64_t seed);

}  // namespace fhg::mis
