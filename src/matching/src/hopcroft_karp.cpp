#include "fhg/matching/hopcroft_karp.hpp"

#include <limits>
#include <queue>

namespace fhg::matching {

namespace {
constexpr std::uint32_t kUnmatched = MatchingResult::kUnmatched;
constexpr std::uint32_t kInf = std::numeric_limits<std::uint32_t>::max();
}  // namespace

MatchingResult hopcroft_karp(const BipartiteGraph& g) {
  MatchingResult result;
  result.match_left.assign(g.left_count, kUnmatched);
  result.match_right.assign(g.right_count, kUnmatched);

  std::vector<std::uint32_t> dist(g.left_count, kInf);
  std::queue<std::uint32_t> frontier;

  // BFS layering over free left vertices; returns true if an augmenting
  // path exists.
  const auto bfs = [&]() -> bool {
    bool reachable_free_right = false;
    for (std::uint32_t l = 0; l < g.left_count; ++l) {
      if (result.match_left[l] == kUnmatched) {
        dist[l] = 0;
        frontier.push(l);
      } else {
        dist[l] = kInf;
      }
    }
    while (!frontier.empty()) {
      const std::uint32_t l = frontier.front();
      frontier.pop();
      for (const std::uint32_t r : g.adj[l]) {
        const std::uint32_t next = result.match_right[r];
        if (next == kUnmatched) {
          reachable_free_right = true;
        } else if (dist[next] == kInf) {
          dist[next] = dist[l] + 1;
          frontier.push(next);
        }
      }
    }
    return reachable_free_right;
  };

  // DFS along the layering.
  const auto dfs = [&](auto&& self, std::uint32_t l) -> bool {
    for (const std::uint32_t r : g.adj[l]) {
      const std::uint32_t next = result.match_right[r];
      if (next == kUnmatched || (dist[next] == dist[l] + 1 && self(self, next))) {
        result.match_left[l] = r;
        result.match_right[r] = l;
        return true;
      }
    }
    dist[l] = kInf;  // dead end; prune for this phase
    return false;
  };

  while (bfs()) {
    for (std::uint32_t l = 0; l < g.left_count; ++l) {
      if (result.match_left[l] == kUnmatched && dfs(dfs, l)) {
        ++result.size;
      }
    }
  }
  return result;
}

bool is_valid_matching(const BipartiteGraph& g, const MatchingResult& m) {
  if (m.match_left.size() != g.left_count || m.match_right.size() != g.right_count) {
    return false;
  }
  std::size_t count = 0;
  for (std::uint32_t l = 0; l < g.left_count; ++l) {
    const std::uint32_t r = m.match_left[l];
    if (r == kUnmatched) {
      continue;
    }
    if (r >= g.right_count || m.match_right[r] != l) {
      return false;
    }
    bool edge_exists = false;
    for (const std::uint32_t candidate : g.adj[l]) {
      if (candidate == r) {
        edge_exists = true;
        break;
      }
    }
    if (!edge_exists) {
      return false;
    }
    ++count;
  }
  for (std::uint32_t r = 0; r < g.right_count; ++r) {
    const std::uint32_t l = m.match_right[r];
    if (l != kUnmatched && (l >= g.left_count || m.match_left[l] != r)) {
      return false;
    }
  }
  return count == m.size;
}

}  // namespace fhg::matching
