#include "fhg/matching/satisfaction.hpp"

#include <algorithm>
#include <queue>
#include <unordered_map>

#include "fhg/graph/properties.hpp"
#include "fhg/matching/hopcroft_karp.hpp"

namespace fhg::matching {

namespace {

/// Canonical edge index lookup: maps packed (u << 32 | v), u < v, to the
/// index in Graph::edges() order.
std::unordered_map<std::uint64_t, std::uint32_t> edge_index_map(
    const std::vector<graph::Edge>& edges) {
  std::unordered_map<std::uint64_t, std::uint32_t> map;
  map.reserve(edges.size() * 2);
  for (std::uint32_t k = 0; k < edges.size(); ++k) {
    map.emplace((static_cast<std::uint64_t>(edges[k].first) << 32) | edges[k].second, k);
  }
  return map;
}

std::uint64_t pack(graph::NodeId u, graph::NodeId v) {
  return (static_cast<std::uint64_t>(std::min(u, v)) << 32) | std::max(u, v);
}

SatisfactionResult finalize(const graph::Graph& g, std::vector<graph::NodeId> host_of_edge) {
  SatisfactionResult result;
  result.host_of_edge = std::move(host_of_edge);
  result.satisfied.assign(g.num_nodes(), false);
  for (const graph::NodeId host : result.host_of_edge) {
    result.satisfied[host] = true;
  }
  result.value = static_cast<std::size_t>(
      std::count(result.satisfied.begin(), result.satisfied.end(), true));
  return result;
}

}  // namespace

SatisfactionResult max_satisfaction_matching(const graph::Graph& g) {
  const std::vector<graph::Edge> edges = g.edges();
  // Left = parents, right = couples (edges).
  BipartiteGraph b;
  b.left_count = g.num_nodes();
  b.right_count = edges.size();
  b.adj.assign(b.left_count, {});
  for (std::uint32_t k = 0; k < edges.size(); ++k) {
    b.adj[edges[k].first].push_back(k);
    b.adj[edges[k].second].push_back(k);
  }
  const MatchingResult m = hopcroft_karp(b);

  // Matched couples visit their matched parent; free couples default to
  // their lower endpoint.
  std::vector<graph::NodeId> host(edges.size());
  for (std::uint32_t k = 0; k < edges.size(); ++k) {
    host[k] = m.match_right[k] == MatchingResult::kUnmatched
                  ? edges[k].first
                  : static_cast<graph::NodeId>(m.match_right[k]);
  }
  return finalize(g, std::move(host));
}

SatisfactionResult max_satisfaction_linear(const graph::Graph& g) {
  const graph::NodeId n = g.num_nodes();
  const std::vector<graph::Edge> edges = g.edges();
  const auto edge_of = edge_index_map(edges);
  std::vector<graph::NodeId> host(edges.size());
  // Default orientation for edges not otherwise forced.
  for (std::uint32_t k = 0; k < edges.size(); ++k) {
    host[k] = edges[k].first;
  }

  std::vector<std::uint8_t> visited(n, 0);
  std::vector<graph::NodeId> parent(n, n);  // BFS tree parent; n = none

  for (graph::NodeId root = 0; root < n; ++root) {
    if (visited[root] != 0 || g.degree(root) == 0) {
      visited[root] = 1;
      continue;
    }
    // BFS the component, recording one tree and detecting one non-tree edge
    // (which closes a cycle).
    std::vector<graph::NodeId> component;
    std::optional<graph::Edge> chord;
    std::queue<graph::NodeId> frontier;
    visited[root] = 1;
    parent[root] = n;
    frontier.push(root);
    std::size_t component_edges = 0;
    while (!frontier.empty()) {
      const graph::NodeId u = frontier.front();
      frontier.pop();
      component.push_back(u);
      for (const graph::NodeId w : g.neighbors(u)) {
        if (u < w) {
          ++component_edges;
        }
        if (visited[w] == 0) {
          visited[w] = 1;
          parent[w] = u;
          frontier.push(w);
        } else if (w != parent[u] && !chord && parent[w] != u) {
          chord = graph::Edge{std::min(u, w), std::max(u, w)};
        }
      }
    }

    if (component_edges >= component.size() && chord) {
      // Component contains a cycle: everyone can be satisfied.
      // The chord {a,b} plus tree paths a→root and b→root contain a cycle
      // through the lowest common ancestor; a simpler complete rule that
      // still satisfies every node:
      //   1. orient every tree edge toward the *child* (newly reached node);
      //   2. the root, the only node without an incoming tree edge, takes
      //      an incoming edge from the cycle: walk the chord endpoints'
      //      ancestor chains — the chord guarantees the root's deficiency
      //      can be repaired by re-routing along the cycle.
      // Implementation: orient tree edges toward children, then fix the
      // root by flipping the path from the chord down to it.
      for (const graph::NodeId u : component) {
        if (parent[u] != n) {
          host[edge_of.at(pack(parent[u], u))] = u;
        }
      }
      // Re-route: give the chord to one endpoint (say a); then a has two
      // incoming edges (chord + tree edge), so flip a's tree edge up toward
      // parent(a), which then has two incoming, … continue until the root
      // gains an incoming edge.
      graph::NodeId a = chord->first;
      host[edge_of.at(pack(chord->first, chord->second))] = a;
      while (parent[a] != n) {
        const graph::NodeId up = parent[a];
        host[edge_of.at(pack(up, a))] = up;  // flip toward the ancestor
        a = up;
      }
    } else {
      // Tree: orient every edge toward the child; all but the root are
      // satisfied — and min(n_c, m_c) = n_c − 1 is optimal.
      for (const graph::NodeId u : component) {
        if (parent[u] != n) {
          host[edge_of.at(pack(parent[u], u))] = u;
        }
      }
    }
  }
  return finalize(g, std::move(host));
}

std::size_t max_satisfaction_value(const graph::Graph& g) {
  const graph::Components comps = graph::connected_components(g);
  std::vector<std::size_t> nodes(comps.count, 0);
  std::vector<std::size_t> edges(comps.count, 0);
  for (graph::NodeId v = 0; v < g.num_nodes(); ++v) {
    ++nodes[comps.id[v]];
  }
  for (const graph::Edge& e : g.edges()) {
    ++edges[comps.id[e.first]];
  }
  std::size_t total = 0;
  for (graph::NodeId c = 0; c < comps.count; ++c) {
    total += std::min(nodes[c], edges[c]);
  }
  return total;
}

std::vector<graph::NodeId> alternation_satisfied_set(const graph::Graph& g, std::uint64_t t) {
  const bool odd = (t % 2) == 1;
  std::vector<graph::NodeId> satisfied;
  for (graph::NodeId v = 0; v < g.num_nodes(); ++v) {
    for (const graph::NodeId w : g.neighbors(v)) {
      const bool hosts = odd ? (v < w) : (v > w);
      if (hosts) {
        satisfied.push_back(v);
        break;
      }
    }
  }
  return satisfied;
}

}  // namespace fhg::matching
