#include "fhg/matching/satisfaction_scheduler.hpp"

#include <algorithm>

namespace fhg::matching {

SatisfactionScheduler::~SatisfactionScheduler() = default;

StaticOptimumScheduler::StaticOptimumScheduler(const graph::Graph& g)
    : graph_(&g), optimum_(max_satisfaction_linear(g)) {
  for (graph::NodeId v = 0; v < g.num_nodes(); ++v) {
    if (optimum_.satisfied[v]) {
      satisfied_sorted_.push_back(v);
    }
  }
}

std::vector<graph::NodeId> StaticOptimumScheduler::next_holiday() {
  ++holiday_;
  return satisfied_sorted_;
}

std::optional<std::uint64_t> StaticOptimumScheduler::gap_bound(graph::NodeId v) const {
  if (optimum_.satisfied[v]) {
    return 1;
  }
  return std::nullopt;  // starved forever — the appendix's social complaint
}

std::vector<graph::NodeId> AlternationScheduler::next_holiday() {
  ++holiday_;
  return alternation_satisfied_set(*graph_, holiday_);
}

std::optional<std::uint64_t> AlternationScheduler::gap_bound(graph::NodeId v) const {
  if (graph_->degree(v) == 0) {
    return std::nullopt;  // no children: never satisfiable
  }
  return 2;
}

MaxFlipScheduler::MaxFlipScheduler(const graph::Graph& g) : graph_(&g) {
  const SatisfactionResult forward = max_satisfaction_linear(g);
  forward_value_ = forward.value;
  const auto edges = g.edges();
  std::vector<bool> even(g.num_nodes(), false);
  for (std::size_t k = 0; k < edges.size(); ++k) {
    // Reversal: the couple visits the other endpoint.
    const graph::NodeId other =
        forward.host_of_edge[k] == edges[k].first ? edges[k].second : edges[k].first;
    even[other] = true;
  }
  for (graph::NodeId v = 0; v < g.num_nodes(); ++v) {
    if (forward.satisfied[v]) {
      odd_satisfied_.push_back(v);
    }
    if (even[v]) {
      even_satisfied_.push_back(v);
    }
  }
}

std::vector<graph::NodeId> MaxFlipScheduler::next_holiday() {
  ++holiday_;
  return holiday_ % 2 == 1 ? odd_satisfied_ : even_satisfied_;
}

std::optional<std::uint64_t> MaxFlipScheduler::gap_bound(graph::NodeId v) const {
  if (graph_->degree(v) == 0) {
    return std::nullopt;
  }
  // Every incident edge points at v in one of the two orientations, so v is
  // satisfied on odd or on even holidays (or both): gap ≤ 2.
  return 2;
}

SatisfactionRunReport run_satisfaction(SatisfactionScheduler& scheduler, std::uint64_t horizon) {
  const graph::Graph& g = scheduler.graph();
  scheduler.reset();
  SatisfactionRunReport report;
  report.scheduler_name = scheduler.name();
  report.horizon = horizon;
  std::vector<std::uint64_t> last(g.num_nodes(), 0);
  report.max_gap.assign(g.num_nodes(), 0);
  for (std::uint64_t t = 1; t <= horizon; ++t) {
    const auto satisfied = scheduler.next_holiday();
    report.total_satisfied += satisfied.size();
    for (const graph::NodeId v : satisfied) {
      report.max_gap[v] = std::max(report.max_gap[v], t - last[v]);
      last[v] = t;
    }
  }
  for (graph::NodeId v = 0; v < g.num_nodes(); ++v) {
    report.max_gap[v] = std::max(report.max_gap[v], horizon + 1 - last[v]);
    const auto bound = scheduler.gap_bound(v);
    if (bound && report.max_gap[v] > *bound) {
      report.bounds_respected = false;
    }
  }
  return report;
}

}  // namespace fhg::matching
