#pragma once

/// \file hopcroft_karp.hpp
/// Maximum bipartite matching in `O(E·√V)` (Hopcroft & Karp, SICOMP 1973) —
/// the paper's reference algorithm for maximum satisfaction (Theorem A.2).
///
/// The bipartite instance is given explicitly: `left_count` left vertices
/// with adjacency lists into `[0, right_count)`.

#include <cstdint>
#include <vector>

namespace fhg::matching {

/// A bipartite graph for matching: `adj[l]` lists right-side neighbors of
/// left vertex `l`.
struct BipartiteGraph {
  std::size_t left_count = 0;
  std::size_t right_count = 0;
  std::vector<std::vector<std::uint32_t>> adj;
};

/// Result of a maximum-matching computation.
struct MatchingResult {
  std::size_t size = 0;
  /// match_left[l] = matched right vertex or `kUnmatched`.
  std::vector<std::uint32_t> match_left;
  /// match_right[r] = matched left vertex or `kUnmatched`.
  std::vector<std::uint32_t> match_right;

  static constexpr std::uint32_t kUnmatched = 0xFFFFFFFFu;
};

/// Computes a maximum matching of `g`.
[[nodiscard]] MatchingResult hopcroft_karp(const BipartiteGraph& g);

/// Verifies that `m` is a valid matching of `g` (mutually consistent,
/// edges exist).  Used by tests; does not check maximality.
[[nodiscard]] bool is_valid_matching(const BipartiteGraph& g, const MatchingResult& m);

}  // namespace fhg::matching
