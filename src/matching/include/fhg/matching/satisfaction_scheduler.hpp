#pragma once

/// \file satisfaction_scheduler.hpp
/// Periodic *satisfaction* scheduling (Appendix A.3 made operational).
///
/// Happiness (all children home) is the paper's hard objective; satisfaction
/// (≥ 1 child home) is its easy sibling — maximizable in linear time, but
/// "not socially acceptable" as a one-shot: the same parents win every year.
/// The appendix's fix is alternation: each couple alternates between its two
/// families, so every parent with a married child is satisfied at least
/// every 2 holidays.
///
/// Three schedulers, all perfectly periodic with period ≤ 2:
///  * `StaticOptimumScheduler` — repeats the one-shot optimum orientation:
///    max satisfied *every* holiday, but the unlucky `n_c - min(n_c, m_c)`
///    parents starve forever (the appendix's complaint, kept as a baseline);
///  * `AlternationScheduler` — every edge flips each holiday: everyone with
///    degree ≥ 1 is satisfied at least every 2 holidays;
///  * `MaxFlipScheduler` — odd holidays host the optimum orientation, even
///    holidays its reversal: the one-shot *maximum* is achieved on every odd
///    holiday AND every non-isolated parent is satisfied within 2 (an edge
///    pointing away from you flips toward you next holiday).  Dominates
///    plain alternation on throughput at equal worst-case gap.

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "fhg/graph/graph.hpp"
#include "fhg/matching/satisfaction.hpp"

namespace fhg::matching {

/// Producer of satisfied-parent sets, one holiday at a time (1-based).
/// Unlike `fhg::core::Scheduler`, the returned sets are *not* independent
/// sets — satisfaction has no conflict constraint.
class SatisfactionScheduler {
 public:
  virtual ~SatisfactionScheduler();

  [[nodiscard]] virtual std::string name() const = 0;
  [[nodiscard]] virtual const graph::Graph& graph() const noexcept = 0;

  /// Sorted set of parents with at least one couple visiting.
  [[nodiscard]] virtual std::vector<graph::NodeId> next_holiday() = 0;

  [[nodiscard]] virtual std::uint64_t current_holiday() const noexcept = 0;
  virtual void reset() = 0;

  /// Worst-case satisfaction gap for `v`, if guaranteed (nullopt = none).
  [[nodiscard]] virtual std::optional<std::uint64_t> gap_bound(graph::NodeId v) const = 0;
};

/// Repeats the Appendix A.3 one-shot optimum forever.
class StaticOptimumScheduler final : public SatisfactionScheduler {
 public:
  explicit StaticOptimumScheduler(const graph::Graph& g);

  [[nodiscard]] std::string name() const override { return "static-optimum"; }
  [[nodiscard]] const graph::Graph& graph() const noexcept override { return *graph_; }
  [[nodiscard]] std::vector<graph::NodeId> next_holiday() override;
  [[nodiscard]] std::uint64_t current_holiday() const noexcept override { return holiday_; }
  void reset() override { holiday_ = 0; }
  /// Gap 1 for the winners, none for the starved.
  [[nodiscard]] std::optional<std::uint64_t> gap_bound(graph::NodeId v) const override;

  /// The per-holiday satisfaction value (= the one-shot optimum).
  [[nodiscard]] std::size_t optimum() const noexcept { return optimum_.value; }

 private:
  const graph::Graph* graph_;
  SatisfactionResult optimum_;
  std::vector<graph::NodeId> satisfied_sorted_;
  std::uint64_t holiday_ = 0;
};

/// Every couple alternates between its two families (period 2).
class AlternationScheduler final : public SatisfactionScheduler {
 public:
  explicit AlternationScheduler(const graph::Graph& g) noexcept : graph_(&g) {}

  [[nodiscard]] std::string name() const override { return "alternation"; }
  [[nodiscard]] const graph::Graph& graph() const noexcept override { return *graph_; }
  [[nodiscard]] std::vector<graph::NodeId> next_holiday() override;
  [[nodiscard]] std::uint64_t current_holiday() const noexcept override { return holiday_; }
  void reset() override { holiday_ = 0; }
  [[nodiscard]] std::optional<std::uint64_t> gap_bound(graph::NodeId v) const override;

 private:
  const graph::Graph* graph_;
  std::uint64_t holiday_ = 0;
};

/// Odd holidays: the one-shot optimum orientation; even holidays: its exact
/// reversal.  Max throughput every other year, gap ≤ 2 for everyone.
class MaxFlipScheduler final : public SatisfactionScheduler {
 public:
  explicit MaxFlipScheduler(const graph::Graph& g);

  [[nodiscard]] std::string name() const override { return "max-flip"; }
  [[nodiscard]] const graph::Graph& graph() const noexcept override { return *graph_; }
  [[nodiscard]] std::vector<graph::NodeId> next_holiday() override;
  [[nodiscard]] std::uint64_t current_holiday() const noexcept override { return holiday_; }
  void reset() override { holiday_ = 0; }
  [[nodiscard]] std::optional<std::uint64_t> gap_bound(graph::NodeId v) const override;

  [[nodiscard]] std::size_t optimum() const noexcept { return forward_value_; }

 private:
  const graph::Graph* graph_;
  std::vector<graph::NodeId> odd_satisfied_;   // optimum orientation
  std::vector<graph::NodeId> even_satisfied_;  // reversed orientation
  std::size_t forward_value_ = 0;
  std::uint64_t holiday_ = 0;
};

/// Per-node satisfaction-gap report over a driven run.
struct SatisfactionRunReport {
  std::string scheduler_name;
  std::uint64_t horizon = 0;
  std::vector<std::uint64_t> max_gap;  ///< incl. first wait; horizon+1 if never
  std::uint64_t total_satisfied = 0;
  bool bounds_respected = true;
};

/// Drives `scheduler` for `horizon` holidays, tracking per-node gaps and
/// checking the scheduler's own guarantees (for nodes with degree ≥ 1).
[[nodiscard]] SatisfactionRunReport run_satisfaction(SatisfactionScheduler& scheduler,
                                                     std::uint64_t horizon);

}  // namespace fhg::matching
