#pragma once

/// \file satisfaction.hpp
/// Maximum satisfaction (Appendix A.3): orient the conflict edges so that as
/// many parents as possible receive at least one couple.
///
/// Two algorithms, cross-checked in tests and E10:
///  * `max_satisfaction_matching` — the reduction of Theorem A.2: bipartite
///    matching between parents and children-couples (each couple = conflict
///    edge, adjacent to its two endpoint parents), solved by Hopcroft–Karp
///    in `O(√n · m)`.
///  * `max_satisfaction_linear` — the paper's linear-time specialization
///    exploiting that every child has exactly two candidate hosts.  Per
///    connected component with `n_c` parents and `m_c` couples the optimum
///    is `min(n_c, m_c)`: trees satisfy all but one parent (orient every
///    edge away from the root), components with a cycle satisfy everyone
///    (orient a cycle cyclically, then each remaining BFS edge toward the
///    newly reached parent).
///
/// The §A.3 fairness note — "each child simply alternates and goes one year
/// to its parent and one year to its in-law" — is `alternation_satisfied_set`:
/// every parent with at least one child is satisfied at least every 2
/// holidays, a perfectly periodic satisfaction schedule with period 2.

#include <cstdint>
#include <optional>
#include <vector>

#include "fhg/graph/graph.hpp"

namespace fhg::matching {

/// An edge orientation plus the satisfaction it achieves.
struct SatisfactionResult {
  /// Host of each edge, aligned with `Graph::edges()` canonical order:
  /// the couple on edge k visits `host_of_edge[k]`.
  std::vector<graph::NodeId> host_of_edge;
  /// satisfied[v] = true iff some incident edge is hosted by v.
  std::vector<bool> satisfied;
  /// Number of satisfied parents.
  std::size_t value = 0;
};

/// Theorem A.2 reduction via Hopcroft–Karp.
[[nodiscard]] SatisfactionResult max_satisfaction_matching(const graph::Graph& g);

/// The paper's linear-time algorithm.
[[nodiscard]] SatisfactionResult max_satisfaction_linear(const graph::Graph& g);

/// The theoretical optimum `Σ_components min(n_c, m_c)` — used as an oracle
/// by tests.
[[nodiscard]] std::size_t max_satisfaction_value(const graph::Graph& g);

/// Parents satisfied at holiday `t` under the alternation schedule: edge
/// `{u,v}` with `u < v` hosts at `u` on odd holidays and at `v` on even
/// ones.  Guarantees every non-isolated parent a satisfaction gap ≤ 2.
[[nodiscard]] std::vector<graph::NodeId> alternation_satisfied_set(const graph::Graph& g,
                                                                   std::uint64_t t);

}  // namespace fhg::matching
