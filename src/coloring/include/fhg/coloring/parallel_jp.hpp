#pragma once

/// \file parallel_jp.hpp
/// Parallel speculative coloring in the Jones–Plassmann style.
///
/// Every node draws a random priority as a pure function of
/// `(seed, node_id)` (a counter-based `fhg::parallel::hash_draw`, no shared
/// RNG state).  The pass then runs in rounds over the still-uncolored
/// *active set*:
///
///  1. **propose** — every active node speculatively picks the smallest
///     color ≥ 1 unused by any already-*committed* neighbor (committed =
///     colored before this round; other proposals are invisible);
///  2. **resolve** — a node wins its proposal iff no active neighbor
///     proposed the *same* color with a higher `(priority, id)` pair;
///  3. **commit** — winners publish their color; losers are re-queued for
///     the next round and counted as conflicts.
///
/// Each phase is a `parallel_for_dynamic` over the active array with a
/// barrier in between, so no phase ever reads state another thread is
/// writing (TSan-clean by construction).  Every decision of a round is a
/// pure function of the colors committed before the round plus the static
/// priorities, so the resulting coloring — and even the per-round conflict
/// counts — are **identical at any thread count**, including 1.  That is
/// the property that lets the engine use this pass under its snapshot /
/// replay / divergence-gate machinery: rebuilding from a recipe reproduces
/// the schedule bit for bit no matter how many workers the rebuilding host
/// has.
///
/// Termination and quality: the active node with the globally largest
/// priority always wins its round, so every round commits at least one node
/// (in practice the active set shrinks geometrically — expected O(log n)
/// rounds on bounded-degree graphs).  A proposal is the smallest color free
/// among ≤ deg(v) committed neighbors, hence `col(v) ≤ deg(v) + 1` — the
/// degree-bounded palette the paper's schedule derivation requires
/// (`Coloring::degree_bounded`), and at most `Δ + 1` colors overall.

#include <cstdint>
#include <span>

#include "fhg/coloring/coloring.hpp"
#include "fhg/graph/graph.hpp"
#include "fhg/parallel/thread_pool.hpp"

namespace fhg::coloring {

/// Default node count at or above which callers (the engine's instance
/// build, the dynamic scheduler's initial coloring) switch from the serial
/// greedy pass to this parallel one.  Below it the serial pass wins on
/// constant factors; the value is exposed in `engine::InstanceSpec` so
/// tenants can tune or disable the crossover per recipe.
inline constexpr std::uint32_t kDefaultParallelCrossover = 1u << 16;

/// Tuning knobs for one Jones–Plassmann pass.
struct JpOptions {
  /// Priority seed: priorities are `hash_draw(seed, node)`.  Different seeds
  /// give different (all valid) colorings; equal seeds give identical ones.
  std::uint64_t seed = 1;
  /// Worker pool; nullptr uses `ThreadPool::shared()`.  The pool size never
  /// affects the output, only the wall clock.
  parallel::ThreadPool* pool = nullptr;
  /// Chunk size for the dynamic chunk claiming inside each round.  Small
  /// chunks keep a power-law hub from serializing a round behind one worker.
  std::size_t chunk = 512;
};

/// What one pass did — deterministic for a given (graph, targets, seed),
/// independent of thread count.
struct JpStats {
  std::uint64_t rounds = 0;     ///< propose/resolve/commit rounds run
  std::uint64_t conflicts = 0;  ///< speculative losers re-queued (Σ over rounds)
  std::uint64_t colored = 0;    ///< nodes this pass assigned a color to

  friend bool operator==(const JpStats&, const JpStats&) = default;
};

/// The priority node `v` draws under `seed` — exposed so tests can verify
/// the resolve rule independently.
[[nodiscard]] std::uint64_t jp_priority(std::uint64_t seed, graph::NodeId v) noexcept;

/// Colors every node of `g` from scratch.  Proper, complete, and
/// degree-bounded (`col(v) ≤ deg(v) + 1`); identical output for any pool.
[[nodiscard]] Coloring parallel_jp_color(const graph::Graph& g, const JpOptions& options = {},
                                         JpStats* stats = nullptr);

/// Recolors exactly the nodes of `targets` in `coloring`, holding every
/// other node's color fixed — the engine's bulk-mutation repair: uncolor the
/// conflicted set, then run the rounds against the fixed boundary.
///
/// `targets` must be sorted, duplicate-free, in range, and *uncolored* in
/// `coloring` (callers uncolor them first; a colored target throws
/// `std::invalid_argument`).  On return every target is colored, no target
/// conflicts with any neighbor (fixed or target), and
/// `col(v) ≤ deg(v) + 1` holds for every target.
void parallel_jp_recolor(const graph::Graph& g, Coloring& coloring,
                         std::span<const graph::NodeId> targets, const JpOptions& options = {},
                         JpStats* stats = nullptr);

}  // namespace fhg::coloring
